//! Portable word-parallel kernels for the hot `BitSet` operations.
//!
//! Every kernel processes four 64-bit words per loop iteration with the
//! reduction folded into a single accumulator, which the compiler can keep
//! in registers (and auto-vectorize where profitable) without the
//! iterator-adaptor early-exit structure of the naive `zip().all()`
//! formulation. Early exit is preserved at block granularity: predicates
//! test their accumulator once per 256-bit block instead of once per word.
//!
//! These are the fallback implementations behind the runtime-dispatched
//! entry points in `lib.rs`; the [`simd`](crate::simd) module provides
//! AVX2/POPCNT variants selected when the CPU supports them. The
//! differential property suite (`tests/proptests.rs`) pins both paths to
//! each other and to a `BTreeSet` model on random and adversarial
//! (word-boundary, trailing-bit, empty, full) inputs.

/// `true` if no bit of `a` is outside `b` (`a & !b == 0` word-wise).
#[inline]
pub(crate) fn is_subset(a: &[u64], b: &[u64]) -> bool {
    debug_assert_eq!(a.len(), b.len());
    let mut ca = a.chunks_exact(4);
    let mut cb = b.chunks_exact(4);
    for (x, y) in (&mut ca).zip(&mut cb) {
        let stray = (x[0] & !y[0]) | (x[1] & !y[1]) | (x[2] & !y[2]) | (x[3] & !y[3]);
        if stray != 0 {
            return false;
        }
    }
    ca.remainder()
        .iter()
        .zip(cb.remainder())
        .all(|(x, y)| x & !y == 0)
}

/// `true` if `a` and `b` share no set bit.
#[inline]
pub(crate) fn is_disjoint(a: &[u64], b: &[u64]) -> bool {
    debug_assert_eq!(a.len(), b.len());
    let mut ca = a.chunks_exact(4);
    let mut cb = b.chunks_exact(4);
    for (x, y) in (&mut ca).zip(&mut cb) {
        let shared = (x[0] & y[0]) | (x[1] & y[1]) | (x[2] & y[2]) | (x[3] & y[3]);
        if shared != 0 {
            return false;
        }
    }
    ca.remainder()
        .iter()
        .zip(cb.remainder())
        .all(|(x, y)| x & y == 0)
}

/// Total set-bit count.
#[inline]
pub(crate) fn count(a: &[u64]) -> usize {
    let mut chunks = a.chunks_exact(4);
    let mut total = 0usize;
    for x in &mut chunks {
        total += (x[0].count_ones() + x[1].count_ones() + x[2].count_ones() + x[3].count_ones())
            as usize;
    }
    total
        + chunks
            .remainder()
            .iter()
            .map(|w| w.count_ones() as usize)
            .sum::<usize>()
}

/// In-place `a &= b`.
#[inline]
pub(crate) fn intersect(a: &mut [u64], b: &[u64]) {
    debug_assert_eq!(a.len(), b.len());
    let wide = a.len() & !3;
    let (ah, at) = a.split_at_mut(wide);
    let (bh, bt) = b.split_at(wide);
    for (x, y) in ah.chunks_exact_mut(4).zip(bh.chunks_exact(4)) {
        x[0] &= y[0];
        x[1] &= y[1];
        x[2] &= y[2];
        x[3] &= y[3];
    }
    for (x, y) in at.iter_mut().zip(bt) {
        *x &= *y;
    }
}

/// In-place `a |= b`.
#[inline]
pub(crate) fn union(a: &mut [u64], b: &[u64]) {
    debug_assert_eq!(a.len(), b.len());
    let wide = a.len() & !3;
    let (ah, at) = a.split_at_mut(wide);
    let (bh, bt) = b.split_at(wide);
    for (x, y) in ah.chunks_exact_mut(4).zip(bh.chunks_exact(4)) {
        x[0] |= y[0];
        x[1] |= y[1];
        x[2] |= y[2];
        x[3] |= y[3];
    }
    for (x, y) in at.iter_mut().zip(bt) {
        *x |= *y;
    }
}

/// In-place `a &= !b`.
#[inline]
pub(crate) fn difference(a: &mut [u64], b: &[u64]) {
    debug_assert_eq!(a.len(), b.len());
    let wide = a.len() & !3;
    let (ah, at) = a.split_at_mut(wide);
    let (bh, bt) = b.split_at(wide);
    for (x, y) in ah.chunks_exact_mut(4).zip(bh.chunks_exact(4)) {
        x[0] &= !y[0];
        x[1] &= !y[1];
        x[2] &= !y[2];
        x[3] &= !y[3];
    }
    for (x, y) in at.iter_mut().zip(bt) {
        *x &= !*y;
    }
}
