#![warn(missing_docs)]
// `deny` rather than `forbid` solely so the tightly-scoped `simd` module
// can opt back in with documented invariants; every other module in this
// crate (and every other crate in the workspace) rejects unsafe code.
#![deny(unsafe_code)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

//! Fixed-capacity bit sets for the `ioenc` encoding framework.
//!
//! The framework manipulates many small sets of symbol indices (dichotomy
//! blocks, cube parts, covering-matrix rows). [`BitSet`] is a compact,
//! allocation-friendly set over the universe `0..capacity` backed by `u64`
//! words.
//!
//! # Kernels and dispatch
//!
//! The operations dominating the covering branch-and-bound — subset and
//! disjointness tests, intersections, population counts and first-set
//! iteration — run through explicit word-parallel kernels
//! ([`kernels`]): four words per step, reductions folded into one
//! accumulator, early exit at 256-bit block granularity. On x86-64 an
//! AVX2/POPCNT path ([`simd`]) is selected at runtime (cached CPUID
//! detection) for sets of at least 512 bits. Below that threshold the
//! streaming operations take the scalar kernels and the binary
//! predicates (`is_subset`, `is_disjoint`) keep a plain word loop
//! inlined at the call site — dichotomy-level predicate checks run on
//! one- and two-word sets, where any dispatched call costs more than
//! the loop body. All paths are bit-identical by construction and
//! pinned to each other by a differential property suite; under Miri
//! only the portable paths run.
//!
//! # Examples
//!
//! ```
//! use ioenc_bitset::BitSet;
//!
//! let mut a = BitSet::new(10);
//! a.insert(1);
//! a.insert(7);
//! let b = BitSet::from_indices(10, [7, 9]);
//! assert!(!a.is_disjoint(&b));
//! assert_eq!(a.intersection(&b).iter().collect::<Vec<_>>(), vec![7]);
//! ```

use std::fmt;

mod kernels;
#[cfg(target_arch = "x86_64")]
mod simd;

const WORD_BITS: usize = 64;

/// `true` when the word count justifies the runtime-detected SIMD path.
#[cfg(target_arch = "x86_64")]
#[inline]
fn simd_eligible(words: usize) -> bool {
    // Miri cannot execute vector intrinsics; it always takes the portable
    // kernels, which the differential suite pins to the SIMD path.
    !cfg!(miri) && words >= simd::MIN_WORDS
}

/// Word count below which the binary predicates keep the plain word loop
/// inline at the call site. Matches the SIMD threshold on x86-64 (pinned
/// by a test): below it no vector kernel is ever selected, and the
/// dichotomy-level one- and two-word predicate checks that dominate prime
/// generation cannot afford an outlined call.
const INLINE_MAX_WORDS: usize = 8;

/// Outlined large-set subset test: runtime-detected SIMD when available,
/// the portable kernel otherwise. `#[inline(never)]` keeps this body out
/// of the small-set fast path inlined from [`BitSet::is_subset`].
#[inline(never)]
fn is_subset_large(a: &[u64], b: &[u64]) -> bool {
    #[cfg(target_arch = "x86_64")]
    if !cfg!(miri) && simd::avx2_available() {
        return simd::is_subset(a, b);
    }
    kernels::is_subset(a, b)
}

/// Outlined large-set disjointness test; see [`is_subset_large`].
#[inline(never)]
fn is_disjoint_large(a: &[u64], b: &[u64]) -> bool {
    #[cfg(target_arch = "x86_64")]
    if !cfg!(miri) && simd::avx2_available() {
        return simd::is_disjoint(a, b);
    }
    kernels::is_disjoint(a, b)
}

/// A set of `usize` indices drawn from the fixed universe `0..capacity()`.
///
/// All binary operations require both operands to have the same capacity;
/// they panic otherwise (capacities are a static property of each problem
/// instance, so a mismatch is a logic error).
#[derive(PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct BitSet {
    /// Number of valid bits.
    len: usize,
    words: Vec<u64>,
}

impl Clone for BitSet {
    fn clone(&self) -> Self {
        BitSet {
            len: self.len,
            words: self.words.clone(),
        }
    }

    /// Reuses `self`'s word allocation — the covering search's arena
    /// recycles row buffers through this, so the steady-state inner loop
    /// allocates nothing.
    fn clone_from(&mut self, source: &Self) {
        self.len = source.len;
        self.words.clone_from(&source.words);
    }
}

#[inline]
fn word_count(len: usize) -> usize {
    len.div_ceil(WORD_BITS)
}

impl BitSet {
    /// Creates an empty set over the universe `0..capacity`.
    ///
    /// # Examples
    ///
    /// ```
    /// let s = ioenc_bitset::BitSet::new(5);
    /// assert!(s.is_empty());
    /// assert_eq!(s.capacity(), 5);
    /// ```
    pub fn new(capacity: usize) -> Self {
        BitSet {
            len: capacity,
            words: vec![0; word_count(capacity)],
        }
    }

    /// Creates a set containing every index in `0..capacity`.
    pub fn full(capacity: usize) -> Self {
        let mut s = Self::new(capacity);
        for w in &mut s.words {
            *w = u64::MAX;
        }
        s.trim();
        s
    }

    /// Creates a set from an iterator of indices.
    ///
    /// # Panics
    ///
    /// Panics if any index is `>= capacity`.
    pub fn from_indices<I: IntoIterator<Item = usize>>(capacity: usize, indices: I) -> Self {
        let mut s = Self::new(capacity);
        for i in indices {
            s.insert(i);
        }
        s
    }

    /// The size of the universe (not the number of elements).
    #[inline]
    pub fn capacity(&self) -> usize {
        self.len
    }

    /// Clears excess bits beyond `len` in the last word.
    #[inline]
    fn trim(&mut self) {
        let rem = self.len % WORD_BITS;
        if rem != 0 {
            if let Some(last) = self.words.last_mut() {
                *last &= (1u64 << rem) - 1;
            }
        }
    }

    #[inline]
    fn check_same(&self, other: &Self) {
        assert_eq!(
            self.len, other.len,
            "bit set capacity mismatch: {} vs {}",
            self.len, other.len
        );
    }

    /// Inserts `index`, returning `true` if it was newly inserted.
    ///
    /// # Panics
    ///
    /// Panics if `index >= capacity()`.
    #[inline]
    pub fn insert(&mut self, index: usize) -> bool {
        assert!(index < self.len, "index {index} out of range {}", self.len);
        let (w, b) = (index / WORD_BITS, index % WORD_BITS);
        let was = self.words[w] & (1 << b) != 0;
        self.words[w] |= 1 << b;
        !was
    }

    /// Removes `index`, returning `true` if it was present.
    ///
    /// # Panics
    ///
    /// Panics if `index >= capacity()`.
    #[inline]
    pub fn remove(&mut self, index: usize) -> bool {
        assert!(index < self.len, "index {index} out of range {}", self.len);
        let (w, b) = (index / WORD_BITS, index % WORD_BITS);
        let was = self.words[w] & (1 << b) != 0;
        self.words[w] &= !(1 << b);
        was
    }

    /// Tests membership. Out-of-range indices are simply absent.
    #[inline]
    pub fn contains(&self, index: usize) -> bool {
        if index >= self.len {
            return false;
        }
        let (w, b) = (index / WORD_BITS, index % WORD_BITS);
        self.words[w] & (1 << b) != 0
    }

    /// Removes all elements.
    pub fn clear(&mut self) {
        for w in &mut self.words {
            *w = 0;
        }
    }

    /// Empties the set and changes its universe to `0..capacity`, reusing
    /// the word allocation where possible. Equivalent to
    /// `*self = BitSet::new(capacity)` without the fresh allocation.
    pub fn reset(&mut self, capacity: usize) {
        self.len = capacity;
        self.words.clear();
        self.words.resize(word_count(capacity), 0);
    }

    /// Number of elements in the set.
    #[inline]
    pub fn count(&self) -> usize {
        #[cfg(target_arch = "x86_64")]
        if simd_eligible(self.words.len()) && simd::popcnt_available() {
            return simd::count(&self.words);
        }
        kernels::count(&self.words)
    }

    /// `true` if the set has no elements.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// `true` if `self` and `other` share no element.
    ///
    /// Small sets (below the SIMD threshold) take the plain word loop
    /// inline: dichotomy-level predicate checks in prime generation run
    /// on one- and two-word sets, where an inlined handful of
    /// instructions beats any dispatched kernel (see `OPTIMIZATION.md`,
    /// "the predicate regression").
    #[inline]
    pub fn is_disjoint(&self, other: &Self) -> bool {
        self.check_same(other);
        if self.words.len() < INLINE_MAX_WORDS {
            return self.words.iter().zip(&other.words).all(|(a, b)| a & b == 0);
        }
        is_disjoint_large(&self.words, &other.words)
    }

    /// `true` if every element of `self` is in `other`.
    ///
    /// Dispatches like [`BitSet::is_disjoint`]: plain inlined word loop
    /// below the SIMD threshold, outlined kernel above it.
    #[inline]
    pub fn is_subset(&self, other: &Self) -> bool {
        self.check_same(other);
        if self.words.len() < INLINE_MAX_WORDS {
            return self
                .words
                .iter()
                .zip(&other.words)
                .all(|(a, b)| a & !b == 0);
        }
        is_subset_large(&self.words, &other.words)
    }

    /// `true` if every element of `other` is in `self`.
    pub fn is_superset(&self, other: &Self) -> bool {
        other.is_subset(self)
    }

    /// In-place union.
    #[inline]
    pub fn union_with(&mut self, other: &Self) {
        self.check_same(other);
        kernels::union(&mut self.words, &other.words);
    }

    /// In-place intersection.
    #[inline]
    pub fn intersect_with(&mut self, other: &Self) {
        self.check_same(other);
        #[cfg(target_arch = "x86_64")]
        if simd_eligible(self.words.len()) && simd::avx2_available() {
            return simd::intersect(&mut self.words, &other.words);
        }
        kernels::intersect(&mut self.words, &other.words);
    }

    /// In-place difference (`self \ other`).
    #[inline]
    pub fn difference_with(&mut self, other: &Self) {
        self.check_same(other);
        kernels::difference(&mut self.words, &other.words);
    }

    /// Returns the union as a new set.
    pub fn union(&self, other: &Self) -> Self {
        let mut s = self.clone();
        s.union_with(other);
        s
    }

    /// Returns the intersection as a new set.
    pub fn intersection(&self, other: &Self) -> Self {
        let mut s = self.clone();
        s.intersect_with(other);
        s
    }

    /// Returns the difference `self \ other` as a new set.
    pub fn difference(&self, other: &Self) -> Self {
        let mut s = self.clone();
        s.difference_with(other);
        s
    }

    /// Returns the complement within the universe.
    pub fn complement(&self) -> Self {
        let mut s = self.clone();
        for w in &mut s.words {
            *w = !*w;
        }
        s.trim();
        s
    }

    /// The smallest element, if any (named `first` to avoid clashing with `Ord::min`).
    pub fn first(&self) -> Option<usize> {
        for (i, &w) in self.words.iter().enumerate() {
            if w != 0 {
                return Some(i * WORD_BITS + w.trailing_zeros() as usize);
            }
        }
        None
    }

    /// Iterates over the elements in increasing order.
    pub fn iter(&self) -> Iter<'_> {
        Iter {
            set: self,
            word_idx: 0,
            current: self.words.first().copied().unwrap_or(0),
        }
    }

    /// Calls `f` on every element in increasing order.
    ///
    /// Equivalent to `self.iter().for_each(f)` but without per-item
    /// iterator state: the word loop stays in registers, which measurably
    /// helps the covering search's counting loops (see `OPTIMIZATION.md`).
    #[inline]
    pub fn for_each_set(&self, mut f: impl FnMut(usize)) {
        for (wi, &word) in self.words.iter().enumerate() {
            let mut w = word;
            while w != 0 {
                f(wi * WORD_BITS + w.trailing_zeros() as usize);
                w &= w - 1;
            }
        }
    }

    /// Raw words backing the set (low bit of word 0 is index 0).
    pub fn as_words(&self) -> &[u64] {
        &self.words
    }
}

impl fmt::Debug for BitSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

impl fmt::Display for BitSet {
    /// Renders as a `capacity()`-character string of `0`/`1`, index 0 first.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for i in 0..self.len {
            f.write_str(if self.contains(i) { "1" } else { "0" })?;
        }
        Ok(())
    }
}

impl Extend<usize> for BitSet {
    fn extend<T: IntoIterator<Item = usize>>(&mut self, iter: T) {
        for i in iter {
            self.insert(i);
        }
    }
}

/// Iterator over set elements, produced by [`BitSet::iter`].
pub struct Iter<'a> {
    set: &'a BitSet,
    word_idx: usize,
    current: u64,
}

impl Iterator for Iter<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        loop {
            if self.current != 0 {
                let bit = self.current.trailing_zeros() as usize;
                self.current &= self.current - 1;
                return Some(self.word_idx * WORD_BITS + bit);
            }
            self.word_idx += 1;
            if self.word_idx >= self.set.words.len() {
                return None;
            }
            self.current = self.set.words[self.word_idx];
        }
    }
}

impl<'a> IntoIterator for &'a BitSet {
    type Item = usize;
    type IntoIter = Iter<'a>;

    fn into_iter(self) -> Iter<'a> {
        self.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_and_full() {
        let e = BitSet::new(70);
        assert!(e.is_empty());
        assert_eq!(e.count(), 0);
        let f = BitSet::full(70);
        assert_eq!(f.count(), 70);
        assert_eq!(f.complement(), e);
        assert_eq!(e.complement(), f);
    }

    #[test]
    fn insert_remove_contains() {
        let mut s = BitSet::new(130);
        assert!(s.insert(0));
        assert!(s.insert(64));
        assert!(s.insert(129));
        assert!(!s.insert(64));
        assert_eq!(s.count(), 3);
        assert!(s.contains(64));
        assert!(!s.contains(63));
        assert!(s.remove(64));
        assert!(!s.remove(64));
        assert!(!s.contains(64));
        assert!(!s.contains(4000));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn insert_out_of_range_panics() {
        BitSet::new(5).insert(5);
    }

    #[test]
    fn set_algebra() {
        let a = BitSet::from_indices(10, [1, 3, 5]);
        let b = BitSet::from_indices(10, [3, 5, 7]);
        assert_eq!(a.union(&b), BitSet::from_indices(10, [1, 3, 5, 7]));
        assert_eq!(a.intersection(&b), BitSet::from_indices(10, [3, 5]));
        assert_eq!(a.difference(&b), BitSet::from_indices(10, [1]));
        assert!(!a.is_disjoint(&b));
        assert!(a.is_disjoint(&BitSet::from_indices(10, [0, 2])));
        assert!(BitSet::from_indices(10, [3]).is_subset(&a));
        assert!(a.is_superset(&BitSet::from_indices(10, [1, 5])));
        assert!(!a.is_subset(&b));
    }

    #[test]
    #[should_panic(expected = "capacity mismatch")]
    fn mismatched_capacity_panics() {
        let a = BitSet::new(4);
        let b = BitSet::new(5);
        a.is_disjoint(&b);
    }

    #[test]
    fn iteration_order() {
        let s = BitSet::from_indices(200, [199, 0, 64, 65, 127, 128]);
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![0, 64, 65, 127, 128, 199]);
        assert_eq!(s.first(), Some(0));
        assert_eq!(BitSet::new(8).first(), None);
    }

    #[test]
    fn display_and_debug() {
        let s = BitSet::from_indices(4, [0, 2]);
        assert_eq!(s.to_string(), "1010");
        assert_eq!(format!("{s:?}"), "{0, 2}");
    }

    #[test]
    fn complement_respects_capacity() {
        // Make sure bits beyond `len` never leak into counts or equality.
        let s = BitSet::from_indices(67, [0]);
        let c = s.complement();
        assert_eq!(c.count(), 66);
        assert!(!c.contains(0));
        assert!(c.contains(66));
        assert_eq!(c.complement(), s);
    }

    #[cfg(target_arch = "x86_64")]
    #[test]
    fn inline_threshold_matches_simd_threshold() {
        assert_eq!(INLINE_MAX_WORDS, simd::MIN_WORDS);
    }

    #[test]
    fn reset_changes_universe_and_empties() {
        let mut s = BitSet::from_indices(70, [0, 69]);
        s.reset(130);
        assert_eq!(s.capacity(), 130);
        assert!(s.is_empty());
        assert!(s.insert(129));
        s.reset(3);
        assert_eq!(s.capacity(), 3);
        assert!(s.is_empty());
        assert_eq!(s, BitSet::new(3));
    }

    #[test]
    fn clone_from_reuses_and_matches() {
        let big = BitSet::from_indices(300, [0, 64, 299]);
        let mut s = BitSet::from_indices(10, [1]);
        s.clone_from(&big);
        assert_eq!(s, big);
        let small = BitSet::from_indices(5, [2]);
        s.clone_from(&small);
        assert_eq!(s, small);
        assert_eq!(s.capacity(), 5);
    }

    #[test]
    fn for_each_set_matches_iter() {
        let s = BitSet::from_indices(200, [199, 0, 64, 65, 127, 128]);
        let mut seen = Vec::new();
        s.for_each_set(|i| seen.push(i));
        assert_eq!(seen, s.iter().collect::<Vec<_>>());
    }

    #[test]
    fn large_sets_agree_with_small_semantics() {
        // Big enough to cross the SIMD dispatch threshold on x86-64.
        let a = BitSet::from_indices(1024, (0..1024).step_by(3));
        let b = BitSet::from_indices(1024, (0..1024).step_by(6));
        assert!(b.is_subset(&a));
        assert!(!a.is_subset(&b));
        assert_eq!(a.count(), 342);
        let mut c = a.clone();
        c.intersect_with(&b);
        assert_eq!(c, b);
        let off = BitSet::from_indices(1024, (3..1024).step_by(6));
        assert!(off.is_disjoint(&b));
        assert!(!off.is_disjoint(&a));
    }

    #[test]
    fn extend_collects() {
        let mut s = BitSet::new(6);
        s.extend([5usize, 1, 1]);
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![1, 5]);
    }
}
