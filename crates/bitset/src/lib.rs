#![warn(missing_docs)]
#![forbid(unsafe_code)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

//! Fixed-capacity bit sets for the `ioenc` encoding framework.
//!
//! The framework manipulates many small sets of symbol indices (dichotomy
//! blocks, cube parts, covering-matrix rows). [`BitSet`] is a compact,
//! allocation-friendly set over the universe `0..capacity` backed by `u64`
//! words.
//!
//! # Examples
//!
//! ```
//! use ioenc_bitset::BitSet;
//!
//! let mut a = BitSet::new(10);
//! a.insert(1);
//! a.insert(7);
//! let b = BitSet::from_indices(10, [7, 9]);
//! assert!(!a.is_disjoint(&b));
//! assert_eq!(a.intersection(&b).iter().collect::<Vec<_>>(), vec![7]);
//! ```

use std::fmt;

const WORD_BITS: usize = 64;

/// A set of `usize` indices drawn from the fixed universe `0..capacity()`.
///
/// All binary operations require both operands to have the same capacity;
/// they panic otherwise (capacities are a static property of each problem
/// instance, so a mismatch is a logic error).
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct BitSet {
    /// Number of valid bits.
    len: usize,
    words: Vec<u64>,
}

#[inline]
fn word_count(len: usize) -> usize {
    len.div_ceil(WORD_BITS)
}

impl BitSet {
    /// Creates an empty set over the universe `0..capacity`.
    ///
    /// # Examples
    ///
    /// ```
    /// let s = ioenc_bitset::BitSet::new(5);
    /// assert!(s.is_empty());
    /// assert_eq!(s.capacity(), 5);
    /// ```
    pub fn new(capacity: usize) -> Self {
        BitSet {
            len: capacity,
            words: vec![0; word_count(capacity)],
        }
    }

    /// Creates a set containing every index in `0..capacity`.
    pub fn full(capacity: usize) -> Self {
        let mut s = Self::new(capacity);
        for w in &mut s.words {
            *w = u64::MAX;
        }
        s.trim();
        s
    }

    /// Creates a set from an iterator of indices.
    ///
    /// # Panics
    ///
    /// Panics if any index is `>= capacity`.
    pub fn from_indices<I: IntoIterator<Item = usize>>(capacity: usize, indices: I) -> Self {
        let mut s = Self::new(capacity);
        for i in indices {
            s.insert(i);
        }
        s
    }

    /// The size of the universe (not the number of elements).
    #[inline]
    pub fn capacity(&self) -> usize {
        self.len
    }

    /// Clears excess bits beyond `len` in the last word.
    #[inline]
    fn trim(&mut self) {
        let rem = self.len % WORD_BITS;
        if rem != 0 {
            if let Some(last) = self.words.last_mut() {
                *last &= (1u64 << rem) - 1;
            }
        }
    }

    #[inline]
    fn check_same(&self, other: &Self) {
        assert_eq!(
            self.len, other.len,
            "bit set capacity mismatch: {} vs {}",
            self.len, other.len
        );
    }

    /// Inserts `index`, returning `true` if it was newly inserted.
    ///
    /// # Panics
    ///
    /// Panics if `index >= capacity()`.
    #[inline]
    pub fn insert(&mut self, index: usize) -> bool {
        assert!(index < self.len, "index {index} out of range {}", self.len);
        let (w, b) = (index / WORD_BITS, index % WORD_BITS);
        let was = self.words[w] & (1 << b) != 0;
        self.words[w] |= 1 << b;
        !was
    }

    /// Removes `index`, returning `true` if it was present.
    ///
    /// # Panics
    ///
    /// Panics if `index >= capacity()`.
    #[inline]
    pub fn remove(&mut self, index: usize) -> bool {
        assert!(index < self.len, "index {index} out of range {}", self.len);
        let (w, b) = (index / WORD_BITS, index % WORD_BITS);
        let was = self.words[w] & (1 << b) != 0;
        self.words[w] &= !(1 << b);
        was
    }

    /// Tests membership. Out-of-range indices are simply absent.
    #[inline]
    pub fn contains(&self, index: usize) -> bool {
        if index >= self.len {
            return false;
        }
        let (w, b) = (index / WORD_BITS, index % WORD_BITS);
        self.words[w] & (1 << b) != 0
    }

    /// Removes all elements.
    pub fn clear(&mut self) {
        for w in &mut self.words {
            *w = 0;
        }
    }

    /// Number of elements in the set.
    pub fn count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// `true` if the set has no elements.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// `true` if `self` and `other` share no element.
    pub fn is_disjoint(&self, other: &Self) -> bool {
        self.check_same(other);
        self.words.iter().zip(&other.words).all(|(a, b)| a & b == 0)
    }

    /// `true` if every element of `self` is in `other`.
    pub fn is_subset(&self, other: &Self) -> bool {
        self.check_same(other);
        self.words
            .iter()
            .zip(&other.words)
            .all(|(a, b)| a & !b == 0)
    }

    /// `true` if every element of `other` is in `self`.
    pub fn is_superset(&self, other: &Self) -> bool {
        other.is_subset(self)
    }

    /// In-place union.
    pub fn union_with(&mut self, other: &Self) {
        self.check_same(other);
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= b;
        }
    }

    /// In-place intersection.
    pub fn intersect_with(&mut self, other: &Self) {
        self.check_same(other);
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= b;
        }
    }

    /// In-place difference (`self \ other`).
    pub fn difference_with(&mut self, other: &Self) {
        self.check_same(other);
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= !b;
        }
    }

    /// Returns the union as a new set.
    pub fn union(&self, other: &Self) -> Self {
        let mut s = self.clone();
        s.union_with(other);
        s
    }

    /// Returns the intersection as a new set.
    pub fn intersection(&self, other: &Self) -> Self {
        let mut s = self.clone();
        s.intersect_with(other);
        s
    }

    /// Returns the difference `self \ other` as a new set.
    pub fn difference(&self, other: &Self) -> Self {
        let mut s = self.clone();
        s.difference_with(other);
        s
    }

    /// Returns the complement within the universe.
    pub fn complement(&self) -> Self {
        let mut s = self.clone();
        for w in &mut s.words {
            *w = !*w;
        }
        s.trim();
        s
    }

    /// The smallest element, if any (named `first` to avoid clashing with `Ord::min`).
    pub fn first(&self) -> Option<usize> {
        for (i, &w) in self.words.iter().enumerate() {
            if w != 0 {
                return Some(i * WORD_BITS + w.trailing_zeros() as usize);
            }
        }
        None
    }

    /// Iterates over the elements in increasing order.
    pub fn iter(&self) -> Iter<'_> {
        Iter {
            set: self,
            word_idx: 0,
            current: self.words.first().copied().unwrap_or(0),
        }
    }

    /// Raw words backing the set (low bit of word 0 is index 0).
    pub fn as_words(&self) -> &[u64] {
        &self.words
    }
}

impl fmt::Debug for BitSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

impl fmt::Display for BitSet {
    /// Renders as a `capacity()`-character string of `0`/`1`, index 0 first.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for i in 0..self.len {
            f.write_str(if self.contains(i) { "1" } else { "0" })?;
        }
        Ok(())
    }
}

impl Extend<usize> for BitSet {
    fn extend<T: IntoIterator<Item = usize>>(&mut self, iter: T) {
        for i in iter {
            self.insert(i);
        }
    }
}

/// Iterator over set elements, produced by [`BitSet::iter`].
pub struct Iter<'a> {
    set: &'a BitSet,
    word_idx: usize,
    current: u64,
}

impl Iterator for Iter<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        loop {
            if self.current != 0 {
                let bit = self.current.trailing_zeros() as usize;
                self.current &= self.current - 1;
                return Some(self.word_idx * WORD_BITS + bit);
            }
            self.word_idx += 1;
            if self.word_idx >= self.set.words.len() {
                return None;
            }
            self.current = self.set.words[self.word_idx];
        }
    }
}

impl<'a> IntoIterator for &'a BitSet {
    type Item = usize;
    type IntoIter = Iter<'a>;

    fn into_iter(self) -> Iter<'a> {
        self.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_and_full() {
        let e = BitSet::new(70);
        assert!(e.is_empty());
        assert_eq!(e.count(), 0);
        let f = BitSet::full(70);
        assert_eq!(f.count(), 70);
        assert_eq!(f.complement(), e);
        assert_eq!(e.complement(), f);
    }

    #[test]
    fn insert_remove_contains() {
        let mut s = BitSet::new(130);
        assert!(s.insert(0));
        assert!(s.insert(64));
        assert!(s.insert(129));
        assert!(!s.insert(64));
        assert_eq!(s.count(), 3);
        assert!(s.contains(64));
        assert!(!s.contains(63));
        assert!(s.remove(64));
        assert!(!s.remove(64));
        assert!(!s.contains(64));
        assert!(!s.contains(4000));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn insert_out_of_range_panics() {
        BitSet::new(5).insert(5);
    }

    #[test]
    fn set_algebra() {
        let a = BitSet::from_indices(10, [1, 3, 5]);
        let b = BitSet::from_indices(10, [3, 5, 7]);
        assert_eq!(a.union(&b), BitSet::from_indices(10, [1, 3, 5, 7]));
        assert_eq!(a.intersection(&b), BitSet::from_indices(10, [3, 5]));
        assert_eq!(a.difference(&b), BitSet::from_indices(10, [1]));
        assert!(!a.is_disjoint(&b));
        assert!(a.is_disjoint(&BitSet::from_indices(10, [0, 2])));
        assert!(BitSet::from_indices(10, [3]).is_subset(&a));
        assert!(a.is_superset(&BitSet::from_indices(10, [1, 5])));
        assert!(!a.is_subset(&b));
    }

    #[test]
    #[should_panic(expected = "capacity mismatch")]
    fn mismatched_capacity_panics() {
        let a = BitSet::new(4);
        let b = BitSet::new(5);
        a.is_disjoint(&b);
    }

    #[test]
    fn iteration_order() {
        let s = BitSet::from_indices(200, [199, 0, 64, 65, 127, 128]);
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![0, 64, 65, 127, 128, 199]);
        assert_eq!(s.first(), Some(0));
        assert_eq!(BitSet::new(8).first(), None);
    }

    #[test]
    fn display_and_debug() {
        let s = BitSet::from_indices(4, [0, 2]);
        assert_eq!(s.to_string(), "1010");
        assert_eq!(format!("{s:?}"), "{0, 2}");
    }

    #[test]
    fn complement_respects_capacity() {
        // Make sure bits beyond `len` never leak into counts or equality.
        let s = BitSet::from_indices(67, [0]);
        let c = s.complement();
        assert_eq!(c.count(), 66);
        assert!(!c.contains(0));
        assert!(c.contains(66));
        assert_eq!(c.complement(), s);
    }

    #[test]
    fn extend_collects() {
        let mut s = BitSet::new(6);
        s.extend([5usize, 1, 1]);
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![1, 5]);
    }
}
