//! Runtime-detected x86-64 SIMD kernels (AVX-512F, AVX2 and POPCNT).
//!
//! This module is the workspace's **only** carve-out from
//! `forbid(unsafe_code)` (the crate root holds the rest of the crate at
//! `deny`). The unsafety is tightly scoped and of exactly two kinds:
//!
//! 1. **ISA availability.** Every `#[target_feature]` function is `unsafe
//!    fn` because calling it on a CPU without the feature is undefined
//!    behavior. The safe wrappers below establish the invariant by
//!    checking `std::is_x86_feature_detected!` (cached by the standard
//!    library after the first query) before every call; the wrappers are
//!    the module's entire public surface, so the invariant cannot be
//!    bypassed.
//! 2. **Unaligned vector loads/stores.** `_mm256_loadu_si256` /
//!    `_mm512_loadu_si512` and their store counterparts require only that
//!    the pointer be valid for 256/512 bits. Each loop bounds `i` by
//!    `i + STEP <= len` over slices obtained from safe references, so
//!    every access stays inside the allocation and respects borrow rules
//!    (loads from `&[u64]`, stores through `&mut [u64]`).
//!
//! Semantics are pinned to the portable [`kernels`](crate::kernels) module
//! by the differential property suite in `tests/proptests.rs`, which runs
//! both paths on random and adversarial word patterns whenever the host
//! CPU can execute this one. Under Miri the dispatchers in `lib.rs` never
//! select these functions (vector intrinsics are unsupported there).
#![allow(unsafe_code)]

use crate::kernels;
use core::arch::x86_64::{
    __m256i, __m512i, _mm256_and_si256, _mm256_andnot_si256, _mm256_load_si256, _mm256_loadu_si256,
    _mm256_or_si256, _mm256_store_si256, _mm256_testz_si256, _mm512_and_si512, _mm512_andnot_si512,
    _mm512_loadu_si512, _mm512_or_si512, _mm512_store_si512, _mm512_test_epi64_mask,
};

/// Word count below which the scalar kernels win (vector setup plus the
/// detection load costs more than four scalar ops); measured in
/// `OPTIMIZATION.md`.
pub(crate) const MIN_WORDS: usize = 8;

/// Word count from which the 512-bit path beats the 256-bit one. Below
/// this the wider vectors only add setup cost (measured in
/// `OPTIMIZATION.md`); above it they halve the load/store slot count.
const MIN_WORDS_512: usize = 16;

/// Whether the AVX2 entry points may be used on this machine.
#[inline]
pub(crate) fn avx2_available() -> bool {
    std::is_x86_feature_detected!("avx2")
}

/// Whether the AVX-512F entry points may be used on this machine.
#[inline]
fn avx512_available() -> bool {
    std::is_x86_feature_detected!("avx512f")
}

/// Whether the POPCNT entry point may be used on this machine.
#[inline]
pub(crate) fn popcnt_available() -> bool {
    std::is_x86_feature_detected!("popcnt")
}

/// `is_subset` over raw words; caller must not require early exit.
#[inline]
pub(crate) fn is_subset(a: &[u64], b: &[u64]) -> bool {
    debug_assert!(avx2_available());
    if a.len() >= MIN_WORDS_512 && avx512_available() {
        // SAFETY: the detection call just above guarantees AVX-512F.
        return unsafe { is_subset_avx512(a, b) };
    }
    // SAFETY: the dispatcher (and the debug assert) guarantee AVX2.
    unsafe { is_subset_avx2(a, b) }
}

/// `is_disjoint` over raw words.
#[inline]
pub(crate) fn is_disjoint(a: &[u64], b: &[u64]) -> bool {
    debug_assert!(avx2_available());
    if a.len() >= MIN_WORDS_512 && avx512_available() {
        // SAFETY: the detection call just above guarantees AVX-512F.
        return unsafe { is_disjoint_avx512(a, b) };
    }
    // SAFETY: the dispatcher (and the debug assert) guarantee AVX2.
    unsafe { is_disjoint_avx2(a, b) }
}

/// In-place `a &= b` over raw words.
#[inline]
pub(crate) fn intersect(a: &mut [u64], b: &[u64]) {
    debug_assert!(avx2_available());
    if a.len() >= MIN_WORDS_512 && avx512_available() {
        // SAFETY: the detection call just above guarantees AVX-512F.
        return unsafe { intersect_avx512(a, b) };
    }
    // SAFETY: the dispatcher (and the debug assert) guarantee AVX2.
    unsafe { intersect_avx2(a, b) }
}

/// Set-bit count over raw words.
#[inline]
pub(crate) fn count(a: &[u64]) -> usize {
    debug_assert!(popcnt_available());
    // SAFETY: the dispatcher (and the debug assert) guarantee POPCNT.
    unsafe { count_popcnt(a) }
}

#[target_feature(enable = "avx2")]
unsafe fn is_subset_avx2(a: &[u64], b: &[u64]) -> bool {
    debug_assert_eq!(a.len(), b.len());
    let n = a.len();
    let pa = a.as_ptr();
    let pb = b.as_ptr();
    let mut i = 0;
    // Two 256-bit lanes per test halves the branch count on long runs.
    while i + 8 <= n {
        // SAFETY: i + 8 <= n keeps both 256-bit loads inside the slices.
        let stray = unsafe {
            let a0 = _mm256_loadu_si256(pa.add(i).cast::<__m256i>());
            let b0 = _mm256_loadu_si256(pb.add(i).cast::<__m256i>());
            let a1 = _mm256_loadu_si256(pa.add(i + 4).cast::<__m256i>());
            let b1 = _mm256_loadu_si256(pb.add(i + 4).cast::<__m256i>());
            _mm256_or_si256(_mm256_andnot_si256(b0, a0), _mm256_andnot_si256(b1, a1))
        };
        // Intrinsics on register values are safe inside a target_feature fn.
        if _mm256_testz_si256(stray, stray) == 0 {
            return false;
        }
        i += 8;
    }
    while i + 4 <= n {
        // SAFETY: i + 4 <= n keeps the 256-bit loads inside the slices.
        let stray = unsafe {
            let va = _mm256_loadu_si256(pa.add(i).cast::<__m256i>());
            let vb = _mm256_loadu_si256(pb.add(i).cast::<__m256i>());
            _mm256_andnot_si256(vb, va)
        };
        // Intrinsics on register values are safe inside a target_feature fn.
        if _mm256_testz_si256(stray, stray) == 0 {
            return false;
        }
        i += 4;
    }
    a[i..].iter().zip(&b[i..]).all(|(x, y)| x & !y == 0)
}

#[target_feature(enable = "avx2")]
unsafe fn is_disjoint_avx2(a: &[u64], b: &[u64]) -> bool {
    debug_assert_eq!(a.len(), b.len());
    let n = a.len();
    let pa = a.as_ptr();
    let pb = b.as_ptr();
    let mut i = 0;
    while i + 8 <= n {
        // SAFETY: i + 8 <= n keeps both 256-bit loads inside the slices.
        let shared = unsafe {
            let a0 = _mm256_loadu_si256(pa.add(i).cast::<__m256i>());
            let b0 = _mm256_loadu_si256(pb.add(i).cast::<__m256i>());
            let a1 = _mm256_loadu_si256(pa.add(i + 4).cast::<__m256i>());
            let b1 = _mm256_loadu_si256(pb.add(i + 4).cast::<__m256i>());
            _mm256_or_si256(_mm256_and_si256(a0, b0), _mm256_and_si256(a1, b1))
        };
        // Intrinsics on register values are safe inside a target_feature fn.
        if _mm256_testz_si256(shared, shared) == 0 {
            return false;
        }
        i += 8;
    }
    while i + 4 <= n {
        // SAFETY: i + 4 <= n keeps the 256-bit loads inside the slices.
        let shared = unsafe {
            let va = _mm256_loadu_si256(pa.add(i).cast::<__m256i>());
            let vb = _mm256_loadu_si256(pb.add(i).cast::<__m256i>());
            _mm256_and_si256(va, vb)
        };
        // Intrinsics on register values are safe inside a target_feature fn.
        if _mm256_testz_si256(shared, shared) == 0 {
            return false;
        }
        i += 4;
    }
    a[i..].iter().zip(&b[i..]).all(|(x, y)| x & y == 0)
}

#[target_feature(enable = "avx2")]
unsafe fn intersect_avx2(a: &mut [u64], b: &[u64]) {
    debug_assert_eq!(a.len(), b.len());
    let n = a.len();
    let pa = a.as_mut_ptr();
    let pb = b.as_ptr();
    // Peel scalar words until the *store* side is 32-byte aligned: split
    // stores cost more than split loads, so alignment goes to `a`.
    // `align_offset` counts in elements (u64 words) and is capped at `n`
    // (it returns usize::MAX when alignment is unreachable, degrading the
    // whole call to the scalar tail).
    let mut i = pa.align_offset(32).min(n);
    for k in 0..i {
        // SAFETY: k < i <= n; distinct &mut/& slices cannot alias.
        unsafe { *pa.add(k) &= *pb.add(k) };
    }
    while i + 8 <= n {
        // SAFETY: i + 8 <= n keeps the loads and stores inside the
        // slices; the store pointers are 32-byte aligned by the peel
        // above (Vec<u64> data is 8-byte aligned, so align_offset is a
        // whole number of words); `a` is borrowed mutably, so the store
        // cannot alias `b`.
        unsafe {
            let a0 = _mm256_load_si256(pa.add(i).cast::<__m256i>());
            let b0 = _mm256_loadu_si256(pb.add(i).cast::<__m256i>());
            let a1 = _mm256_load_si256(pa.add(i + 4).cast::<__m256i>());
            let b1 = _mm256_loadu_si256(pb.add(i + 4).cast::<__m256i>());
            _mm256_store_si256(pa.add(i).cast::<__m256i>(), _mm256_and_si256(a0, b0));
            _mm256_store_si256(pa.add(i + 4).cast::<__m256i>(), _mm256_and_si256(a1, b1));
        }
        i += 8;
    }
    while i + 4 <= n {
        // SAFETY: as above, for one aligned 256-bit block.
        unsafe {
            let va = _mm256_load_si256(pa.add(i).cast::<__m256i>());
            let vb = _mm256_loadu_si256(pb.add(i).cast::<__m256i>());
            _mm256_store_si256(pa.add(i).cast::<__m256i>(), _mm256_and_si256(va, vb));
        }
        i += 4;
    }
    for (x, y) in a[i..].iter_mut().zip(&b[i..]) {
        *x &= *y;
    }
}

#[target_feature(enable = "avx512f")]
unsafe fn is_subset_avx512(a: &[u64], b: &[u64]) -> bool {
    debug_assert_eq!(a.len(), b.len());
    let n = a.len();
    let pa = a.as_ptr();
    let pb = b.as_ptr();
    let mut i = 0;
    // Two 512-bit lanes per test; the tail below 16 words reuses the
    // 256-bit kernel, which the avx512f invariant also licenses (every
    // AVX-512F CPU implements AVX2).
    while i + 16 <= n {
        // SAFETY: i + 16 <= n keeps both 512-bit loads inside the slices.
        let stray = unsafe {
            let a0 = _mm512_loadu_si512(pa.add(i).cast::<__m512i>());
            let b0 = _mm512_loadu_si512(pb.add(i).cast::<__m512i>());
            let a1 = _mm512_loadu_si512(pa.add(i + 8).cast::<__m512i>());
            let b1 = _mm512_loadu_si512(pb.add(i + 8).cast::<__m512i>());
            _mm512_or_si512(_mm512_andnot_si512(b0, a0), _mm512_andnot_si512(b1, a1))
        };
        // Intrinsics on register values are safe inside a target_feature fn.
        if _mm512_test_epi64_mask(stray, stray) != 0 {
            return false;
        }
        i += 16;
    }
    // Scalar tail (at most 15 words): a cross-feature call into the AVX2
    // kernel cannot be inlined and would cost more than it saves.
    a[i..].iter().zip(&b[i..]).all(|(x, y)| x & !y == 0)
}

#[target_feature(enable = "avx512f")]
unsafe fn is_disjoint_avx512(a: &[u64], b: &[u64]) -> bool {
    debug_assert_eq!(a.len(), b.len());
    let n = a.len();
    let pa = a.as_ptr();
    let pb = b.as_ptr();
    let mut i = 0;
    while i + 16 <= n {
        // SAFETY: i + 16 <= n keeps both 512-bit loads inside the slices.
        let shared = unsafe {
            let a0 = _mm512_loadu_si512(pa.add(i).cast::<__m512i>());
            let b0 = _mm512_loadu_si512(pb.add(i).cast::<__m512i>());
            let a1 = _mm512_loadu_si512(pa.add(i + 8).cast::<__m512i>());
            let b1 = _mm512_loadu_si512(pb.add(i + 8).cast::<__m512i>());
            _mm512_or_si512(_mm512_and_si512(a0, b0), _mm512_and_si512(a1, b1))
        };
        // Intrinsics on register values are safe inside a target_feature fn.
        if _mm512_test_epi64_mask(shared, shared) != 0 {
            return false;
        }
        i += 16;
    }
    // Scalar tail, as in `is_subset_avx512`.
    a[i..].iter().zip(&b[i..]).all(|(x, y)| x & y == 0)
}

#[target_feature(enable = "avx512f")]
unsafe fn intersect_avx512(a: &mut [u64], b: &[u64]) {
    debug_assert_eq!(a.len(), b.len());
    let n = a.len();
    let pa = a.as_mut_ptr();
    let pb = b.as_ptr();
    // Peel scalar words until the *store* side is cache-line aligned: an
    // unaligned 512-bit store always splits a cache line and costs two
    // store slots, halving throughput on the one store-bound kernel.
    // `align_offset` counts in elements (u64 words) and is capped at `n`
    // (it returns usize::MAX when alignment is unreachable, degrading the
    // whole call to the tail path).
    let mut i = pa.align_offset(64).min(n);
    for k in 0..i {
        // SAFETY: k < i <= n; distinct &mut/& slices cannot alias.
        unsafe { *pa.add(k) &= *pb.add(k) };
    }
    while i + 16 <= n {
        // SAFETY: i + 16 <= n keeps the loads and stores inside the
        // slices; the store pointers are 64-byte aligned by the peel
        // above (Vec<u64> data is 8-byte aligned, so align_offset is a
        // whole number of words); `a` is borrowed mutably, so the stores
        // cannot alias `b`.
        unsafe {
            let a0 = _mm512_loadu_si512(pa.add(i).cast::<__m512i>());
            let b0 = _mm512_loadu_si512(pb.add(i).cast::<__m512i>());
            let a1 = _mm512_loadu_si512(pa.add(i + 8).cast::<__m512i>());
            let b1 = _mm512_loadu_si512(pb.add(i + 8).cast::<__m512i>());
            _mm512_store_si512(pa.add(i).cast::<__m512i>(), _mm512_and_si512(a0, b0));
            _mm512_store_si512(pa.add(i + 8).cast::<__m512i>(), _mm512_and_si512(a1, b1));
        }
        i += 16;
    }
    // Scalar tail, as in `is_subset_avx512`.
    for (x, y) in a[i..].iter_mut().zip(&b[i..]) {
        *x &= *y;
    }
}

#[target_feature(enable = "popcnt")]
unsafe fn count_popcnt(a: &[u64]) -> usize {
    // With POPCNT enabled `count_ones` lowers to the hardware instruction;
    // the shared unrolled reduction comes from the portable kernel.
    kernels::count(a)
}
