//! Randomized model tests checking `BitSet` against
//! `std::collections::BTreeSet`, driven by the workspace's deterministic
//! PRNG (no external proptest dependency; every run checks the same cases).

use ioenc_bitset::BitSet;
use ioenc_rng::SplitMix64;
use std::collections::BTreeSet;

const CAP: usize = 150;
const CASES: usize = 300;

fn random_indices(rng: &mut SplitMix64) -> Vec<usize> {
    let len = rng.gen_range(0..40);
    (0..len).map(|_| rng.gen_range(0..CAP)).collect()
}

fn build(v: &[usize]) -> (BitSet, BTreeSet<usize>) {
    (
        BitSet::from_indices(CAP, v.iter().copied()),
        v.iter().copied().collect(),
    )
}

/// Runs `f` over `CASES` random pairs of index vectors.
fn for_random_pairs(seed: u64, mut f: impl FnMut(Vec<usize>, Vec<usize>)) {
    let mut rng = SplitMix64::new(seed);
    for _ in 0..CASES {
        f(random_indices(&mut rng), random_indices(&mut rng));
    }
}

#[test]
fn union_matches_model() {
    for_random_pairs(0xb1, |a, b| {
        let (sa, ma) = build(&a);
        let (sb, mb) = build(&b);
        let want: Vec<usize> = ma.union(&mb).copied().collect();
        assert_eq!(sa.union(&sb).iter().collect::<Vec<_>>(), want);
    });
}

#[test]
fn intersection_matches_model() {
    for_random_pairs(0xb2, |a, b| {
        let (sa, ma) = build(&a);
        let (sb, mb) = build(&b);
        let want: Vec<usize> = ma.intersection(&mb).copied().collect();
        assert_eq!(sa.intersection(&sb).iter().collect::<Vec<_>>(), want);
    });
}

#[test]
fn difference_matches_model() {
    for_random_pairs(0xb3, |a, b| {
        let (sa, ma) = build(&a);
        let (sb, mb) = build(&b);
        let want: Vec<usize> = ma.difference(&mb).copied().collect();
        assert_eq!(sa.difference(&sb).iter().collect::<Vec<_>>(), want);
    });
}

#[test]
fn relations_match_model() {
    for_random_pairs(0xb4, |a, b| {
        let (sa, ma) = build(&a);
        let (sb, mb) = build(&b);
        assert_eq!(sa.is_subset(&sb), ma.is_subset(&mb));
        assert_eq!(sa.is_disjoint(&sb), ma.is_disjoint(&mb));
        assert_eq!(sa.count(), ma.len());
        assert_eq!(sa == sb, ma == mb);
    });
}

#[test]
fn complement_involution() {
    let mut rng = SplitMix64::new(0xb5);
    for _ in 0..CASES {
        let a = random_indices(&mut rng);
        let (sa, ma) = build(&a);
        let c = sa.complement();
        assert_eq!(c.count(), CAP - ma.len());
        assert!(c.is_disjoint(&sa));
        assert_eq!(c.complement(), sa);
    }
}

#[test]
fn remove_inverts_insert() {
    let mut rng = SplitMix64::new(0xb6);
    for _ in 0..CASES {
        let a = random_indices(&mut rng);
        let x = rng.gen_range(0..CAP);
        let (mut sa, ma) = build(&a);
        let newly = sa.insert(x);
        assert_eq!(newly, !ma.contains(&x));
        assert!(sa.contains(x));
        sa.remove(x);
        assert!(!sa.contains(x));
    }
}
