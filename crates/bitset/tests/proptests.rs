//! Property-based tests checking `BitSet` against `std::collections::BTreeSet`.

use ioenc_bitset::BitSet;
use proptest::prelude::*;
use std::collections::BTreeSet;

const CAP: usize = 150;

fn model_pair() -> impl Strategy<Value = (Vec<usize>, Vec<usize>)> {
    (
        prop::collection::vec(0..CAP, 0..40),
        prop::collection::vec(0..CAP, 0..40),
    )
}

fn build(v: &[usize]) -> (BitSet, BTreeSet<usize>) {
    (
        BitSet::from_indices(CAP, v.iter().copied()),
        v.iter().copied().collect(),
    )
}

proptest! {
    #[test]
    fn union_matches_model((a, b) in model_pair()) {
        let (sa, ma) = build(&a);
        let (sb, mb) = build(&b);
        let want: Vec<usize> = ma.union(&mb).copied().collect();
        prop_assert_eq!(sa.union(&sb).iter().collect::<Vec<_>>(), want);
    }

    #[test]
    fn intersection_matches_model((a, b) in model_pair()) {
        let (sa, ma) = build(&a);
        let (sb, mb) = build(&b);
        let want: Vec<usize> = ma.intersection(&mb).copied().collect();
        prop_assert_eq!(sa.intersection(&sb).iter().collect::<Vec<_>>(), want);
    }

    #[test]
    fn difference_matches_model((a, b) in model_pair()) {
        let (sa, ma) = build(&a);
        let (sb, mb) = build(&b);
        let want: Vec<usize> = ma.difference(&mb).copied().collect();
        prop_assert_eq!(sa.difference(&sb).iter().collect::<Vec<_>>(), want);
    }

    #[test]
    fn relations_match_model((a, b) in model_pair()) {
        let (sa, ma) = build(&a);
        let (sb, mb) = build(&b);
        prop_assert_eq!(sa.is_subset(&sb), ma.is_subset(&mb));
        prop_assert_eq!(sa.is_disjoint(&sb), ma.is_disjoint(&mb));
        prop_assert_eq!(sa.count(), ma.len());
        prop_assert_eq!(sa == sb, ma == mb);
    }

    #[test]
    fn complement_involution(a in prop::collection::vec(0..CAP, 0..40)) {
        let (sa, ma) = build(&a);
        let c = sa.complement();
        prop_assert_eq!(c.count(), CAP - ma.len());
        prop_assert!(c.is_disjoint(&sa));
        prop_assert_eq!(c.complement(), sa);
    }

    #[test]
    fn remove_inverts_insert(a in prop::collection::vec(0..CAP, 0..40), x in 0..CAP) {
        let (mut sa, ma) = build(&a);
        let newly = sa.insert(x);
        prop_assert_eq!(newly, !ma.contains(&x));
        prop_assert!(sa.contains(x));
        sa.remove(x);
        prop_assert!(!sa.contains(x));
    }
}
