//! Randomized model tests checking `BitSet` against
//! `std::collections::BTreeSet`, driven by the workspace's deterministic
//! PRNG (no external proptest dependency; every run checks the same cases).

use ioenc_bitset::BitSet;
use ioenc_rng::SplitMix64;
use std::collections::BTreeSet;

const CAP: usize = 150;
const CASES: usize = 300;

fn random_indices(rng: &mut SplitMix64) -> Vec<usize> {
    let len = rng.gen_range(0..40);
    (0..len).map(|_| rng.gen_range(0..CAP)).collect()
}

fn build(v: &[usize]) -> (BitSet, BTreeSet<usize>) {
    (
        BitSet::from_indices(CAP, v.iter().copied()),
        v.iter().copied().collect(),
    )
}

/// Runs `f` over `CASES` random pairs of index vectors.
fn for_random_pairs(seed: u64, mut f: impl FnMut(Vec<usize>, Vec<usize>)) {
    let mut rng = SplitMix64::new(seed);
    for _ in 0..CASES {
        f(random_indices(&mut rng), random_indices(&mut rng));
    }
}

#[test]
fn union_matches_model() {
    for_random_pairs(0xb1, |a, b| {
        let (sa, ma) = build(&a);
        let (sb, mb) = build(&b);
        let want: Vec<usize> = ma.union(&mb).copied().collect();
        assert_eq!(sa.union(&sb).iter().collect::<Vec<_>>(), want);
    });
}

#[test]
fn intersection_matches_model() {
    for_random_pairs(0xb2, |a, b| {
        let (sa, ma) = build(&a);
        let (sb, mb) = build(&b);
        let want: Vec<usize> = ma.intersection(&mb).copied().collect();
        assert_eq!(sa.intersection(&sb).iter().collect::<Vec<_>>(), want);
    });
}

#[test]
fn difference_matches_model() {
    for_random_pairs(0xb3, |a, b| {
        let (sa, ma) = build(&a);
        let (sb, mb) = build(&b);
        let want: Vec<usize> = ma.difference(&mb).copied().collect();
        assert_eq!(sa.difference(&sb).iter().collect::<Vec<_>>(), want);
    });
}

#[test]
fn relations_match_model() {
    for_random_pairs(0xb4, |a, b| {
        let (sa, ma) = build(&a);
        let (sb, mb) = build(&b);
        assert_eq!(sa.is_subset(&sb), ma.is_subset(&mb));
        assert_eq!(sa.is_disjoint(&sb), ma.is_disjoint(&mb));
        assert_eq!(sa.count(), ma.len());
        assert_eq!(sa == sb, ma == mb);
    });
}

#[test]
fn complement_involution() {
    let mut rng = SplitMix64::new(0xb5);
    for _ in 0..CASES {
        let a = random_indices(&mut rng);
        let (sa, ma) = build(&a);
        let c = sa.complement();
        assert_eq!(c.count(), CAP - ma.len());
        assert!(c.is_disjoint(&sa));
        assert_eq!(c.complement(), sa);
    }
}

// ---- differential coverage of the kernel dispatch widths ----
//
// The dispatched operations pick an implementation by word count: the
// unrolled scalar kernels below 8 words, 256-bit SIMD from 8 words and
// 512-bit SIMD from 16 words (on CPUs that have them). Checking every
// operation against the `BTreeSet` model at capacities straddling those
// thresholds pins all paths to identical semantics: two capacities that
// dispatch differently but agree with the same model agree with each
// other.

/// Capacities bracketing every dispatch threshold: sub-word, scalar
/// kernel, first SIMD width (8 words = 512 bits), second SIMD width
/// (16 words = 1024 bits), and deep in each regime. Off-by-a-bit sizes
/// exercise the trailing-word masking.
const WIDTH_CAPS: &[usize] = &[63, 64, 65, 448, 512, 513, 960, 1024, 1025, 4096, 4113];

fn random_indices_in(rng: &mut SplitMix64, cap: usize, max_len: usize) -> Vec<usize> {
    let len = rng.gen_range(0..max_len);
    (0..len).map(|_| rng.gen_range(0..cap)).collect()
}

fn build_in(cap: usize, v: &[usize]) -> (BitSet, BTreeSet<usize>) {
    (
        BitSet::from_indices(cap, v.iter().copied()),
        v.iter().copied().collect(),
    )
}

/// Every binary operation and predicate checked against the model.
fn check_pair(cap: usize, a: &[usize], b: &[usize]) {
    let (sa, ma) = build_in(cap, a);
    let (sb, mb) = build_in(cap, b);
    let want_union: Vec<usize> = ma.union(&mb).copied().collect();
    assert_eq!(sa.union(&sb).iter().collect::<Vec<_>>(), want_union);
    let want_inter: Vec<usize> = ma.intersection(&mb).copied().collect();
    assert_eq!(sa.intersection(&sb).iter().collect::<Vec<_>>(), want_inter);
    let want_diff: Vec<usize> = ma.difference(&mb).copied().collect();
    assert_eq!(sa.difference(&sb).iter().collect::<Vec<_>>(), want_diff);
    assert_eq!(sa.is_subset(&sb), ma.is_subset(&mb), "subset at cap {cap}");
    assert_eq!(
        sa.is_disjoint(&sb),
        ma.is_disjoint(&mb),
        "disjoint at cap {cap}"
    );
    assert_eq!(sa.count(), ma.len(), "count at cap {cap}");
    let mut visited = Vec::new();
    sa.for_each_set(|i| visited.push(i));
    assert_eq!(visited, ma.iter().copied().collect::<Vec<_>>());
}

#[test]
fn kernel_paths_match_model_across_widths() {
    let mut rng = SplitMix64::new(0xd1);
    for &cap in WIDTH_CAPS {
        for _ in 0..40 {
            let a = random_indices_in(&mut rng, cap, cap.min(600));
            let b = random_indices_in(&mut rng, cap, cap.min(600));
            check_pair(cap, &a, &b);
        }
    }
}

/// Hand-built worst cases for word-boundary handling: empty, full,
/// single bits at word seams, lone trailing bit, dense halves.
fn adversarial_patterns(cap: usize) -> Vec<Vec<usize>> {
    let mut out = vec![
        Vec::new(),
        (0..cap).collect(),
        vec![0],
        vec![cap - 1],
        (0..cap).step_by(2).collect(),
        (1..cap).step_by(2).collect(),
        (0..cap.min(64)).collect(),
        (cap.saturating_sub(64)..cap).collect(),
    ];
    for seam in [63usize, 64, 65, 127, 128, 511, 512, 1023, 1024] {
        if seam < cap {
            out.push(vec![seam]);
        }
    }
    out
}

#[test]
fn adversarial_patterns_match_model_across_widths() {
    for &cap in WIDTH_CAPS {
        let patterns = adversarial_patterns(cap);
        for a in &patterns {
            for b in &patterns {
                check_pair(cap, a, b);
            }
        }
    }
}

#[test]
fn in_place_ops_match_functional_ops_across_widths() {
    let mut rng = SplitMix64::new(0xd2);
    for &cap in WIDTH_CAPS {
        for _ in 0..20 {
            let a = random_indices_in(&mut rng, cap, cap.min(600));
            let b = random_indices_in(&mut rng, cap, cap.min(600));
            let (sa, _) = build_in(cap, &a);
            let (sb, _) = build_in(cap, &b);
            let mut u = sa.clone();
            u.union_with(&sb);
            assert_eq!(u, sa.union(&sb));
            let mut i = sa.clone();
            i.intersect_with(&sb);
            assert_eq!(i, sa.intersection(&sb));
            let mut d = sa.clone();
            d.difference_with(&sb);
            assert_eq!(d, sa.difference(&sb));
        }
    }
}

#[test]
fn remove_inverts_insert() {
    let mut rng = SplitMix64::new(0xb6);
    for _ in 0..CASES {
        let a = random_indices(&mut rng);
        let x = rng.gen_range(0..CAP);
        let (mut sa, ma) = build(&a);
        let newly = sa.insert(x);
        assert_eq!(newly, !ma.contains(&x));
        assert!(sa.contains(x));
        sa.remove(x);
        assert!(!sa.contains(x));
    }
}
