//! Deterministic resource budgets for the encoders.
//!
//! A [`Budget`] caps the *work units* an encoding run may spend — `ps`
//! multiplication steps, generated prime terms, cover branch-and-bound
//! nodes, ESPRESSO improvement iterations and cost-function evaluations —
//! plus an optional wall-clock deadline and a shareable [`CancelToken`].
//!
//! Work-unit limits are checked against counters that the pipeline already
//! keeps deterministic across [`Parallelism`](crate::Parallelism) settings,
//! so *whether* a budget expires, *which* phase it expires in, and the
//! partial [`SolverStats`] reported on expiry are all bit-identical for any
//! thread count. The deadline and the cancel token are the opposite trade:
//! they bound latency exactly but stop at a timing-dependent point (see
//! DESIGN.md §6c for the full argument).
//!
//! On exhaustion a phase returns
//! [`EncodeError::Budget`](crate::EncodeError::Budget) carrying the phase
//! name and a [`BudgetSpent`] with the partial stats — and, when primes ran
//! out, the already-raised dichotomies, so a fallback
//! ([`encode_auto`](crate::encode_auto)) can reuse them instead of
//! re-raising.

use crate::stats::SolverStats;
use crate::Dichotomy;
use ioenc_cover::CancelToken;
use std::fmt;
use std::time::{Duration, Instant};

/// Deterministic work-unit limits plus optional wall-clock controls.
///
/// Every field defaults to "unlimited"; use the `with_*` builders to set
/// limits. The struct is `#[non_exhaustive]`: construct it with
/// [`Budget::unlimited`] (or `Budget::default()`) and the builders.
///
/// # Examples
///
/// ```
/// use ioenc_core::Budget;
///
/// let budget = Budget::unlimited()
///     .with_max_primes(50_000)
///     .with_max_cover_nodes(1_000_000);
/// assert!(!budget.is_unlimited());
/// ```
#[derive(Debug, Clone, Default)]
#[non_exhaustive]
pub struct Budget {
    /// Cap on `ps` multiplication steps during prime generation.
    pub max_ps_steps: Option<u64>,
    /// Cap on product terms generated during any `ps` step (and on the
    /// final prime count).
    pub max_primes: Option<usize>,
    /// Cap on cover branch-and-bound nodes (strict: exhaustion is an error
    /// even when a feasible cover was found).
    pub max_cover_nodes: Option<u64>,
    /// Cap on the improvement-loop iterations of each ESPRESSO
    /// minimization run by a cost evaluation (bounds work per evaluation;
    /// the cover returned is valid either way).
    pub max_espresso_iters: Option<u64>,
    /// Cap on cost-function evaluations (bounded enumeration and heuristic
    /// search).
    pub max_evals: Option<u64>,
    /// Wall-clock deadline, measured from the encoder's entry. Stops are
    /// timing-dependent (not bit-identical across runs).
    pub deadline: Option<Duration>,
    /// Cooperative cancellation, checked alongside the deadline.
    pub cancel: Option<CancelToken>,
}

impl Budget {
    /// A budget with no limits at all — every encoder behaves exactly as
    /// if no budget were given.
    pub fn unlimited() -> Self {
        Self::default()
    }

    /// Whether no limit of any kind is set.
    pub fn is_unlimited(&self) -> bool {
        self.max_ps_steps.is_none()
            && self.max_primes.is_none()
            && self.max_cover_nodes.is_none()
            && self.max_espresso_iters.is_none()
            && self.max_evals.is_none()
            && self.deadline.is_none()
            && self.cancel.is_none()
    }

    /// Whether at least one deterministic work-unit limit is set.
    pub fn has_work_limits(&self) -> bool {
        self.max_ps_steps.is_some()
            || self.max_primes.is_some()
            || self.max_cover_nodes.is_some()
            || self.max_espresso_iters.is_some()
            || self.max_evals.is_some()
    }

    /// Caps `ps` multiplication steps.
    pub fn with_max_ps_steps(mut self, steps: u64) -> Self {
        self.max_ps_steps = Some(steps);
        self
    }

    /// Caps generated prime terms.
    pub fn with_max_primes(mut self, primes: usize) -> Self {
        self.max_primes = Some(primes);
        self
    }

    /// Caps cover branch-and-bound nodes.
    pub fn with_max_cover_nodes(mut self, nodes: u64) -> Self {
        self.max_cover_nodes = Some(nodes);
        self
    }

    /// Caps per-minimization ESPRESSO iterations.
    pub fn with_max_espresso_iters(mut self, iters: u64) -> Self {
        self.max_espresso_iters = Some(iters);
        self
    }

    /// Caps cost-function evaluations.
    pub fn with_max_evals(mut self, evals: u64) -> Self {
        self.max_evals = Some(evals);
        self
    }

    /// Sets a wall-clock deadline measured from the encoder's entry.
    pub fn with_deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Installs a cancellation token.
    pub fn with_cancel(mut self, cancel: CancelToken) -> Self {
        self.cancel = Some(cancel);
        self
    }

    /// The budget left after `spent` work units: consumable limits
    /// (ps steps, cover nodes, evaluations) shrink by what was spent,
    /// saturating at zero; size caps (primes, per-minimization espresso
    /// iterations) and the wall-clock controls pass through unchanged.
    /// [`encode_auto`](crate::encode_auto) uses this to split one budget
    /// across the rungs of the degradation ladder.
    pub fn after(&self, spent: &SolverStats) -> Budget {
        Budget {
            max_ps_steps: self
                .max_ps_steps
                .map(|b| b.saturating_sub(spent.primes.ps_steps)),
            max_primes: self.max_primes,
            max_cover_nodes: self
                .max_cover_nodes
                .map(|b| b.saturating_sub(spent.cover.nodes)),
            max_espresso_iters: self.max_espresso_iters,
            max_evals: self.max_evals.map(|b| b.saturating_sub(spent.evals)),
            deadline: self.deadline,
            cancel: self.cancel.clone(),
        }
    }

    /// Resolves the relative deadline against the clock, producing the
    /// per-run interrupt state.
    pub(crate) fn scope(&self) -> BudgetScope {
        BudgetScope {
            deadline: self.deadline.and_then(|d| Instant::now().checked_add(d)),
            cancel: self.cancel.clone(),
        }
    }
}

/// A [`Budget`]'s wall-clock controls resolved at encoder entry.
#[derive(Debug, Clone, Default)]
pub(crate) struct BudgetScope {
    deadline: Option<Instant>,
    cancel: Option<CancelToken>,
}

impl BudgetScope {
    /// The absolute deadline, for handing down to the cover solvers.
    pub(crate) fn deadline(&self) -> Option<Instant> {
        self.deadline
    }

    /// A clone of the cancel token, for handing down.
    pub(crate) fn cancel(&self) -> Option<CancelToken> {
        self.cancel.clone()
    }

    /// Whether the deadline has passed or cancellation was requested.
    pub(crate) fn interrupted(&self) -> bool {
        self.cancel.as_ref().is_some_and(|c| c.is_cancelled())
            || self.deadline.is_some_and(|d| Instant::now() >= d)
    }
}

/// The pipeline phase a budget expired in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BudgetPhase {
    /// Prime encoding-dichotomy generation (`ps` steps or the term cap).
    Primes,
    /// The covering search of the exact encoder.
    Cover,
    /// Bounded exact enumeration.
    Bounded,
    /// Heuristic search.
    Heuristic,
}

impl fmt::Display for BudgetPhase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            BudgetPhase::Primes => "prime generation",
            BudgetPhase::Cover => "covering search",
            BudgetPhase::Bounded => "bounded enumeration",
            BudgetPhase::Heuristic => "heuristic search",
        };
        f.write_str(name)
    }
}

/// The partial work carried by an
/// [`EncodeError::Budget`](crate::EncodeError::Budget): everything
/// computed before the budget expired, so callers can account for it and
/// reuse it.
#[derive(Debug, Clone, Default)]
pub struct BudgetSpent {
    /// Counters for the work performed before expiry.
    pub stats: SolverStats,
    /// Raised dichotomies already computed when prime generation gave up
    /// (empty for other phases). A fallback encoder can start from these
    /// instead of re-raising.
    pub raised: Vec<Dichotomy>,
}

/// Equality ignores wall-clock timings and thread counts: two expiries are
/// equal when their deterministic work units and carried dichotomies match,
/// which is exactly the cross-thread-count comparison the differential
/// tests need.
impl PartialEq for BudgetSpent {
    fn eq(&self, other: &Self) -> bool {
        self.stats.work_units() == other.stats.work_units() && self.raised == other.raised
    }
}

impl Eq for BudgetSpent {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_budget_reports_itself() {
        assert!(Budget::unlimited().is_unlimited());
        assert!(!Budget::unlimited().has_work_limits());
        let b = Budget::unlimited().with_max_cover_nodes(10);
        assert!(!b.is_unlimited());
        assert!(b.has_work_limits());
        let b = Budget::unlimited().with_deadline(Duration::from_secs(1));
        assert!(!b.is_unlimited());
        assert!(!b.has_work_limits());
    }

    #[test]
    fn after_subtracts_consumable_limits() {
        let budget = Budget::unlimited()
            .with_max_ps_steps(100)
            .with_max_primes(500)
            .with_max_cover_nodes(1000)
            .with_max_evals(50);
        let mut spent = SolverStats::default();
        spent.primes.ps_steps = 30;
        spent.cover.nodes = 1500;
        spent.evals = 20;
        let rest = budget.after(&spent);
        assert_eq!(rest.max_ps_steps, Some(70));
        assert_eq!(rest.max_primes, Some(500)); // size cap, not consumable
        assert_eq!(rest.max_cover_nodes, Some(0)); // saturating
        assert_eq!(rest.max_evals, Some(30));
    }

    #[test]
    fn spent_equality_ignores_timings() {
        let mut a = BudgetSpent::default();
        a.stats.evals = 7;
        let mut b = a.clone();
        b.stats.timings.total = Duration::from_secs(9);
        b.stats.cover.threads = 4;
        assert_eq!(a, b);
        b.stats.evals = 8;
        assert_ne!(a, b);
    }

    #[test]
    fn cancelled_scope_reports_interrupted() {
        let token = ioenc_cover::CancelToken::new();
        let scope = Budget::unlimited().with_cancel(token.clone()).scope();
        assert!(!scope.interrupted());
        token.cancel();
        assert!(scope.interrupted());
    }
}
