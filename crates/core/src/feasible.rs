//! Problem P-1: polynomial-time feasibility check (Theorem 6.1, Figure 6).

use crate::raise::raised_valid;
use crate::{initial_dichotomies, ConstraintSet, Dichotomy};

/// The result of [`check_feasible`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Feasibility {
    /// The initial encoding-dichotomies `I`.
    pub initial: Vec<Dichotomy>,
    /// The valid, maximally raised dichotomies `D`.
    pub raised: Vec<Dichotomy>,
    /// Initial dichotomies covered by no element of `D`; empty iff the
    /// constraints are satisfiable.
    pub uncovered: Vec<Dichotomy>,
}

impl Feasibility {
    /// `true` when the constraints are satisfiable.
    pub fn is_feasible(&self) -> bool {
        self.uncovered.is_empty()
    }
}

/// Decides whether the input and output constraints are simultaneously
/// satisfiable (problem P-1), in time polynomial in the number of symbols
/// and constraints.
///
/// Per Theorem 6.1: generate the initial encoding-dichotomies `I`, keep the
/// valid ones, raise each maximally (dropping any that become invalid) to
/// obtain `D`; the constraints are satisfiable iff every `i ∈ I` is covered
/// by some `d ∈ D`.
///
/// Note: distance-2 and non-face constraints are *not* part of this check
/// (they never make a constraint set infeasible on their own for a large
/// enough code length; they are handled in the exact encoder's covering
/// step).
///
/// # Examples
///
/// The infeasible example of Figure 4:
///
/// ```
/// use ioenc_core::{check_feasible, ConstraintSet};
///
/// let names = ["s0", "s1", "s2", "s3", "s4", "s5"];
/// let cs = ConstraintSet::parse(
///     &names,
///     "(s1,s5)\n(s2,s5)\n(s4,s5)\n\
///      s0>s1\ns0>s2\ns0>s3\ns0>s5\ns1>s3\ns2>s3\ns4>s5\ns5>s2\ns5>s3\n\
///      s0=s1|s2",
/// )?;
/// let result = check_feasible(&cs);
/// assert!(!result.is_feasible());
/// assert_eq!(result.uncovered.len(), 2); // (s0; s1 s5) and (s1 s5; s0)
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn check_feasible(cs: &ConstraintSet) -> Feasibility {
    let initial = initial_dichotomies(cs, false);
    let raised = raised_valid(&initial, cs);
    let uncovered: Vec<Dichotomy> = initial
        .iter()
        .filter(|i| !raised.iter().any(|d| d.covers(i)))
        .cloned()
        .collect();
    Feasibility {
        initial,
        raised,
        uncovered,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn figure_4() -> ConstraintSet {
        let names = ["s0", "s1", "s2", "s3", "s4", "s5"];
        ConstraintSet::parse(
            &names,
            "(s1,s5)\n(s2,s5)\n(s4,s5)\n\
             s0>s1\ns0>s2\ns0>s3\ns0>s5\ns1>s3\ns2>s3\ns4>s5\ns5>s2\ns5>s3\n\
             s0=s1|s2",
        )
        .unwrap()
    }

    #[test]
    fn figure_4_is_infeasible_with_expected_witnesses() {
        let r = check_feasible(&figure_4());
        assert!(!r.is_feasible());
        let mut uncovered = r.uncovered.clone();
        uncovered.sort();
        assert_eq!(
            uncovered,
            vec![
                Dichotomy::from_blocks(6, [0], [1, 5]),
                Dichotomy::from_blocks(6, [1, 5], [0]),
            ]
        );
        // This is the example on which the algorithm of Devadas–Newton [9]
        // incorrectly reports satisfiability (footnote 5 of the paper).
    }

    #[test]
    fn input_only_constraints_are_always_feasible() {
        let mut cs = ConstraintSet::new(5);
        cs.add_face([0, 1, 2]);
        cs.add_face([2, 3, 4]);
        cs.add_face([0, 4]);
        assert!(check_feasible(&cs).is_feasible());
    }

    #[test]
    fn figure_8_constraints_are_feasible() {
        let cs = ConstraintSet::parse(&["s0", "s1", "s2", "s3"], "(s0,s1)\ns0>s1\ns1>s2\ns0=s1|s3")
            .unwrap();
        let r = check_feasible(&cs);
        assert!(r.is_feasible());
        // The paper's raised list for Figure 8.
        // (The paper shows (s3; s2 s1) for the raising of (s3; s2); the
        // dominance s0 > s1 with s1 at 1 additionally forces s0 to 1, so
        // the maximally raised dichotomy is (s3; s0 s1 s2).)
        let expected = [
            Dichotomy::from_blocks(4, [2], [0, 1]),
            Dichotomy::from_blocks(4, [3], [0, 1]),
            Dichotomy::from_blocks(4, [1, 2], [0, 3]),
            Dichotomy::from_blocks(4, [3], [0, 1, 2]),
        ];
        for e in &expected {
            assert!(r.raised.contains(e), "missing raised dichotomy {e:?}");
        }
    }

    #[test]
    fn section_1_example_is_feasible() {
        let cs = ConstraintSet::parse(
            &["a", "b", "c", "d"],
            "(b,c)\n(c,d)\n(b,a)\n(a,d)\nb>c\na>c\na=b|d",
        )
        .unwrap();
        assert!(check_feasible(&cs).is_feasible());
    }

    #[test]
    fn contradictory_dominance_cycle_is_infeasible() {
        // a > b and b > a force equal codes, contradicting uniqueness.
        let cs = ConstraintSet::parse(&["a", "b"], "a>b\nb>a").unwrap();
        let r = check_feasible(&cs);
        assert!(!r.is_feasible());
    }

    #[test]
    fn dominance_against_face_is_infeasible() {
        // (a,b) requires a column separating a,b from c... while c > all
        // forces c to cover everything; build a genuinely conflicting set:
        // a > b plus face (b, c) with b needing a 1 where a has 0 is fine —
        // instead check a known-feasible mix stays feasible.
        let cs = ConstraintSet::parse(&["a", "b", "c"], "(b,c)\na>b").unwrap();
        assert!(check_feasible(&cs).is_feasible());
    }

    #[test]
    fn empty_constraint_set_is_feasible() {
        let cs = ConstraintSet::new(3);
        assert!(check_feasible(&cs).is_feasible());
    }
}
