//! Chain constraints (Section 8.4): the codes of an ordered state sequence
//! must be consecutive binary numbers (Amann–Baitinger counter-based PLA
//! structures).
//!
//! The paper observes that chains are not naturally expressible as
//! dichotomies and that a solution "seems to require a computationally
//! expensive implicit enumeration", leaving the question open. This module
//! provides exactly that enumeration: a backtracking search over chain base
//! codes and free-symbol placements, checked by the semantic verifier —
//! exact, exponential, and practical for the controller-sized instances
//! where chains arise.

use crate::{ConstraintSet, EncodeError, Encoding};

/// A chain constraint `(s₀ - s₁ - … - s_k)`:
/// `code(sᵢ₊₁) = code(sᵢ) + 1 (mod 2^width)` — the increment wraps, as the
/// underlying counter does (the paper's own example assigns
/// d=01, b=10, c=11, a=00 to the chain d-b-c-a).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChainConstraint {
    /// The ordered states of the chain.
    pub states: Vec<usize>,
}

impl ChainConstraint {
    /// A chain over the given ordered states.
    ///
    /// # Panics
    ///
    /// Panics if fewer than two states are given or a state repeats.
    pub fn new<I: IntoIterator<Item = usize>>(states: I) -> Self {
        let states: Vec<usize> = states.into_iter().collect();
        assert!(states.len() >= 2, "a chain needs at least two states");
        let mut sorted = states.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), states.len(), "chain states must be distinct");
        ChainConstraint { states }
    }

    /// `true` when the encoding gives the chain consecutive codes
    /// (modulo `2^width`).
    pub fn is_satisfied(&self, enc: &Encoding) -> bool {
        let mask = if enc.width() >= 64 {
            u64::MAX
        } else {
            (1u64 << enc.width()) - 1
        };
        self.states
            .windows(2)
            .all(|w| enc.code(w[0]).wrapping_add(1) & mask == enc.code(w[1]))
    }
}

/// Options for [`encode_with_chains`].
#[derive(Debug, Clone)]
pub struct ChainOptions {
    /// Code length; `None` uses the minimum `⌈log₂ n⌉`.
    pub code_length: Option<usize>,
    /// Refuse instances with more symbols than this.
    pub max_symbols: usize,
}

impl Default for ChainOptions {
    fn default() -> Self {
        ChainOptions {
            code_length: None,
            max_symbols: 14,
        }
    }
}

/// Finds an encoding satisfying both the face/output constraints of `cs`
/// and the chain constraints, by backtracking over chain base codes and
/// exhaustive placement of the free symbols. Exact but exponential.
///
/// # Errors
///
/// * [`EncodeError::TooLarge`] beyond `opts.max_symbols` or lengths over
///   20 bits;
/// * [`EncodeError::Infeasible`] when no encoding of the requested length
///   satisfies everything.
///
/// # Panics
///
/// Panics if a chain references a symbol outside `cs` or a symbol appears
/// in two chains.
pub fn encode_with_chains(
    cs: &ConstraintSet,
    chains: &[ChainConstraint],
    opts: &ChainOptions,
) -> Result<Encoding, EncodeError> {
    let n = cs.num_symbols();
    if n > opts.max_symbols {
        return Err(EncodeError::TooLarge {
            what: "chain-constraint enumeration",
        });
    }
    let min_len = usize::max(1, (usize::BITS - (n.max(2) - 1).leading_zeros()) as usize);
    let width = opts.code_length.unwrap_or(min_len);
    if width > 20 {
        return Err(EncodeError::TooLarge {
            what: "chain-constraint code length",
        });
    }
    let total = 1u64 << width;
    if (n as u64) > total {
        return Err(EncodeError::WidthExceeded);
    }
    let mut in_chain = vec![false; n];
    for ch in chains {
        for &s in &ch.states {
            assert!(s < n, "chain symbol {s} out of range");
            assert!(!in_chain[s], "symbol {s} appears in two chains");
            in_chain[s] = true;
        }
    }
    let free: Vec<usize> = (0..n).filter(|&s| !in_chain[s]).collect();

    let mut codes: Vec<Option<u64>> = vec![None; n];
    let mut used = vec![false; total as usize];
    if place_chains(cs, chains, 0, &free, &mut codes, &mut used, width) {
        #[allow(clippy::expect_used)] // place_chains returned true, so it
        // assigned a code to every state before its final recursion level
        let final_codes: Vec<u64> = codes.into_iter().map(|c| c.expect("assigned")).collect();
        let enc = Encoding::new(width, final_codes);
        debug_assert!(enc.satisfies(cs));
        debug_assert!(chains.iter().all(|ch| ch.is_satisfied(&enc)));
        Ok(enc)
    } else {
        Err(EncodeError::infeasible(vec![]))
    }
}

fn place_chains(
    cs: &ConstraintSet,
    chains: &[ChainConstraint],
    idx: usize,
    free: &[usize],
    codes: &mut Vec<Option<u64>>,
    used: &mut Vec<bool>,
    width: usize,
) -> bool {
    let total = 1u64 << width;
    if idx == chains.len() {
        return place_free(cs, free, 0, codes, used, width);
    }
    let chain = &chains[idx];
    let len = chain.states.len() as u64;
    if len > total {
        return false;
    }
    for base in 0..total {
        // Modular placement: the counter wraps past the top code.
        let slots: Vec<u64> = (0..len).map(|k| (base + k) % total).collect();
        if slots.iter().any(|&c| used[c as usize]) {
            continue;
        }
        for (&s, &c) in chain.states.iter().zip(&slots) {
            codes[s] = Some(c);
            used[c as usize] = true;
        }
        if place_chains(cs, chains, idx + 1, free, codes, used, width) {
            return true;
        }
        for &s in &chain.states {
            // Undo exactly the assignments made a few lines above.
            if let Some(c) = codes[s].take() {
                used[c as usize] = false;
            }
        }
    }
    false
}

fn place_free(
    cs: &ConstraintSet,
    free: &[usize],
    idx: usize,
    codes: &mut Vec<Option<u64>>,
    used: &mut Vec<bool>,
    width: usize,
) -> bool {
    if idx == free.len() {
        #[allow(clippy::expect_used)] // idx == free.len(): every chain state
        // was coded by place_chains and every free state by earlier levels
        let enc = Encoding::new(width, codes.iter().map(|c| c.expect("assigned")).collect());
        return enc.satisfies(cs);
    }
    let total = 1u64 << width;
    let s = free[idx];
    for code in 0..total {
        if used[code as usize] {
            continue;
        }
        codes[s] = Some(code);
        used[code as usize] = true;
        if place_free(cs, free, idx + 1, codes, used, width) {
            return true;
        }
        codes[s] = None;
        used[code as usize] = false;
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_section_8_4_example() {
        // Face constraints (b,c),(a,b) with chain (d - b - c - a): the
        // paper gives a = 00, b = 10, c = 11, d = 01.
        let cs = ConstraintSet::parse(&["a", "b", "c", "d"], "(b,c)\n(a,b)").unwrap();
        let chain = ChainConstraint::new([3, 1, 2, 0]); // d - b - c - a
        let paper = Encoding::new(2, vec![0b00, 0b10, 0b11, 0b01]);
        assert!(paper.satisfies(&cs));
        // d=1, b=2, c=3, a=0: consecutive modulo 4, as the counter wraps.
        assert!(chain.is_satisfied(&paper));
        let enc = encode_with_chains(&cs, std::slice::from_ref(&chain), &ChainOptions::default())
            .unwrap();
        assert_eq!(enc.width(), 2);
        assert!(chain.is_satisfied(&enc));
        assert!(enc.satisfies(&cs));
    }

    #[test]
    fn long_chain_example() {
        // The paper's 9-state chain (a-b-…-i) fits in 4 bits.
        let names: Vec<String> = (b'a'..=b'i').map(|c| (c as char).to_string()).collect();
        let cs = ConstraintSet::with_names(names);
        let chain = ChainConstraint::new(0..9);
        let enc = encode_with_chains(
            &cs,
            std::slice::from_ref(&chain),
            &ChainOptions {
                code_length: Some(4),
                ..Default::default()
            },
        )
        .unwrap();
        assert!(chain.is_satisfied(&enc));
        for i in 0..8 {
            assert_eq!(enc.code(i) + 1, enc.code(i + 1));
        }
    }

    #[test]
    fn chains_with_faces_interact() {
        let cs = ConstraintSet::parse(&["a", "b", "c", "d"], "(a,b)").unwrap();
        let chain = ChainConstraint::new([2, 3]);
        let enc = encode_with_chains(&cs, std::slice::from_ref(&chain), &ChainOptions::default())
            .unwrap();
        assert!(enc.satisfies(&cs));
        assert!(chain.is_satisfied(&enc));
    }

    #[test]
    fn impossible_chain_reports_infeasible() {
        // Two chains of length 3 cannot fit in 2 bits alongside... 6 codes
        // in 4 slots.
        let cs = ConstraintSet::new(6);
        let chains = [
            ChainConstraint::new([0, 1, 2]),
            ChainConstraint::new([3, 4, 5]),
        ];
        let opts = ChainOptions {
            code_length: Some(2),
            ..Default::default()
        };
        assert!(matches!(
            encode_with_chains(&cs, &chains, &opts),
            Err(EncodeError::WidthExceeded)
        ));
        // A conflicting face: chain a-b (consecutive codes) combined with
        // the face (a,b) *and* dist-like separation demands can clash; use
        // a face (a,b) with chain a-c so that a,b must share a 1-face while
        // a,c are consecutive — in 1 bit this is impossible with 2+ other
        // symbols, and in 2 bits the face (a,b) plus chains a-c and b-d
        // force a contradiction:
        let cs = ConstraintSet::parse(&["a", "b", "c", "d"], "(a,b)\n(c,d)\n(a,c)\n(b,d)").unwrap();
        let chains = [ChainConstraint::new([0, 3]), ChainConstraint::new([1, 2])];
        let opts = ChainOptions {
            code_length: Some(2),
            ..Default::default()
        };
        // Either outcome must be consistent: if an encoding is returned it
        // satisfies everything; otherwise infeasibility is reported.
        match encode_with_chains(&cs, &chains, &opts) {
            Ok(enc) => {
                assert!(enc.satisfies(&cs));
                assert!(chains.iter().all(|c| c.is_satisfied(&enc)));
            }
            Err(EncodeError::Infeasible { .. }) => {}
            Err(e) => panic!("unexpected error {e}"),
        }
    }

    #[test]
    #[should_panic(expected = "two chains")]
    fn overlapping_chains_rejected() {
        let cs = ConstraintSet::new(4);
        let chains = [ChainConstraint::new([0, 1]), ChainConstraint::new([1, 2])];
        let _ = encode_with_chains(&cs, &chains, &ChainOptions::default());
    }

    #[test]
    #[should_panic(expected = "distinct")]
    fn repeated_state_rejected() {
        ChainConstraint::new([0, 1, 0]);
    }
}
