//! The exact version of problem P-3 (Section 7.1): enumerate all 2^(n-1)
//! encoding-dichotomies and select the fixed-size subset minimizing the
//! cost function — "clearly infeasible on all but trivial instances", which
//! is exactly why the paper develops the heuristic. This implementation
//! exists as the reference point for the heuristic on small instances.

use crate::budget::{Budget, BudgetPhase, BudgetScope, BudgetSpent};
use crate::cost::{cost_of_with, CostFunction};
use crate::stats::SolverStats;
use crate::{ConstraintSet, Dichotomy, EncodeError, Encoding};
use ioenc_cover::Parallelism;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Options for [`bounded_exact_encode`].
///
/// Construct with [`BoundedExactOptions::new`] (or `default()`) and refine
/// with the `with_*` methods; the struct is `#[non_exhaustive]`, so future
/// options can be added without breaking callers.
///
/// ```
/// use ioenc_core::{BoundedExactOptions, CostFunction};
///
/// let opts = BoundedExactOptions::new()
///     .with_code_length(4)
///     .with_cost(CostFunction::Cubes);
/// assert_eq!(opts.code_length, Some(4));
/// ```
#[derive(Debug, Clone)]
#[non_exhaustive]
pub struct BoundedExactOptions {
    /// Code length; `None` uses the minimum `⌈log₂ n⌉`.
    pub code_length: Option<usize>,
    /// Cost function to minimize.
    pub cost: CostFunction,
    /// Refuse instances with more symbols than this (the candidate pool is
    /// `2^(n-1) − 1`).
    pub max_symbols: usize,
    /// Refuse instances whose selection space exceeds this many subsets.
    pub max_selections: u64,
    /// Thread policy for the enumeration; results are bit-identical across
    /// settings.
    pub parallelism: Parallelism,
    /// Resource budget. The evaluation cap is enforced as an upfront gate
    /// on the selection-space size (deterministic); the deadline and the
    /// cancel token stop the sweep cooperatively.
    pub budget: Budget,
}

impl Default for BoundedExactOptions {
    fn default() -> Self {
        BoundedExactOptions {
            code_length: None,
            cost: CostFunction::Violations,
            max_symbols: 8,
            max_selections: 5_000_000,
            parallelism: Parallelism::Auto,
            budget: Budget::unlimited(),
        }
    }
}

impl BoundedExactOptions {
    /// The default options (minimum code length, violation cost).
    pub fn new() -> Self {
        Self::default()
    }

    /// Requests an explicit code length instead of the minimum `⌈log₂ n⌉`.
    pub fn with_code_length(mut self, bits: usize) -> Self {
        self.code_length = Some(bits);
        self
    }

    /// Sets the cost function to minimize.
    pub fn with_cost(mut self, cost: CostFunction) -> Self {
        self.cost = cost;
        self
    }

    /// Sets the largest accepted symbol count.
    pub fn with_max_symbols(mut self, max: usize) -> Self {
        self.max_symbols = max;
        self
    }

    /// Sets the largest accepted selection-space size.
    pub fn with_max_selections(mut self, max: u64) -> Self {
        self.max_selections = max;
        self
    }

    /// Sets the thread policy.
    pub fn with_parallelism(mut self, parallelism: Parallelism) -> Self {
        self.parallelism = parallelism;
        self
    }

    /// Installs a resource [`Budget`].
    pub fn with_budget(mut self, budget: Budget) -> Self {
        self.budget = budget;
        self
    }
}

/// The detailed result of [`bounded_exact_encode_report`].
#[derive(Debug, Clone)]
pub struct BoundedReport {
    /// The minimum-cost encoding of the requested length.
    pub encoding: Encoding,
    /// Its cost under the configured [`CostFunction`].
    pub cost: u64,
    /// Evaluation counters and timings.
    pub stats: SolverStats,
}

/// Exhaustively finds the minimum-cost encoding of the requested length
/// (the *candidate generation* + *selection* formulation the paper gives
/// before the heuristic). Returns the encoding and its cost.
///
/// # Errors
///
/// * [`EncodeError::TooLarge`] beyond the configured instance limits;
/// * [`EncodeError::WidthExceeded`] for lengths that cannot give distinct
///   codes;
/// * [`EncodeError::Budget`] when the evaluation budget cannot pay for the
///   selection space, or the deadline / cancel token fires mid-sweep.
#[deprecated(note = "use Solver::new().mode(SolverMode::Bounded)")]
pub fn bounded_exact_encode(
    cs: &ConstraintSet,
    opts: &BoundedExactOptions,
) -> Result<(Encoding, u64), EncodeError> {
    bounded_exact_encode_report(cs, opts).map(|r| (r.encoding, r.cost))
}

/// Like [`bounded_exact_encode`] but returns the full [`BoundedReport`]
/// (evaluation counters, timings).
///
/// # Errors
///
/// As for [`bounded_exact_encode`].
pub fn bounded_exact_encode_report(
    cs: &ConstraintSet,
    opts: &BoundedExactOptions,
) -> Result<BoundedReport, EncodeError> {
    let start = Instant::now();
    let done = |encoding: Encoding, cost: u64, stats: SolverStats| {
        let mut stats = stats;
        stats.timings.total = start.elapsed();
        Ok(BoundedReport {
            encoding,
            cost,
            stats,
        })
    };
    let n = cs.num_symbols();
    if n > opts.max_symbols {
        return Err(EncodeError::TooLarge {
            what: "bounded exact enumeration",
        });
    }
    if n == 0 {
        return done(Encoding::new(0, Vec::new()), 0, SolverStats::default());
    }
    let min_len = usize::max(1, (usize::BITS - (n - 1).leading_zeros()) as usize);
    let c = opts.code_length.unwrap_or(min_len);
    if c >= 64 || (1u64 << c) < n as u64 {
        return Err(EncodeError::WidthExceeded);
    }
    if n == 1 {
        return done(Encoding::new(c, vec![0]), 0, SolverStats::default());
    }

    // All 2^(n-1) − 1 distinct encoding-dichotomies (symbol 0 pinned to
    // the left block; for input-type cost functions orientation is
    // immaterial).
    let mut candidates: Vec<Dichotomy> = Vec::new();
    for mask in 1u64..(1 << (n - 1)) {
        let right: Vec<usize> = (1..n).filter(|&s| mask >> (s - 1) & 1 == 1).collect();
        let left: Vec<usize> = (0..n)
            .filter(|&s| s == 0 || mask >> (s - 1) & 1 == 0)
            .collect();
        candidates.push(Dichotomy::from_blocks(n, left, right));
    }

    // Selection-space size check: C(|candidates|, c).
    let mut selections = 1u64;
    for i in 0..c as u64 {
        selections = selections.saturating_mul(candidates.len() as u64 - i) / (i + 1);
        if selections > opts.max_selections {
            return Err(EncodeError::TooLarge {
                what: "bounded exact selection space",
            });
        }
    }
    // Upfront evaluation gate: an enumeration needs up to `selections`
    // cost evaluations, so a smaller budget cannot finish it. Failing here
    // — before any work — keeps the expiry decision deterministic.
    if opts.budget.max_evals.is_some_and(|b| selections > b) {
        return Err(EncodeError::budget(
            BudgetPhase::Bounded,
            BudgetSpent::default(),
        ));
    }
    let scope = opts.budget.scope();

    // The search branches on the first selected candidate; branches are
    // independent (the running minimum never prunes, it only filters the
    // final compare), so each branch computes its own first-in-order
    // minimum and a strict-`<` merge in branch order reproduces the
    // sequential result exactly. A work-stealing index balances the
    // heavily skewed branch sizes.
    let last_start = candidates.len().saturating_sub(c);
    let threads = opts.parallelism.threads().min(last_start + 1);
    let ctx = EnumCtx {
        cs,
        candidates: &candidates,
        c,
        cost: opts.cost,
        max_espresso_iters: opts.budget.max_espresso_iters,
        stop: &AtomicBool::new(false),
        scope: &scope,
    };
    let mut best: Option<(u64, Encoding)> = None;
    let mut stats = SolverStats::default();
    let mut stopped = false;
    if threads <= 1 {
        let mut out = BranchOut::default();
        let mut chosen = Vec::with_capacity(c);
        enumerate(&ctx, 0, &mut chosen, &mut out);
        best = out.best;
        stats.evals = out.evals;
        stats.espresso_iters = out.espresso_iters;
        stopped = out.stopped;
    } else {
        let next = AtomicUsize::new(0);
        let results: Vec<Mutex<Option<BranchOut>>> =
            (0..=last_start).map(|_| Mutex::new(None)).collect();
        std::thread::scope(|s| {
            for _ in 0..threads {
                s.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i > last_start {
                        break;
                    }
                    let mut out = BranchOut::default();
                    let mut chosen = vec![i];
                    enumerate(&ctx, i + 1, &mut chosen, &mut out);
                    *results[i]
                        .lock()
                        .unwrap_or_else(std::sync::PoisonError::into_inner) = Some(out);
                });
            }
        });
        // Merge in branch order so the winning encoding (and the counter
        // totals) match the sequential sweep exactly.
        for slot in results {
            // A panicking worker would have propagated through the scope
            // above, so every slot is filled; an empty default is inert.
            let out = slot
                .into_inner()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .unwrap_or_default();
            stats.evals += out.evals;
            stats.espresso_iters += out.espresso_iters;
            stopped |= out.stopped;
            if let Some((cost, enc)) = out.best {
                if best.as_ref().is_none_or(|(b, _)| cost < *b) {
                    best = Some((cost, enc));
                }
            }
        }
    }
    if stopped {
        stats.timings.total = start.elapsed();
        return Err(EncodeError::budget(
            BudgetPhase::Bounded,
            BudgetSpent {
                stats,
                raised: Vec::new(),
            },
        ));
    }
    match best {
        Some((cost, enc)) => done(enc, cost, stats),
        None => Err(EncodeError::TooLarge {
            what: "no injective selection of the requested length",
        }),
    }
}

struct EnumCtx<'a> {
    cs: &'a ConstraintSet,
    candidates: &'a [Dichotomy],
    c: usize,
    cost: CostFunction,
    max_espresso_iters: Option<u64>,
    /// Latched by whichever branch first observes an interrupt, so every
    /// other branch stops at its next leaf.
    stop: &'a AtomicBool,
    scope: &'a BudgetScope,
}

#[derive(Default)]
struct BranchOut {
    best: Option<(u64, Encoding)>,
    evals: u64,
    espresso_iters: u64,
    stopped: bool,
}

fn enumerate(ctx: &EnumCtx<'_>, start: usize, chosen: &mut Vec<usize>, out: &mut BranchOut) {
    if chosen.len() == ctx.c {
        // One interrupt check per leaf is cheap next to a cost evaluation.
        if ctx.stop.load(Ordering::Relaxed) || ctx.scope.interrupted() {
            ctx.stop.store(true, Ordering::Relaxed);
            out.stopped = true;
            return;
        }
        let cols: Vec<Dichotomy> = chosen.iter().map(|&i| ctx.candidates[i].clone()).collect();
        let enc = Encoding::from_columns(ctx.cs.num_symbols(), &cols);
        // Injectivity first.
        let mut codes = enc.codes().to_vec();
        codes.sort_unstable();
        if codes.windows(2).any(|w| w[0] == w[1]) {
            return;
        }
        let (value, iters) = cost_of_with(ctx.cs, &enc, ctx.cost, ctx.max_espresso_iters);
        out.evals += 1;
        out.espresso_iters += iters;
        if out.best.as_ref().is_none_or(|(b, _)| value < *b) {
            out.best = Some((value, enc));
        }
        return;
    }
    let remaining = ctx.c - chosen.len();
    for i in start..=(ctx.candidates.len().saturating_sub(remaining)) {
        chosen.push(i);
        enumerate(ctx, i + 1, chosen, out);
        chosen.pop();
        if out.stopped {
            return;
        }
    }
}

#[cfg(test)]
mod tests {
    #![allow(deprecated)] // the wrappers stay covered until removal
    use super::*;
    use crate::{count_violations, heuristic_encode, HeuristicOptions};

    #[test]
    fn satisfiable_instances_reach_zero() {
        let mut cs = ConstraintSet::new(4);
        cs.add_face([0, 1]);
        cs.add_face([2, 3]);
        let (enc, cost) = bounded_exact_encode(&cs, &BoundedExactOptions::default()).unwrap();
        assert_eq!(cost, 0);
        assert_eq!(count_violations(&cs, &enc), 0);
        assert_eq!(enc.width(), 2);
    }

    #[test]
    fn figure_3_at_three_bits_has_positive_minimum() {
        // Figure 3's constraints need 4 bits; the exact 3-bit minimum is
        // some positive violation count that the heuristic cannot beat.
        let mut cs = ConstraintSet::new(5);
        cs.add_face([0, 2, 4]);
        cs.add_face([0, 1, 4]);
        cs.add_face([1, 2, 3]);
        cs.add_face([1, 3, 4]);
        let (_, exact_cost) = bounded_exact_encode(&cs, &BoundedExactOptions::default()).unwrap();
        assert!(exact_cost >= 1);
        let heur = heuristic_encode(&cs, &HeuristicOptions::default()).unwrap();
        assert!(count_violations(&cs, &heur) as u64 >= exact_cost);
    }

    #[test]
    fn four_bit_selection_satisfies_figure_3() {
        let mut cs = ConstraintSet::new(5);
        cs.add_face([0, 2, 4]);
        cs.add_face([0, 1, 4]);
        cs.add_face([1, 2, 3]);
        cs.add_face([1, 3, 4]);
        let opts = BoundedExactOptions {
            code_length: Some(4),
            ..Default::default()
        };
        let (_, cost) = bounded_exact_encode(&cs, &opts).unwrap();
        assert_eq!(cost, 0);
    }

    #[test]
    fn thread_counts_agree_bitwise() {
        let mut cs = ConstraintSet::new(5);
        cs.add_face([0, 2, 4]);
        cs.add_face([0, 1, 4]);
        cs.add_face([1, 2, 3]);
        cs.add_face([1, 3, 4]);
        let encode = |par: Parallelism| {
            let opts = BoundedExactOptions {
                parallelism: par,
                ..Default::default()
            };
            bounded_exact_encode(&cs, &opts).unwrap()
        };
        let (ref_enc, ref_cost) = encode(Parallelism::Off);
        for par in [
            Parallelism::Fixed(1),
            Parallelism::Fixed(4),
            Parallelism::Auto,
        ] {
            let (enc, cost) = encode(par);
            assert_eq!(cost, ref_cost, "{par:?} cost diverged");
            assert_eq!(enc.codes(), ref_enc.codes(), "{par:?} codes diverged");
        }
    }

    #[test]
    fn instance_limits_are_enforced() {
        let cs = ConstraintSet::new(12);
        assert!(matches!(
            bounded_exact_encode(&cs, &BoundedExactOptions::default()),
            Err(EncodeError::TooLarge { .. })
        ));
        let opts = BoundedExactOptions {
            max_symbols: 12,
            max_selections: 10,
            ..Default::default()
        };
        assert!(matches!(
            bounded_exact_encode(&cs, &opts),
            Err(EncodeError::TooLarge { .. })
        ));
    }

    #[test]
    fn eval_budget_gate_fails_before_any_work() {
        let mut cs = ConstraintSet::new(5);
        cs.add_face([0, 1]);
        for par in [Parallelism::Off, Parallelism::Fixed(4)] {
            let opts = BoundedExactOptions::default()
                .with_parallelism(par)
                .with_budget(Budget::unlimited().with_max_evals(3));
            match bounded_exact_encode(&cs, &opts) {
                Err(EncodeError::Budget { phase, spent }) => {
                    assert_eq!(phase, BudgetPhase::Bounded);
                    assert_eq!(spent.stats.evals, 0, "the gate fires upfront");
                }
                other => panic!("expected budget expiry, got {other:?}"),
            }
        }
    }

    #[test]
    fn report_counts_evaluations_identically_across_threads() {
        let mut cs = ConstraintSet::new(4);
        cs.add_face([0, 1]);
        let r = bounded_exact_encode_report(&cs, &BoundedExactOptions::default()).unwrap();
        assert!(r.stats.evals > 0);
        let r2 = bounded_exact_encode_report(
            &cs,
            &BoundedExactOptions::default().with_parallelism(Parallelism::Fixed(4)),
        )
        .unwrap();
        assert_eq!(r.stats.work_units(), r2.stats.work_units());
        assert_eq!(r.encoding.codes(), r2.encoding.codes());
    }

    #[test]
    fn cancelled_sweep_reports_bounded_expiry() {
        let token = ioenc_cover::CancelToken::new();
        token.cancel();
        let cs = ConstraintSet::new(5);
        let opts =
            BoundedExactOptions::default().with_budget(Budget::unlimited().with_cancel(token));
        assert!(matches!(
            bounded_exact_encode(&cs, &opts),
            Err(EncodeError::Budget {
                phase: BudgetPhase::Bounded,
                ..
            })
        ));
    }

    #[test]
    fn too_short_length_rejected() {
        let cs = ConstraintSet::new(5);
        let opts = BoundedExactOptions {
            code_length: Some(2),
            ..Default::default()
        };
        assert!(matches!(
            bounded_exact_encode(&cs, &opts),
            Err(EncodeError::WidthExceeded)
        ));
    }
}
