//! The exact version of problem P-3 (Section 7.1): enumerate all 2^(n-1)
//! encoding-dichotomies and select the fixed-size subset minimizing the
//! cost function — "clearly infeasible on all but trivial instances", which
//! is exactly why the paper develops the heuristic. This implementation
//! exists as the reference point for the heuristic on small instances.

use crate::cost::{cost_of, CostFunction};
use crate::{ConstraintSet, Dichotomy, EncodeError, Encoding};
use ioenc_cover::Parallelism;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Options for [`bounded_exact_encode`].
///
/// Construct with [`BoundedExactOptions::new`] (or `default()`) and refine
/// with the `with_*` methods; the struct is `#[non_exhaustive]`, so future
/// options can be added without breaking callers.
///
/// ```
/// use ioenc_core::{BoundedExactOptions, CostFunction};
///
/// let opts = BoundedExactOptions::new()
///     .with_code_length(4)
///     .with_cost(CostFunction::Cubes);
/// assert_eq!(opts.code_length, Some(4));
/// ```
#[derive(Debug, Clone)]
#[non_exhaustive]
pub struct BoundedExactOptions {
    /// Code length; `None` uses the minimum `⌈log₂ n⌉`.
    pub code_length: Option<usize>,
    /// Cost function to minimize.
    pub cost: CostFunction,
    /// Refuse instances with more symbols than this (the candidate pool is
    /// `2^(n-1) − 1`).
    pub max_symbols: usize,
    /// Refuse instances whose selection space exceeds this many subsets.
    pub max_selections: u64,
    /// Thread policy for the enumeration; results are bit-identical across
    /// settings.
    pub parallelism: Parallelism,
}

impl Default for BoundedExactOptions {
    fn default() -> Self {
        BoundedExactOptions {
            code_length: None,
            cost: CostFunction::Violations,
            max_symbols: 8,
            max_selections: 5_000_000,
            parallelism: Parallelism::Auto,
        }
    }
}

impl BoundedExactOptions {
    /// The default options (minimum code length, violation cost).
    pub fn new() -> Self {
        Self::default()
    }

    /// Requests an explicit code length instead of the minimum `⌈log₂ n⌉`.
    pub fn with_code_length(mut self, bits: usize) -> Self {
        self.code_length = Some(bits);
        self
    }

    /// Sets the cost function to minimize.
    pub fn with_cost(mut self, cost: CostFunction) -> Self {
        self.cost = cost;
        self
    }

    /// Sets the largest accepted symbol count.
    pub fn with_max_symbols(mut self, max: usize) -> Self {
        self.max_symbols = max;
        self
    }

    /// Sets the largest accepted selection-space size.
    pub fn with_max_selections(mut self, max: u64) -> Self {
        self.max_selections = max;
        self
    }

    /// Sets the thread policy.
    pub fn with_parallelism(mut self, parallelism: Parallelism) -> Self {
        self.parallelism = parallelism;
        self
    }
}

/// Exhaustively finds the minimum-cost encoding of the requested length
/// (the *candidate generation* + *selection* formulation the paper gives
/// before the heuristic). Returns the encoding and its cost.
///
/// # Errors
///
/// * [`EncodeError::TooLarge`] beyond the configured instance limits;
/// * [`EncodeError::WidthExceeded`] for lengths that cannot give distinct
///   codes.
pub fn bounded_exact_encode(
    cs: &ConstraintSet,
    opts: &BoundedExactOptions,
) -> Result<(Encoding, u64), EncodeError> {
    let n = cs.num_symbols();
    if n > opts.max_symbols {
        return Err(EncodeError::TooLarge {
            what: "bounded exact enumeration",
        });
    }
    if n == 0 {
        return Ok((Encoding::new(0, Vec::new()), 0));
    }
    let min_len = usize::max(1, (usize::BITS - (n - 1).leading_zeros()) as usize);
    let c = opts.code_length.unwrap_or(min_len);
    if c >= 64 || (1u64 << c) < n as u64 {
        return Err(EncodeError::WidthExceeded);
    }
    if n == 1 {
        return Ok((Encoding::new(c, vec![0]), 0));
    }

    // All 2^(n-1) − 1 distinct encoding-dichotomies (symbol 0 pinned to
    // the left block; for input-type cost functions orientation is
    // immaterial).
    let mut candidates: Vec<Dichotomy> = Vec::new();
    for mask in 1u64..(1 << (n - 1)) {
        let right: Vec<usize> = (1..n).filter(|&s| mask >> (s - 1) & 1 == 1).collect();
        let left: Vec<usize> = (0..n)
            .filter(|&s| s == 0 || mask >> (s - 1) & 1 == 0)
            .collect();
        candidates.push(Dichotomy::from_blocks(n, left, right));
    }

    // Selection-space size check: C(|candidates|, c).
    let mut selections = 1u64;
    for i in 0..c as u64 {
        selections = selections.saturating_mul(candidates.len() as u64 - i) / (i + 1);
        if selections > opts.max_selections {
            return Err(EncodeError::TooLarge {
                what: "bounded exact selection space",
            });
        }
    }

    // The search branches on the first selected candidate; branches are
    // independent (the running minimum never prunes, it only filters the
    // final compare), so each branch computes its own first-in-order
    // minimum and a strict-`<` merge in branch order reproduces the
    // sequential result exactly. A work-stealing index balances the
    // heavily skewed branch sizes.
    let last_start = candidates.len().saturating_sub(c);
    let threads = opts.parallelism.threads().min(last_start + 1);
    let mut best: Option<(u64, Encoding)> = None;
    if threads <= 1 {
        let mut chosen = Vec::with_capacity(c);
        enumerate(cs, &candidates, c, 0, &mut chosen, &mut best, opts.cost);
    } else {
        let next = AtomicUsize::new(0);
        let results: Vec<Mutex<Option<(u64, Encoding)>>> =
            (0..=last_start).map(|_| Mutex::new(None)).collect();
        std::thread::scope(|s| {
            for _ in 0..threads {
                s.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i > last_start {
                        break;
                    }
                    let mut local: Option<(u64, Encoding)> = None;
                    let mut chosen = vec![i];
                    enumerate(
                        cs,
                        &candidates,
                        c,
                        i + 1,
                        &mut chosen,
                        &mut local,
                        opts.cost,
                    );
                    *results[i].lock().expect("branch result poisoned") = local;
                });
            }
        });
        for slot in results {
            let local = slot.into_inner().expect("branch result poisoned");
            if let Some((cost, enc)) = local {
                if best.as_ref().is_none_or(|(b, _)| cost < *b) {
                    best = Some((cost, enc));
                }
            }
        }
    }
    match best {
        Some((cost, enc)) => Ok((enc, cost)),
        None => Err(EncodeError::TooLarge {
            what: "no injective selection of the requested length",
        }),
    }
}

fn enumerate(
    cs: &ConstraintSet,
    candidates: &[Dichotomy],
    c: usize,
    start: usize,
    chosen: &mut Vec<usize>,
    best: &mut Option<(u64, Encoding)>,
    cost: CostFunction,
) {
    if chosen.len() == c {
        let cols: Vec<Dichotomy> = chosen.iter().map(|&i| candidates[i].clone()).collect();
        let enc = Encoding::from_columns(cs.num_symbols(), &cols);
        // Injectivity first.
        let mut codes = enc.codes().to_vec();
        codes.sort_unstable();
        if codes.windows(2).any(|w| w[0] == w[1]) {
            return;
        }
        let value = cost_of(cs, &enc, cost);
        if best.as_ref().is_none_or(|(b, _)| value < *b) {
            *best = Some((value, enc));
        }
        return;
    }
    let remaining = c - chosen.len();
    for i in start..=(candidates.len().saturating_sub(remaining)) {
        chosen.push(i);
        enumerate(cs, candidates, c, i + 1, chosen, best, cost);
        chosen.pop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{count_violations, heuristic_encode, HeuristicOptions};

    #[test]
    fn satisfiable_instances_reach_zero() {
        let mut cs = ConstraintSet::new(4);
        cs.add_face([0, 1]);
        cs.add_face([2, 3]);
        let (enc, cost) = bounded_exact_encode(&cs, &BoundedExactOptions::default()).unwrap();
        assert_eq!(cost, 0);
        assert_eq!(count_violations(&cs, &enc), 0);
        assert_eq!(enc.width(), 2);
    }

    #[test]
    fn figure_3_at_three_bits_has_positive_minimum() {
        // Figure 3's constraints need 4 bits; the exact 3-bit minimum is
        // some positive violation count that the heuristic cannot beat.
        let mut cs = ConstraintSet::new(5);
        cs.add_face([0, 2, 4]);
        cs.add_face([0, 1, 4]);
        cs.add_face([1, 2, 3]);
        cs.add_face([1, 3, 4]);
        let (_, exact_cost) = bounded_exact_encode(&cs, &BoundedExactOptions::default()).unwrap();
        assert!(exact_cost >= 1);
        let heur = heuristic_encode(&cs, &HeuristicOptions::default()).unwrap();
        assert!(count_violations(&cs, &heur) as u64 >= exact_cost);
    }

    #[test]
    fn four_bit_selection_satisfies_figure_3() {
        let mut cs = ConstraintSet::new(5);
        cs.add_face([0, 2, 4]);
        cs.add_face([0, 1, 4]);
        cs.add_face([1, 2, 3]);
        cs.add_face([1, 3, 4]);
        let opts = BoundedExactOptions {
            code_length: Some(4),
            ..Default::default()
        };
        let (_, cost) = bounded_exact_encode(&cs, &opts).unwrap();
        assert_eq!(cost, 0);
    }

    #[test]
    fn thread_counts_agree_bitwise() {
        let mut cs = ConstraintSet::new(5);
        cs.add_face([0, 2, 4]);
        cs.add_face([0, 1, 4]);
        cs.add_face([1, 2, 3]);
        cs.add_face([1, 3, 4]);
        let encode = |par: Parallelism| {
            let opts = BoundedExactOptions {
                parallelism: par,
                ..Default::default()
            };
            bounded_exact_encode(&cs, &opts).unwrap()
        };
        let (ref_enc, ref_cost) = encode(Parallelism::Off);
        for par in [
            Parallelism::Fixed(1),
            Parallelism::Fixed(4),
            Parallelism::Auto,
        ] {
            let (enc, cost) = encode(par);
            assert_eq!(cost, ref_cost, "{par:?} cost diverged");
            assert_eq!(enc.codes(), ref_enc.codes(), "{par:?} codes diverged");
        }
    }

    #[test]
    fn instance_limits_are_enforced() {
        let cs = ConstraintSet::new(12);
        assert!(matches!(
            bounded_exact_encode(&cs, &BoundedExactOptions::default()),
            Err(EncodeError::TooLarge { .. })
        ));
        let opts = BoundedExactOptions {
            max_symbols: 12,
            max_selections: 10,
            ..Default::default()
        };
        assert!(matches!(
            bounded_exact_encode(&cs, &opts),
            Err(EncodeError::TooLarge { .. })
        ));
    }

    #[test]
    fn too_short_length_rejected() {
        let cs = ConstraintSet::new(5);
        let opts = BoundedExactOptions {
            code_length: Some(2),
            ..Default::default()
        };
        assert!(matches!(
            bounded_exact_encode(&cs, &opts),
            Err(EncodeError::WidthExceeded)
        ));
    }
}
