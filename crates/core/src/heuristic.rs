//! Problem P-3: bounded-length encoding by recursive splitting, merging and
//! selection (Section 7.1).

use crate::budget::{Budget, BudgetPhase, BudgetScope, BudgetSpent};
use crate::cost::{cost_of_with, CostFunction};
use crate::par::par_chunks;
use crate::partition::{bipartition, PartitionOptions};
use crate::stats::SolverStats;
use crate::{initial_dichotomies, ConstraintSet, Dichotomy, EncodeError, Encoding};
use ioenc_bitset::BitSet;
use ioenc_cover::Parallelism;
use std::time::Instant;

/// Options for [`heuristic_encode`].
///
/// Construct with [`HeuristicOptions::new`] (or `default()`) and refine
/// with the `with_*` methods; the struct is `#[non_exhaustive]`, so future
/// options can be added without breaking callers.
///
/// ```
/// use ioenc_core::{CostFunction, HeuristicOptions};
///
/// let opts = HeuristicOptions::new()
///     .with_cost(CostFunction::Cubes)
///     .with_selection_cap(60);
/// assert_eq!(opts.selection_cap, 60);
/// ```
#[derive(Debug, Clone)]
#[non_exhaustive]
pub struct HeuristicOptions {
    /// Desired code length; `None` uses the minimum `⌈log₂ n⌉` (the
    /// "minimum code length" setting of Tables 2 and 3).
    pub code_length: Option<usize>,
    /// Cost function to minimize.
    pub cost: CostFunction,
    /// Budget of full cost evaluations per merge node (the paper: "the
    /// number of evaluations can be restricted to some fixed number").
    pub selection_cap: usize,
    /// Partitioning passes per split.
    pub passes: usize,
    /// Thread policy for the selection step's neighbor evaluations;
    /// results are bit-identical across settings.
    pub parallelism: Parallelism,
    /// Resource budget. The heuristic is an anytime algorithm: only an
    /// already-exhausted budget at entry is an error; a budget expiring
    /// mid-run stops further improvement and returns the best encoding
    /// found so far.
    pub budget: Budget,
}

impl Default for HeuristicOptions {
    fn default() -> Self {
        HeuristicOptions {
            code_length: None,
            cost: CostFunction::Violations,
            selection_cap: 400,
            passes: 8,
            parallelism: Parallelism::Auto,
            budget: Budget::unlimited(),
        }
    }
}

impl HeuristicOptions {
    /// The default options (minimum code length, violation cost).
    pub fn new() -> Self {
        Self::default()
    }

    /// Requests an explicit code length instead of the minimum `⌈log₂ n⌉`.
    pub fn with_code_length(mut self, bits: usize) -> Self {
        self.code_length = Some(bits);
        self
    }

    /// Sets the cost function to minimize.
    pub fn with_cost(mut self, cost: CostFunction) -> Self {
        self.cost = cost;
        self
    }

    /// Sets the evaluation budget per merge node.
    pub fn with_selection_cap(mut self, cap: usize) -> Self {
        self.selection_cap = cap;
        self
    }

    /// Sets the partitioning passes per split.
    pub fn with_passes(mut self, passes: usize) -> Self {
        self.passes = passes;
        self
    }

    /// Sets the thread policy.
    pub fn with_parallelism(mut self, parallelism: Parallelism) -> Self {
        self.parallelism = parallelism;
        self
    }

    /// Installs a resource [`Budget`].
    pub fn with_budget(mut self, budget: Budget) -> Self {
        self.budget = budget;
        self
    }
}

/// The detailed result of [`heuristic_encode_report`].
#[derive(Debug, Clone)]
pub struct HeuristicReport {
    /// The best encoding found.
    pub encoding: Encoding,
    /// Evaluation counters and timings.
    pub stats: SolverStats,
    /// `false` when a budget limit stopped the search before its normal
    /// fixpoint (the encoding is still valid and injective).
    pub converged: bool,
}

/// Encodes the symbols in a fixed number of bits, minimizing the chosen
/// cost function (Section 7.1).
///
/// The algorithm recursively **splits** the symbols with a
/// Kernighan–Lin-style partitioner (nets = the face constraints and
/// initial dichotomies restricted to the subset), **merges** the restricted
/// dichotomies of the two halves by cross product (in both orientations,
/// plus the partition dichotomy itself), and **selects** the best bounded
/// set of dichotomies under the cost function, evaluated on the constraints
/// restricted to the subset (a global view, per the paper).
///
/// The returned encoding always assigns distinct codes.
///
/// # Errors
///
/// [`EncodeError::TooLarge`] when `2^code_length < n` (no injective
/// encoding exists) and [`EncodeError::WidthExceeded`] for lengths over 64.
///
/// # Examples
///
/// ```
/// use ioenc_core::{heuristic_encode, ConstraintSet, HeuristicOptions};
///
/// let mut cs = ConstraintSet::new(5);
/// cs.add_face([0, 2, 4]);
/// cs.add_face([0, 1, 4]);
/// cs.add_face([1, 2, 3]);
/// cs.add_face([1, 3, 4]);
/// // Figure 3 needs 4 bits to satisfy everything; ask for 3.
/// let enc = heuristic_encode(&cs, &HeuristicOptions::default())?;
/// assert_eq!(enc.width(), 3);
/// # Ok::<(), ioenc_core::EncodeError>(())
/// ```
#[deprecated(note = "use Solver::new().mode(SolverMode::Heuristic)")]
pub fn heuristic_encode(
    cs: &ConstraintSet,
    opts: &HeuristicOptions,
) -> Result<Encoding, EncodeError> {
    heuristic_encode_report(cs, opts).map(|r| r.encoding)
}

/// Like [`heuristic_encode`] but returns the full [`HeuristicReport`]
/// (evaluation counters, timings, whether a budget cut the search short).
///
/// # Errors
///
/// As for [`heuristic_encode`], plus [`EncodeError::Budget`] when the
/// budget is already exhausted *at entry* (no evaluations left, deadline
/// already passed, or cancelled). A budget expiring mid-run is not an
/// error: the search stops and reports `converged: false`.
pub fn heuristic_encode_report(
    cs: &ConstraintSet,
    opts: &HeuristicOptions,
) -> Result<HeuristicReport, EncodeError> {
    let start = Instant::now();
    let n = cs.num_symbols();
    let min_len = usize::max(1, (usize::BITS - (n.max(1) - 1).leading_zeros()) as usize);
    let c = opts.code_length.unwrap_or(min_len);
    if n == 0 {
        return Ok(HeuristicReport {
            encoding: Encoding::new(0, Vec::new()),
            stats: SolverStats::default(),
            converged: true,
        });
    }
    if c > 64 {
        return Err(EncodeError::WidthExceeded);
    }
    if n > 1 && c < 64 && (1usize << c) < n {
        return Err(EncodeError::TooLarge {
            what: "code length cannot give distinct codes",
        });
    }
    let scope = opts.budget.scope();
    if opts.budget.max_evals == Some(0) || scope.interrupted() {
        return Err(EncodeError::budget(
            BudgetPhase::Heuristic,
            BudgetSpent::default(),
        ));
    }
    if n == 1 {
        return Ok(HeuristicReport {
            encoding: Encoding::new(c, vec![0]),
            stats: SolverStats::default(),
            converged: true,
        });
    }

    let initial = initial_dichotomies(cs, !cs.has_output_constraints());
    let symbols: Vec<usize> = (0..n).collect();
    let mut ctx = EvalCtx {
        evals: 0,
        espresso_iters: 0,
        max_evals: opts.budget.max_evals,
        max_espresso_iters: opts.budget.max_espresso_iters,
        scope: &scope,
        stopped: false,
    };
    let mut columns = solve(cs, &initial, &symbols, c, opts, &mut ctx);
    // The recursion may need fewer than the requested columns for unique
    // codes; pad to the requested length so the polish phase can spread
    // codes over the whole 2^c space.
    while columns.len() < c {
        columns.push(Dichotomy::from_blocks(n, [], 0..n));
    }
    let enc = Encoding::from_columns(n, &columns);
    debug_assert!({
        let mut codes = enc.codes().to_vec();
        codes.sort_unstable();
        codes.windows(2).all(|w| w[0] != w[1])
    });
    let encoding = polish(cs, enc, opts, &mut ctx);
    let mut stats = SolverStats {
        evals: ctx.evals,
        espresso_iters: ctx.espresso_iters,
        ..Default::default()
    };
    stats.timings.total = start.elapsed();
    Ok(HeuristicReport {
        encoding,
        stats,
        converged: !ctx.stopped,
    })
}

/// The final polish pass: hill-climb on code swaps and moves to unused
/// codes — first on the (cheap) violation count, then, when a different
/// cost function is requested, a bounded number of evaluations of the real
/// cost (the "global view" refinement the selection step approximates).
fn polish(
    cs: &ConstraintSet,
    enc: Encoding,
    opts: &HeuristicOptions,
    ctx: &mut EvalCtx<'_>,
) -> Encoding {
    let n = cs.num_symbols();
    let width = enc.width();
    if n < 2 || width == 0 || width >= 64 {
        return enc;
    }
    let total = 1u64 << width;
    let mut codes = enc.codes().to_vec();

    // Phase 1: violations (semantic checks only — cheap), hill-climbing
    // with a few deterministic perturb-and-retry restarts to escape
    // shallow local optima.
    codes = violation_hill_climb(cs, codes, width, ctx);
    let mut best = ctx.eval(
        cs,
        &Encoding::new(width, codes.clone()),
        CostFunction::Violations,
    );
    for round in 0..3 {
        if best == 0 || ctx.exhausted() {
            break;
        }
        // Perturb: rotate the codes of the symbols of a violated face
        // constraint (pick by round to vary the kick).
        let mut trial = codes.clone();
        let enc_now = Encoding::new(width, trial.clone());
        let violated: Vec<usize> = enc_now
            .verify(cs)
            .into_iter()
            .filter_map(|v| match v {
                crate::Violation::Face { index, .. } => Some(index),
                _ => None,
            })
            .collect();
        if violated.is_empty() {
            break;
        }
        let fc = &cs.faces()[violated[round % violated.len()]];
        let members: Vec<usize> = fc.members.iter().collect();
        if members.len() >= 2 {
            let first = trial[members[0]];
            for w in members.windows(2) {
                trial[w[0]] = trial[w[1]];
            }
            trial[members[members.len() - 1]] = first;
        }
        let trial = violation_hill_climb(cs, trial, width, ctx);
        let cost = ctx.eval(
            cs,
            &Encoding::new(width, trial.clone()),
            CostFunction::Violations,
        );
        if cost < best {
            best = cost;
            codes = trial;
        }
    }

    // Phase 2: the requested cost function, within the evaluation budget
    // (swaps plus moves to unused codes). The objective is lexicographic
    // (cost, violations): moves that do not change the cost but recover a
    // constraint are accepted, keeping the satisfied count high.
    if !matches!(opts.cost, CostFunction::Violations) {
        let mut budget = opts.selection_cap * 2;
        let score = |codes: &Vec<u64>, ctx: &mut EvalCtx<'_>| -> (u64, u64) {
            let e = Encoding::new(width, codes.clone());
            (
                ctx.eval(cs, &e, opts.cost),
                ctx.eval(cs, &e, CostFunction::Violations),
            )
        };
        let mut best = score(&codes, ctx);
        let mut improved = true;
        while improved && budget > 0 && !ctx.exhausted() {
            improved = false;
            'swaps: for a in 0..n {
                for b in (a + 1)..n {
                    if budget == 0 || ctx.exhausted() {
                        break 'swaps;
                    }
                    codes.swap(a, b);
                    budget -= 1;
                    let c = score(&codes, ctx);
                    if c < best {
                        best = c;
                        improved = true;
                    } else {
                        codes.swap(a, b);
                    }
                }
            }
            if total as usize > n {
                'moves: for s in 0..n {
                    for code in 0..total {
                        if codes.contains(&code) {
                            continue;
                        }
                        if budget == 0 || ctx.exhausted() {
                            break 'moves;
                        }
                        let old = codes[s];
                        codes[s] = code;
                        budget -= 1;
                        let c = score(&codes, ctx);
                        if c < best {
                            best = c;
                            improved = true;
                        } else {
                            codes[s] = old;
                        }
                    }
                }
            }
        }
    }
    Encoding::new(width, codes)
}

/// Hill-climbs the violation count with pairwise swaps and moves to unused
/// codes until a fixpoint.
fn violation_hill_climb(
    cs: &ConstraintSet,
    mut codes: Vec<u64>,
    width: usize,
    ctx: &mut EvalCtx<'_>,
) -> Vec<u64> {
    let n = codes.len();
    let total = 1u64 << width;
    let mut best = ctx.eval(
        cs,
        &Encoding::new(width, codes.clone()),
        CostFunction::Violations,
    );
    loop {
        if ctx.exhausted() {
            return codes;
        }
        let mut improved = false;
        for a in 0..n {
            if ctx.exhausted() {
                return codes;
            }
            for b in (a + 1)..n {
                codes.swap(a, b);
                let c = ctx.eval(
                    cs,
                    &Encoding::new(width, codes.clone()),
                    CostFunction::Violations,
                );
                if c < best {
                    best = c;
                    improved = true;
                } else {
                    codes.swap(a, b);
                }
            }
        }
        if total as usize > n {
            for s in 0..n {
                if ctx.exhausted() {
                    return codes;
                }
                for code in 0..total {
                    if codes.contains(&code) {
                        continue;
                    }
                    let old = codes[s];
                    codes[s] = code;
                    let c = ctx.eval(
                        cs,
                        &Encoding::new(width, codes.clone()),
                        CostFunction::Violations,
                    );
                    if c < best {
                        best = c;
                        improved = true;
                    } else {
                        codes[s] = old;
                    }
                }
            }
        }
        if !improved {
            return codes;
        }
    }
}

/// Shared evaluation accounting for one heuristic run: global counters,
/// the budget limits, and a latch that flips once any limit trips.
///
/// The counters advance at deterministic points (whole batches in the
/// selection step, single evaluations elsewhere), so with only work-unit
/// limits the stop point — and therefore the result — is bit-identical
/// across thread counts; the deadline and the cancel token trade that for
/// bounded latency.
struct EvalCtx<'a> {
    evals: u64,
    espresso_iters: u64,
    max_evals: Option<u64>,
    max_espresso_iters: Option<u64>,
    scope: &'a BudgetScope,
    stopped: bool,
}

impl EvalCtx<'_> {
    /// Whether the run must stop improving (latched).
    fn exhausted(&mut self) -> bool {
        if !self.stopped
            && (self.max_evals.is_some_and(|m| self.evals >= m) || self.scope.interrupted())
        {
            self.stopped = true;
        }
        self.stopped
    }

    /// Records `evals` cost evaluations spending `iters` ESPRESSO
    /// iterations.
    fn charge(&mut self, evals: u64, iters: u64) {
        self.evals += evals;
        self.espresso_iters += iters;
    }

    /// One budgeted evaluation of `enc` against `cs`.
    fn eval(&mut self, cs: &ConstraintSet, enc: &Encoding, cost: CostFunction) -> u64 {
        let (value, iters) = cost_of_with(cs, enc, cost, self.max_espresso_iters);
        self.charge(1, iters);
        value
    }
}

/// Recursive split/merge/select. Returns up to `c` dichotomies, each a
/// full bipartition of `symbols`, jointly giving distinct codes.
fn solve(
    cs: &ConstraintSet,
    initial: &[Dichotomy],
    symbols: &[usize],
    c: usize,
    opts: &HeuristicOptions,
    ctx: &mut EvalCtx<'_>,
) -> Vec<Dichotomy> {
    let n = cs.num_symbols();
    match symbols.len() {
        0 => return Vec::new(),
        1 => {
            return vec![Dichotomy::from_blocks(n, [symbols[0]], [])];
        }
        2 => {
            return vec![Dichotomy::from_blocks(n, [symbols[0]], [symbols[1]])];
        }
        _ => {}
    }

    // Split: nets are the face constraints and initial dichotomies
    // restricted to this subset, in local numbering.
    let local: std::collections::HashMap<usize, usize> =
        symbols.iter().enumerate().map(|(i, &s)| (s, i)).collect();
    // Per the paper, the nets depend on the cost function: face constraints
    // when minimizing violated constraints, restricted initial dichotomies
    // when minimizing cubes or literals (covering more of them means fewer
    // product terms in the encoded cover).
    let mut nets: Vec<BitSet> = Vec::new();
    for fc in cs.faces() {
        let members: Vec<usize> = fc
            .members
            .iter()
            .filter_map(|s| local.get(&s).copied())
            .collect();
        if members.len() >= 2 {
            nets.push(BitSet::from_indices(symbols.len(), members));
        }
    }
    if !matches!(opts.cost, CostFunction::Violations) {
        for d in initial {
            let involved: Vec<usize> = d
                .left()
                .iter()
                .chain(d.right().iter())
                .filter_map(|s| local.get(&s).copied())
                .collect();
            if involved.len() >= 2 {
                nets.push(BitSet::from_indices(symbols.len(), involved));
            }
        }
    }
    let max_side = if c >= 1 && c - 1 < usize::BITS as usize {
        (1usize << (c - 1)).min(symbols.len() - 1)
    } else {
        symbols.len() - 1
    };
    let (a_local, b_local) = bipartition(
        symbols.len(),
        &nets,
        &PartitionOptions {
            max_side,
            passes: opts.passes,
        },
    );
    let part_a: Vec<usize> = a_local.iter().map(|&i| symbols[i]).collect();
    let part_b: Vec<usize> = b_local.iter().map(|&i| symbols[i]).collect();

    // Recurse with one less bit.
    let d1 = solve(cs, initial, &part_a, c - 1, opts, ctx);
    let d2 = solve(cs, initial, &part_b, c - 1, opts, ctx);

    // Merge: the partition dichotomy plus the cross product of the halves'
    // dichotomies in both orientations.
    let part = Dichotomy::from_blocks(n, part_a.iter().copied(), part_b.iter().copied());
    let mut cands: Vec<Dichotomy> = vec![part.clone()];
    for u1 in &d1 {
        for u2 in &d2 {
            cands.push(u1.union(u2));
            cands.push(u1.union(&u2.flipped()));
        }
        if d2.is_empty() {
            cands.push(u1.clone());
        }
    }
    if d1.is_empty() {
        cands.extend(d2.iter().cloned());
    }
    cands.sort();
    cands.dedup();

    // Canonical selection: the partition dichotomy plus the pairwise
    // merges of the halves' dichotomies (padded with the last element of
    // the shorter list). It always yields distinct codes, because every
    // dichotomy of each half appears as a component.
    let mut canonical: Vec<Dichotomy> = vec![part];
    let pairs = d1.len().max(d2.len());
    for i in 0..pairs {
        let u1 = &d1[i.min(d1.len().saturating_sub(1))];
        match (d1.is_empty(), d2.is_empty()) {
            (false, false) => {
                let u2 = &d2[i.min(d2.len() - 1)];
                canonical.push(u1.union(u2));
            }
            (false, true) => canonical.push(u1.clone()),
            (true, false) => canonical.push(d2[i.min(d2.len() - 1)].clone()),
            (true, true) => {}
        }
    }

    select(cs, symbols, cands, canonical, c, opts, ctx)
}

/// Selects up to `k` candidate dichotomies giving distinct codes to
/// `symbols` and minimizing the cost of the restricted constraints.
fn select(
    cs: &ConstraintSet,
    symbols: &[usize],
    cands: Vec<Dichotomy>,
    canonical: Vec<Dichotomy>,
    k: usize,
    opts: &HeuristicOptions,
    ctx: &mut EvalCtx<'_>,
) -> Vec<Dichotomy> {
    let restricted = cs.restrict(symbols);
    let evaluate = |sel: &[&Dichotomy], ctx: &mut EvalCtx<'_>| -> Option<u64> {
        let codes = codes_for(symbols, sel)?;
        let enc = Encoding::new(sel.len(), codes);
        Some(ctx.eval(&restricted, &enc, opts.cost))
    };

    let k = k.min(cands.len());
    // Seed with the canonical selection — the merged sub-solutions plus the
    // partition dichotomy. It is injective by construction and inherits the
    // recursive solutions' quality; the local search below then recovers
    // constraints the split violated.
    // Every canonical dichotomy is in `cands` by construction, so the
    // position lookups all succeed; filter_map keeps the impossible miss
    // from panicking (the fill loop below would simply top the seed up).
    let mut selected: Vec<usize> = canonical
        .iter()
        .filter_map(|d| cands.iter().position(|c| c == d))
        .collect();
    selected.sort_unstable();
    selected.dedup();
    // Fill any remaining slots with candidates separating still-unseparated
    // pairs (more columns never hurt injectivity).
    let mut unseparated: Vec<(usize, usize)> = Vec::new();
    for i in 0..symbols.len() {
        for j in (i + 1)..symbols.len() {
            let (a, b) = (symbols[i], symbols[j]);
            if !selected.iter().any(|&c| cands[c].separates(a, b)) {
                unseparated.push((a, b));
            }
        }
    }
    while selected.len() < k && !unseparated.is_empty() {
        let best = (0..cands.len())
            .filter(|i| !selected.contains(i))
            .max_by_key(|&i| {
                unseparated
                    .iter()
                    .filter(|&&(a, b)| cands[i].separates(a, b))
                    .count()
            });
        let Some(best) = best else { break };
        selected.push(best);
        unseparated.retain(|&(a, b)| !cands[best].separates(a, b));
    }

    // Local search: best-improvement over one slot's replacements at a
    // time, within the evaluation budget. The whole replacement row is
    // evaluated as a batch (chunked over worker threads) and the winner is
    // the lowest-cost candidate with the lowest index, so the search path
    // is identical for every thread count. Global budget counters advance
    // at batch granularity, keeping the stop point deterministic too.
    let node_budget = ctx.evals + opts.selection_cap as u64;
    let threads = opts.parallelism.threads();
    let max_iters = ctx.max_espresso_iters;
    let sel_refs = |sel: &[usize], cands: &[Dichotomy]| -> Vec<Dichotomy> {
        sel.iter().map(|&i| cands[i].clone()).collect()
    };
    if ctx.exhausted() {
        return sel_refs(&selected, &cands);
    }
    let current_refs: Vec<&Dichotomy> = selected.iter().map(|&i| &cands[i]).collect();
    let mut best_cost = match evaluate(&current_refs, ctx) {
        Some(c) => c,
        None => {
            // Defensive: the seed should always be injective by now.
            return canonical;
        }
    };
    let mut improved = true;
    while improved && ctx.evals < node_budget && !ctx.exhausted() {
        improved = false;
        for slot in 0..selected.len() {
            if ctx.evals >= node_budget || ctx.exhausted() {
                break;
            }
            let outside: Vec<usize> = (0..cands.len()).filter(|i| !selected.contains(i)).collect();
            let costs: Vec<Option<(u64, u64)>> = par_chunks(outside.len(), threads, |range| {
                range
                    .map(|o| {
                        let mut trial = selected.clone();
                        trial[slot] = outside[o];
                        let refs: Vec<&Dichotomy> = trial.iter().map(|&i| &cands[i]).collect();
                        let codes = codes_for(symbols, &refs)?;
                        let enc = Encoding::new(refs.len(), codes);
                        Some(cost_of_with(&restricted, &enc, opts.cost, max_iters))
                    })
                    .collect()
            });
            let iters: u64 = costs.iter().flatten().map(|&(_, i)| i).sum();
            ctx.charge(outside.len() as u64, iters);
            let winner = costs
                .iter()
                .enumerate()
                .filter_map(|(o, c)| c.map(|(c, _)| (c, o)))
                .min();
            if let Some((cost, o)) = winner {
                if cost < best_cost {
                    best_cost = cost;
                    selected[slot] = outside[o];
                    improved = true;
                }
            }
        }
    }
    sel_refs(&selected, &cands)
}

/// Codes for `symbols` from a selection of dichotomies (bit `k` = 0 when in
/// the left block of selection `k`); `None` when codes collide.
fn codes_for(symbols: &[usize], sel: &[&Dichotomy]) -> Option<Vec<u64>> {
    let mut codes = vec![0u64; symbols.len()];
    for (k, d) in sel.iter().enumerate() {
        for (i, &s) in symbols.iter().enumerate() {
            if !d.in_left(s) {
                codes[i] |= 1 << k;
            }
        }
    }
    let mut sorted = codes.clone();
    sorted.sort_unstable();
    if sorted.windows(2).any(|w| w[0] == w[1]) {
        return None;
    }
    Some(codes)
}

#[cfg(test)]
mod tests {
    #![allow(deprecated)] // the wrappers stay covered until removal
    use super::*;
    use crate::count_violations;

    #[test]
    fn produces_unique_codes_at_minimum_length() {
        let mut cs = ConstraintSet::new(7);
        cs.add_face([0, 1, 2]);
        cs.add_face([2, 3]);
        cs.add_face([4, 5, 6]);
        let enc = heuristic_encode(&cs, &HeuristicOptions::default()).unwrap();
        assert_eq!(enc.width(), 3);
        let mut codes = enc.codes().to_vec();
        codes.sort_unstable();
        codes.dedup();
        assert_eq!(codes.len(), 7);
    }

    #[test]
    fn satisfiable_at_requested_length_often_satisfied() {
        // Two disjoint faces over 4 symbols are satisfiable in 2 bits; the
        // heuristic should find a violation-free encoding.
        let mut cs = ConstraintSet::new(4);
        cs.add_face([0, 1]);
        cs.add_face([2, 3]);
        let enc = heuristic_encode(&cs, &HeuristicOptions::default()).unwrap();
        assert_eq!(enc.width(), 2);
        assert_eq!(count_violations(&cs, &enc), 0);
    }

    #[test]
    fn figure_3_at_three_bits_leaves_violations() {
        // Figure 3's constraints need 4 bits; at the minimum length (3
        // bits for 5 symbols) some constraints must be violated.
        let mut cs = ConstraintSet::new(5);
        cs.add_face([0, 2, 4]);
        cs.add_face([0, 1, 4]);
        cs.add_face([1, 2, 3]);
        cs.add_face([1, 3, 4]);
        let enc = heuristic_encode(&cs, &HeuristicOptions::default()).unwrap();
        assert_eq!(enc.width(), 3);
        assert!(count_violations(&cs, &enc) >= 1);
    }

    #[test]
    fn explicit_length_gives_room_to_satisfy_everything() {
        let mut cs = ConstraintSet::new(5);
        cs.add_face([0, 2, 4]);
        cs.add_face([0, 1, 4]);
        cs.add_face([1, 2, 3]);
        cs.add_face([1, 3, 4]);
        let opts = HeuristicOptions {
            code_length: Some(4),
            ..Default::default()
        };
        let enc = heuristic_encode(&cs, &opts).unwrap();
        assert_eq!(enc.width(), 4);
        // 4 bits suffice (the exact encoder needs exactly 4); the heuristic
        // may or may not reach 0 violations but must stay injective.
        let mut codes = enc.codes().to_vec();
        codes.sort_unstable();
        codes.dedup();
        assert_eq!(codes.len(), 5);
    }

    #[test]
    fn cube_cost_function_runs() {
        let mut cs = ConstraintSet::new(6);
        cs.add_face([0, 1]);
        cs.add_face([2, 3, 4]);
        cs.add_face([4, 5]);
        let opts = HeuristicOptions {
            cost: CostFunction::Cubes,
            selection_cap: 50,
            ..Default::default()
        };
        let enc = heuristic_encode(&cs, &opts).unwrap();
        assert_eq!(enc.width(), 3);
    }

    #[test]
    fn literal_cost_function_runs() {
        let mut cs = ConstraintSet::new(5);
        cs.add_face_with_dc([0, 1], [2]);
        cs.add_face([3, 4]);
        let opts = HeuristicOptions {
            cost: CostFunction::Literals,
            selection_cap: 50,
            ..Default::default()
        };
        let enc = heuristic_encode(&cs, &opts).unwrap();
        assert_eq!(enc.width(), 3);
    }

    #[test]
    fn too_short_length_is_rejected() {
        let cs = ConstraintSet::new(5);
        let opts = HeuristicOptions {
            code_length: Some(2),
            ..Default::default()
        };
        assert!(matches!(
            heuristic_encode(&cs, &opts),
            Err(EncodeError::TooLarge { .. })
        ));
    }

    #[test]
    fn tiny_instances() {
        let cs = ConstraintSet::new(1);
        let enc = heuristic_encode(&cs, &HeuristicOptions::default()).unwrap();
        assert_eq!(enc.num_symbols(), 1);
        let cs = ConstraintSet::new(2);
        let enc = heuristic_encode(&cs, &HeuristicOptions::default()).unwrap();
        assert_eq!(enc.width(), 1);
        assert_ne!(enc.code(0), enc.code(1));
    }

    #[test]
    fn thread_counts_agree_bitwise() {
        let mut cs = ConstraintSet::new(9);
        cs.add_face([0, 1, 2]);
        cs.add_face([2, 3, 4]);
        cs.add_face([4, 5, 6]);
        cs.add_face([6, 7, 8]);
        cs.add_face([1, 5]);
        let encode = |par: Parallelism| {
            let opts = HeuristicOptions {
                cost: CostFunction::Cubes,
                selection_cap: 200,
                parallelism: par,
                ..Default::default()
            };
            heuristic_encode(&cs, &opts).unwrap().codes().to_vec()
        };
        let reference = encode(Parallelism::Off);
        for par in [
            Parallelism::Fixed(1),
            Parallelism::Fixed(4),
            Parallelism::Auto,
        ] {
            assert_eq!(encode(par), reference, "{par:?} diverged");
        }
    }

    #[test]
    fn exhausted_budget_at_entry_is_an_error() {
        let cs = ConstraintSet::new(4);
        let opts = HeuristicOptions::default().with_budget(Budget::unlimited().with_max_evals(0));
        assert!(matches!(
            heuristic_encode(&cs, &opts),
            Err(EncodeError::Budget {
                phase: BudgetPhase::Heuristic,
                ..
            })
        ));
    }

    #[test]
    fn mid_run_budget_returns_best_so_far() {
        let mut cs = ConstraintSet::new(6);
        cs.add_face([0, 1, 2]);
        cs.add_face([3, 4, 5]);
        let opts = HeuristicOptions::default().with_budget(Budget::unlimited().with_max_evals(5));
        let r = heuristic_encode_report(&cs, &opts).unwrap();
        assert!(!r.converged, "5 evaluations cannot reach the fixpoint");
        assert!(r.stats.evals >= 5);
        let mut codes = r.encoding.codes().to_vec();
        codes.sort_unstable();
        codes.dedup();
        assert_eq!(codes.len(), 6, "injective despite the early stop");
    }

    #[test]
    fn budgeted_stop_is_deterministic_across_threads() {
        let mut cs = ConstraintSet::new(8);
        cs.add_face([0, 1, 2]);
        cs.add_face([2, 3, 4]);
        cs.add_face([5, 6, 7]);
        let encode = |par: Parallelism| {
            let opts = HeuristicOptions::default()
                .with_parallelism(par)
                .with_budget(Budget::unlimited().with_max_evals(40));
            heuristic_encode_report(&cs, &opts).unwrap()
        };
        let reference = encode(Parallelism::Off);
        for par in [
            Parallelism::Fixed(2),
            Parallelism::Fixed(4),
            Parallelism::Auto,
        ] {
            let r = encode(par);
            assert_eq!(r.encoding.codes(), reference.encoding.codes(), "{par:?}");
            assert_eq!(
                r.stats.work_units(),
                reference.stats.work_units(),
                "{par:?} counters"
            );
        }
    }

    #[test]
    fn codes_for_detects_collisions() {
        let d = Dichotomy::from_blocks(3, [0], [1, 2]);
        assert!(codes_for(&[0, 1, 2], &[&d]).is_none());
        let d2 = Dichotomy::from_blocks(3, [1], [2]);
        assert!(codes_for(&[0, 1, 2], &[&d, &d2]).is_some());
    }
}
