//! The binate-covering abstraction of Section 4 (Figure 1).
//!
//! All encoding problems can be phrased as covering problems over the
//! *encoding columns* — the 2ⁿ−2 useful bit patterns assigning one bit to
//! each symbol. Face and uniqueness dichotomies become rows with 1-entries
//! under the columns covering them; each output constraint adds rows with a
//! single 0 under every column it forbids. This module builds that table
//! explicitly (it is exponential in the symbol count, so it doubles as the
//! reference oracle for the polynomial algorithms).

use crate::{initial_dichotomies, ConstraintSet, Dichotomy};

/// One row of the binate table of Figure 1.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BinateRow {
    /// Human-readable label (the dichotomy or constraint the row encodes).
    pub label: String,
    /// Column indices carrying a 1 (choosing one satisfies the row).
    pub ones: Vec<usize>,
    /// Column indices carrying a 0 (choosing one violates the row).
    pub zeros: Vec<usize>,
}

/// The explicit Section 4 covering table over all useful encoding columns.
#[derive(Debug, Clone)]
pub struct BinateFormulation {
    /// The encoding columns: bit `s` of `columns[j]` is symbol `s`'s bit in
    /// column `j`. Patterns all-0 and all-1 are excluded ("they carry no
    /// useful information").
    pub columns: Vec<u64>,
    /// The table rows.
    pub rows: Vec<BinateRow>,
}

impl BinateFormulation {
    /// Builds the table for a constraint set.
    ///
    /// Dominance, disjunctive and extended disjunctive constraints each
    /// contribute one single-0 row per violating column, exactly as in the
    /// `a > b` discussion under Figure 1.
    ///
    /// # Panics
    ///
    /// Panics if the constraint set has more than 20 symbols (the table is
    /// exponential) or fewer than 2.
    pub fn build(cs: &ConstraintSet) -> Self {
        let n = cs.num_symbols();
        assert!((2..=20).contains(&n), "explicit table needs 2..=20 symbols");
        let columns: Vec<u64> = (1..((1u64 << n) - 1)).collect();
        let mut rows = Vec::new();

        let initial = initial_dichotomies(cs, false);
        // One row per unordered initial dichotomy (a column covers a
        // dichotomy regardless of orientation).
        let mut seen: Vec<Dichotomy> = Vec::new();
        for d in &initial {
            if seen.iter().any(|s| *s == d.flipped() || s == d) {
                continue;
            }
            seen.push(d.clone());
            let ones: Vec<usize> = columns
                .iter()
                .enumerate()
                .filter(|(_, &col)| column_covers(col, d))
                .map(|(j, _)| j)
                .collect();
            rows.push(BinateRow {
                label: format!("{d:?}"),
                ones,
                zeros: Vec::new(),
            });
        }
        // Output constraints: single-0 rows per violating column.
        for &(a, b) in &cs.all_dominances() {
            for (j, &col) in columns.iter().enumerate() {
                let bit_a = col >> a & 1;
                let bit_b = col >> b & 1;
                if bit_a < bit_b {
                    rows.push(BinateRow {
                        label: format!("{} > {}", cs.name(a), cs.name(b)),
                        ones: Vec::new(),
                        zeros: vec![j],
                    });
                }
            }
        }
        for (parent, children) in cs.disjunctives() {
            for (j, &col) in columns.iter().enumerate() {
                let or = children.iter().fold(0, |acc, &c| acc | (col >> c & 1));
                if col >> parent & 1 != or {
                    rows.push(BinateRow {
                        label: format!("{} = ⋁", cs.name(parent)),
                        ones: Vec::new(),
                        zeros: vec![j],
                    });
                }
            }
        }
        for (parent, conjunctions) in cs.extended_disjunctives() {
            for (j, &col) in columns.iter().enumerate() {
                if col >> parent & 1 == 1 {
                    let ok = conjunctions
                        .iter()
                        .any(|conj| conj.iter().all(|&s| col >> s & 1 == 1));
                    if !ok {
                        rows.push(BinateRow {
                            label: format!("⋁⋀ >= {}", cs.name(parent)),
                            ones: Vec::new(),
                            zeros: vec![j],
                        });
                    }
                }
            }
        }
        BinateFormulation { columns, rows }
    }

    /// Renders the table like Figure 1 (rows × columns, entries 1/0/-).
    pub fn display(&self) -> String {
        let mut out = String::new();
        for row in &self.rows {
            out.push_str(&format!("{:<28}", row.label));
            for j in 0..self.columns.len() {
                let ch = if row.ones.contains(&j) {
                    '1'
                } else if row.zeros.contains(&j) {
                    '0'
                } else {
                    '-'
                };
                out.push(ch);
            }
            out.push('\n');
        }
        out
    }
}

/// `true` when the total column `col` covers the dichotomy `d` (symbols of
/// one block all 0 and of the other all 1, in either orientation).
pub(crate) fn column_covers(col: u64, d: &Dichotomy) -> bool {
    let left_bits: Vec<u64> = d.left().iter().map(|s| col >> s & 1).collect();
    let right_bits: Vec<u64> = d.right().iter().map(|s| col >> s & 1).collect();
    (left_bits.iter().all(|&b| b == 0) && right_bits.iter().all(|&b| b == 1))
        || (left_bits.iter().all(|&b| b == 1) && right_bits.iter().all(|&b| b == 0))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure_1_shape() {
        // Symbols a, b, c with (a,b), b>c, b = a ∨ c (the text's worked
        // example uses a>b rows; the figure's exact instance differs — what
        // matters is the structure: 6 columns, dichotomy rows with 1s,
        // output rows with single 0s).
        let cs = ConstraintSet::parse(&["a", "b", "c"], "(a,b)\nb>c\nb=a|c").unwrap();
        let f = BinateFormulation::build(&cs);
        assert_eq!(f.columns.len(), 6); // 2^3 - 2
                                        // Dominance rows have exactly one zero and no ones.
        for row in f.rows.iter().filter(|r| r.label.contains('>')) {
            assert_eq!(row.zeros.len(), 1);
            assert!(row.ones.is_empty());
        }
        // There is a row for the face dichotomy (ab; c).
        assert!(f.rows.iter().any(|r| !r.ones.is_empty()));
        let rendered = f.display();
        assert!(rendered.lines().count() == f.rows.len());
    }

    #[test]
    fn column_covering_both_orientations() {
        let d = Dichotomy::from_blocks(3, [0, 1], [2]);
        assert!(column_covers(0b100, &d));
        assert!(column_covers(0b011, &d));
        assert!(!column_covers(0b101, &d));
    }

    #[test]
    fn b_dominates_c_rows_zero_out_columns() {
        let cs = ConstraintSet::parse(&["a", "b", "c"], "b>c").unwrap();
        let f = BinateFormulation::build(&cs);
        // Columns where bit(b)=0 and bit(c)=1: patterns x0c with c=1:
        // 100 (col value 4 = bit a... bit order: bit s of column) —
        // enumerate and check count: bits b=1, c=2: violating columns have
        // bit1=0, bit2=1: values 4 and 5.
        let zero_cols: Vec<u64> = f
            .rows
            .iter()
            .filter(|r| r.label.contains('>'))
            .map(|r| f.columns[r.zeros[0]])
            .collect();
        assert_eq!(zero_cols, vec![4, 5]);
    }
}
