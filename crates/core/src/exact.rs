//! Problem P-2: exact minimum-length encoding (Section 6.3, Figure 7),
//! with the distance-2 and non-face extensions of Sections 8.2–8.3.

use crate::budget::{Budget, BudgetPhase, BudgetScope, BudgetSpent};
use crate::primes::{generate_primes_limited, PrimeLimits};
use crate::raise::{raise_dichotomy, raised_valid};
use crate::stats::{PrimeStats, SolverStats};
use crate::{initial_dichotomies, ConstraintSet, Dichotomy, EncodeError, Encoding, Feasibility};
use ioenc_cover::{BinateProblem, CoverStats, Parallelism, SolveError, UnateProblem};
use std::time::Instant;

/// Options for [`exact_encode`].
///
/// Construct with [`ExactOptions::new`] (or `default()`) and refine with
/// the `with_*` methods; the struct is `#[non_exhaustive]`, so future
/// options can be added without breaking callers.
///
/// ```
/// use ioenc_core::{ExactOptions, Parallelism};
///
/// let opts = ExactOptions::new()
///     .with_prime_cap(100_000)
///     .with_parallelism(Parallelism::Fixed(2));
/// assert_eq!(opts.prime_cap, 100_000);
/// ```
#[derive(Debug, Clone)]
#[non_exhaustive]
pub struct ExactOptions {
    /// Abort prime generation beyond this many terms (Table 1 used
    /// 50 000).
    pub prime_cap: usize,
    /// Branch-and-bound node budget for the covering step.
    pub node_limit: u64,
    /// Cap on minimal hitting sets enumerated per non-face constraint and
    /// on non-face repair iterations.
    pub nonface_cap: usize,
    /// Thread policy for prime generation and the covering search; results
    /// are bit-identical across settings.
    pub parallelism: Parallelism,
    /// Resource budget (work units, deadline, cancellation). Unlimited by
    /// default; when a limit expires the pipeline returns
    /// [`EncodeError::Budget`] carrying the partial work.
    pub budget: Budget,
}

impl Default for ExactOptions {
    fn default() -> Self {
        ExactOptions {
            prime_cap: 50_000,
            node_limit: 5_000_000,
            nonface_cap: 10_000,
            parallelism: Parallelism::Auto,
            budget: Budget::unlimited(),
        }
    }
}

impl ExactOptions {
    /// The default options (Table 1's caps, automatic parallelism).
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the prime-generation term cap.
    pub fn with_prime_cap(mut self, cap: usize) -> Self {
        self.prime_cap = cap;
        self
    }

    /// Sets the covering search's branch-and-bound node budget.
    pub fn with_node_limit(mut self, limit: u64) -> Self {
        self.node_limit = limit;
        self
    }

    /// Sets the non-face hitting-set and repair-iteration cap.
    pub fn with_nonface_cap(mut self, cap: usize) -> Self {
        self.nonface_cap = cap;
        self
    }

    /// Sets the thread policy.
    pub fn with_parallelism(mut self, parallelism: Parallelism) -> Self {
        self.parallelism = parallelism;
        self
    }

    /// Installs a resource [`Budget`].
    pub fn with_budget(mut self, budget: Budget) -> Self {
        self.budget = budget;
        self
    }
}

/// The detailed result of [`exact_encode_report`].
#[derive(Debug, Clone)]
pub struct ExactReport {
    /// The minimum-length encoding.
    pub encoding: Encoding,
    /// Number of initial encoding-dichotomies.
    pub num_initial: usize,
    /// Number of valid prime encoding-dichotomies generated.
    pub num_primes: usize,
    /// The selected columns (one per code bit).
    pub selected: Vec<Dichotomy>,
    /// `false` when the covering search hit its node limit; the encoding is
    /// then feasible but possibly longer than the true minimum.
    pub optimal: bool,
    /// `true` when the covering search was seeded with a warm-start
    /// incumbent derived from a previous session solution. Seeding never
    /// changes the result (see [`crate::Session`]); this flag only reports
    /// that the accelerated path ran.
    pub warmed: bool,
    /// Per-phase counters and timings for the whole pipeline.
    pub stats: SolverStats,
}

/// Finds a minimum-length encoding satisfying all constraints
/// (Theorem 6.2).
///
/// The pipeline of Figure 7: initial encoding-dichotomies → validity filter
/// → maximal raising → feasibility check → prime encoding-dichotomy
/// generation (Section 5.1) → invalid-prime removal → exact unate covering
/// of the initial dichotomies. Problems with distance-2 or non-face
/// constraints use binate covering instead (Section 8).
///
/// Every returned encoding is re-checked against the independent semantic
/// verifier; see [`Encoding::verify`].
///
/// # Errors
///
/// * [`EncodeError::Infeasible`] when the feasibility check of Theorem 6.1
///   fails (the uncovered dichotomies are reported);
/// * [`EncodeError::Budget`] when prime generation blows past
///   `opts.prime_cap` or an `opts.budget` limit expires — the partial
///   stats (and the raised dichotomies) ride along;
/// * [`EncodeError::WidthExceeded`] for solutions beyond 64 bits;
/// * [`EncodeError::NonFaceTooComplex`] when the Section 8.3 clause
///   generation or repair iteration exceeds its cap.
///
/// # Examples
///
/// The worked example of Figure 8:
///
/// ```
/// use ioenc_core::{exact_encode, ConstraintSet, ExactOptions};
///
/// let cs = ConstraintSet::parse(
///     &["s0", "s1", "s2", "s3"],
///     "(s0,s1)\ns0>s1\ns1>s2\ns0=s1|s3",
/// )?;
/// let enc = exact_encode(&cs, &ExactOptions::default())?;
/// assert_eq!(enc.width(), 2);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[deprecated(note = "use Solver::new().mode(SolverMode::Exact)")]
pub fn exact_encode(cs: &ConstraintSet, opts: &ExactOptions) -> Result<Encoding, EncodeError> {
    exact_encode_report(cs, opts).map(|r| r.encoding)
}

/// Like [`exact_encode`] but returns the full [`ExactReport`] (prime
/// counts, the selected columns, optimality).
///
/// # Errors
///
/// As for [`exact_encode`].
pub fn exact_encode_report(
    cs: &ConstraintSet,
    opts: &ExactOptions,
) -> Result<ExactReport, EncodeError> {
    exact_pipeline(cs, opts, None)
}

/// Precomputed middle stages of the exact pipeline, as maintained
/// incrementally by a [`Session`](crate::Session)'s
/// [`DichotomyLattice`](crate::lattice::DichotomyLattice).
///
/// Both vectors must be *set*-equal to what the from-scratch pipeline
/// computes for `cs` (`raised_valid` and `generate_primes` output
/// respectively); the pipeline sorts and deduplicates everything
/// downstream, so set equality here yields bit-identical encodings.
pub(crate) struct ExactParts {
    /// The maximally raised valid dichotomies of the initial set.
    pub(crate) raised: Vec<Dichotomy>,
    /// The prime encoding-dichotomies (not yet re-raised).
    pub(crate) primes_raw: Vec<Dichotomy>,
}

/// [`exact_encode_report`] with the raising and prime-generation stages
/// replaced by precomputed `parts`; every other stage (initial
/// dichotomies, the feasibility gate, prime re-raising, column assembly
/// and the covering search) runs identically. An optional [`CoverMemo`]
/// lets the covering search replay an earlier result when its inputs
/// recur exactly.
pub(crate) fn exact_encode_report_with_parts(
    cs: &ConstraintSet,
    opts: &ExactOptions,
    parts: ExactParts,
    memo: Option<&mut CoverMemo>,
) -> Result<ExactReport, EncodeError> {
    exact_pipeline_memo(cs, opts, Some(parts), memo)
}

/// A bounded memo of completed covering searches, keyed on the *exact*
/// cover inputs: the initial dichotomies (the rows) and the assembled
/// columns, both in their canonical sorted order.
///
/// The unate covering search is a deterministic pure function of those
/// inputs (plus the node limit, which the owner must hold fixed for the
/// memo's lifetime — results are bit-identical across thread counts by
/// the solver's parallelism contract). Replaying a recorded selection for
/// equal inputs therefore reproduces the from-scratch result bit for bit;
/// there is no staleness to reason about because lookups compare the full
/// inputs, not a digest. Only unate instances are memoized: binate
/// covering also consumes distance-2 and non-face structure, which this
/// key does not capture.
///
/// [`Session`](crate::Session) uses this so that a delta returning to an
/// already-solved constraint set (the add-then-remove toggles of
/// interactive exploration) skips the covering search entirely.
#[derive(Debug, Default)]
pub(crate) struct CoverMemo {
    entries: Vec<MemoEntry>,
    cap: usize,
    hits: u64,
}

#[derive(Debug)]
struct MemoEntry {
    initial: Vec<Dichotomy>,
    columns: Vec<Dichotomy>,
    selected: Vec<Dichotomy>,
    optimal: bool,
}

impl CoverMemo {
    /// A memo retaining at most `cap` covering results (FIFO eviction).
    pub(crate) fn new(cap: usize) -> Self {
        CoverMemo {
            entries: Vec::new(),
            cap,
            hits: 0,
        }
    }

    /// Total replays served; owners diff this across a solve to learn
    /// whether the covering search was skipped.
    pub(crate) fn hits(&self) -> u64 {
        self.hits
    }

    fn lookup(
        &mut self,
        initial: &[Dichotomy],
        columns: &[Dichotomy],
    ) -> Option<(Vec<Dichotomy>, bool)> {
        let e = self
            .entries
            .iter()
            .find(|e| e.initial == initial && e.columns == columns)?;
        self.hits += 1;
        Some((e.selected.clone(), e.optimal))
    }

    fn record(
        &mut self,
        initial: Vec<Dichotomy>,
        columns: Vec<Dichotomy>,
        selected: Vec<Dichotomy>,
        optimal: bool,
    ) {
        if self
            .entries
            .iter()
            .any(|e| e.initial == initial && e.columns == columns)
        {
            return;
        }
        if self.entries.len() >= self.cap {
            self.entries.remove(0);
        }
        self.entries.push(MemoEntry {
            initial,
            columns,
            selected,
            optimal,
        });
    }

    /// Derives a warm start for a *new* cover instance from the most
    /// recently recorded one (interactive deltas make the latest entry the
    /// overwhelmingly likely near-match). The donor's selected dichotomies
    /// are mapped onto the new column family; columns that no longer exist
    /// are dropped (the solver's deterministic repair re-covers their
    /// rows). A certified lower bound rides along only when the donor was
    /// proved optimal *and* the new instance is provably at least as hard:
    /// every donor row is still present and no new column appeared, so any
    /// feasible solution of the new instance is feasible for the donor and
    /// the donor's optimum bounds the new one from below.
    fn warm_hint(&self, initial: &[Dichotomy], columns: &[Dichotomy]) -> Option<UnateWarmStart> {
        let donor = self.entries.last()?;
        let mut cols: Vec<usize> = Vec::with_capacity(donor.selected.len());
        for d in &donor.selected {
            // `columns` is sorted and deduplicated by the pipeline.
            if let Ok(k) = columns.binary_search(d) {
                cols.push(k);
            }
        }
        if cols.is_empty() {
            return None;
        }
        let lower_bound = (donor.optimal
            && set_included(&donor.initial, initial)
            && sorted_included(columns, &donor.columns))
        .then_some(donor.selected.len() as u64);
        Some(UnateWarmStart { cols, lower_bound })
    }
}

/// A seed for the unate covering search: candidate columns (indices into
/// the new column family) and, when certified, a lower bound on the
/// optimal cost.
pub(crate) struct UnateWarmStart {
    cols: Vec<usize>,
    lower_bound: Option<u64>,
}

/// Set inclusion `a ⊆ b` for dichotomy lists in arbitrary order.
fn set_included(a: &[Dichotomy], b: &[Dichotomy]) -> bool {
    let mut sa = a.to_vec();
    let mut sb = b.to_vec();
    sa.sort();
    sb.sort();
    sorted_included(&sa, &sb)
}

/// Set inclusion `a ⊆ b` for sorted dichotomy lists (merge walk).
fn sorted_included(a: &[Dichotomy], b: &[Dichotomy]) -> bool {
    let mut j = 0;
    'outer: for d in a {
        while j < b.len() {
            match b[j].cmp(d) {
                std::cmp::Ordering::Less => j += 1,
                std::cmp::Ordering::Equal => continue 'outer,
                std::cmp::Ordering::Greater => return false,
            }
        }
        return false;
    }
    true
}

fn exact_pipeline(
    cs: &ConstraintSet,
    opts: &ExactOptions,
    parts: Option<ExactParts>,
) -> Result<ExactReport, EncodeError> {
    exact_pipeline_memo(cs, opts, parts, None)
}

fn exact_pipeline_memo(
    cs: &ConstraintSet,
    opts: &ExactOptions,
    parts: Option<ExactParts>,
    mut memo: Option<&mut CoverMemo>,
) -> Result<ExactReport, EncodeError> {
    let start = Instant::now();
    let symmetry = !cs.has_output_constraints();
    let initial = initial_dichotomies(cs, symmetry);
    let (raised, precomputed_primes) = match parts {
        Some(p) => (p.raised, Some(p.primes_raw)),
        None => (raised_valid(&initial, cs), None),
    };

    let uncovered: Vec<Dichotomy> = initial
        .iter()
        .filter(|i| !raised.iter().any(|d| d.covers(i)))
        .cloned()
        .collect();
    if !uncovered.is_empty() {
        // Explain the refusal: the lint reuses the dichotomies computed
        // above instead of re-running the raising pass.
        let feas = Feasibility {
            initial,
            raised,
            uncovered,
        };
        let explanation = crate::lint::lint_with_feasibility(
            cs,
            &crate::lint::LintOptions::new().with_budget(opts.budget.clone()),
            &feas,
        );
        return Err(EncodeError::Infeasible {
            uncovered: feas.uncovered,
            explanation: Some(Box::new(explanation)),
        });
    }
    let setup_time = start.elapsed();

    // Prime generation, then re-raise each prime: the union of raise-closed
    // dichotomies is closed under the single-premise dominance rules but
    // not under the aggregate disjunctive rules, and the output-safe
    // completion (unassigned → right) of Theorem 6.1 is only sound for
    // maximally raised dichotomies.
    let scope = opts.budget.scope();
    let prime_phase = Instant::now();
    let limits = PrimeLimits {
        cap: opts
            .prime_cap
            .min(opts.budget.max_primes.unwrap_or(usize::MAX)),
        max_ps_steps: opts.budget.max_ps_steps,
        deadline: scope.deadline(),
        cancel: scope.cancel(),
        budgeted: opts.budget.has_work_limits(),
    };
    let (primes_raw, prime_stats) = if let Some(primes_raw) = precomputed_primes {
        // The session's lattice already maintains the maximal compatibles;
        // the prime-phase work counters stay zero because no prime work ran.
        (primes_raw, PrimeStats::default())
    } else {
        match generate_primes_limited(&raised, opts.parallelism, &limits) {
            Ok(r) => r,
            Err((_, partial)) => {
                // Cap, step or wall-clock exhaustion: report what was done,
                // and carry the raised dichotomies so a fallback encoder
                // does not have to recompute them.
                let mut stats = SolverStats {
                    num_initial: initial.len(),
                    raise_attempts: initial.len() as u64,
                    primes: partial,
                    ..Default::default()
                };
                stats.timings.setup = setup_time;
                stats.timings.primes = prime_phase.elapsed();
                stats.timings.total = start.elapsed();
                return Err(EncodeError::budget(
                    BudgetPhase::Primes,
                    BudgetSpent { stats, raised },
                ));
            }
        }
    };
    let mut columns: Vec<Dichotomy> = primes_raw
        .iter()
        .filter_map(|p| raise_dichotomy(p, cs))
        .collect();
    let num_primes = columns.len();
    // The raised dichotomies themselves are valid columns (Theorem 6.1);
    // including them keeps every initial dichotomy coverable even if the
    // maximal compatible that contained it was invalidated by raising.
    columns.extend(raised.iter().cloned());
    columns.sort();
    columns.dedup();
    let prime_time = prime_phase.elapsed();

    let cover_phase = Instant::now();
    let replayed = match &mut memo {
        Some(m) if !cs.has_binate_constraints() => m.lookup(&initial, &columns),
        _ => None,
    };
    let cover_result = match replayed {
        Some((selected, optimal)) => {
            // The covering search is deterministic in (rows, columns), so
            // the recorded selection IS what a fresh search would return;
            // the cover counters stay zero because no search ran.
            let encoding = Encoding::from_columns(cs.num_symbols(), &selected);
            Ok(ExactReport {
                encoding,
                num_initial: 0,
                num_primes: 0,
                selected,
                optimal,
                warmed: false,
                stats: SolverStats::default(),
            })
        }
        None => {
            let r = if cs.has_binate_constraints() {
                solve_binate(cs, &initial, &columns, opts, &scope)
            } else {
                // First visit of this instance: seed the search from the
                // memo's most recent solution when one exists. Seeding is
                // result-invisible (path-based tie-breaking in the solver
                // plus an unseeded retry on any budget-stopped result), so
                // the differential gate is unaffected.
                let warm = match &memo {
                    Some(m) => m.warm_hint(&initial, &columns),
                    None => None,
                };
                solve_unate(cs, &initial, &columns, opts, &scope, warm)
            };
            if let (Ok(rep), Some(m)) = (&r, &mut memo) {
                if !cs.has_binate_constraints() {
                    m.record(
                        initial.clone(),
                        columns.clone(),
                        rep.selected.clone(),
                        rep.optimal,
                    );
                }
            }
            r
        }
    };
    let mut report = match cover_result {
        Ok(r) => r,
        Err(EncodeError::Budget { phase, mut spent }) => {
            // Enrich the cover-phase expiry with the pipeline's earlier
            // counters (and the raised dichotomies, still reusable).
            spent.stats.num_initial = initial.len();
            spent.stats.num_primes = num_primes;
            spent.stats.raise_attempts = (initial.len() + primes_raw.len()) as u64;
            spent.stats.primes = prime_stats;
            spent.stats.timings.setup = setup_time;
            spent.stats.timings.primes = prime_time;
            spent.stats.timings.cover = cover_phase.elapsed();
            spent.stats.timings.total = start.elapsed();
            spent.raised = raised;
            return Err(EncodeError::Budget { phase, spent });
        }
        Err(e) => return Err(e),
    };
    assert!(
        report.encoding.satisfies(cs),
        "internal error: exact encoding fails semantic verification"
    );
    report.stats.num_initial = initial.len();
    report.stats.num_primes = num_primes;
    report.stats.raise_attempts = (initial.len() + primes_raw.len()) as u64;
    report.stats.primes = prime_stats;
    report.stats.timings.setup = setup_time;
    report.stats.timings.primes = prime_time;
    report.stats.timings.cover = cover_phase.elapsed();
    report.stats.timings.total = start.elapsed();
    Ok(ExactReport {
        num_initial: initial.len(),
        num_primes,
        ..report
    })
}

fn build_encoding(
    cs: &ConstraintSet,
    columns: &[Dichotomy],
    chosen: &[usize],
    optimal: bool,
    cover: CoverStats,
) -> Result<ExactReport, EncodeError> {
    if chosen.len() > 64 {
        return Err(EncodeError::WidthExceeded);
    }
    let selected: Vec<Dichotomy> = chosen.iter().map(|&c| columns[c].clone()).collect();
    let encoding = Encoding::from_columns(cs.num_symbols(), &selected);
    Ok(ExactReport {
        encoding,
        num_initial: 0,
        num_primes: 0,
        selected,
        optimal,
        warmed: false,
        stats: SolverStats {
            cover,
            ..Default::default()
        },
    })
}

/// Maps a cover-solver budget or interrupt expiry to the pipeline error,
/// wrapping the cover counters (plus any counters from earlier solves of a
/// repair loop) as the spent work.
fn cover_budget_error(mut prior: CoverStats, stats: CoverStats) -> EncodeError {
    prior.absorb(&stats);
    EncodeError::budget(
        BudgetPhase::Cover,
        BudgetSpent {
            stats: SolverStats {
                cover: prior,
                ..Default::default()
            },
            raised: Vec::new(),
        },
    )
}

fn solve_unate(
    cs: &ConstraintSet,
    initial: &[Dichotomy],
    columns: &[Dichotomy],
    opts: &ExactOptions,
    scope: &BudgetScope,
    warm: Option<UnateWarmStart>,
) -> Result<ExactReport, EncodeError> {
    let build = || {
        let mut problem = UnateProblem::new(columns.len());
        problem.set_node_limit(opts.node_limit);
        problem.set_parallelism(opts.parallelism);
        problem.set_work_budget(opts.budget.max_cover_nodes.map(|b| b.min(opts.node_limit)));
        problem.set_cancel(scope.cancel());
        problem.set_deadline(scope.deadline());
        for i in initial {
            problem.add_row(
                columns
                    .iter()
                    .enumerate()
                    .filter(|(_, p)| p.covers(i))
                    .map(|(k, _)| k),
            );
        }
        problem
    };
    let map_err = |e: SolveError| match e {
        SolveError::Infeasible => EncodeError::infeasible(vec![]),
        SolveError::NodeLimit => EncodeError::CoverAborted,
        SolveError::Budget { stats } | SolveError::Interrupted { stats } => {
            cover_budget_error(CoverStats::default(), stats)
        }
    };
    let mut problem = build();
    let warmed = warm.is_some();
    if let Some(w) = warm {
        problem.set_warm_start(Some(w.cols));
        problem.set_certified_lower_bound(w.lower_bound);
    }
    let (sol, cover_stats) = problem.solve_exact_with_stats().map_err(map_err)?;
    if warmed && !sol.optimal {
        // A budget-stopped search may depend on the seeded bound. Re-run
        // from scratch so the returned encoding is the one a session-less
        // pipeline would produce; the counters absorb both searches.
        let (sol, retry_stats) = build().solve_exact_with_stats().map_err(map_err)?;
        let mut total = cover_stats;
        total.absorb(&retry_stats);
        return build_encoding(cs, columns, &sol.columns, sol.optimal, total);
    }
    let mut report = build_encoding(cs, columns, &sol.columns, sol.optimal, cover_stats)?;
    report.warmed = warmed;
    Ok(report)
}

fn solve_binate(
    cs: &ConstraintSet,
    initial: &[Dichotomy],
    columns: &[Dichotomy],
    opts: &ExactOptions,
    scope: &BudgetScope,
) -> Result<ExactReport, EncodeError> {
    let n = cs.num_symbols();
    let mut problem = BinateProblem::new(columns.len());
    problem.set_node_limit(opts.node_limit);
    problem.set_parallelism(opts.parallelism);
    problem.set_cancel(scope.cancel());
    problem.set_deadline(scope.deadline());
    for i in initial {
        problem.add_clause(
            columns
                .iter()
                .enumerate()
                .filter(|(_, p)| p.covers(i))
                .map(|(k, _)| k),
            [],
        );
    }
    // Distance-2 (Section 8.2): at least two selected columns must separate
    // the pair. In the emitted code, symbol s gets bit 0 exactly when it is
    // in the left block, so the separating columns are those where exactly
    // one of the pair sits in the left block.
    for &(a, b) in cs.distance2_pairs() {
        let s: Vec<usize> = columns
            .iter()
            .enumerate()
            .filter(|(_, p)| p.in_left(a) != p.in_left(b))
            .map(|(k, _)| k)
            .collect();
        if s.len() < 2 {
            return Err(EncodeError::infeasible(vec![]));
        }
        for &p in &s {
            problem.add_clause(s.iter().copied().filter(|&q| q != p), []);
        }
    }
    // Non-face constraints (Section 8.3): the covering of the implied face
    // constraint must be incomplete. A selection covers the face fully iff
    // it hits, for every outsider s, the set S_s of columns covering
    // (N; s); forbid every minimal hitting set with a negative clause.
    for nf in cs.nonfaces() {
        let outsiders: Vec<usize> = (0..n).filter(|s| !nf.contains(*s)).collect();
        let mut sets: Vec<Vec<usize>> = Vec::new();
        let mut impossible = false;
        for &s in &outsiders {
            let d = Dichotomy::from_sets(nf.clone(), ioenc_bitset::BitSet::from_indices(n, [s]));
            let set: Vec<usize> = columns
                .iter()
                .enumerate()
                .filter(|(_, p)| p.covers(&d))
                .map(|(k, _)| k)
                .collect();
            if set.is_empty() {
                impossible = true; // the face can never become private
                break;
            }
            sets.push(set);
        }
        if impossible {
            continue;
        }
        let hitting = minimal_hitting_sets(&sets, opts.nonface_cap)?;
        for h in hitting {
            problem.add_clause([], h);
        }
    }
    // The clause formulation above under-approximates face formation: the
    // unassigned→right completion can separate N from an outsider even
    // when no selected column *covers* (N; s). Iterate: forbid any
    // selection whose emitted codes still violate a non-face constraint.
    let mut cover_total = CoverStats::default();
    for _ in 0..opts.nonface_cap.max(1) {
        // Each repair iteration draws from what remains of the single
        // cover-node pool.
        if let Some(total) = opts.budget.max_cover_nodes {
            let remaining = total.min(opts.node_limit).saturating_sub(cover_total.nodes);
            problem.set_work_budget(Some(remaining));
        }
        let prior = cover_total;
        let (sol, cover_stats) = problem.solve_exact_with_stats().map_err(|e| match e {
            SolveError::Infeasible => EncodeError::infeasible(vec![]),
            SolveError::NodeLimit => EncodeError::CoverAborted,
            SolveError::Budget { stats } | SolveError::Interrupted { stats } => {
                cover_budget_error(prior, stats)
            }
        })?;
        cover_total.absorb(&cover_stats);
        let report = build_encoding(cs, columns, &sol.columns, sol.optimal, cover_total)?;
        if report.encoding.satisfies(cs) {
            return Ok(report);
        }
        problem.add_clause([], sol.columns.iter().copied());
    }
    Err(EncodeError::NonFaceTooComplex)
}

/// Oracle-side access to hitting-set enumeration with a generous cap.
pub(crate) fn minimal_hitting_sets_for_oracle(
    sets: &[Vec<usize>],
) -> Result<Vec<Vec<usize>>, EncodeError> {
    minimal_hitting_sets(sets, 100_000)
}

/// Enumerates all minimal hitting sets of a family of sets, capped.
fn minimal_hitting_sets(sets: &[Vec<usize>], cap: usize) -> Result<Vec<Vec<usize>>, EncodeError> {
    let mut results: Vec<Vec<usize>> = vec![Vec::new()];
    for set in sets {
        let mut next: Vec<Vec<usize>> = Vec::new();
        for partial in &results {
            if partial.iter().any(|e| set.contains(e)) {
                next.push(partial.clone());
            } else {
                for &e in set {
                    let mut h = partial.clone();
                    h.push(e);
                    h.sort();
                    next.push(h);
                }
            }
        }
        next.sort();
        next.dedup();
        // Keep only minimal sets.
        let mut minimal: Vec<Vec<usize>> = Vec::new();
        next.sort_by_key(|h| h.len());
        for h in next {
            if !minimal.iter().any(|m| m.iter().all(|e| h.contains(e))) {
                minimal.push(h);
            }
        }
        if minimal.len() > cap {
            return Err(EncodeError::NonFaceTooComplex);
        }
        results = minimal;
    }
    Ok(results)
}

#[cfg(test)]
mod tests {
    #![allow(deprecated)] // the wrappers stay covered until removal
    use super::*;

    fn defaults() -> ExactOptions {
        ExactOptions::default()
    }

    #[test]
    fn section_1_example_two_bits() {
        let cs = ConstraintSet::parse(
            &["a", "b", "c", "d"],
            "(b,c)\n(c,d)\n(b,a)\n(a,d)\nb>c\na>c\na=b|d",
        )
        .unwrap();
        let enc = exact_encode(&cs, &defaults()).unwrap();
        assert_eq!(enc.width(), 2);
        assert!(enc.satisfies(&cs));
    }

    #[test]
    fn figure_8_example() {
        let cs = ConstraintSet::parse(&["s0", "s1", "s2", "s3"], "(s0,s1)\ns0>s1\ns1>s2\ns0=s1|s3")
            .unwrap();
        let report = exact_encode_report(&cs, &defaults()).unwrap();
        assert!(report.optimal);
        assert_eq!(report.encoding.width(), 2);
        assert!(report.encoding.satisfies(&cs));
    }

    #[test]
    fn figure_3_minimum_cover_is_four() {
        let mut cs = ConstraintSet::new(5);
        cs.add_face([0, 2, 4]);
        cs.add_face([0, 1, 4]);
        cs.add_face([1, 2, 3]);
        cs.add_face([1, 3, 4]);
        let report = exact_encode_report(&cs, &defaults()).unwrap();
        assert_eq!(
            report.encoding.width(),
            4,
            "Figure 3's minimum cover has 4 primes"
        );
        assert!(report.encoding.satisfies(&cs));
    }

    #[test]
    fn figure_4_reports_infeasible() {
        let names = ["s0", "s1", "s2", "s3", "s4", "s5"];
        let cs = ConstraintSet::parse(
            &names,
            "(s1,s5)\n(s2,s5)\n(s4,s5)\n\
             s0>s1\ns0>s2\ns0>s3\ns0>s5\ns1>s3\ns2>s3\ns4>s5\ns5>s2\ns5>s3\n\
             s0=s1|s2",
        )
        .unwrap();
        match exact_encode(&cs, &defaults()) {
            Err(EncodeError::Infeasible { uncovered, .. }) => assert_eq!(uncovered.len(), 2),
            other => panic!("expected infeasible, got {other:?}"),
        }
    }

    #[test]
    fn unconstrained_symbols_get_log2_bits() {
        for n in 2..=8usize {
            let cs = ConstraintSet::new(n);
            let enc = exact_encode(&cs, &defaults()).unwrap();
            let min_bits = (usize::BITS - (n - 1).leading_zeros()) as usize;
            assert_eq!(enc.width(), min_bits, "n = {n}");
            assert!(enc.satisfies(&cs));
        }
    }

    #[test]
    fn section_8_1_dont_cares_save_a_prime() {
        // Faces (a,b),(a,c),(a,d),(a,b,[c,d],e): 3 bits with don't cares.
        let names = ["a", "b", "c", "d", "e", "f"];
        let with_dc = ConstraintSet::parse(&names, "(a,b)\n(a,c)\n(a,d)\n(a,b,[c,d],e)").unwrap();
        let enc = exact_encode(&with_dc, &defaults()).unwrap();
        assert_eq!(enc.width(), 3);
        // Forcing the don't cares into the face needs 4 bits.
        let forced = ConstraintSet::parse(&names, "(a,b)\n(a,c)\n(a,d)\n(a,b,c,d,e)").unwrap();
        let enc = exact_encode(&forced, &defaults()).unwrap();
        assert_eq!(enc.width(), 4);
        // Keeping them out also needs 4 bits.
        let out = ConstraintSet::parse(&names, "(a,b)\n(a,c)\n(a,d)\n(a,b,e)").unwrap();
        let enc = exact_encode(&out, &defaults()).unwrap();
        assert_eq!(enc.width(), 4);
    }

    #[test]
    fn prime_cap_returns_budget_error_with_partial_work() {
        let cs = ConstraintSet::new(12);
        let mut opts = defaults();
        opts.prime_cap = 100;
        match exact_encode(&cs, &opts) {
            Err(EncodeError::Budget { phase, spent }) => {
                assert_eq!(phase, BudgetPhase::Primes);
                assert!(spent.stats.primes.ps_steps > 0, "some steps completed");
                assert!(!spent.raised.is_empty(), "raised dichotomies carried");
            }
            other => panic!("expected budget expiry, got {other:?}"),
        }
    }

    #[test]
    fn cover_node_budget_expires_deterministically() {
        // Unconstrained 6-symbol problem: the cover search needs more than
        // two nodes; the expiry counters must agree across thread counts.
        let cs = ConstraintSet::new(6);
        let mut reference = None;
        for par in [Parallelism::Off, Parallelism::Fixed(2), Parallelism::Auto] {
            let opts = ExactOptions::new()
                .with_parallelism(par)
                .with_budget(Budget::unlimited().with_max_cover_nodes(2));
            match exact_encode(&cs, &opts) {
                Err(EncodeError::Budget { phase, spent }) => {
                    assert_eq!(phase, BudgetPhase::Cover);
                    assert!(spent.stats.cover.nodes > 0);
                    let units = spent.stats.work_units();
                    match &reference {
                        None => reference = Some(units),
                        Some(r) => assert_eq!(*r, units, "{par:?} diverged"),
                    }
                }
                other => panic!("expected cover budget expiry, got {other:?}"),
            }
        }
    }

    #[test]
    fn ample_budget_matches_unbudgeted_encoding() {
        let cs = ConstraintSet::parse(
            &["a", "b", "c", "d"],
            "(b,c)\n(c,d)\n(b,a)\n(a,d)\nb>c\na>c\na=b|d",
        )
        .unwrap();
        let plain = exact_encode(&cs, &defaults()).unwrap();
        let budgeted = exact_encode(
            &cs,
            &defaults().with_budget(
                Budget::unlimited()
                    .with_max_primes(10_000)
                    .with_max_ps_steps(10_000)
                    .with_max_cover_nodes(1_000_000),
            ),
        )
        .unwrap();
        assert_eq!(plain, budgeted);
    }

    #[test]
    fn distance2_constraint_is_honoured() {
        let mut cs = ConstraintSet::new(4);
        cs.add_face([0, 1]);
        cs.add_distance2(0, 1);
        let enc = exact_encode(&cs, &defaults()).unwrap();
        assert!(enc.satisfies(&cs));
        assert!(crate::hypercube::hamming(enc.code(0), enc.code(1)) >= 2);
    }

    #[test]
    fn section_8_3_nonface_example() {
        // Faces (a,b),(b,c,d),(a,e),(d,f) with non-face (a,b,e): the
        // paper's 3-bit encoding a=011,b=001,c=101,d=100,e=111,f=110
        // satisfies everything (the face of {a,b,e} is --1 and contains c).
        let names = ["a", "b", "c", "d", "e", "f"];
        let cs = ConstraintSet::parse(&names, "(a,b)\n(b,c,d)\n(a,e)\n(d,f)\n!(a,b,e)").unwrap();
        let paper = crate::Encoding::new(3, vec![0b011, 0b001, 0b101, 0b100, 0b111, 0b110]);
        assert!(
            paper.satisfies(&cs),
            "paper encoding: {:?}",
            paper.verify(&cs)
        );
        let enc = exact_encode(&cs, &defaults()).unwrap();
        assert!(enc.satisfies(&cs), "violations: {:?}", enc.verify(&cs));
        assert!(enc.width() <= 3);
        // The contradictory pair face + non-face over the same symbols is
        // infeasible.
        let bad = ConstraintSet::parse(&names, "(a,b)\n!(a,b)").unwrap();
        assert!(exact_encode(&bad, &defaults()).is_err());
    }

    #[test]
    fn two_symbols_one_bit() {
        let cs = ConstraintSet::new(2);
        let enc = exact_encode(&cs, &defaults()).unwrap();
        assert_eq!(enc.width(), 1);
    }

    #[test]
    fn minimal_hitting_sets_enumeration() {
        let sets = vec![vec![1], vec![3, 4], vec![3, 5, 6]];
        let h = minimal_hitting_sets(&sets, 100).unwrap();
        // Expected: {1,3}, {1,4,5}, {1,4,6}.
        assert!(h.contains(&vec![1, 3]));
        assert!(h.contains(&vec![1, 4, 5]));
        assert!(h.contains(&vec![1, 4, 6]));
        assert_eq!(h.len(), 3);
    }
}
