//! Deterministic fork/join helpers built on [`std::thread::scope`].
//!
//! Every helper here splits an index range into *contiguous* chunks and
//! reassembles the outputs in chunk order, so results are bit-identical for
//! every thread count — parallelism only changes who computes each chunk,
//! never what is computed.

/// Maps `f` over `0..len` in contiguous chunks on up to `threads` scoped
/// worker threads, concatenating the per-chunk outputs in chunk order.
///
/// `f` receives an index range and must return that range's outputs in
/// order. Small inputs (under 64 items per would-be chunk) run inline on
/// the caller's thread; so does `threads <= 1`.
pub(crate) fn par_chunks<T, F>(len: usize, threads: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(std::ops::Range<usize>) -> Vec<T> + Sync,
{
    const MIN_CHUNK: usize = 64;
    let threads = threads.min(len / MIN_CHUNK).max(1);
    if threads <= 1 {
        return f(0..len);
    }
    let chunk = len.div_ceil(threads);
    let mut out = Vec::with_capacity(len);
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let start = (t * chunk).min(len);
                let end = ((t + 1) * chunk).min(len);
                let f = &f;
                s.spawn(move || f(start..end))
            })
            .collect();
        for h in handles {
            // Re-raise a worker panic on the caller's thread.
            out.extend(
                h.join()
                    .unwrap_or_else(|payload| std::panic::resume_unwind(payload)),
            );
        }
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outputs_preserve_index_order() {
        for threads in [1, 2, 4, 7] {
            let squares = par_chunks(1000, threads, |r| r.map(|i| i * i).collect());
            assert_eq!(squares.len(), 1000);
            assert!(squares.iter().enumerate().all(|(i, &v)| v == i * i));
        }
    }

    #[test]
    fn empty_and_tiny_inputs_run_inline() {
        assert_eq!(
            par_chunks(0, 8, |r| r.collect::<Vec<_>>()),
            Vec::<usize>::new()
        );
        assert_eq!(par_chunks(3, 8, |r| r.collect::<Vec<_>>()), vec![0, 1, 2]);
    }
}
