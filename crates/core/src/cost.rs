//! Cost functions for bounded-length encoding (Section 7).
//!
//! The quality of an encoding that cannot satisfy every constraint is
//! measured by one of three cost functions: the number of violated
//! constraints, or the number of cubes / literals of a two-level
//! implementation of the *encoded constraint functions* `F_I` — one output
//! per face constraint whose on-set is the codes of the constraint's
//! symbols, off-set the codes of the remaining symbols, and don't-care set
//! the unused codes (Figure 9).

use crate::{ConstraintSet, Encoding};
use ioenc_espresso::Pla;

/// The cost function minimized by the bounded-length encoder
/// (Section 7).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum CostFunction {
    /// Number of constraints violated by the encoding.
    #[default]
    Violations,
    /// Number of product terms of the minimized encoded constraints.
    Cubes,
    /// Number of input literals of the minimized encoded constraints.
    Literals,
}

/// Number of constraints (of every kind) violated by `enc`, not counting
/// duplicate-code violations (those make an encoding unusable rather than
/// merely costly).
///
/// # Panics
///
/// Panics if symbol counts disagree.
pub fn count_violations(cs: &ConstraintSet, enc: &Encoding) -> usize {
    use std::collections::BTreeSet;
    let mut faces = BTreeSet::new();
    let mut extended = BTreeSet::new();
    let mut others = 0usize;
    for v in enc.verify(cs) {
        match v {
            // A face constraint with several intruders, or an extended
            // disjunction failing in several bits, is one violated
            // constraint.
            crate::Violation::DuplicateCode(_, _) => {}
            crate::Violation::Face { index, .. } => {
                faces.insert(index);
            }
            crate::Violation::Extended { index, .. } => {
                extended.insert(index);
            }
            _ => others += 1,
        }
    }
    faces.len() + extended.len() + others
}

/// Builds the multiple-output PLA of the encoded face-constraint functions
/// `F_I` (Figure 9): output `i` is the characteristic function of face
/// constraint `i`, with the unused codes (and the codes of encoding don't
/// cares) as don't-care conditions.
///
/// # Panics
///
/// Panics if the symbol counts disagree or the encoding is wider than the
/// PLA machinery supports.
pub fn constraint_pla(cs: &ConstraintSet, enc: &Encoding) -> Pla {
    assert_eq!(cs.num_symbols(), enc.num_symbols(), "symbol count mismatch");
    let width = enc.width();
    let outputs = cs.faces().len().max(1);
    let mut pla = Pla::new(width, outputs);
    let to_literals =
        |code: u64| -> Vec<Option<bool>> { (0..width).map(|b| Some(code >> b & 1 == 1)).collect() };
    let used: Vec<u64> = enc.codes().to_vec();
    for (i, fc) in cs.faces().iter().enumerate() {
        for s in 0..cs.num_symbols() {
            let lits = to_literals(enc.code(s));
            if fc.members.contains(s) {
                pla.add_on(&lits, &[i]);
            } else if fc.dont_cares.contains(s) {
                pla.add_dc(&lits, &[i]);
            }
            // Codes of other symbols form the off-set implicitly.
        }
    }
    // Unused codes are global don't cares for every output.
    if width <= 16 {
        let all_outputs: Vec<usize> = (0..cs.faces().len()).collect();
        if !all_outputs.is_empty() {
            for code in 0u64..(1 << width) {
                if !used.contains(&code) {
                    pla.add_dc(&to_literals(code), &all_outputs);
                }
            }
        }
    }
    pla
}

/// Evaluates `enc` under `cost` (Section 7): violations are counted
/// directly; cube and literal costs minimize the multi-output constraint
/// PLA with the ESPRESSO substrate and count product terms or input
/// literals.
///
/// # Panics
///
/// Panics if the symbol counts disagree.
pub fn cost_of(cs: &ConstraintSet, enc: &Encoding, cost: CostFunction) -> u64 {
    cost_of_with(cs, enc, cost, None).0
}

/// [`cost_of`] with a cap on the ESPRESSO improvement iterations of each
/// minimization (see [`Budget::max_espresso_iters`]). Returns the cost plus
/// the iterations actually run (0 for [`CostFunction::Violations`]).
///
/// Capped minimizations still yield a valid (possibly larger) cover, so a
/// capped cost is an upper bound on the uncapped one.
///
/// [`Budget::max_espresso_iters`]: crate::Budget#structfield.max_espresso_iters
///
/// # Panics
///
/// Panics if the symbol counts disagree.
pub fn cost_of_with(
    cs: &ConstraintSet,
    enc: &Encoding,
    cost: CostFunction,
    max_espresso_iters: Option<u64>,
) -> (u64, u64) {
    match cost {
        CostFunction::Violations => (count_violations(cs, enc) as u64, 0),
        CostFunction::Cubes => {
            let ((cubes, _), stats) =
                constraint_pla(cs, enc).minimize_summary_bounded(max_espresso_iters);
            (cubes as u64, stats.iterations)
        }
        CostFunction::Literals => {
            let ((_, lits), stats) =
                constraint_pla(cs, enc).minimize_summary_bounded(max_espresso_iters);
            (lits as u64, stats.iterations)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn satisfied_constraints_cost_one_cube_each() {
        // (a,b) satisfied by a=00, b=01 (face 0-), c=10, d=11.
        let cs = ConstraintSet::parse(&["a", "b", "c", "d"], "(a,b)").unwrap();
        let enc = Encoding::new(2, vec![0b00, 0b10, 0b01, 0b11]);
        assert!(enc.satisfies(&cs));
        assert_eq!(cost_of(&cs, &enc, CostFunction::Cubes), 1);
        assert_eq!(cost_of(&cs, &enc, CostFunction::Violations), 0);
    }

    #[test]
    fn violated_constraint_needs_two_cubes() {
        // (a,b) with a=00, b=11: the spanned face is the whole square, so c
        // or d intrudes; the on-set {00,11} needs 2 product terms.
        let cs = ConstraintSet::parse(&["a", "b", "c", "d"], "(a,b)").unwrap();
        let enc = Encoding::new(2, vec![0b00, 0b11, 0b01, 0b10]);
        assert!(cost_of(&cs, &enc, CostFunction::Violations) >= 1);
        assert_eq!(cost_of(&cs, &enc, CostFunction::Cubes), 2);
    }

    #[test]
    fn figure_9_cost_evaluation() {
        // Constraints (e,f,c),(e,d,g),(a,b,d),(a,g,f,d) with the 3-bit
        // encoding of Figure 9: a=010, b=110, c=111, d=000, e=101, f=011,
        // g=001 (bit order chosen LSB-first here). The paper reports 3
        // violated face constraints, 7 cubes and 14 literals.
        let names = ["a", "b", "c", "d", "e", "f", "g"];
        let cs = ConstraintSet::parse(&names, "(e,f,c)\n(e,d,g)\n(a,b,d)\n(a,g,f,d)").unwrap();
        let enc = Encoding::new(3, vec![0b010, 0b110, 0b111, 0b000, 0b101, 0b011, 0b001]);
        let violations = cost_of(&cs, &enc, CostFunction::Violations);
        let cubes = cost_of(&cs, &enc, CostFunction::Cubes);
        let literals = cost_of(&cs, &enc, CostFunction::Literals);
        // The exact numbers depend on the 3-bit encoding chosen (the
        // paper's figure is an image); what must hold is the *shape*: some
        // constraints are violated, and every violated constraint costs
        // at least one extra cube.
        assert!(violations >= 1);
        assert!(cubes >= 4 + violations as usize as u64);
        assert!(literals > cubes);
    }

    #[test]
    fn four_bit_encoding_satisfies_figure_9_constraints() {
        // The paper: with 4 bits all four constraints are satisfiable,
        // e.g. a=1010, b=0010, c=0011, d=1110, e=0111, f=1011, g=1100.
        let names = ["a", "b", "c", "d", "e", "f", "g"];
        let cs = ConstraintSet::parse(&names, "(e,f,c)\n(e,d,g)\n(a,b,d)\n(a,g,f,d)").unwrap();
        let enc = Encoding::new(
            4,
            vec![0b1010, 0b0010, 0b0011, 0b1110, 0b0111, 0b1011, 0b1100],
        );
        assert!(enc.satisfies(&cs), "violations: {:?}", enc.verify(&cs));
        assert_eq!(cost_of(&cs, &enc, CostFunction::Cubes), 4);
    }

    #[test]
    fn dont_care_symbols_are_pla_dont_cares() {
        let cs = ConstraintSet::parse(&["a", "b", "c", "d"], "(a,b,[c],d)").unwrap();
        let enc = Encoding::new(2, vec![0b00, 0b01, 0b10, 0b11]);
        // c=10 is free: minimization may or may not include it; the cost is
        // well-defined either way.
        let cubes = cost_of(&cs, &enc, CostFunction::Cubes);
        assert!(cubes >= 1);
    }

    #[test]
    fn violations_counts_face_once_per_constraint() {
        // (a,b) with both c and d inside the face: one violated constraint.
        let cs = ConstraintSet::parse(&["a", "b", "c", "d"], "(a,b)").unwrap();
        let enc = Encoding::new(2, vec![0b00, 0b11, 0b01, 0b10]);
        assert_eq!(count_violations(&cs, &enc), 1);
    }

    #[test]
    fn output_constraint_violations_counted() {
        let cs = ConstraintSet::parse(&["a", "b"], "a>b").unwrap();
        let enc = Encoding::new(1, vec![0, 1]);
        assert_eq!(count_violations(&cs, &enc), 1);
    }
}
