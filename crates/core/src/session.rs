//! Incremental re-solve sessions: edit a constraint set one [`Delta`] at a
//! time and re-encode without repeating the raising and prime-generation
//! work that survived the edit.
//!
//! A [`Session`] owns a constraint set, a [`Solver`] configuration and a
//! [`DichotomyLattice`]. Each [`apply`](Session::apply) materializes the
//! edited set, patches the lattice (re-raising only the dichotomies the
//! atom diff invalidated, splicing vertices in and out of the
//! maximal-compatible family), and hands the surviving raised dichotomies
//! and primes to the exact pipeline as precomputed parts. The contract is
//! *bit-identity*: every apply returns exactly what a from-scratch
//! [`Solver::solve`] of the edited set returns — same encoding, same
//! errors — because the pipeline's deterministic downstream (feasibility
//! gate, column assembly, covering) always reruns on set-equal inputs.
//!
//! The incremental path is taken only when it provably cannot diverge:
//!
//! * the solver's budget is unlimited — any limit (work units, deadline,
//!   cancellation) could truncate differently than a from-scratch run, so
//!   budgeted solves go from scratch and **never populate session state**;
//! * the mode is [`SolverMode::Exact`] or [`SolverMode::Auto`] (the
//!   bounded and heuristic encoders do not consume primes);
//! * the delta is small (see [`with_threshold`](Session::with_threshold));
//!   past the threshold a fresh solve is cheaper than patching;
//! * the maintained prime family is within the exact pipeline's cap —
//!   at or past the cap the from-scratch run defines the (error) behavior,
//!   so the session defers to it.
//!
//! On top of the lattice, the session memoizes completed covering
//! searches keyed on their exact inputs (rows and columns). A delta that
//! returns the set to an already-solved form — the add-then-remove
//! toggles of interactive exploration — replays the recorded selection
//! instead of searching again, which is where most of the solve time
//! goes on prime-rich sets. Replays are bit-identical by determinism:
//! the covering search is a pure function of inputs the memo compares in
//! full ([`ReuseReport::cover_replayed`] says when this happened).
//!
//! ```
//! use ioenc_core::{Delta, Session};
//! # use ioenc_core::ConstraintSet;
//!
//! let cs = ConstraintSet::parse(&["a", "b", "c", "d"], "(a,b)\n(c,d)")?;
//! let mut session = Session::open(cs);
//! let first = session.solve()?;
//! let edited = session.apply(&Delta::new().add("(b,c)"))?;
//! assert!(edited.reuse.incremental);
//! assert!(edited.solution.encoding.width() >= first.solution.encoding.width());
//! # Ok::<(), ioenc_core::EncodeError>(())
//! ```

use crate::auto::is_fatal;
use crate::exact::{exact_encode_report_with_parts, CoverMemo, ExactParts};
use crate::lattice::{DichotomyLattice, LatticeUpdate};
use crate::solver::{Solution, SolutionDetail, Solver, SolverMode};
use crate::{initial_dichotomies, AutoRung, ConstraintRef, ConstraintSet, EncodeError};

/// An edit to a session's constraint set: constraint lines to add and
/// remove, in the [`ConstraintSet::parse`] grammar.
///
/// Removals are matched by *content*, not position: `"a>b"` removes the
/// dominance `a > b` however it was originally written. Each removal line
/// must match exactly one (remaining) constraint.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Delta {
    add: Vec<String>,
    remove: Vec<String>,
}

impl Delta {
    /// An empty delta (applying it just re-solves the current set).
    pub fn new() -> Self {
        Delta::default()
    }

    /// Adds a constraint line.
    #[allow(clippy::should_implement_trait)] // builder edit, not arithmetic
    pub fn add(mut self, line: impl Into<String>) -> Self {
        self.add.push(line.into());
        self
    }

    /// Removes the constraint matching `line`.
    pub fn remove(mut self, line: impl Into<String>) -> Self {
        self.remove.push(line.into());
        self
    }

    /// Whether the delta edits anything.
    pub fn is_empty(&self) -> bool {
        self.add.is_empty() && self.remove.is_empty()
    }

    /// Number of edits (additions plus removals).
    pub fn len(&self) -> usize {
        self.add.len() + self.remove.len()
    }

    /// The constraint lines to add.
    pub fn additions(&self) -> &[String] {
        &self.add
    }

    /// The constraint lines to remove.
    pub fn removals(&self) -> &[String] {
        &self.remove
    }
}

/// How much cached work one [`Session::apply`] reused.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReuseReport {
    /// Whether the incremental path ran (`false` means a from-scratch
    /// solve, with any session state dropped or left untouched).
    pub incremental: bool,
    /// The number of edits in the applied delta.
    pub delta_size: usize,
    /// Cached raises carried over unchanged.
    pub raises_reused: usize,
    /// Cached raises re-derived or resumed because the delta touched them.
    pub raises_recomputed: usize,
    /// Dichotomies raised for the first time.
    pub raises_fresh: usize,
    /// Maximal compatibles currently maintained.
    pub cliques: usize,
    /// Whether the covering search itself was skipped because the edited
    /// set's cover inputs matched an earlier solve of this session (an
    /// add-then-remove toggle returning to a known form).
    pub cover_replayed: bool,
    /// Whether a first-visit covering search was *seeded* with an
    /// incumbent patched from the previous session solution (and, when
    /// certified, its lower bound). Seeding accelerates the search without
    /// changing its result; see the soundness notes in DESIGN §6g.
    pub cover_seeded: bool,
}

impl ReuseReport {
    fn from_update(delta_size: usize, u: &LatticeUpdate) -> Self {
        ReuseReport {
            incremental: true,
            delta_size,
            raises_reused: u.raises_reused,
            raises_recomputed: u.raises_recomputed,
            raises_fresh: u.raises_fresh,
            cliques: u.cliques,
            cover_replayed: false,
            cover_seeded: false,
        }
    }

    fn scratch(delta_size: usize) -> Self {
        ReuseReport {
            incremental: false,
            delta_size,
            ..Default::default()
        }
    }
}

/// The result of one [`Session::apply`]: the solve result plus the reuse
/// accounting.
#[derive(Debug, Clone)]
pub struct SessionOutcome {
    /// The solve result — bit-identical to a from-scratch
    /// [`Solver::solve`] of the session's current set.
    pub solution: Solution,
    /// What the incremental machinery reused.
    pub reuse: ReuseReport,
}

/// An incremental re-solve session; see the [module docs](self).
#[derive(Debug)]
pub struct Session {
    cs: ConstraintSet,
    solver: Solver,
    threshold: usize,
    lattice: Option<DichotomyLattice>,
    /// Completed covering searches keyed on their exact inputs, so a
    /// delta returning to an already-solved form replays the selection
    /// instead of searching again. Sound because lookups compare the full
    /// inputs and the search is deterministic; cleared whenever the
    /// solver (and thus the node limit) changes.
    memo: CoverMemo,
}

/// Covering results retained per session; enough for the add-then-remove
/// toggles of interactive exploration without unbounded growth.
const COVER_MEMO_CAP: usize = 16;

impl Session {
    /// Opens a session on `cs` with a default [`Solver`]
    /// ([`SolverMode::Auto`], unlimited budget) and a delta threshold of 4.
    ///
    /// Opening is cheap; the lattice is built by the first incremental
    /// [`apply`](Self::apply)/[`solve`](Self::solve).
    pub fn open(cs: ConstraintSet) -> Self {
        Session {
            cs,
            solver: Solver::new(),
            threshold: 4,
            lattice: None,
            memo: CoverMemo::new(COVER_MEMO_CAP),
        }
    }

    /// Uses `solver` for every solve (incremental or not).
    pub fn with_solver(mut self, solver: Solver) -> Self {
        self.solver = solver;
        self.lattice = None;
        // A new solver can carry a different node limit, which the memo
        // key does not capture; recorded selections are stale.
        self.memo = CoverMemo::new(COVER_MEMO_CAP);
        self
    }

    /// Sets the maximum delta size the incremental path accepts; larger
    /// deltas trigger a from-scratch solve and drop the cached state.
    pub fn with_threshold(mut self, threshold: usize) -> Self {
        self.threshold = threshold;
        self
    }

    /// The session's current constraint set.
    pub fn constraints(&self) -> &ConstraintSet {
        &self.cs
    }

    /// The configured solver.
    pub fn solver(&self) -> &Solver {
        &self.solver
    }

    /// Re-solves the current set (an empty [`Delta`]).
    ///
    /// # Errors
    ///
    /// As for [`apply`](Self::apply).
    pub fn solve(&mut self) -> Result<SessionOutcome, EncodeError> {
        self.apply(&Delta::new())
    }

    /// Applies `delta` to the constraint set and re-solves.
    ///
    /// The edited set is committed to the session even when the solve
    /// fails (say, an added constraint made it infeasible) — a following
    /// delta can remove the offender and continue incrementally. Parse and
    /// match failures in the delta itself leave the session untouched.
    ///
    /// # Errors
    ///
    /// * [`EncodeError::Parse`] when a delta line does not parse or a
    ///   removal matches no constraint;
    /// * otherwise, exactly what a from-scratch [`Solver::solve`] of the
    ///   edited set reports.
    pub fn apply(&mut self, delta: &Delta) -> Result<SessionOutcome, EncodeError> {
        let mut removed: Vec<ConstraintRef> = Vec::new();
        for line in &delta.remove {
            let rendered = self.render(line)?;
            let r = self
                .cs
                .constraint_refs()
                .into_iter()
                .filter(|r| !removed.contains(r))
                .find(|&r| self.cs.describe(r) == rendered)
                .ok_or_else(|| {
                    EncodeError::parse(format!(
                        "no constraint matching '{}' to remove",
                        line.trim()
                    ))
                })?;
            removed.push(r);
        }
        let mut new_cs = if removed.is_empty() {
            self.cs.clone()
        } else {
            let keep: Vec<ConstraintRef> = self
                .cs
                .constraint_refs()
                .into_iter()
                .filter(|r| !removed.contains(r))
                .collect();
            self.cs.subset(&keep)
        };
        for line in &delta.add {
            new_cs.add_line(line)?;
        }
        self.solve_edited(new_cs, delta.len())
    }

    /// Replaces the whole constraint set (dropping cached state — a
    /// replacement is an unbounded delta) and re-solves.
    ///
    /// # Errors
    ///
    /// As for [`Solver::solve`].
    pub fn replace(&mut self, cs: ConstraintSet) -> Result<SessionOutcome, EncodeError> {
        self.lattice = None;
        self.cs = cs;
        let solution = self.solver.solve(&self.cs)?;
        Ok(SessionOutcome {
            solution,
            reuse: ReuseReport::scratch(0),
        })
    }

    /// Renders a constraint line in the session's canonical `describe`
    /// form for content matching, without touching the session set.
    fn render(&self, line: &str) -> Result<String, EncodeError> {
        let names: Vec<String> = (0..self.cs.num_symbols())
            .map(|i| self.cs.name(i).to_string())
            .collect();
        let mut tmp = ConstraintSet::with_names(names);
        let r = tmp.add_line(line)?;
        Ok(tmp.describe(r))
    }

    fn solve_edited(
        &mut self,
        new_cs: ConstraintSet,
        delta_size: usize,
    ) -> Result<SessionOutcome, EncodeError> {
        let eligible = self.solver.opts.budget.is_unlimited()
            && matches!(self.solver.mode, SolverMode::Exact | SolverMode::Auto);
        if !eligible || (self.lattice.is_some() && delta_size > self.threshold) {
            // From-scratch solve. Budgeted solves can be truncated by a
            // deadline or work limit, so they must never populate the
            // cached state; over-threshold deltas make it stale instead.
            self.lattice = None;
            self.cs = new_cs;
            let solution = self.solver.solve(&self.cs)?;
            return Ok(SessionOutcome {
                solution,
                reuse: ReuseReport::scratch(delta_size),
            });
        }

        let initial = initial_dichotomies(&new_cs, !new_cs.has_output_constraints());
        let cap = self.solver.opts.exact.prime_cap;
        // Slack above the pipeline cap absorbs transient family growth
        // mid-update; the authoritative cap check happens below, per solve.
        let maintenance_cap = cap.saturating_mul(2).max(cap.saturating_add(1024));
        let update = match &mut self.lattice {
            Some(l) => l.apply(&new_cs, &initial),
            None => {
                let (l, u) = DichotomyLattice::build(&new_cs, &initial, maintenance_cap);
                self.lattice = Some(l);
                u
            }
        };
        self.cs = new_cs;

        let parts = match &self.lattice {
            Some(l) if !l.is_oversized() && l.clique_count() <= cap => {
                l.primes().map(|primes| ExactParts {
                    raised: l.raised().to_vec(),
                    primes_raw: primes,
                })
            }
            _ => None,
        };
        let Some(parts) = parts else {
            // The prime family is at or past the exact pipeline's cap: the
            // from-scratch run (and its cap error) is the defined behavior.
            if self.lattice.as_ref().is_some_and(|l| l.is_oversized()) {
                self.lattice = None;
            }
            let solution = self.solver.solve(&self.cs)?;
            return Ok(SessionOutcome {
                solution,
                reuse: ReuseReport::scratch(delta_size),
            });
        };

        let mut reuse = ReuseReport::from_update(delta_size, &update);
        let hits_before = self.memo.hits();
        match self.solver.mode {
            SolverMode::Exact => {
                let r = exact_encode_report_with_parts(
                    &self.cs,
                    &self.solver.exact_options(),
                    parts,
                    Some(&mut self.memo),
                )?;
                reuse.cover_replayed = self.memo.hits() > hits_before;
                reuse.cover_seeded = r.warmed;
                Ok(SessionOutcome {
                    solution: Solution {
                        encoding: r.encoding,
                        stats: r.stats,
                        detail: SolutionDetail::Exact { optimal: r.optimal },
                    },
                    reuse,
                })
            }
            SolverMode::Auto => {
                // With an unlimited shared budget the auto ladder's exact
                // rung runs with exactly these options, so an incremental
                // exact success (or fatal error) is the ladder's verdict.
                match exact_encode_report_with_parts(
                    &self.cs,
                    &self.solver.exact_options(),
                    parts,
                    Some(&mut self.memo),
                ) {
                    Ok(r) => {
                        reuse.cover_replayed = self.memo.hits() > hits_before;
                        reuse.cover_seeded = r.warmed;
                        Ok(SessionOutcome {
                            solution: Solution {
                                encoding: r.encoding,
                                stats: r.stats,
                                detail: SolutionDetail::Auto {
                                    rung: AutoRung::Exact,
                                    optimal: r.optimal,
                                    attempts: Vec::new(),
                                    reused_raised: false,
                                },
                            },
                            reuse,
                        })
                    }
                    Err(e) if is_fatal(&e) => Err(e),
                    Err(_) => {
                        // A non-fatal exact failure (node-limit abort, over
                        // 64 bits, non-face blow-up): let the full ladder
                        // answer from scratch, as it would have.
                        let solution = self.solver.solve(&self.cs)?;
                        Ok(SessionOutcome {
                            solution,
                            reuse: ReuseReport::scratch(delta_size),
                        })
                    }
                }
            }
            SolverMode::Bounded | SolverMode::Heuristic => unreachable!("gated above"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Budget, Solver, SolverMode};

    fn base() -> ConstraintSet {
        ConstraintSet::parse(&["a", "b", "c", "d", "e"], "(a,b)\n(c,d)\n(b,c,e)\na>c").unwrap()
    }

    fn codes_of(s: &SessionOutcome) -> Vec<u64> {
        s.solution.encoding.codes().to_vec()
    }

    #[test]
    fn empty_delta_matches_scratch() {
        let mut session = Session::open(base());
        let out = session.solve().unwrap();
        let scratch = Solver::new().solve(&base()).unwrap();
        assert_eq!(codes_of(&out), scratch.encoding.codes());
        assert!(out.reuse.incremental);
    }

    #[test]
    fn add_remove_chain_matches_scratch() {
        let mut session = Session::open(base());
        session.solve().unwrap();

        let out = session.apply(&Delta::new().add("b>d")).unwrap();
        let mut expect = base();
        expect.add_line("b>d").unwrap();
        let scratch = Solver::new().solve(&expect).unwrap();
        assert_eq!(codes_of(&out), scratch.encoding.codes());
        assert!(out.reuse.incremental);

        // Content-matched removal of an original constraint.
        let out = session.apply(&Delta::new().remove("a>c")).unwrap();
        assert!(out.reuse.incremental);
        let refs = expect.constraint_refs();
        let keep: Vec<ConstraintRef> = refs
            .iter()
            .copied()
            .filter(|&r| expect.describe(r) != "a>c")
            .collect();
        let expect = expect.subset(&keep);
        let scratch = Solver::new().solve(&expect).unwrap();
        assert_eq!(codes_of(&out), scratch.encoding.codes());
        assert_eq!(session.constraints().len(), expect.len());
    }

    #[test]
    fn first_visit_delta_is_seeded_and_matches_scratch() {
        let mut session = Session::open(base());
        session.solve().unwrap();
        // A never-before-seen form: no replay, but the previous solution
        // seeds the covering search — with the identical outcome.
        let out = session.apply(&Delta::new().add("(d,e)")).unwrap();
        assert!(!out.reuse.cover_replayed, "first visit must search");
        assert!(out.reuse.cover_seeded, "first visit should be seeded");
        let mut expect = base();
        expect.add_line("(d,e)").unwrap();
        let scratch = Solver::new().solve(&expect).unwrap();
        assert_eq!(codes_of(&out), scratch.encoding.codes());
    }

    #[test]
    fn removal_of_missing_constraint_is_a_parse_error() {
        let mut session = Session::open(base());
        let err = session.apply(&Delta::new().remove("d>e")).unwrap_err();
        assert!(matches!(err, EncodeError::Parse { .. }));
        // The session set is untouched.
        assert_eq!(session.constraints().len(), base().len());
    }

    #[test]
    fn infeasible_delta_reports_and_commits() {
        let mut session = Session::open(base());
        session.solve().unwrap();
        // a>c plus c>a is jointly unsatisfiable.
        let err = session.apply(&Delta::new().add("c>a")).unwrap_err();
        assert!(matches!(err, EncodeError::Infeasible { .. }));
        // The offending constraint is committed; removing it recovers.
        let out = session.apply(&Delta::new().remove("c>a")).unwrap();
        assert!(out.reuse.incremental);
        let scratch = Solver::new().solve(&base()).unwrap();
        assert_eq!(codes_of(&out), scratch.encoding.codes());
    }

    #[test]
    fn budgeted_solver_never_populates_state() {
        let solver = Solver::new().budget(Budget::unlimited().with_max_primes(10_000));
        let mut session = Session::open(base()).with_solver(solver);
        let out = session.solve().unwrap();
        assert!(!out.reuse.incremental);
        assert!(session.lattice.is_none(), "budgeted solve must not cache");
        let out = session.apply(&Delta::new().add("(d,e)")).unwrap();
        assert!(!out.reuse.incremental);
        assert!(session.lattice.is_none());
    }

    #[test]
    fn over_threshold_delta_goes_scratch_and_drops_state() {
        let mut session = Session::open(base()).with_threshold(1);
        session.solve().unwrap();
        assert!(session.lattice.is_some());
        let delta = Delta::new().add("(a,c)").add("(b,d)");
        let out = session.apply(&delta).unwrap();
        assert!(!out.reuse.incremental);
        assert!(session.lattice.is_none());
        // The next small delta rebuilds and goes incremental again.
        let out = session.apply(&Delta::new().add("(d,e)")).unwrap();
        assert!(out.reuse.incremental);
    }

    #[test]
    fn exact_mode_sessions_work() {
        let solver = Solver::new().mode(SolverMode::Exact);
        let mut session = Session::open(base()).with_solver(solver.clone());
        let out = session.apply(&Delta::new().add("d>e")).unwrap();
        assert!(out.reuse.incremental);
        let mut expect = base();
        expect.add_line("d>e").unwrap();
        let scratch = solver.solve(&expect).unwrap();
        assert_eq!(codes_of(&out), scratch.encoding.codes());
        assert!(matches!(out.solution.detail, SolutionDetail::Exact { .. }));
    }

    #[test]
    fn heuristic_mode_always_scratch() {
        let solver = Solver::new().mode(SolverMode::Heuristic);
        let mut session = Session::open(base()).with_solver(solver);
        let out = session.solve().unwrap();
        assert!(!out.reuse.incremental);
        assert!(session.lattice.is_none());
    }

    #[test]
    fn replace_resets_state() {
        let mut session = Session::open(base());
        session.solve().unwrap();
        let other = ConstraintSet::parse(&["x", "y", "z"], "(x,y)").unwrap();
        let out = session.replace(other.clone()).unwrap();
        assert!(!out.reuse.incremental);
        let scratch = Solver::new().solve(&other).unwrap();
        assert_eq!(codes_of(&out), scratch.encoding.codes());
    }

    #[test]
    fn toggle_deltas_replay_the_covering_search() {
        let mut session = Session::open(base());
        session.solve().unwrap();
        let first = session.apply(&Delta::new().add("(d,e)")).unwrap();
        assert!(!first.reuse.cover_replayed, "first visit must search");
        // Back to the base form solved at open: the cover inputs recur.
        let back = session.apply(&Delta::new().remove("(d,e)")).unwrap();
        assert!(back.reuse.cover_replayed);
        let scratch = Solver::new().solve(&base()).unwrap();
        assert_eq!(codes_of(&back), scratch.encoding.codes());
        // Forward again: the edited form is memoized too.
        let again = session.apply(&Delta::new().add("(d,e)")).unwrap();
        assert!(again.reuse.cover_replayed);
        assert_eq!(codes_of(&again), codes_of(&first));
    }

    #[test]
    fn duplicate_constraints_remove_one_at_a_time() {
        let mut cs = ConstraintSet::new(3);
        cs.add_face([0, 1]);
        cs.add_face([0, 1]);
        let mut session = Session::open(cs);
        session.solve().unwrap();
        session.apply(&Delta::new().remove("(s0,s1)")).unwrap();
        assert_eq!(session.constraints().len(), 1);
        session.apply(&Delta::new().remove("(s0,s1)")).unwrap();
        assert_eq!(session.constraints().len(), 0);
        let err = session.apply(&Delta::new().remove("(s0,s1)")).unwrap_err();
        assert!(matches!(err, EncodeError::Parse { .. }));
    }
}
