//! Error type shared by the encoders.

use crate::budget::{BudgetPhase, BudgetSpent};
use crate::lint::{LintReport, Severity};
use crate::Dichotomy;
use std::fmt;

/// Errors from the feasibility check and the encoders.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EncodeError {
    /// The constraints are unsatisfiable: these initial encoding-
    /// dichotomies cannot be covered by any valid raised dichotomy
    /// (Theorem 6.1).
    Infeasible {
        /// The uncovered initial encoding-dichotomies.
        uncovered: Vec<Dichotomy>,
        /// A lint report explaining *why* — structural diagnostics or a
        /// minimal conflict core (see [`crate::lint`]). Attached by the
        /// feasibility gates of [`exact_encode`](crate::exact_encode) and
        /// [`encode_auto`](crate::encode_auto); `None` on paths that
        /// never saw the whole constraint set (e.g. a length-bound miss).
        explanation: Option<Box<LintReport>>,
    },
    /// Prime encoding-dichotomy generation exceeded the configured cap
    /// (the `> 50 000` cases of Table 1). Returned by the low-level
    /// [`generate_primes`](crate::generate_primes) API; the encoding
    /// pipeline reports cap exhaustion as [`Budget`](Self::Budget) instead,
    /// so the work already done is not lost.
    PrimesExceeded {
        /// The cap that was hit.
        limit: usize,
    },
    /// The covering solver gave up (node limit) before proving a solution.
    CoverAborted,
    /// A resource budget ([`Budget`](crate::Budget)) — or the legacy prime
    /// cap / cover node limit — expired during `phase`. The partial work
    /// is carried in `spent`: its stats are deterministic across thread
    /// counts, and for the primes phase the already-raised dichotomies
    /// ride along for reuse by a fallback encoder.
    Budget {
        /// The phase the budget expired in.
        phase: BudgetPhase,
        /// The partial work performed before expiry.
        spent: Box<BudgetSpent>,
    },
    /// More than 64 code bits would be required.
    WidthExceeded,
    /// Enumerating the minimal hitting sets of a non-face constraint
    /// exceeded the cap (Section 8.3's covering clauses).
    NonFaceTooComplex,
    /// The instance is too large for the requested (oracle) algorithm.
    TooLarge {
        /// A short description of the exceeded limit.
        what: &'static str,
    },
    /// A constraint file, KISS2 description or command line could not be
    /// parsed.
    Parse {
        /// What went wrong, naming the offending line or token.
        message: String,
    },
    /// A file could not be read or written.
    Io {
        /// The path involved.
        path: String,
        /// The operating-system error.
        message: String,
    },
    /// A user-supplied limit or size is unusable (zero, or beyond what the
    /// implementation supports).
    Limit {
        /// Which limit, and why it was rejected.
        what: String,
    },
}

impl EncodeError {
    /// A [`EncodeError::Infeasible`] with no lint explanation attached.
    pub fn infeasible(uncovered: Vec<Dichotomy>) -> Self {
        EncodeError::Infeasible {
            uncovered,
            explanation: None,
        }
    }

    /// A [`EncodeError::Parse`] from anything printable.
    pub fn parse(message: impl Into<String>) -> Self {
        EncodeError::Parse {
            message: message.into(),
        }
    }

    /// A [`EncodeError::Io`] from a path and an OS error.
    pub fn io(path: impl Into<String>, err: &std::io::Error) -> Self {
        EncodeError::Io {
            path: path.into(),
            message: err.to_string(),
        }
    }

    /// A [`EncodeError::Limit`] from anything printable.
    pub fn limit(what: impl Into<String>) -> Self {
        EncodeError::Limit { what: what.into() }
    }

    /// A [`EncodeError::Budget`] from a phase and the partial work.
    pub fn budget(phase: BudgetPhase, spent: BudgetSpent) -> Self {
        EncodeError::Budget {
            phase,
            spent: Box::new(spent),
        }
    }

    /// The documented error class: a stable lowercase name shared by the
    /// CLI, `serve` responses and the exit-code table in README.md.
    ///
    /// Variants that describe a legacy cap or an oversized instance
    /// (`PrimesExceeded`, `CoverAborted`, `WidthExceeded`,
    /// `NonFaceTooComplex`, `TooLarge`) all report as `"limit"`.
    pub fn class(&self) -> &'static str {
        match self {
            EncodeError::Parse { .. } => "parse",
            EncodeError::Io { .. } => "io",
            EncodeError::Limit { .. }
            | EncodeError::PrimesExceeded { .. }
            | EncodeError::CoverAborted
            | EncodeError::WidthExceeded
            | EncodeError::NonFaceTooComplex
            | EncodeError::TooLarge { .. } => "limit",
            EncodeError::Budget { .. } => "budget",
            EncodeError::Infeasible { .. } => "infeasible",
        }
    }

    /// The process exit code every `ioenc` subcommand uses for this error
    /// class: parse = 2, io = 3, limit = 4, budget = 5, infeasible = 6
    /// (0 is success and 1 is reserved for errors outside this type).
    pub fn exit_code(&self) -> u8 {
        match self.class() {
            "parse" => 2,
            "io" => 3,
            "limit" => 4,
            "budget" => 5,
            _ => 6,
        }
    }
}

impl fmt::Display for EncodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EncodeError::Infeasible {
                uncovered,
                explanation,
            } => {
                write!(
                    f,
                    "constraints are unsatisfiable ({} uncovered initial dichotomies)",
                    uncovered.len()
                )?;
                if let Some(report) = explanation {
                    if let Some(d) = report
                        .diagnostics
                        .iter()
                        .find(|d| d.severity == Severity::Error)
                    {
                        write!(f, "; {}: {}", d.code, d.message)?;
                    }
                }
                Ok(())
            }
            EncodeError::PrimesExceeded { limit } => {
                write!(f, "more than {limit} prime encoding-dichotomies")
            }
            EncodeError::CoverAborted => write!(f, "covering search exceeded its node limit"),
            EncodeError::Budget { phase, .. } => {
                write!(f, "resource budget exhausted during {phase}")
            }
            EncodeError::WidthExceeded => write!(f, "encoding would need more than 64 bits"),
            EncodeError::NonFaceTooComplex => {
                write!(f, "non-face constraint clause generation exceeded its cap")
            }
            EncodeError::TooLarge { what } => write!(f, "instance too large: {what}"),
            EncodeError::Parse { message } => write!(f, "parse error: {message}"),
            EncodeError::Io { path, message } => write!(f, "{path}: {message}"),
            EncodeError::Limit { what } => write!(f, "bad limit: {what}"),
        }
    }
}

impl std::error::Error for EncodeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = EncodeError::PrimesExceeded { limit: 50_000 };
        assert!(e.to_string().contains("50000"));
        let e = EncodeError::infeasible(vec![]);
        assert!(e.to_string().contains("unsatisfiable"));
    }

    #[test]
    fn budget_display_names_the_phase() {
        let e = EncodeError::budget(BudgetPhase::Primes, BudgetSpent::default());
        assert!(e.to_string().contains("budget exhausted"));
        assert!(e.to_string().contains("prime generation"));
        let e = EncodeError::budget(BudgetPhase::Heuristic, BudgetSpent::default());
        assert!(e.to_string().contains("heuristic search"));
    }

    #[test]
    fn typed_front_end_variants() {
        let e = EncodeError::parse("line 3: unknown symbol 'q'");
        assert!(e.to_string().contains("line 3"));
        let os = std::io::Error::new(std::io::ErrorKind::NotFound, "missing");
        let e = EncodeError::io("foo.kiss2", &os);
        assert!(e.to_string().starts_with("foo.kiss2:"));
        let e = EncodeError::limit("--prime-cap must be positive");
        assert!(e.to_string().contains("--prime-cap"));
    }

    #[test]
    fn exit_codes_follow_the_documented_classes() {
        let os = std::io::Error::new(std::io::ErrorKind::NotFound, "missing");
        let cases = [
            (EncodeError::parse("bad"), "parse", 2),
            (EncodeError::io("f", &os), "io", 3),
            (EncodeError::limit("zero"), "limit", 4),
            (
                EncodeError::budget(BudgetPhase::Primes, BudgetSpent::default()),
                "budget",
                5,
            ),
            (EncodeError::infeasible(vec![]), "infeasible", 6),
            (EncodeError::PrimesExceeded { limit: 1 }, "limit", 4),
            (EncodeError::CoverAborted, "limit", 4),
            (EncodeError::WidthExceeded, "limit", 4),
            (EncodeError::NonFaceTooComplex, "limit", 4),
            (EncodeError::TooLarge { what: "n" }, "limit", 4),
        ];
        for (err, class, code) in cases {
            assert_eq!(err.class(), class, "{err}");
            assert_eq!(err.exit_code(), code, "{err}");
        }
    }
}
