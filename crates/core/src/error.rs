//! Error type shared by the encoders.

use crate::Dichotomy;
use std::fmt;

/// Errors from the feasibility check and the encoders.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EncodeError {
    /// The constraints are unsatisfiable: these initial encoding-
    /// dichotomies cannot be covered by any valid raised dichotomy
    /// (Theorem 6.1).
    Infeasible {
        /// The uncovered initial encoding-dichotomies.
        uncovered: Vec<Dichotomy>,
    },
    /// Prime encoding-dichotomy generation exceeded the configured cap
    /// (the `> 50 000` cases of Table 1).
    PrimesExceeded {
        /// The cap that was hit.
        limit: usize,
    },
    /// The covering solver gave up (node limit) before proving a solution.
    CoverAborted,
    /// More than 64 code bits would be required.
    WidthExceeded,
    /// Enumerating the minimal hitting sets of a non-face constraint
    /// exceeded the cap (Section 8.3's covering clauses).
    NonFaceTooComplex,
    /// The instance is too large for the requested (oracle) algorithm.
    TooLarge {
        /// A short description of the exceeded limit.
        what: &'static str,
    },
}

impl fmt::Display for EncodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EncodeError::Infeasible { uncovered } => write!(
                f,
                "constraints are unsatisfiable ({} uncovered initial dichotomies)",
                uncovered.len()
            ),
            EncodeError::PrimesExceeded { limit } => {
                write!(f, "more than {limit} prime encoding-dichotomies")
            }
            EncodeError::CoverAborted => write!(f, "covering search exceeded its node limit"),
            EncodeError::WidthExceeded => write!(f, "encoding would need more than 64 bits"),
            EncodeError::NonFaceTooComplex => {
                write!(f, "non-face constraint clause generation exceeded its cap")
            }
            EncodeError::TooLarge { what } => write!(f, "instance too large: {what}"),
        }
    }
}

impl std::error::Error for EncodeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = EncodeError::PrimesExceeded { limit: 50_000 };
        assert!(e.to_string().contains("50000"));
        let e = EncodeError::Infeasible { uncovered: vec![] };
        assert!(e.to_string().contains("unsatisfiable"));
    }
}
