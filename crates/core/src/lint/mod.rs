//! Static analysis of a [`ConstraintSet`] before encoding.
//!
//! [`lint`] runs the polynomial structural tests that Section 5 and
//! Theorem 6.1 of the paper make available — dominance-cycle detection,
//! face/dominance interaction, disjunctive contradictions — plus quality
//! lints, and reports them as [`Diagnostic`]s with stable codes:
//!
//! * `E0xx` — the set is **provably infeasible**; the message explains why
//!   and the attached [`ConstraintRef`]s point at the offending
//!   constraints (with source [`Span`](crate::Span)s when the set came
//!   from [`ConstraintSet::parse`]).
//! * `W0xx` — redundant or suspicious constraints (duplicates, subsumed
//!   faces, implied dominances).
//! * `N0xx` — informational notes.
//!
//! When every structural check passes but the Theorem-6.1 oracle still
//! says infeasible, [`lint`] shrinks the set to a deterministic **minimal
//! conflict core** (diagnostic `E008`): an infeasible subset whose every
//! proper subset is feasible, found by deletion-based shrinking against
//! [`check_feasible`] and verified minimal by
//! re-checking every core-minus-one subset. The search honours the
//! [`Budget`] in [`LintOptions`]; an interrupted search still reports a
//! sound (infeasible) core, flagged as unverified.
//!
//! The full diagnostic registry lives in DESIGN.md §6d.

mod checks;
mod conflict;
mod render;

use crate::budget::Budget;
use crate::constraints::{ConstraintRef, ConstraintSet};
use crate::feasible::{check_feasible, Feasibility};

/// How serious a [`Diagnostic`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// The constraint set is provably infeasible (`E0xx`).
    Error,
    /// Redundant or suspicious, but satisfiable (`W0xx`).
    Warning,
    /// Informational (`N0xx`).
    Note,
}

impl Severity {
    /// The lowercase label used in text and JSON output.
    pub fn label(self) -> &'static str {
        match self {
            Severity::Error => "error",
            Severity::Warning => "warning",
            Severity::Note => "note",
        }
    }
}

/// One lint finding: a stable code, a severity, a human-readable message
/// and the constraints involved (first the offending constraint, then any
/// supporting evidence such as the dominance path that closes a cycle).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Stable diagnostic code (`E001`…, `W001`…, `N001`…).
    pub code: &'static str,
    /// Error, warning or note.
    pub severity: Severity,
    /// Human-readable explanation using symbol names.
    pub message: String,
    /// The constraints involved, in evidence order.
    pub constraints: Vec<ConstraintRef>,
}

/// A minimal infeasible subset of the constraint set (diagnostic `E008`).
///
/// The core is *sound*: the subset is infeasible under Theorem 6.1. It is
/// *minimal* when `verified_minimal` is true: every core-minus-one subset
/// was re-checked and found feasible. A budget interrupt during shrinking
/// leaves a sound but possibly non-minimal core with the flag false.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConflictCore {
    /// The core's constraints, in canonical [`ConstraintSet`] order.
    pub constraints: Vec<ConstraintRef>,
    /// Whether minimality was verified by re-checking every
    /// core-minus-one subset.
    pub verified_minimal: bool,
    /// Feasibility-oracle invocations spent shrinking and verifying.
    pub oracle_calls: u64,
}

/// Options for [`lint`].
///
/// `#[non_exhaustive]`: construct with [`LintOptions::new`] (or
/// `default()`) and the `with_*` builders.
#[derive(Debug, Clone, Default)]
#[non_exhaustive]
pub struct LintOptions {
    /// Budget for the conflict-core search (deadline, cancel token and
    /// `max_evals` as a cap on feasibility-oracle calls). The structural
    /// checks are polynomial and always run to completion.
    pub budget: Budget,
}

impl LintOptions {
    /// Default options: unlimited budget.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the conflict-core search budget.
    pub fn with_budget(mut self, budget: Budget) -> Self {
        self.budget = budget;
        self
    }
}

/// The result of [`lint`]: the oracle verdict plus all diagnostics in
/// deterministic order (errors by code, then warnings, then notes; within
/// a code, by constraint index).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LintReport {
    /// The Theorem-6.1 oracle verdict for the full set. Note `E005`/`E007`
    /// describe contradictions the oracle does not model (distance-2,
    /// non-face), so a report can be infeasible overall — [`has_errors`]
    /// — while `feasible` is true.
    ///
    /// [`has_errors`]: LintReport::has_errors
    pub feasible: bool,
    /// All findings, deterministically ordered.
    pub diagnostics: Vec<Diagnostic>,
    /// The minimal conflict core backing `E008`, when one was computed.
    pub core: Option<ConflictCore>,
}

impl LintReport {
    /// Number of `E0xx` diagnostics.
    pub fn errors(&self) -> usize {
        self.count(Severity::Error)
    }

    /// Number of `W0xx` diagnostics.
    pub fn warnings(&self) -> usize {
        self.count(Severity::Warning)
    }

    /// Number of `N0xx` diagnostics.
    pub fn notes(&self) -> usize {
        self.count(Severity::Note)
    }

    fn count(&self, sev: Severity) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == sev)
            .count()
    }

    /// `true` if any error-severity diagnostic was reported.
    pub fn has_errors(&self) -> bool {
        self.errors() > 0
    }

    /// `true` if the set is usable: oracle-feasible and no `E0xx` found.
    pub fn is_clean(&self) -> bool {
        self.feasible && !self.has_errors()
    }

    /// Renders the report as human-readable text. `origin` names the input
    /// in span lines (defaults to `<input>`); `cs` must be the set the
    /// report was produced from. The output is deterministic and
    /// independent of thread count.
    pub fn render(&self, cs: &ConstraintSet, origin: Option<&str>) -> String {
        render::render_text(self, cs, origin.unwrap_or("<input>"))
    }

    /// Renders the report as pretty-printed JSON (stable key order, same
    /// determinism guarantee as [`render`](LintReport::render)).
    pub fn render_json(&self, cs: &ConstraintSet, origin: Option<&str>) -> String {
        render::render_json(self, cs, origin.unwrap_or("<input>"))
    }

    /// Builds the report as a compact [`Json`](crate::json::Json) value
    /// with the same field names as
    /// [`render_json`](LintReport::render_json), for embedding in larger
    /// documents (`encode --json` failures, `serve` responses). Unlike
    /// `render_json`, the `origin` field is omitted entirely when `None`,
    /// keeping embedded reports independent of how the input was named.
    pub fn to_json(&self, cs: &ConstraintSet, origin: Option<&str>) -> crate::json::Json {
        render::report_json(self, cs, origin)
    }
}

/// Lints `cs`: runs every structural check, consults the Theorem-6.1
/// oracle, and — when the oracle refutes a structurally clean set —
/// computes a minimal conflict core (see the [module docs](self)).
///
/// # Examples
///
/// ```
/// use ioenc_core::lint::{lint, LintOptions};
/// use ioenc_core::ConstraintSet;
///
/// let cs = ConstraintSet::parse(&["a", "b"], "a>b\nb>a")?;
/// let report = lint(&cs, &LintOptions::new());
/// assert!(!report.is_clean());
/// assert_eq!(report.diagnostics[0].code, "E001");
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn lint(cs: &ConstraintSet, opts: &LintOptions) -> LintReport {
    let feas = check_feasible(cs);
    lint_with_feasibility(cs, opts, &feas)
}

/// Like [`lint`] but reuses an already-computed oracle verdict (the
/// encoders attach lint explanations to `EncodeError::Infeasible` without
/// re-running the raising pass they just did).
pub(crate) fn lint_with_feasibility(
    cs: &ConstraintSet,
    opts: &LintOptions,
    feas: &Feasibility,
) -> LintReport {
    let graphs = checks::DomGraphs::build(cs);
    let mut diagnostics = Vec::new();
    checks::structural(cs, &graphs, &mut diagnostics);
    let feasible = feas.is_feasible();
    let mut core = None;
    if !feasible && !diagnostics.iter().any(|d| d.severity == Severity::Error) {
        let (c, diag) = conflict::minimal_core(cs, feas, &opts.budget);
        diagnostics.push(diag);
        core = Some(c);
    }
    checks::quality(cs, &graphs, &mut diagnostics);
    LintReport {
        feasible,
        diagnostics,
        core,
    }
}

#[cfg(test)]
mod tests;
