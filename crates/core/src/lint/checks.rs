//! The structural infeasibility checks (`E001`–`E007`) and the quality
//! lints (`W001`–`W005`, `N001`–`N003`).
//!
//! Every check here is a polynomial decision on the dominance graph, the
//! face lattice, or plain constraint syntax — no feasibility-oracle calls
//! (those belong to the conflict-core search). Each `E0xx` check carries a
//! soundness argument in its comment: why the detected pattern refutes
//! every encoding.

use super::{Diagnostic, Severity};
use crate::constraints::{ConstraintRef, ConstraintSet};
use ioenc_bitset::BitSet;
use std::collections::BTreeSet;

/// The dominance graphs the structural checks share: explicit edges (one
/// per dominance constraint) and the full graph that adds the
/// disjunctive-implied edges `parent → child`, with reachability closures
/// of both. Edge and adjacency orders are deterministic (constraint
/// insertion order, adjacency sorted), so every path the checks report is
/// deterministic too.
pub(super) struct DomGraphs {
    n: usize,
    explicit: Vec<(usize, usize, ConstraintRef)>,
    all: Vec<(usize, usize, ConstraintRef)>,
    adj_all: Vec<Vec<(usize, ConstraintRef)>>,
    reach_explicit: Vec<BitSet>,
    pub(super) reach_all: Vec<BitSet>,
}

impl DomGraphs {
    pub(super) fn build(cs: &ConstraintSet) -> Self {
        let n = cs.num_symbols();
        let explicit: Vec<(usize, usize, ConstraintRef)> = cs
            .dominances()
            .iter()
            .enumerate()
            .map(|(i, &(a, b))| (a, b, ConstraintRef::Dominance(i)))
            .collect();
        let mut all = explicit.clone();
        for (i, (parent, children)) in cs.disjunctives().enumerate() {
            for &c in children {
                all.push((parent, c, ConstraintRef::Disjunctive(i)));
            }
        }
        let mut adj_all: Vec<Vec<(usize, ConstraintRef)>> = vec![Vec::new(); n];
        for &(a, b, r) in &all {
            adj_all[a].push((b, r));
        }
        for adj in &mut adj_all {
            adj.sort();
        }
        let mut adj_explicit: Vec<Vec<(usize, ConstraintRef)>> = vec![Vec::new(); n];
        for &(a, b, r) in &explicit {
            adj_explicit[a].push((b, r));
        }
        let reach_explicit = reachability(n, &adj_explicit);
        let reach_all = reachability(n, &adj_all);
        DomGraphs {
            n,
            explicit,
            all,
            adj_all,
            reach_explicit,
            reach_all,
        }
    }

    /// `true` if codes of `a` and `b` are forced equal by a dominance
    /// cycle (`a ⇒ b` and `b ⇒ a` in the full graph).
    pub(super) fn forced_equal(&self, a: usize, b: usize) -> bool {
        self.reach_all[a].contains(b) && self.reach_all[b].contains(a)
    }

    /// The constraints along a shortest `from → to` path in the full
    /// graph, skipping edges contributed by `exclude`. BFS with sorted
    /// adjacency makes the path deterministic. `None` if unreachable.
    fn path_refs_excluding(
        &self,
        from: usize,
        to: usize,
        exclude: Option<ConstraintRef>,
    ) -> Option<Vec<ConstraintRef>> {
        let mut parent: Vec<Option<(usize, ConstraintRef)>> = vec![None; self.n];
        let mut seen = BitSet::new(self.n);
        let mut queue = vec![from];
        let mut head = 0;
        while head < queue.len() {
            let u = queue[head];
            head += 1;
            for &(v, r) in &self.adj_all[u] {
                if Some(r) == exclude {
                    continue;
                }
                if seen.insert(v) {
                    parent[v] = Some((u, r));
                    queue.push(v);
                }
            }
        }
        if !seen.contains(to) {
            return None;
        }
        let mut refs = Vec::new();
        let mut cur = to;
        loop {
            // Every discovered node's parent chain leads back to `from`,
            // so the walk terminates; `seen.contains(to)` guarantees the
            // chain exists.
            #[allow(clippy::expect_used)]
            let (p, r) = parent[cur].expect("BFS parent chain is rooted at `from`");
            refs.push(r);
            cur = p;
            if cur == from {
                break;
            }
        }
        refs.reverse();
        Some(refs)
    }

    /// Shortest-path constraints `from → to` in the full graph.
    fn path_refs(&self, from: usize, to: usize) -> Vec<ConstraintRef> {
        self.path_refs_excluding(from, to, None).unwrap_or_default()
    }
}

/// `reach[a]` = symbols reachable from `a` via at least one edge.
fn reachability(n: usize, adj: &[Vec<(usize, ConstraintRef)>]) -> Vec<BitSet> {
    (0..n)
        .map(|s| {
            let mut seen = BitSet::new(n);
            let mut queue = vec![s];
            let mut head = 0;
            while head < queue.len() {
                let u = queue[head];
                head += 1;
                for &(v, _) in &adj[u] {
                    if seen.insert(v) {
                        queue.push(v);
                    }
                }
            }
            seen
        })
        .collect()
}

/// Strongly connected components of size ≥ 2 under a reachability
/// closure, each sorted ascending, listed by smallest member. (There are
/// no self-loops, so `reach[a][a]` already implies a non-trivial cycle.)
fn components(n: usize, reach: &[BitSet]) -> Vec<Vec<usize>> {
    let mut assigned = vec![false; n];
    let mut out = Vec::new();
    for a in 0..n {
        if assigned[a] || !reach[a].contains(a) {
            continue;
        }
        let mut comp = vec![a];
        assigned[a] = true;
        for b in (a + 1)..n {
            if !assigned[b] && reach[a].contains(b) && reach[b].contains(a) {
                comp.push(b);
                assigned[b] = true;
            }
        }
        out.push(comp);
    }
    out
}

fn dedup_preserving_order(refs: &mut Vec<ConstraintRef>) {
    let mut seen = BTreeSet::new();
    refs.retain(|r| seen.insert(*r));
}

/// Runs `E001`–`E007` in code order.
pub(super) fn structural(cs: &ConstraintSet, g: &DomGraphs, out: &mut Vec<Diagnostic>) {
    cycles(cs, g, out);
    face_squeeze(cs, g, out);
    child_dominates_siblings(cs, g, out);
    dist2_forced_equal(cs, g, out);
    identical_disjunctions(cs, out);
    nonface_contradicts_face(cs, out);
}

/// Runs `W001`–`W005` then `N001`–`N003` in code order.
pub(super) fn quality(cs: &ConstraintSet, g: &DomGraphs, out: &mut Vec<Diagnostic>) {
    duplicate_faces(cs, out);
    implied_faces(cs, out);
    vacuous_faces(cs, out);
    redundant_dominances(cs, g, out);
    duplicate_others(cs, out);
    unconstrained_symbols(cs, out);
    intersecting_faces(cs, out);
    no_output_constraints(cs, out);
}

/// `E001`/`E002` — dominance cycles. A cycle `a ⇒ … ⇒ a` forces
/// `code(a) ⊇ … ⊇ code(a)`, i.e. every code on the cycle is equal,
/// violating encoding uniqueness (the paper's standing requirement, and
/// exactly what the uniqueness initial dichotomies refute). `E001` uses
/// only explicit dominance edges; `E002` reports the cycles that need a
/// disjunctive-implied edge `parent → child` (from `p = ⋁ cᵢ ⇒ p > cᵢ`).
fn cycles(cs: &ConstraintSet, g: &DomGraphs, out: &mut Vec<Diagnostic>) {
    let explicit_comps = components(g.n, &g.reach_explicit);
    for comp in &explicit_comps {
        let set = BitSet::from_indices(g.n, comp.iter().copied());
        let refs: Vec<ConstraintRef> = g
            .explicit
            .iter()
            .filter(|&&(a, b, _)| set.contains(a) && set.contains(b))
            .map(|&(_, _, r)| r)
            .collect();
        out.push(Diagnostic {
            code: "E001",
            severity: Severity::Error,
            message: format!(
                "dominance constraints form a cycle over {}: every code on the cycle is \
                 forced equal, so two symbols would share a code",
                cs.format_symbols(&set)
            ),
            constraints: refs,
        });
    }
    for comp in components(g.n, &g.reach_all) {
        if explicit_comps.contains(&comp) {
            continue;
        }
        let set = BitSet::from_indices(g.n, comp.iter().copied());
        let refs: BTreeSet<ConstraintRef> = g
            .all
            .iter()
            .filter(|&&(a, b, _)| set.contains(a) && set.contains(b))
            .map(|&(_, _, r)| r)
            .collect();
        out.push(Diagnostic {
            code: "E002",
            severity: Severity::Error,
            message: format!(
                "dominance and disjunctive constraints together form a cycle over {} \
                 (a disjunction dominates each of its children): every code on the \
                 cycle is forced equal",
                cs.format_symbols(&set)
            ),
            constraints: refs.into_iter().collect(),
        });
    }
}

/// `E003` — face/dominance squeeze (Section 5). For a face constraint
/// with members `M` and an outside symbol `s ∉ M ∪ dc` with `a ⇒ s` and
/// `s ⇒ b` for some `a, b ∈ M`: the initial dichotomy `(M; s)` cannot be
/// covered by any valid dichotomy — orienting `s` to the one-side
/// violates `a ≥ s` (`a` is on the zero-side), orienting `M` to the
/// one-side violates `s ≥ b` — so Theorem 6.1 refutes the set.
fn face_squeeze(cs: &ConstraintSet, g: &DomGraphs, out: &mut Vec<Diagnostic>) {
    for (fi, f) in cs.faces().iter().enumerate() {
        let on_face = f.members.union(&f.dont_cares);
        for s in 0..g.n {
            if on_face.contains(s) {
                continue;
            }
            let above = f.members.iter().find(|&a| g.reach_all[a].contains(s));
            let below = f.members.iter().find(|&b| g.reach_all[s].contains(b));
            if let (Some(a), Some(b)) = (above, below) {
                let fref = ConstraintRef::Face(fi);
                let mut refs = vec![fref];
                refs.extend(g.path_refs(a, s));
                refs.extend(g.path_refs(s, b));
                dedup_preserving_order(&mut refs);
                out.push(Diagnostic {
                    code: "E003",
                    severity: Severity::Error,
                    message: format!(
                        "symbol '{}' lies outside face {} but dominance squeezes it onto \
                         the face ('{}' dominates it and it dominates '{}'): no valid \
                         encoding-dichotomy separates it from the face members",
                        cs.name(s),
                        cs.describe(fref),
                        cs.name(a),
                        cs.name(b)
                    ),
                    constraints: refs,
                });
            }
        }
    }
}

/// `E004` — one child of a disjunction dominates every sibling. Then
/// `code(parent) = ⋁ code(cᵢ) = code(c)` for that child `c`, so parent
/// and child share a code, violating uniqueness.
fn child_dominates_siblings(cs: &ConstraintSet, g: &DomGraphs, out: &mut Vec<Diagnostic>) {
    for (di, (parent, children)) in cs.disjunctives().enumerate() {
        for &ci in children {
            // A child in a dominance cycle with its parent is already
            // reported by E001/E002 (and would make every child here
            // trivially dominant); don't restate the cycle.
            if g.forced_equal(ci, parent) {
                continue;
            }
            if children
                .iter()
                .all(|&cj| cj == ci || g.reach_all[ci].contains(cj))
            {
                let dref = ConstraintRef::Disjunctive(di);
                let mut refs = vec![dref];
                for &cj in children {
                    if cj != ci {
                        refs.extend(g.path_refs(ci, cj));
                    }
                }
                dedup_preserving_order(&mut refs);
                out.push(Diagnostic {
                    code: "E004",
                    severity: Severity::Error,
                    message: format!(
                        "child '{}' of '{}' dominates every other child, so \
                         code({}) = code({}): two symbols would share a code",
                        cs.name(ci),
                        cs.describe(dref),
                        cs.name(parent),
                        cs.name(ci)
                    ),
                    constraints: refs,
                });
                break;
            }
        }
    }
}

/// `E005` — a distance-2 pair whose codes are forced equal, either by a
/// dominance cycle or by two disjunctions with identical children (then
/// both parents equal `⋁ code(cᵢ)`). Equal codes have Hamming distance 0.
fn dist2_forced_equal(cs: &ConstraintSet, g: &DomGraphs, out: &mut Vec<Diagnostic>) {
    let normalized = normalized_disjunctions(cs);
    for (k, &(a, b)) in cs.distance2_pairs().iter().enumerate() {
        let dref = ConstraintRef::Distance2(k);
        if g.forced_equal(a, b) {
            let mut refs = vec![dref];
            refs.extend(g.path_refs(a, b));
            refs.extend(g.path_refs(b, a));
            dedup_preserving_order(&mut refs);
            out.push(Diagnostic {
                code: "E005",
                severity: Severity::Error,
                message: format!(
                    "'{}' requires the codes of '{}' and '{}' to differ in at least two \
                     bits, but a dominance cycle forces them equal",
                    cs.describe(dref),
                    cs.name(a),
                    cs.name(b)
                ),
                constraints: refs,
            });
        } else if let Some((i, j)) = identical_disjunction_pair(&normalized, a, b) {
            out.push(Diagnostic {
                code: "E005",
                severity: Severity::Error,
                message: format!(
                    "'{}' requires the codes of '{}' and '{}' to differ in at least two \
                     bits, but '{}' and '{}' have identical children, forcing the codes \
                     equal",
                    cs.describe(dref),
                    cs.name(a),
                    cs.name(b),
                    cs.describe(ConstraintRef::Disjunctive(i)),
                    cs.describe(ConstraintRef::Disjunctive(j))
                ),
                constraints: vec![
                    dref,
                    ConstraintRef::Disjunctive(i),
                    ConstraintRef::Disjunctive(j),
                ],
            });
        }
    }
}

/// `(parent, sorted deduplicated children)` per disjunction.
fn normalized_disjunctions(cs: &ConstraintSet) -> Vec<(usize, Vec<usize>)> {
    cs.disjunctives()
        .map(|(p, children)| {
            let mut c = children.to_vec();
            c.sort_unstable();
            c.dedup();
            (p, c)
        })
        .collect()
}

/// The first disjunction pair with identical children whose parents are
/// exactly `{a, b}`.
fn identical_disjunction_pair(
    normalized: &[(usize, Vec<usize>)],
    a: usize,
    b: usize,
) -> Option<(usize, usize)> {
    for (i, (pi, ci)) in normalized.iter().enumerate() {
        for (j, (pj, cj)) in normalized.iter().enumerate().skip(i + 1) {
            if ci == cj && ((*pi, *pj) == (a, b) || (*pi, *pj) == (b, a)) {
                return Some((i, j));
            }
        }
    }
    None
}

/// `E006` — two disjunctions with distinct parents but identical
/// children: both parents equal `⋁ code(cᵢ)`, sharing a code. (Theorem
/// 6.1 sees this too: neither orientation of the uniqueness dichotomy
/// separating the parents can be raised valid.)
fn identical_disjunctions(cs: &ConstraintSet, out: &mut Vec<Diagnostic>) {
    let normalized = normalized_disjunctions(cs);
    for (i, (pi, ci)) in normalized.iter().enumerate() {
        for (j, (pj, cj)) in normalized.iter().enumerate().skip(i + 1) {
            if ci == cj && pi != pj {
                out.push(Diagnostic {
                    code: "E006",
                    severity: Severity::Error,
                    message: format!(
                        "'{}' and '{}' have identical children, so \
                         code({}) = code({}): two symbols would share a code",
                        cs.describe(ConstraintRef::Disjunctive(i)),
                        cs.describe(ConstraintRef::Disjunctive(j)),
                        cs.name(*pi),
                        cs.name(*pj)
                    ),
                    constraints: vec![ConstraintRef::Disjunctive(i), ConstraintRef::Disjunctive(j)],
                });
            }
        }
    }
}

/// `E007` — a non-face constraint over exactly the members of a face
/// constraint with no don't cares: the face must simultaneously contain
/// an extra symbol (non-face, Section 8.3) and none (face).
fn nonface_contradicts_face(cs: &ConstraintSet, out: &mut Vec<Diagnostic>) {
    for (ni, nf) in cs.nonfaces().iter().enumerate() {
        for (fi, f) in cs.faces().iter().enumerate() {
            if *nf == f.members && f.dont_cares.is_empty() {
                let nref = ConstraintRef::NonFace(ni);
                let fref = ConstraintRef::Face(fi);
                out.push(Diagnostic {
                    code: "E007",
                    severity: Severity::Error,
                    message: format!(
                        "non-face constraint '{}' contradicts face constraint '{}': the \
                         face spanned by {} must both contain some other symbol and \
                         contain no other symbol",
                        cs.describe(nref),
                        cs.describe(fref),
                        cs.format_symbols(nf)
                    ),
                    constraints: vec![nref, fref],
                });
            }
        }
    }
}

/// `W001` — a face constraint repeating an earlier one exactly.
fn duplicate_faces(cs: &ConstraintSet, out: &mut Vec<Diagnostic>) {
    let faces = cs.faces();
    for (j, fj) in faces.iter().enumerate() {
        if let Some(i) = faces[..j].iter().position(|fi| fi == fj) {
            out.push(Diagnostic {
                code: "W001",
                severity: Severity::Warning,
                message: format!(
                    "face constraint '{}' duplicates an earlier face constraint",
                    cs.describe(ConstraintRef::Face(j))
                ),
                constraints: vec![ConstraintRef::Face(j), ConstraintRef::Face(i)],
            });
        }
    }
}

/// `W002` — a face constraint implied by another: `F = (M_F, D_F)` is
/// implied by `G = (M_G, D_G)` when `M_F ⊆ M_G`, `M_G ∖ M_F ⊆ D_F` and
/// `D_G ⊆ M_F ∪ D_F` — then `face(M_F) ⊆ face(M_G)`, so every symbol `G`
/// lets onto the smaller face is one `F` permits anyway.
fn implied_faces(cs: &ConstraintSet, out: &mut Vec<Diagnostic>) {
    let faces = cs.faces();
    for (i, f) in faces.iter().enumerate() {
        let permitted = f.members.union(&f.dont_cares);
        let witness = faces.iter().enumerate().find(|&(j, g)| {
            j != i
                && g != f
                && f.members.is_subset(&g.members)
                && g.members.difference(&f.members).is_subset(&f.dont_cares)
                && g.dont_cares.is_subset(&permitted)
        });
        if let Some((j, _)) = witness {
            out.push(Diagnostic {
                code: "W002",
                severity: Severity::Warning,
                message: format!(
                    "face constraint '{}' is implied by '{}' and can be dropped",
                    cs.describe(ConstraintRef::Face(i)),
                    cs.describe(ConstraintRef::Face(j))
                ),
                constraints: vec![ConstraintRef::Face(i), ConstraintRef::Face(j)],
            });
        }
    }
}

/// `W003` — a face whose members and don't cares cover every symbol
/// constrains nothing (any outsider-free face works; it generates no
/// initial dichotomy).
fn vacuous_faces(cs: &ConstraintSet, out: &mut Vec<Diagnostic>) {
    for (i, f) in cs.faces().iter().enumerate() {
        if f.members.union(&f.dont_cares).count() == cs.num_symbols() {
            out.push(Diagnostic {
                code: "W003",
                severity: Severity::Warning,
                message: format!(
                    "face constraint '{}' spans every symbol and constrains nothing",
                    cs.describe(ConstraintRef::Face(i))
                ),
                constraints: vec![ConstraintRef::Face(i)],
            });
        }
    }
}

/// `W004` — a dominance constraint that is a duplicate, implied by a
/// disjunction (`p = ⋁ cᵢ ⇒ p > cᵢ`), or implied transitively by the
/// remaining dominance edges.
fn redundant_dominances(cs: &ConstraintSet, g: &DomGraphs, out: &mut Vec<Diagnostic>) {
    let doms = cs.dominances();
    for (k, &(a, b)) in doms.iter().enumerate() {
        let kref = ConstraintRef::Dominance(k);
        if let Some(k2) = doms[..k].iter().position(|&d| d == (a, b)) {
            out.push(Diagnostic {
                code: "W004",
                severity: Severity::Warning,
                message: format!(
                    "dominance constraint '{}' duplicates an earlier dominance constraint",
                    cs.describe(kref)
                ),
                constraints: vec![kref, ConstraintRef::Dominance(k2)],
            });
            continue;
        }
        if let Some(di) = cs
            .disjunctives()
            .position(|(p, children)| p == a && children.contains(&b))
        {
            out.push(Diagnostic {
                code: "W004",
                severity: Severity::Warning,
                message: format!(
                    "dominance constraint '{}' is implied by disjunctive constraint '{}'",
                    cs.describe(kref),
                    cs.describe(ConstraintRef::Disjunctive(di))
                ),
                constraints: vec![kref, ConstraintRef::Disjunctive(di)],
            });
            continue;
        }
        if let Some(path) = g.path_refs_excluding(a, b, Some(kref)) {
            let mut refs = vec![kref];
            refs.extend(path);
            dedup_preserving_order(&mut refs);
            out.push(Diagnostic {
                code: "W004",
                severity: Severity::Warning,
                message: format!(
                    "dominance constraint '{}' is implied transitively by the other \
                     dominance constraints",
                    cs.describe(kref)
                ),
                constraints: refs,
            });
        }
    }
}

/// `W005` — exact duplicates among disjunctive, extended, distance-2 and
/// non-face constraints (order-insensitive where the constraint is).
fn duplicate_others(cs: &ConstraintSet, out: &mut Vec<Diagnostic>) {
    let dup = |refs: Vec<(ConstraintRef, ConstraintRef)>, out: &mut Vec<Diagnostic>| {
        for (later, earlier) in refs {
            out.push(Diagnostic {
                code: "W005",
                severity: Severity::Warning,
                message: format!(
                    "{} constraint '{}' duplicates an earlier {} constraint",
                    later.kind(),
                    cs.describe(later),
                    earlier.kind()
                ),
                constraints: vec![later, earlier],
            });
        }
    };
    let normalized = normalized_disjunctions(cs);
    let mut pairs = Vec::new();
    for (j, dj) in normalized.iter().enumerate() {
        if let Some(i) = normalized[..j].iter().position(|di| di == dj) {
            pairs.push((ConstraintRef::Disjunctive(j), ConstraintRef::Disjunctive(i)));
        }
    }
    dup(pairs, out);
    let exts: Vec<(usize, Vec<Vec<usize>>)> = cs
        .extended_disjunctives()
        .map(|(p, conj)| {
            let mut c: Vec<Vec<usize>> = conj
                .iter()
                .map(|term| {
                    let mut t = term.clone();
                    t.sort_unstable();
                    t.dedup();
                    t
                })
                .collect();
            c.sort();
            c.dedup();
            (p, c)
        })
        .collect();
    let mut pairs = Vec::new();
    for (j, ej) in exts.iter().enumerate() {
        if let Some(i) = exts[..j].iter().position(|ei| ei == ej) {
            pairs.push((ConstraintRef::Extended(j), ConstraintRef::Extended(i)));
        }
    }
    dup(pairs, out);
    let d2: Vec<(usize, usize)> = cs
        .distance2_pairs()
        .iter()
        .map(|&(a, b)| (a.min(b), a.max(b)))
        .collect();
    let mut pairs = Vec::new();
    for (j, dj) in d2.iter().enumerate() {
        if let Some(i) = d2[..j].iter().position(|di| di == dj) {
            pairs.push((ConstraintRef::Distance2(j), ConstraintRef::Distance2(i)));
        }
    }
    dup(pairs, out);
    let nfs = cs.nonfaces();
    let mut pairs = Vec::new();
    for (j, nj) in nfs.iter().enumerate() {
        if let Some(i) = nfs[..j].iter().position(|ni| ni == nj) {
            pairs.push((ConstraintRef::NonFace(j), ConstraintRef::NonFace(i)));
        }
    }
    dup(pairs, out);
}

/// `N001` — a symbol no constraint mentions: it only receives a distinct
/// code (often a typo in hand-written files).
fn unconstrained_symbols(cs: &ConstraintSet, out: &mut Vec<Diagnostic>) {
    let n = cs.num_symbols();
    let mut referenced = BitSet::new(n);
    for f in cs.faces() {
        referenced.union_with(&f.members);
        referenced.union_with(&f.dont_cares);
    }
    for &(a, b) in cs.dominances().iter().chain(cs.distance2_pairs()) {
        referenced.insert(a);
        referenced.insert(b);
    }
    for (p, children) in cs.disjunctives() {
        referenced.insert(p);
        for &c in children {
            referenced.insert(c);
        }
    }
    for (p, conjunctions) in cs.extended_disjunctives() {
        referenced.insert(p);
        for term in conjunctions {
            for &s in term {
                referenced.insert(s);
            }
        }
    }
    for nf in cs.nonfaces() {
        referenced.union_with(nf);
    }
    for s in 0..n {
        if !referenced.contains(s) {
            out.push(Diagnostic {
                code: "N001",
                severity: Severity::Note,
                message: format!(
                    "symbol '{}' appears in no constraint; it only receives a distinct code",
                    cs.name(s)
                ),
                constraints: vec![],
            });
        }
    }
}

/// `N002` — two distinct faces sharing two or more members: Section 5
/// requires their intersection to span a face itself, which couples the
/// constraints during encoding.
fn intersecting_faces(cs: &ConstraintSet, out: &mut Vec<Diagnostic>) {
    let faces = cs.faces();
    for (i, fi) in faces.iter().enumerate() {
        for (j, fj) in faces.iter().enumerate().skip(i + 1) {
            if fi == fj {
                continue; // W001 reports exact duplicates
            }
            let shared = fi.members.intersection(&fj.members);
            if shared.count() >= 2 {
                out.push(Diagnostic {
                    code: "N002",
                    severity: Severity::Note,
                    message: format!(
                        "faces '{}' and '{}' share {}: their intersection must itself \
                         span a face (Section 5)",
                        cs.describe(ConstraintRef::Face(i)),
                        cs.describe(ConstraintRef::Face(j)),
                        cs.format_symbols(&shared)
                    ),
                    constraints: vec![ConstraintRef::Face(i), ConstraintRef::Face(j)],
                });
            }
        }
    }
}

/// `N003` — no output constraints: every dichotomy's orientation is then
/// symmetric and the solver halves the search space (footnote 4).
fn no_output_constraints(cs: &ConstraintSet, out: &mut Vec<Diagnostic>) {
    if !cs.is_empty() && !cs.has_output_constraints() {
        out.push(Diagnostic {
            code: "N003",
            severity: Severity::Note,
            message: "no output constraints: encoding-dichotomy orientations are \
                      symmetric and the solver breaks the symmetry (footnote 4)"
                .to_string(),
            constraints: vec![],
        });
    }
}
