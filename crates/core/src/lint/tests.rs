//! Unit tests for the lint subsystem: one positive case per diagnostic
//! code, clean-set silence, conflict-core minimality against the oracle,
//! and rendering determinism. The CLI golden tests cover exact output.

use super::{lint, LintOptions, Severity};
use crate::budget::Budget;
use crate::constraints::ConstraintSet;
use crate::feasible::check_feasible;
use ioenc_cover::CancelToken;

fn parse(symbols: &[&str], text: &str) -> ConstraintSet {
    match ConstraintSet::parse(symbols, text) {
        Ok(cs) => cs,
        Err(e) => panic!("fixture parses: {e}"),
    }
}

fn codes(report: &super::LintReport) -> Vec<&'static str> {
    report.diagnostics.iter().map(|d| d.code).collect()
}

/// The section-1 running example is clean: no diagnostics at all besides
/// the W004s its redundant dominances genuinely carry.
#[test]
fn clean_set_reports_nothing() {
    let cs = parse(&["a", "b", "c"], "(a,b)\nb>c");
    let report = lint(&cs, &LintOptions::new());
    assert!(report.is_clean());
    assert!(report.diagnostics.is_empty(), "{:?}", report.diagnostics);
    assert!(report.core.is_none());
}

#[test]
fn e001_explicit_dominance_cycle() {
    let cs = parse(&["a", "b", "c", "d"], "a>b\nb>a\n(c,d)");
    let report = lint(&cs, &LintOptions::new());
    assert_eq!(codes(&report), ["E001"]);
    assert_eq!(report.diagnostics[0].constraints.len(), 2);
    assert!(!report.feasible);
    // Structural error found: no conflict core is computed.
    assert!(report.core.is_none());
}

#[test]
fn e002_cycle_through_disjunctive_edge() {
    // b > a and a = b|c: a > b implied, closing the cycle {a, b}.
    let cs = parse(&["a", "b", "c"], "b>a\na=b|c");
    let report = lint(&cs, &LintOptions::new());
    assert_eq!(codes(&report), ["E002"]);
    assert!(!report.feasible);
}

#[test]
fn e003_face_dominance_squeeze() {
    // c outside face (a,b); a > c > b squeezes it on.
    let cs = parse(&["a", "b", "c"], "(a,b)\na>c\nc>b");
    let report = lint(&cs, &LintOptions::new());
    assert_eq!(codes(&report), ["E003"]);
    let d = &report.diagnostics[0];
    assert!(d.message.contains("'c'"), "{}", d.message);
    // Face plus the two dominance-path edges.
    assert_eq!(d.constraints.len(), 3);
    assert!(!report.feasible, "squeeze must agree with the oracle");
}

#[test]
fn e003_respects_dont_cares() {
    // Same squeeze but c is an encoding don't care of the face: fine.
    let cs = parse(&["a", "b", "c"], "(a,b,[c])\na>c\nc>b");
    let report = lint(&cs, &LintOptions::new());
    assert!(report.is_clean(), "{:?}", report.diagnostics);
}

#[test]
fn e004_child_dominates_siblings() {
    let cs = parse(&["a", "b", "c"], "a=b|c\nb>c");
    let report = lint(&cs, &LintOptions::new());
    assert_eq!(codes(&report), ["E004"]);
    assert!(!report.feasible, "E004 must agree with the oracle");
}

#[test]
fn e005_dist2_on_cycle_forced_equal_pair() {
    let cs = parse(&["a", "b"], "a>b\nb>a\ndist2(a,b)");
    let report = lint(&cs, &LintOptions::new());
    assert_eq!(codes(&report), ["E001", "E005"]);
}

#[test]
fn e005_dist2_on_identical_disjunction_parents() {
    let cs = parse(&["a", "b", "c", "d"], "a=c|d\nb=c|d\ndist2(a,b)");
    let report = lint(&cs, &LintOptions::new());
    // The identical disjunctions are E006 on their own; dist2 adds E005.
    assert_eq!(codes(&report), ["E005", "E006"]);
}

#[test]
fn e006_identical_disjunctions_distinct_parents() {
    let cs = parse(&["a", "b", "c", "d"], "a=c|d\nb=d|c");
    let report = lint(&cs, &LintOptions::new());
    assert_eq!(codes(&report), ["E006"]);
    assert!(!report.feasible, "E006 must agree with the oracle");
}

#[test]
fn e007_nonface_contradicts_face() {
    let cs = parse(&["a", "b", "c"], "(a,b)\n!(a,b)\nb>c");
    let report = lint(&cs, &LintOptions::new());
    assert_eq!(codes(&report), ["E007"]);
    // The oracle does not model non-face constraints; the lint does.
    assert!(report.feasible);
    assert!(report.has_errors());
    assert!(!report.is_clean());
}

/// Figure 4 of the paper with its redundant dominances removed: clean
/// under every structural check, yet infeasible — the E008 path.
const FIG4_REDUCED: &str = "\
(s1,s5)\n(s2,s5)\n(s4,s5)\ns0>s5\ns1>s3\ns2>s3\ns4>s5\ns5>s2\ns0=s1|s2";

fn fig4_reduced() -> ConstraintSet {
    parse(&["s0", "s1", "s2", "s3", "s4", "s5"], FIG4_REDUCED)
}

#[test]
fn e008_minimal_conflict_core_is_oracle_verified() {
    let cs = fig4_reduced();
    assert!(
        !check_feasible(&cs).is_feasible(),
        "fixture must be infeasible"
    );
    let report = lint(&cs, &LintOptions::new());
    assert_eq!(codes(&report), ["E008"]);
    let core = match &report.core {
        Some(c) => c,
        None => panic!("conflict core expected"),
    };
    assert!(core.verified_minimal);
    assert!(!core.constraints.is_empty());
    assert!(
        core.constraints.len() < cs.len(),
        "core must shrink the set"
    );
    // Re-verify against the oracle from scratch: the core is infeasible
    // and every core-minus-one subset is feasible.
    assert!(!check_feasible(&cs.subset(&core.constraints)).is_feasible());
    for drop in &core.constraints {
        let minus_one: Vec<_> = core
            .constraints
            .iter()
            .copied()
            .filter(|r| r != drop)
            .collect();
        assert!(
            check_feasible(&cs.subset(&minus_one)).is_feasible(),
            "core minus {drop:?} must be feasible"
        );
    }
}

#[test]
fn e008_core_is_deterministic() {
    let a = lint(&fig4_reduced(), &LintOptions::new());
    let b = lint(&fig4_reduced(), &LintOptions::new());
    assert_eq!(a, b);
}

#[test]
fn e008_respects_cancel_token() {
    let token = CancelToken::new();
    token.cancel();
    let opts = LintOptions::new().with_budget(Budget::unlimited().with_cancel(token));
    let report = lint(&fig4_reduced(), &opts);
    let core = match &report.core {
        Some(c) => c,
        None => panic!("conflict core expected"),
    };
    // Cancelled before any shrinking: sound (full candidate set) but
    // unverified.
    assert!(!core.verified_minimal);
    assert_eq!(core.oracle_calls, 0);
    assert!(!check_feasible(&fig4_reduced().subset(&core.constraints)).is_feasible());
}

#[test]
fn e008_max_evals_caps_oracle_calls_deterministically() {
    let opts = LintOptions::new().with_budget(Budget::unlimited().with_max_evals(3));
    let report = lint(&fig4_reduced(), &opts);
    let core = match &report.core {
        Some(c) => c,
        None => panic!("conflict core expected"),
    };
    assert_eq!(core.oracle_calls, 3);
    assert!(!core.verified_minimal);
    let again = lint(&fig4_reduced(), &opts);
    assert_eq!(report, again);
}

#[test]
fn w001_duplicate_face() {
    let cs = parse(&["a", "b", "c"], "(a,b)\n(b,a)\nb>c");
    let report = lint(&cs, &LintOptions::new());
    assert_eq!(codes(&report), ["W001"]);
    assert!(report.is_clean(), "warnings leave the set usable");
}

#[test]
fn w002_implied_face() {
    // (a,b,[c]) is implied by (a,b,c): the bigger face already confines
    // every symbol the smaller one would police.
    let cs = parse(&["a", "b", "c", "d"], "(a,b,[c])\n(a,b,c)\nc>d");
    let report = lint(&cs, &LintOptions::new());
    assert_eq!(codes(&report), ["W002", "N002"]);
}

#[test]
fn w003_face_spanning_all_symbols() {
    let cs = parse(&["a", "b", "c"], "(a,b,c)\nb>c");
    let report = lint(&cs, &LintOptions::new());
    assert_eq!(codes(&report), ["W003"]);
}

#[test]
fn w004_redundant_dominance_variants() {
    // Duplicate, disjunctive-implied, and transitively implied.
    let cs = parse(&["a", "b", "c", "d"], "a>b\na>b\na=b|c\na>d\nb>d");
    let report = lint(&cs, &LintOptions::new());
    let w004: Vec<_> = report
        .diagnostics
        .iter()
        .filter(|d| d.code == "W004")
        .collect();
    assert_eq!(w004.len(), 3, "{:?}", codes(&report));
    assert!(
        w004[0].message.contains("disjunctive"),
        "{}",
        w004[0].message
    );
    assert!(
        w004[1].message.contains("duplicates"),
        "{}",
        w004[1].message
    );
    assert!(
        w004[2].message.contains("transitively"),
        "{}",
        w004[2].message
    );
}

#[test]
fn w005_duplicate_dist2() {
    let cs = parse(&["a", "b", "c"], "dist2(a,b)\ndist2(b,a)\nb>c\na>c");
    let report = lint(&cs, &LintOptions::new());
    assert_eq!(codes(&report), ["W005"]);
}

#[test]
fn n001_unconstrained_symbol() {
    let cs = parse(&["a", "b", "c"], "a>b");
    let report = lint(&cs, &LintOptions::new());
    assert_eq!(codes(&report), ["N001"]);
    assert!(report.diagnostics[0].message.contains("'c'"));
}

#[test]
fn n002_intersecting_faces() {
    let cs = parse(&["a", "b", "c", "d"], "(a,b,c)\n(b,c,d)\nc>d");
    let report = lint(&cs, &LintOptions::new());
    assert_eq!(codes(&report), ["N002"]);
}

#[test]
fn n003_no_output_constraints() {
    let cs = parse(&["a", "b", "c"], "(a,b)\n(b,c)");
    let report = lint(&cs, &LintOptions::new());
    assert_eq!(codes(&report), ["N003"]);
}

#[test]
fn severity_ordering_is_errors_warnings_notes() {
    // A cycle (error), a duplicate face (warning) and an unused symbol
    // (note) in one set.
    let cs = parse(&["a", "b", "c", "d", "e"], "a>b\nb>a\n(c,d)\n(d,c)");
    let report = lint(&cs, &LintOptions::new());
    assert_eq!(codes(&report), ["E001", "W001", "N001"]);
    let severities: Vec<Severity> = report.diagnostics.iter().map(|d| d.severity).collect();
    let mut sorted = severities.clone();
    sorted.sort();
    assert_eq!(severities, sorted);
}

#[test]
fn render_text_lists_spans_and_summary() {
    let cs = parse(&["a", "b"], "a>b\nb>a");
    let report = lint(&cs, &LintOptions::new());
    let text = report.render(&cs, Some("cycle.txt"));
    assert!(text.contains("error[E001]"), "{text}");
    assert!(text.contains("--> cycle.txt:1:1: a>b"), "{text}");
    assert!(text.contains("--> cycle.txt:2:1: b>a"), "{text}");
    assert!(text.contains("1 error, 0 warnings, 0 notes"), "{text}");
    assert!(text.contains("INFEASIBLE"), "{text}");
}

#[test]
fn render_json_is_wellformed_enough_and_stable() {
    let cs = parse(&["a", "b"], "a>b\nb>a");
    let report = lint(&cs, &LintOptions::new());
    let json = report.render_json(&cs, Some("cycle.txt"));
    assert!(json.contains("\"code\": \"E001\""), "{json}");
    assert!(
        json.contains("\"span\": {\"line\": 1, \"col\": 1, \"len\": 3}"),
        "{json}"
    );
    assert!(json.contains("\"feasible\": false"), "{json}");
    assert_eq!(json, report.render_json(&cs, Some("cycle.txt")));
    // Balanced braces/brackets as a cheap well-formedness proxy.
    for (open, close) in [('{', '}'), ('[', ']')] {
        let opens = json.matches(open).count();
        let closes = json.matches(close).count();
        assert_eq!(opens, closes, "unbalanced {open}{close} in {json}");
    }
}

#[test]
fn builder_sets_without_spans_render_without_locations() {
    let mut cs = ConstraintSet::new(2);
    cs.add_dominance(0, 1);
    cs.add_dominance(1, 0);
    let report = lint(&cs, &LintOptions::new());
    let text = report.render(&cs, None);
    assert!(text.contains("--> <input>: s0>s1"), "{text}");
}
