//! Deterministic text and JSON rendering of a [`LintReport`].
//!
//! Both renderers are pure functions of the report and the constraint
//! set — no timing, thread-count or map-iteration dependence — so the CLI
//! can promise byte-identical output across `--threads` settings.

use super::LintReport;
use crate::constraints::{ConstraintRef, ConstraintSet};
use std::fmt::Write as _;

/// One `  --> origin:line:col: constraint` evidence line (span-less
/// constraints, e.g. builder-made ones, omit the location).
fn evidence_line(cs: &ConstraintSet, origin: &str, r: ConstraintRef) -> String {
    match cs.span_of(r) {
        Some(span) => format!("  --> {origin}:{span}: {}", cs.describe(r)),
        None => format!("  --> {origin}: {}", cs.describe(r)),
    }
}

fn plural(count: usize, noun: &str) -> String {
    format!("{count} {noun}{}", if count == 1 { "" } else { "s" })
}

pub(super) fn render_text(report: &LintReport, cs: &ConstraintSet, origin: &str) -> String {
    let mut out = String::new();
    for d in &report.diagnostics {
        let _ = writeln!(out, "{}[{}]: {}", d.severity.label(), d.code, d.message);
        for &r in &d.constraints {
            let _ = writeln!(out, "{}", evidence_line(cs, origin, r));
        }
    }
    let verdict = if report.has_errors() || !report.feasible {
        "INFEASIBLE"
    } else {
        "OK"
    };
    let _ = writeln!(
        out,
        "lint: {}, {}, {} — {verdict}",
        plural(report.errors(), "error"),
        plural(report.warnings(), "warning"),
        plural(report.notes(), "note"),
    );
    out
}

/// Escapes a string for a JSON literal (the only non-trivial characters
/// our messages produce are quotes and backslashes, but control
/// characters are handled for safety).
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// A constraint reference as a JSON object (one line; nested inside
/// diagnostics and the conflict core).
fn constraint_json(cs: &ConstraintSet, r: ConstraintRef, indent: &str) -> String {
    let mut obj = format!(
        "{indent}{{\"kind\": \"{}\", \"index\": {}, \"text\": \"{}\"",
        r.kind(),
        r.index(),
        json_escape(&cs.describe(r))
    );
    if let Some(span) = cs.span_of(r) {
        let _ = write!(
            obj,
            ", \"span\": {{\"line\": {}, \"col\": {}, \"len\": {}}}",
            span.line, span.col, span.len
        );
    }
    obj.push('}');
    obj
}

fn constraint_list(cs: &ConstraintSet, refs: &[ConstraintRef], indent: &str) -> String {
    if refs.is_empty() {
        return "[]".to_string();
    }
    let inner: Vec<String> = refs
        .iter()
        .map(|&r| constraint_json(cs, r, &format!("{indent}  ")))
        .collect();
    format!("[\n{}\n{indent}]", inner.join(",\n"))
}

pub(super) fn render_json(report: &LintReport, cs: &ConstraintSet, origin: &str) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"origin\": \"{}\",", json_escape(origin));
    let _ = writeln!(out, "  \"feasible\": {},", report.feasible);
    let _ = writeln!(
        out,
        "  \"summary\": {{\"errors\": {}, \"warnings\": {}, \"notes\": {}}},",
        report.errors(),
        report.warnings(),
        report.notes()
    );
    if report.diagnostics.is_empty() {
        out.push_str("  \"diagnostics\": [],\n");
    } else {
        out.push_str("  \"diagnostics\": [\n");
        let rendered: Vec<String> = report
            .diagnostics
            .iter()
            .map(|d| {
                let mut obj = String::new();
                obj.push_str("    {\n");
                let _ = writeln!(obj, "      \"code\": \"{}\",", d.code);
                let _ = writeln!(obj, "      \"severity\": \"{}\",", d.severity.label());
                let _ = writeln!(obj, "      \"message\": \"{}\",", json_escape(&d.message));
                let _ = writeln!(
                    obj,
                    "      \"constraints\": {}",
                    constraint_list(cs, &d.constraints, "      ")
                );
                obj.push_str("    }");
                obj
            })
            .collect();
        out.push_str(&rendered.join(",\n"));
        out.push_str("\n  ],\n");
    }
    match &report.core {
        Some(core) => {
            out.push_str("  \"conflict_core\": {\n");
            let _ = writeln!(out, "    \"verified_minimal\": {},", core.verified_minimal);
            let _ = writeln!(out, "    \"oracle_calls\": {},", core.oracle_calls);
            let _ = writeln!(
                out,
                "    \"constraints\": {}",
                constraint_list(cs, &core.constraints, "    ")
            );
            out.push_str("  }\n");
        }
        None => out.push_str("  \"conflict_core\": null\n"),
    }
    out.push_str("}\n");
    out
}
