//! Deterministic text and JSON rendering of a [`LintReport`].
//!
//! Both renderers are pure functions of the report and the constraint
//! set — no timing, thread-count or map-iteration dependence — so the CLI
//! can promise byte-identical output across `--threads` settings.

use super::LintReport;
use crate::constraints::{ConstraintRef, ConstraintSet};
use crate::json::{escape as json_escape, Json};
use std::fmt::Write as _;

/// One `  --> origin:line:col: constraint` evidence line (span-less
/// constraints, e.g. builder-made ones, omit the location).
fn evidence_line(cs: &ConstraintSet, origin: &str, r: ConstraintRef) -> String {
    match cs.span_of(r) {
        Some(span) => format!("  --> {origin}:{span}: {}", cs.describe(r)),
        None => format!("  --> {origin}: {}", cs.describe(r)),
    }
}

fn plural(count: usize, noun: &str) -> String {
    format!("{count} {noun}{}", if count == 1 { "" } else { "s" })
}

pub(super) fn render_text(report: &LintReport, cs: &ConstraintSet, origin: &str) -> String {
    let mut out = String::new();
    for d in &report.diagnostics {
        let _ = writeln!(out, "{}[{}]: {}", d.severity.label(), d.code, d.message);
        for &r in &d.constraints {
            let _ = writeln!(out, "{}", evidence_line(cs, origin, r));
        }
    }
    let verdict = if report.has_errors() || !report.feasible {
        "INFEASIBLE"
    } else {
        "OK"
    };
    let _ = writeln!(
        out,
        "lint: {}, {}, {} — {verdict}",
        plural(report.errors(), "error"),
        plural(report.warnings(), "warning"),
        plural(report.notes(), "note"),
    );
    out
}

/// A constraint reference as a JSON object (one line; nested inside
/// diagnostics and the conflict core).
fn constraint_json(cs: &ConstraintSet, r: ConstraintRef, indent: &str) -> String {
    let mut obj = format!(
        "{indent}{{\"kind\": \"{}\", \"index\": {}, \"text\": \"{}\"",
        r.kind(),
        r.index(),
        json_escape(&cs.describe(r))
    );
    if let Some(span) = cs.span_of(r) {
        let _ = write!(
            obj,
            ", \"span\": {{\"line\": {}, \"col\": {}, \"len\": {}}}",
            span.line, span.col, span.len
        );
    }
    obj.push('}');
    obj
}

fn constraint_list(cs: &ConstraintSet, refs: &[ConstraintRef], indent: &str) -> String {
    if refs.is_empty() {
        return "[]".to_string();
    }
    let inner: Vec<String> = refs
        .iter()
        .map(|&r| constraint_json(cs, r, &format!("{indent}  ")))
        .collect();
    format!("[\n{}\n{indent}]", inner.join(",\n"))
}

/// A constraint reference as a compact [`Json`] value (same field names
/// as [`constraint_json`], used by [`report_json`]).
fn constraint_value(cs: &ConstraintSet, r: ConstraintRef) -> Json {
    let mut obj = Json::obj()
        .field("kind", r.kind())
        .field("index", r.index())
        .field("text", cs.describe(r));
    if let Some(span) = cs.span_of(r) {
        obj = obj.field(
            "span",
            Json::obj()
                .field("line", u64::from(span.line))
                .field("col", u64::from(span.col))
                .field("len", u64::from(span.len)),
        );
    }
    obj
}

/// The report as a compact [`Json`] value with the same field names and
/// order as [`render_json`]. `origin` is omitted when `None` so embedding
/// contexts (`encode --json` failures, `serve` responses) stay
/// origin-independent and byte-comparable.
pub(super) fn report_json(report: &LintReport, cs: &ConstraintSet, origin: Option<&str>) -> Json {
    let mut obj = Json::obj();
    if let Some(origin) = origin {
        obj = obj.field("origin", origin);
    }
    obj = obj
        .field("feasible", report.feasible)
        .field(
            "summary",
            Json::obj()
                .field("errors", report.errors())
                .field("warnings", report.warnings())
                .field("notes", report.notes()),
        )
        .field(
            "diagnostics",
            report
                .diagnostics
                .iter()
                .map(|d| {
                    Json::obj()
                        .field("code", d.code)
                        .field("severity", d.severity.label())
                        .field("message", d.message.as_str())
                        .field(
                            "constraints",
                            d.constraints
                                .iter()
                                .map(|&r| constraint_value(cs, r))
                                .collect::<Vec<_>>(),
                        )
                })
                .collect::<Vec<_>>(),
        );
    match &report.core {
        Some(core) => obj.field(
            "conflict_core",
            Json::obj()
                .field("verified_minimal", core.verified_minimal)
                .field("oracle_calls", core.oracle_calls)
                .field(
                    "constraints",
                    core.constraints
                        .iter()
                        .map(|&r| constraint_value(cs, r))
                        .collect::<Vec<_>>(),
                ),
        ),
        None => obj.field("conflict_core", Json::Null),
    }
}

pub(super) fn render_json(report: &LintReport, cs: &ConstraintSet, origin: &str) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"origin\": \"{}\",", json_escape(origin));
    let _ = writeln!(out, "  \"feasible\": {},", report.feasible);
    let _ = writeln!(
        out,
        "  \"summary\": {{\"errors\": {}, \"warnings\": {}, \"notes\": {}}},",
        report.errors(),
        report.warnings(),
        report.notes()
    );
    if report.diagnostics.is_empty() {
        out.push_str("  \"diagnostics\": [],\n");
    } else {
        out.push_str("  \"diagnostics\": [\n");
        let rendered: Vec<String> = report
            .diagnostics
            .iter()
            .map(|d| {
                let mut obj = String::new();
                obj.push_str("    {\n");
                let _ = writeln!(obj, "      \"code\": \"{}\",", d.code);
                let _ = writeln!(obj, "      \"severity\": \"{}\",", d.severity.label());
                let _ = writeln!(obj, "      \"message\": \"{}\",", json_escape(&d.message));
                let _ = writeln!(
                    obj,
                    "      \"constraints\": {}",
                    constraint_list(cs, &d.constraints, "      ")
                );
                obj.push_str("    }");
                obj
            })
            .collect();
        out.push_str(&rendered.join(",\n"));
        out.push_str("\n  ],\n");
    }
    match &report.core {
        Some(core) => {
            out.push_str("  \"conflict_core\": {\n");
            let _ = writeln!(out, "    \"verified_minimal\": {},", core.verified_minimal);
            let _ = writeln!(out, "    \"oracle_calls\": {},", core.oracle_calls);
            let _ = writeln!(
                out,
                "    \"constraints\": {}",
                constraint_list(cs, &core.constraints, "    ")
            );
            out.push_str("  }\n");
        }
        None => out.push_str("  \"conflict_core\": null\n"),
    }
    out.push_str("}\n");
    out
}
