//! Deterministic minimal-conflict-core extraction (diagnostic `E008`).
//!
//! When every structural check passes but [`check_feasible`] still refutes
//! the set, the infeasibility is a *global* interaction of constraints.
//! This module shrinks the set to a minimal infeasible subset by
//! deletion: walk the constraints in canonical order and drop each one
//! whose removal keeps the subset infeasible. Infeasibility is monotone
//! (a superset of an infeasible set is infeasible), so a full deletion
//! pass yields a minimal core — which we nevertheless *verify* by
//! re-checking feasibility of every core-minus-one subset, per the
//! acceptance contract.
//!
//! Distance-2 and non-face constraints are outside the Theorem-6.1 oracle
//! (they are handled downstream by binate covering), so they are never
//! part of an oracle core and are excluded from the candidate list.
//!
//! The search honours the [`Budget`]: the deadline/cancel token is
//! checked between oracle calls, and `max_evals` caps the number of
//! oracle calls deterministically. An interrupted search returns the
//! still-infeasible partial core with `verified_minimal: false`.
//!
//! The deletion walk probes the constraint-subset lattice through the
//! memoizing [`SubsetOracle`](crate::lattice) — the same
//! infeasibility-is-monotone structure the incremental
//! [`Session`](crate::Session) reasons over. Memoization changes no
//! observable output: every probe still counts one oracle call (so budgets
//! and the reported `oracle_calls` are unchanged), it only skips repeating
//! [`check_feasible`] work when the verification pass re-probes a subset
//! the shrink pass already settled.

use super::{ConflictCore, Diagnostic, Severity};
use crate::budget::Budget;
use crate::constraints::{ConstraintRef, ConstraintSet};
use crate::feasible::Feasibility;
use crate::lattice::SubsetOracle;

/// Shrinks the (oracle-infeasible) `cs` to a minimal conflict core and
/// renders it as the `E008` diagnostic. `feas` is the already-computed
/// oracle verdict for the full set, reused for the uncovered-dichotomy
/// count in the message.
pub(super) fn minimal_core(
    cs: &ConstraintSet,
    feas: &Feasibility,
    budget: &Budget,
) -> (ConflictCore, Diagnostic) {
    let scope = budget.scope();
    let max_calls = budget.max_evals;
    let mut oracle = SubsetOracle::new(cs);
    let mut interrupted = false;
    let over_budget = |calls: u64| max_calls.is_some_and(|m| calls >= m);

    // The oracle ignores distance-2 and non-face constraints entirely.
    let candidates: Vec<ConstraintRef> = cs
        .constraint_refs()
        .into_iter()
        .filter(|r| !matches!(r, ConstraintRef::Distance2(_) | ConstraintRef::NonFace(_)))
        .collect();

    let mut core = candidates.clone();
    for r in &candidates {
        if scope.interrupted() || over_budget(oracle.calls()) {
            interrupted = true;
            break;
        }
        let trial: Vec<ConstraintRef> = core.iter().copied().filter(|k| k != r).collect();
        if oracle.infeasible(&trial) {
            core = trial;
        }
    }

    // Verify minimality: the core itself must be infeasible and every
    // core-minus-one subset feasible. Skipped (and reported false) when
    // the shrink pass was interrupted.
    let mut verified = !interrupted;
    if verified {
        verified = oracle.infeasible(&core);
        for r in &core {
            if !verified {
                break;
            }
            if scope.interrupted() || over_budget(oracle.calls()) {
                verified = false;
                break;
            }
            let minus_one: Vec<ConstraintRef> = core.iter().copied().filter(|k| k != r).collect();
            if oracle.infeasible(&minus_one) {
                verified = false;
            }
        }
    }

    let message = format!(
        "constraints are jointly unsatisfiable (Theorem 6.1): {} initial \
         encoding-dichotom{} left uncoverable; {} conflict core of {} constraint{}{}",
        feas.uncovered.len(),
        if feas.uncovered.len() == 1 {
            "y"
        } else {
            "ies"
        },
        if verified {
            "minimal"
        } else {
            "partial (budget interrupted)"
        },
        core.len(),
        if core.len() == 1 { "" } else { "s" },
        if verified {
            " — removing any one of them makes the set feasible"
        } else {
            ""
        },
    );
    let diagnostic = Diagnostic {
        code: "E008",
        severity: Severity::Error,
        message,
        constraints: core.clone(),
    };
    (
        ConflictCore {
            constraints: core,
            verified_minimal: verified,
            oracle_calls: oracle.calls(),
        },
        diagnostic,
    )
}
