//! Canonicalization of a [`ConstraintSet`] into a content-addressed key.
//!
//! [`canonical_form`] maps every constraint set to a *canonical
//! representative* of its equivalence class under symbol renaming order
//! (permutation of symbol indices) and constraint reordering /
//! duplication: symbols are renumbered in name order, every constraint is
//! rewritten with its internal operands normalized (sorted, deduplicated),
//! and the constraint lists themselves are sorted and deduplicated. Two
//! inputs that differ only by the order symbols were declared in, the
//! order constraints were written in, or repeated constraints therefore
//! produce **byte-identical canonical text** — and hence the same 128-bit
//! [`CanonicalKey`] — while any semantic difference shows up in the text
//! and (with overwhelming probability) in the key.
//!
//! The key addresses the `ioenc serve` result cache; because the solver
//! is *not* permutation-equivariant, the encode pipeline always solves
//! the canonical set and then restores the codes to the caller's symbol
//! order with [`CanonicalForm::restore_encoding`], so cached and fresh
//! solves are bit-identical by construction (DESIGN.md §6e).

use crate::constraints::ConstraintSet;
use crate::encoding::Encoding;
use std::fmt;

/// A 128-bit content hash of a constraint set's canonical text.
///
/// Equal keys mean byte-identical canonical text modulo hash collisions
/// (two independent splitmix64 lanes make accidental collision
/// probability ~2⁻¹²⁸ per pair); the `serve` cache additionally
/// re-verifies every hit against the original set, so a collision can
/// degrade performance but never correctness.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CanonicalKey(u128);

impl CanonicalKey {
    /// The raw 128-bit value.
    pub fn as_u128(self) -> u128 {
        self.0
    }

    /// Rebuilds a key from its raw 128-bit value (used by the serve
    /// layer's persistent cache when decoding stored records).
    pub fn from_u128(v: u128) -> CanonicalKey {
        CanonicalKey(v)
    }
}

impl fmt::Display for CanonicalKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:032x}", self.0)
    }
}

/// The canonical representative of a constraint set, plus the symbol
/// bijection needed to translate encodings back to the original order.
///
/// Produced by [`canonical_form`], whose documentation lists what is
/// normalized.
#[derive(Debug, Clone)]
pub struct CanonicalForm {
    /// The canonical constraint set (symbols in name order, constraints
    /// normalized, sorted and deduplicated).
    pub set: ConstraintSet,
    /// `to_canonical[original_index]` is the symbol's canonical index.
    pub to_canonical: Vec<usize>,
    /// `from_canonical[canonical_index]` is the symbol's original index.
    pub from_canonical: Vec<usize>,
    /// The canonical text: a `symbols:` header followed by the canonical
    /// set's display form. Byte-identical across equivalent inputs.
    pub text: String,
    /// 128-bit hash of `text`.
    pub key: CanonicalKey,
}

impl CanonicalForm {
    /// Translates an encoding of the canonical set back to the original
    /// symbol order: symbol `s` of the original set receives the code
    /// that its canonical counterpart was assigned.
    ///
    /// # Panics
    ///
    /// Panics if `enc` does not have exactly as many codes as the set has
    /// symbols.
    pub fn restore_encoding(&self, enc: &Encoding) -> Encoding {
        assert_eq!(
            enc.num_symbols(),
            self.to_canonical.len(),
            "encoding does not match the canonicalized set"
        );
        let codes = self.to_canonical.iter().map(|&c| enc.codes()[c]).collect();
        Encoding::new(enc.width(), codes)
    }
}

/// Free-function form of [`CanonicalForm::restore_encoding`].
pub fn restore_encoding(form: &CanonicalForm, enc: &Encoding) -> Encoding {
    form.restore_encoding(enc)
}

/// Two independent splitmix64 lanes make the 128-bit key. The lane
/// primitive lives in [`ioenc_rng::hash_bytes`] so the serve disk cache
/// can share the exact derivation for its record checksums and
/// fingerprint hashes.
fn hash128(bytes: &[u8]) -> u128 {
    ioenc_rng::hash_bytes128(bytes)
}

/// Computes the canonical form of `cs`.
///
/// Normalization rules, per constraint kind (all indices are canonical,
/// i.e. after renumbering symbols in name order; ties between identical
/// names keep declaration order):
///
/// * **face** — members and don't cares become sorted index lists; the
///   face list is sorted and deduplicated. A face with fewer than two
///   distinct members constrains nothing and is dropped.
/// * **dominance** — pairs are sorted and deduplicated.
/// * **disjunctive** — children are sorted and deduplicated; a
///   disjunction reduced to a single distinct child keeps a duplicate of
///   it (`a = b ∨ b`), the canonical spelling of that degenerate class.
///   The list is sorted by `(parent, children)` and deduplicated.
/// * **extended disjunctive** — each conjunction is sorted and
///   deduplicated, the conjunction list is sorted and deduplicated, and
///   the constraint list is sorted and deduplicated.
/// * **distance-2** — pairs become `(min, max)`; sorted, deduplicated.
/// * **non-face** — member lists sorted; the list sorted, deduplicated.
///   A non-face with fewer than two distinct members is dropped.
pub fn canonical_form(cs: &ConstraintSet) -> CanonicalForm {
    let n = cs.num_symbols();
    // Stable sort of original indices by name: the canonical numbering.
    let mut from_canonical: Vec<usize> = (0..n).collect();
    from_canonical.sort_by_key(|&s| cs.name(s));
    let mut to_canonical = vec![0usize; n];
    for (canon, &orig) in from_canonical.iter().enumerate() {
        to_canonical[orig] = canon;
    }
    let names: Vec<String> = from_canonical
        .iter()
        .map(|&s| cs.name(s).to_string())
        .collect();

    let remap = |s: usize| to_canonical[s];
    let sorted_set = |it: &mut dyn Iterator<Item = usize>| -> Vec<usize> {
        let mut v: Vec<usize> = it.map(remap).collect();
        v.sort_unstable();
        v.dedup();
        v
    };

    let mut faces: Vec<(Vec<usize>, Vec<usize>)> = cs
        .faces()
        .iter()
        .map(|f| {
            (
                sorted_set(&mut f.members.iter()),
                sorted_set(&mut f.dont_cares.iter()),
            )
        })
        .filter(|(members, _)| members.len() >= 2)
        .collect();
    faces.sort();
    faces.dedup();

    let mut dominances: Vec<(usize, usize)> = cs
        .dominances()
        .iter()
        .map(|&(a, b)| (remap(a), remap(b)))
        .collect();
    dominances.sort_unstable();
    dominances.dedup();

    let mut disjunctives: Vec<(usize, Vec<usize>)> = cs
        .disjunctives()
        .map(|(parent, children)| {
            let mut kids = sorted_set(&mut children.iter().copied());
            if kids.len() == 1 {
                kids.push(kids[0]);
            }
            (remap(parent), kids)
        })
        .collect();
    disjunctives.sort();
    disjunctives.dedup();

    let mut extended: Vec<(usize, Vec<Vec<usize>>)> = cs
        .extended_disjunctives()
        .map(|(parent, conjunctions)| {
            let mut conjs: Vec<Vec<usize>> = conjunctions
                .iter()
                .map(|c| sorted_set(&mut c.iter().copied()))
                .collect();
            conjs.sort();
            conjs.dedup();
            (remap(parent), conjs)
        })
        .collect();
    extended.sort();
    extended.dedup();

    let mut distance2: Vec<(usize, usize)> = cs
        .distance2_pairs()
        .iter()
        .map(|&(a, b)| {
            let (a, b) = (remap(a), remap(b));
            (a.min(b), a.max(b))
        })
        .collect();
    distance2.sort_unstable();
    distance2.dedup();

    let mut nonfaces: Vec<Vec<usize>> = cs
        .nonfaces()
        .iter()
        .map(|m| sorted_set(&mut m.iter()))
        .filter(|m| m.len() >= 2)
        .collect();
    nonfaces.sort();
    nonfaces.dedup();

    let mut set = ConstraintSet::with_names(names);
    for (members, dont_cares) in faces {
        set.add_face_with_dc(members, dont_cares);
    }
    for (a, b) in dominances {
        set.add_dominance(a, b);
    }
    for (parent, children) in disjunctives {
        set.add_disjunctive(parent, children);
    }
    for (parent, conjunctions) in extended {
        set.add_extended(parent, conjunctions);
    }
    for (a, b) in distance2 {
        set.add_distance2(a, b);
    }
    for members in nonfaces {
        set.add_nonface(members);
    }

    let mut text = String::from("symbols:");
    for canon in 0..n {
        text.push(' ');
        text.push_str(set.name(canon));
    }
    text.push('\n');
    text.push_str(&set.to_string());
    let key = CanonicalKey(hash128(text.as_bytes()));

    CanonicalForm {
        set,
        to_canonical,
        from_canonical,
        text,
        key,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn section1() -> ConstraintSet {
        ConstraintSet::parse(
            &["a", "b", "c", "d"],
            "(b,c)\n(c,d)\n(b,a)\n(a,d)\nb>c\na>c\na=b|d",
        )
        .unwrap()
    }

    #[test]
    fn permuted_symbols_share_a_key() {
        let cs = section1();
        // Same constraints, symbols declared in a different order.
        let permuted = ConstraintSet::parse(
            &["d", "b", "a", "c"],
            "(c,d)\n(a,d)\nb>c\n(b,c)\n(b,a)\na=d|b\na>c",
        )
        .unwrap();
        let f1 = canonical_form(&cs);
        let f2 = canonical_form(&permuted);
        assert_eq!(f1.text, f2.text);
        assert_eq!(f1.key, f2.key);
    }

    #[test]
    fn duplicated_constraints_share_a_key() {
        let cs = section1();
        let dup = ConstraintSet::parse(
            &["a", "b", "c", "d"],
            "(b,c)\n(b,c)\n(c,d)\n(b,a)\n(a,d)\nb>c\nb>c\na>c\na=b|d\na=d|b",
        )
        .unwrap();
        assert_eq!(canonical_form(&cs).key, canonical_form(&dup).key);
    }

    #[test]
    fn different_sets_get_different_keys() {
        let cs = section1();
        let other = ConstraintSet::parse(&["a", "b", "c", "d"], "(b,c)\n(c,d)").unwrap();
        assert_ne!(canonical_form(&cs).key, canonical_form(&other).key);
    }

    #[test]
    fn restore_round_trips_symbol_order() {
        let cs = ConstraintSet::parse(&["z", "y", "x"], "(z,y)\n(y,x)").unwrap();
        let form = canonical_form(&cs);
        // Canonical order is x, y, z.
        assert_eq!(form.set.name(0), "x");
        assert_eq!(form.from_canonical, vec![2, 1, 0]);
        let canon_enc = Encoding::new(2, vec![0b00, 0b01, 0b10]);
        let restored = form.restore_encoding(&canon_enc);
        // z (original 0) is canonical 2 → code 0b10, etc.
        assert_eq!(restored.codes(), &[0b10, 0b01, 0b00]);
    }

    #[test]
    fn singleton_disjunction_is_canonicalized_not_dropped() {
        let mut cs = ConstraintSet::with_names(vec!["a".into(), "b".into()]);
        cs.add_disjunctive(0, [1, 1, 1]);
        let mut cs2 = ConstraintSet::with_names(vec!["a".into(), "b".into()]);
        cs2.add_disjunctive(0, [1, 1]);
        assert_eq!(canonical_form(&cs).key, canonical_form(&cs2).key);
    }
}
