//! Prime encoding-dichotomy generation (Section 5.1, Figure 2).
//!
//! Prime encoding-dichotomies are the maximal compatibles of a list of
//! dichotomies. Following Marcus, the product of the pairwise
//! incompatibility clauses `(i + j)` is converted into an irredundant
//! sum-of-products; each product term's *missing* literals form one maximal
//! compatible. The paper's contribution is the conversion algorithm: since
//! every clause has exactly two literals (a 2-CNF), the splitting recursion
//! of the classic Shannon approach collapses to a *linear* number of
//! `cs`/`ps` steps — one per variable — instead of an exponential tree.
//!
//! The accumulator grows with the output size, and each `ps` step is
//! quadratic in it; the per-term work (absorption tests, unions) is
//! independent across terms, so the steps are chunked over worker threads.
//! Chunk outputs are reassembled in index order and the antichain test is
//! phrased against a term's *predecessors* in the sorted accumulator
//! (equivalent to the sequential accepted-set test), so the result is
//! bit-identical for every [`Parallelism`] setting.

use crate::par::par_chunks;
use crate::stats::PrimeStats;
use crate::{Dichotomy, EncodeError};
use ioenc_bitset::BitSet;
use ioenc_cover::{CancelToken, Parallelism};
use std::time::Instant;

/// Generates all prime encoding-dichotomies (maximal compatibles) of
/// `dichotomies`.
///
/// `cap` bounds the number of product terms carried at any point; the
/// worst case is exponential (Table 1's `planet` and `vmecont` rows exceed
/// 50 000 primes), so the cap turns a blow-up into an error.
///
/// The input is deduplicated first; the output is deduplicated and each
/// prime is the union of one maximal compatible set. Uses
/// [`Parallelism::Auto`]; see [`generate_primes_with`] for thread control
/// and statistics — the result is identical either way.
///
/// # Errors
///
/// [`EncodeError::PrimesExceeded`] when more than `cap` terms arise.
///
/// # Examples
///
/// ```
/// use ioenc_core::{generate_primes, Dichotomy};
///
/// // Two compatible dichotomies merge into a single prime.
/// let d = vec![
///     Dichotomy::from_blocks(4, [0], [2]),
///     Dichotomy::from_blocks(4, [1], [2, 3]),
/// ];
/// let primes = generate_primes(&d, 1000)?;
/// assert_eq!(primes, vec![Dichotomy::from_blocks(4, [0, 1], [2, 3])]);
/// # Ok::<(), ioenc_core::EncodeError>(())
/// ```
pub fn generate_primes(
    dichotomies: &[Dichotomy],
    cap: usize,
) -> Result<Vec<Dichotomy>, EncodeError> {
    generate_primes_with(dichotomies, cap, Parallelism::Auto).map(|(primes, _)| primes)
}

/// Like [`generate_primes`] with an explicit thread policy, also returning
/// the generation's [`PrimeStats`].
///
/// The primes are bit-identical for every `parallelism` setting.
///
/// # Errors
///
/// As for [`generate_primes`].
pub fn generate_primes_with(
    dichotomies: &[Dichotomy],
    cap: usize,
    parallelism: Parallelism,
) -> Result<(Vec<Dichotomy>, PrimeStats), EncodeError> {
    let limits = PrimeLimits {
        cap,
        max_ps_steps: None,
        deadline: None,
        cancel: None,
        budgeted: false,
    };
    generate_primes_limited(dichotomies, parallelism, &limits)
        .map_err(|(_, _)| EncodeError::PrimesExceeded { limit: cap })
}

/// Limits for one budgeted prime generation (internal; the public faces
/// are [`generate_primes_with`] and the exact pipeline's budget).
#[derive(Debug, Clone, Default)]
pub(crate) struct PrimeLimits {
    /// Product-term cap.
    pub(crate) cap: usize,
    /// `ps` step cap.
    pub(crate) max_ps_steps: Option<u64>,
    /// Wall-clock deadline, checked once per `ps` step.
    pub(crate) deadline: Option<Instant>,
    /// Cancellation, checked once per `ps` step.
    pub(crate) cancel: Option<CancelToken>,
    /// In budgeted mode the term cap is also checked *before* the
    /// antichain minimization of each step (terms generated, a cheaper and
    /// still deterministic abort); legacy mode checks only the minimized
    /// count, preserving the historical `generate_primes` semantics.
    pub(crate) budgeted: bool,
}

/// Why a limited prime generation stopped early.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum PrimeAbort {
    /// The term cap was hit (deterministic).
    Cap,
    /// The `ps` step cap was hit (deterministic).
    Steps,
    /// Deadline or cancellation (timing-dependent).
    Interrupt,
}

/// [`generate_primes_with`] under [`PrimeLimits`]; on abort the partial
/// [`PrimeStats`] (completed steps only) come back with the reason.
pub(crate) fn generate_primes_limited(
    dichotomies: &[Dichotomy],
    parallelism: Parallelism,
    limits: &PrimeLimits,
) -> Result<(Vec<Dichotomy>, PrimeStats), (PrimeAbort, PrimeStats)> {
    let threads = parallelism.threads();
    let mut stats = PrimeStats {
        threads,
        ..Default::default()
    };
    let mut input = dichotomies.to_vec();
    input.sort();
    input.dedup();
    let m = input.len();
    if m == 0 {
        return Ok((Vec::new(), stats));
    }

    // Pairwise incompatibility clauses. Each row scans all partners, so
    // rows are independent; the sequential path halves the work by filling
    // both rows per comparison.
    let partners: Vec<Vec<usize>> = if threads > 1 && m >= 128 {
        par_chunks(m, threads, |range| {
            range
                .map(|i| {
                    (0..m)
                        .filter(|&j| j != i && !input[i].compatible(&input[j]))
                        .collect()
                })
                .collect()
        })
    } else {
        let mut partners: Vec<Vec<usize>> = vec![Vec::new(); m];
        for i in 0..m {
            for j in (i + 1)..m {
                if !input[i].compatible(&input[j]) {
                    partners[i].push(j);
                    partners[j].push(i);
                }
            }
        }
        partners
    };

    let sop = match clauses_to_sop(&partners, m, limits, threads, &mut stats) {
        Ok(sop) => sop,
        Err(abort) => return Err((abort, stats)),
    };

    // Each term's complement is a maximal compatible; its union is a prime.
    let n = input[0].num_symbols();
    let mut primes: Vec<Dichotomy> = par_chunks(sop.len(), threads, |range| {
        range
            .map(|t| {
                let term = &sop[t];
                let mut p = Dichotomy::new(n);
                for (i, d) in input.iter().enumerate() {
                    if !term.contains(i) {
                        p.union_with(d);
                    }
                }
                p
            })
            .collect()
    });
    primes.sort();
    primes.dedup();
    Ok((primes, stats))
}

/// Converts the 2-CNF `∏ (i + j)` into its irredundant sum-of-products
/// (procedure `cs` of Figure 2), processing one variable per step.
///
/// For the variable `x` with unprocessed partner set `P`, the product of
/// its clauses simplifies to the two-term expression `x + ∏P`; multiplying
/// it into the accumulator and applying single-cube containment (procedure
/// `ps`) keeps the accumulator an antichain of minimal terms.
fn clauses_to_sop(
    partners: &[Vec<usize>],
    m: usize,
    limits: &PrimeLimits,
    threads: usize,
    stats: &mut PrimeStats,
) -> Result<Vec<BitSet>, PrimeAbort> {
    // Accumulator starts as the single empty term (the SOP of an empty
    // product).
    let mut acc: Vec<BitSet> = vec![BitSet::new(m)];
    let mut processed = vec![false; m];

    loop {
        // Splitting variable: the one with the most unprocessed clauses.
        let mut best: Option<(usize, usize)> = None;
        for x in 0..m {
            if processed[x] {
                continue;
            }
            let count = partners[x].iter().filter(|&&y| !processed[y]).count();
            if count > 0 && best.is_none_or(|(bc, _)| count > bc) {
                best = Some((count, x));
            }
        }
        let Some((_, x)) = best else {
            break;
        };
        // Budget checks happen only when another step is actually needed,
        // so a generation that just fits its caps completes.
        if limits.max_ps_steps.is_some_and(|s| stats.ps_steps >= s) {
            return Err(PrimeAbort::Steps);
        }
        if limits.cancel.as_ref().is_some_and(|c| c.is_cancelled())
            || limits.deadline.is_some_and(|d| Instant::now() >= d)
        {
            return Err(PrimeAbort::Interrupt);
        }
        let p_set: BitSet =
            BitSet::from_indices(m, partners[x].iter().copied().filter(|&y| !processed[y]));
        processed[x] = true;
        acc = ps(acc, x, &p_set, limits, threads)?;
        stats.ps_steps += 1;
        stats.peak_terms = stats.peak_terms.max(acc.len());
    }
    Ok(acc)
}

/// One `ps` step: multiplies the two-term expression `x + ∏P` into the
/// antichain `acc`, keeping only minimal terms.
///
/// Terms already containing `x` satisfy the expression and pass through
/// unchanged (their `∪P` product is absorbed by themselves). For the
/// remaining terms the full single-cube containment reduces to three cheap
/// rules, each verified against the worked trace of Figure 3:
///
/// * `a ∪ {x}` is absorbed by `a ∪ P` exactly when `P ⊆ a`;
/// * `a ∪ {x}` is absorbed by a pass-through term `f ∋ x` when
///   `f \ {x} ⊆ a`;
/// * the `a ∪ P` family needs an internal antichain pass (pass-through and
///   `∪{x}` terms can never absorb it or be absorbed by it, because they
///   contain `x` and it does not).
fn ps(
    acc: Vec<BitSet>,
    x: usize,
    p_set: &BitSet,
    limits: &PrimeLimits,
    threads: usize,
) -> Result<Vec<BitSet>, PrimeAbort> {
    // Partition and build the three families chunk by chunk; concatenating
    // the per-chunk families in chunk order reproduces the sequential
    // single-pass order exactly.
    type Families = (Vec<BitSet>, Vec<BitSet>, Vec<BitSet>);
    let chunks: Vec<Families> = par_chunks(acc.len(), threads, |range| {
        let mut pass_through: Vec<BitSet> = Vec::new();
        let mut with_x: Vec<BitSet> = Vec::new();
        let mut with_p: Vec<BitSet> = Vec::new();
        for a in &acc[range] {
            if a.contains(x) {
                pass_through.push(a.clone());
                continue;
            }
            if !p_set.is_subset(a) {
                let mut t = a.clone();
                t.insert(x);
                with_x.push(t);
            }
            let mut t = a.clone();
            t.union_with(p_set);
            with_p.push(t);
        }
        vec![(pass_through, with_x, with_p)]
    });
    let mut pass_through: Vec<BitSet> = Vec::new();
    let mut with_x: Vec<BitSet> = Vec::new();
    let mut with_p: Vec<BitSet> = Vec::new();
    for (pt, wx, wp) in chunks {
        pass_through.extend(pt);
        with_x.extend(wx);
        with_p.extend(wp);
    }
    // Budgeted runs also abort on the raw (pre-minimization) term count:
    // the absorption passes below are where the quadratic cost lives, so a
    // blow-up must be caught before paying for them. The check counts
    // generated terms only — a deterministic quantity.
    if limits.budgeted && pass_through.len() + with_x.len() + with_p.len() > limits.cap {
        return Err(PrimeAbort::Cap);
    }
    // Pass-through terms (minus x) absorb ∪{x} candidates.
    let stripped: Vec<BitSet> = pass_through
        .iter()
        .map(|f| {
            let mut s = f.clone();
            s.remove(x);
            s
        })
        .collect();
    let keep = par_chunks(with_x.len(), threads, |range| {
        range
            .map(|i| !stripped.iter().any(|f| f.is_subset(&with_x[i])))
            .collect::<Vec<bool>>()
    });
    let mut i = 0;
    with_x.retain(|_| {
        let k = keep[i];
        i += 1;
        k
    });
    // Antichain-minimize the ∪P family. A term is minimal exactly when no
    // *predecessor* in the (stable) size-sorted order is a subset of it:
    // any absorber is at least as small, and an absorber that is itself
    // absorbed has a still-smaller absorber subset of both. Predecessor
    // tests are independent, hence chunkable.
    with_p.sort_by_key(|t| t.count());
    with_p.dedup();
    let keep = par_chunks(with_p.len(), threads, |range| {
        range
            .map(|i| !with_p[..i].iter().any(|s| s.is_subset(&with_p[i])))
            .collect::<Vec<bool>>()
    });
    let mut i = 0;
    with_p.retain(|_| {
        let k = keep[i];
        i += 1;
        k
    });
    let mut out = pass_through;
    out.extend(with_x);
    out.extend(with_p);
    if out.len() > limits.cap {
        return Err(PrimeAbort::Cap);
    }
    Ok(out)
}

/// Brute-force maximal compatibles for cross-checking (exponential; testing
/// only).
#[doc(hidden)]
pub fn brute_force_primes(dichotomies: &[Dichotomy]) -> Vec<Dichotomy> {
    let mut input = dichotomies.to_vec();
    input.sort();
    input.dedup();
    let m = input.len();
    assert!(m <= 20, "brute force limited to 20 dichotomies");
    let n = if m == 0 {
        return Vec::new();
    } else {
        input[0].num_symbols()
    };
    let mut maximal_sets: Vec<u32> = Vec::new();
    'outer: for mask in 1u32..(1 << m) {
        // Check pairwise compatibility.
        let members: Vec<usize> = (0..m).filter(|&i| mask >> i & 1 == 1).collect();
        for (ai, &a) in members.iter().enumerate() {
            for &b in &members[ai + 1..] {
                if !input[a].compatible(&input[b]) {
                    continue 'outer;
                }
            }
        }
        // Check maximality.
        for extra in 0..m {
            if mask >> extra & 1 == 1 {
                continue;
            }
            if members.iter().all(|&a| input[a].compatible(&input[extra])) {
                continue 'outer;
            }
        }
        maximal_sets.push(mask);
    }
    let mut primes: Vec<Dichotomy> = maximal_sets
        .iter()
        .map(|&mask| {
            let mut p = Dichotomy::new(n);
            for (i, d) in input.iter().enumerate() {
                if mask >> i & 1 == 1 {
                    p.union_with(d);
                }
            }
            p
        })
        .collect();
    primes.sort();
    primes.dedup();
    primes
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{initial_dichotomies, ConstraintSet};

    #[test]
    fn paper_incompatibility_example() {
        // Section 5.1's abstract example: five dichotomies a..e with
        // incompatibilities (a+b)(a+c)(b+c)(c+d)(d+e). The paper lists the
        // SOP as acd+ace+bcd+bce (compatibles {b,e},{b,d},{a,e},{a,d});
        // note abd is also a minimal cover of those clauses, so {c,e} is a
        // fifth maximal compatible the paper's prose omits — brute force
        // below confirms. These concrete dichotomies realize exactly that
        // incompatibility graph.
        let a = Dichotomy::from_blocks(5, [0], [1]);
        let b = Dichotomy::from_blocks(5, [1], [0]);
        let c = Dichotomy::from_blocks(5, [2], [0, 1]);
        let d = Dichotomy::from_blocks(5, [3], [2]);
        let e = Dichotomy::from_blocks(5, [4], [3]);
        let input = vec![a.clone(), b.clone(), c.clone(), d.clone(), e.clone()];
        let mut fast = generate_primes(&input, 10_000).unwrap();
        let mut expected = vec![
            b.union(&e),
            b.union(&d),
            a.union(&e),
            a.union(&d),
            c.union(&e),
        ];
        fast.sort();
        expected.sort();
        assert_eq!(fast, expected);
        assert_eq!(fast, brute_force_primes(&input));
    }

    #[test]
    fn figure_3_prime_generation() {
        // The full worked example of Figure 3: 9 initial dichotomies give
        // 7 maximal compatible sets / prime dichotomies.
        let mut cs = ConstraintSet::new(5);
        cs.add_face([0, 2, 4]);
        cs.add_face([0, 1, 4]);
        cs.add_face([1, 2, 3]);
        cs.add_face([1, 3, 4]);
        let initial = initial_dichotomies(&cs, true);
        assert_eq!(initial.len(), 9);
        let primes = generate_primes(&initial, 10_000).unwrap();
        assert_eq!(primes.len(), 7, "Figure 3 reports 7 maximal compatibles");
        // The paper's minimum cover uses these four primes (modulo
        // orientation).
        let expected = [
            Dichotomy::from_blocks(5, [0, 2, 4], [1, 3]),
            Dichotomy::from_blocks(5, [2, 3], [0, 1, 4]),
            Dichotomy::from_blocks(5, [0, 4], [1, 2, 3]),
            Dichotomy::from_blocks(5, [0, 2], [1, 3, 4]),
        ];
        for e in &expected {
            assert!(
                primes.iter().any(|p| p == e || p == &e.flipped()),
                "missing prime {e:?}"
            );
        }
        // Cross-check against brute force.
        assert_eq!(primes, brute_force_primes(&initial));
    }

    #[test]
    fn thread_counts_agree_bitwise() {
        // A problem large enough to engage the chunked paths (2^10 − 2
        // primes from the unconstrained uniqueness dichotomies).
        let cs = ConstraintSet::new(10);
        let initial = initial_dichotomies(&cs, false);
        let (reference, ref_stats) =
            generate_primes_with(&initial, 10_000, Parallelism::Off).unwrap();
        assert_eq!(reference.len(), (1 << 10) - 2);
        for par in [
            Parallelism::Fixed(1),
            Parallelism::Fixed(2),
            Parallelism::Fixed(4),
            Parallelism::Auto,
        ] {
            let (primes, stats) = generate_primes_with(&initial, 10_000, par).unwrap();
            assert_eq!(primes, reference, "{par:?} diverged");
            assert_eq!(stats.ps_steps, ref_stats.ps_steps, "{par:?} step count");
            assert_eq!(stats.peak_terms, ref_stats.peak_terms, "{par:?} peak");
        }
    }

    #[test]
    fn stats_report_generation_effort() {
        let cs = ConstraintSet::new(6);
        let initial = initial_dichotomies(&cs, false);
        let (primes, stats) = generate_primes_with(&initial, 10_000, Parallelism::Off).unwrap();
        assert!(!primes.is_empty());
        assert!(stats.ps_steps > 0, "incompatible inputs need ps steps");
        assert!(stats.peak_terms >= primes.len() / 2);
        assert_eq!(stats.threads, 1);
    }

    #[test]
    fn no_incompatibilities_single_prime() {
        let d = vec![
            Dichotomy::from_blocks(4, [0], [2]),
            Dichotomy::from_blocks(4, [1], [2, 3]),
        ];
        let primes = generate_primes(&d, 100).unwrap();
        assert_eq!(primes, vec![Dichotomy::from_blocks(4, [0, 1], [2, 3])]);
    }

    #[test]
    fn empty_input() {
        assert_eq!(generate_primes(&[], 10).unwrap(), Vec::<Dichotomy>::new());
    }

    #[test]
    fn cap_is_enforced() {
        // All-pairwise-incompatible dichotomies: the uniqueness dichotomies
        // of n symbols explode combinatorially.
        let cs = ConstraintSet::new(12);
        let initial = initial_dichotomies(&cs, false);
        let err = generate_primes(&initial, 50).unwrap_err();
        assert_eq!(err, EncodeError::PrimesExceeded { limit: 50 });
    }

    #[test]
    fn duplicates_are_harmless() {
        let d = Dichotomy::from_blocks(3, [0], [1]);
        let primes = generate_primes(&[d.clone(), d.clone(), d.clone()], 10).unwrap();
        assert_eq!(primes, vec![Dichotomy::from_blocks(3, [0], [1])]);
    }

    #[test]
    fn matches_brute_force_on_uniqueness_problems() {
        // Unconstrained n-symbol problems have 2^n - 2 primes
        // (every bipartition except the trivial ones), per Section 5.
        let cs = ConstraintSet::new(4);
        let initial = initial_dichotomies(&cs, false);
        let primes = generate_primes(&initial, 10_000).unwrap();
        assert_eq!(primes.len(), (1 << 4) - 2);
        assert_eq!(primes, brute_force_primes(&initial));
    }

    #[test]
    fn primes_cover_every_input_dichotomy() {
        let mut cs = ConstraintSet::new(5);
        cs.add_face([0, 1, 2]);
        cs.add_face([3, 4]);
        let initial = initial_dichotomies(&cs, false);
        let primes = generate_primes(&initial, 100_000).unwrap();
        for d in &initial {
            assert!(
                primes.iter().any(|p| p.covers_oriented(d)),
                "dichotomy {d:?} not inside any prime"
            );
        }
        assert_eq!(primes, brute_force_primes(&initial));
    }
}
