//! Prime encoding-dichotomy generation (Section 5.1, Figure 2).
//!
//! Prime encoding-dichotomies are the maximal compatibles of a list of
//! dichotomies. Following Marcus, the product of the pairwise
//! incompatibility clauses `(i + j)` is converted into an irredundant
//! sum-of-products; each product term's *missing* literals form one maximal
//! compatible. The paper's contribution is the conversion algorithm: since
//! every clause has exactly two literals (a 2-CNF), the splitting recursion
//! of the classic Shannon approach collapses to a *linear* number of
//! `cs`/`ps` steps — one per variable — instead of an exponential tree.

use crate::{Dichotomy, EncodeError};
use ioenc_bitset::BitSet;

/// Generates all prime encoding-dichotomies (maximal compatibles) of
/// `dichotomies`.
///
/// `cap` bounds the number of product terms carried at any point; the
/// worst case is exponential (Table 1's `planet` and `vmecont` rows exceed
/// 50 000 primes), so the cap turns a blow-up into an error.
///
/// The input is deduplicated first; the output is deduplicated and each
/// prime is the union of one maximal compatible set.
///
/// # Errors
///
/// [`EncodeError::PrimesExceeded`] when more than `cap` terms arise.
///
/// # Examples
///
/// ```
/// use ioenc_core::{generate_primes, Dichotomy};
///
/// // Two compatible dichotomies merge into a single prime.
/// let d = vec![
///     Dichotomy::from_blocks(4, [0], [2]),
///     Dichotomy::from_blocks(4, [1], [2, 3]),
/// ];
/// let primes = generate_primes(&d, 1000)?;
/// assert_eq!(primes, vec![Dichotomy::from_blocks(4, [0, 1], [2, 3])]);
/// # Ok::<(), ioenc_core::EncodeError>(())
/// ```
pub fn generate_primes(
    dichotomies: &[Dichotomy],
    cap: usize,
) -> Result<Vec<Dichotomy>, EncodeError> {
    let mut input = dichotomies.to_vec();
    input.sort();
    input.dedup();
    let m = input.len();
    if m == 0 {
        return Ok(Vec::new());
    }

    // Pairwise incompatibility clauses.
    let mut partners: Vec<Vec<usize>> = vec![Vec::new(); m];
    for i in 0..m {
        for j in (i + 1)..m {
            if !input[i].compatible(&input[j]) {
                partners[i].push(j);
                partners[j].push(i);
            }
        }
    }

    let sop = clauses_to_sop(&partners, m, cap)?;

    // Each term's complement is a maximal compatible; its union is a prime.
    let n = input[0].num_symbols();
    let mut primes: Vec<Dichotomy> = sop
        .iter()
        .map(|term| {
            let mut p = Dichotomy::new(n);
            for (i, d) in input.iter().enumerate() {
                if !term.contains(i) {
                    p.union_with(d);
                }
            }
            p
        })
        .collect();
    primes.sort();
    primes.dedup();
    Ok(primes)
}

/// Converts the 2-CNF `∏ (i + j)` into its irredundant sum-of-products
/// (procedure `cs` of Figure 2), processing one variable per step.
///
/// For the variable `x` with unprocessed partner set `P`, the product of
/// its clauses simplifies to the two-term expression `x + ∏P`; multiplying
/// it into the accumulator and applying single-cube containment (procedure
/// `ps`) keeps the accumulator an antichain of minimal terms.
fn clauses_to_sop(
    partners: &[Vec<usize>],
    m: usize,
    cap: usize,
) -> Result<Vec<BitSet>, EncodeError> {
    // Accumulator starts as the single empty term (the SOP of an empty
    // product).
    let mut acc: Vec<BitSet> = vec![BitSet::new(m)];
    let mut processed = vec![false; m];

    loop {
        // Splitting variable: the one with the most unprocessed clauses.
        let mut best: Option<(usize, usize)> = None;
        for x in 0..m {
            if processed[x] {
                continue;
            }
            let count = partners[x].iter().filter(|&&y| !processed[y]).count();
            if count > 0 && best.is_none_or(|(bc, _)| count > bc) {
                best = Some((count, x));
            }
        }
        let Some((_, x)) = best else {
            break;
        };
        let p_set: BitSet =
            BitSet::from_indices(m, partners[x].iter().copied().filter(|&y| !processed[y]));
        processed[x] = true;
        acc = ps(acc, x, &p_set, cap)?;
    }
    Ok(acc)
}

/// One `ps` step: multiplies the two-term expression `x + ∏P` into the
/// antichain `acc`, keeping only minimal terms.
///
/// Terms already containing `x` satisfy the expression and pass through
/// unchanged (their `∪P` product is absorbed by themselves). For the
/// remaining terms the full single-cube containment reduces to three cheap
/// rules, each verified against the worked trace of Figure 3:
///
/// * `a ∪ {x}` is absorbed by `a ∪ P` exactly when `P ⊆ a`;
/// * `a ∪ {x}` is absorbed by a pass-through term `f ∋ x` when
///   `f \ {x} ⊆ a`;
/// * the `a ∪ P` family needs an internal antichain pass (pass-through and
///   `∪{x}` terms can never absorb it or be absorbed by it, because they
///   contain `x` and it does not).
fn ps(acc: Vec<BitSet>, x: usize, p_set: &BitSet, cap: usize) -> Result<Vec<BitSet>, EncodeError> {
    let mut pass_through: Vec<BitSet> = Vec::new();
    let mut with_x: Vec<BitSet> = Vec::new();
    let mut with_p: Vec<BitSet> = Vec::new();
    for a in &acc {
        if a.contains(x) {
            pass_through.push(a.clone());
            continue;
        }
        if !p_set.is_subset(a) {
            let mut t = a.clone();
            t.insert(x);
            with_x.push(t);
        }
        let mut t = a.clone();
        t.union_with(p_set);
        with_p.push(t);
    }
    // Pass-through terms (minus x) absorb ∪{x} candidates.
    let stripped: Vec<BitSet> = pass_through
        .iter()
        .map(|f| {
            let mut s = f.clone();
            s.remove(x);
            s
        })
        .collect();
    with_x.retain(|t| !stripped.iter().any(|f| f.is_subset(t)));
    // Antichain-minimize the ∪P family.
    with_p.sort_by_key(|t| t.count());
    with_p.dedup();
    let mut minimal: Vec<BitSet> = Vec::with_capacity(with_p.len());
    for t in with_p {
        if !minimal.iter().any(|s| s.is_subset(&t)) {
            minimal.push(t);
        }
    }
    let mut out = pass_through;
    out.extend(with_x);
    out.extend(minimal);
    if out.len() > cap {
        return Err(EncodeError::PrimesExceeded { limit: cap });
    }
    Ok(out)
}

/// Brute-force maximal compatibles for cross-checking (exponential; testing
/// only).
#[doc(hidden)]
pub fn brute_force_primes(dichotomies: &[Dichotomy]) -> Vec<Dichotomy> {
    let mut input = dichotomies.to_vec();
    input.sort();
    input.dedup();
    let m = input.len();
    assert!(m <= 20, "brute force limited to 20 dichotomies");
    let n = if m == 0 {
        return Vec::new();
    } else {
        input[0].num_symbols()
    };
    let mut maximal_sets: Vec<u32> = Vec::new();
    'outer: for mask in 1u32..(1 << m) {
        // Check pairwise compatibility.
        let members: Vec<usize> = (0..m).filter(|&i| mask >> i & 1 == 1).collect();
        for (ai, &a) in members.iter().enumerate() {
            for &b in &members[ai + 1..] {
                if !input[a].compatible(&input[b]) {
                    continue 'outer;
                }
            }
        }
        // Check maximality.
        for extra in 0..m {
            if mask >> extra & 1 == 1 {
                continue;
            }
            if members.iter().all(|&a| input[a].compatible(&input[extra])) {
                continue 'outer;
            }
        }
        maximal_sets.push(mask);
    }
    let mut primes: Vec<Dichotomy> = maximal_sets
        .iter()
        .map(|&mask| {
            let mut p = Dichotomy::new(n);
            for (i, d) in input.iter().enumerate() {
                if mask >> i & 1 == 1 {
                    p.union_with(d);
                }
            }
            p
        })
        .collect();
    primes.sort();
    primes.dedup();
    primes
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{initial_dichotomies, ConstraintSet};

    #[test]
    fn paper_incompatibility_example() {
        // Section 5.1's abstract example: five dichotomies a..e with
        // incompatibilities (a+b)(a+c)(b+c)(c+d)(d+e). The paper lists the
        // SOP as acd+ace+bcd+bce (compatibles {b,e},{b,d},{a,e},{a,d});
        // note abd is also a minimal cover of those clauses, so {c,e} is a
        // fifth maximal compatible the paper's prose omits — brute force
        // below confirms. These concrete dichotomies realize exactly that
        // incompatibility graph.
        let a = Dichotomy::from_blocks(5, [0], [1]);
        let b = Dichotomy::from_blocks(5, [1], [0]);
        let c = Dichotomy::from_blocks(5, [2], [0, 1]);
        let d = Dichotomy::from_blocks(5, [3], [2]);
        let e = Dichotomy::from_blocks(5, [4], [3]);
        let input = vec![a.clone(), b.clone(), c.clone(), d.clone(), e.clone()];
        let mut fast = generate_primes(&input, 10_000).unwrap();
        let mut expected = vec![
            b.union(&e),
            b.union(&d),
            a.union(&e),
            a.union(&d),
            c.union(&e),
        ];
        fast.sort();
        expected.sort();
        assert_eq!(fast, expected);
        assert_eq!(fast, brute_force_primes(&input));
    }

    #[test]
    fn figure_3_prime_generation() {
        // The full worked example of Figure 3: 9 initial dichotomies give
        // 7 maximal compatible sets / prime dichotomies.
        let mut cs = ConstraintSet::new(5);
        cs.add_face([0, 2, 4]);
        cs.add_face([0, 1, 4]);
        cs.add_face([1, 2, 3]);
        cs.add_face([1, 3, 4]);
        let initial = initial_dichotomies(&cs, true);
        assert_eq!(initial.len(), 9);
        let primes = generate_primes(&initial, 10_000).unwrap();
        assert_eq!(primes.len(), 7, "Figure 3 reports 7 maximal compatibles");
        // The paper's minimum cover uses these four primes (modulo
        // orientation).
        let expected = [
            Dichotomy::from_blocks(5, [0, 2, 4], [1, 3]),
            Dichotomy::from_blocks(5, [2, 3], [0, 1, 4]),
            Dichotomy::from_blocks(5, [0, 4], [1, 2, 3]),
            Dichotomy::from_blocks(5, [0, 2], [1, 3, 4]),
        ];
        for e in &expected {
            assert!(
                primes.iter().any(|p| p == e || p == &e.flipped()),
                "missing prime {e:?}"
            );
        }
        // Cross-check against brute force.
        assert_eq!(primes, brute_force_primes(&initial));
    }

    #[test]
    fn no_incompatibilities_single_prime() {
        let d = vec![
            Dichotomy::from_blocks(4, [0], [2]),
            Dichotomy::from_blocks(4, [1], [2, 3]),
        ];
        let primes = generate_primes(&d, 100).unwrap();
        assert_eq!(primes, vec![Dichotomy::from_blocks(4, [0, 1], [2, 3])]);
    }

    #[test]
    fn empty_input() {
        assert_eq!(generate_primes(&[], 10).unwrap(), Vec::<Dichotomy>::new());
    }

    #[test]
    fn cap_is_enforced() {
        // All-pairwise-incompatible dichotomies: the uniqueness dichotomies
        // of n symbols explode combinatorially.
        let cs = ConstraintSet::new(12);
        let initial = initial_dichotomies(&cs, false);
        let err = generate_primes(&initial, 50).unwrap_err();
        assert_eq!(err, EncodeError::PrimesExceeded { limit: 50 });
    }

    #[test]
    fn duplicates_are_harmless() {
        let d = Dichotomy::from_blocks(3, [0], [1]);
        let primes = generate_primes(&[d.clone(), d.clone(), d.clone()], 10).unwrap();
        assert_eq!(primes, vec![Dichotomy::from_blocks(3, [0], [1])]);
    }

    #[test]
    fn matches_brute_force_on_uniqueness_problems() {
        // Unconstrained n-symbol problems have 2^n - 2 primes
        // (every bipartition except the trivial ones), per Section 5.
        let cs = ConstraintSet::new(4);
        let initial = initial_dichotomies(&cs, false);
        let primes = generate_primes(&initial, 10_000).unwrap();
        assert_eq!(primes.len(), (1 << 4) - 2);
        assert_eq!(primes, brute_force_primes(&initial));
    }

    #[test]
    fn primes_cover_every_input_dichotomy() {
        let mut cs = ConstraintSet::new(5);
        cs.add_face([0, 1, 2]);
        cs.add_face([3, 4]);
        let initial = initial_dichotomies(&cs, false);
        let primes = generate_primes(&initial, 100_000).unwrap();
        for d in &initial {
            assert!(
                primes.iter().any(|p| p.covers_oriented(d)),
                "dichotomy {d:?} not inside any prime"
            );
        }
        assert_eq!(primes, brute_force_primes(&initial));
    }
}
