//! Encoding-dichotomies (Definition 3.1 of the paper).

use ioenc_bitset::BitSet;
use std::fmt;

use crate::ConstraintSet;

/// An encoding-dichotomy: an ordered 2-block partial partition of the
/// symbols. Symbols in the left block receive bit 0, symbols in the right
/// block bit 1 (Definition 3.1). A symbol may be in neither block.
///
/// Unlike the *dichotomies* of Tracey and Yang–Ciesielski, encoding-
/// dichotomies are ordered, which is what lets output constraints be
/// expressed (Definition 3.6); *covering* remains orientation-insensitive
/// (Definition 3.4).
///
/// # Examples
///
/// ```
/// use ioenc_core::Dichotomy;
///
/// let d1 = Dichotomy::from_blocks(4, [0, 1], [2, 3]);
/// let d2 = Dichotomy::from_blocks(4, [0], [3]);
/// assert!(d1.covers(&d2));
/// assert!(d1.covers(&d2.flipped()));
/// ```
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Dichotomy {
    left: BitSet,
    right: BitSet,
}

impl Dichotomy {
    /// An empty dichotomy over `n` symbols.
    pub fn new(n: usize) -> Self {
        Dichotomy {
            left: BitSet::new(n),
            right: BitSet::new(n),
        }
    }

    /// Builds a dichotomy from explicit blocks.
    ///
    /// # Panics
    ///
    /// Panics if the blocks overlap or a symbol is out of range.
    pub fn from_blocks<L, R>(n: usize, left: L, right: R) -> Self
    where
        L: IntoIterator<Item = usize>,
        R: IntoIterator<Item = usize>,
    {
        let left = BitSet::from_indices(n, left);
        let right = BitSet::from_indices(n, right);
        assert!(
            left.is_disjoint(&right),
            "dichotomy blocks must be disjoint"
        );
        Dichotomy { left, right }
    }

    /// Builds a dichotomy from block sets.
    ///
    /// # Panics
    ///
    /// Panics if the blocks overlap or have different capacities.
    pub fn from_sets(left: BitSet, right: BitSet) -> Self {
        assert!(
            left.is_disjoint(&right),
            "dichotomy blocks must be disjoint"
        );
        Dichotomy { left, right }
    }

    /// Number of symbols in the universe.
    pub fn num_symbols(&self) -> usize {
        self.left.capacity()
    }

    /// The left (bit 0) block.
    pub fn left(&self) -> &BitSet {
        &self.left
    }

    /// The right (bit 1) block.
    pub fn right(&self) -> &BitSet {
        &self.right
    }

    /// `true` if `s` is in the left block.
    pub fn in_left(&self, s: usize) -> bool {
        self.left.contains(s)
    }

    /// `true` if `s` is in the right block.
    pub fn in_right(&self, s: usize) -> bool {
        self.right.contains(s)
    }

    /// `true` if `s` is in either block.
    pub fn assigns(&self, s: usize) -> bool {
        self.left.contains(s) || self.right.contains(s)
    }

    /// Inserts `s` into the left block; returns `false` (and leaves the
    /// dichotomy unchanged) if `s` is already in the right block.
    pub fn insert_left(&mut self, s: usize) -> bool {
        if self.right.contains(s) {
            return false;
        }
        self.left.insert(s);
        true
    }

    /// Inserts `s` into the right block; returns `false` (and leaves the
    /// dichotomy unchanged) if `s` is already in the left block.
    pub fn insert_right(&mut self, s: usize) -> bool {
        if self.left.contains(s) {
            return false;
        }
        self.right.insert(s);
        true
    }

    /// Compatibility (Definition 3.2): the left block of each is disjoint
    /// from the right block of the other.
    pub fn compatible(&self, other: &Dichotomy) -> bool {
        self.left.is_disjoint(&other.right) && self.right.is_disjoint(&other.left)
    }

    /// Union of two compatible dichotomies (Definition 3.3).
    ///
    /// # Panics
    ///
    /// Panics if the dichotomies are incompatible.
    pub fn union(&self, other: &Dichotomy) -> Dichotomy {
        assert!(self.compatible(other), "union of incompatible dichotomies");
        Dichotomy {
            left: self.left.union(&other.left),
            right: self.right.union(&other.right),
        }
    }

    /// In-place union with a compatible dichotomy.
    ///
    /// # Panics
    ///
    /// Panics if the dichotomies are incompatible.
    pub fn union_with(&mut self, other: &Dichotomy) {
        assert!(self.compatible(other), "union of incompatible dichotomies");
        self.left.union_with(&other.left);
        self.right.union_with(&other.right);
    }

    /// Covering (Definition 3.4): `other`'s blocks are subsets of `self`'s
    /// blocks in either orientation.
    pub fn covers(&self, other: &Dichotomy) -> bool {
        (other.left.is_subset(&self.left) && other.right.is_subset(&self.right))
            || (other.left.is_subset(&self.right) && other.right.is_subset(&self.left))
    }

    /// Orientation-preserving covering: `other.left ⊆ self.left` and
    /// `other.right ⊆ self.right`.
    pub fn covers_oriented(&self, other: &Dichotomy) -> bool {
        other.left.is_subset(&self.left) && other.right.is_subset(&self.right)
    }

    /// The dichotomy with blocks swapped.
    pub fn flipped(&self) -> Dichotomy {
        Dichotomy {
            left: self.right.clone(),
            right: self.left.clone(),
        }
    }

    /// `true` if both blocks are empty.
    pub fn is_empty(&self) -> bool {
        self.left.is_empty() && self.right.is_empty()
    }

    /// `true` if every symbol is assigned to a block (a *total* dichotomy,
    /// i.e. one encoding column).
    pub fn is_total(&self) -> bool {
        self.left.count() + self.right.count() == self.num_symbols()
    }

    /// `true` if the dichotomy separates `a` and `b` (one in each block).
    pub fn separates(&self, a: usize, b: usize) -> bool {
        (self.left.contains(a) && self.right.contains(b))
            || (self.left.contains(b) && self.right.contains(a))
    }

    /// The bit this dichotomy's encoding column gives symbol `s`: 1 when
    /// `s` is in the right block **or unassigned** (the output-safe
    /// completion used in the proof of Theorem 6.1).
    pub fn column_bit(&self, s: usize) -> bool {
        !self.left.contains(s)
    }

    /// Renders the dichotomy as `(a b; c d)` using the names in `cs`.
    pub fn display(&self, cs: &ConstraintSet) -> String {
        let l: Vec<&str> = self.left.iter().map(|s| cs.name(s)).collect();
        let r: Vec<&str> = self.right.iter().map(|s| cs.name(s)).collect();
        format!("({}; {})", l.join(" "), r.join(" "))
    }
}

impl fmt::Debug for Dichotomy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let l: Vec<String> = self.left.iter().map(|s| s.to_string()).collect();
        let r: Vec<String> = self.right.iter().map(|s| s.to_string()).collect();
        write!(f, "({}; {})", l.join(" "), r.join(" "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compatibility_per_definition_3_2() {
        // (s0 s1; s2 s3) and (s0 s3; ...) example family.
        let d1 = Dichotomy::from_blocks(5, [0, 1], [2, 3]);
        let d2 = Dichotomy::from_blocks(5, [0, 4], [2]);
        assert!(d1.compatible(&d2));
        let d3 = Dichotomy::from_blocks(5, [2], [0]);
        assert!(!d1.compatible(&d3));
        // Compatibility is orientation-sensitive: flipping d3 fixes it.
        assert!(d1.compatible(&d3.flipped()));
    }

    #[test]
    fn union_merges_blocks() {
        let d1 = Dichotomy::from_blocks(5, [0], [2]);
        let d2 = Dichotomy::from_blocks(5, [1], [2, 3]);
        let u = d1.union(&d2);
        assert_eq!(u, Dichotomy::from_blocks(5, [0, 1], [2, 3]));
    }

    #[test]
    #[should_panic(expected = "incompatible")]
    fn union_rejects_incompatible() {
        let d1 = Dichotomy::from_blocks(3, [0], [1]);
        let d2 = Dichotomy::from_blocks(3, [1], [0]);
        let _ = d1.union(&d2);
    }

    #[test]
    fn covering_per_definition_3_4() {
        // (s0; s1 s2) is covered by (s0 s3; s1 s2 s4) and by the flipped
        // (s1 s2 s3; s0) but not by (s0 s1; s2).
        let d = Dichotomy::from_blocks(5, [0], [1, 2]);
        assert!(Dichotomy::from_blocks(5, [0, 3], [1, 2, 4]).covers(&d));
        assert!(Dichotomy::from_blocks(5, [1, 2, 3], [0]).covers(&d));
        assert!(!Dichotomy::from_blocks(5, [0, 1], [2]).covers(&d));
    }

    #[test]
    fn oriented_covering_is_one_sided() {
        let d = Dichotomy::from_blocks(4, [0], [1]);
        assert!(Dichotomy::from_blocks(4, [0, 2], [1, 3]).covers_oriented(&d));
        assert!(!Dichotomy::from_blocks(4, [1, 3], [0, 2]).covers_oriented(&d));
    }

    #[test]
    fn insertion_reports_conflicts() {
        let mut d = Dichotomy::from_blocks(3, [0], [1]);
        assert!(d.insert_left(2));
        assert!(!d.insert_right(0));
        assert!(d.insert_left(0)); // already there: fine
        assert_eq!(d.left().count(), 2);
    }

    #[test]
    fn column_bits_fill_right() {
        let d = Dichotomy::from_blocks(4, [1], [2]);
        // Unassigned symbols 0 and 3 default to 1 (right).
        let bits: Vec<bool> = (0..4).map(|s| d.column_bit(s)).collect();
        assert_eq!(bits, vec![true, false, true, true]);
    }

    #[test]
    fn separates_and_total() {
        let d = Dichotomy::from_blocks(3, [0], [1, 2]);
        assert!(d.separates(0, 2));
        assert!(!d.separates(1, 2));
        assert!(d.is_total());
        assert!(!Dichotomy::from_blocks(3, [0], [1]).is_total());
    }
}
