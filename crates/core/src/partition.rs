//! Hypergraph bipartitioning for the splitting phase of the bounded-length
//! heuristic (Section 7.1).
//!
//! The paper uses "a modification of the Kernighan–Lin partitioning
//! algorithm" where the nodes are the symbols and the nets are the face
//! constraints (or the restricted initial encoding-dichotomies); the
//! partition minimizing the number of cut nets violates the fewest
//! constraints. This module implements a Fiduccia–Mattheyses-style
//! pass-based refinement with per-side capacity bounds.

use ioenc_bitset::BitSet;

/// Options for [`bipartition`].
#[derive(Debug, Clone)]
pub struct PartitionOptions {
    /// Maximum number of nodes allowed on each side (the heuristic uses
    /// `2^(c-1)` so each half can still be encoded in `c-1` bits).
    pub max_side: usize,
    /// Number of improvement passes.
    pub passes: usize,
}

impl Default for PartitionOptions {
    fn default() -> Self {
        PartitionOptions {
            max_side: usize::MAX,
            passes: 8,
        }
    }
}

/// Splits `n` nodes into two parts minimizing the number of cut nets.
///
/// `nets` are hyperedges over `0..n`. Returns `(part_a, part_b)` as sorted
/// node lists; both are non-empty for `n >= 2` and respect
/// `opts.max_side`.
///
/// # Panics
///
/// Panics if `n < 2`, a net mentions a node `>= n`, or `2 * max_side < n`
/// (no feasible balance).
///
/// # Examples
///
/// ```
/// use ioenc_core::{bipartition, PartitionOptions};
/// use ioenc_bitset::BitSet;
///
/// // Two cliques {0,1,2} and {3,4,5} joined by nothing: the cut is 0.
/// let nets = vec![
///     BitSet::from_indices(6, [0, 1, 2]),
///     BitSet::from_indices(6, [3, 4, 5]),
/// ];
/// let (a, b) = bipartition(6, &nets, &PartitionOptions { max_side: 3, passes: 8 });
/// assert_eq!(a.len(), 3);
/// assert_eq!(b.len(), 3);
/// ```
pub fn bipartition(n: usize, nets: &[BitSet], opts: &PartitionOptions) -> (Vec<usize>, Vec<usize>) {
    assert!(n >= 2, "nothing to split");
    let max_side = opts.max_side.min(n - 1);
    assert!(2 * max_side >= n, "max_side too small to hold all nodes");
    for net in nets {
        assert!(net.capacity() == n, "net width mismatch");
    }

    // Initial split: greedy net packing — walk the nets and pull whole nets
    // to side A while it has room, so related symbols start together.
    let mut side = vec![false; n]; // false = A, true = B
    let mut count_a = 0usize;
    let target_a = n.div_ceil(2).min(max_side);
    let mut placed = vec![false; n];
    'outer: for net in nets {
        for s in net.iter() {
            if placed[s] {
                continue;
            }
            if count_a >= target_a {
                break 'outer;
            }
            placed[s] = true;
            count_a += 1;
        }
    }
    for s in 0..n {
        if !placed[s] && count_a < target_a {
            placed[s] = true;
            count_a += 1;
        } else {
            side[s] = !placed[s];
        }
    }

    let cut = |side: &[bool]| -> usize {
        nets.iter()
            .filter(|net| {
                let mut has_a = false;
                let mut has_b = false;
                for s in net.iter() {
                    if side[s] {
                        has_b = true;
                    } else {
                        has_a = true;
                    }
                }
                has_a && has_b
            })
            .count()
    };

    // FM passes: move the best unlocked node (best cut reduction subject to
    // balance), lock it, continue; keep the best state seen in the pass.
    let mut best_side = side.clone();
    let mut best_cut = cut(&side);
    for _ in 0..opts.passes {
        let mut locked = vec![false; n];
        let mut current = best_side.clone();
        let mut pass_best = best_cut;
        let mut pass_best_side = best_side.clone();
        for _ in 0..n {
            // Candidate moves.
            let count_a = current.iter().filter(|&&b| !b).count();
            let mut best_move: Option<(usize, usize)> = None; // (new_cut, node)
            for s in 0..n {
                if locked[s] {
                    continue;
                }
                // Balance check after moving s.
                let new_a = if current[s] { count_a + 1 } else { count_a - 1 };
                if new_a == 0 || new_a == n || new_a > max_side || n - new_a > max_side {
                    continue;
                }
                let mut trial = current.clone();
                trial[s] = !trial[s];
                let c = cut(&trial);
                if best_move.is_none_or(|(bc, _)| c < bc) {
                    best_move = Some((c, s));
                }
            }
            let Some((c, s)) = best_move else {
                break;
            };
            current[s] = !current[s];
            locked[s] = true;
            if c < pass_best {
                pass_best = c;
                pass_best_side = current.clone();
            }
        }
        if pass_best < best_cut {
            best_cut = pass_best;
            best_side = pass_best_side;
        } else {
            break;
        }
    }

    let a: Vec<usize> = (0..n).filter(|&s| !best_side[s]).collect();
    let b: Vec<usize> = (0..n).filter(|&s| best_side[s]).collect();
    (a, b)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn separable_cliques_get_zero_cut() {
        let nets = vec![
            BitSet::from_indices(6, [0, 1, 2]),
            BitSet::from_indices(6, [0, 1]),
            BitSet::from_indices(6, [3, 4, 5]),
            BitSet::from_indices(6, [4, 5]),
        ];
        let (a, b) = bipartition(
            6,
            &nets,
            &PartitionOptions {
                max_side: 3,
                passes: 8,
            },
        );
        assert_eq!(a.len() + b.len(), 6);
        // Check the cut is zero: each net entirely on one side.
        for net in &nets {
            let in_a = net.iter().filter(|s| a.contains(s)).count();
            assert!(in_a == 0 || in_a == net.count(), "net cut: {net:?}");
        }
    }

    #[test]
    fn balance_is_respected() {
        let nets = vec![BitSet::from_indices(8, [0, 1, 2, 3, 4, 5, 6, 7])];
        let (a, b) = bipartition(
            8,
            &nets,
            &PartitionOptions {
                max_side: 4,
                passes: 4,
            },
        );
        assert_eq!(a.len(), 4);
        assert_eq!(b.len(), 4);
    }

    #[test]
    fn both_sides_non_empty_without_nets() {
        let (a, b) = bipartition(5, &[], &PartitionOptions::default());
        assert!(!a.is_empty());
        assert!(!b.is_empty());
        assert_eq!(a.len() + b.len(), 5);
    }

    #[test]
    fn two_nodes_split_one_each() {
        let (a, b) = bipartition(2, &[], &PartitionOptions::default());
        assert_eq!(a.len(), 1);
        assert_eq!(b.len(), 1);
    }

    #[test]
    #[should_panic(expected = "max_side too small")]
    fn infeasible_balance_panics() {
        bipartition(
            6,
            &[],
            &PartitionOptions {
                max_side: 2,
                passes: 1,
            },
        );
    }
}
