//! The unified [`Solver`] entry point: one builder over the exact (P-2),
//! bounded-exact, heuristic (P-3) and auto-ladder encoders.
//!
//! Historically each encoder had its own options struct and free function
//! (`exact_encode` + `ExactOptions`, and so on). Those remain as deprecated
//! delegating wrappers; new code configures a [`Solver`] once and picks the
//! algorithm with [`SolverMode`]:
//!
//! ```
//! use ioenc_core::{Solver, SolverMode};
//! # use ioenc_core::ConstraintSet;
//!
//! let cs = ConstraintSet::parse(
//!     &["a", "b", "c", "d"],
//!     "(b,c)\n(c,d)\n(b,a)\n(a,d)\nb>c\na>c\na=b|d",
//! )?;
//! let solution = Solver::new().mode(SolverMode::Exact).solve(&cs)?;
//! assert_eq!(solution.encoding.width(), 2);
//! assert!(solution.optimal());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

use crate::auto::{encode_auto_impl, AutoOptions, AutoRung, RungAttempt};
use crate::bounded::bounded_exact_encode_report;
use crate::budget::Budget;
use crate::exact::{exact_encode_report, ExactOptions};
use crate::heuristic::heuristic_encode_report;
use crate::stats::SolverStats;
use crate::{ConstraintSet, CostFunction, EncodeError, Encoding};
use ioenc_cover::Parallelism;

/// Which encoding algorithm a [`Solver`] runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum SolverMode {
    /// The exact minimum-length pipeline (P-2, Theorem 6.2).
    Exact,
    /// Exhaustive minimum-cost selection at a fixed code length.
    Bounded,
    /// The split/merge/select heuristic (P-3, Section 7.1).
    Heuristic,
    /// The degradation ladder: exact, then bounded, then heuristic, under
    /// one shared budget.
    #[default]
    Auto,
}

/// Mode-specific facts about a [`Solution`], beyond the encoding itself.
#[derive(Debug, Clone)]
pub enum SolutionDetail {
    /// From [`SolverMode::Exact`].
    Exact {
        /// Whether the length is a proven minimum (`false` only when the
        /// covering search hit its node limit).
        optimal: bool,
    },
    /// From [`SolverMode::Bounded`].
    Bounded {
        /// The encoding's cost under the configured [`CostFunction`].
        cost: u64,
    },
    /// From [`SolverMode::Heuristic`].
    Heuristic {
        /// `false` when a budget limit stopped the search early.
        converged: bool,
    },
    /// From [`SolverMode::Auto`].
    Auto {
        /// The ladder rung that answered.
        rung: AutoRung,
        /// Whether the encoding is a proven minimum-length one.
        optimal: bool,
        /// The rungs (or per-length attempts) that fell short first.
        attempts: Vec<RungAttempt>,
        /// Whether a fallback rung reused the exact rung's raised
        /// dichotomies.
        reused_raised: bool,
    },
}

/// A verified encoding plus the work spent finding it.
#[derive(Debug, Clone)]
pub struct Solution {
    /// The encoding (injective; for [`SolverMode::Exact`] and successful
    /// auto solves it satisfies every constraint).
    pub encoding: Encoding,
    /// Work counters and timings.
    pub stats: SolverStats,
    /// Mode-specific detail.
    pub detail: SolutionDetail,
}

impl Solution {
    /// Whether the encoding is a proven minimum-length one. Bounded and
    /// heuristic solves answer a fixed-length question, so they are never
    /// length-optimal in this sense.
    pub fn optimal(&self) -> bool {
        match self.detail {
            SolutionDetail::Exact { optimal } | SolutionDetail::Auto { optimal, .. } => optimal,
            SolutionDetail::Bounded { .. } | SolutionDetail::Heuristic { .. } => false,
        }
    }
}

/// A configured encoder: pick a [`SolverMode`], set shared knobs once, and
/// [`solve`](Solver::solve) any number of constraint sets.
///
/// The builder owns an [`AutoOptions`] bundle — the same shared-budget,
/// per-rung structure the auto ladder uses — so one `Solver` value fully
/// describes any of the four algorithms. [`Session`](crate::Session) stores
/// one to keep incremental and from-scratch solves configured identically.
#[derive(Debug, Clone, Default)]
pub struct Solver {
    pub(crate) mode: SolverMode,
    pub(crate) opts: AutoOptions,
}

impl Solver {
    /// A solver with [`SolverMode::Auto`] and default options.
    pub fn new() -> Self {
        Solver::default()
    }

    /// Sets the algorithm.
    pub fn mode(mut self, mode: SolverMode) -> Self {
        self.mode = mode;
        self
    }

    /// Sets the resource [`Budget`] (shared across rungs in auto mode).
    pub fn budget(mut self, budget: Budget) -> Self {
        self.opts.budget = budget;
        self
    }

    /// Sets the thread policy of every algorithm; results are
    /// bit-identical across settings.
    pub fn threads(mut self, parallelism: Parallelism) -> Self {
        self.opts = self.opts.with_parallelism(parallelism);
        self
    }

    /// Sets the exact pipeline's prime-generation term cap.
    pub fn prime_cap(mut self, cap: usize) -> Self {
        self.opts.exact.prime_cap = cap;
        self
    }

    /// Sets the exact pipeline's covering-search node budget.
    pub fn node_limit(mut self, nodes: u64) -> Self {
        self.opts.exact.node_limit = nodes;
        self
    }

    /// Sets the exact pipeline's non-face clause/repair cap (Section 8.3).
    pub fn nonface_cap(mut self, cap: usize) -> Self {
        self.opts.exact.nonface_cap = cap;
        self
    }

    /// Requests an explicit code length for the bounded and heuristic
    /// modes instead of the minimum `⌈log₂ n⌉`.
    pub fn code_length(mut self, bits: usize) -> Self {
        self.opts.bounded.code_length = Some(bits);
        self.opts.heuristic.code_length = Some(bits);
        self
    }

    /// Sets the [`CostFunction`] the bounded and heuristic modes minimize
    /// (auto mode always minimizes violations).
    pub fn cost(mut self, cost: CostFunction) -> Self {
        self.opts.bounded.cost = cost;
        self.opts.heuristic.cost = cost;
        self
    }

    /// Sets how many bits past the minimum the auto ladder's fallback
    /// rungs may try.
    pub fn max_extra_bits(mut self, bits: usize) -> Self {
        self.opts.max_extra_bits = bits;
        self
    }

    /// Replaces the whole option bundle — the escape hatch for knobs
    /// without a dedicated builder method.
    pub fn options(mut self, opts: AutoOptions) -> Self {
        self.opts = opts;
        self
    }

    /// The [`ExactOptions`] an exact-mode solve runs with: the exact
    /// rung's knobs under the solver's shared budget.
    pub(crate) fn exact_options(&self) -> ExactOptions {
        let mut o = self.opts.exact.clone();
        o.budget = self.opts.budget.clone();
        o
    }

    /// Encodes `cs` with the configured algorithm.
    ///
    /// # Errors
    ///
    /// Whatever the selected algorithm reports; see
    /// [`exact_encode_report`], [`bounded_exact_encode_report`],
    /// [`heuristic_encode_report`] and the auto-ladder docs
    /// ([`AutoOptions`]).
    pub fn solve(&self, cs: &ConstraintSet) -> Result<Solution, EncodeError> {
        match self.mode {
            SolverMode::Exact => {
                let r = exact_encode_report(cs, &self.exact_options())?;
                Ok(Solution {
                    encoding: r.encoding,
                    stats: r.stats,
                    detail: SolutionDetail::Exact { optimal: r.optimal },
                })
            }
            SolverMode::Bounded => {
                let mut o = self.opts.bounded.clone();
                o.budget = self.opts.budget.clone();
                let r = bounded_exact_encode_report(cs, &o)?;
                Ok(Solution {
                    encoding: r.encoding,
                    stats: r.stats,
                    detail: SolutionDetail::Bounded { cost: r.cost },
                })
            }
            SolverMode::Heuristic => {
                let mut o = self.opts.heuristic.clone();
                o.budget = self.opts.budget.clone();
                let r = heuristic_encode_report(cs, &o)?;
                Ok(Solution {
                    encoding: r.encoding,
                    stats: r.stats,
                    detail: SolutionDetail::Heuristic {
                        converged: r.converged,
                    },
                })
            }
            SolverMode::Auto => {
                let r = encode_auto_impl(cs, &self.opts)?;
                Ok(Solution {
                    encoding: r.encoding,
                    stats: r.stats,
                    detail: SolutionDetail::Auto {
                        rung: r.rung,
                        optimal: r.optimal,
                        attempts: r.attempts,
                        reused_raised: r.reused_raised,
                    },
                })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bounded::bounded_exact_encode_report;

    fn section1() -> ConstraintSet {
        ConstraintSet::parse(
            &["a", "b", "c", "d"],
            "(b,c)\n(c,d)\n(b,a)\n(a,d)\nb>c\na>c\na=b|d",
        )
        .unwrap()
    }

    #[test]
    fn exact_mode_matches_free_function() {
        let cs = section1();
        let s = Solver::new().mode(SolverMode::Exact).solve(&cs).unwrap();
        let r = exact_encode_report(&cs, &ExactOptions::default()).unwrap();
        assert_eq!(s.encoding.codes(), r.encoding.codes());
        assert!(matches!(s.detail, SolutionDetail::Exact { optimal: true }));
        assert!(s.optimal());
    }

    #[test]
    fn bounded_mode_matches_free_function() {
        let cs = section1();
        let s = Solver::new().mode(SolverMode::Bounded).solve(&cs).unwrap();
        let r = bounded_exact_encode_report(&cs, &crate::BoundedExactOptions::default()).unwrap();
        assert_eq!(s.encoding.codes(), r.encoding.codes());
        match s.detail {
            SolutionDetail::Bounded { cost } => assert_eq!(cost, r.cost),
            other => panic!("wrong detail {other:?}"),
        }
        assert!(!s.optimal());
    }

    #[test]
    fn heuristic_mode_matches_free_function() {
        let cs = section1();
        let s = Solver::new()
            .mode(SolverMode::Heuristic)
            .code_length(3)
            .solve(&cs)
            .unwrap();
        let opts = crate::HeuristicOptions::default().with_code_length(3);
        let r = heuristic_encode_report(&cs, &opts).unwrap();
        assert_eq!(s.encoding.codes(), r.encoding.codes());
    }

    #[test]
    fn auto_mode_matches_ladder() {
        let cs = section1();
        let s = Solver::new().solve(&cs).unwrap();
        let r = encode_auto_impl(&cs, &AutoOptions::new()).unwrap();
        assert_eq!(s.encoding.codes(), r.encoding.codes());
        match s.detail {
            SolutionDetail::Auto { rung, optimal, .. } => {
                assert_eq!(rung, r.rung);
                assert_eq!(optimal, r.optimal);
            }
            other => panic!("wrong detail {other:?}"),
        }
    }

    #[test]
    fn builder_knobs_land_in_options() {
        let s = Solver::new()
            .mode(SolverMode::Exact)
            .budget(Budget::unlimited().with_max_primes(123))
            .threads(Parallelism::Off)
            .prime_cap(77)
            .node_limit(99)
            .nonface_cap(11)
            .max_extra_bits(2);
        assert_eq!(s.opts.budget.max_primes, Some(123));
        assert_eq!(s.opts.exact.prime_cap, 77);
        assert_eq!(s.opts.exact.node_limit, 99);
        assert_eq!(s.opts.exact.nonface_cap, 11);
        assert_eq!(s.opts.max_extra_bits, 2);
        assert_eq!(s.opts.exact.parallelism, Parallelism::Off);
        let x = s.exact_options();
        assert_eq!(x.budget.max_primes, Some(123));
        assert_eq!(x.prime_cap, 77);
    }
}
