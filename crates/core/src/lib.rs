#![warn(missing_docs)]
#![forbid(unsafe_code)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

//! The encoding-dichotomy framework of Saldanha, Villa, Brayton and
//! Sangiovanni-Vincentelli: *A Framework for Satisfying Input and Output
//! Encoding Constraints* (UCB/ERL M90/110, DAC 1991).
//!
//! Given a set of symbols and a mix of encoding constraints —
//!
//! * **face (input) constraints** `(a, b, c)`: the symbols must span a face
//!   of the encoding hypercube private to them (optionally with *encoding
//!   don't cares* `(a, b, [c], d)`),
//! * **dominance constraints** `a > b`: `code(a)` bit-wise covers `code(b)`,
//! * **disjunctive constraints** `a = b ∨ c`: `code(a)` is the bit-wise OR
//!   of the children's codes,
//! * **extended disjunctive constraints** `(b∧c) ∨ (d∧e) >= a`,
//! * **distance-2** and **non-face** constraints (testability, Section 8) —
//!
//! the framework answers the paper's three problems:
//!
//! * **P-1** — [`check_feasible`]: polynomial-time satisfiability via
//!   maximally raised valid encoding-dichotomies (Theorem 6.1).
//! * **P-2** — [`Solver`] in [`SolverMode::Exact`]: minimum-length codes via
//!   prime encoding-dichotomy generation and exact unate covering
//!   (Theorem 6.2).
//! * **P-3** — [`SolverMode::Heuristic`]: bounded-length encoding minimizing
//!   a [`CostFunction`] (violated constraints, cubes or literals) by the
//!   split / merge / select scheme of Section 7.1.
//!
//! All entry points funnel through the [`Solver`] builder; for iterated
//! edit/re-solve workflows, [`Session`] applies [`Delta`]s incrementally
//! with bit-identical results.
//!
//! # Examples
//!
//! The running example from Section 1 of the paper:
//!
//! ```
//! use ioenc_core::{ConstraintSet, Solver, SolverMode};
//!
//! let cs = ConstraintSet::parse(
//!     &["a", "b", "c", "d"],
//!     "(b,c)\n(c,d)\n(b,a)\n(a,d)\nb>c\na>c\na=b|d",
//! )?;
//! let solution = Solver::new().mode(SolverMode::Exact).solve(&cs)?;
//! assert_eq!(solution.encoding.width(), 2);
//! assert!(solution.encoding.verify(&cs).is_empty());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

mod auto;
mod bounded;
mod budget;
mod canon;
mod chains;
mod constraints;
mod cost;
mod dichotomy;
mod encoding;
mod error;
mod exact;
mod feasible;
mod formulation;
mod heuristic;
mod hypercube;
mod initial;
pub mod json;
pub mod lattice;
pub mod lint;
pub mod npc;
mod oracle;
mod par;
mod partition;
mod primes;
mod raise;
mod session;
mod solver;
mod stats;

#[allow(deprecated)]
pub use auto::encode_auto;
pub use auto::{AutoOptions, AutoReport, AutoRung, RungAttempt};
#[allow(deprecated)]
pub use bounded::bounded_exact_encode;
pub use bounded::{bounded_exact_encode_report, BoundedExactOptions, BoundedReport};
pub use budget::{Budget, BudgetPhase, BudgetSpent};
pub use canon::{canonical_form, restore_encoding, CanonicalForm, CanonicalKey};
pub use chains::{encode_with_chains, ChainConstraint, ChainOptions};
pub use constraints::{ConstraintRef, ConstraintSet, FaceConstraint, Span};
pub use cost::{constraint_pla, cost_of, cost_of_with, count_violations, CostFunction};
pub use dichotomy::Dichotomy;
pub use encoding::{Encoding, Violation};
pub use error::EncodeError;
#[allow(deprecated)]
pub use exact::exact_encode;
pub use exact::{exact_encode_report, ExactOptions, ExactReport};
pub use feasible::{check_feasible, Feasibility};
pub use formulation::{BinateFormulation, BinateRow};
#[allow(deprecated)]
pub use heuristic::heuristic_encode;
pub use heuristic::{heuristic_encode_report, HeuristicOptions, HeuristicReport};
pub use hypercube::{face_contains, face_of, hamming};
pub use initial::initial_dichotomies;
pub use oracle::{oracle_encode, oracle_min_width, OracleOptions};
pub use partition::{bipartition, PartitionOptions};
#[doc(hidden)]
pub use primes::brute_force_primes;
pub use primes::{generate_primes, generate_primes_with};
pub use raise::{is_valid, raise_dichotomy};
pub use session::{Delta, ReuseReport, Session, SessionOutcome};
pub use solver::{Solution, SolutionDetail, Solver, SolverMode};
pub use stats::{PhaseTimings, PrimeStats, SolverStats, WorkUnits};

pub use ioenc_cover::{CancelToken, CoverStats, Parallelism};
