//! Hypercube face utilities on binary codes.

/// The smallest face (subcube) spanned by a set of codes of the given
/// width: returned as `(fixed_mask, fixed_value)` — the face is the set of
/// vertices `v` with `v & fixed_mask == fixed_value`.
///
/// An empty input spans the empty face convention `(all-ones mask, 0)` of
/// width bits, which contains only code 0; callers normally pass at least
/// one code.
///
/// # Examples
///
/// ```
/// use ioenc_core::face_of;
///
/// let (mask, value) = face_of(&[0b11, 0b01], 2);
/// // Bit 0 is fixed at 1, bit 1 is free.
/// assert_eq!(mask, 0b01);
/// assert_eq!(value, 0b01);
/// ```
pub fn face_of(codes: &[u64], width: usize) -> (u64, u64) {
    let width_mask = if width >= 64 {
        u64::MAX
    } else {
        (1u64 << width) - 1
    };
    let Some((&first, rest)) = codes.split_first() else {
        return (width_mask, 0);
    };
    let mut fixed = width_mask;
    for &c in rest {
        fixed &= !(c ^ first);
    }
    (fixed, first & fixed)
}

/// `true` when `code` lies inside the face `(mask, value)`.
pub fn face_contains(mask: u64, value: u64, code: u64) -> bool {
    code & mask == value
}

/// Hamming distance between two codes.
pub fn hamming(a: u64, b: u64) -> u32 {
    (a ^ b).count_ones()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn face_of_single_code_is_the_code() {
        let (mask, value) = face_of(&[0b101], 3);
        assert_eq!(mask, 0b111);
        assert_eq!(value, 0b101);
    }

    #[test]
    fn face_of_spanning_codes() {
        // Codes 000 and 011 span the face 0-- on bits 0,1: fixed bit 2 = 0.
        let (mask, value) = face_of(&[0b000, 0b011], 3);
        assert_eq!(mask, 0b100);
        assert_eq!(value, 0);
        assert!(face_contains(mask, value, 0b001));
        assert!(!face_contains(mask, value, 0b101));
    }

    #[test]
    fn face_of_all_codes_is_whole_cube() {
        let codes: Vec<u64> = (0..8).collect();
        let (mask, _) = face_of(&codes, 3);
        assert_eq!(mask, 0);
    }

    #[test]
    fn paper_section_1_face_example() {
        // (a,b,c) with a=11, b=01, c=00: the face they span is the whole
        // 2-cube, so vertex 10 is inside it and must stay unused.
        let (mask, value) = face_of(&[0b11, 0b01, 0b00], 2);
        assert!(face_contains(mask, value, 0b10));
    }

    #[test]
    fn hamming_distance() {
        assert_eq!(hamming(0b101, 0b010), 3);
        assert_eq!(hamming(7, 7), 0);
    }
}
