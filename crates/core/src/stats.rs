//! Instrumentation for the exact encoding pipeline.
//!
//! Every phase of [`exact_encode_report`](crate::exact_encode_report)
//! contributes counters: prime generation reports its `ps` steps and peak
//! accumulator size, the covering solver reports branch-and-bound effort
//! ([`CoverStats`]), and the pipeline records wall-clock time per phase.
//! The counters are deterministic across thread counts; only the timings
//! vary between runs.

use ioenc_cover::CoverStats;
use std::time::Duration;

/// Counters from one prime encoding-dichotomy generation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PrimeStats {
    /// `ps` multiplication steps performed (one per splitting variable).
    pub ps_steps: u64,
    /// Largest accumulator (product-term count) seen during any step.
    pub peak_terms: usize,
    /// Worker threads used for the chunked steps.
    pub threads: usize,
}

impl PrimeStats {
    /// Sums another generation's counters into this one (peaks and thread
    /// counts take the maximum).
    pub fn absorb(&mut self, other: &PrimeStats) {
        self.ps_steps += other.ps_steps;
        self.peak_terms = self.peak_terms.max(other.peak_terms);
        self.threads = self.threads.max(other.threads);
    }
}

/// Wall-clock timings of the exact pipeline's phases.
///
/// Timings are measured, not derived, so they differ run to run even though
/// every other statistic is deterministic.
#[derive(Debug, Clone, Copy, Default)]
pub struct PhaseTimings {
    /// Initial-dichotomy generation, raising and the feasibility check.
    pub setup: Duration,
    /// Prime encoding-dichotomy generation (including prime raising).
    pub primes: Duration,
    /// The covering search (all iterations, for binate repair loops).
    pub cover: Duration,
    /// End-to-end pipeline time.
    pub total: Duration,
}

/// Aggregated instrumentation from one exact encoding run.
#[derive(Debug, Clone, Copy, Default)]
pub struct SolverStats {
    /// Number of initial encoding-dichotomies.
    pub num_initial: usize,
    /// Number of valid prime encoding-dichotomies.
    pub num_primes: usize,
    /// Maximal-raising attempts (initial dichotomies plus raw primes).
    pub raise_attempts: u64,
    /// Prime-generation counters.
    pub primes: PrimeStats,
    /// Covering-search counters.
    pub cover: CoverStats,
    /// Per-phase wall-clock timings.
    pub timings: PhaseTimings,
}

impl SolverStats {
    /// Renders the statistics as a compact multi-line summary, one
    /// `label: value` pair per line, suitable for printing to stderr.
    pub fn render(&self) -> String {
        format!(
            "initial dichotomies: {}\n\
             prime dichotomies:   {} ({} ps steps, peak {} terms)\n\
             raise attempts:      {}\n\
             cover search:        {} nodes, {} prunes, {} tasks on {} threads\n\
             timings:             setup {:.1?}, primes {:.1?}, cover {:.1?}, total {:.1?}",
            self.num_initial,
            self.num_primes,
            self.primes.ps_steps,
            self.primes.peak_terms,
            self.raise_attempts,
            self.cover.nodes,
            self.cover.prunes,
            self.cover.tasks,
            self.cover.threads,
            self.timings.setup,
            self.timings.primes,
            self.timings.cover,
            self.timings.total,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn absorb_sums_counts_and_maxes_peaks() {
        let mut a = PrimeStats {
            ps_steps: 3,
            peak_terms: 10,
            threads: 1,
        };
        let b = PrimeStats {
            ps_steps: 2,
            peak_terms: 40,
            threads: 4,
        };
        a.absorb(&b);
        assert_eq!(a.ps_steps, 5);
        assert_eq!(a.peak_terms, 40);
        assert_eq!(a.threads, 4);
    }

    #[test]
    fn render_mentions_every_counter() {
        let stats = SolverStats {
            num_initial: 9,
            num_primes: 7,
            raise_attempts: 16,
            ..Default::default()
        };
        let text = stats.render();
        assert!(text.contains("initial dichotomies: 9"));
        assert!(text.contains("prime dichotomies:   7"));
        assert!(text.contains("raise attempts:      16"));
        assert!(text.contains("cover search:"));
        assert!(text.contains("timings:"));
    }
}
