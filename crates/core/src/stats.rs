//! Instrumentation for the exact encoding pipeline.
//!
//! Every phase of [`exact_encode_report`](crate::exact_encode_report)
//! contributes counters: prime generation reports its `ps` steps and peak
//! accumulator size, the covering solver reports branch-and-bound effort
//! ([`CoverStats`]), and the pipeline records wall-clock time per phase.
//! The counters are deterministic across thread counts; only the timings
//! vary between runs.

use ioenc_cover::CoverStats;
use std::time::Duration;

/// Counters from one prime encoding-dichotomy generation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PrimeStats {
    /// `ps` multiplication steps performed (one per splitting variable).
    pub ps_steps: u64,
    /// Largest accumulator (product-term count) seen during any step.
    pub peak_terms: usize,
    /// Worker threads used for the chunked steps.
    pub threads: usize,
}

impl PrimeStats {
    /// Sums another generation's counters into this one (peaks and thread
    /// counts take the maximum).
    pub fn absorb(&mut self, other: &PrimeStats) {
        self.ps_steps += other.ps_steps;
        self.peak_terms = self.peak_terms.max(other.peak_terms);
        self.threads = self.threads.max(other.threads);
    }
}

/// Wall-clock timings of the exact pipeline's phases.
///
/// Timings are measured, not derived, so they differ run to run even though
/// every other statistic is deterministic.
#[derive(Debug, Clone, Copy, Default)]
pub struct PhaseTimings {
    /// Initial-dichotomy generation, raising and the feasibility check.
    pub setup: Duration,
    /// Prime encoding-dichotomy generation (including prime raising).
    pub primes: Duration,
    /// The covering search (all iterations, for binate repair loops).
    pub cover: Duration,
    /// End-to-end pipeline time.
    pub total: Duration,
}

/// Aggregated instrumentation from one encoding run (or, absorbed, from a
/// whole degradation ladder).
#[derive(Debug, Clone, Copy, Default)]
pub struct SolverStats {
    /// Number of initial encoding-dichotomies.
    pub num_initial: usize,
    /// Number of valid prime encoding-dichotomies.
    pub num_primes: usize,
    /// Maximal-raising attempts (initial dichotomies plus raw primes).
    pub raise_attempts: u64,
    /// Cost-function evaluations (bounded enumeration and heuristic
    /// search).
    pub evals: u64,
    /// ESPRESSO improvement-loop iterations run by cost evaluations.
    pub espresso_iters: u64,
    /// Prime-generation counters.
    pub primes: PrimeStats,
    /// Covering-search counters.
    pub cover: CoverStats,
    /// Per-phase wall-clock timings.
    pub timings: PhaseTimings,
}

impl SolverStats {
    /// Sums another run's counters into this one. Count-like statistics
    /// add; peaks, pool sizes and thread counts take the maximum; timings
    /// add per phase.
    pub fn absorb(&mut self, other: &SolverStats) {
        self.num_initial = self.num_initial.max(other.num_initial);
        self.num_primes = self.num_primes.max(other.num_primes);
        self.raise_attempts += other.raise_attempts;
        self.evals += other.evals;
        self.espresso_iters += other.espresso_iters;
        self.primes.absorb(&other.primes);
        self.cover.absorb(&other.cover);
        self.timings.setup += other.timings.setup;
        self.timings.primes += other.timings.primes;
        self.timings.cover += other.timings.cover;
        self.timings.total += other.timings.total;
    }

    /// The deterministic work-unit fingerprint of this run: every counter
    /// that is bit-identical across thread counts and runs, excluding
    /// wall-clock timings and thread counts. Two runs of the same budgeted
    /// encoding must produce equal fingerprints for any
    /// [`Parallelism`](crate::Parallelism) setting.
    pub fn work_units(&self) -> WorkUnits {
        WorkUnits {
            num_initial: self.num_initial,
            num_primes: self.num_primes,
            raise_attempts: self.raise_attempts,
            evals: self.evals,
            espresso_iters: self.espresso_iters,
            ps_steps: self.primes.ps_steps,
            peak_terms: self.primes.peak_terms,
            cover_nodes: self.cover.nodes,
            cover_prunes: self.cover.prunes,
            cover_tasks: self.cover.tasks,
        }
    }

    /// Renders the statistics as a compact multi-line summary, one
    /// `label: value` pair per line, suitable for printing to stderr.
    pub fn render(&self) -> String {
        format!(
            "initial dichotomies: {}\n\
             prime dichotomies:   {} ({} ps steps, peak {} terms)\n\
             raise attempts:      {}\n\
             cover search:        {} nodes, {} prunes, {} tasks on {} threads\n\
             evaluations:         {} cost evals, {} espresso iterations\n\
             timings:             setup {:.1?}, primes {:.1?}, cover {:.1?}, total {:.1?}",
            self.num_initial,
            self.num_primes,
            self.primes.ps_steps,
            self.primes.peak_terms,
            self.raise_attempts,
            self.cover.nodes,
            self.cover.prunes,
            self.cover.tasks,
            self.cover.threads,
            self.evals,
            self.espresso_iters,
            self.timings.setup,
            self.timings.primes,
            self.timings.cover,
            self.timings.total,
        )
    }
}

/// The schedule-independent counters of a [`SolverStats`] (see
/// [`SolverStats::work_units`]), comparable across thread counts.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub struct WorkUnits {
    /// Initial encoding-dichotomies.
    pub num_initial: usize,
    /// Valid prime encoding-dichotomies.
    pub num_primes: usize,
    /// Maximal-raising attempts.
    pub raise_attempts: u64,
    /// Cost-function evaluations.
    pub evals: u64,
    /// ESPRESSO improvement-loop iterations.
    pub espresso_iters: u64,
    /// `ps` multiplication steps.
    pub ps_steps: u64,
    /// Peak product-term count during prime generation.
    pub peak_terms: usize,
    /// Branch-and-bound nodes expanded.
    pub cover_nodes: u64,
    /// Subtrees cut by the bound tests.
    pub cover_prunes: u64,
    /// Subproblems in the deterministic root decomposition.
    pub cover_tasks: usize,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn absorb_sums_counts_and_maxes_peaks() {
        let mut a = PrimeStats {
            ps_steps: 3,
            peak_terms: 10,
            threads: 1,
        };
        let b = PrimeStats {
            ps_steps: 2,
            peak_terms: 40,
            threads: 4,
        };
        a.absorb(&b);
        assert_eq!(a.ps_steps, 5);
        assert_eq!(a.peak_terms, 40);
        assert_eq!(a.threads, 4);
    }

    #[test]
    fn solver_stats_absorb_and_fingerprint() {
        let mut a = SolverStats {
            num_initial: 9,
            num_primes: 7,
            raise_attempts: 16,
            evals: 10,
            espresso_iters: 3,
            ..Default::default()
        };
        let b = SolverStats {
            num_initial: 4,
            num_primes: 11,
            raise_attempts: 5,
            evals: 2,
            espresso_iters: 1,
            ..Default::default()
        };
        a.absorb(&b);
        assert_eq!(a.num_initial, 9);
        assert_eq!(a.num_primes, 11);
        assert_eq!(a.raise_attempts, 21);
        assert_eq!(a.evals, 12);
        assert_eq!(a.espresso_iters, 4);
        // Fingerprints ignore timings: perturbing a timing changes nothing.
        let mut c = a;
        c.timings.total += Duration::from_secs(5);
        c.cover.threads = 8;
        assert_eq!(a.work_units(), c.work_units());
    }

    #[test]
    fn render_mentions_every_counter() {
        let stats = SolverStats {
            num_initial: 9,
            num_primes: 7,
            raise_attempts: 16,
            ..Default::default()
        };
        let text = stats.render();
        assert!(text.contains("initial dichotomies: 9"));
        assert!(text.contains("prime dichotomies:   7"));
        assert!(text.contains("raise attempts:      16"));
        assert!(text.contains("cover search:"));
        assert!(text.contains("timings:"));
    }
}
