//! The workspace's one JSON reader/writer.
//!
//! Three front ends speak JSON — `ioenc lint --json`, `ioenc encode
//! --json` and the `ioenc serve` NDJSON protocol — and they must agree on
//! escaping and on deterministic field order. This module is the single
//! implementation they share: a tree value type ([`Json`]) with a compact
//! renderer whose output is a pure function of the tree (insertion-ordered
//! objects, no whitespace), a recursive-descent parser for the service's
//! request lines, and the [`escape`] routine the lint renderer's
//! pretty-printed layout also uses.
//!
//! The renderer emits *compact* JSON (`{"k":1,"l":[true]}`), which is what
//! newline-delimited protocols need; the lint report keeps its historical
//! pretty layout but builds every string literal through [`escape`].
//!
//! # Examples
//!
//! ```
//! use ioenc_core::json::Json;
//!
//! let v = Json::obj()
//!     .field("ok", true)
//!     .field("bits", 2u64)
//!     .field("name", "a\"b");
//! assert_eq!(v.render(), r#"{"ok":true,"bits":2,"name":"a\"b"}"#);
//! let back = Json::parse(&v.render()).unwrap();
//! assert_eq!(back.get("bits").and_then(Json::as_u64), Some(2));
//! ```

use std::fmt::Write as _;

/// A JSON value. Object fields keep insertion order, so rendering is
/// deterministic.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An integer (covers every counter the workspace emits; 128 bits so
    /// both `i64` and `u64` embed losslessly).
    Int(i128),
    /// A non-integral number. The workspace never emits these itself, but
    /// the parser must accept arbitrary JSON.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, fields in insertion order.
    Obj(Vec<(String, Json)>),
}

impl From<bool> for Json {
    fn from(v: bool) -> Self {
        Json::Bool(v)
    }
}
impl From<u64> for Json {
    fn from(v: u64) -> Self {
        Json::Int(v as i128)
    }
}
impl From<usize> for Json {
    fn from(v: usize) -> Self {
        Json::Int(v as i128)
    }
}
impl From<i64> for Json {
    fn from(v: i64) -> Self {
        Json::Int(v as i128)
    }
}
impl From<&str> for Json {
    fn from(v: &str) -> Self {
        Json::Str(v.to_string())
    }
}
impl From<String> for Json {
    fn from(v: String) -> Self {
        Json::Str(v)
    }
}
impl From<Vec<Json>> for Json {
    fn from(v: Vec<Json>) -> Self {
        Json::Arr(v)
    }
}

impl Json {
    /// An empty object, ready for [`Json::field`] chaining.
    pub fn obj() -> Json {
        Json::Obj(Vec::new())
    }

    /// Appends a field to an object (builder style).
    ///
    /// # Panics
    ///
    /// Panics if `self` is not an object.
    pub fn field(mut self, key: &str, value: impl Into<Json>) -> Json {
        match &mut self {
            Json::Obj(fields) => fields.push((key.to_string(), value.into())),
            _ => panic!("field() on a non-object"),
        }
        self
    }

    /// Looks a field up by key (objects only).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The integer payload as `u64`, if this is a non-negative integer in
    /// range.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Int(i) => u64::try_from(*i).ok(),
            _ => None,
        }
    }

    /// The array payload, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Renders compact JSON: no whitespace, object fields in insertion
    /// order, strings escaped by [`escape`]. Deterministic.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(i) => {
                let _ = write!(out, "{i}");
            }
            Json::Float(f) => {
                if f.is_finite() {
                    let _ = write!(out, "{f}");
                } else {
                    // JSON has no Inf/NaN; null is the conventional stand-in.
                    out.push_str("null");
                }
            }
            Json::Str(s) => {
                out.push('"');
                out.push_str(&escape(s));
                out.push('"');
            }
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('"');
                    out.push_str(&escape(k));
                    out.push_str("\":");
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    /// Parses one JSON value from `text` (which must contain nothing else
    /// but whitespace around it).
    ///
    /// # Errors
    ///
    /// A message naming the byte offset of the first syntax error.
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut p = Parser { bytes, pos: 0 };
        p.skip_ws();
        let v = p.value(0)?;
        p.skip_ws();
        if p.pos != bytes.len() {
            return Err(format!("trailing input at byte {}", p.pos));
        }
        Ok(v)
    }
}

/// Escapes a string for inclusion inside a JSON string literal (without
/// the surrounding quotes). Shared by the compact renderer and the lint
/// report's pretty renderer.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Nesting depth cap: a service must not let one hostile request line
/// recurse the parser off the stack.
const MAX_DEPTH: usize = 64;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, String> {
        if depth > MAX_DEPTH {
            return Err(format!(
                "nesting deeper than {MAX_DEPTH} at byte {}",
                self.pos
            ));
        }
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                loop {
                    self.skip_ws();
                    items.push(self.value(depth + 1)?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Json::Arr(items));
                        }
                        _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut fields = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                loop {
                    self.skip_ws();
                    let key = self.string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    self.skip_ws();
                    let val = self.value(depth + 1)?;
                    fields.push((key, val));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Json::Obj(fields));
                        }
                        _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
                    }
                }
            }
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            _ => Err(format!("unexpected input at byte {}", self.pos)),
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err("unterminated string".to_string());
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err("unterminated escape".to_string());
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let code = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: a second \uXXXX must follow.
                                if self.peek() == Some(b'\\') {
                                    self.pos += 1;
                                    self.expect(b'u')?;
                                    let lo = self.hex4()?;
                                    if !(0xDC00..0xE000).contains(&lo) {
                                        return Err("invalid low surrogate".to_string());
                                    }
                                    0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                                } else {
                                    return Err("lone high surrogate".to_string());
                                }
                            } else {
                                hi
                            };
                            match char::from_u32(code) {
                                Some(c) => out.push(c),
                                None => return Err("invalid unicode escape".to_string()),
                            }
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos - 1)),
                    }
                }
                _ => {
                    // Re-decode the UTF-8 sequence starting at the byte we
                    // just consumed.
                    let start = self.pos - 1;
                    let len = utf8_len(b).ok_or_else(|| format!("bad UTF-8 at byte {start}"))?;
                    let end = start + len;
                    let chunk = self
                        .bytes
                        .get(start..end)
                        .ok_or_else(|| format!("bad UTF-8 at byte {start}"))?;
                    let s = std::str::from_utf8(chunk)
                        .map_err(|_| format!("bad UTF-8 at byte {start}"))?;
                    out.push_str(s);
                    self.pos = end;
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, String> {
        let chunk = self
            .bytes
            .get(self.pos..self.pos + 4)
            .ok_or("truncated \\u escape")?;
        let s = std::str::from_utf8(chunk).map_err(|_| "bad \\u escape".to_string())?;
        let v = u32::from_str_radix(s, 16).map_err(|_| "bad \\u escape".to_string())?;
        self.pos += 4;
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut integral = true;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    integral = false;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| format!("bad number at byte {start}"))?;
        if integral {
            if let Ok(i) = text.parse::<i128>() {
                return Ok(Json::Int(i));
            }
        }
        text.parse::<f64>()
            .map(Json::Float)
            .map_err(|_| format!("bad number at byte {start}"))
    }
}

/// Length of a UTF-8 sequence from its first byte (`None` for
/// continuation/invalid lead bytes).
fn utf8_len(b: u8) -> Option<usize> {
    match b {
        0x00..=0x7f => Some(1),
        0xc0..=0xdf => Some(2),
        0xe0..=0xef => Some(3),
        0xf0..=0xf7 => Some(4),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_compact_deterministic() {
        let v = Json::obj()
            .field("a", 1u64)
            .field("b", Json::Arr(vec![Json::Null, Json::Bool(false)]))
            .field("c", "x\ny");
        assert_eq!(v.render(), "{\"a\":1,\"b\":[null,false],\"c\":\"x\\ny\"}");
    }

    #[test]
    fn parse_round_trips_own_output() {
        let v = Json::obj()
            .field("id", 7u64)
            .field("op", "encode")
            .field("neg", -3i64)
            .field(
                "nested",
                Json::obj().field("k", Json::Arr(vec![Json::Int(1)])),
            );
        let text = v.render();
        assert_eq!(Json::parse(&text).unwrap(), v);
    }

    #[test]
    fn parse_accepts_whitespace_and_floats() {
        let v = Json::parse(" { \"x\" : [ 1 , 2.5 , -3e2 ] } ").unwrap();
        let arr = v.get("x").and_then(Json::as_arr).unwrap();
        assert_eq!(arr[0], Json::Int(1));
        assert_eq!(arr[1], Json::Float(2.5));
        assert_eq!(arr[2], Json::Float(-300.0));
    }

    #[test]
    fn parse_strings_with_escapes() {
        let v = Json::parse(r#""a\"b\\c\n\u0041\uD83D\uDE00""#).unwrap();
        assert_eq!(v.as_str(), Some("a\"b\\c\nA😀"));
        // Unicode passes through raw too.
        let v = Json::parse("\"héllo\"").unwrap();
        assert_eq!(v.as_str(), Some("héllo"));
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(Json::parse("").is_err());
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("{\"a\":}").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("tru").is_err());
        assert!(Json::parse("1 2").is_err());
        assert!(Json::parse("\"\\q\"").is_err());
        assert!(Json::parse("\"\\uD800\"").is_err());
    }

    #[test]
    fn parse_rejects_unbounded_nesting() {
        let deep = "[".repeat(200) + &"]".repeat(200);
        assert!(Json::parse(&deep).is_err());
    }

    #[test]
    fn escape_handles_control_characters() {
        assert_eq!(escape("a\u{1}b"), "a\\u0001b");
        assert_eq!(escape("q\"\\"), "q\\\"\\\\");
    }

    #[test]
    fn accessors() {
        let v = Json::obj()
            .field("n", 5u64)
            .field("s", "hi")
            .field("b", true);
        assert_eq!(v.get("n").and_then(Json::as_u64), Some(5));
        assert_eq!(v.get("s").and_then(Json::as_str), Some("hi"));
        assert_eq!(v.get("b").and_then(Json::as_bool), Some(true));
        assert!(v.get("missing").is_none());
        assert_eq!(Json::Int(-1).as_u64(), None);
    }

    #[test]
    fn big_u64_counters_round_trip() {
        let v = Json::from(u64::MAX);
        let back = Json::parse(&v.render()).unwrap();
        assert_eq!(back.as_u64(), Some(u64::MAX));
    }
}
