//! Constraint model: the input and output encoding constraints of the
//! paper, with a small text format for tests and examples.

use crate::EncodeError;
use ioenc_bitset::BitSet;
use std::collections::BTreeMap;
use std::fmt;

/// A source location in a constraint text file: 1-based line and column of
/// the constraint's first character, plus its byte length. Spans are
/// attached by [`ConstraintSet::parse`] and surfaced in lint diagnostics;
/// constraints added through the builder methods have no span.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Span {
    /// 1-based line number.
    pub line: u32,
    /// 1-based column of the constraint's first byte.
    pub col: u32,
    /// Length of the constraint text in bytes.
    pub len: u32,
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

/// A stable reference to one constraint inside a [`ConstraintSet`]: the
/// constraint kind plus its index in that kind's insertion order. The
/// canonical ordering (faces, dominances, disjunctives, extended,
/// distance-2, non-faces, each by index) matches [`ConstraintSet`]'s
/// `Display` output and the deterministic ordering of lint diagnostics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ConstraintRef {
    /// The `i`-th face constraint.
    Face(usize),
    /// The `i`-th dominance constraint.
    Dominance(usize),
    /// The `i`-th disjunctive constraint.
    Disjunctive(usize),
    /// The `i`-th extended disjunctive constraint.
    Extended(usize),
    /// The `i`-th distance-2 constraint.
    Distance2(usize),
    /// The `i`-th non-face constraint.
    NonFace(usize),
}

impl ConstraintRef {
    /// The constraint kind as a lowercase noun (for diagnostics and JSON).
    pub fn kind(&self) -> &'static str {
        match self {
            ConstraintRef::Face(_) => "face",
            ConstraintRef::Dominance(_) => "dominance",
            ConstraintRef::Disjunctive(_) => "disjunctive",
            ConstraintRef::Extended(_) => "extended",
            ConstraintRef::Distance2(_) => "distance2",
            ConstraintRef::NonFace(_) => "nonface",
        }
    }

    /// The index within the constraint kind.
    pub fn index(&self) -> usize {
        match self {
            ConstraintRef::Face(i)
            | ConstraintRef::Dominance(i)
            | ConstraintRef::Disjunctive(i)
            | ConstraintRef::Extended(i)
            | ConstraintRef::Distance2(i)
            | ConstraintRef::NonFace(i) => *i,
        }
    }
}

/// A face-embedding (input) constraint: `members` must span a face of the
/// encoding hypercube that contains no symbol outside `members ∪
/// dont_cares` (Section 1; don't cares per Section 8.1).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaceConstraint {
    /// Symbols that must lie on the face.
    pub members: BitSet,
    /// Symbols free to lie on or off the face (encoding don't cares).
    pub dont_cares: BitSet,
}

/// A disjunctive output constraint `parent = child₁ ∨ child₂ ∨ …`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct Disjunctive {
    pub parent: usize,
    pub children: Vec<usize>,
}

/// An extended disjunctive constraint
/// `(c₁₁∧c₁₂∧…) ∨ (c₂₁∧…) ∨ … >= parent` (Section 6.2).
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct ExtendedDisjunctive {
    pub parent: usize,
    pub conjunctions: Vec<Vec<usize>>,
}

/// A set of encoding constraints over `n` symbols.
///
/// Symbols are dense indices `0..n`; optional names make diagnostics and
/// the text format readable. Builder methods validate indices and panic on
/// misuse; [`ConstraintSet::parse`] returns errors instead.
///
/// # Examples
///
/// ```
/// use ioenc_core::ConstraintSet;
///
/// let mut cs = ConstraintSet::new(4);
/// cs.add_face([0, 1]);
/// cs.add_dominance(0, 2);
/// cs.add_disjunctive(0, [1, 3]);
/// assert!(cs.has_output_constraints());
/// ```
#[derive(Debug, Clone, Default)]
pub struct ConstraintSet {
    n: usize,
    names: Vec<String>,
    faces: Vec<FaceConstraint>,
    dominances: Vec<(usize, usize)>,
    disjunctives: Vec<Disjunctive>,
    extended: Vec<ExtendedDisjunctive>,
    distance2: Vec<(usize, usize)>,
    nonfaces: Vec<BitSet>,
    spans: BTreeMap<ConstraintRef, Span>,
}

impl ConstraintSet {
    /// An empty constraint set over `n` symbols named `s0..s{n-1}`.
    pub fn new(n: usize) -> Self {
        Self::with_names((0..n).map(|i| format!("s{i}")).collect())
    }

    /// An empty constraint set with explicit symbol names.
    pub fn with_names(names: Vec<String>) -> Self {
        ConstraintSet {
            n: names.len(),
            names,
            ..Default::default()
        }
    }

    /// Number of symbols.
    pub fn num_symbols(&self) -> usize {
        self.n
    }

    /// The name of symbol `s`.
    ///
    /// # Panics
    ///
    /// Panics if `s >= num_symbols()`.
    pub fn name(&self, s: usize) -> &str {
        &self.names[s]
    }

    /// Looks a symbol up by name.
    pub fn symbol(&self, name: &str) -> Option<usize> {
        self.names.iter().position(|n| n == name)
    }

    fn check(&self, s: usize) {
        assert!(s < self.n, "symbol {s} out of range {}", self.n);
    }

    /// Adds a face constraint without don't cares, returning its
    /// [`ConstraintRef`].
    ///
    /// # Panics
    ///
    /// Panics if a symbol is out of range or fewer than two symbols are
    /// given.
    pub fn add_face<I: IntoIterator<Item = usize>>(&mut self, members: I) -> ConstraintRef {
        self.add_face_with_dc(members, [])
    }

    /// Adds a face constraint with encoding don't cares (Section 8.1).
    ///
    /// # Panics
    ///
    /// Panics if a symbol is out of range, a don't care is also a member,
    /// or fewer than two members are given.
    pub fn add_face_with_dc<I, J>(&mut self, members: I, dont_cares: J) -> ConstraintRef
    where
        I: IntoIterator<Item = usize>,
        J: IntoIterator<Item = usize>,
    {
        let members: Vec<usize> = members.into_iter().collect();
        let dcs: Vec<usize> = dont_cares.into_iter().collect();
        for &s in members.iter().chain(&dcs) {
            self.check(s);
        }
        assert!(members.len() >= 2, "a face constraint needs >= 2 members");
        let members = BitSet::from_indices(self.n, members);
        let dont_cares = BitSet::from_indices(self.n, dcs);
        assert!(
            members.is_disjoint(&dont_cares),
            "don't cares must not repeat members"
        );
        self.faces.push(FaceConstraint {
            members,
            dont_cares,
        });
        ConstraintRef::Face(self.faces.len() - 1)
    }

    /// Adds a dominance constraint `above > below`, returning its
    /// [`ConstraintRef`].
    ///
    /// # Panics
    ///
    /// Panics if a symbol is out of range or `above == below`.
    pub fn add_dominance(&mut self, above: usize, below: usize) -> ConstraintRef {
        self.check(above);
        self.check(below);
        assert_ne!(above, below, "a symbol cannot dominate itself");
        self.dominances.push((above, below));
        ConstraintRef::Dominance(self.dominances.len() - 1)
    }

    /// Adds a disjunctive constraint `parent = ⋁ children`.
    ///
    /// # Panics
    ///
    /// Panics if a symbol is out of range, the parent is among the
    /// children, or fewer than two children are given.
    pub fn add_disjunctive<I: IntoIterator<Item = usize>>(
        &mut self,
        parent: usize,
        children: I,
    ) -> ConstraintRef {
        self.check(parent);
        let children: Vec<usize> = children.into_iter().collect();
        for &c in &children {
            self.check(c);
            assert_ne!(c, parent, "parent cannot be its own child");
        }
        assert!(children.len() >= 2, "a disjunction needs >= 2 children");
        self.disjunctives.push(Disjunctive { parent, children });
        ConstraintRef::Disjunctive(self.disjunctives.len() - 1)
    }

    /// Adds an extended disjunctive constraint `⋁ᵢ ⋀ conjᵢ >= parent`
    /// (Section 6.2).
    ///
    /// # Panics
    ///
    /// Panics if a symbol is out of range or any conjunction is empty.
    pub fn add_extended<I, J>(&mut self, parent: usize, conjunctions: I) -> ConstraintRef
    where
        I: IntoIterator<Item = J>,
        J: IntoIterator<Item = usize>,
    {
        self.check(parent);
        let conjunctions: Vec<Vec<usize>> = conjunctions
            .into_iter()
            .map(|c| c.into_iter().collect())
            .collect();
        assert!(!conjunctions.is_empty(), "need at least one conjunction");
        for c in &conjunctions {
            assert!(!c.is_empty(), "conjunctions must be non-empty");
            for &s in c {
                self.check(s);
            }
        }
        self.extended.push(ExtendedDisjunctive {
            parent,
            conjunctions,
        });
        ConstraintRef::Extended(self.extended.len() - 1)
    }

    /// Adds a distance-2 constraint: the codes of `a` and `b` must differ
    /// in at least two bits (Section 8.2). Returns its [`ConstraintRef`].
    ///
    /// # Panics
    ///
    /// Panics if a symbol is out of range or `a == b`.
    pub fn add_distance2(&mut self, a: usize, b: usize) -> ConstraintRef {
        self.check(a);
        self.check(b);
        assert_ne!(a, b, "distance-2 needs two distinct symbols");
        self.distance2.push((a, b));
        ConstraintRef::Distance2(self.distance2.len() - 1)
    }

    /// Adds a non-face constraint: the face spanned by `members` must
    /// contain at least one other symbol (Section 8.3).
    ///
    /// # Panics
    ///
    /// Panics if a symbol is out of range or fewer than two symbols are
    /// given.
    pub fn add_nonface<I: IntoIterator<Item = usize>>(&mut self, members: I) -> ConstraintRef {
        let members: Vec<usize> = members.into_iter().collect();
        for &s in &members {
            self.check(s);
        }
        assert!(
            members.len() >= 2,
            "a non-face constraint needs >= 2 members"
        );
        self.nonfaces.push(BitSet::from_indices(self.n, members));
        ConstraintRef::NonFace(self.nonfaces.len() - 1)
    }

    /// The face constraints.
    pub fn faces(&self) -> &[FaceConstraint] {
        &self.faces
    }

    /// The dominance constraints as `(above, below)` pairs.
    pub fn dominances(&self) -> &[(usize, usize)] {
        &self.dominances
    }

    /// The disjunctive constraints as `(parent, children)` views.
    pub fn disjunctives(&self) -> impl Iterator<Item = (usize, &[usize])> {
        self.disjunctives
            .iter()
            .map(|d| (d.parent, d.children.as_slice()))
    }

    /// The extended disjunctive constraints as `(parent, conjunctions)`.
    pub fn extended_disjunctives(&self) -> impl Iterator<Item = (usize, &[Vec<usize>])> {
        self.extended
            .iter()
            .map(|e| (e.parent, e.conjunctions.as_slice()))
    }

    /// The distance-2 pairs.
    pub fn distance2_pairs(&self) -> &[(usize, usize)] {
        &self.distance2
    }

    /// The non-face constraints.
    pub fn nonfaces(&self) -> &[BitSet] {
        &self.nonfaces
    }

    /// The source span of a constraint, when it was attached by
    /// [`ConstraintSet::parse`] (or [`ConstraintSet::set_span`]).
    pub fn span_of(&self, r: ConstraintRef) -> Option<Span> {
        self.spans.get(&r).copied()
    }

    /// Attaches a source span to a constraint. Parsers use this to let
    /// lint diagnostics point back into the input text.
    ///
    /// # Panics
    ///
    /// Panics if `r` does not refer to an existing constraint.
    pub fn set_span(&mut self, r: ConstraintRef, span: Span) {
        let count = match r {
            ConstraintRef::Face(_) => self.faces.len(),
            ConstraintRef::Dominance(_) => self.dominances.len(),
            ConstraintRef::Disjunctive(_) => self.disjunctives.len(),
            ConstraintRef::Extended(_) => self.extended.len(),
            ConstraintRef::Distance2(_) => self.distance2.len(),
            ConstraintRef::NonFace(_) => self.nonfaces.len(),
        };
        assert!(r.index() < count, "no such constraint: {r:?}");
        self.spans.insert(r, span);
    }

    /// Every constraint in canonical order: faces, dominances,
    /// disjunctives, extended disjunctives, distance-2, non-faces, each in
    /// insertion order. This is the deterministic ordering the lint
    /// subsystem and the conflict-core search iterate in.
    pub fn constraint_refs(&self) -> Vec<ConstraintRef> {
        let mut out = Vec::with_capacity(self.len());
        out.extend((0..self.faces.len()).map(ConstraintRef::Face));
        out.extend((0..self.dominances.len()).map(ConstraintRef::Dominance));
        out.extend((0..self.disjunctives.len()).map(ConstraintRef::Disjunctive));
        out.extend((0..self.extended.len()).map(ConstraintRef::Extended));
        out.extend((0..self.distance2.len()).map(ConstraintRef::Distance2));
        out.extend((0..self.nonfaces.len()).map(ConstraintRef::NonFace));
        out
    }

    /// Renders a single constraint in the text-format syntax (the same
    /// notation `Display` uses for the whole set).
    ///
    /// # Panics
    ///
    /// Panics if `r` does not refer to an existing constraint.
    pub fn describe(&self, r: ConstraintRef) -> String {
        let name = |s: usize| self.names[s].as_str();
        match r {
            ConstraintRef::Face(i) => {
                let fc = &self.faces[i];
                let members: Vec<&str> = fc.members.iter().map(name).collect();
                if fc.dont_cares.is_empty() {
                    format!("({})", members.join(","))
                } else {
                    let dcs: Vec<&str> = fc.dont_cares.iter().map(name).collect();
                    format!("({},[{}])", members.join(","), dcs.join(","))
                }
            }
            ConstraintRef::Dominance(i) => {
                let (a, b) = self.dominances[i];
                format!("{}>{}", name(a), name(b))
            }
            ConstraintRef::Disjunctive(i) => {
                let d = &self.disjunctives[i];
                let children: Vec<&str> = d.children.iter().map(|&c| name(c)).collect();
                format!("{}={}", name(d.parent), children.join("|"))
            }
            ConstraintRef::Extended(i) => {
                let e = &self.extended[i];
                let terms: Vec<String> = e
                    .conjunctions
                    .iter()
                    .map(|c| {
                        let syms: Vec<&str> = c.iter().map(|&s| name(s)).collect();
                        format!("({})", syms.join("&"))
                    })
                    .collect();
                format!("{}>={}", terms.join("|"), name(e.parent))
            }
            ConstraintRef::Distance2(i) => {
                let (a, b) = self.distance2[i];
                format!("dist2({},{})", name(a), name(b))
            }
            ConstraintRef::NonFace(i) => {
                let members: Vec<&str> = self.nonfaces[i].iter().map(name).collect();
                format!("!({})", members.join(","))
            }
        }
    }

    /// A constraint set over the same symbols keeping only the constraints
    /// in `keep` (in canonical order, regardless of the order of `keep`).
    /// Source spans are carried over. The conflict-core search shrinks an
    /// infeasible set by repeatedly re-checking feasibility of subsets.
    ///
    /// # Panics
    ///
    /// Panics if a reference does not refer to an existing constraint.
    pub fn subset(&self, keep: &[ConstraintRef]) -> ConstraintSet {
        let mut refs: Vec<ConstraintRef> = keep.to_vec();
        refs.sort();
        refs.dedup();
        let mut out = ConstraintSet::with_names(self.names.clone());
        for &r in &refs {
            let new_ref = match r {
                ConstraintRef::Face(i) => {
                    let fc = &self.faces[i];
                    out.add_face_with_dc(fc.members.iter(), fc.dont_cares.iter())
                }
                ConstraintRef::Dominance(i) => {
                    let (a, b) = self.dominances[i];
                    out.add_dominance(a, b)
                }
                ConstraintRef::Disjunctive(i) => {
                    let d = &self.disjunctives[i];
                    out.add_disjunctive(d.parent, d.children.iter().copied())
                }
                ConstraintRef::Extended(i) => {
                    let e = &self.extended[i];
                    out.add_extended(e.parent, e.conjunctions.iter().cloned())
                }
                ConstraintRef::Distance2(i) => {
                    let (a, b) = self.distance2[i];
                    out.add_distance2(a, b)
                }
                ConstraintRef::NonFace(i) => out.add_nonface(self.nonfaces[i].iter()),
            };
            if let Some(span) = self.span_of(r) {
                out.set_span(new_ref, span);
            }
        }
        out
    }

    /// `true` if any output constraint (dominance, disjunctive, extended)
    /// is present; when none is, the left/right symmetry of dichotomies can
    /// be broken (footnote 4 of the paper).
    pub fn has_output_constraints(&self) -> bool {
        !self.dominances.is_empty() || !self.disjunctives.is_empty() || !self.extended.is_empty()
    }

    /// `true` if distance-2 or non-face constraints require the binate
    /// covering path.
    pub fn has_binate_constraints(&self) -> bool {
        !self.distance2.is_empty() || !self.nonfaces.is_empty()
    }

    /// Total number of constraints of all kinds.
    pub fn len(&self) -> usize {
        self.faces.len()
            + self.dominances.len()
            + self.disjunctives.len()
            + self.extended.len()
            + self.distance2.len()
            + self.nonfaces.len()
    }

    /// `true` if no constraint has been added.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Dominance pairs including those implied by disjunctive constraints:
    /// `p = a ∨ b` implies `p > a` and `p > b`.
    pub fn all_dominances(&self) -> Vec<(usize, usize)> {
        let mut out = self.dominances.clone();
        for d in &self.disjunctives {
            for &c in &d.children {
                out.push((d.parent, c));
            }
        }
        out
    }

    /// Restricts the constraint set to `symbols`, renumbering them
    /// `0..symbols.len()` in the given order. Face constraints keep the
    /// members/don't cares that survive; those left with fewer than two
    /// members are dropped (their restriction is vacuous). Output
    /// constraints are kept only when all their symbols survive.
    ///
    /// Returns the restricted set; `symbols[i]` is the original index of
    /// new symbol `i`.
    ///
    /// # Panics
    ///
    /// Panics if `symbols` contains an out-of-range or duplicate index.
    pub fn restrict(&self, symbols: &[usize]) -> ConstraintSet {
        let mut map = vec![usize::MAX; self.n];
        for (new, &old) in symbols.iter().enumerate() {
            self.check(old);
            assert!(map[old] == usize::MAX, "duplicate symbol {old}");
            map[old] = new;
        }
        let mut out =
            ConstraintSet::with_names(symbols.iter().map(|&s| self.names[s].clone()).collect());
        for f in &self.faces {
            let members: Vec<usize> = f
                .members
                .iter()
                .filter(|&s| map[s] != usize::MAX)
                .map(|s| map[s])
                .collect();
            if members.len() < 2 {
                continue;
            }
            let dcs: Vec<usize> = f
                .dont_cares
                .iter()
                .filter(|&s| map[s] != usize::MAX)
                .map(|s| map[s])
                .collect();
            out.add_face_with_dc(members, dcs);
        }
        for &(a, b) in &self.dominances {
            if map[a] != usize::MAX && map[b] != usize::MAX {
                out.add_dominance(map[a], map[b]);
            }
        }
        for d in &self.disjunctives {
            if map[d.parent] != usize::MAX && d.children.iter().all(|&c| map[c] != usize::MAX) {
                out.add_disjunctive(map[d.parent], d.children.iter().map(|&c| map[c]));
            }
        }
        for e in &self.extended {
            if map[e.parent] != usize::MAX
                && e.conjunctions
                    .iter()
                    .all(|c| c.iter().all(|&s| map[s] != usize::MAX))
            {
                out.add_extended(
                    map[e.parent],
                    e.conjunctions
                        .iter()
                        .map(|c| c.iter().map(|&s| map[s]).collect::<Vec<_>>()),
                );
            }
        }
        for &(a, b) in &self.distance2 {
            if map[a] != usize::MAX && map[b] != usize::MAX {
                out.add_distance2(map[a], map[b]);
            }
        }
        for nf in &self.nonfaces {
            let members: Vec<usize> = nf
                .iter()
                .filter(|&s| map[s] != usize::MAX)
                .map(|s| map[s])
                .collect();
            if members.len() == nf.count() {
                out.add_nonface(members);
            }
        }
        out
    }

    /// Parses a constraint set from the line-based text format:
    ///
    /// ```text
    /// (a,b,c)            # face constraint
    /// (a,b,[c,d],e)      # face constraint with encoding don't cares
    /// a>b                # dominance
    /// a=b|c              # disjunctive
    /// (b&c)|(d&e)>=a     # extended disjunctive
    /// dist2(a,b)         # distance-2
    /// !(a,b,c)           # non-face
    /// ```
    ///
    /// Every parsed constraint carries a [`Span`] (1-based line/column)
    /// pointing back into `text`, retrievable via
    /// [`ConstraintSet::span_of`] — this is what lets
    /// [`lint`](crate::lint) diagnostics name the offending source lines.
    ///
    /// # Errors
    ///
    /// [`EncodeError::Parse`] naming the offending line and column on any
    /// syntax error or unknown symbol.
    pub fn parse(names: &[&str], text: &str) -> Result<Self, EncodeError> {
        let mut cs = ConstraintSet::with_names(names.iter().map(|s| s.to_string()).collect());
        for (ln, raw) in text.lines().enumerate() {
            let content = raw.split('#').next().unwrap_or("");
            let line = content.trim();
            if line.is_empty() {
                continue;
            }
            let col = content.len() - content.trim_start().len() + 1;
            let r = cs
                .parse_line(line)
                .map_err(|e| EncodeError::parse(format!("line {}, column {col}: {e}", ln + 1)))?;
            cs.set_span(
                r,
                Span {
                    line: (ln + 1) as u32,
                    col: col as u32,
                    len: line.len() as u32,
                },
            );
        }
        Ok(cs)
    }

    /// Parses and appends a single constraint in the [`parse`](Self::parse)
    /// line grammar (comments stripped), returning its reference. No
    /// [`Span`] is attached — the line has no surrounding source text.
    /// This is how [`Session`](crate::Session) deltas grow a set.
    ///
    /// # Errors
    ///
    /// [`EncodeError::Parse`] on a syntax error, an unknown symbol, or an
    /// empty line.
    pub fn add_line(&mut self, line: &str) -> Result<ConstraintRef, EncodeError> {
        let content = line.split('#').next().unwrap_or("").trim();
        if content.is_empty() {
            return Err(EncodeError::parse("empty constraint line"));
        }
        self.parse_line(content).map_err(EncodeError::parse)
    }

    fn lookup(&self, name: &str) -> Result<usize, String> {
        let name = name.trim();
        self.symbol(name)
            .ok_or_else(|| format!("unknown symbol '{name}'"))
    }

    fn parse_line(&mut self, line: &str) -> Result<ConstraintRef, String> {
        if let Some(rest) = line.strip_prefix("dist2(") {
            let inner = rest
                .strip_suffix(')')
                .ok_or("missing ')' in dist2 constraint")?;
            let parts: Vec<&str> = inner.split(',').collect();
            if parts.len() != 2 {
                return Err("dist2 takes exactly two symbols".into());
            }
            let a = self.lookup(parts[0])?;
            let b = self.lookup(parts[1])?;
            if a == b {
                return Err("dist2 symbols must differ".into());
            }
            return Ok(self.add_distance2(a, b));
        }
        if let Some(rest) = line.strip_prefix("!(") {
            let inner = rest
                .strip_suffix(')')
                .ok_or("missing ')' in non-face constraint")?;
            let members = self.parse_symbol_list(inner)?;
            if members.len() < 2 {
                return Err("a non-face constraint needs >= 2 symbols".into());
            }
            return Ok(self.add_nonface(members));
        }
        if let Some((lhs, rhs)) = line.split_once(">=") {
            // Extended disjunctive: (b&c)|(d&e)>=a
            let parent = self.lookup(rhs)?;
            let mut conjunctions = Vec::new();
            for term in lhs.split('|') {
                let term = term.trim();
                let term = term
                    .strip_prefix('(')
                    .and_then(|t| t.strip_suffix(')'))
                    .unwrap_or(term);
                let mut conj = Vec::new();
                for s in term.split('&') {
                    conj.push(self.lookup(s)?);
                }
                if conj.is_empty() {
                    return Err("empty conjunction".into());
                }
                conjunctions.push(conj);
            }
            if conjunctions.is_empty() {
                return Err("empty extended disjunction".into());
            }
            return Ok(self.add_extended(parent, conjunctions));
        }
        if let Some((lhs, rhs)) = line.split_once('=') {
            let parent = self.lookup(lhs)?;
            let mut children = Vec::new();
            for s in rhs.split('|') {
                children.push(self.lookup(s)?);
            }
            if children.len() < 2 {
                return Err("a disjunction needs >= 2 children".into());
            }
            if children.contains(&parent) {
                return Err("parent cannot be its own child".into());
            }
            return Ok(self.add_disjunctive(parent, children));
        }
        if let Some((lhs, rhs)) = line.split_once('>') {
            let a = self.lookup(lhs)?;
            let b = self.lookup(rhs)?;
            if a == b {
                return Err("a symbol cannot dominate itself".into());
            }
            return Ok(self.add_dominance(a, b));
        }
        if let Some(rest) = line.strip_prefix('(') {
            let inner = rest
                .strip_suffix(')')
                .ok_or("missing ')' in face constraint")?;
            // Split members from an optional [dc,...] group.
            let mut members = Vec::new();
            let mut dcs = Vec::new();
            let mut rest = inner;
            while !rest.is_empty() {
                if let Some(after) = rest.strip_prefix('[') {
                    let (group, tail) = after
                        .split_once(']')
                        .ok_or("missing ']' in don't-care group")?;
                    dcs.extend(self.parse_symbol_list(group)?);
                    rest = tail.trim_start_matches(',').trim();
                } else {
                    let (tok, tail) = match rest.find([',', '[']) {
                        Some(i) if rest.as_bytes()[i] == b'[' => (&rest[..i], &rest[i..]),
                        Some(i) => (&rest[..i], &rest[i + 1..]),
                        None => (rest, ""),
                    };
                    let tok = tok.trim().trim_matches(',');
                    if !tok.is_empty() {
                        members.push(self.lookup(tok)?);
                    }
                    rest = tail.trim();
                }
            }
            if members.len() < 2 {
                return Err("a face constraint needs >= 2 members".into());
            }
            for &d in &dcs {
                if members.contains(&d) {
                    return Err("don't care repeats a member".into());
                }
            }
            return Ok(self.add_face_with_dc(members, dcs));
        }
        Err(format!("unrecognized constraint '{line}'"))
    }

    fn parse_symbol_list(&self, s: &str) -> Result<Vec<usize>, String> {
        s.split(',')
            .map(|t| self.lookup(t))
            .collect::<Result<Vec<_>, _>>()
    }

    /// Renders a symbol set like `{a, c}` using the symbol names.
    pub fn format_symbols(&self, set: &BitSet) -> String {
        let names: Vec<&str> = set.iter().map(|s| self.names[s].as_str()).collect();
        format!("{{{}}}", names.join(", "))
    }
}

impl fmt::Display for ConstraintSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for fc in &self.faces {
            let members: Vec<&str> = fc.members.iter().map(|s| self.names[s].as_str()).collect();
            if fc.dont_cares.is_empty() {
                writeln!(f, "({})", members.join(","))?;
            } else {
                let dcs: Vec<&str> = fc
                    .dont_cares
                    .iter()
                    .map(|s| self.names[s].as_str())
                    .collect();
                writeln!(f, "({},[{}])", members.join(","), dcs.join(","))?;
            }
        }
        for &(a, b) in &self.dominances {
            writeln!(f, "{}>{}", self.names[a], self.names[b])?;
        }
        for d in &self.disjunctives {
            let children: Vec<&str> = d.children.iter().map(|&c| self.names[c].as_str()).collect();
            writeln!(f, "{}={}", self.names[d.parent], children.join("|"))?;
        }
        for e in &self.extended {
            let terms: Vec<String> = e
                .conjunctions
                .iter()
                .map(|c| {
                    let syms: Vec<&str> = c.iter().map(|&s| self.names[s].as_str()).collect();
                    format!("({})", syms.join("&"))
                })
                .collect();
            writeln!(f, "{}>={}", terms.join("|"), self.names[e.parent])?;
        }
        for &(a, b) in &self.distance2 {
            writeln!(f, "dist2({},{})", self.names[a], self.names[b])?;
        }
        for nf in &self.nonfaces {
            let members: Vec<&str> = nf.iter().map(|s| self.names[s].as_str()).collect();
            writeln!(f, "!({})", members.join(","))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_and_accessors() {
        let mut cs = ConstraintSet::new(5);
        cs.add_face([0, 1, 2]);
        cs.add_face_with_dc([0, 3], [4]);
        cs.add_dominance(0, 1);
        cs.add_disjunctive(0, [1, 2]);
        cs.add_extended(4, [vec![0, 1], vec![2, 3]]);
        cs.add_distance2(1, 3);
        cs.add_nonface([2, 3]);
        assert_eq!(cs.len(), 7);
        assert!(cs.has_output_constraints());
        assert!(cs.has_binate_constraints());
        assert_eq!(cs.faces().len(), 2);
        assert_eq!(cs.all_dominances().len(), 3);
        assert_eq!(cs.name(0), "s0");
        assert_eq!(cs.symbol("s3"), Some(3));
        assert_eq!(cs.symbol("zz"), None);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn face_rejects_bad_symbol() {
        ConstraintSet::new(2).add_face([0, 5]);
    }

    #[test]
    #[should_panic(expected = "dominate itself")]
    fn dominance_rejects_self() {
        ConstraintSet::new(2).add_dominance(1, 1);
    }

    #[test]
    fn parse_round_trip() {
        let names = ["a", "b", "c", "d", "e"];
        let text = "(a,b,c)\n(a,d,[e])\na>b\nb=c|d\n(a&b)|(c&d)>=e\ndist2(a,c)\n!(b,c)";
        let cs = ConstraintSet::parse(&names, text).unwrap();
        assert_eq!(cs.faces().len(), 2);
        assert_eq!(cs.dominances(), &[(0, 1)]);
        let disj: Vec<_> = cs.disjunctives().collect();
        assert_eq!(disj, vec![(1, &[2usize, 3][..])]);
        let ext: Vec<_> = cs.extended_disjunctives().collect();
        assert_eq!(ext.len(), 1);
        assert_eq!(ext[0].0, 4);
        assert_eq!(cs.distance2_pairs(), &[(0, 2)]);
        assert_eq!(cs.nonfaces().len(), 1);
        // Display is re-parseable.
        let text2 = cs.to_string();
        let cs2 = ConstraintSet::parse(&names, &text2).unwrap();
        assert_eq!(cs2.to_string(), text2);
    }

    #[test]
    fn parse_dont_care_group() {
        let cs = ConstraintSet::parse(&["a", "b", "c", "d", "e"], "(a,b,[c,d],e)").unwrap();
        let f = &cs.faces()[0];
        assert_eq!(f.members.iter().collect::<Vec<_>>(), vec![0, 1, 4]);
        assert_eq!(f.dont_cares.iter().collect::<Vec<_>>(), vec![2, 3]);
    }

    #[test]
    fn parse_errors_are_reported_with_lines() {
        let err = ConstraintSet::parse(&["a", "b"], "(a,b)\n(a,q)").unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("line 2"), "{msg}");
        assert!(msg.contains("unknown symbol"), "{msg}");
        assert!(ConstraintSet::parse(&["a", "b"], "a>a").is_err());
        assert!(ConstraintSet::parse(&["a", "b"], "(a)").is_err());
        assert!(ConstraintSet::parse(&["a", "b"], "junk").is_err());
        assert!(ConstraintSet::parse(&["a", "b"], "a=b").is_err());
        assert!(ConstraintSet::parse(&["a", "b"], "dist2(a,a)").is_err());
    }

    #[test]
    fn parse_skips_comments_and_blanks() {
        let cs = ConstraintSet::parse(&["a", "b", "c"], "# hi\n\n(a,b) # trailing\n").unwrap();
        assert_eq!(cs.faces().len(), 1);
    }

    #[test]
    fn restrict_remaps_and_filters() {
        let mut cs = ConstraintSet::new(5);
        cs.add_face([0, 1, 2]);
        cs.add_face([3, 4]);
        cs.add_dominance(0, 4);
        cs.add_dominance(1, 2);
        cs.add_disjunctive(0, [1, 2]);
        let r = cs.restrict(&[2, 1, 0]);
        assert_eq!(r.num_symbols(), 3);
        // Face (0,1,2) survives fully as {2,1,0} renamed.
        assert_eq!(r.faces().len(), 1);
        assert_eq!(r.faces()[0].members.count(), 3);
        // (0,4) dropped, (1,2) kept as (1,0) in new numbering.
        assert_eq!(r.dominances(), &[(1, 0)]);
        // Disjunctive kept: parent 0 -> new 2, children 1 -> 1, 2 -> 0.
        let disj: Vec<_> = r.disjunctives().collect();
        assert_eq!(disj, vec![(2, &[1usize, 0][..])]);
        assert_eq!(r.name(0), "s2");
    }

    #[test]
    fn parse_attaches_spans() {
        let cs = ConstraintSet::parse(
            &["a", "b", "c"],
            "# header\n(a,b)\n  a>c   # indented\n\ndist2(b,c)",
        )
        .unwrap();
        assert_eq!(
            cs.span_of(ConstraintRef::Face(0)),
            Some(Span {
                line: 2,
                col: 1,
                len: 5
            })
        );
        assert_eq!(
            cs.span_of(ConstraintRef::Dominance(0)),
            Some(Span {
                line: 3,
                col: 3,
                len: 3
            })
        );
        assert_eq!(
            cs.span_of(ConstraintRef::Distance2(0)),
            Some(Span {
                line: 5,
                col: 1,
                len: 10
            })
        );
        // Builder-added constraints carry no span.
        let mut built = ConstraintSet::new(2);
        let r = built.add_face([0, 1]);
        assert_eq!(built.span_of(r), None);
    }

    #[test]
    fn parse_errors_name_line_and_column() {
        let err = ConstraintSet::parse(&["a", "b"], "(a,b)\n   (a,q)").unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("line 2, column 4"), "{msg}");
    }

    #[test]
    fn describe_renders_each_kind() {
        let names = ["a", "b", "c", "d", "e"];
        let text = "(a,b,[c])\na>b\nb=c|d\n(a&b)|(c&d)>=e\ndist2(a,c)\n!(b,c)";
        let cs = ConstraintSet::parse(&names, text).unwrap();
        let rendered: Vec<String> = cs
            .constraint_refs()
            .iter()
            .map(|&r| cs.describe(r))
            .collect();
        assert_eq!(
            rendered,
            vec![
                "(a,b,[c])",
                "a>b",
                "b=c|d",
                "(a&b)|(c&d)>=e",
                "dist2(a,c)",
                "!(b,c)"
            ]
        );
    }

    #[test]
    fn subset_keeps_selected_constraints_and_spans() {
        let names = ["a", "b", "c", "d"];
        let cs = ConstraintSet::parse(&names, "(a,b)\n(c,d)\na>b\nb=c|d").unwrap();
        let sub = cs.subset(&[ConstraintRef::Face(1), ConstraintRef::Dominance(0)]);
        assert_eq!(sub.len(), 2);
        assert_eq!(sub.faces().len(), 1);
        assert_eq!(sub.dominances(), &[(0, 1)]);
        assert!(sub.disjunctives().next().is_none());
        // The surviving face was on line 2 of the original text.
        assert_eq!(sub.span_of(ConstraintRef::Face(0)).map(|s| s.line), Some(2));
        // Duplicated refs collapse.
        let sub2 = cs.subset(&[ConstraintRef::Face(0), ConstraintRef::Face(0)]);
        assert_eq!(sub2.len(), 1);
    }

    #[test]
    fn restrict_drops_single_member_faces() {
        let mut cs = ConstraintSet::new(4);
        cs.add_face([0, 1]);
        let r = cs.restrict(&[0, 2]);
        assert!(r.faces().is_empty());
    }
}
