//! Validity and maximal raising of encoding-dichotomies with respect to
//! output constraints (Definitions 3.6, 6.1, 6.2 and Figure 5).

use crate::lattice::RaiseAtom;
use crate::{ConstraintSet, Dichotomy};

/// Tests whether a dichotomy violates any output constraint
/// (Definition 3.6). The conditions are *monotone*: once violated, no
/// raising can repair a dichotomy, so invalid dichotomies may be deleted at
/// any stage.
///
/// * Dominance `a > b` (including the dominances implied by disjunctive
///   constraints): violated when `a` is in the left block and `b` in the
///   right block (bit 0 cannot cover bit 1).
/// * Disjunctive `p = ⋁ children`: violated when `p` is in the right block
///   while every child is in the left block (1 ≠ OR of 0s).
/// * Extended disjunctive `⋁ᵢ ⋀ conjᵢ >= p`: violated when `p` is in the
///   right block while every conjunction has a child in the left block.
///
/// # Examples
///
/// ```
/// use ioenc_core::{is_valid, ConstraintSet, Dichotomy};
///
/// let cs = ConstraintSet::parse(&["s0", "s1", "s5"], "s0>s1").unwrap();
/// // (s0; s1 s5) puts s0 at 0 and s1 at 1: s0 cannot cover s1.
/// let d = Dichotomy::from_blocks(3, [0], [1, 2]);
/// assert!(!is_valid(&d, &cs));
/// assert!(is_valid(&d.flipped(), &cs));
/// ```
pub fn is_valid(d: &Dichotomy, cs: &ConstraintSet) -> bool {
    for (a, b) in cs.all_dominances() {
        if d.in_left(a) && d.in_right(b) {
            return false;
        }
    }
    for (parent, children) in cs.disjunctives() {
        if d.in_right(parent) && children.iter().all(|&c| d.in_left(c)) {
            return false;
        }
    }
    for (parent, conjunctions) in cs.extended_disjunctives() {
        if d.in_right(parent)
            && conjunctions
                .iter()
                .all(|conj| conj.iter().any(|&s| d.in_left(s)))
        {
            return false;
        }
    }
    true
}

/// Maximally raises a dichotomy (Definition 6.2, procedure
/// `raise_dichotomy` of Figure 5): repeatedly inserts the symbols implied
/// by the output constraints until a fixpoint.
///
/// Rules applied to fixpoint (with `a > b` ranging over explicit and
/// implied dominances):
///
/// * `a ∈ left  ⇒ b ∈ left` (a 0 forces its dominated codes to 0);
/// * `b ∈ right ⇒ a ∈ right`;
/// * disjunctive `p = ⋁ c`: all children left ⇒ `p` left; `p` right with
///   all children but one left ⇒ last child right;
/// * extended `⋁ ⋀ >= p`: every conjunction has a left child ⇒ `p` left;
///   `p` right with all conjunctions but one killed ⇒ the surviving
///   conjunction's children all right.
///
/// Returns `None` when an implied insertion conflicts with the other block
/// — the dichotomy is invalid and must be deleted (Theorem 6.1).
pub fn raise_dichotomy(d: &Dichotomy, cs: &ConstraintSet) -> Option<Dichotomy> {
    raise_dichotomy_traced(d, cs, &mut |_| {})
}

/// [`raise_dichotomy`] with a derivation trace: `trace` receives the
/// [`RaiseAtom`] of every rule that fires (changes the partial dichotomy)
/// or derives the conflict behind a `None` return.
///
/// The trace is what makes raises reusable across constraint deltas
/// (see [`lattice`](crate::lattice)): removing a constraint whose atom
/// never fired leaves the recorded derivation — and hence the fixpoint —
/// untouched. Rules whose conclusions already held are *not* recorded;
/// that is conservative, since a rule that never changed anything cannot
/// have shaped the result.
pub(crate) fn raise_dichotomy_traced(
    d: &Dichotomy,
    cs: &ConstraintSet,
    trace: &mut dyn FnMut(RaiseAtom),
) -> Option<Dichotomy> {
    let mut d = d.clone();
    let dominances = cs.all_dominances();
    loop {
        let mut changed = false;
        for &(a, b) in &dominances {
            if d.in_left(a) && !d.in_left(b) {
                trace(RaiseAtom::Dominance(a, b));
                if !d.insert_left(b) {
                    return None;
                }
                changed = true;
            }
            if d.in_right(b) && !d.in_right(a) {
                trace(RaiseAtom::Dominance(a, b));
                if !d.insert_right(a) {
                    return None;
                }
                changed = true;
            }
        }
        for (parent, children) in cs.disjunctives() {
            if children.iter().all(|&c| d.in_left(c)) && !d.in_left(parent) {
                trace(RaiseAtom::Disjunctive(parent, children.to_vec()));
                if !d.insert_left(parent) {
                    return None;
                }
                changed = true;
            }
            if d.in_right(parent) {
                let unassigned_or_right: Vec<usize> = children
                    .iter()
                    .copied()
                    .filter(|&c| !d.in_left(c))
                    .collect();
                if unassigned_or_right.len() == 1 && !d.in_right(unassigned_or_right[0]) {
                    trace(RaiseAtom::Disjunctive(parent, children.to_vec()));
                    if !d.insert_right(unassigned_or_right[0]) {
                        return None;
                    }
                    changed = true;
                }
                if unassigned_or_right.is_empty() {
                    trace(RaiseAtom::Disjunctive(parent, children.to_vec()));
                    return None; // 1 = OR of 0s
                }
            }
        }
        for (parent, conjunctions) in cs.extended_disjunctives() {
            let killed = |conj: &[usize]| conj.iter().any(|&s| d.in_left(s));
            if conjunctions.iter().all(|c| killed(c)) {
                if d.in_right(parent) {
                    trace(RaiseAtom::Extended(parent, conjunctions.to_vec()));
                    return None;
                }
                if !d.in_left(parent) {
                    trace(RaiseAtom::Extended(parent, conjunctions.to_vec()));
                    d.insert_left(parent);
                    changed = true;
                }
            } else if d.in_right(parent) {
                let alive: Vec<&Vec<usize>> = conjunctions.iter().filter(|c| !killed(c)).collect();
                if alive.len() == 1 {
                    for &s in alive[0] {
                        if !d.in_right(s) {
                            trace(RaiseAtom::Extended(parent, conjunctions.to_vec()));
                            if !d.insert_right(s) {
                                return None;
                            }
                            changed = true;
                        }
                    }
                }
            }
        }
        if !changed {
            break;
        }
    }
    debug_assert!(is_valid(&d, cs));
    Some(d)
}

/// Filters to the valid dichotomies, maximally raised; invalid ones are
/// dropped (the `D` set of Theorem 6.1). The result is deduplicated.
pub(crate) fn raised_valid(dichotomies: &[Dichotomy], cs: &ConstraintSet) -> Vec<Dichotomy> {
    let mut out: Vec<Dichotomy> = dichotomies
        .iter()
        .filter(|d| is_valid(d, cs))
        .filter_map(|d| raise_dichotomy(d, cs))
        .collect();
    out.sort();
    out.dedup();
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn figure_4_constraints() -> ConstraintSet {
        let names = ["s0", "s1", "s2", "s3", "s4", "s5"];
        ConstraintSet::parse(
            &names,
            "(s1,s5)\n(s2,s5)\n(s4,s5)\n\
             s0>s1\ns0>s2\ns0>s3\ns0>s5\ns1>s3\ns2>s3\ns4>s5\ns5>s2\ns5>s3\n\
             s0=s1|s2",
        )
        .unwrap()
    }

    #[test]
    fn figure_4_invalid_dichotomy_deleted() {
        let cs = figure_4_constraints();
        // (s0; s1 s5) conflicts with s0 > s1.
        let d = Dichotomy::from_blocks(6, [0], [1, 5]);
        assert!(!is_valid(&d, &cs));
        // (s1 s5; s0) is valid.
        assert!(is_valid(&d.flipped(), &cs));
    }

    #[test]
    fn figure_4_raising_example() {
        // The paper raises (s1; s2 s5) to (s1 s3; s0 s2 s4 s5).
        let cs = figure_4_constraints();
        let d = Dichotomy::from_blocks(6, [1], [2, 5]);
        let raised = raise_dichotomy(&d, &cs).expect("valid");
        assert_eq!(raised, Dichotomy::from_blocks(6, [1, 3], [0, 2, 4, 5]));
    }

    #[test]
    fn figure_4_all_raised_dichotomies() {
        // The paper lists 6 raised dichotomies for Figure 4.
        let cs = figure_4_constraints();
        let initial = crate::initial_dichotomies(&cs, false);
        let raised = raised_valid(&initial, &cs);
        let expected = [
            Dichotomy::from_blocks(6, [1, 3], [0, 2, 4, 5]),
            Dichotomy::from_blocks(6, [2, 3], [0, 1, 4, 5]),
            Dichotomy::from_blocks(6, [2, 3, 4, 5], [0, 1]),
            Dichotomy::from_blocks(6, [0, 1, 2, 3, 5], [4]),
            Dichotomy::from_blocks(6, [2, 3, 5], [0, 1]),
            Dichotomy::from_blocks(6, [2, 3, 5], [4]),
        ];
        for e in &expected {
            assert!(raised.contains(e), "missing raised dichotomy {e:?}");
        }
        // The figure's list is illustrative, not exhaustive; the fixpoint
        // also yields a few valid raised dichotomies with only s3 in the
        // left block. All results must be valid and raise-closed.
        for d in &raised {
            assert!(is_valid(d, &cs));
            assert_eq!(raise_dichotomy(d, &cs).as_ref(), Some(d));
        }
    }

    #[test]
    fn disjunctive_all_children_left_forces_parent_left() {
        let cs = ConstraintSet::parse(&["p", "a", "b"], "p=a|b").unwrap();
        let d = Dichotomy::from_blocks(3, [1, 2], []);
        let raised = raise_dichotomy(&d, &cs).unwrap();
        assert!(raised.in_left(0));
    }

    #[test]
    fn disjunctive_parent_right_forces_last_child_right() {
        let cs = ConstraintSet::parse(&["p", "a", "b"], "p=a|b").unwrap();
        let d = Dichotomy::from_blocks(3, [1], [0]);
        let raised = raise_dichotomy(&d, &cs).unwrap();
        assert!(raised.in_right(2));
    }

    #[test]
    fn disjunctive_conflict_is_detected() {
        let cs = ConstraintSet::parse(&["p", "a", "b"], "p=a|b").unwrap();
        // p at 1 with both children at 0 is hopeless.
        let d = Dichotomy::from_blocks(3, [1, 2], [0]);
        assert!(!is_valid(&d, &cs));
        assert!(raise_dichotomy(&d, &cs).is_none());
    }

    #[test]
    fn implied_dominance_from_disjunctive() {
        // p = a ∨ b implies p > a: p left forces a left.
        let cs = ConstraintSet::parse(&["p", "a", "b"], "p=a|b").unwrap();
        let d = Dichotomy::from_blocks(3, [0], []);
        let raised = raise_dichotomy(&d, &cs).unwrap();
        assert!(raised.in_left(1) && raised.in_left(2));
    }

    #[test]
    fn extended_raising_rules() {
        let names = ["a", "b", "c", "d", "e"];
        let cs = ConstraintSet::parse(&names, "(b&c)|(d&e)>=a").unwrap();
        // Both conjunctions killed → parent forced left.
        let d = Dichotomy::from_blocks(5, [1, 3], []);
        let raised = raise_dichotomy(&d, &cs).unwrap();
        assert!(raised.in_left(0));
        // Parent right, first conjunction killed → d and e forced right.
        let d = Dichotomy::from_blocks(5, [1], [0]);
        let raised = raise_dichotomy(&d, &cs).unwrap();
        assert!(raised.in_right(3) && raised.in_right(4));
        // Parent right, all conjunctions killed → invalid.
        let d = Dichotomy::from_blocks(5, [1, 3], [0]);
        assert!(raise_dichotomy(&d, &cs).is_none());
    }

    #[test]
    fn raising_is_idempotent() {
        let cs = figure_4_constraints();
        let initial = crate::initial_dichotomies(&cs, false);
        for d in initial.iter().filter(|d| is_valid(d, &cs)) {
            if let Some(r) = raise_dichotomy(d, &cs) {
                assert_eq!(raise_dichotomy(&r, &cs), Some(r.clone()));
            }
        }
    }
}
