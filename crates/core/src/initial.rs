//! Generation of the initial encoding-dichotomies (Section 5).

use crate::{ConstraintSet, Dichotomy};
use ioenc_bitset::BitSet;

/// Generates the initial encoding-dichotomies for a constraint set.
///
/// For every face constraint with members `F` (and don't cares `D`,
/// Section 8.1) and every outside symbol `s ∉ F ∪ D`, both orientations
/// `(F; s)` and `(s; F)` are produced; don't-care symbols generate no
/// dichotomy, leaving them free to join the face. Uniqueness dichotomies
/// (one symbol per block, both orientations) are added for every pair of
/// symbols not already separated by a face dichotomy.
///
/// When `symmetry_break` is set (sound only for problems with **no output
/// constraints** — footnote 4 of the paper), a *pin symbol* is chosen (the
/// symbol occurring in the most face constraints, as the paper pins `s1` in
/// Figure 3) and every dichotomy containing it keeps only the orientation
/// with the pin in the right block; dichotomies not containing the pin keep
/// both orientations. This halves much of the prime-generation work without
/// affecting the solution.
///
/// The result is deduplicated.
///
/// # Examples
///
/// ```
/// use ioenc_core::{initial_dichotomies, ConstraintSet};
///
/// // Figure 4 of the paper: 3 two-symbol faces over 6 symbols plus the
/// // uncovered pair (s0, s3) give 3·2·4 + 2 = 26 initial dichotomies.
/// let mut cs = ConstraintSet::new(6);
/// cs.add_face([1, 5]);
/// cs.add_face([2, 5]);
/// cs.add_face([4, 5]);
/// cs.add_dominance(0, 1); // any output constraint disables pinning
/// let dichotomies = initial_dichotomies(&cs, false);
/// assert_eq!(dichotomies.len(), 26);
/// ```
pub fn initial_dichotomies(cs: &ConstraintSet, symmetry_break: bool) -> Vec<Dichotomy> {
    let n = cs.num_symbols();
    let mut out: Vec<Dichotomy> = Vec::new();

    for fc in cs.faces() {
        let in_face = fc.members.union(&fc.dont_cares);
        for s in 0..n {
            if in_face.contains(s) {
                continue;
            }
            let d = Dichotomy::from_sets(fc.members.clone(), BitSet::from_indices(n, [s]));
            out.push(d.flipped());
            out.push(d);
        }
    }

    // Uniqueness constraints for pairs not separated by any face dichotomy.
    for a in 0..n {
        for b in (a + 1)..n {
            if out.iter().any(|d| d.separates(a, b)) {
                continue;
            }
            out.push(Dichotomy::from_blocks(n, [a], [b]));
            out.push(Dichotomy::from_blocks(n, [b], [a]));
        }
    }

    if symmetry_break {
        debug_assert!(
            !cs.has_output_constraints(),
            "symmetry breaking is unsound with output constraints"
        );
        let pin = pin_symbol(cs);
        out.retain(|d| !d.in_left(pin));
    }

    out.sort();
    out.dedup();
    out
}

/// The symbol pinned to the right block when breaking symmetry: the one
/// occurring in the most face constraints (ties toward the lowest index),
/// mirroring the paper's choice of `s1` in Figure 3.
pub(crate) fn pin_symbol(cs: &ConstraintSet) -> usize {
    let n = cs.num_symbols();
    let mut counts = vec![0usize; n];
    for fc in cs.faces() {
        for s in fc.members.iter() {
            counts[s] += 1;
        }
    }
    (0..n)
        .max_by_key(|&s| (counts[s], std::cmp::Reverse(s)))
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure_3_count_with_symmetry_breaking() {
        // Figure 3: faces (s0,s2,s4),(s0,s1,s4),(s1,s2,s3),(s1,s3,s4) over 5
        // symbols yield 9 initial dichotomies once the symmetry is broken by
        // pinning s1 (the most-constrained symbol, as in the paper).
        let mut cs = ConstraintSet::new(5);
        cs.add_face([0, 2, 4]);
        cs.add_face([0, 1, 4]);
        cs.add_face([1, 2, 3]);
        cs.add_face([1, 3, 4]);
        assert_eq!(pin_symbol(&cs), 1);
        let dichotomies = initial_dichotomies(&cs, true);
        assert_eq!(dichotomies.len(), 9);
        // Without symmetry breaking: 4 faces × 2 outsiders × 2 orientations.
        let all = initial_dichotomies(&cs, false);
        assert_eq!(all.len(), 16);
    }

    #[test]
    fn figure_4_has_26_dichotomies() {
        let mut cs = ConstraintSet::new(6);
        cs.add_face([1, 5]);
        cs.add_face([2, 5]);
        cs.add_face([4, 5]);
        cs.add_dominance(0, 1);
        let dichotomies = initial_dichotomies(&cs, false);
        assert_eq!(dichotomies.len(), 26);
        // The uncovered pair is (s0, s3).
        assert!(dichotomies.contains(&Dichotomy::from_blocks(6, [0], [3])));
        assert!(dichotomies.contains(&Dichotomy::from_blocks(6, [3], [0])));
    }

    #[test]
    fn no_constraints_gives_all_uniqueness_pairs() {
        let cs = ConstraintSet::new(4);
        let d = initial_dichotomies(&cs, false);
        // 4·3 ordered pairs.
        assert_eq!(d.len(), 12);
        // Pinning symbol 0 drops the 3 dichotomies with 0 in the left block.
        let pinned = initial_dichotomies(&cs, true);
        assert_eq!(pinned.len(), 9);
    }

    #[test]
    fn dont_cares_generate_no_outsider_dichotomy() {
        // (a, b, [c], d) over 5 symbols: only e is an outsider.
        let mut cs = ConstraintSet::new(5);
        cs.add_face_with_dc([0, 1, 3], [2]);
        let d = initial_dichotomies(&cs, false);
        let face_dichotomies: Vec<_> = d
            .iter()
            .filter(|d| d.left().count() == 3 || d.right().count() == 3)
            .collect();
        assert_eq!(face_dichotomies.len(), 2); // (F; e) and (e; F)
        for fd in face_dichotomies {
            assert!(!fd.assigns(2), "don't care symbol must stay free");
        }
    }

    #[test]
    fn every_pair_is_separated_by_some_initial_dichotomy() {
        let mut cs = ConstraintSet::new(6);
        cs.add_face([0, 1, 2]);
        cs.add_face([3, 4]);
        let d = initial_dichotomies(&cs, false);
        for a in 0..6 {
            for b in (a + 1)..6 {
                assert!(
                    d.iter().any(|x| x.separates(a, b)),
                    "pair ({a},{b}) unseparated"
                );
            }
        }
    }

    #[test]
    fn symmetry_breaking_keeps_pin_out_of_left_blocks() {
        let mut cs = ConstraintSet::new(4);
        cs.add_face([0, 1]);
        let pin = pin_symbol(&cs);
        let d = initial_dichotomies(&cs, true);
        for x in &d {
            assert!(!x.in_left(pin), "pin must never be in a left block: {x:?}");
        }
        // Pairs not involving the pin keep both orientations.
        assert!(d.contains(&Dichotomy::from_blocks(4, [2], [3])));
        assert!(d.contains(&Dichotomy::from_blocks(4, [3], [2])));
    }
}
