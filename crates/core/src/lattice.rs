//! The constraint-subset lattice: one incremental-reasoning core shared by
//! re-solve sessions and the lint conflict-core shrinker.
//!
//! Constraint sets over a fixed symbol universe form a lattice under
//! inclusion, and the quantities the encoding pipeline computes are
//! *monotone* along it:
//!
//! * **Validity is anti-monotone.** [`is_valid`](crate::is_valid) is a
//!   conjunction of per-constraint conditions, so removing a constraint can
//!   only keep or restore validity, and adding one can only keep or destroy
//!   it — an added constraint invalidates exactly the dichotomies its own
//!   condition rejects.
//! * **Raising is a monotone closure.** The fixpoint rules of
//!   [`raise_dichotomy`](crate::raise_dichotomy) only ever *insert* symbols,
//!   so the raise of a dichotomy under constraints `S ∪ A` equals the raise
//!   of its raise under `S` re-raised under `S ∪ A` (resume instead of
//!   restart), and under `S \ R` it is unchanged whenever no rule sourced
//!   from `R` fired in the recorded derivation ([`RaiseAtom`] trace).
//! * **Infeasibility is monotone.** If a subset of constraints is already
//!   unsatisfiable, every superset is — the upward-closed sets probed by the
//!   conflict-core deletion walk, served here by a memoizing
//!   [`SubsetOracle`] whose call counter still ticks once per probe so the
//!   walk's budget accounting (and the golden lint fixtures) are unchanged.
//!
//! [`DichotomyLattice`] packages the first two facts: a per-dichotomy raise
//! cache with derivation traces, plus the family of maximal compatibles
//! (the cliques of the raised-dichotomy compatibility graph) maintained
//! incrementally under vertex insertion and deletion. Since prime
//! encoding-dichotomies are exactly the unions of the maximal compatibles
//! (Section 5.1), a canonical clique family reproduces the prime set of
//! [`generate_primes`](crate::generate_primes) bit-for-bit — which is what
//! lets [`Session`](crate::Session) hand the exact pipeline precomputed
//! parts without perturbing its output.

use crate::raise::{is_valid, raise_dichotomy_traced};
use crate::{check_feasible, ConstraintRef, ConstraintSet, Dichotomy};
use std::collections::{BTreeSet, HashMap};

/// A content-keyed identity for one source of raise/validity rules.
///
/// Raise traces record atoms rather than [`ConstraintRef`]s because refs
/// are positional — they shift as constraints come and go — while atoms
/// compare by content across any two constraint sets over the same
/// symbols. Face, distance-2 and non-face constraints never participate in
/// validity or raising, so they have no atom: a delta touching only those
/// kinds invalidates no cached raise.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum RaiseAtom {
    /// A dominance pair `above > below` — explicit, or implied by a
    /// disjunctive constraint (see
    /// [`ConstraintSet::all_dominances`]).
    Dominance(usize, usize),
    /// A disjunctive constraint `parent = ⋁ children`.
    Disjunctive(usize, Vec<usize>),
    /// An extended disjunctive constraint `⋁ ⋀ conj >= parent`.
    Extended(usize, Vec<Vec<usize>>),
}

/// Every raise/validity rule source of `cs`, as a content-keyed set.
///
/// Dominance atoms use [`ConstraintSet::all_dominances`], so a pair that is
/// both explicit and implied by a disjunctive stays present (and keeps
/// cached raises valid) as long as *either* source survives a delta.
pub fn raise_atoms(cs: &ConstraintSet) -> BTreeSet<RaiseAtom> {
    let mut atoms = BTreeSet::new();
    for (a, b) in cs.all_dominances() {
        atoms.insert(RaiseAtom::Dominance(a, b));
    }
    for (parent, children) in cs.disjunctives() {
        atoms.insert(RaiseAtom::Disjunctive(parent, children.to_vec()));
    }
    for (parent, conjunctions) in cs.extended_disjunctives() {
        atoms.insert(RaiseAtom::Extended(parent, conjunctions.to_vec()));
    }
    atoms
}

/// Whether `atom`'s validity condition (Definition 3.6) rejects `d`.
///
/// Mirrors [`is_valid`](crate::is_valid) one constraint at a time, so a
/// dichotomy valid under `S` stays valid under `S ∪ A` exactly when no
/// added atom invalidates it.
fn atom_invalidates(d: &Dichotomy, atom: &RaiseAtom) -> bool {
    match atom {
        RaiseAtom::Dominance(a, b) => d.in_left(*a) && d.in_right(*b),
        RaiseAtom::Disjunctive(parent, children) => {
            d.in_right(*parent) && children.iter().all(|&c| d.in_left(c))
        }
        RaiseAtom::Extended(parent, conjunctions) => {
            d.in_right(*parent)
                && conjunctions
                    .iter()
                    .all(|conj| conj.iter().any(|&s| d.in_left(s)))
        }
    }
}

/// Cached raise state of one initial dichotomy.
#[derive(Debug, Clone)]
struct RaiseEntry {
    /// Whether the dichotomy passes the validity filter.
    valid: bool,
    /// Its maximal raise (`None` when raising derived a conflict).
    raised: Option<Dichotomy>,
    /// The atoms whose rules fired during the recorded derivation,
    /// including the failing rule when `raised` is `None`.
    trace: BTreeSet<RaiseAtom>,
}

fn fresh_entry(d: &Dichotomy, cs: &ConstraintSet) -> RaiseEntry {
    if !is_valid(d, cs) {
        return RaiseEntry {
            valid: false,
            raised: None,
            trace: BTreeSet::new(),
        };
    }
    let mut trace = BTreeSet::new();
    let raised = raise_dichotomy_traced(d, cs, &mut |a| {
        trace.insert(a);
    });
    RaiseEntry {
        valid: true,
        raised,
        trace,
    }
}

/// A growable set of clique-vertex ids (slot indices), kept normalized
/// (no trailing zero words) so equality and ordering are canonical.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
struct VertSet {
    words: Vec<u64>,
}

impl VertSet {
    fn singleton(v: usize) -> Self {
        let mut s = VertSet::default();
        s.insert(v);
        s
    }

    fn insert(&mut self, v: usize) {
        let w = v / 64;
        if self.words.len() <= w {
            self.words.resize(w + 1, 0);
        }
        self.words[w] |= 1 << (v % 64);
    }

    fn remove(&mut self, v: usize) {
        let w = v / 64;
        if w < self.words.len() {
            self.words[w] &= !(1 << (v % 64));
            while self.words.last() == Some(&0) {
                self.words.pop();
            }
        }
    }

    fn contains(&self, v: usize) -> bool {
        let w = v / 64;
        w < self.words.len() && self.words[w] >> (v % 64) & 1 == 1
    }

    fn is_empty(&self) -> bool {
        self.words.is_empty()
    }

    fn count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    fn is_subset(&self, other: &VertSet) -> bool {
        if self.words.len() > other.words.len() {
            return false;
        }
        self.words
            .iter()
            .zip(&other.words)
            .all(|(a, b)| a & !b == 0)
    }

    fn intersect(&self, other: &VertSet) -> VertSet {
        let mut words: Vec<u64> = self
            .words
            .iter()
            .zip(&other.words)
            .map(|(a, b)| a & b)
            .collect();
        while words.last() == Some(&0) {
            words.pop();
        }
        VertSet { words }
    }

    fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            (0..64)
                .filter(move |b| w >> b & 1 == 1)
                .map(move |b| wi * 64 + b)
        })
    }
}

/// Extends the maximal-clique family after adding vertex `v` with
/// neighbourhood `nbrs` (the standard intersection construction): keep the
/// cliques not fully adjacent to `v`, and add `M ∪ {v}` for each maximal
/// distinct intersection `M = C ∩ N(v)`.
fn insert_vertex(cliques: &mut Vec<VertSet>, v: usize, nbrs: &VertSet) {
    if cliques.is_empty() {
        cliques.push(VertSet::singleton(v));
        return;
    }
    let mut inters: Vec<VertSet> = cliques.iter().map(|c| c.intersect(nbrs)).collect();
    inters.sort_by(|a, b| b.count().cmp(&a.count()).then_with(|| a.cmp(b)));
    inters.dedup();
    let mut maximal: Vec<VertSet> = Vec::new();
    for i in inters {
        if !maximal.iter().any(|m| i.is_subset(m)) {
            maximal.push(i);
        }
    }
    cliques.retain(|c| !c.is_subset(nbrs));
    for mut m in maximal {
        m.insert(v);
        cliques.push(m);
    }
}

/// Shrinks the maximal-clique family after deleting vertex `v`: the new
/// family is the set of maximal elements of `{C \ {v}}`. Two distinct
/// cliques both containing `v` cannot shrink to comparable sets (the old
/// family is an antichain), so only cliques that never held `v` can absorb
/// a shrunk one.
fn delete_vertex(cliques: &mut Vec<VertSet>, v: usize) {
    let mut kept: Vec<VertSet> = Vec::new();
    let mut shrunk: Vec<VertSet> = Vec::new();
    for mut c in cliques.drain(..) {
        if c.contains(v) {
            c.remove(v);
            if !c.is_empty() {
                shrunk.push(c);
            }
        } else {
            kept.push(c);
        }
    }
    let absorbers = kept.len();
    for s in shrunk {
        if !kept[..absorbers].iter().any(|k| s.is_subset(k)) {
            kept.push(s);
        }
    }
    *cliques = kept;
}

/// What one [`DichotomyLattice`] update reused and recomputed — the
/// session's evidence that incremental work actually happened.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LatticeUpdate {
    /// Cached raises carried over unchanged (trace untouched by the delta).
    pub raises_reused: usize,
    /// Cached raises resumed from their old fixpoint or re-derived.
    pub raises_recomputed: usize,
    /// Dichotomies raised for the first time.
    pub raises_fresh: usize,
    /// Raised dichotomies that joined the compatibility graph.
    pub vertices_added: usize,
    /// Raised dichotomies that left the compatibility graph.
    pub vertices_removed: usize,
    /// Maximal compatibles after the update (0 when oversized).
    pub cliques: usize,
}

/// Incremental state for one constraint set: the per-dichotomy raise cache
/// and the maximal-compatible (clique) family of the raised set, updated in
/// place as constraints are added and removed.
///
/// The invariant maintained by [`build`](DichotomyLattice::build) and
/// [`apply`](DichotomyLattice::apply) is that [`raised`](Self::raised) and
/// [`primes`](Self::primes) equal what the from-scratch pipeline
/// ([`raised_valid` → `generate_primes`](crate::generate_primes)) would
/// produce for the current constraint set — as *sets*, which is all the
/// exact pipeline consumes, since it sorts and deduplicates its columns.
#[derive(Debug, Clone)]
pub struct DichotomyLattice {
    n: usize,
    atoms: BTreeSet<RaiseAtom>,
    entries: HashMap<Dichotomy, RaiseEntry>,
    slots: Vec<Option<Dichotomy>>,
    index: HashMap<Dichotomy, usize>,
    free: Vec<usize>,
    cliques: Vec<VertSet>,
    raised: Vec<Dichotomy>,
    oversized: bool,
    clique_cap: usize,
}

impl DichotomyLattice {
    /// Builds the lattice state for `cs` from its initial dichotomies,
    /// folding the raised set into the clique family one vertex at a time.
    ///
    /// `clique_cap` bounds the maximal-compatible family; past it the
    /// lattice goes [oversized](Self::is_oversized) and stops offering
    /// primes (mirroring the pipeline's prime cap).
    pub fn build(
        cs: &ConstraintSet,
        initial: &[Dichotomy],
        clique_cap: usize,
    ) -> (Self, LatticeUpdate) {
        let mut lattice = DichotomyLattice {
            n: cs.num_symbols(),
            atoms: raise_atoms(cs),
            entries: HashMap::new(),
            slots: Vec::new(),
            index: HashMap::new(),
            free: Vec::new(),
            cliques: Vec::new(),
            raised: Vec::new(),
            oversized: false,
            clique_cap,
        };
        let update = lattice.refresh(cs, initial, LatticeUpdate::default());
        (lattice, update)
    }

    /// Updates the lattice for a constraint delta: `new_cs` is the new set
    /// and `initial_new` its initial dichotomies. Cached raises are kept,
    /// resumed or re-derived according to the atom diff; the clique family
    /// is patched by the vertex diff of the raised set.
    pub fn apply(&mut self, new_cs: &ConstraintSet, initial_new: &[Dichotomy]) -> LatticeUpdate {
        let new_atoms = raise_atoms(new_cs);
        let lost: Vec<RaiseAtom> = self.atoms.difference(&new_atoms).cloned().collect();
        let added: Vec<RaiseAtom> = new_atoms.difference(&self.atoms).cloned().collect();
        let mut update = LatticeUpdate::default();
        if !lost.is_empty() || !added.is_empty() {
            for (d, entry) in self.entries.iter_mut() {
                if entry.valid {
                    if added.iter().any(|a| atom_invalidates(d, a)) {
                        entry.valid = false;
                        entry.raised = None;
                        entry.trace.clear();
                        update.raises_recomputed += 1;
                    } else if lost.iter().any(|a| entry.trace.contains(a)) {
                        // A removed rule participated in the derivation:
                        // the old fixpoint may overshoot. Re-derive.
                        *entry = fresh_entry(d, new_cs);
                        update.raises_recomputed += 1;
                    } else if !added.is_empty() {
                        // Sound to resume: closure(S∪A, closure(S, d)) =
                        // closure(S∪A, d), and a failed derivation stays
                        // failed under a rule superset.
                        if let Some(r) = entry.raised.take() {
                            let mut trace = std::mem::take(&mut entry.trace);
                            entry.raised = raise_dichotomy_traced(&r, new_cs, &mut |a| {
                                trace.insert(a);
                            });
                            entry.trace = trace;
                        }
                        update.raises_recomputed += 1;
                    } else {
                        update.raises_reused += 1;
                    }
                } else if !lost.is_empty() {
                    // Validity is anti-monotone: a removal may restore it.
                    *entry = fresh_entry(d, new_cs);
                    update.raises_recomputed += 1;
                } else {
                    update.raises_reused += 1;
                }
            }
        } else {
            update.raises_reused = self.entries.len();
        }
        self.atoms = new_atoms;
        self.refresh(new_cs, initial_new, update)
    }

    /// Ensures entries for every current initial dichotomy, recomputes the
    /// raised set and patches the clique family from the vertex diff.
    fn refresh(
        &mut self,
        cs: &ConstraintSet,
        initial: &[Dichotomy],
        mut update: LatticeUpdate,
    ) -> LatticeUpdate {
        let mut raised_new: Vec<Dichotomy> = Vec::new();
        for d in initial {
            let entry = self.entries.entry(d.clone()).or_insert_with(|| {
                update.raises_fresh += 1;
                fresh_entry(d, cs)
            });
            if entry.valid {
                if let Some(r) = &entry.raised {
                    raised_new.push(r.clone());
                }
            }
        }
        raised_new.sort();
        raised_new.dedup();

        // Vertex diff of two sorted, deduplicated lists.
        let mut removed: Vec<&Dichotomy> = Vec::new();
        let mut added: Vec<&Dichotomy> = Vec::new();
        let (mut i, mut j) = (0, 0);
        while i < self.raised.len() || j < raised_new.len() {
            match (self.raised.get(i), raised_new.get(j)) {
                (Some(a), Some(b)) if a == b => {
                    i += 1;
                    j += 1;
                }
                (Some(a), Some(b)) if a < b => {
                    removed.push(a);
                    i += 1;
                }
                (Some(_), Some(b)) => {
                    added.push(b);
                    j += 1;
                }
                (Some(a), None) => {
                    removed.push(a);
                    i += 1;
                }
                (None, Some(b)) => {
                    added.push(b);
                    j += 1;
                }
                (None, None) => unreachable!(),
            }
        }
        update.vertices_removed = removed.len();
        update.vertices_added = added.len();

        if !self.oversized {
            for d in &removed {
                if let Some(slot) = self.index.remove(*d) {
                    self.slots[slot] = None;
                    self.free.push(slot);
                    delete_vertex(&mut self.cliques, slot);
                }
            }
            for d in &added {
                let slot = self.free.pop().unwrap_or_else(|| {
                    self.slots.push(None);
                    self.slots.len() - 1
                });
                self.slots[slot] = Some((*d).clone());
                self.index.insert((*d).clone(), slot);
                let mut nbrs = VertSet::default();
                for (w, occupant) in self.slots.iter().enumerate() {
                    if w != slot {
                        if let Some(o) = occupant {
                            if o.compatible(d) {
                                nbrs.insert(w);
                            }
                        }
                    }
                }
                insert_vertex(&mut self.cliques, slot, &nbrs);
                if self.cliques.len() > self.clique_cap {
                    self.oversized = true;
                    self.cliques.clear();
                    break;
                }
            }
        }
        self.raised = raised_new;
        update.cliques = self.cliques.len();
        update
    }

    /// The current raised-valid dichotomies, sorted and deduplicated —
    /// identical to `raised_valid(initial, cs)` for the current set.
    pub fn raised(&self) -> &[Dichotomy] {
        &self.raised
    }

    /// The prime encoding-dichotomies of the current raised set (the
    /// unions of the maximal compatibles), sorted and deduplicated —
    /// identical to [`generate_primes`](crate::generate_primes) on
    /// [`raised`](Self::raised). `None` once the lattice is
    /// [oversized](Self::is_oversized).
    pub fn primes(&self) -> Option<Vec<Dichotomy>> {
        if self.oversized {
            return None;
        }
        let mut primes: Vec<Dichotomy> = self
            .cliques
            .iter()
            .map(|c| {
                let mut p = Dichotomy::new(self.n);
                for v in c.iter() {
                    if let Some(d) = &self.slots[v] {
                        p.union_with(d);
                    }
                }
                p
            })
            .collect();
        primes.sort();
        primes.dedup();
        Some(primes)
    }

    /// Whether the maximal-compatible family blew past its cap; the raise
    /// cache keeps working, but [`primes`](Self::primes) is gone for the
    /// lifetime of this lattice.
    pub fn is_oversized(&self) -> bool {
        self.oversized
    }

    /// The number of maximal compatibles currently tracked.
    pub fn clique_count(&self) -> usize {
        self.cliques.len()
    }
}

/// A memoizing feasibility oracle over the constraint-subset lattice, used
/// by the lint conflict-core deletion walk.
///
/// Every probe — memoized or not — counts one oracle call, so the walk's
/// budget accounting, its reported `oracle_calls` and the golden lint
/// fixtures are byte-identical to the pre-lattice implementation;
/// memoization only removes repeated [`check_feasible`] work (the
/// verification pass re-probes subsets the walk already settled).
pub(crate) struct SubsetOracle<'a> {
    cs: &'a ConstraintSet,
    memo: HashMap<Vec<ConstraintRef>, bool>,
    calls: u64,
}

impl<'a> SubsetOracle<'a> {
    /// An oracle over subsets of `cs`.
    pub(crate) fn new(cs: &'a ConstraintSet) -> Self {
        SubsetOracle {
            cs,
            memo: HashMap::new(),
            calls: 0,
        }
    }

    /// Whether keeping exactly `keep` is infeasible. Counts one call.
    pub(crate) fn infeasible(&mut self, keep: &[ConstraintRef]) -> bool {
        self.calls += 1;
        if let Some(&v) = self.memo.get(keep) {
            return v;
        }
        let v = !check_feasible(&self.cs.subset(keep)).is_feasible();
        self.memo.insert(keep.to_vec(), v);
        v
    }

    /// Oracle probes so far (memoized probes included).
    pub(crate) fn calls(&self) -> u64 {
        self.calls
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::primes::brute_force_primes;
    use crate::raise::raised_valid;
    use crate::{generate_primes, initial_dichotomies};
    use ioenc_rng::SplitMix64;

    #[test]
    fn build_matches_pipeline_on_figure_3() {
        let mut cs = ConstraintSet::new(5);
        cs.add_face([0, 2, 4]);
        cs.add_face([0, 1, 4]);
        cs.add_face([1, 2, 3]);
        cs.add_face([1, 3, 4]);
        let initial = initial_dichotomies(&cs, true);
        let (lat, _) = DichotomyLattice::build(&cs, &initial, 50_000);
        let raised = raised_valid(&initial, &cs);
        assert_eq!(lat.raised(), raised.as_slice());
        assert_eq!(
            lat.primes().unwrap(),
            generate_primes(&raised, 50_000).unwrap()
        );
    }

    // The from-scratch prime reference: the production generator, plus the
    // exponential brute force when the raised set is small enough for it.
    fn reference_primes(raised: &[Dichotomy]) -> Vec<Dichotomy> {
        let primes = generate_primes(raised, 50_000).unwrap();
        if raised.len() <= 20 {
            assert_eq!(primes, brute_force_primes(raised));
        }
        primes
    }

    #[test]
    fn clique_family_matches_brute_force_under_mutation() {
        // Random face/dominance sets over 5 symbols; after every add or
        // remove the lattice primes must equal the from-scratch reference.
        let mut rng = SplitMix64::new(0x1a77);
        for case in 0..30 {
            let n = 5;
            let mut cs = ConstraintSet::new(n);
            for _ in 0..rng.gen_range(1..4) {
                let mut f: Vec<usize> = (0..rng.gen_range(2..4))
                    .map(|_| rng.gen_range(0..n))
                    .collect();
                f.sort_unstable();
                f.dedup();
                if f.len() >= 2 {
                    cs.add_face(f);
                }
            }
            if rng.gen_range(0..2) == 1 {
                let a = rng.gen_range(0..n);
                let b = (a + 1 + rng.gen_range(0..n - 1)) % n;
                cs.add_dominance(a, b);
            }
            let symmetry = !cs.has_output_constraints();
            let initial = initial_dichotomies(&cs, symmetry);
            let (mut lat, _) = DichotomyLattice::build(&cs, &initial, 50_000);
            assert_eq!(
                lat.primes().unwrap(),
                reference_primes(&raised_valid(&initial, &cs)),
                "case {case} build"
            );

            // Mutate: add a face, then a dominance, then drop the first
            // constraint; re-check after every step.
            let mut current = cs.clone();
            for step in 0..3 {
                let next = match step {
                    0 => {
                        let mut next = current.clone();
                        let a = rng.gen_range(0..n);
                        let b = (a + 1 + rng.gen_range(0..n - 1)) % n;
                        next.add_face([a, b]);
                        next
                    }
                    1 => {
                        let mut next = current.clone();
                        let a = rng.gen_range(0..n);
                        let b = (a + 1 + rng.gen_range(0..n - 1)) % n;
                        next.add_dominance(a, b);
                        next
                    }
                    _ => {
                        let keep: Vec<ConstraintRef> =
                            current.constraint_refs().iter().skip(1).copied().collect();
                        current.subset(&keep)
                    }
                };
                let symmetry = !next.has_output_constraints();
                let initial = initial_dichotomies(&next, symmetry);
                lat.apply(&next, &initial);
                assert_eq!(
                    lat.raised(),
                    raised_valid(&initial, &next).as_slice(),
                    "case {case} step {step} raised"
                );
                assert_eq!(
                    lat.primes().unwrap(),
                    reference_primes(&raised_valid(&initial, &next)),
                    "case {case} step {step} primes"
                );
                current = next;
            }
        }
    }

    #[test]
    fn raise_cache_reuses_on_face_only_delta() {
        // Faces have no raise atoms: adding one must not recompute raises.
        let cs = ConstraintSet::parse(&["a", "b", "c", "d"], "(a,b)\na>c").unwrap();
        let initial = initial_dichotomies(&cs, false);
        let (mut lat, _) = DichotomyLattice::build(&cs, &initial, 50_000);
        let mut next = cs.clone();
        next.add_face([2, 3]);
        let initial2 = initial_dichotomies(&next, false);
        let update = lat.apply(&next, &initial2);
        assert_eq!(update.raises_recomputed, 0, "face delta must reuse raises");
        assert!(update.raises_reused > 0);
    }

    #[test]
    fn oversized_lattice_stops_offering_primes() {
        // The unconstrained 12-symbol problem has far more than 50 maximal
        // compatibles.
        let cs = ConstraintSet::new(12);
        let initial = initial_dichotomies(&cs, false);
        let (lat, update) = DichotomyLattice::build(&cs, &initial, 50);
        assert!(lat.is_oversized());
        assert_eq!(lat.primes(), None);
        assert_eq!(update.cliques, 0);
    }

    #[test]
    fn subset_oracle_counts_every_probe() {
        let cs = ConstraintSet::parse(&["a", "b"], "a>b\nb>a").unwrap();
        let refs = cs.constraint_refs();
        let mut oracle = SubsetOracle::new(&cs);
        let first = oracle.infeasible(&refs);
        let second = oracle.infeasible(&refs);
        assert_eq!(first, second);
        assert_eq!(oracle.calls(), 2, "memo hits still count");
    }

    #[test]
    fn vertset_ops() {
        let mut s = VertSet::singleton(3);
        s.insert(70);
        assert!(s.contains(3) && s.contains(70) && !s.contains(4));
        assert_eq!(s.count(), 2);
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![3, 70]);
        let t = VertSet::singleton(3);
        assert!(t.is_subset(&s));
        assert!(!s.is_subset(&t));
        assert_eq!(s.intersect(&t), t);
        s.remove(70);
        assert_eq!(s, t);
        s.remove(3);
        assert!(s.is_empty());
    }
}
