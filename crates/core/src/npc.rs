//! The NP-completeness reduction of Theorem 2.1: face hypercube embedding
//! restricted to 2ⁿ symbols and two-symbol face constraints is exactly the
//! problem of deciding whether a graph is a subgraph of the n-cube
//! (Cybenko–Krumme–Venkataraman), so face hypercube embedding is
//! NP-complete.
//!
//! This module provides the reduction in both directions plus a
//! backtracking embedder, so the equivalence can be demonstrated and tested
//! on small instances.

use crate::ConstraintSet;

/// A simple undirected graph for the reduction.
///
/// # Examples
///
/// ```
/// use ioenc_core::npc::Graph;
///
/// let c4 = Graph::cycle(4);
/// assert!(c4.embeds_in_cube(2)); // a 4-cycle is the 2-cube itself
/// let k4 = Graph::complete(4);
/// assert!(!k4.embeds_in_cube(2)); // K4 has triangles; hypercubes are bipartite
/// ```
#[derive(Debug, Clone)]
pub struct Graph {
    n: usize,
    edges: Vec<(usize, usize)>,
}

impl Graph {
    /// A graph with `n` vertices and the given edges.
    ///
    /// # Panics
    ///
    /// Panics if an edge endpoint is out of range or a self-loop is given.
    pub fn new(n: usize, edges: Vec<(usize, usize)>) -> Self {
        for &(a, b) in &edges {
            assert!(a < n && b < n, "edge endpoint out of range");
            assert_ne!(a, b, "self loops are not allowed");
        }
        Graph { n, edges }
    }

    /// The cycle graph C_n.
    ///
    /// # Panics
    ///
    /// Panics if `n < 3`.
    pub fn cycle(n: usize) -> Self {
        assert!(n >= 3, "a cycle needs at least 3 vertices");
        Graph::new(n, (0..n).map(|i| (i, (i + 1) % n)).collect())
    }

    /// The complete graph K_n.
    pub fn complete(n: usize) -> Self {
        let mut edges = Vec::new();
        for a in 0..n {
            for b in (a + 1)..n {
                edges.push((a, b));
            }
        }
        Graph::new(n, edges)
    }

    /// The k-dimensional hypercube graph Q_k.
    pub fn hypercube(k: usize) -> Self {
        let n = 1usize << k;
        let mut edges = Vec::new();
        for v in 0..n {
            for b in 0..k {
                let w = v ^ (1 << b);
                if v < w {
                    edges.push((v, w));
                }
            }
        }
        Graph::new(n, edges)
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> usize {
        self.n
    }

    /// The edges.
    pub fn edges(&self) -> &[(usize, usize)] {
        &self.edges
    }

    /// Decides by backtracking whether the graph is a subgraph of the
    /// k-cube (vertices map to *distinct* cube vertices; every edge maps to
    /// a cube edge). Exponential; meant for small graphs.
    ///
    /// # Panics
    ///
    /// Panics if `2^k < n` would make an injective map impossible to
    /// attempt, or `k > 16`.
    pub fn embeds_in_cube(&self, k: usize) -> bool {
        assert!(k <= 16, "embedding check limited to k <= 16");
        let size = 1usize << k;
        if self.n > size {
            return false;
        }
        let mut adj = vec![Vec::new(); self.n];
        for &(a, b) in &self.edges {
            adj[a].push(b);
            adj[b].push(a);
        }
        // Order vertices by degree (most constrained first).
        let mut order: Vec<usize> = (0..self.n).collect();
        order.sort_by_key(|&v| std::cmp::Reverse(adj[v].len()));
        let mut assignment = vec![usize::MAX; self.n];
        let mut used = vec![false; size];
        self.backtrack(&order, 0, &adj, &mut assignment, &mut used, k)
    }

    fn backtrack(
        &self,
        order: &[usize],
        idx: usize,
        adj: &[Vec<usize>],
        assignment: &mut [usize],
        used: &mut [bool],
        k: usize,
    ) -> bool {
        if idx == order.len() {
            return true;
        }
        let v = order[idx];
        // Candidate cube vertices: neighbors of an already-placed neighbor,
        // or everything if none is placed.
        let placed_neighbor = adj[v].iter().find(|&&u| assignment[u] != usize::MAX);
        let candidates: Vec<usize> = match placed_neighbor {
            Some(&u) => (0..k).map(|b| assignment[u] ^ (1 << b)).collect(),
            None => (0..(1usize << k)).collect(),
        };
        'cand: for c in candidates {
            if used[c] {
                continue;
            }
            for &u in &adj[v] {
                if assignment[u] != usize::MAX && (assignment[u] ^ c).count_ones() != 1 {
                    continue 'cand;
                }
            }
            assignment[v] = c;
            used[c] = true;
            if self.backtrack(order, idx + 1, adj, assignment, used, k) {
                return true;
            }
            assignment[v] = usize::MAX;
            used[c] = false;
        }
        false
    }

    /// The Theorem 2.1 reduction: one two-symbol face constraint per edge.
    /// For a graph with exactly 2^k vertices, the face constraints embed in
    /// a k-cube iff the graph is a subgraph of the k-cube.
    pub fn to_face_constraints(&self) -> ConstraintSet {
        let mut cs = ConstraintSet::new(self.n);
        for &(a, b) in &self.edges {
            cs.add_face([a, b]);
        }
        cs
    }
}

/// Checks whether a set of codes realizes a face-hypercube embedding of
/// the constraints in width `k` (the decision version of P-2 restricted to
/// input constraints): distinct codes, and every face private.
pub fn is_face_embedding(cs: &ConstraintSet, codes: &[u64], k: usize) -> bool {
    let enc = crate::Encoding::new(k, codes.to_vec());
    enc.verify(cs).iter().all(|v| {
        !matches!(
            v,
            crate::Violation::DuplicateCode(..) | crate::Violation::Face { .. }
        )
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Solver, SolverMode};

    #[test]
    fn cycles_embed_iff_even() {
        assert!(Graph::cycle(4).embeds_in_cube(2));
        assert!(Graph::cycle(8).embeds_in_cube(3)); // Gray code
        assert!(!Graph::cycle(3).embeds_in_cube(2)); // odd cycle, bipartite cube
        assert!(!Graph::cycle(5).embeds_in_cube(3));
        assert!(Graph::cycle(6).embeds_in_cube(3));
    }

    #[test]
    fn hypercube_embeds_in_itself() {
        assert!(Graph::hypercube(3).embeds_in_cube(3));
        assert!(!Graph::complete(4).embeds_in_cube(2));
    }

    #[test]
    fn reduction_agrees_with_encoder_on_full_occupancy() {
        // Graphs with exactly 2^k vertices: the face constraints are
        // satisfiable in k bits iff the graph embeds (Theorem 2.1).
        let cases: Vec<(Graph, usize)> = vec![
            (Graph::cycle(4), 2),
            (Graph::complete(4), 2),
            (Graph::cycle(8), 3),
            (Graph::hypercube(3), 3),
        ];
        for (g, k) in cases {
            assert_eq!(g.num_vertices(), 1 << k);
            let embeds = g.embeds_in_cube(k);
            let cs = g.to_face_constraints();
            let enc = Solver::new().mode(SolverMode::Exact).solve(&cs);
            let encodable = match enc {
                Ok(s) => s.encoding.width() <= k,
                Err(_) => false,
            };
            assert_eq!(
                embeds,
                encodable,
                "graph with {} vertices disagrees at k = {k}",
                g.num_vertices()
            );
        }
    }

    #[test]
    fn embedding_codes_verify_as_face_embedding() {
        let g = Graph::cycle(4);
        let cs = g.to_face_constraints();
        // Gray code around the square.
        let codes = [0b00, 0b01, 0b11, 0b10];
        assert!(is_face_embedding(&cs, &codes, 2));
        // A non-adjacent assignment breaks an edge's face privacy:
        // edge (0,1) with codes 00,11 spans the whole square.
        let bad = [0b00, 0b11, 0b01, 0b10];
        assert!(!is_face_embedding(&cs, &bad, 2));
    }
}
