//! Reference oracle: exact encoding by explicit column enumeration
//! (the Section 4 formulation solved directly).
//!
//! Exponential in the symbol count — intended for cross-checking the
//! polynomial feasibility check and the prime-based exact encoder on small
//! instances, and for the bounded-length experiments of Section 7 on toy
//! problems.

use crate::formulation::column_covers;
use crate::{initial_dichotomies, ConstraintSet, Dichotomy, EncodeError, Encoding};
use ioenc_cover::{BinateProblem, SolveError, UnateProblem};

/// Options for the oracle.
#[derive(Debug, Clone)]
pub struct OracleOptions {
    /// Maximum number of symbols accepted (columns are 2ⁿ−2).
    pub max_symbols: usize,
}

impl Default for OracleOptions {
    fn default() -> Self {
        OracleOptions { max_symbols: 14 }
    }
}

/// `true` when the total column satisfies every per-column output
/// constraint.
fn column_valid(cs: &ConstraintSet, col: u64) -> bool {
    for &(a, b) in cs.dominances() {
        if (col >> a & 1) < (col >> b & 1) {
            return false;
        }
    }
    for (parent, children) in cs.disjunctives() {
        let or = children.iter().fold(0, |acc, &c| acc | (col >> c & 1));
        if col >> parent & 1 != or {
            return false;
        }
    }
    for (parent, conjunctions) in cs.extended_disjunctives() {
        if col >> parent & 1 == 1
            && !conjunctions
                .iter()
                .any(|conj| conj.iter().all(|&s| col >> s & 1 == 1))
        {
            return false;
        }
    }
    true
}

/// Exact minimum-width encoding by enumerating all valid encoding columns
/// and solving the covering problem of Section 4 directly.
///
/// # Errors
///
/// * [`EncodeError::TooLarge`] beyond `opts.max_symbols` symbols;
/// * [`EncodeError::Infeasible`] when no column set satisfies everything.
pub fn oracle_encode(cs: &ConstraintSet, opts: &OracleOptions) -> Result<Encoding, EncodeError> {
    let n = cs.num_symbols();
    if n > opts.max_symbols {
        return Err(EncodeError::TooLarge {
            what: "oracle column enumeration",
        });
    }
    if n < 2 {
        return Ok(Encoding::new(0, vec![0; n]));
    }
    let initial = initial_dichotomies(cs, false);
    let columns: Vec<u64> = (1..((1u64 << n) - 1))
        .filter(|&col| column_valid(cs, col))
        .collect();

    let chosen = if cs.has_binate_constraints() {
        solve_binate(cs, &initial, &columns)?
    } else {
        let mut p = UnateProblem::new(columns.len());
        for d in &initial {
            p.add_row(
                columns
                    .iter()
                    .enumerate()
                    .filter(|(_, &col)| column_covers(col, d))
                    .map(|(j, _)| j),
            );
        }
        let sol = p.solve_exact().map_err(|e| match e {
            SolveError::Infeasible => EncodeError::infeasible(vec![]),
            // The oracle never installs budgets or cancellation.
            SolveError::NodeLimit | SolveError::Budget { .. } | SolveError::Interrupted { .. } => {
                EncodeError::CoverAborted
            }
        })?;
        sol.columns
    };

    let mut codes = vec![0u64; n];
    for (k, &j) in chosen.iter().enumerate() {
        for (s, code) in codes.iter_mut().enumerate() {
            if columns[j] >> s & 1 == 1 {
                *code |= 1 << k;
            }
        }
    }
    let enc = Encoding::new(chosen.len(), codes);
    debug_assert!(enc.satisfies(cs), "oracle produced an invalid encoding");
    Ok(enc)
}

fn solve_binate(
    cs: &ConstraintSet,
    initial: &[Dichotomy],
    columns: &[u64],
) -> Result<Vec<usize>, EncodeError> {
    let n = cs.num_symbols();
    let mut p = BinateProblem::new(columns.len());
    for d in initial {
        p.add_clause(
            columns
                .iter()
                .enumerate()
                .filter(|(_, &col)| column_covers(col, d))
                .map(|(j, _)| j),
            [],
        );
    }
    for &(a, b) in cs.distance2_pairs() {
        let s: Vec<usize> = columns
            .iter()
            .enumerate()
            .filter(|(_, &col)| (col >> a & 1) != (col >> b & 1))
            .map(|(j, _)| j)
            .collect();
        if s.len() < 2 {
            return Err(EncodeError::infeasible(vec![]));
        }
        for &q in &s {
            p.add_clause(s.iter().copied().filter(|&r| r != q), []);
        }
    }
    // Non-face constraints on total columns: the face of N stays non-
    // private iff for some outsider s, no selected column separates N
    // uniformly from s. Columns are total here, so coverage is exact and
    // the minimal-hitting-set clauses are sound and complete.
    for nf in cs.nonfaces() {
        let outsiders: Vec<usize> = (0..n).filter(|s| !nf.contains(*s)).collect();
        let mut sets: Vec<Vec<usize>> = Vec::new();
        let mut impossible = false;
        for &s in &outsiders {
            let d = Dichotomy::from_sets(nf.clone(), ioenc_bitset::BitSet::from_indices(n, [s]));
            let set: Vec<usize> = columns
                .iter()
                .enumerate()
                .filter(|(_, &col)| column_covers(col, &d))
                .map(|(j, _)| j)
                .collect();
            if set.is_empty() {
                impossible = true;
                break;
            }
            sets.push(set);
        }
        if impossible {
            continue;
        }
        let hitting = super::exact::minimal_hitting_sets_for_oracle(&sets)?;
        for h in hitting {
            p.add_clause([], h);
        }
    }
    let sol = p.solve_exact().map_err(|e| match e {
        SolveError::Infeasible => EncodeError::infeasible(vec![]),
        // The oracle never installs budgets or cancellation.
        SolveError::NodeLimit | SolveError::Budget { .. } | SolveError::Interrupted { .. } => {
            EncodeError::CoverAborted
        }
    })?;
    Ok(sol.columns)
}

/// The minimum width any satisfying encoding needs, or `None` when the
/// constraints are infeasible. Oracle-grade (exponential).
///
/// # Errors
///
/// [`EncodeError::TooLarge`] beyond `opts.max_symbols`.
pub fn oracle_min_width(
    cs: &ConstraintSet,
    opts: &OracleOptions,
) -> Result<Option<usize>, EncodeError> {
    match oracle_encode(cs, opts) {
        Ok(enc) => Ok(Some(enc.width())),
        Err(EncodeError::Infeasible { .. }) => Ok(None),
        Err(e) => Err(e),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{check_feasible, exact_encode_report, ExactOptions};

    #[test]
    fn oracle_matches_section_1_example() {
        let cs = ConstraintSet::parse(
            &["a", "b", "c", "d"],
            "(b,c)\n(c,d)\n(b,a)\n(a,d)\nb>c\na>c\na=b|d",
        )
        .unwrap();
        let enc = oracle_encode(&cs, &OracleOptions::default()).unwrap();
        assert_eq!(enc.width(), 2);
        assert!(enc.satisfies(&cs));
    }

    #[test]
    fn oracle_detects_figure_4_infeasibility() {
        let names = ["s0", "s1", "s2", "s3", "s4", "s5"];
        let cs = ConstraintSet::parse(
            &names,
            "(s1,s5)\n(s2,s5)\n(s4,s5)\n\
             s0>s1\ns0>s2\ns0>s3\ns0>s5\ns1>s3\ns2>s3\ns4>s5\ns5>s2\ns5>s3\n\
             s0=s1|s2",
        )
        .unwrap();
        assert_eq!(
            oracle_min_width(&cs, &OracleOptions::default()).unwrap(),
            None
        );
        // The polynomial check agrees.
        assert!(!check_feasible(&cs).is_feasible());
    }

    #[test]
    fn oracle_agrees_with_exact_encoder_on_small_mixes() {
        let cases = [
            "(a,b)\n(c,d)",
            "(a,b,c)\na>d",
            "(a,b)\na>b\nb>c",
            "a=b|c\n(b,d)",
            "(a,b)\n(b,c)\n(c,d)\n(a,d)",
            "(a,b,[c],d)",
        ];
        for text in cases {
            let cs = ConstraintSet::parse(&["a", "b", "c", "d"], text).unwrap();
            let oracle = oracle_encode(&cs, &OracleOptions::default()).unwrap();
            let exact = exact_encode_report(&cs, &ExactOptions::default()).unwrap();
            assert_eq!(
                oracle.width(),
                exact.encoding.width(),
                "width mismatch on {text}"
            );
            assert!(exact.encoding.satisfies(&cs));
        }
    }

    #[test]
    fn oracle_handles_distance2() {
        let mut cs = ConstraintSet::new(4);
        cs.add_face([0, 1]);
        cs.add_distance2(0, 1);
        let enc = oracle_encode(&cs, &OracleOptions::default()).unwrap();
        assert!(enc.satisfies(&cs));
        // And the production encoder agrees on the width.
        let exact = exact_encode_report(&cs, &ExactOptions::default()).unwrap();
        assert_eq!(exact.encoding.width(), enc.width());
    }

    #[test]
    fn oracle_handles_nonface() {
        let names = ["a", "b", "c", "d", "e", "f"];
        let cs = ConstraintSet::parse(&names, "(a,b)\n(b,c,d)\n(a,e)\n(d,f)\n!(a,b,e)").unwrap();
        let enc = oracle_encode(&cs, &OracleOptions::default()).unwrap();
        assert!(enc.satisfies(&cs));
        let exact = exact_encode_report(&cs, &ExactOptions::default()).unwrap();
        assert_eq!(exact.encoding.width(), enc.width());
    }

    #[test]
    fn oracle_contradictory_nonface_is_infeasible() {
        let cs = ConstraintSet::parse(&["a", "b", "c"], "(a,b)\n!(a,b)").unwrap();
        assert!(matches!(
            oracle_encode(&cs, &OracleOptions::default()),
            Err(EncodeError::Infeasible { .. })
        ));
    }

    #[test]
    fn oracle_tiny_instances() {
        let cs = ConstraintSet::new(1);
        let enc = oracle_encode(&cs, &OracleOptions::default()).unwrap();
        assert_eq!(enc.num_symbols(), 1);
        let cs = ConstraintSet::new(0);
        assert_eq!(
            oracle_encode(&cs, &OracleOptions::default())
                .unwrap()
                .num_symbols(),
            0
        );
    }

    #[test]
    fn oracle_too_large_is_reported() {
        let cs = ConstraintSet::new(20);
        assert!(matches!(
            oracle_encode(&cs, &OracleOptions::default()),
            Err(EncodeError::TooLarge { .. })
        ));
    }
}
