//! The exact → bounded-exact → heuristic degradation ladder.
//!
//! [`encode_auto`] runs the strongest encoder the [`Budget`] can pay for:
//!
//! 1. **exact** ([`exact_encode_report`](crate::exact_encode_report)) — the
//!    minimum-length pipeline of Figure 7;
//! 2. **bounded exact**
//!    ([`bounded_exact_encode_report`](crate::bounded_exact_encode_report))
//!    — exhaustive selection at a fixed length, growing the length until a
//!    satisfying encoding appears;
//! 3. **heuristic**
//!    ([`heuristic_encode_report`](crate::heuristic_encode_report)) — the
//!    split/merge/select scheme of Section 7.1, likewise over growing
//!    lengths, with a last-resort greedy cover of the raised dichotomies
//!    (sound by Theorem 6.1).
//!
//! Every rung draws from the *same* budget: the work a failed rung spent is
//! subtracted (see [`Budget::after`]) before the next rung starts, the
//! wall-clock deadline is halved per remaining rung, and the partial work a
//! rung carried in its [`EncodeError::Budget`] error — notably the raised
//! dichotomies of the exact rung — is reused instead of recomputed. With
//! only work-unit limits the answering rung, its encoding and the counters
//! in [`AutoReport::stats`] are bit-identical across
//! [`Parallelism`](crate::Parallelism) settings.

use crate::budget::{Budget, BudgetPhase, BudgetSpent};
use crate::raise::raised_valid;
use crate::stats::SolverStats;
use crate::{
    bounded_exact_encode_report, exact_encode_report, heuristic_encode_report, initial_dichotomies,
    BoundedExactOptions, ConstraintSet, CostFunction, Dichotomy, EncodeError, Encoding,
    ExactOptions, Feasibility, HeuristicOptions, Parallelism,
};
use std::fmt;
use std::time::{Duration, Instant};

/// Options for [`encode_auto`].
///
/// Construct with [`AutoOptions::new`] (or `default()`) and refine with the
/// `with_*` methods; the struct is `#[non_exhaustive]`.
///
/// ```
/// use ioenc_core::{AutoOptions, Budget};
///
/// let opts = AutoOptions::new()
///     .with_budget(Budget::unlimited().with_max_primes(50_000));
/// assert!(opts.budget.max_primes.is_some());
/// ```
#[derive(Debug, Clone, Default)]
#[non_exhaustive]
pub struct AutoOptions {
    /// The shared resource budget the whole ladder draws from.
    pub budget: Budget,
    /// Options for the exact rung (its own `budget` field is overwritten
    /// with what remains of the shared budget).
    pub exact: ExactOptions,
    /// Options for the bounded-exact rung (`budget`, `cost` and
    /// `code_length` are overwritten; the ladder always minimizes
    /// violations, so cost 0 is exactly "satisfies everything").
    pub bounded: BoundedExactOptions,
    /// Options for the heuristic rung (`budget`, `cost` and `code_length`
    /// are overwritten).
    pub heuristic: HeuristicOptions,
    /// How many bits past the minimum length the bounded and heuristic
    /// rungs may try before falling back to the greedy raised-dichotomy
    /// cover.
    pub max_extra_bits: usize,
}

impl AutoOptions {
    /// Default options: unlimited budget, each rung's defaults, up to 8
    /// extra bits.
    pub fn new() -> Self {
        AutoOptions {
            budget: Budget::unlimited(),
            exact: ExactOptions::default(),
            bounded: BoundedExactOptions::default(),
            heuristic: HeuristicOptions::default(),
            max_extra_bits: 8,
        }
    }

    /// Installs the shared resource [`Budget`].
    pub fn with_budget(mut self, budget: Budget) -> Self {
        self.budget = budget;
        self
    }

    /// Sets the thread policy of every rung.
    pub fn with_parallelism(mut self, parallelism: Parallelism) -> Self {
        self.exact.parallelism = parallelism;
        self.bounded.parallelism = parallelism;
        self.heuristic.parallelism = parallelism;
        self
    }

    /// Sets how many bits past the minimum the fallback rungs may try.
    pub fn with_max_extra_bits(mut self, bits: usize) -> Self {
        self.max_extra_bits = bits;
        self
    }
}

/// The ladder rung that produced an [`AutoReport`]'s encoding. Ordered
/// strongest first, so `rung_a <= rung_b` means "at least as strong".
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum AutoRung {
    /// The exact minimum-length pipeline answered.
    Exact,
    /// Exhaustive fixed-length selection answered.
    Bounded,
    /// The heuristic (or the greedy raised-dichotomy fallback) answered.
    Heuristic,
}

impl fmt::Display for AutoRung {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            AutoRung::Exact => "exact",
            AutoRung::Bounded => "bounded exact",
            AutoRung::Heuristic => "heuristic",
        })
    }
}

/// One rung (or rung attempt at one code length) that did *not* produce
/// the final encoding.
#[derive(Debug, Clone)]
pub struct RungAttempt {
    /// Which rung ran.
    pub rung: AutoRung,
    /// Why it did not answer: the error it returned, or `None` when it ran
    /// to completion but its best encoding still violated constraints.
    pub error: Option<EncodeError>,
    /// The work it spent (already included in [`AutoReport::stats`]).
    pub stats: SolverStats,
}

/// The result of [`encode_auto`]: a verified encoding plus the full
/// account of the ladder's work.
#[derive(Debug, Clone)]
pub struct AutoReport {
    /// An encoding satisfying every constraint (re-verified semantically
    /// before being returned).
    pub encoding: Encoding,
    /// The rung that produced it.
    pub rung: AutoRung,
    /// Whether the encoding is a proven minimum-length one.
    pub optimal: bool,
    /// The rungs (and per-length retries) that fell short, in order.
    pub attempts: Vec<RungAttempt>,
    /// Work counters absorbed across every rung, successful or not.
    pub stats: SolverStats,
    /// Whether the answering fallback reused the raised dichotomies
    /// carried out of the exact rung's budget error instead of
    /// recomputing them.
    pub reused_raised: bool,
}

/// Errors that no later rung can do anything about.
pub(crate) fn is_fatal(e: &EncodeError) -> bool {
    matches!(
        e,
        EncodeError::Infeasible { .. }
            | EncodeError::Parse { .. }
            | EncodeError::Io { .. }
            | EncodeError::Limit { .. }
    )
}

/// Encodes with the strongest rung the budget can pay for (see the module
/// docs). Always minimizes *violated constraints*, so any answer — from
/// whatever rung — satisfies every constraint.
///
/// # Errors
///
/// * [`EncodeError::Infeasible`] (fatal, from the feasibility check);
/// * [`EncodeError::Budget`] when even the last-resort fallback cannot fit
///   (over 64 bits) — its `spent` carries the ladder's total work;
/// * plus the fatal front-end errors ([`EncodeError::Parse`],
///   [`EncodeError::Io`], [`EncodeError::Limit`]) passed through.
///
/// # Examples
///
/// ```
/// use ioenc_core::{encode_auto, AutoOptions, Budget, ConstraintSet};
///
/// let cs = ConstraintSet::parse(&["a", "b", "c", "d"], "(a,b)\n(c,d)")?;
/// let report = encode_auto(
///     &cs,
///     &AutoOptions::new().with_budget(Budget::unlimited().with_max_primes(1000)),
/// )?;
/// assert!(report.encoding.satisfies(&cs));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[deprecated(note = "use Solver::new().mode(SolverMode::Auto)")]
pub fn encode_auto(cs: &ConstraintSet, opts: &AutoOptions) -> Result<AutoReport, EncodeError> {
    encode_auto_impl(cs, opts)
}

/// The auto ladder behind [`encode_auto`] and
/// [`SolverMode::Auto`](crate::SolverMode) (see [`Solver`](crate::Solver)).
pub(crate) fn encode_auto_impl(
    cs: &ConstraintSet,
    opts: &AutoOptions,
) -> Result<AutoReport, EncodeError> {
    let started = Instant::now();
    let n = cs.num_symbols();
    let mut total = SolverStats::default();
    let mut attempts: Vec<RungAttempt> = Vec::new();
    let mut carried: Option<Vec<Dichotomy>> = None;

    // Wall-clock split: each non-final rung gets half of what is left, the
    // final rung everything (work-unit limits are split by subtraction in
    // Budget::after instead).
    let rung_deadline = |rungs_left: u32| -> Option<Duration> {
        opts.budget.deadline.map(|d| {
            let left = d.saturating_sub(started.elapsed());
            if rungs_left <= 1 {
                left
            } else {
                left / 2
            }
        })
    };

    // Rung 1: exact.
    let mut exact_opts = opts.exact.clone();
    exact_opts.budget = opts.budget.after(&total);
    exact_opts.budget.deadline = rung_deadline(3);
    match exact_encode_report(cs, &exact_opts) {
        Ok(r) => {
            total.absorb(&r.stats);
            return Ok(AutoReport {
                encoding: r.encoding,
                rung: AutoRung::Exact,
                optimal: r.optimal,
                attempts,
                stats: total,
                reused_raised: false,
            });
        }
        Err(e) if is_fatal(&e) => return Err(e),
        Err(EncodeError::Budget { phase, spent }) => {
            let BudgetSpent { stats, raised } = *spent;
            total.absorb(&stats);
            if !raised.is_empty() {
                carried = Some(raised);
            }
            attempts.push(RungAttempt {
                rung: AutoRung::Exact,
                error: Some(EncodeError::budget(phase, BudgetSpent::default())),
                stats,
            });
        }
        Err(e) => attempts.push(RungAttempt {
            rung: AutoRung::Exact,
            error: Some(e),
            stats: SolverStats::default(),
        }),
    }

    let min_len = usize::max(1, (usize::BITS - (n.max(1) - 1).leading_zeros()) as usize);
    let max_len = min_len.saturating_add(opts.max_extra_bits).min(63);

    // Rung 2: bounded exact, growing the length. The rung may spend at
    // most half of the remaining evaluations; the rest is reserved for the
    // heuristic.
    let eval_reserve = opts.budget.after(&total).max_evals.map(|e| e.div_ceil(2));
    for c in min_len..=max_len {
        let mut bopts = opts.bounded.clone();
        bopts.cost = CostFunction::Violations;
        bopts.code_length = Some(c);
        bopts.budget = opts.budget.after(&total);
        if let (Some(avail), Some(reserve)) = (bopts.budget.max_evals, eval_reserve) {
            bopts.budget.max_evals = Some(avail.saturating_sub(reserve));
        }
        bopts.budget.deadline = rung_deadline(2);
        match bounded_exact_encode_report(cs, &bopts) {
            Ok(r) => {
                total.absorb(&r.stats);
                if r.cost == 0 && r.encoding.satisfies(cs) {
                    return Ok(AutoReport {
                        encoding: r.encoding,
                        rung: AutoRung::Bounded,
                        // Reaching zero violations at the minimum length is
                        // a proven minimum-length encoding.
                        optimal: c == min_len,
                        attempts,
                        stats: total,
                        reused_raised: false,
                    });
                }
                attempts.push(RungAttempt {
                    rung: AutoRung::Bounded,
                    error: None,
                    stats: r.stats,
                });
            }
            Err(e) if is_fatal(&e) => return Err(e),
            Err(EncodeError::Budget { phase, spent }) => {
                total.absorb(&spent.stats);
                attempts.push(RungAttempt {
                    rung: AutoRung::Bounded,
                    error: Some(EncodeError::budget(phase, BudgetSpent::default())),
                    stats: spent.stats,
                });
                break;
            }
            Err(e) => {
                attempts.push(RungAttempt {
                    rung: AutoRung::Bounded,
                    error: Some(e),
                    stats: SolverStats::default(),
                });
                break;
            }
        }
    }

    // Rung 3: heuristic, growing the length.
    for c in min_len..=max_len {
        let mut hopts = opts.heuristic.clone();
        hopts.cost = CostFunction::Violations;
        hopts.code_length = Some(c);
        hopts.budget = opts.budget.after(&total);
        hopts.budget.deadline = rung_deadline(1);
        match heuristic_encode_report(cs, &hopts) {
            Ok(r) => {
                total.absorb(&r.stats);
                if r.encoding.satisfies(cs) {
                    return Ok(AutoReport {
                        encoding: r.encoding,
                        rung: AutoRung::Heuristic,
                        optimal: false,
                        attempts,
                        stats: total,
                        reused_raised: false,
                    });
                }
                attempts.push(RungAttempt {
                    rung: AutoRung::Heuristic,
                    error: None,
                    stats: r.stats,
                });
            }
            Err(e) if is_fatal(&e) => return Err(e),
            Err(EncodeError::Budget { phase, spent }) => {
                total.absorb(&spent.stats);
                attempts.push(RungAttempt {
                    rung: AutoRung::Heuristic,
                    error: Some(EncodeError::budget(phase, BudgetSpent::default())),
                    stats: spent.stats,
                });
                break;
            }
            Err(e) => {
                attempts.push(RungAttempt {
                    rung: AutoRung::Heuristic,
                    error: Some(e),
                    stats: SolverStats::default(),
                });
                break;
            }
        }
    }

    // Last resort: a greedy cover of the initial dichotomies by the
    // maximally raised valid dichotomies — sound by Theorem 6.1 and
    // budget-free, possibly longer than any rung would have produced. The
    // raised dichotomies the exact rung already computed (carried in its
    // budget error) are reused rather than re-raised.
    let symmetry = !cs.has_output_constraints();
    let initial = initial_dichotomies(cs, symmetry);
    let reused_raised = carried.is_some();
    let raised = match carried {
        Some(r) => r,
        None => {
            total.raise_attempts += initial.len() as u64;
            raised_valid(&initial, cs)
        }
    };
    let uncovered: Vec<Dichotomy> = initial
        .iter()
        .filter(|i| !raised.iter().any(|d| d.covers(i)))
        .cloned()
        .collect();
    if !uncovered.is_empty() {
        // Same lint attachment as the exact rung's feasibility gate; the
        // budget scope restarts, so the explanation gets the ladder's
        // deadline allowance for its conflict-core search.
        let feas = Feasibility {
            initial,
            raised,
            uncovered,
        };
        let explanation = crate::lint::lint_with_feasibility(
            cs,
            &crate::lint::LintOptions::new().with_budget(opts.budget.clone()),
            &feas,
        );
        return Err(EncodeError::Infeasible {
            uncovered: feas.uncovered,
            explanation: Some(Box::new(explanation)),
        });
    }
    let columns = greedy_cover(&initial, &raised);
    total.timings.total = started.elapsed();
    if columns.len() > 64 {
        return Err(EncodeError::budget(
            BudgetPhase::Heuristic,
            BudgetSpent {
                stats: total,
                raised,
            },
        ));
    }
    let encoding = Encoding::from_columns(n, &columns);
    assert!(
        encoding.satisfies(cs),
        "internal error: raised-dichotomy cover fails semantic verification"
    );
    Ok(AutoReport {
        encoding,
        rung: AutoRung::Heuristic,
        optimal: false,
        attempts,
        stats: total,
        reused_raised,
    })
}

/// Greedy set cover: repeatedly the column covering the most uncovered
/// rows (ties to the lowest index — deterministic).
fn greedy_cover(rows: &[Dichotomy], columns: &[Dichotomy]) -> Vec<Dichotomy> {
    let mut uncovered: Vec<usize> = (0..rows.len()).collect();
    let mut chosen: Vec<Dichotomy> = Vec::new();
    while !uncovered.is_empty() {
        let Some((best, count)) = columns
            .iter()
            .enumerate()
            .map(|(i, c)| (i, uncovered.iter().filter(|&&r| c.covers(&rows[r])).count()))
            .max_by(|a, b| a.1.cmp(&b.1).then(b.0.cmp(&a.0)))
        else {
            break;
        };
        if count == 0 {
            break;
        }
        uncovered.retain(|&r| !columns[best].covers(&rows[r]));
        chosen.push(columns[best].clone());
    }
    chosen
}

#[cfg(test)]
mod tests {
    #![allow(deprecated)] // the wrappers stay covered until removal
    use super::*;

    #[test]
    fn unlimited_budget_answers_on_the_exact_rung() {
        let cs = ConstraintSet::parse(
            &["a", "b", "c", "d"],
            "(b,c)\n(c,d)\n(b,a)\n(a,d)\nb>c\na>c\na=b|d",
        )
        .unwrap();
        let report = encode_auto(&cs, &AutoOptions::new()).unwrap();
        assert_eq!(report.rung, AutoRung::Exact);
        assert!(report.optimal);
        assert!(report.attempts.is_empty());
        assert_eq!(report.encoding.width(), 2);
        assert!(report.encoding.satisfies(&cs));
    }

    #[test]
    fn starved_exact_rung_falls_through_and_still_satisfies() {
        // A tight prime cap starves the exact rung on the unconstrained
        // 10-symbol instance (2^10 − 2 primes); the ladder must still hand
        // back a satisfying encoding from a later rung.
        let cs = ConstraintSet::new(10);
        let opts = AutoOptions::new().with_budget(Budget::unlimited().with_max_primes(50));
        let report = encode_auto(&cs, &opts).unwrap();
        assert!(report.rung > AutoRung::Exact);
        assert!(report.encoding.satisfies(&cs));
        assert!(
            report.attempts.iter().any(|a| a.rung == AutoRung::Exact),
            "the exact attempt is on record"
        );
        // The exact rung's partial prime work is accounted for.
        assert!(report.stats.primes.ps_steps > 0);
    }

    #[test]
    fn infeasible_constraints_are_fatal() {
        let names = ["s0", "s1", "s2", "s3", "s4", "s5"];
        let cs = ConstraintSet::parse(
            &names,
            "(s1,s5)\n(s2,s5)\n(s4,s5)\n\
             s0>s1\ns0>s2\ns0>s3\ns0>s5\ns1>s3\ns2>s3\ns4>s5\ns5>s2\ns5>s3\n\
             s0=s1|s2",
        )
        .unwrap();
        let opts = AutoOptions::new().with_budget(Budget::unlimited().with_max_primes(10));
        assert!(matches!(
            encode_auto(&cs, &opts),
            Err(EncodeError::Infeasible { .. })
        ));
    }

    #[test]
    fn fallback_reuses_raised_dichotomies_from_the_exact_rung() {
        // Starve everything: primes capped (exact dies in the primes
        // phase, carrying its raised dichotomies) and evaluations capped
        // at zero (bounded and heuristic die at entry). The greedy fallback
        // must answer from the carried dichotomies without re-raising.
        let cs = ConstraintSet::new(9);
        let opts = AutoOptions::new()
            .with_budget(Budget::unlimited().with_max_primes(20).with_max_evals(0));
        let report = encode_auto(&cs, &opts).unwrap();
        assert_eq!(report.rung, AutoRung::Heuristic);
        assert!(report.reused_raised, "raised dichotomies were not reused");
        assert!(report.encoding.satisfies(&cs));
        // Re-raising would have added the initial dichotomies a second
        // time; the count stays at the exact rung's single pass.
        assert_eq!(
            report.stats.raise_attempts,
            crate::initial_dichotomies(&cs, true).len() as u64
        );
    }

    #[test]
    fn work_budget_outcome_is_identical_across_thread_counts() {
        let cs = ConstraintSet::new(8);
        let run = |par: Parallelism| {
            let opts = AutoOptions::new()
                .with_parallelism(par)
                .with_budget(Budget::unlimited().with_max_primes(40).with_max_evals(200));
            encode_auto(&cs, &opts).unwrap()
        };
        let reference = run(Parallelism::Off);
        for par in [
            Parallelism::Fixed(2),
            Parallelism::Fixed(4),
            Parallelism::Auto,
        ] {
            let report = run(par);
            assert_eq!(report.rung, reference.rung, "{par:?} rung");
            assert_eq!(
                report.encoding.codes(),
                reference.encoding.codes(),
                "{par:?} codes"
            );
            assert_eq!(
                report.stats.work_units(),
                reference.stats.work_units(),
                "{par:?} counters"
            );
        }
    }

    #[test]
    fn bigger_budget_reaches_an_equal_or_stronger_rung() {
        let cs = ConstraintSet::new(8);
        let run = |primes: usize| {
            let opts = AutoOptions::new().with_budget(Budget::unlimited().with_max_primes(primes));
            encode_auto(&cs, &opts).unwrap()
        };
        let small = run(40);
        let big = run(40 * 2 * 2 * 2);
        assert!(big.rung <= small.rung, "more budget, weaker rung");
        assert!(big.encoding.width() <= small.encoding.width());
    }
}
