//! Randomized tests for the encoding framework: the polynomial algorithms
//! against the exponential column-enumeration oracle and brute force.
//! Driven by the workspace's deterministic PRNG.
// The free-function entry points are deprecated in favor of `Solver`,
// but must keep working until removal; this suite stays on them as
// coverage of the delegating wrappers.
#![allow(deprecated)]

use ioenc_core::{
    brute_force_primes, check_feasible, count_violations, exact_encode, generate_primes,
    heuristic_encode, initial_dichotomies, oracle_min_width, ConstraintSet, Dichotomy, EncodeError,
    ExactOptions, HeuristicOptions, OracleOptions,
};
use ioenc_rng::SplitMix64;

const N: usize = 5;
const CASES: usize = 64;

/// Random constraint sets over `N` symbols mixing faces, dominances and
/// disjunctives.
fn random_constraints(rng: &mut SplitMix64) -> ConstraintSet {
    let mut cs = ConstraintSet::new(N);
    for _ in 0..rng.gen_range(0..3) {
        let mut f: Vec<usize> = (0..rng.gen_range(2..4))
            .map(|_| rng.gen_range(0..N))
            .collect();
        f.sort_unstable();
        f.dedup();
        if f.len() >= 2 {
            cs.add_face(f);
        }
    }
    for _ in 0..rng.gen_range(0..3) {
        let a = rng.gen_range(0..N);
        let b = rng.gen_range(0..N);
        if a != b {
            cs.add_dominance(a, b);
        }
    }
    for _ in 0..rng.gen_range(0..2) {
        let p = rng.gen_range(0..N);
        let mut c: Vec<usize> = (0..rng.gen_range(2..3))
            .map(|_| rng.gen_range(0..N))
            .filter(|&s| s != p)
            .collect();
        c.sort_unstable();
        c.dedup();
        if c.len() >= 2 {
            cs.add_disjunctive(p, c);
        }
    }
    cs
}

/// Random dichotomy lists for prime-generation cross-checks.
fn random_dichotomies(rng: &mut SplitMix64) -> Vec<Dichotomy> {
    (0..rng.gen_range(1..8))
        .filter_map(|_| {
            let l: Vec<usize> = (0..rng.gen_range(1..3))
                .map(|_| rng.gen_range(0..6))
                .collect();
            let r: Vec<usize> = (0..rng.gen_range(1..3))
                .map(|_| rng.gen_range(0..6))
                .filter(|s| !l.contains(s))
                .collect();
            if r.is_empty() {
                None
            } else {
                Some(Dichotomy::from_blocks(6, l, r))
            }
        })
        .collect()
}

#[test]
fn feasibility_matches_oracle() {
    let mut rng = SplitMix64::new(0x80);
    for _ in 0..CASES {
        let cs = random_constraints(&mut rng);
        let poly = check_feasible(&cs).is_feasible();
        let oracle = oracle_min_width(&cs, &OracleOptions::default())
            .unwrap()
            .is_some();
        assert_eq!(poly, oracle, "Theorem 6.1 check disagrees with enumeration");
    }
}

#[test]
fn exact_width_matches_oracle() {
    let mut rng = SplitMix64::new(0x81);
    for _ in 0..CASES {
        let cs = random_constraints(&mut rng);
        let oracle = oracle_min_width(&cs, &OracleOptions::default()).unwrap();
        match exact_encode(&cs, &ExactOptions::default()) {
            Ok(enc) => {
                assert!(enc.satisfies(&cs), "violations: {:?}", enc.verify(&cs));
                assert_eq!(Some(enc.width()), oracle, "width differs from oracle");
            }
            Err(EncodeError::Infeasible { .. }) => assert_eq!(oracle, None),
            Err(e) => panic!("unexpected error: {e}"),
        }
    }
}

#[test]
fn primes_match_brute_force() {
    let mut rng = SplitMix64::new(0x82);
    for _ in 0..CASES {
        let dichotomies = random_dichotomies(&mut rng);
        let fast = generate_primes(&dichotomies, 1_000_000).unwrap();
        let slow = brute_force_primes(&dichotomies);
        assert_eq!(fast, slow);
    }
}

#[test]
fn primes_cover_inputs() {
    let mut rng = SplitMix64::new(0x83);
    for _ in 0..CASES {
        let cs = random_constraints(&mut rng);
        let initial = initial_dichotomies(&cs, false);
        if initial.len() <= 18 {
            let primes = generate_primes(&initial, 1_000_000).unwrap();
            for d in &initial {
                assert!(primes.iter().any(|p| p.covers_oriented(d)));
            }
        }
    }
}

#[test]
fn heuristic_encodings_are_injective() {
    let mut rng = SplitMix64::new(0x84);
    for _ in 0..CASES {
        let cs = random_constraints(&mut rng);
        // The heuristic covers input constraints; strip output constraints.
        let mut input_only = ConstraintSet::new(N);
        for f in cs.faces() {
            input_only.add_face_with_dc(f.members.iter(), f.dont_cares.iter());
        }
        let enc = heuristic_encode(&input_only, &HeuristicOptions::default()).unwrap();
        let mut codes = enc.codes().to_vec();
        codes.sort_unstable();
        codes.dedup();
        assert_eq!(codes.len(), N);
        // At minimum length the violation count is a sane upper bound.
        assert!(count_violations(&input_only, &enc) <= input_only.faces().len());
    }
}

#[test]
fn exact_encoding_at_larger_width_also_satisfiable() {
    let mut rng = SplitMix64::new(0x85);
    for _ in 0..CASES {
        let cs = random_constraints(&mut rng);
        // Monotonicity sanity: when the exact encoder succeeds with w bits,
        // the constraints are feasible and the oracle agrees on w.
        if let Ok(enc) = exact_encode(&cs, &ExactOptions::default()) {
            assert!(check_feasible(&cs).is_feasible());
            assert!(enc.width() <= 2 * N); // trivial sanity bound
        }
    }
}
