//! Property tests for the encoding framework: the polynomial algorithms
//! against the exponential column-enumeration oracle and brute force.

use ioenc_core::{
    brute_force_primes, check_feasible, count_violations, exact_encode, generate_primes,
    heuristic_encode, initial_dichotomies, oracle_min_width, ConstraintSet, Dichotomy, EncodeError,
    ExactOptions, HeuristicOptions, OracleOptions,
};
use proptest::prelude::*;

const N: usize = 5;

/// Random constraint sets over `N` symbols mixing faces, dominances and
/// disjunctives.
fn arb_constraints() -> impl Strategy<Value = ConstraintSet> {
    let face = prop::collection::vec(0..N, 2..4);
    let dom = (0..N, 0..N);
    let disj = (0..N, prop::collection::vec(0..N, 2..3));
    (
        prop::collection::vec(face, 0..3),
        prop::collection::vec(dom, 0..3),
        prop::collection::vec(disj, 0..2),
    )
        .prop_map(|(faces, doms, disjs)| {
            let mut cs = ConstraintSet::new(N);
            for f in faces {
                let mut f = f.clone();
                f.sort_unstable();
                f.dedup();
                if f.len() >= 2 {
                    cs.add_face(f);
                }
            }
            for (a, b) in doms {
                if a != b {
                    cs.add_dominance(a, b);
                }
            }
            for (p, children) in disjs {
                let children: Vec<usize> = children.into_iter().filter(|&c| c != p).collect();
                let mut c = children.clone();
                c.sort_unstable();
                c.dedup();
                if c.len() >= 2 {
                    cs.add_disjunctive(p, c);
                }
            }
            cs
        })
}

/// Random dichotomy lists for prime-generation cross-checks.
fn arb_dichotomies() -> impl Strategy<Value = Vec<Dichotomy>> {
    prop::collection::vec(
        (
            prop::collection::vec(0..6usize, 1..3),
            prop::collection::vec(0..6usize, 1..3),
        ),
        1..8,
    )
    .prop_map(|raw| {
        raw.into_iter()
            .filter_map(|(l, r)| {
                let l: Vec<usize> = l.into_iter().collect();
                let r: Vec<usize> = r.into_iter().filter(|s| !l.contains(s)).collect();
                if r.is_empty() {
                    None
                } else {
                    Some(Dichotomy::from_blocks(6, l, r))
                }
            })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn feasibility_matches_oracle(cs in arb_constraints()) {
        let poly = check_feasible(&cs).is_feasible();
        let oracle = oracle_min_width(&cs, &OracleOptions::default())
            .unwrap()
            .is_some();
        prop_assert_eq!(poly, oracle, "Theorem 6.1 check disagrees with enumeration");
    }

    #[test]
    fn exact_width_matches_oracle(cs in arb_constraints()) {
        let oracle = oracle_min_width(&cs, &OracleOptions::default()).unwrap();
        match exact_encode(&cs, &ExactOptions::default()) {
            Ok(enc) => {
                prop_assert!(enc.satisfies(&cs), "violations: {:?}", enc.verify(&cs));
                prop_assert_eq!(Some(enc.width()), oracle, "width differs from oracle");
            }
            Err(EncodeError::Infeasible { .. }) => prop_assert_eq!(oracle, None),
            Err(e) => prop_assert!(false, "unexpected error: {e}"),
        }
    }

    #[test]
    fn primes_match_brute_force(dichotomies in arb_dichotomies()) {
        let fast = generate_primes(&dichotomies, 1_000_000).unwrap();
        let slow = brute_force_primes(&dichotomies);
        prop_assert_eq!(fast, slow);
    }

    #[test]
    fn primes_cover_inputs(cs in arb_constraints()) {
        let initial = initial_dichotomies(&cs, false);
        if initial.len() <= 18 {
            let primes = generate_primes(&initial, 1_000_000).unwrap();
            for d in &initial {
                prop_assert!(primes.iter().any(|p| p.covers_oriented(d)));
            }
        }
    }

    #[test]
    fn heuristic_encodings_are_injective(cs in arb_constraints()) {
        // The heuristic covers input constraints; strip output constraints.
        let mut input_only = ConstraintSet::new(N);
        for f in cs.faces() {
            input_only.add_face_with_dc(f.members.iter(), f.dont_cares.iter());
        }
        let enc = heuristic_encode(&input_only, &HeuristicOptions::default()).unwrap();
        let mut codes = enc.codes().to_vec();
        codes.sort_unstable();
        codes.dedup();
        prop_assert_eq!(codes.len(), N);
        // At minimum length the violation count is a sane upper bound.
        prop_assert!(count_violations(&input_only, &enc) <= input_only.faces().len());
    }

    #[test]
    fn exact_encoding_at_larger_width_also_satisfiable(cs in arb_constraints()) {
        // Monotonicity sanity: when the exact encoder succeeds with w bits,
        // the constraints are feasible and the oracle agrees on w.
        if let Ok(enc) = exact_encode(&cs, &ExactOptions::default()) {
            prop_assert!(check_feasible(&cs).is_feasible());
            prop_assert!(enc.width() <= 2 * N); // trivial sanity bound
        }
    }
}
