//! Oracle-differential suite for the resource-budget ladder.
//!
//! Randomized (seeded, deterministic) sweeps locking down the
//! [`encode_auto`] degradation ladder:
//!
//! * with no budget the ladder is *exactly* the exact encoder;
//! * whatever rung answers, the encoding passes the semantic constraint
//!   checker;
//! * with only work-unit budgets, the rung, codes and counters are
//!   bit-identical across thread counts;
//! * cover node budgets are monotone: success under a small budget implies
//!   success — with the same cover cost — under any larger one (failures
//!   are shrunk to a minimal constraint set before reporting).
//!
//! The CI matrix re-runs this suite under `IOENC_TEST_THREADS=off` and
//! `=auto` to pin thread-schedule independence.
// The free-function entry points are deprecated in favor of `Solver`,
// but must keep working until removal; this suite stays on them as
// coverage of the delegating wrappers.
#![allow(deprecated)]

use ioenc_core::{
    count_violations, encode_auto, exact_encode, AutoOptions, AutoRung, Budget, ConstraintSet,
    EncodeError, ExactOptions, Parallelism,
};
use ioenc_rng::SplitMix64;

const N: usize = 5;
const CASES: usize = 48;

/// Thread policy for the non-determinism-focused tests, overridable by the
/// CI matrix (`IOENC_TEST_THREADS=off|auto|N`).
fn test_parallelism() -> Parallelism {
    match std::env::var("IOENC_TEST_THREADS").ok().as_deref() {
        None | Some("auto") => Parallelism::Auto,
        Some("off") | Some("1") => Parallelism::Off,
        Some(v) => Parallelism::Fixed(v.parse().expect("IOENC_TEST_THREADS")),
    }
}

/// One constraint, kept as data so failing cases can be shrunk by removal.
#[derive(Debug, Clone)]
enum Op {
    Face(Vec<usize>),
    Dom(usize, usize),
    Disj(usize, Vec<usize>),
}

/// Same distribution as `proptests.rs`, but producing a removable op list.
fn random_ops(rng: &mut SplitMix64) -> Vec<Op> {
    let mut ops = Vec::new();
    for _ in 0..rng.gen_range(0..3) {
        let mut f: Vec<usize> = (0..rng.gen_range(2..4))
            .map(|_| rng.gen_range(0..N))
            .collect();
        f.sort_unstable();
        f.dedup();
        if f.len() >= 2 {
            ops.push(Op::Face(f));
        }
    }
    for _ in 0..rng.gen_range(0..3) {
        let a = rng.gen_range(0..N);
        let b = rng.gen_range(0..N);
        if a != b {
            ops.push(Op::Dom(a, b));
        }
    }
    for _ in 0..rng.gen_range(0..2) {
        let p = rng.gen_range(0..N);
        let mut c: Vec<usize> = (0..rng.gen_range(2..3))
            .map(|_| rng.gen_range(0..N))
            .filter(|&s| s != p)
            .collect();
        c.sort_unstable();
        c.dedup();
        if c.len() >= 2 {
            ops.push(Op::Disj(p, c));
        }
    }
    ops
}

fn build(ops: &[Op]) -> ConstraintSet {
    let mut cs = ConstraintSet::new(N);
    for op in ops {
        match op {
            Op::Face(f) => cs.add_face(f.clone()),
            Op::Dom(a, b) => cs.add_dominance(*a, *b),
            Op::Disj(p, c) => cs.add_disjunctive(*p, c.clone()),
        };
    }
    cs
}

fn render(ops: &[Op]) -> String {
    ops.iter()
        .map(|op| format!("  {op:?}\n"))
        .collect::<String>()
}

/// (a) An unlimited budget makes `encode_auto` the exact encoder: same
/// answering rung, same codes, same infeasibility verdicts.
#[test]
fn unlimited_auto_is_the_exact_encoder() {
    let mut rng = SplitMix64::new(0xB0);
    let par = test_parallelism();
    for case in 0..CASES {
        let ops = random_ops(&mut rng);
        let cs = build(&ops);
        let exact = exact_encode(&cs, &ExactOptions::new().with_parallelism(par));
        let auto_ = encode_auto(&cs, &AutoOptions::new().with_parallelism(par));
        match (exact, auto_) {
            (Ok(e), Ok(a)) => {
                assert_eq!(a.rung, AutoRung::Exact, "case {case}");
                assert!(a.optimal, "case {case}");
                assert_eq!(a.encoding.codes(), e.codes(), "case {case}");
            }
            (Err(EncodeError::Infeasible { .. }), Err(EncodeError::Infeasible { .. })) => {}
            (e, a) => panic!("case {case} diverged: exact {e:?} vs auto {a:?}"),
        }
    }
}

/// (b) Whatever rung a starved ladder answers from, the encoding passes
/// the semantic checker — and the sweep exercises every rung at least
/// once.
#[test]
fn every_rung_answer_passes_the_constraint_checker() {
    let mut rng = SplitMix64::new(0xB1);
    let par = test_parallelism();
    let mut rungs_seen = [0usize; 3];
    for case in 0..CASES {
        let ops = random_ops(&mut rng);
        let cs = build(&ops);
        let budgets = [
            // Starves primes only: bounded answers where exact cannot.
            Budget::unlimited().with_max_primes(2),
            // Sometimes enough for exact, sometimes not.
            Budget::unlimited().with_max_primes(8).with_max_evals(4_000),
            // Starves primes, cover and evaluations: the ladder falls all
            // the way to the heuristic or the greedy fallback.
            Budget::unlimited()
                .with_max_primes(2)
                .with_max_cover_nodes(1)
                .with_max_evals(10),
        ];
        for (i, budget) in budgets.into_iter().enumerate() {
            let opts = AutoOptions::new().with_budget(budget).with_parallelism(par);
            match encode_auto(&cs, &opts) {
                Ok(r) => {
                    assert!(
                        r.encoding.satisfies(&cs),
                        "case {case} budget {i}: rung {} answer violates constraints",
                        r.rung
                    );
                    assert_eq!(
                        count_violations(&cs, &r.encoding),
                        0,
                        "case {case} budget {i}"
                    );
                    rungs_seen[r.rung as usize] += 1;
                }
                Err(EncodeError::Infeasible { .. }) => {}
                Err(e) => panic!("case {case} budget {i}: ladder gave up: {e}"),
            }
        }
    }
    assert!(
        rungs_seen.iter().all(|&c| c > 0),
        "sweep never exercised every rung: {rungs_seen:?}"
    );
}

/// (c) With only work-unit budgets, the answering rung, the codes and the
/// work counters are bit-identical across thread counts.
#[test]
fn budgeted_outcomes_are_identical_across_thread_counts() {
    let mut rng = SplitMix64::new(0xB2);
    for case in 0..24 {
        let ops = random_ops(&mut rng);
        let cs = build(&ops);
        let budget = Budget::unlimited()
            .with_max_primes(6)
            .with_max_cover_nodes(16)
            .with_max_evals(400);
        let run = |par: Parallelism| {
            encode_auto(
                &cs,
                &AutoOptions::new()
                    .with_budget(budget.clone())
                    .with_parallelism(par),
            )
        };
        let reference = run(Parallelism::Off);
        for par in [
            Parallelism::Fixed(2),
            Parallelism::Fixed(4),
            Parallelism::Auto,
        ] {
            match (&reference, &run(par)) {
                (Ok(a), Ok(b)) => {
                    assert_eq!(a.rung, b.rung, "case {case} {par:?}");
                    assert_eq!(
                        a.encoding.codes(),
                        b.encoding.codes(),
                        "case {case} {par:?}"
                    );
                    assert_eq!(
                        a.stats.work_units(),
                        b.stats.work_units(),
                        "case {case} {par:?}"
                    );
                }
                (Err(a), Err(b)) => assert_eq!(
                    std::mem::discriminant(a),
                    std::mem::discriminant(b),
                    "case {case} {par:?}: {a:?} vs {b:?}"
                ),
                (a, b) => panic!("case {case} {par:?} diverged: {a:?} vs {b:?}"),
            }
        }
    }
}

/// Checks node-budget monotonicity on one constraint set; `Some(reason)`
/// on violation.
fn monotonicity_failure(ops: &[Op]) -> Option<String> {
    let cs = build(ops);
    let run = |nodes: u64| {
        exact_encode(
            &cs,
            &ExactOptions::new().with_budget(Budget::unlimited().with_max_cover_nodes(nodes)),
        )
    };
    for b1 in [1u64, 2, 4, 8, 16] {
        let b2 = b1 * 2;
        match (run(b1), run(b2)) {
            (Ok(e1), Ok(e2)) if e1.width() != e2.width() => {
                return Some(format!(
                    "budget {b1} gave cover cost {}, budget {b2} gave {}",
                    e1.width(),
                    e2.width()
                ));
            }
            (Ok(e1), Err(e)) => {
                return Some(format!(
                    "budget {b1} succeeded (cost {}) but budget {b2} failed: {e}",
                    e1.width()
                ))
            }
            _ => {}
        }
    }
    None
}

/// Greedy constraint-removal shrinking: drop ops while the failure
/// persists.
fn shrink(ops: &[Op]) -> Vec<Op> {
    let mut cur = ops.to_vec();
    loop {
        let Some(i) = (0..cur.len()).find(|&i| {
            let mut cand = cur.clone();
            cand.remove(i);
            monotonicity_failure(&cand).is_some()
        }) else {
            return cur;
        };
        cur.remove(i);
    }
}

/// Node budgets are monotone: if the exact encoder succeeds under budget
/// B1, it succeeds under any B2 > B1 with the same cover cost. Failures
/// are shrunk to a minimal failing constraint set before being reported.
#[test]
fn node_budget_is_monotone() {
    let mut rng = SplitMix64::new(0xB3);
    for _ in 0..CASES {
        let ops = random_ops(&mut rng);
        if let Some(msg) = monotonicity_failure(&ops) {
            let minimal = shrink(&ops);
            panic!(
                "node-budget monotonicity violated: {msg}\n\
                 minimal failing constraint set over {N} symbols:\n{}",
                render(&minimal)
            );
        }
    }
}

/// A `planet`-shaped instance: many symbols under a few small face
/// constraints, so prime generation blows up while the constraints stay
/// easy to satisfy (the paper's Table 1 rows `planet`/`vmecont` exceed
/// 50 000 primes this way).
fn planet_like(n: usize) -> ConstraintSet {
    let mut cs = ConstraintSet::new(n);
    for i in (0..n.saturating_sub(2)).step_by(3) {
        cs.add_face(vec![i, i + 1, i + 2]);
    }
    for i in 0..9.min(n / 2) {
        cs.add_dominance(i, i + n / 2);
    }
    cs
}

/// In-suite scale model of the acceptance case: a starved prime budget on
/// a planet-like instance degrades past the exact rung to a verified
/// encoding, and doubling the budget reaches an equal-or-stronger rung.
#[test]
fn starved_planet_instance_degrades_to_a_verified_encoding() {
    let cs = planet_like(10);
    let run = |primes: usize| {
        encode_auto(
            &cs,
            &AutoOptions::new().with_budget(Budget::unlimited().with_max_primes(primes)),
        )
        .unwrap()
    };
    let starved = run(60);
    assert!(starved.rung > AutoRung::Exact, "rung {}", starved.rung);
    assert!(starved.encoding.satisfies(&cs));
    assert!(
        starved.attempts.iter().any(|a| a.rung == AutoRung::Exact),
        "exact attempt is on record"
    );
    for doubled in [120, 240, 100_000] {
        let r = run(doubled);
        assert!(
            r.rung <= starved.rung,
            "budget {doubled}: weaker rung {} than {}",
            r.rung,
            starved.rung
        );
        assert!(r.encoding.satisfies(&cs));
        assert!(r.encoding.width() <= starved.encoding.width());
    }
}

/// The literal acceptance case — a Table-1-scale prime blow-up against
/// the 50 000-prime budget. Like `planet`, the instance pairs many
/// symbols with only a couple of constraints, so the prime dichotomies
/// blow past 50 000 (an unconstrained 16-symbol instance already
/// generates > 2^16 raw terms in one `ps` step). Minutes in debug mode,
/// so ignored by default; CI runs it with
/// `cargo test --release -- --ignored`.
#[test]
#[ignore = "release-scale prime blow-up; CI runs it with --release -- --ignored"]
fn planet_scale_50k_prime_budget_returns_heuristic_encoding() {
    let mut cs = ConstraintSet::new(16);
    cs.add_dominance(0, 8);
    cs.add_dominance(1, 9);
    let run = |primes: usize| {
        encode_auto(
            &cs,
            &AutoOptions::new().with_budget(Budget::unlimited().with_max_primes(primes)),
        )
        .unwrap()
    };
    let r = run(50_000);
    assert_eq!(r.rung, AutoRung::Heuristic, "rung {}", r.rung);
    assert!(r.encoding.satisfies(&cs));
    assert!(
        r.attempts
            .iter()
            .any(|a| a.rung == AutoRung::Exact && a.error.is_some()),
        "the exact rung's budget expiry is on record"
    );
    // Doubling the budget reaches an equal-or-stronger rung, never a
    // worse answer.
    let r2 = run(100_000);
    assert!(r2.rung <= r.rung);
    assert!(r2.encoding.satisfies(&cs));
    assert!(r2.encoding.width() <= r.encoding.width());
}
