//! Property-style tests for [`canonical_form`]: the canonical key must be
//! invariant under symbol-order permutation, constraint-order permutation,
//! and constraint duplication — and must *change* under any semantic
//! mutation. Randomness comes from the workspace [`SplitMix64`]; seeds are
//! fixed, so every run checks the same cases.

use ioenc_core::{canonical_form, ConstraintSet};
use ioenc_rng::SplitMix64;

const ROUNDS: usize = 60;

/// An abstract constraint-set description over symbol ids `0..n`, so the
/// same semantics can be instantiated under different symbol orders.
#[derive(Clone)]
struct Spec {
    names: Vec<String>,
    faces: Vec<(Vec<usize>, Vec<usize>)>,
    doms: Vec<(usize, usize)>,
    disj: Vec<(usize, Vec<usize>)>,
    dist2: Vec<(usize, usize)>,
    nonfaces: Vec<Vec<usize>>,
}

impl Spec {
    fn random(rng: &mut SplitMix64) -> Spec {
        let n = 3 + rng.gen_range(0..5); // 3..=7 symbols
        let names = (0..n).map(|i| format!("s{i}")).collect();
        let mut spec = Spec {
            names,
            faces: Vec::new(),
            doms: Vec::new(),
            disj: Vec::new(),
            dist2: Vec::new(),
            nonfaces: Vec::new(),
        };
        let subset = |rng: &mut SplitMix64, min: usize| {
            let mut ids: Vec<usize> = (0..n).collect();
            rng.shuffle(&mut ids);
            let k = min + rng.gen_range(0..(n - min));
            ids.truncate(k.max(min));
            ids
        };
        for _ in 0..1 + rng.gen_range(0..3) {
            let members = subset(rng, 2);
            let dc = if rng.gen_bool(0.3) {
                (0..n).filter(|i| !members.contains(i)).take(1).collect()
            } else {
                Vec::new()
            };
            spec.faces.push((members, dc));
        }
        for _ in 0..rng.gen_range(0..3) {
            let a = rng.gen_range(0..n);
            let b = (a + 1 + rng.gen_range(0..(n - 1))) % n;
            spec.doms.push((a, b));
        }
        if rng.gen_bool(0.5) {
            let parent = rng.gen_range(0..n);
            let mut children = subset(rng, 2);
            children.retain(|&c| c != parent);
            if children.len() >= 2 {
                spec.disj.push((parent, children));
            }
        }
        if rng.gen_bool(0.4) {
            let a = rng.gen_range(0..n);
            let b = (a + 1 + rng.gen_range(0..(n - 1))) % n;
            spec.dist2.push((a, b));
        }
        if rng.gen_bool(0.4) {
            spec.nonfaces.push(subset(rng, 2));
        }
        spec
    }

    /// Builds the set with symbols declared in `order` (a permutation of
    /// `0..n`) and constraints appended in `shuffle`-determined order.
    fn instantiate(&self, order: &[usize], rng: &mut SplitMix64) -> ConstraintSet {
        let n = self.names.len();
        let mut inv = vec![0usize; n];
        for (pos, &id) in order.iter().enumerate() {
            inv[id] = pos;
        }
        let names: Vec<String> = order.iter().map(|&id| self.names[id].clone()).collect();
        let mut cs = ConstraintSet::with_names(names);
        // (kind, index-within-kind) pairs, shuffled: insertion order within
        // and across kinds must not matter.
        let mut items: Vec<(u8, usize)> = Vec::new();
        items.extend((0..self.faces.len()).map(|i| (0u8, i)));
        items.extend((0..self.doms.len()).map(|i| (1u8, i)));
        items.extend((0..self.disj.len()).map(|i| (2u8, i)));
        items.extend((0..self.dist2.len()).map(|i| (3u8, i)));
        items.extend((0..self.nonfaces.len()).map(|i| (4u8, i)));
        rng.shuffle(&mut items);
        for (kind, i) in items {
            match kind {
                0 => {
                    let (m, dc) = &self.faces[i];
                    cs.add_face_with_dc(m.iter().map(|&s| inv[s]), dc.iter().map(|&s| inv[s]));
                }
                1 => {
                    let (a, b) = self.doms[i];
                    cs.add_dominance(inv[a], inv[b]);
                }
                2 => {
                    let (p, ch) = &self.disj[i];
                    cs.add_disjunctive(inv[*p], ch.iter().map(|&s| inv[s]));
                }
                3 => {
                    let (a, b) = self.dist2[i];
                    cs.add_distance2(inv[a], inv[b]);
                }
                _ => {
                    cs.add_nonface(self.nonfaces[i].iter().map(|&s| inv[s]));
                }
            }
        }
        cs
    }
}

fn identity(n: usize) -> Vec<usize> {
    (0..n).collect()
}

#[test]
fn key_is_invariant_under_symbol_and_constraint_permutation() {
    let mut rng = SplitMix64::new(0xcafe_0001);
    for round in 0..ROUNDS {
        let spec = Spec::random(&mut rng);
        let base = spec.instantiate(&identity(spec.names.len()), &mut rng);
        let key = canonical_form(&base).key;
        for _ in 0..3 {
            let mut order = identity(spec.names.len());
            rng.shuffle(&mut order);
            let permuted = spec.instantiate(&order, &mut rng);
            let form = canonical_form(&permuted);
            assert_eq!(
                form.key, key,
                "round {round}: permuted spelling changed the key\nbase:\n{base}\npermuted:\n{permuted}"
            );
            // The canonical text itself is the invariant, not just its hash.
            assert_eq!(form.text, canonical_form(&base).text, "round {round}");
        }
    }
}

#[test]
fn key_is_invariant_under_constraint_duplication() {
    let mut rng = SplitMix64::new(0xcafe_0002);
    for round in 0..ROUNDS {
        let mut spec = Spec::random(&mut rng);
        let key = canonical_form(&spec.instantiate(&identity(spec.names.len()), &mut rng)).key;
        // Duplicate a random sample of constraints (possibly several times).
        for _ in 0..1 + rng.gen_range(0..3) {
            if !spec.faces.is_empty() {
                let i = rng.gen_range(0..spec.faces.len());
                spec.faces.push(spec.faces[i].clone());
            }
            if !spec.doms.is_empty() {
                let i = rng.gen_range(0..spec.doms.len());
                spec.doms.push(spec.doms[i]);
            }
            if !spec.nonfaces.is_empty() {
                let i = rng.gen_range(0..spec.nonfaces.len());
                spec.nonfaces.push(spec.nonfaces[i].clone());
            }
        }
        let doubled = spec.instantiate(&identity(spec.names.len()), &mut rng);
        assert_eq!(
            canonical_form(&doubled).key,
            key,
            "round {round}: duplicated constraints changed the key\n{doubled}"
        );
    }
}

#[test]
fn semantic_mutations_change_the_key() {
    let mut rng = SplitMix64::new(0xcafe_0003);
    let mut checked = 0usize;
    for round in 0..ROUNDS {
        let spec = Spec::random(&mut rng);
        let n = spec.names.len();
        let base = spec.instantiate(&identity(n), &mut rng);
        let key = canonical_form(&base).key;

        // Mutation 1: flip a dominance direction (if one exists and its
        // mirror is not already present).
        if let Some(&(a, b)) = spec.doms.first() {
            if !spec.doms.contains(&(b, a)) {
                let mut m = spec.clone();
                m.doms[0] = (b, a);
                let mutated = m.instantiate(&identity(n), &mut rng);
                assert_ne!(
                    canonical_form(&mutated).key,
                    key,
                    "round {round}: flipped dominance kept the key\n{base}\nvs\n{mutated}"
                );
                checked += 1;
            }
        }

        // Mutation 2: drop the first face constraint entirely.
        if spec.faces.len() > 1 || (spec.faces.len() == 1 && spec.faces[0].0.len() > 2) {
            let mut m = spec.clone();
            m.faces.remove(0);
            if !m.faces.is_empty() || !m.doms.is_empty() || !m.nonfaces.is_empty() {
                let mutated = m.instantiate(&identity(n), &mut rng);
                if canonical_form(&mutated).text != canonical_form(&base).text {
                    assert_ne!(
                        canonical_form(&mutated).key,
                        key,
                        "round {round}: dropped face kept the key"
                    );
                    checked += 1;
                }
            }
        }

        // Mutation 3: rename a symbol (a different alphabet is a
        // different canonical text, hence a different key).
        let mut m = spec.clone();
        m.names[0] = "zz_renamed".to_string();
        let mutated = m.instantiate(&identity(n), &mut rng);
        assert_ne!(
            canonical_form(&mutated).key,
            key,
            "round {round}: renamed symbol kept the key"
        );
        checked += 1;
    }
    assert!(checked >= ROUNDS, "mutation coverage too thin: {checked}");
}
