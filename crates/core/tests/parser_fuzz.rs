//! Robustness: the constraint-text parser must never panic on arbitrary
//! input, and must round-trip whatever it accepts. Driven by the
//! workspace's deterministic PRNG.

use ioenc_core::ConstraintSet;
use ioenc_rng::SplitMix64;

const SOUP: &[char] = &[
    'a', 'b', 'c', '(', ')', '>', '=', '|', '&', '!', ',', '[', ']', ' ', '\n', '#', 'x', '2', '-',
];

fn random_soup(rng: &mut SplitMix64, max_len: usize) -> String {
    let len = rng.gen_range(0..max_len + 1);
    (0..len)
        .map(|_| SOUP[rng.gen_range(0..SOUP.len())])
        .collect()
}

#[test]
fn parser_never_panics() {
    let mut rng = SplitMix64::new(0xa0);
    for _ in 0..256 {
        let text = random_soup(&mut rng, 200);
        let _ = ConstraintSet::parse(&["a", "b", "c"], &text);
    }
}

#[test]
fn parser_never_panics_on_constraint_soup() {
    let mut rng = SplitMix64::new(0xa1);
    let syms = ["a", "b", "c"];
    let sym = |rng: &mut SplitMix64| syms[rng.gen_range(0..3)];
    for _ in 0..256 {
        let nlines = rng.gen_range(0..8);
        let lines: Vec<String> = (0..nlines)
            .map(|_| match rng.gen_range(0..7) {
                0 => {
                    let n = rng.gen_range(0..4);
                    let inner: Vec<&str> = (0..n).map(|_| sym(&mut rng)).collect();
                    format!("({})", inner.join(","))
                }
                1 => format!("{}>{}", sym(&mut rng), sym(&mut rng)),
                2 => format!("{}={}|{}", sym(&mut rng), sym(&mut rng), sym(&mut rng)),
                3 => format!("({}&{})>={}", sym(&mut rng), sym(&mut rng), sym(&mut rng)),
                4 => {
                    let n = rng.gen_range(0..3);
                    let inner: Vec<&str> = (0..n).map(|_| sym(&mut rng)).collect();
                    format!("dist2({})", inner.join(","))
                }
                5 => {
                    let n = rng.gen_range(0..3);
                    let inner: Vec<&str> = (0..n).map(|_| sym(&mut rng)).collect();
                    format!("!({})", inner.join(","))
                }
                _ => random_soup(&mut rng, 15),
            })
            .collect();
        let text = lines.join("\n");
        let _ = ConstraintSet::parse(&syms, &text);
    }
}

#[test]
fn display_round_trips() {
    let mut rng = SplitMix64::new(0xa2);
    for _ in 0..256 {
        let mut cs = ConstraintSet::new(4);
        for _ in 0..rng.gen_range(0..3) {
            let mut f: Vec<usize> = (0..rng.gen_range(2..4))
                .map(|_| rng.gen_range(0..4))
                .collect();
            f.sort_unstable();
            f.dedup();
            if f.len() >= 2 {
                cs.add_face(f);
            }
        }
        for _ in 0..rng.gen_range(0..3) {
            let a = rng.gen_range(0..4);
            let b = rng.gen_range(0..4);
            if a != b {
                cs.add_dominance(a, b);
            }
        }
        let text = cs.to_string();
        let names = ["s0", "s1", "s2", "s3"];
        let again = ConstraintSet::parse(&names, &text).expect("display output reparses");
        assert_eq!(again.to_string(), text);
    }
}
