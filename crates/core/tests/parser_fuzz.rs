//! Robustness: the constraint-text parser must never panic on arbitrary
//! input, and must round-trip whatever it accepts.

use ioenc_core::ConstraintSet;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn parser_never_panics(text in ".{0,200}") {
        let _ = ConstraintSet::parse(&["a", "b", "c"], &text);
    }

    #[test]
    fn parser_never_panics_on_constraint_soup(
        lines in prop::collection::vec(
            prop_oneof![
                "\\([abc,\\[\\]]{0,10}\\)",
                "[abc]>[abc]",
                "[abc]=[abc]\\|[abc]",
                "\\([abc&]{1,5}\\)>=[abc]",
                "dist2\\([abc,]{0,5}\\)",
                "!\\([abc,]{0,6}\\)",
                "[a-z()>=|&!,\\[\\] ]{0,15}",
            ],
            0..8,
        )
    ) {
        let text = lines.join("\n");
        let _ = ConstraintSet::parse(&["a", "b", "c"], &text);
    }

    #[test]
    fn display_round_trips(
        faces in prop::collection::vec(prop::collection::vec(0..4usize, 2..4), 0..3),
        doms in prop::collection::vec((0..4usize, 0..4usize), 0..3),
    ) {
        let mut cs = ConstraintSet::new(4);
        for f in faces {
            let mut f = f.clone();
            f.sort_unstable();
            f.dedup();
            if f.len() >= 2 {
                cs.add_face(f);
            }
        }
        for (a, b) in doms {
            if a != b {
                cs.add_dominance(a, b);
            }
        }
        let text = cs.to_string();
        let names: Vec<&str> = (0..4).map(|i| ["s0", "s1", "s2", "s3"][i]).collect();
        let again = ConstraintSet::parse(&names, &text).expect("display output reparses");
        prop_assert_eq!(again.to_string(), text);
    }
}
