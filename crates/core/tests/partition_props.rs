//! Property tests for the Kernighan–Lin / Fiduccia–Mattheyses-style
//! bipartitioner used by the bounded-length heuristic.

use ioenc_bitset::BitSet;
use ioenc_core::{bipartition, PartitionOptions};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn partitions_are_exact_and_balanced(
        n in 2usize..12,
        nets in prop::collection::vec(prop::collection::vec(0usize..12, 2..5), 0..8),
    ) {
        let nets: Vec<BitSet> = nets
            .into_iter()
            .map(|m| BitSet::from_indices(n, m.into_iter().filter(|&s| s < n)))
            .filter(|s| s.count() >= 2)
            .collect();
        let max_side = n.div_ceil(2).max(1);
        let (a, b) = bipartition(
            n,
            &nets,
            &PartitionOptions {
                max_side,
                passes: 4,
            },
        );
        // Exact partition.
        prop_assert_eq!(a.len() + b.len(), n);
        let mut all: Vec<usize> = a.iter().chain(b.iter()).copied().collect();
        all.sort_unstable();
        prop_assert_eq!(all, (0..n).collect::<Vec<_>>());
        // Non-empty sides within capacity.
        prop_assert!(!a.is_empty() && !b.is_empty());
        prop_assert!(a.len() <= max_side && b.len() <= max_side);
    }

    #[test]
    fn refinement_never_exceeds_trivial_cut(
        n in 4usize..10,
        nets in prop::collection::vec(prop::collection::vec(0usize..10, 2..4), 1..6),
    ) {
        let nets: Vec<BitSet> = nets
            .into_iter()
            .map(|m| BitSet::from_indices(n, m.into_iter().filter(|&s| s < n)))
            .filter(|s| s.count() >= 2)
            .collect();
        let (a, _) = bipartition(n, &nets, &PartitionOptions::default());
        let cut = nets
            .iter()
            .filter(|net| {
                let in_a = net.iter().filter(|s| a.contains(s)).count();
                in_a != 0 && in_a != net.count()
            })
            .count();
        // The cut can never exceed the total net count; and with no
        // capacity pressure a single-net instance is never cut.
        prop_assert!(cut <= nets.len());
        if nets.len() == 1 && nets[0].count() < n {
            prop_assert_eq!(cut, 0, "a lone embeddable net must not be cut");
        }
    }
}
