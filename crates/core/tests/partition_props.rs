//! Randomized tests for the Kernighan–Lin / Fiduccia–Mattheyses-style
//! bipartitioner used by the bounded-length heuristic. Driven by the
//! workspace's deterministic PRNG.

use ioenc_bitset::BitSet;
use ioenc_core::{bipartition, PartitionOptions};
use ioenc_rng::SplitMix64;

const CASES: usize = 128;

fn random_nets(rng: &mut SplitMix64, n: usize, max_nets: usize, net_max: usize) -> Vec<BitSet> {
    (0..rng.gen_range(0..max_nets))
        .map(|_| {
            let members: Vec<usize> = (0..rng.gen_range(2..net_max + 1))
                .map(|_| rng.gen_range(0..n))
                .collect();
            BitSet::from_indices(n, members)
        })
        .filter(|s| s.count() >= 2)
        .collect()
}

#[test]
fn partitions_are_exact_and_balanced() {
    let mut rng = SplitMix64::new(0x90);
    for _ in 0..CASES {
        let n = rng.gen_range(2..12);
        let nets = random_nets(&mut rng, n, 8, 4);
        let max_side = n.div_ceil(2).max(1);
        let (a, b) = bipartition(
            n,
            &nets,
            &PartitionOptions {
                max_side,
                passes: 4,
            },
        );
        // Exact partition.
        assert_eq!(a.len() + b.len(), n);
        let mut all: Vec<usize> = a.iter().chain(b.iter()).copied().collect();
        all.sort_unstable();
        assert_eq!(all, (0..n).collect::<Vec<_>>());
        // Non-empty sides within capacity.
        assert!(!a.is_empty() && !b.is_empty());
        assert!(a.len() <= max_side && b.len() <= max_side);
    }
}

#[test]
fn refinement_never_exceeds_trivial_cut() {
    let mut rng = SplitMix64::new(0x91);
    for _ in 0..CASES {
        let n = rng.gen_range(4..10);
        let nets = random_nets(&mut rng, n, 6, 3);
        if nets.is_empty() {
            continue;
        }
        let (a, _) = bipartition(n, &nets, &PartitionOptions::default());
        let cut = nets
            .iter()
            .filter(|net| {
                let in_a = net.iter().filter(|s| a.contains(s)).count();
                in_a != 0 && in_a != net.count()
            })
            .count();
        // The cut can never exceed the total net count; and with no
        // capacity pressure a single-net instance is never cut.
        assert!(cut <= nets.len());
        if nets.len() == 1 && nets[0].count() < n {
            assert_eq!(cut, 0, "a lone embeddable net must not be cut");
        }
    }
}
