//! Property tests for the framework's structural invariants: raising,
//! validity, prime generation, don't-care faces, extended disjunctives and
//! the bounded-length solvers.

use ioenc_core::{
    bounded_exact_encode, check_feasible, count_violations, encode_with_chains, exact_encode,
    heuristic_encode, is_valid, oracle_min_width, raise_dichotomy, BoundedExactOptions,
    ChainConstraint, ChainOptions, ConstraintSet, CostFunction, Dichotomy, EncodeError,
    ExactOptions, HeuristicOptions, OracleOptions,
};
use proptest::prelude::*;

const N: usize = 5;

/// Mixed constraint sets including don't-care faces and extended
/// disjunctive constraints.
fn arb_rich_constraints() -> impl Strategy<Value = ConstraintSet> {
    let face = (
        prop::collection::vec(0..N, 2..4),
        prop::collection::vec(0..N, 0..2),
    );
    let dom = (0..N, 0..N);
    let ext = (
        0..N,
        prop::collection::vec(prop::collection::vec(0..N, 1..3), 1..3),
    );
    (
        prop::collection::vec(face, 0..3),
        prop::collection::vec(dom, 0..3),
        prop::collection::vec(ext, 0..2),
    )
        .prop_map(|(faces, doms, exts)| {
            let mut cs = ConstraintSet::new(N);
            for (members, dcs) in faces {
                let mut m = members.clone();
                m.sort_unstable();
                m.dedup();
                if m.len() < 2 {
                    continue;
                }
                let dcs: Vec<usize> = dcs.into_iter().filter(|d| !m.contains(d)).collect();
                let mut d = dcs.clone();
                d.sort_unstable();
                d.dedup();
                cs.add_face_with_dc(m, d);
            }
            for (a, b) in doms {
                if a != b {
                    cs.add_dominance(a, b);
                }
            }
            for (p, conjs) in exts {
                let conjs: Vec<Vec<usize>> = conjs
                    .into_iter()
                    .map(|mut c| {
                        c.sort_unstable();
                        c.dedup();
                        c
                    })
                    .filter(|c| !c.is_empty())
                    .collect();
                if !conjs.is_empty() {
                    cs.add_extended(p, conjs);
                }
            }
            cs
        })
}

fn arb_dichotomy() -> impl Strategy<Value = Dichotomy> {
    (
        prop::collection::vec(0..N, 0..3),
        prop::collection::vec(0..N, 0..3),
    )
        .prop_map(|(l, r)| {
            let l: Vec<usize> = l.into_iter().collect();
            let r: Vec<usize> = r.into_iter().filter(|s| !l.contains(s)).collect();
            Dichotomy::from_blocks(N, l, r)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn raising_is_idempotent_and_monotone(
        cs in arb_rich_constraints(),
        d in arb_dichotomy(),
    ) {
        if let Some(raised) = raise_dichotomy(&d, &cs) {
            // Monotone: raising only adds symbols.
            prop_assert!(raised.covers_oriented(&d));
            // Idempotent.
            prop_assert_eq!(raise_dichotomy(&raised, &cs), Some(raised.clone()));
            // Raised dichotomies are valid.
            prop_assert!(is_valid(&raised, &cs));
        } else {
            // A dichotomy whose raising fails must already be invalid or
            // become contradictory; its completion cannot satisfy the
            // constraints, so if it WAS valid, some implication chain
            // conflicts — either way re-raising any sub-dichotomy of it
            // that succeeds must not equal it.
        }
    }

    #[test]
    fn invalid_dichotomies_never_raise(cs in arb_rich_constraints(), d in arb_dichotomy()) {
        if !is_valid(&d, &cs) {
            // Violations are monotone: raising cannot repair them. Raising
            // either fails or yields a dichotomy that still embeds d; in
            // both cases d itself stays invalid.
            prop_assert!(!is_valid(&d, &cs));
            if let Some(r) = raise_dichotomy(&d, &cs) {
                // If the fixpoint completes, the *monotone* violation
                // conditions must have been absent — contradiction with
                // !is_valid. Raising of invalid dichotomies must fail.
                prop_assert!(false, "invalid dichotomy raised to {r:?}");
            }
        }
    }

    #[test]
    fn feasible_rich_sets_encode_and_verify(cs in arb_rich_constraints()) {
        let feasible = check_feasible(&cs).is_feasible();
        match exact_encode(&cs, &ExactOptions::default()) {
            Ok(enc) => {
                prop_assert!(feasible);
                prop_assert!(enc.verify(&cs).is_empty(), "violations: {:?}", enc.verify(&cs));
                // Oracle agreement on minimality.
                let oracle = oracle_min_width(&cs, &OracleOptions::default()).unwrap();
                prop_assert_eq!(Some(enc.width()), oracle);
            }
            Err(EncodeError::Infeasible { .. }) => prop_assert!(!feasible),
            Err(e) => prop_assert!(false, "unexpected: {e}"),
        }
    }

    #[test]
    fn heuristic_never_beats_bounded_exact(
        faces in prop::collection::vec(prop::collection::vec(0..N, 2..4), 1..3),
    ) {
        let mut cs = ConstraintSet::new(N);
        for f in faces {
            let mut f = f.clone();
            f.sort_unstable();
            f.dedup();
            if f.len() >= 2 {
                cs.add_face(f);
            }
        }
        let (_, exact_cost) = bounded_exact_encode(&cs, &BoundedExactOptions::default()).unwrap();
        let heur = heuristic_encode(&cs, &HeuristicOptions::default()).unwrap();
        prop_assert!(count_violations(&cs, &heur) as u64 >= exact_cost);
    }

    #[test]
    fn heuristic_cost_functions_agree_on_satisfiability(
        faces in prop::collection::vec(prop::collection::vec(0..N, 2..3), 1..3),
    ) {
        let mut cs = ConstraintSet::new(N);
        for f in faces {
            let mut f = f.clone();
            f.sort_unstable();
            f.dedup();
            if f.len() >= 2 {
                cs.add_face(f);
            }
        }
        // If the violation-driven heuristic satisfies everything, the
        // encoding is injective and verified regardless of cost function.
        for cost in [CostFunction::Violations, CostFunction::Cubes] {
            let enc = heuristic_encode(
                &cs,
                &HeuristicOptions {
                    cost,
                    selection_cap: 40,
                    ..Default::default()
                },
            )
            .unwrap();
            let mut codes = enc.codes().to_vec();
            codes.sort_unstable();
            codes.dedup();
            prop_assert_eq!(codes.len(), N);
        }
    }

    #[test]
    fn chain_encodings_satisfy_chains(start in 0..3usize, len in 2..4usize) {
        let cs = ConstraintSet::new(6);
        let states: Vec<usize> = (start..start + len).collect();
        let chain = ChainConstraint::new(states);
        match encode_with_chains(&cs, std::slice::from_ref(&chain), &ChainOptions::default()) {
            Ok(enc) => {
                prop_assert!(chain.is_satisfied(&enc));
                let mut codes = enc.codes().to_vec();
                codes.sort_unstable();
                codes.dedup();
                prop_assert_eq!(codes.len(), 6);
            }
            Err(e) => prop_assert!(false, "unconstrained chain failed: {e}"),
        }
    }
}
