//! Randomized tests for the framework's structural invariants: raising,
//! validity, prime generation, don't-care faces, extended disjunctives and
//! the bounded-length solvers. Driven by the workspace's deterministic PRNG.
// The free-function entry points are deprecated in favor of `Solver`,
// but must keep working until removal; this suite stays on them as
// coverage of the delegating wrappers.
#![allow(deprecated)]

use ioenc_core::{
    bounded_exact_encode, check_feasible, count_violations, encode_with_chains, exact_encode,
    heuristic_encode, is_valid, oracle_min_width, raise_dichotomy, BoundedExactOptions,
    ChainConstraint, ChainOptions, ConstraintSet, CostFunction, Dichotomy, EncodeError,
    ExactOptions, HeuristicOptions, OracleOptions,
};
use ioenc_rng::SplitMix64;

const N: usize = 5;
const CASES: usize = 64;

/// Mixed constraint sets including don't-care faces and extended
/// disjunctive constraints.
fn random_rich_constraints(rng: &mut SplitMix64) -> ConstraintSet {
    let mut cs = ConstraintSet::new(N);
    for _ in 0..rng.gen_range(0..3) {
        let mut m: Vec<usize> = (0..rng.gen_range(2..4))
            .map(|_| rng.gen_range(0..N))
            .collect();
        m.sort_unstable();
        m.dedup();
        if m.len() < 2 {
            continue;
        }
        let mut d: Vec<usize> = (0..rng.gen_range(0..2))
            .map(|_| rng.gen_range(0..N))
            .filter(|s| !m.contains(s))
            .collect();
        d.sort_unstable();
        d.dedup();
        cs.add_face_with_dc(m, d);
    }
    for _ in 0..rng.gen_range(0..3) {
        let a = rng.gen_range(0..N);
        let b = rng.gen_range(0..N);
        if a != b {
            cs.add_dominance(a, b);
        }
    }
    for _ in 0..rng.gen_range(0..2) {
        let p = rng.gen_range(0..N);
        let conjs: Vec<Vec<usize>> = (0..rng.gen_range(1..3))
            .map(|_| {
                let mut c: Vec<usize> = (0..rng.gen_range(1..3))
                    .map(|_| rng.gen_range(0..N))
                    .collect();
                c.sort_unstable();
                c.dedup();
                c
            })
            .filter(|c| !c.is_empty())
            .collect();
        if !conjs.is_empty() {
            cs.add_extended(p, conjs);
        }
    }
    cs
}

fn random_dichotomy(rng: &mut SplitMix64) -> Dichotomy {
    let l: Vec<usize> = (0..rng.gen_range(0..3))
        .map(|_| rng.gen_range(0..N))
        .collect();
    let r: Vec<usize> = (0..rng.gen_range(0..3))
        .map(|_| rng.gen_range(0..N))
        .filter(|s| !l.contains(s))
        .collect();
    Dichotomy::from_blocks(N, l, r)
}

fn random_faces(rng: &mut SplitMix64, max_faces: usize, face_max: usize) -> ConstraintSet {
    let mut cs = ConstraintSet::new(N);
    for _ in 0..rng.gen_range(1..max_faces + 1) {
        let mut f: Vec<usize> = (0..rng.gen_range(2..face_max + 1))
            .map(|_| rng.gen_range(0..N))
            .collect();
        f.sort_unstable();
        f.dedup();
        if f.len() >= 2 {
            cs.add_face(f);
        }
    }
    cs
}

#[test]
fn raising_is_idempotent_and_monotone() {
    let mut rng = SplitMix64::new(0xf0);
    for _ in 0..CASES {
        let cs = random_rich_constraints(&mut rng);
        let d = random_dichotomy(&mut rng);
        if let Some(raised) = raise_dichotomy(&d, &cs) {
            // Monotone: raising only adds symbols.
            assert!(raised.covers_oriented(&d));
            // Idempotent.
            assert_eq!(raise_dichotomy(&raised, &cs), Some(raised.clone()));
            // Raised dichotomies are valid.
            assert!(is_valid(&raised, &cs));
        }
    }
}

#[test]
fn invalid_dichotomies_never_raise() {
    let mut rng = SplitMix64::new(0xf1);
    for _ in 0..CASES {
        let cs = random_rich_constraints(&mut rng);
        let d = random_dichotomy(&mut rng);
        if !is_valid(&d, &cs) {
            // Violations are monotone: raising cannot repair them, so
            // raising of an invalid dichotomy must fail.
            if let Some(r) = raise_dichotomy(&d, &cs) {
                panic!("invalid dichotomy raised to {r:?}");
            }
        }
    }
}

#[test]
fn feasible_rich_sets_encode_and_verify() {
    let mut rng = SplitMix64::new(0xf2);
    for _ in 0..CASES {
        let cs = random_rich_constraints(&mut rng);
        let feasible = check_feasible(&cs).is_feasible();
        match exact_encode(&cs, &ExactOptions::default()) {
            Ok(enc) => {
                assert!(feasible);
                assert!(
                    enc.verify(&cs).is_empty(),
                    "violations: {:?}",
                    enc.verify(&cs)
                );
                // Oracle agreement on minimality.
                let oracle = oracle_min_width(&cs, &OracleOptions::default()).unwrap();
                assert_eq!(Some(enc.width()), oracle);
            }
            Err(EncodeError::Infeasible { .. }) => assert!(!feasible),
            Err(e) => panic!("unexpected: {e}"),
        }
    }
}

#[test]
fn heuristic_never_beats_bounded_exact() {
    let mut rng = SplitMix64::new(0xf3);
    for _ in 0..CASES {
        let cs = random_faces(&mut rng, 2, 3);
        let (_, exact_cost) = bounded_exact_encode(&cs, &BoundedExactOptions::default()).unwrap();
        let heur = heuristic_encode(&cs, &HeuristicOptions::default()).unwrap();
        assert!(count_violations(&cs, &heur) as u64 >= exact_cost);
    }
}

#[test]
fn heuristic_cost_functions_agree_on_satisfiability() {
    let mut rng = SplitMix64::new(0xf4);
    for _ in 0..CASES {
        let cs = random_faces(&mut rng, 2, 2);
        // If the violation-driven heuristic satisfies everything, the
        // encoding is injective and verified regardless of cost function.
        for cost in [CostFunction::Violations, CostFunction::Cubes] {
            let opts = HeuristicOptions::new()
                .with_cost(cost)
                .with_selection_cap(40);
            let enc = heuristic_encode(&cs, &opts).unwrap();
            let mut codes = enc.codes().to_vec();
            codes.sort_unstable();
            codes.dedup();
            assert_eq!(codes.len(), N);
        }
    }
}

#[test]
fn chain_encodings_satisfy_chains() {
    for start in 0..3usize {
        for len in 2..4usize {
            let cs = ConstraintSet::new(6);
            let states: Vec<usize> = (start..start + len).collect();
            let chain = ChainConstraint::new(states);
            match encode_with_chains(&cs, std::slice::from_ref(&chain), &ChainOptions::default()) {
                Ok(enc) => {
                    assert!(chain.is_satisfied(&enc));
                    let mut codes = enc.codes().to_vec();
                    codes.sort_unstable();
                    codes.dedup();
                    assert_eq!(codes.len(), 6);
                }
                Err(e) => panic!("unconstrained chain failed: {e}"),
            }
        }
    }
}
