//! Randomized tests: cube/cover algebra against exhaustive minterm
//! semantics, driven by the workspace's deterministic PRNG.

use ioenc_cube::{Cover, Cube, VarSpec};
use ioenc_rng::SplitMix64;

const CASES: usize = 128;

fn random_spec(rng: &mut SplitMix64) -> VarSpec {
    let nvars = rng.gen_range(1..4);
    VarSpec::new((0..nvars).map(|_| rng.gen_range(2..4)).collect())
}

fn random_cube(rng: &mut SplitMix64, spec: &VarSpec) -> Cube {
    let mut c = Cube::universe(spec);
    for v in spec.vars() {
        // Keep at least one part set so cubes are rarely void.
        let keep = rng.gen_range(0..spec.parts(v));
        for k in 0..spec.parts(v) {
            if k != keep && rng.gen_bool(0.5) {
                c.clear_part(spec, v, k);
            }
        }
    }
    c
}

fn random_cover(rng: &mut SplitMix64) -> (VarSpec, Cover) {
    let spec = random_spec(rng);
    let len = rng.gen_range(0..6);
    let cubes = (0..len).map(|_| random_cube(rng, &spec)).collect();
    (spec.clone(), Cover::from_cubes(spec, cubes))
}

#[test]
fn tautology_matches_enumeration() {
    let mut rng = SplitMix64::new(0xd0);
    for _ in 0..CASES {
        let (spec, cover) = random_cover(&mut rng);
        let want = Cover::enumerate_minterms(&spec)
            .iter()
            .all(|m| cover.contains_minterm(m));
        assert_eq!(cover.is_tautology(), want);
    }
}

#[test]
fn complement_matches_enumeration() {
    let mut rng = SplitMix64::new(0xd1);
    for _ in 0..CASES {
        let (spec, cover) = random_cover(&mut rng);
        let comp = cover.complement();
        for m in Cover::enumerate_minterms(&spec) {
            assert_ne!(cover.contains_minterm(&m), comp.contains_minterm(&m));
        }
    }
}

#[test]
fn intersection_matches_enumeration() {
    let mut rng = SplitMix64::new(0xd2);
    for _ in 0..CASES {
        let (spec, cover) = random_cover(&mut rng);
        if cover.len() >= 2 {
            let a = &cover.cubes()[0];
            let b = &cover.cubes()[1];
            let i = a.intersection(&spec, b);
            for m in Cover::enumerate_minterms(&spec) {
                let in_both = a.contains_minterm(&spec, &m) && b.contains_minterm(&spec, &m);
                let in_i = i.as_ref().is_some_and(|c| c.contains_minterm(&spec, &m));
                assert_eq!(in_both, in_i);
            }
        }
    }
}

#[test]
fn containment_matches_enumeration() {
    let mut rng = SplitMix64::new(0xd3);
    for _ in 0..CASES {
        let (spec, cover) = random_cover(&mut rng);
        if !cover.is_empty() {
            let c = &cover.cubes()[0];
            let want = Cover::enumerate_minterms(&spec)
                .iter()
                .filter(|m| c.contains_minterm(&spec, m))
                .all(|m| cover.contains_minterm(m));
            assert_eq!(cover.contains_cube(c), want);
        }
    }
}

#[test]
fn scc_preserves_semantics() {
    let mut rng = SplitMix64::new(0xd4);
    for _ in 0..CASES {
        let (spec, cover) = random_cover(&mut rng);
        let mut reduced = cover.clone();
        reduced.single_cube_containment();
        for m in Cover::enumerate_minterms(&spec) {
            assert_eq!(cover.contains_minterm(&m), reduced.contains_minterm(&m));
        }
    }
}

#[test]
fn supercube_contains_both() {
    let mut rng = SplitMix64::new(0xd5);
    for _ in 0..CASES {
        let (_spec, cover) = random_cover(&mut rng);
        if cover.len() >= 2 {
            let a = &cover.cubes()[0];
            let b = &cover.cubes()[1];
            let s = a.supercube(b);
            assert!(s.contains(a));
            assert!(s.contains(b));
        }
    }
}

#[test]
fn consensus_is_implied() {
    let mut rng = SplitMix64::new(0xd6);
    for _ in 0..CASES {
        let (spec, cover) = random_cover(&mut rng);
        if cover.len() >= 2 {
            let a = cover.cubes()[0].clone();
            let b = cover.cubes()[1].clone();
            if let Some(c) = a.consensus(&spec, &b) {
                // The consensus is covered by a + b.
                let ab = Cover::from_cubes(spec.clone(), vec![a, b]);
                assert!(ab.contains_cube(&c));
            }
        }
    }
}
