//! Property tests: cube/cover algebra against exhaustive minterm semantics.

use ioenc_cube::{Cover, Cube, VarSpec};
use proptest::prelude::*;

fn arb_spec() -> impl Strategy<Value = VarSpec> {
    prop::collection::vec(2usize..4, 1..4).prop_map(VarSpec::new)
}

fn arb_cube(spec: VarSpec) -> impl Strategy<Value = Cube> {
    let total = spec.total_bits();
    prop::collection::vec(prop::bool::ANY, total).prop_map(move |bits| {
        let mut c = Cube::universe(&spec);
        for v in spec.vars() {
            let range = spec.var_range(v);
            // Keep at least one part set so cubes are rarely void.
            let mut any = false;
            for (k, b) in range.clone().enumerate() {
                if !bits[b] {
                    if k + 1 == spec.parts(v) && !any {
                        continue;
                    }
                    c.clear_part(&spec, v, k);
                } else {
                    any = true;
                }
            }
        }
        c
    })
}

fn spec_and_cover() -> impl Strategy<Value = (VarSpec, Cover)> {
    arb_spec().prop_flat_map(|spec| {
        let s2 = spec.clone();
        prop::collection::vec(arb_cube(spec.clone()), 0..6)
            .prop_map(move |cubes| (s2.clone(), Cover::from_cubes(s2.clone(), cubes)))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn tautology_matches_enumeration((spec, cover) in spec_and_cover()) {
        let want = Cover::enumerate_minterms(&spec)
            .iter()
            .all(|m| cover.contains_minterm(m));
        prop_assert_eq!(cover.is_tautology(), want);
    }

    #[test]
    fn complement_matches_enumeration((spec, cover) in spec_and_cover()) {
        let comp = cover.complement();
        for m in Cover::enumerate_minterms(&spec) {
            prop_assert_ne!(cover.contains_minterm(&m), comp.contains_minterm(&m));
        }
    }

    #[test]
    fn intersection_matches_enumeration((spec, cover) in spec_and_cover()) {
        if cover.len() >= 2 {
            let a = &cover.cubes()[0];
            let b = &cover.cubes()[1];
            let i = a.intersection(&spec, b);
            for m in Cover::enumerate_minterms(&spec) {
                let in_both = a.contains_minterm(&spec, &m) && b.contains_minterm(&spec, &m);
                let in_i = i.as_ref().is_some_and(|c| c.contains_minterm(&spec, &m));
                prop_assert_eq!(in_both, in_i);
            }
        }
    }

    #[test]
    fn containment_matches_enumeration((spec, cover) in spec_and_cover()) {
        if !cover.is_empty() {
            let c = &cover.cubes()[0];
            let want = Cover::enumerate_minterms(&spec)
                .iter()
                .filter(|m| c.contains_minterm(&spec, m))
                .all(|m| cover.contains_minterm(m));
            prop_assert_eq!(cover.contains_cube(c), want);
        }
    }

    #[test]
    fn scc_preserves_semantics((spec, cover) in spec_and_cover()) {
        let mut reduced = cover.clone();
        reduced.single_cube_containment();
        for m in Cover::enumerate_minterms(&spec) {
            prop_assert_eq!(cover.contains_minterm(&m), reduced.contains_minterm(&m));
        }
    }

    #[test]
    fn supercube_contains_both((spec, cover) in spec_and_cover()) {
        if cover.len() >= 2 {
            let a = &cover.cubes()[0];
            let b = &cover.cubes()[1];
            let s = a.supercube(b);
            prop_assert!(s.contains(a));
            prop_assert!(s.contains(b));
        }
        let _ = spec;
    }

    #[test]
    fn consensus_is_implied((spec, cover) in spec_and_cover()) {
        if cover.len() >= 2 {
            let a = cover.cubes()[0].clone();
            let b = cover.cubes()[1].clone();
            if let Some(c) = a.consensus(&spec, &b) {
                // The consensus is covered by a + b.
                let ab = Cover::from_cubes(spec.clone(), vec![a, b]);
                prop_assert!(ab.contains_cube(&c));
            }
        }
    }
}
