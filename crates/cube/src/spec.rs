//! Variable specifications: how many parts each multi-valued variable has.

use std::fmt;

/// The shape of a multi-valued function domain: one entry per variable
/// giving its number of parts (values).
///
/// Binary variables have two parts. The spec also precomputes the bit
/// offset of every variable within a cube's bit vector.
///
/// # Examples
///
/// ```
/// use ioenc_cube::VarSpec;
///
/// let spec = VarSpec::new(vec![2, 2, 4]);
/// assert_eq!(spec.num_vars(), 3);
/// assert_eq!(spec.total_bits(), 8);
/// assert_eq!(spec.offset(2), 4);
/// assert_eq!(spec.parts(2), 4);
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct VarSpec {
    parts: Vec<usize>,
    offsets: Vec<usize>,
    total: usize,
}

impl VarSpec {
    /// Creates a spec from per-variable part counts.
    ///
    /// # Panics
    ///
    /// Panics if any variable has fewer than 2 parts (a 0/1-part variable
    /// carries no information and would make several identities vacuous).
    pub fn new(parts: Vec<usize>) -> Self {
        assert!(
            parts.iter().all(|&p| p >= 2),
            "every multi-valued variable needs at least 2 parts"
        );
        let mut offsets = Vec::with_capacity(parts.len());
        let mut total = 0;
        for &p in &parts {
            offsets.push(total);
            total += p;
        }
        VarSpec {
            parts,
            offsets,
            total,
        }
    }

    /// A spec of `n` binary (two-part) variables.
    pub fn binary(n: usize) -> Self {
        Self::new(vec![2; n])
    }

    /// `n` binary input variables followed by one `outputs`-part output
    /// variable — the standard multiple-output PLA shape.
    pub fn binary_with_output(n: usize, outputs: usize) -> Self {
        let mut parts = vec![2; n];
        parts.push(outputs);
        Self::new(parts)
    }

    /// Number of variables.
    #[inline]
    pub fn num_vars(&self) -> usize {
        self.parts.len()
    }

    /// Number of parts of variable `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    #[inline]
    pub fn parts(&self, v: usize) -> usize {
        self.parts[v]
    }

    /// Bit offset of variable `v`'s part field.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    #[inline]
    pub fn offset(&self, v: usize) -> usize {
        self.offsets[v]
    }

    /// Total bits in a cube over this spec.
    #[inline]
    pub fn total_bits(&self) -> usize {
        self.total
    }

    /// The bit range of variable `v`'s part field.
    #[inline]
    pub fn var_range(&self, v: usize) -> std::ops::Range<usize> {
        let o = self.offsets[v];
        o..o + self.parts[v]
    }

    /// Iterates over variable indices.
    pub fn vars(&self) -> std::ops::Range<usize> {
        0..self.parts.len()
    }

    /// Number of minterms in the whole domain (product of part counts).
    ///
    /// Saturates at `u64::MAX` for very large domains.
    pub fn domain_size(&self) -> u64 {
        self.parts
            .iter()
            .fold(1u64, |acc, &p| acc.saturating_mul(p as u64))
    }
}

impl fmt::Debug for VarSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "VarSpec{:?}", self.parts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn offsets_and_ranges() {
        let s = VarSpec::new(vec![2, 3, 2]);
        assert_eq!(s.num_vars(), 3);
        assert_eq!(s.total_bits(), 7);
        assert_eq!(s.offset(0), 0);
        assert_eq!(s.offset(1), 2);
        assert_eq!(s.offset(2), 5);
        assert_eq!(s.var_range(1), 2..5);
        assert_eq!(s.domain_size(), 12);
    }

    #[test]
    fn binary_with_output_shape() {
        let s = VarSpec::binary_with_output(3, 5);
        assert_eq!(s.num_vars(), 4);
        assert_eq!(s.parts(3), 5);
        assert_eq!(s.total_bits(), 11);
    }

    #[test]
    #[should_panic(expected = "at least 2 parts")]
    fn rejects_single_part_variable() {
        VarSpec::new(vec![2, 1]);
    }
}
