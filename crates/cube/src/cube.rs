//! Single cubes in positional notation.

use crate::VarSpec;
use ioenc_bitset::BitSet;
use std::fmt;

/// A cube (product term) over a [`VarSpec`] domain, in positional notation.
///
/// Each variable owns a group of bits; bit `p` of variable `v` is set when
/// the cube admits value `p` for `v`. A cube *contains* a minterm when every
/// variable's value bit is set. A cube with an all-zero part field contains
/// no minterms (it is *void*).
///
/// Most operations take the spec explicitly; a cube does not carry its spec
/// (covers do).
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Cube {
    bits: BitSet,
}

impl Cube {
    /// The universal cube: every part of every variable admitted.
    pub fn universe(spec: &VarSpec) -> Self {
        Cube {
            bits: BitSet::full(spec.total_bits()),
        }
    }

    /// A cube from raw positional bits.
    ///
    /// # Panics
    ///
    /// Panics if the bit set's capacity differs from `spec.total_bits()`.
    pub fn from_bits(spec: &VarSpec, bits: BitSet) -> Self {
        assert_eq!(bits.capacity(), spec.total_bits(), "cube width mismatch");
        Cube { bits }
    }

    /// The minterm cube selecting `values[v]` for each variable.
    ///
    /// # Panics
    ///
    /// Panics if `values.len() != spec.num_vars()` or a value is out of
    /// range for its variable.
    pub fn minterm(spec: &VarSpec, values: &[usize]) -> Self {
        assert_eq!(values.len(), spec.num_vars(), "one value per variable");
        let mut bits = BitSet::new(spec.total_bits());
        for (v, &val) in values.iter().enumerate() {
            assert!(val < spec.parts(v), "value {val} out of range for var {v}");
            bits.insert(spec.offset(v) + val);
        }
        Cube { bits }
    }

    /// Parses a cube from a whitespace-separated list of per-variable part
    /// strings, e.g. `"10 01 110"`. Character `i` of a variable's string is
    /// `1`/`0` for part `i` admitted/excluded; `-` in a *binary* variable's
    /// single-character shorthand (`"0"`, `"1"`, `"-"`) is also accepted.
    ///
    /// # Errors
    ///
    /// Returns a message if the token count or any token length is wrong, or
    /// if a character is not `0`, `1` or `-`.
    pub fn parse(spec: &VarSpec, s: &str) -> Result<Self, String> {
        let tokens: Vec<&str> = s.split_whitespace().collect();
        if tokens.len() != spec.num_vars() {
            return Err(format!(
                "expected {} variable fields, got {}",
                spec.num_vars(),
                tokens.len()
            ));
        }
        let mut bits = BitSet::new(spec.total_bits());
        for (v, tok) in tokens.iter().enumerate() {
            let o = spec.offset(v);
            if let (2, [c]) = (spec.parts(v), tok.as_bytes()) {
                match *c {
                    b'0' => {
                        bits.insert(o);
                    }
                    b'1' => {
                        bits.insert(o + 1);
                    }
                    b'-' | b'~' | b'2' => {
                        bits.insert(o);
                        bits.insert(o + 1);
                    }
                    c => {
                        return Err(format!(
                            "bad binary literal '{}' for var {v}",
                            char::from(c)
                        ))
                    }
                }
                continue;
            }
            if tok.len() != spec.parts(v) {
                return Err(format!(
                    "variable {v} has {} parts but field '{tok}' has {} characters",
                    spec.parts(v),
                    tok.len()
                ));
            }
            for (p, c) in tok.chars().enumerate() {
                match c {
                    '1' => {
                        bits.insert(o + p);
                    }
                    '0' => {}
                    c => return Err(format!("bad part character '{c}' for var {v}")),
                }
            }
        }
        Ok(Cube { bits })
    }

    /// Raw positional bits.
    pub fn bits(&self) -> &BitSet {
        &self.bits
    }

    /// Tests whether part `p` of variable `v` is admitted.
    #[inline]
    pub fn part(&self, spec: &VarSpec, v: usize, p: usize) -> bool {
        debug_assert!(p < spec.parts(v));
        self.bits.contains(spec.offset(v) + p)
    }

    /// Admits part `p` of variable `v`.
    #[inline]
    pub fn set_part(&mut self, spec: &VarSpec, v: usize, p: usize) {
        debug_assert!(p < spec.parts(v));
        self.bits.insert(spec.offset(v) + p);
    }

    /// Excludes part `p` of variable `v`.
    #[inline]
    pub fn clear_part(&mut self, spec: &VarSpec, v: usize, p: usize) {
        debug_assert!(p < spec.parts(v));
        self.bits.remove(spec.offset(v) + p);
    }

    /// Number of admitted parts of variable `v`.
    pub fn var_part_count(&self, spec: &VarSpec, v: usize) -> usize {
        spec.var_range(v).filter(|&b| self.bits.contains(b)).count()
    }

    /// `true` if variable `v`'s part field is full (don't-care literal).
    pub fn var_is_full(&self, spec: &VarSpec, v: usize) -> bool {
        self.var_part_count(spec, v) == spec.parts(v)
    }

    /// `true` if variable `v`'s part field is empty (void cube).
    pub fn var_is_empty(&self, spec: &VarSpec, v: usize) -> bool {
        self.var_part_count(spec, v) == 0
    }

    /// `true` if the cube contains no minterm (some variable is empty).
    pub fn is_void(&self, spec: &VarSpec) -> bool {
        spec.vars().any(|v| self.var_is_empty(spec, v))
    }

    /// `true` if the cube is the universal cube.
    pub fn is_universe(&self, spec: &VarSpec) -> bool {
        self.bits.count() == spec.total_bits()
    }

    /// Cube containment: `self` contains `other` iff every minterm of
    /// `other` is in `self` (bit-wise, `other.bits ⊆ self.bits`; valid when
    /// `other` is non-void).
    pub fn contains(&self, other: &Cube) -> bool {
        other.bits.is_subset(&self.bits)
    }

    /// Intersection; `None` if the cubes do not intersect.
    pub fn intersection(&self, spec: &VarSpec, other: &Cube) -> Option<Cube> {
        let c = Cube {
            bits: self.bits.intersection(&other.bits),
        };
        if c.is_void(spec) {
            None
        } else {
            Some(c)
        }
    }

    /// Supercube (smallest cube containing both): bit-wise union.
    pub fn supercube(&self, other: &Cube) -> Cube {
        Cube {
            bits: self.bits.union(&other.bits),
        }
    }

    /// Number of variables whose part fields are disjoint between the two
    /// cubes (`0` means the cubes intersect).
    pub fn distance(&self, spec: &VarSpec, other: &Cube) -> usize {
        spec.vars()
            .filter(|&v| {
                spec.var_range(v)
                    .all(|b| !(self.bits.contains(b) && other.bits.contains(b)))
            })
            .count()
    }

    /// The cofactor of `self` with respect to cube `p` (Shannon expansion
    /// basis): `None` if `self` and `p` do not intersect, else a cube in
    /// which each variable's field is `self_v ∪ ¬p_v`.
    pub fn cofactor(&self, spec: &VarSpec, p: &Cube) -> Option<Cube> {
        if self.distance(spec, p) > 0 {
            return None;
        }
        let bits = self.bits.union(&p.bits.complement());
        let c = Cube { bits };
        // No variable can be empty because self ∩ p is non-void.
        debug_assert!(!c.is_void(spec));
        Some(c)
    }

    /// The consensus of two cubes at distance exactly 1: the supercube in
    /// the conflicting variable, intersection elsewhere. `None` when the
    /// distance is not 1.
    pub fn consensus(&self, spec: &VarSpec, other: &Cube) -> Option<Cube> {
        let mut conflict = None;
        for v in spec.vars() {
            let disjoint = spec
                .var_range(v)
                .all(|b| !(self.bits.contains(b) && other.bits.contains(b)));
            if disjoint {
                if conflict.is_some() {
                    return None;
                }
                conflict = Some(v);
            }
        }
        let v = conflict?;
        let mut bits = self.bits.intersection(&other.bits);
        for b in spec.var_range(v) {
            if self.bits.contains(b) || other.bits.contains(b) {
                bits.insert(b);
            }
        }
        Some(Cube { bits })
    }

    /// Tests whether the minterm given by `values` lies in the cube.
    pub fn contains_minterm(&self, spec: &VarSpec, values: &[usize]) -> bool {
        values
            .iter()
            .enumerate()
            .all(|(v, &val)| self.bits.contains(spec.offset(v) + val))
    }

    /// Number of minterms in the cube (product of per-variable part counts).
    pub fn minterm_count(&self, spec: &VarSpec) -> u64 {
        spec.vars()
            .map(|v| self.var_part_count(spec, v) as u64)
            .fold(1u64, |a, b| a.saturating_mul(b))
    }

    /// Number of input literals: variables with a non-full part field.
    /// With a PLA-shaped spec the final output variable is usually excluded
    /// by passing `vars < spec.num_vars()`.
    pub fn literal_count(&self, spec: &VarSpec, vars: usize) -> usize {
        (0..vars).filter(|&v| !self.var_is_full(spec, v)).count()
    }

    /// Renders the cube in the format accepted by [`Cube::parse`].
    pub fn display(&self, spec: &VarSpec) -> String {
        let mut out = String::new();
        for v in spec.vars() {
            if v > 0 {
                out.push(' ');
            }
            for b in spec.var_range(v) {
                out.push(if self.bits.contains(b) { '1' } else { '0' });
            }
        }
        out
    }
}

impl fmt::Debug for Cube {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Cube({})", self.bits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> VarSpec {
        VarSpec::new(vec![2, 2, 3])
    }

    #[test]
    fn parse_and_display_round_trip() {
        let s = spec();
        let c = Cube::parse(&s, "10 11 011").unwrap();
        assert_eq!(c.display(&s), "10 11 011");
        assert!(c.var_is_full(&s, 1));
        assert!(!c.var_is_full(&s, 2));
        assert_eq!(c.var_part_count(&s, 2), 2);
    }

    #[test]
    fn parse_binary_shorthand() {
        let s = VarSpec::binary(3);
        let c = Cube::parse(&s, "0 - 1").unwrap();
        assert_eq!(c.display(&s), "10 11 01");
    }

    #[test]
    fn parse_errors() {
        let s = spec();
        assert!(Cube::parse(&s, "10 11").is_err());
        assert!(Cube::parse(&s, "10 11 01").is_err());
        assert!(Cube::parse(&s, "10 11 0x1").is_err());
    }

    #[test]
    fn containment_and_intersection() {
        let s = spec();
        let big = Cube::parse(&s, "11 11 111").unwrap();
        let small = Cube::parse(&s, "10 01 100").unwrap();
        assert!(big.contains(&small));
        assert!(!small.contains(&big));
        let other = Cube::parse(&s, "01 11 110").unwrap();
        assert!(small.intersection(&s, &other).is_none());
        let touching = Cube::parse(&s, "11 01 110").unwrap();
        let i = small.intersection(&s, &touching).unwrap();
        assert_eq!(i.display(&s), "10 01 100");
    }

    #[test]
    fn void_and_universe() {
        let s = spec();
        assert!(Cube::universe(&s).is_universe(&s));
        let mut c = Cube::universe(&s);
        c.clear_part(&s, 1, 0);
        c.clear_part(&s, 1, 1);
        assert!(c.is_void(&s));
    }

    #[test]
    fn distance_counts_disjoint_vars() {
        let s = spec();
        let a = Cube::parse(&s, "10 10 100").unwrap();
        let b = Cube::parse(&s, "01 10 011").unwrap();
        assert_eq!(a.distance(&s, &b), 2);
        assert_eq!(a.distance(&s, &a), 0);
    }

    #[test]
    fn consensus_at_distance_one() {
        let s = VarSpec::binary(2);
        let a = Cube::parse(&s, "1 1").unwrap();
        let b = Cube::parse(&s, "0 1").unwrap();
        let c = a.consensus(&s, &b).unwrap();
        assert_eq!(c.display(&s), "11 01");
        let far = Cube::parse(&s, "0 0").unwrap();
        assert!(a.consensus(&s, &far).is_none());
        // Distance 0 has no consensus either.
        assert!(a.consensus(&s, &a).is_none());
    }

    #[test]
    fn cofactor_matches_definition() {
        let s = VarSpec::binary(2);
        let f = Cube::parse(&s, "1 0").unwrap();
        let p = Cube::parse(&s, "1 -").unwrap();
        let cof = f.cofactor(&s, &p).unwrap();
        // Cofactor w.r.t. x0=1 leaves x0 unconstrained.
        assert_eq!(cof.display(&s), "11 10");
        let q = Cube::parse(&s, "0 -").unwrap();
        assert!(f.cofactor(&s, &q).is_none());
    }

    #[test]
    fn minterm_helpers() {
        let s = spec();
        let c = Cube::parse(&s, "10 11 011").unwrap();
        assert_eq!(c.minterm_count(&s), 4);
        assert!(c.contains_minterm(&s, &[0, 1, 2]));
        assert!(!c.contains_minterm(&s, &[1, 1, 2]));
        assert!(!c.contains_minterm(&s, &[0, 0, 0]));
        let m = Cube::minterm(&s, &[0, 1, 2]);
        assert!(c.contains(&m));
        assert_eq!(m.minterm_count(&s), 1);
    }

    #[test]
    fn literal_count_ignores_full_vars() {
        let s = VarSpec::binary_with_output(3, 4);
        let c = Cube::parse(&s, "1 - 0 1010").unwrap();
        assert_eq!(c.literal_count(&s, 3), 2);
    }
}
