//! Covers: lists of cubes with the recursive operations (tautology,
//! complement, containment) used by the minimizer.

use crate::{Cube, VarSpec};
use std::fmt;

/// A sum of cubes over a shared [`VarSpec`].
///
/// The recursive operations ([`Cover::is_tautology`], [`Cover::complement`],
/// [`Cover::contains_cube`]) use the classic unate-recursion paradigm: pick
/// the "most binate" variable, Shannon-expand over its parts, and recurse.
///
/// # Examples
///
/// ```
/// use ioenc_cube::{Cover, Cube, VarSpec};
///
/// let spec = VarSpec::binary(2);
/// let f = Cover::from_cubes(
///     spec.clone(),
///     vec![
///         Cube::parse(&spec, "1 -").unwrap(),
///         Cube::parse(&spec, "0 -").unwrap(),
///     ],
/// );
/// assert!(f.is_tautology());
/// ```
#[derive(Clone, PartialEq, Eq)]
pub struct Cover {
    spec: VarSpec,
    cubes: Vec<Cube>,
}

impl Cover {
    /// An empty cover (the constant-0 function).
    pub fn empty(spec: VarSpec) -> Self {
        Cover {
            spec,
            cubes: Vec::new(),
        }
    }

    /// A cover containing the universal cube (the constant-1 function).
    pub fn universe(spec: VarSpec) -> Self {
        let u = Cube::universe(&spec);
        Cover {
            spec,
            cubes: vec![u],
        }
    }

    /// Builds a cover from cubes; void cubes are dropped.
    pub fn from_cubes(spec: VarSpec, cubes: Vec<Cube>) -> Self {
        let mut c = Cover { spec, cubes };
        c.cubes.retain(|q| {
            let void = q.is_void(&c.spec);
            !void
        });
        c
    }

    /// Parses a cover from lines of [`Cube::parse`] syntax; blank lines and
    /// `#` comments are skipped.
    ///
    /// # Errors
    ///
    /// Propagates cube-parsing errors with the line number attached.
    pub fn parse(spec: &VarSpec, text: &str) -> Result<Self, String> {
        let mut cubes = Vec::new();
        for (ln, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            cubes.push(Cube::parse(spec, line).map_err(|e| format!("line {}: {e}", ln + 1))?);
        }
        Ok(Cover::from_cubes(spec.clone(), cubes))
    }

    /// The variable spec.
    pub fn spec(&self) -> &VarSpec {
        &self.spec
    }

    /// The cubes.
    pub fn cubes(&self) -> &[Cube] {
        &self.cubes
    }

    /// Mutable access to the cubes (void cubes the caller introduces are
    /// its own responsibility).
    pub fn cubes_mut(&mut self) -> &mut Vec<Cube> {
        &mut self.cubes
    }

    /// Number of cubes.
    pub fn len(&self) -> usize {
        self.cubes.len()
    }

    /// `true` if the cover has no cubes.
    pub fn is_empty(&self) -> bool {
        self.cubes.is_empty()
    }

    /// Appends a cube (ignored if void).
    pub fn push(&mut self, cube: Cube) {
        if !cube.is_void(&self.spec) {
            self.cubes.push(cube);
        }
    }

    /// Concatenates two covers over the same spec.
    ///
    /// # Panics
    ///
    /// Panics if the specs differ.
    pub fn union(&self, other: &Cover) -> Cover {
        assert!(self.spec == other.spec, "cover spec mismatch");
        let mut cubes = self.cubes.clone();
        cubes.extend(other.cubes.iter().cloned());
        Cover {
            spec: self.spec.clone(),
            cubes,
        }
    }

    /// Removes single-cube-contained cubes (absorption): any cube contained
    /// in another cube of the cover is dropped. For a unate function this
    /// yields the minimal sum-of-products.
    pub fn single_cube_containment(&mut self) {
        self.cubes.sort();
        self.cubes.dedup();
        let mut keep = vec![true; self.cubes.len()];
        for i in 0..self.cubes.len() {
            if !keep[i] {
                continue;
            }
            for j in 0..self.cubes.len() {
                if i != j && keep[j] && self.cubes[j].contains(&self.cubes[i]) {
                    keep[i] = false;
                    break;
                }
            }
        }
        let mut i = 0;
        self.cubes.retain(|_| {
            let k = keep[i];
            i += 1;
            k
        });
    }

    /// The cofactor of the cover with respect to cube `p`.
    pub fn cofactor(&self, p: &Cube) -> Cover {
        let cubes = self
            .cubes
            .iter()
            .filter_map(|c| c.cofactor(&self.spec, p))
            .collect();
        Cover {
            spec: self.spec.clone(),
            cubes,
        }
    }

    /// Chooses the splitting variable for unate recursion: the variable
    /// with a non-full part field in the most cubes (ties broken toward
    /// more parts). `None` when every cube is the universe or the cover is
    /// empty.
    fn splitting_var(&self) -> Option<usize> {
        let mut best: Option<(usize, usize)> = None; // (count, var)
        for v in self.spec.vars() {
            let count = self
                .cubes
                .iter()
                .filter(|c| !c.var_is_full(&self.spec, v))
                .count();
            if count == 0 {
                continue;
            }
            let better = match best {
                None => true,
                Some((bc, bv)) => {
                    count > bc || (count == bc && self.spec.parts(v) > self.spec.parts(bv))
                }
            };
            if better {
                best = Some((count, v));
            }
        }
        best.map(|(_, v)| v)
    }

    /// Tautology check: does the cover contain every minterm?
    pub fn is_tautology(&self) -> bool {
        if self.cubes.iter().any(|c| c.is_universe(&self.spec)) {
            return true;
        }
        if self.cubes.is_empty() {
            return false;
        }
        // Column check: a variable whose part-union over all cubes is not
        // full leaves some minterm uncovered.
        for v in self.spec.vars() {
            for b in self.spec.var_range(v) {
                if !self.cubes.iter().any(|c| c.bits().contains(b)) {
                    return false;
                }
            }
        }
        let Some(v) = self.splitting_var() else {
            // No splitting variable, no universal cube: only possible when
            // there are no cubes, handled above.
            return false;
        };
        for p in 0..self.spec.parts(v) {
            let mut basis = Cube::universe(&self.spec);
            for q in 0..self.spec.parts(v) {
                if q != p {
                    basis.clear_part(&self.spec, v, q);
                }
            }
            if !self.cofactor(&basis).is_tautology() {
                return false;
            }
        }
        true
    }

    /// Cube containment: is `c` completely covered by the cover?
    pub fn contains_cube(&self, c: &Cube) -> bool {
        if c.is_void(&self.spec) {
            return true;
        }
        self.cofactor(c).is_tautology()
    }

    /// The complement of the cover, as a (containment-minimized) cover.
    pub fn complement(&self) -> Cover {
        let mut result = self.complement_rec();
        result.single_cube_containment();
        result
    }

    fn complement_rec(&self) -> Cover {
        if self.cubes.is_empty() {
            return Cover::universe(self.spec.clone());
        }
        if self.cubes.iter().any(|c| c.is_universe(&self.spec)) {
            return Cover::empty(self.spec.clone());
        }
        if self.cubes.len() == 1 {
            return self.complement_single(&self.cubes[0]);
        }
        #[allow(clippy::expect_used)] // >= 2 cubes and none universal, so some
        // variable is missing a part in some cube and must split.
        let v = self
            .splitting_var()
            .expect("non-empty cover without universal cube has a splitting var");
        let mut out = Cover::empty(self.spec.clone());
        for p in 0..self.spec.parts(v) {
            let mut basis = Cube::universe(&self.spec);
            for q in 0..self.spec.parts(v) {
                if q != p {
                    basis.clear_part(&self.spec, v, q);
                }
            }
            let sub = self.cofactor(&basis).complement_rec();
            for c in sub.cubes {
                if let Some(i) = c.intersection(&self.spec, &basis) {
                    out.push(i);
                }
            }
        }
        out.single_cube_containment();
        out
    }

    /// De Morgan complement of a single cube: one cube per non-full
    /// variable, with that variable's parts inverted.
    fn complement_single(&self, c: &Cube) -> Cover {
        let mut out = Cover::empty(self.spec.clone());
        for v in self.spec.vars() {
            if c.var_is_full(&self.spec, v) {
                continue;
            }
            let mut q = Cube::universe(&self.spec);
            for p in 0..self.spec.parts(v) {
                if c.part(&self.spec, v, p) {
                    q.clear_part(&self.spec, v, p);
                }
            }
            out.push(q);
        }
        out
    }

    /// Evaluates the cover on a minterm.
    pub fn contains_minterm(&self, values: &[usize]) -> bool {
        self.cubes
            .iter()
            .any(|c| c.contains_minterm(&self.spec, values))
    }

    /// Total input literals over the first `vars` variables (see
    /// [`Cube::literal_count`]).
    pub fn literal_count(&self, vars: usize) -> usize {
        self.cubes
            .iter()
            .map(|c| c.literal_count(&self.spec, vars))
            .sum()
    }

    /// Iterates over all minterms of the domain (for exhaustive testing of
    /// small covers).
    ///
    /// # Panics
    ///
    /// Panics if the domain has more than 2^24 minterms.
    pub fn enumerate_minterms(spec: &VarSpec) -> Vec<Vec<usize>> {
        assert!(
            spec.domain_size() <= 1 << 24,
            "domain too large to enumerate"
        );
        let mut out = Vec::new();
        let mut current = vec![0usize; spec.num_vars()];
        loop {
            out.push(current.clone());
            let mut v = 0;
            loop {
                if v == spec.num_vars() {
                    return out;
                }
                current[v] += 1;
                if current[v] < spec.parts(v) {
                    break;
                }
                current[v] = 0;
                v += 1;
            }
        }
    }
}

impl fmt::Debug for Cover {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Cover[{} cubes]", self.cubes.len())?;
        for c in &self.cubes {
            writeln!(f, "  {}", c.display(&self.spec))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bcover(n: usize, lines: &[&str]) -> Cover {
        let spec = VarSpec::binary(n);
        Cover::from_cubes(
            spec.clone(),
            lines
                .iter()
                .map(|l| Cube::parse(&spec, l).unwrap())
                .collect(),
        )
    }

    #[test]
    fn tautology_basic() {
        assert!(bcover(2, &["1 -", "0 -"]).is_tautology());
        assert!(!bcover(2, &["1 -", "0 0"]).is_tautology());
        assert!(bcover(1, &["-"]).is_tautology());
        assert!(!Cover::empty(VarSpec::binary(2)).is_tautology());
        assert!(Cover::universe(VarSpec::binary(3)).is_tautology());
    }

    #[test]
    fn tautology_xor_parity() {
        // x0 xor x1 plus its complement is a tautology.
        assert!(bcover(2, &["1 0", "0 1", "1 1", "0 0"]).is_tautology());
        assert!(!bcover(2, &["1 0", "0 1", "1 1"]).is_tautology());
    }

    #[test]
    fn tautology_multivalued() {
        let spec = VarSpec::new(vec![3, 2]);
        let f = Cover::parse(&spec, "100 11\n010 11\n001 11").unwrap();
        assert!(f.is_tautology());
        let g = Cover::parse(&spec, "100 11\n010 11\n001 10").unwrap();
        assert!(!g.is_tautology());
    }

    #[test]
    fn complement_matches_semantics() {
        let spec = VarSpec::new(vec![2, 3, 2]);
        let f = Cover::parse(&spec, "10 110 11\n11 011 01\n01 100 10").unwrap();
        let g = f.complement();
        for m in Cover::enumerate_minterms(&spec) {
            assert_ne!(
                f.contains_minterm(&m),
                g.contains_minterm(&m),
                "disagreement at {m:?}"
            );
        }
    }

    #[test]
    fn complement_edge_cases() {
        let spec = VarSpec::binary(2);
        assert!(Cover::empty(spec.clone()).complement().is_tautology());
        assert!(Cover::universe(spec.clone()).complement().is_empty());
        // Single cube: complement of x0 x1 is x0' + x1'.
        let f = bcover(2, &["1 1"]);
        let g = f.complement();
        assert_eq!(g.len(), 2);
        for m in Cover::enumerate_minterms(&spec) {
            assert_ne!(f.contains_minterm(&m), g.contains_minterm(&m));
        }
    }

    #[test]
    fn scc_removes_contained() {
        let mut f = bcover(2, &["1 1", "1 -", "1 1", "0 0"]);
        f.single_cube_containment();
        assert_eq!(f.len(), 2);
    }

    #[test]
    fn contains_cube_via_tautology() {
        let f = bcover(2, &["1 0", "0 -"]);
        let spec = VarSpec::binary(2);
        assert!(f.contains_cube(&Cube::parse(&spec, "- 0").unwrap()));
        assert!(!f.contains_cube(&Cube::parse(&spec, "1 -").unwrap()));
    }

    #[test]
    fn parse_skips_comments() {
        let spec = VarSpec::binary(2);
        let f = Cover::parse(&spec, "# header\n1 1\n\n0 0\n").unwrap();
        assert_eq!(f.len(), 2);
        assert!(Cover::parse(&spec, "1").is_err());
    }

    #[test]
    fn union_and_push() {
        let spec = VarSpec::binary(2);
        let a = bcover(2, &["1 1"]);
        let b = bcover(2, &["0 0"]);
        let u = a.union(&b);
        assert_eq!(u.len(), 2);
        let mut c = Cover::empty(spec.clone());
        let mut void = Cube::universe(&spec);
        void.clear_part(&spec, 0, 0);
        void.clear_part(&spec, 0, 1);
        c.push(void);
        assert!(c.is_empty());
    }

    #[test]
    fn enumerate_minterms_counts() {
        let spec = VarSpec::new(vec![2, 3]);
        assert_eq!(Cover::enumerate_minterms(&spec).len(), 6);
    }
}
