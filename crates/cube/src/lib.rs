#![warn(missing_docs)]
#![forbid(unsafe_code)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

//! Multi-valued cube calculus in *positional cube notation*.
//!
//! This crate is the algebraic substrate for the two-level minimizer in
//! `ioenc-espresso` and for the cost-function evaluation of the encoding
//! framework (Section 7 of Saldanha et al.). A function over multi-valued
//! variables is represented as a [`Cover`] — a list of [`Cube`]s — where each
//! variable contributes one *part field*: a group of bits, one per value the
//! variable can take. A bit set to 1 means the cube admits that value.
//!
//! Binary variables are two-part multi-valued variables (part 0 is the
//! complemented literal, part 1 the positive literal); a full part field
//! (`11`) is a don't-care on that variable. Multiple-output functions are
//! modelled, as in ESPRESSO-MV, with one extra multi-valued variable whose
//! parts are the outputs.
//!
//! # Examples
//!
//! ```
//! use ioenc_cube::{Cover, Cube, VarSpec};
//!
//! // f(a, b) = a'b + ab' + ab  == a + b
//! let spec = VarSpec::binary(2);
//! let cover = Cover::from_cubes(
//!     spec.clone(),
//!     vec![
//!         Cube::parse(&spec, "01 10").unwrap(),
//!         Cube::parse(&spec, "10 01").unwrap(),
//!         Cube::parse(&spec, "10 10").unwrap(),
//!     ],
//! );
//! assert!(!cover.is_tautology());
//! assert_eq!(cover.complement().len(), 1); // a'b'
//! ```

mod cover;
mod cube;
mod spec;

pub use cover::Cover;
pub use cube::Cube;
pub use spec::VarSpec;
