//! The `figures` binary must keep reproducing the paper's worked examples
//! (the tables are exercised manually — they take minutes).

use std::process::Command;

#[test]
fn figures_binary_reproduces_the_paper() {
    let out = Command::new(env!("CARGO_BIN_EXE_figures"))
        .output()
        .expect("figures binary runs");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    // Figure 3: 9 initial dichotomies, 7 primes, 4-prime cover.
    assert!(
        stdout.contains("initial encoding-dichotomies (9)"),
        "{stdout}"
    );
    assert!(
        stdout.contains("prime encoding-dichotomies (7)"),
        "{stdout}"
    );
    assert!(stdout.contains("minimum cover (4 primes)"), "{stdout}");
    // Figure 4: infeasible with the uncovered pair.
    assert!(stdout.contains("feasible: false"), "{stdout}");
    assert!(stdout.contains("(s0; s1 s5)"), "{stdout}");
    // Figure 9 and Section 8.1 shapes.
    assert!(
        stdout.contains("4-bit encoding: violations = 0, cubes = 4"),
        "{stdout}"
    );
    assert!(
        stdout.contains("with don't cares (a,b,[c,d],e): minimum cover of 3 primes"),
        "{stdout}"
    );
    // Section 8.2: distance 2 achieved.
    assert!(stdout.contains("Hamming distance 2"), "{stdout}");
}
