//! Cold vs warm-cache throughput of the `ioenc serve` request pipeline.
//!
//! Replays a duplicated, symbol-permuted corpus through
//! [`ioenc_server::outcome`] — the exact function a `serve` worker runs —
//! three ways: with no cache at all, with a cold cache (first pass), and
//! with a fully warmed cache. The interesting number is the warm/cold
//! throughput ratio: how much a batch dominated by repeated or permuted
//! requests gains from the content-addressed store.
//!
//! Set `BENCH_SERVE_JSON=<path>` to also write the results as JSON
//! (rendered by the same writer the server uses); the committed
//! `BENCH_serve.json` at the workspace root is produced this way.

use ioenc_bench::harness::{fmt_duration, time_once, Runner};
use ioenc_bench::meta::bench_meta;
use ioenc_core::json::Json;
use ioenc_rng::SplitMix64;
use ioenc_server::{outcome, DiskCache, EncodeSpec, ResultCache};
use std::hint::black_box;
use std::path::PathBuf;

const BASES: &[&str] = &[
    "symbols: a b c d\n(b,c)\n(c,d)\n(b,a)\n(a,d)\nb>c\na>c\na=b|d\n",
    "symbols: p q r s\np>q\nq>r\n(p,s)\n",
    "symbols: u v w x y\nu=v|w\n(v,x)\nw>y\n",
    "symbols: a b c d e\n(a,b,[c])\ndist2(a,d)\n!(b,e)\n",
    "symbols: a b c d e\n(a&b)|(c&d)>=e\n(a,b)\n(c,d)\n",
    "symbols: s0 s1 s2 s3 s4 s5 s6 s7\n(s0,s1,s2)\n(s2,s3)\n(s4,s5)\ns0>s7\ns6=s1|s3\n",
];

/// Re-spells `text` with shuffled symbol order and shuffled lines, so the
/// corpus exercises canonicalization rather than just string-equality.
fn permute(text: &str, rng: &mut SplitMix64) -> String {
    let mut lines: Vec<&str> = text.lines().collect();
    let header = lines.remove(0);
    let mut names: Vec<&str> = header
        .trim_start_matches("symbols:")
        .split_whitespace()
        .collect();
    rng.shuffle(&mut names);
    rng.shuffle(&mut lines);
    let mut out = format!("symbols: {}\n", names.join(" "));
    for line in lines {
        out.push_str(line);
        out.push('\n');
    }
    out
}

fn corpus(requests: usize) -> (Vec<String>, Vec<String>) {
    let mut rng = SplitMix64::new(0xbe_ec4);
    let mut uniques: Vec<String> = BASES.iter().map(|s| s.to_string()).collect();
    for i in 0..BASES.len() {
        for _ in 0..2 {
            uniques.push(permute(&uniques[i], &mut rng));
        }
    }
    let texts = (0..requests)
        .map(|_| uniques[rng.gen_range(0..uniques.len())].clone())
        .collect();
    (uniques, texts)
}

fn sweep(texts: &[String], cache: Option<&ResultCache>) -> usize {
    let spec = EncodeSpec::default();
    let mut ok = 0usize;
    for t in texts {
        if outcome(black_box(t), &spec, cache, None).exit_code == 0 {
            ok += 1;
        }
    }
    ok
}

fn main() {
    let mut r = Runner::from_env();
    let (uniques, texts) = corpus(200);

    let mut results: Vec<(String, usize, f64, f64)> = Vec::new(); // (name, requests, seconds, rps)
    let mut record = |name: &str, requests: usize, seconds: f64| {
        results.push((
            name.to_string(),
            requests,
            seconds,
            requests as f64 / seconds,
        ));
    };

    // One-shot sweeps timed directly: the quantity of interest is batch
    // throughput, not per-call latency.
    let (ok, cold) = time_once(|| sweep(&texts, None));
    assert_eq!(ok, texts.len(), "corpus must be fully feasible");
    record("cold/no-cache", texts.len(), cold.as_secs_f64());
    println!(
        "serve/200-requests/no-cache: {} ({:.0} req/s)",
        fmt_duration(cold),
        texts.len() as f64 / cold.as_secs_f64()
    );

    let cache = ResultCache::new(1024);
    let (_, first) = time_once(|| sweep(&texts, Some(&cache)));
    record("first-pass/cold-cache", texts.len(), first.as_secs_f64());
    println!(
        "serve/200-requests/cold-cache: {} ({:.0} req/s, {} hits / {} misses)",
        fmt_duration(first),
        texts.len() as f64 / first.as_secs_f64(),
        cache.hits(),
        cache.misses()
    );

    let (_, warm) = time_once(|| sweep(&texts, Some(&cache)));
    record("warm-cache", texts.len(), warm.as_secs_f64());
    println!(
        "serve/200-requests/warm-cache: {} ({:.0} req/s, speedup x{:.1} over no-cache)",
        fmt_duration(warm),
        texts.len() as f64 / warm.as_secs_f64(),
        cold.as_secs_f64() / warm.as_secs_f64()
    );

    // The disk tier's reason to exist: a server restart that reopens the
    // cache directory starts warm. The permuted variants collapse onto
    // their base's canonical key, so only the bases are canonically
    // distinct; sweeping exactly those makes the cold pass pure solves
    // and the restart pass pure disk replays (plus the re-verify guard),
    // with no memory-tier hits diluting either side.
    let distinct = &uniques[..BASES.len()];
    let disk_dir: PathBuf =
        std::env::temp_dir().join(format!("ioenc-bench-servedisk-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&disk_dir);
    std::fs::create_dir_all(&disk_dir).expect("bench disk dir");
    let disk_cold = ResultCache::with_disk(
        1024,
        DiskCache::open(&disk_dir, 4).expect("open disk cache"),
    );
    let (_, cold_disk) = time_once(|| sweep(distinct, Some(&disk_cold)));
    record(
        "cold-start/empty-disk",
        distinct.len(),
        cold_disk.as_secs_f64(),
    );
    drop(disk_cold);
    let disk_warm = ResultCache::with_disk(
        1024,
        DiskCache::open(&disk_dir, 4).expect("reopen disk cache"),
    );
    let (_, warm_disk) = time_once(|| sweep(distinct, Some(&disk_warm)));
    record(
        "restart/warm-from-disk",
        distinct.len(),
        warm_disk.as_secs_f64(),
    );
    let restart_speedup = cold_disk.as_secs_f64() / warm_disk.as_secs_f64();
    println!(
        "serve/{}-distinct/restart-warm-from-disk: {} ({:.0} req/s, speedup x{:.1} over empty-disk cold start, {} disk records)",
        distinct.len(),
        fmt_duration(warm_disk),
        distinct.len() as f64 / warm_disk.as_secs_f64(),
        restart_speedup,
        disk_warm.disk().map_or(0, |d| d.indexed_records()),
    );
    let disk_stats = disk_warm.disk().map(|d| {
        let s = d.stats();
        Json::obj()
            .field("shards", u64::from(d.shard_count()))
            .field("records", d.indexed_records())
            .field("hits", s.hits.load(std::sync::atomic::Ordering::Relaxed))
            .field(
                "appends",
                s.appends.load(std::sync::atomic::Ordering::Relaxed),
            )
    });
    drop(disk_warm);
    let _ = std::fs::remove_dir_all(&disk_dir);

    // Per-request latency of the two steady states, via the adaptive
    // harness (cache warmed above; the no-cache body re-solves each call).
    let one = &texts[0];
    let spec = EncodeSpec::default();
    r.bench("serve/request/no-cache", || {
        black_box(outcome(black_box(one), &spec, None, None))
    });
    r.bench("serve/request/warm-cache", || {
        black_box(outcome(black_box(one), &spec, Some(&cache), None))
    });

    if let Ok(path) = std::env::var("BENCH_SERVE_JSON") {
        let mut arr = Vec::new();
        for (name, requests, seconds, rps) in &results {
            arr.push(
                Json::obj()
                    .field("name", name.as_str())
                    .field("requests", *requests)
                    .field("seconds", Json::Float(*seconds))
                    .field("throughput_rps", Json::Float((*rps * 10.0).round() / 10.0)),
            );
        }
        let doc = Json::obj()
            .field("bench", "serve_cache")
            .field("meta", bench_meta())
            .field(
                "corpus",
                Json::obj()
                    .field("unique_texts", uniques.len())
                    .field("requests", texts.len()),
            )
            .field("results", Json::Arr(arr))
            .field(
                "cache",
                Json::obj()
                    .field("capacity", cache.capacity())
                    .field("entries", cache.len())
                    .field("hits", cache.hits())
                    .field("misses", cache.misses())
                    .field("evictions", cache.evictions())
                    .field("verify_failures", cache.verify_failures()),
            )
            .field(
                "speedup_warm_over_cold",
                Json::Float((cold.as_secs_f64() / warm.as_secs_f64() * 10.0).round() / 10.0),
            )
            .field(
                "speedup_restart_warm_over_cold",
                Json::Float((restart_speedup * 10.0).round() / 10.0),
            )
            .field(
                "disk",
                disk_stats.unwrap_or_else(|| Json::obj().field("enabled", false)),
            );
        std::fs::write(&path, format!("{}\n", doc.render())).expect("write BENCH_SERVE_JSON");
        println!("wrote {path}");
    }
}
