//! Pinned ns/op workloads for the bitset kernels, the MIS lower bound and
//! full covering solves — the hot substrate under every exact encode.
//!
//! Each kernel workload is measured twice on identical data: once through
//! the dispatched `BitSet` operation (unrolled scalar kernels below the
//! SIMD width threshold, AVX2 above it when the CPU has it) and once
//! through a local copy of the pre-optimization generic implementation
//! (the word-at-a-time `zip().all()` loops `BitSet` used before). The
//! ratio is the kernel's measured improvement on this machine.
//!
//! Subset/disjoint pairs are constructed so the predicate holds (subset
//! true, disjoint true): the worst case, forcing a full scan with no early
//! exit. Sizes bracket the dispatch thresholds: 256 bits (4 words, scalar
//! path), 768 bits (12 words, 256-bit SIMD path), 4096 bits (64 words,
//! 512-bit path) and 16384 bits (256 words, 512-bit path; the many-prime
//! regime where per-call overhead is fully amortized — the headline
//! numbers come from here).
//!
//! Set `BENCH_CORE_JSON=<path>` to write the results as JSON; the
//! committed `BENCH_core.json` at the workspace root is produced this way.
//! `BENCH_QUICK=1` runs every body once (CI smoke mode).

use ioenc_bench::harness::measure_ns;
use ioenc_bench::meta::bench_meta;
use ioenc_bitset::BitSet;
use ioenc_core::json::Json;
use ioenc_cover::UnateProblem;

// ---- local copies of the pre-optimization generic implementations ----
//
// `inline(never)` reproduces how the old code was actually called: the
// pre-PR `BitSet` methods carried no `#[inline]`, so every cross-crate
// caller (the covering search included) paid a function call per op.

#[inline(never)]
fn naive_is_subset(a: &[u64], b: &[u64]) -> bool {
    a.iter().zip(b).all(|(x, y)| x & !y == 0)
}

#[inline(never)]
fn naive_is_disjoint(a: &[u64], b: &[u64]) -> bool {
    a.iter().zip(b).all(|(x, y)| x & y == 0)
}

#[inline(never)]
fn naive_count(a: &[u64]) -> usize {
    a.iter().map(|w| w.count_ones() as usize).sum()
}

#[inline(never)]
fn naive_intersect(a: &mut [u64], b: &[u64]) {
    for (x, y) in a.iter_mut().zip(b) {
        *x &= *y;
    }
}

/// Raw words of the bit pattern `indices` over a `bits`-bit universe.
fn words_of(bits: usize, indices: impl Iterator<Item = usize>) -> Vec<u64> {
    let mut words = vec![0u64; bits.div_ceil(64)];
    for i in indices {
        words[i / 64] |= 1 << (i % 64);
    }
    words
}

struct Workload {
    name: String,
    kernel: &'static str,
    bits: usize,
    kernel_ns: f64,
    baseline_ns: f64,
}

impl Workload {
    fn speedup(&self) -> f64 {
        self.baseline_ns / self.kernel_ns.max(1e-9)
    }
}

fn kernel_workloads(bits: usize) -> Vec<Workload> {
    // Dense pattern pairs with subset ⊆ superset and disjoint odd/even
    // halves; every predicate holds, so scans never exit early.
    let sub = BitSet::from_indices(bits, (0..bits).step_by(2));
    let sup = BitSet::from_indices(bits, 0..bits);
    let odd = BitSet::from_indices(bits, (1..bits).step_by(2));
    let sub_w = words_of(bits, (0..bits).step_by(2));
    let sup_w = words_of(bits, 0..bits);
    let odd_w = words_of(bits, (1..bits).step_by(2));

    let mut out = Vec::new();
    out.push(Workload {
        name: format!("is_subset/{bits}b"),
        kernel: "is_subset",
        bits,
        kernel_ns: measure_ns(|| sub.is_subset(&sup)),
        baseline_ns: measure_ns(|| naive_is_subset(&sub_w, &sup_w)),
    });
    out.push(Workload {
        name: format!("is_disjoint/{bits}b"),
        kernel: "is_disjoint",
        bits,
        kernel_ns: measure_ns(|| sub.is_disjoint(&odd)),
        baseline_ns: measure_ns(|| naive_is_disjoint(&sub_w, &odd_w)),
    });
    out.push(Workload {
        name: format!("count/{bits}b"),
        kernel: "count",
        bits,
        kernel_ns: measure_ns(|| sub.count()),
        baseline_ns: measure_ns(|| naive_count(&sub_w)),
    });
    // Intersection is idempotent, so repeated in-place application does
    // identical work every call after the first.
    let mut acc = sup.clone();
    let mut acc_w = sup_w.clone();
    out.push(Workload {
        name: format!("intersect_with/{bits}b"),
        kernel: "intersect_with",
        bits,
        kernel_ns: measure_ns(|| acc.intersect_with(&sub)),
        baseline_ns: measure_ns(|| naive_intersect(&mut acc_w, &sub_w)),
    });
    // First-set iteration: visit every set bit and fold the indices.
    out.push(Workload {
        name: format!("iter_set/{bits}b"),
        kernel: "iter_set",
        bits,
        kernel_ns: measure_ns(|| {
            let mut sum = 0usize;
            sub.for_each_set(|i| sum += i);
            sum
        }),
        baseline_ns: measure_ns(|| sub.iter().sum::<usize>()),
    });
    out
}

/// The ring covering family used by the solver's determinism tests: n
/// columns, each row covered by three columns at fixed offsets. Several
/// equal-cost optima, so the search explores a real tree.
fn ring_problem(n: usize) -> UnateProblem {
    let mut p = UnateProblem::new(n);
    for i in 0..n {
        p.add_row([i, (i + n / 3) % n, (i + (2 * n) / 3 + 1) % n]);
    }
    p
}

fn main() {
    let quick = ioenc_bench::harness::quick_mode();
    let mut workloads = Vec::new();
    for bits in [256, 768, 4096, 16384] {
        workloads.extend(kernel_workloads(bits));
    }

    let mut rows = Vec::new();
    for w in &workloads {
        println!(
            "core_kernels/{:<24} kernel {:>9.1} ns  baseline {:>9.1} ns  {:>5.2}x",
            w.name,
            w.kernel_ns,
            w.baseline_ns,
            w.speedup()
        );
        rows.push(
            Json::obj()
                .field("name", w.name.as_str())
                .field("kernel", w.kernel)
                .field("bits", w.bits)
                .field(
                    "kernel_ns",
                    Json::Float((w.kernel_ns * 10.0).round() / 10.0),
                )
                .field(
                    "baseline_ns",
                    Json::Float((w.baseline_ns * 10.0).round() / 10.0),
                )
                .field(
                    "speedup",
                    Json::Float((w.speedup() * 100.0).round() / 100.0),
                ),
        );
    }

    // MIS lower bound and full covering solves: end-to-end consumers of
    // the kernels, pinned so search-layer regressions surface here too.
    let mut cover_rows = Vec::new();
    for n in [24usize, 36] {
        let p = ring_problem(n);
        let ns = measure_ns(|| p.mis_bound_for_bench());
        println!("core_kernels/mis_bound/ring{n:<14} {ns:>9.1} ns");
        cover_rows.push(
            Json::obj()
                .field("name", format!("mis_bound/ring{n}").as_str())
                .field("ns", Json::Float((ns * 10.0).round() / 10.0)),
        );
    }
    for n in [12usize, 14] {
        let p = ring_problem(n);
        let ns = measure_ns(|| p.solve_exact().unwrap());
        println!("core_kernels/full_cover/ring{n:<13} {ns:>9.1} ns");
        cover_rows.push(
            Json::obj()
                .field("name", format!("full_cover/ring{n}").as_str())
                .field("ns", Json::Float((ns * 10.0).round() / 10.0)),
        );
    }

    // Headline: the hot-regime (largest-size) speedups per kernel.
    let mut headline = Json::obj();
    let mut headline_bits = 0usize;
    for kernel in ["is_subset", "is_disjoint", "count", "intersect_with"] {
        if let Some(w) = workloads
            .iter()
            .filter(|w| w.kernel == kernel)
            .max_by_key(|w| w.bits)
        {
            headline_bits = headline_bits.max(w.bits);
            headline = headline.field(kernel, Json::Float((w.speedup() * 100.0).round() / 100.0));
        }
    }
    headline = headline.field("bits", headline_bits);

    if let Ok(path) = std::env::var("BENCH_CORE_JSON") {
        let doc = Json::obj()
            .field("bench", "core_kernels")
            .field("quick", quick)
            .field("meta", bench_meta())
            .field("kernels", Json::Arr(rows))
            .field("cover", Json::Arr(cover_rows))
            .field("headline_speedups", headline);
        std::fs::write(&path, format!("{}\n", doc.render())).expect("write BENCH_CORE_JSON");
        println!("wrote {path}");
    }
}
