//! The two-level minimizer substrate: symbolic (multiple-valued) covers of
//! suite machines and random multi-output PLAs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ioenc_cube::{Cover, Cube, VarSpec};
use ioenc_espresso::minimize;
use ioenc_symbolic::input_constraints;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;

fn random_pla(inputs: usize, outputs: usize, cubes: usize, seed: u64) -> (Cover, Cover) {
    let spec = VarSpec::binary_with_output(inputs, outputs.max(2));
    let mut rng = StdRng::seed_from_u64(seed);
    let mut on = Cover::empty(spec.clone());
    for _ in 0..cubes {
        let mut c = Cube::universe(&spec);
        for v in 0..inputs {
            match rng.gen_range(0..3) {
                0 => c.clear_part(&spec, v, 1),
                1 => c.clear_part(&spec, v, 0),
                _ => {}
            }
        }
        for p in 0..spec.parts(inputs) {
            if rng.gen_bool(0.6) {
                c.clear_part(&spec, inputs, p);
            }
        }
        on.push(c);
    }
    (on, Cover::empty(spec))
}

fn bench_random_plas(c: &mut Criterion) {
    let mut group = c.benchmark_group("espresso/random");
    group.sample_size(20);
    for (inputs, cubes) in [(6usize, 20usize), (8, 40), (10, 60)] {
        let (on, dc) = random_pla(inputs, 4, cubes, 42);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{inputs}in_{cubes}cubes")),
            &(on, dc),
            |b, (on, dc)| {
                b.iter(|| minimize(black_box(on), black_box(dc), None));
            },
        );
    }
    group.finish();
}

fn bench_symbolic_covers(c: &mut Criterion) {
    let mut group = c.benchmark_group("espresso/symbolic");
    group.sample_size(10);
    for name in ["dk512", "bbsse"] {
        let fsm = ioenc_bench::benchmark(name);
        group.bench_with_input(BenchmarkId::from_parameter(name), &fsm, |b, fsm| {
            b.iter(|| input_constraints(black_box(fsm)));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_random_plas, bench_symbolic_covers);
criterion_main!(benches);
