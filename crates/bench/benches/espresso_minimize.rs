//! The two-level minimizer substrate: symbolic (multiple-valued) covers of
//! suite machines and random multi-output PLAs.

use ioenc_bench::harness::Runner;
use ioenc_cube::{Cover, Cube, VarSpec};
use ioenc_espresso::minimize;
use ioenc_rng::SplitMix64;
use ioenc_symbolic::input_constraints;
use std::hint::black_box;

fn random_pla(inputs: usize, outputs: usize, cubes: usize, seed: u64) -> (Cover, Cover) {
    let spec = VarSpec::binary_with_output(inputs, outputs.max(2));
    let mut rng = SplitMix64::new(seed);
    let mut on = Cover::empty(spec.clone());
    for _ in 0..cubes {
        let mut c = Cube::universe(&spec);
        for v in 0..inputs {
            match rng.gen_range(0..3) {
                0 => c.clear_part(&spec, v, 1),
                1 => c.clear_part(&spec, v, 0),
                _ => {}
            }
        }
        for p in 0..spec.parts(inputs) {
            if rng.gen_bool(0.6) {
                c.clear_part(&spec, inputs, p);
            }
        }
        on.push(c);
    }
    (on, Cover::empty(spec))
}

fn main() {
    let mut r = Runner::from_env();

    for (inputs, cubes) in [(6usize, 20usize), (8, 40), (10, 60)] {
        let (on, dc) = random_pla(inputs, 4, cubes, 42);
        r.bench(&format!("espresso/random/{inputs}in_{cubes}cubes"), || {
            minimize(black_box(&on), black_box(&dc), None)
        });
    }

    for name in ["dk512", "bbsse"] {
        let fsm = ioenc_bench::benchmark(name);
        r.bench(&format!("espresso/symbolic/{name}"), || {
            input_constraints(black_box(&fsm))
        });
    }
}
