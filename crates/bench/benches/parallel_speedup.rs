//! Parallel solver speedup: the same prime-generation and covering work at
//! one thread and at four, reported as a ratio.
//!
//! The outputs are bit-identical across thread counts (asserted here), so
//! the only difference is wall clock. Run with
//! `cargo bench --bench parallel_speedup`.

use ioenc_bench::harness::{fmt_duration, min_time_of};
use ioenc_core::{
    generate_primes_with, initial_dichotomies, Budget, ConstraintSet, Parallelism, SolutionDetail,
    Solver,
};
use std::hint::black_box;

fn speedup(name: &str, initial: &[ioenc_core::Dichotomy], cap: usize) {
    let (seq_primes, _) = generate_primes_with(initial, cap, Parallelism::Off).unwrap();
    let (par_primes, stats) = generate_primes_with(initial, cap, Parallelism::Fixed(4)).unwrap();
    assert_eq!(
        seq_primes, par_primes,
        "parallel result must be bit-identical"
    );

    const RUNS: usize = 3;
    let t1 = min_time_of(RUNS, || {
        generate_primes_with(black_box(initial), cap, Parallelism::Fixed(1)).unwrap()
    });
    let t4 = min_time_of(RUNS, || {
        generate_primes_with(black_box(initial), cap, Parallelism::Fixed(4)).unwrap()
    });
    println!(
        "{name}: {} primes, 1 thread {}, 4 threads {}, speedup {:.2}x ({} ps steps, peak {} terms)",
        seq_primes.len(),
        fmt_duration(t1),
        fmt_duration(t4),
        t1.as_secs_f64() / t4.as_secs_f64(),
        stats.ps_steps,
        stats.peak_terms,
    );
}

/// Budget-counter smoke: a work-budgeted degradation ladder must stop at
/// the same point — same rung, same codes, same counters — whatever the
/// thread count, or the budgets are not deterministic.
fn budget_identity() {
    let cs = ConstraintSet::new(12);
    let run = |par: Parallelism| {
        Solver::new()
            .budget(Budget::unlimited().with_max_primes(200).with_max_evals(400))
            .threads(par)
            .solve(&cs)
            .unwrap()
    };
    let reference = run(Parallelism::Off);
    for par in [
        Parallelism::Fixed(2),
        Parallelism::Fixed(4),
        Parallelism::Auto,
    ] {
        let r = run(par);
        assert_eq!(
            r.stats.work_units(),
            reference.stats.work_units(),
            "budget counters diverge at {par:?}"
        );
        assert_eq!(
            r.encoding.codes(),
            reference.encoding.codes(),
            "budgeted answer diverges at {par:?}"
        );
    }
    let rung = match &reference.detail {
        SolutionDetail::Auto { rung, .. } => rung.to_string(),
        other => format!("{other:?}"),
    };
    println!("budget/identity: {rung} rung, counters bit-identical across off/2/4/auto threads",);
}

fn main() {
    // Unconstrained problems maximize the number of prime dichotomies
    // (2^n − 2), giving long term lists for the partition, absorption and
    // antichain passes to chew through.
    for n in [11usize, 12] {
        let cs = ConstraintSet::new(n);
        let initial = initial_dichotomies(&cs, true);
        speedup(&format!("primes/unconstrained/{n}"), &initial, 10_000_000);
    }
    budget_identity();
}
