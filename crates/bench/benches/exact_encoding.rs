//! The full exact encoder of Table 1 (primes + exact unate covering) on the
//! small and mid-size suite machines, plus the paper's worked examples.

use ioenc_bench::harness::Runner;
use ioenc_bench::{benchmark, table1_constraints};
use ioenc_core::{ConstraintSet, Solver, SolverMode};
use std::hint::black_box;

fn main() {
    let mut r = Runner::from_env();

    let cases: Vec<(&str, ConstraintSet)> = vec![
        (
            "section1",
            ConstraintSet::parse(
                &["a", "b", "c", "d"],
                "(b,c)\n(c,d)\n(b,a)\n(a,d)\nb>c\na>c\na=b|d",
            )
            .unwrap(),
        ),
        (
            "figure8",
            ConstraintSet::parse(&["s0", "s1", "s2", "s3"], "(s0,s1)\ns0>s1\ns1>s2\ns0=s1|s3")
                .unwrap(),
        ),
    ];
    let solver = Solver::new().mode(SolverMode::Exact);
    for (name, cs) in &cases {
        r.bench(&format!("exact/worked-examples/{name}"), || {
            solver.solve(black_box(cs)).unwrap().encoding
        });
    }

    for name in ["dk512", "master", "bbsse"] {
        let fsm = benchmark(name);
        let cs = table1_constraints(&fsm);
        r.bench(&format!("exact/suite/{name}"), || {
            // Some suite machines legitimately exceed the prime cap;
            // both outcomes are the measured work.
            let _ = solver.solve(black_box(&cs));
        });
    }
}
