//! The full exact encoder of Table 1 (primes + exact unate covering) on the
//! small and mid-size suite machines, plus the paper's worked examples.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ioenc_bench::{benchmark, table1_constraints};
use ioenc_core::{exact_encode, ConstraintSet, ExactOptions};
use std::hint::black_box;

fn bench_worked_examples(c: &mut Criterion) {
    let mut group = c.benchmark_group("exact/worked-examples");
    let cases: Vec<(&str, ConstraintSet)> = vec![
        (
            "section1",
            ConstraintSet::parse(
                &["a", "b", "c", "d"],
                "(b,c)\n(c,d)\n(b,a)\n(a,d)\nb>c\na>c\na=b|d",
            )
            .unwrap(),
        ),
        (
            "figure8",
            ConstraintSet::parse(&["s0", "s1", "s2", "s3"], "(s0,s1)\ns0>s1\ns1>s2\ns0=s1|s3")
                .unwrap(),
        ),
    ];
    for (name, cs) in cases {
        group.bench_with_input(BenchmarkId::from_parameter(name), &cs, |b, cs| {
            b.iter(|| exact_encode(black_box(cs), &ExactOptions::default()).unwrap());
        });
    }
    group.finish();
}

fn bench_suite(c: &mut Criterion) {
    let mut group = c.benchmark_group("exact/suite");
    group.sample_size(10);
    for name in ["dk512", "master", "bbsse"] {
        let fsm = benchmark(name);
        let cs = table1_constraints(&fsm);
        group.bench_with_input(BenchmarkId::from_parameter(name), &cs, |b, cs| {
            b.iter(|| {
                // Some suite machines legitimately exceed the prime cap;
                // both outcomes are the measured work.
                let _ = exact_encode(black_box(cs), &ExactOptions::default());
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_worked_examples, bench_suite);
criterion_main!(benches);
