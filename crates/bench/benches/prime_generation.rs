//! Prime encoding-dichotomy generation (Section 5.1): the linear-recursion
//! cs/ps algorithm on constrained and unconstrained problems.
//!
//! The paper's point: unconstrained problems explode (2^n − 2 primes) while
//! face constraints prune the compatibles; the algorithm's cost tracks the
//! *output* size, not an exponential recursion tree.

use ioenc_bench::harness::Runner;
use ioenc_core::{generate_primes, initial_dichotomies, ConstraintSet};
use std::hint::black_box;

fn figure3_constraints(n: usize) -> ConstraintSet {
    // Chains of overlapping 3-symbol faces, Figure-3 style, scaled to n.
    let mut cs = ConstraintSet::new(n);
    for i in 0..n.saturating_sub(2) {
        cs.add_face([i, (i + 1) % n, (i + 2) % n]);
    }
    cs
}

fn main() {
    let mut r = Runner::from_env();

    for n in [6usize, 8, 10, 12] {
        let cs = figure3_constraints(n);
        let initial = initial_dichotomies(&cs, true);
        r.bench(&format!("primes/constrained/{n}"), || {
            generate_primes(black_box(&initial), 1_000_000).unwrap()
        });
    }

    for n in [6usize, 8, 10] {
        let cs = ConstraintSet::new(n);
        let initial = initial_dichotomies(&cs, true);
        r.bench(&format!("primes/unconstrained/{n}"), || {
            generate_primes(black_box(&initial), 10_000_000).unwrap()
        });
    }
}
