//! The bounded-length heuristic (Section 7.1) and the two baselines of
//! Tables 2–3 on the same constraint sets, one iteration each — the raw
//! material behind Table 3's run-time ratios.

use ioenc_anneal::{anneal_encode, AnnealOptions};
use ioenc_bench::harness::Runner;
use ioenc_core::{heuristic_encode_report, CostFunction, HeuristicOptions};
use ioenc_nova::{nova_encode, NovaOptions};
use ioenc_symbolic::input_constraints;
use std::hint::black_box;

fn main() {
    let mut r = Runner::from_env();

    let fsm = ioenc_bench::benchmark("dk512");
    let cs = input_constraints(&fsm);

    let violations = HeuristicOptions::new().with_cost(CostFunction::Violations);
    r.bench("encoders/dk512/heuristic-violations", || {
        heuristic_encode_report(black_box(&cs), &violations)
            .unwrap()
            .encoding
    });

    let cubes = HeuristicOptions::new()
        .with_cost(CostFunction::Cubes)
        .with_selection_cap(60);
    r.bench("encoders/dk512/heuristic-cubes", || {
        heuristic_encode_report(black_box(&cs), &cubes)
            .unwrap()
            .encoding
    });

    r.bench("encoders/dk512/nova", || {
        nova_encode(black_box(&cs), &NovaOptions::default())
    });

    let anneal_opts = AnnealOptions {
        cost: CostFunction::Violations,
        moves_per_temp: 4,
        steps: 20,
        ..Default::default()
    };
    r.bench("encoders/dk512/anneal-short", || {
        anneal_encode(black_box(&cs), &anneal_opts)
    });

    for name in ["dk512", "bbsse", "donfile"] {
        let fsm = ioenc_bench::benchmark(name);
        let cs = input_constraints(&fsm);
        let opts = HeuristicOptions::new().with_cost(CostFunction::Violations);
        r.bench(&format!("heuristic/scaling/{name}"), || {
            heuristic_encode_report(black_box(&cs), &opts)
                .unwrap()
                .encoding
        });
    }
}
