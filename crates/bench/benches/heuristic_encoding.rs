//! The bounded-length heuristic (Section 7.1) and the two baselines of
//! Tables 2–3 on the same constraint sets, one iteration each — the raw
//! material behind Table 3's run-time ratios.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ioenc_anneal::{anneal_encode, AnnealOptions};
use ioenc_core::{heuristic_encode, CostFunction, HeuristicOptions};
use ioenc_nova::{nova_encode, NovaOptions};
use ioenc_symbolic::input_constraints;
use std::hint::black_box;

fn bench_encoders(c: &mut Criterion) {
    let fsm = ioenc_bench::benchmark("dk512");
    let cs = input_constraints(&fsm);

    let mut group = c.benchmark_group("encoders/dk512");
    group.sample_size(10);
    group.bench_function("heuristic-violations", |b| {
        b.iter(|| {
            heuristic_encode(
                black_box(&cs),
                &HeuristicOptions {
                    cost: CostFunction::Violations,
                    ..Default::default()
                },
            )
            .unwrap()
        });
    });
    group.bench_function("heuristic-cubes", |b| {
        b.iter(|| {
            heuristic_encode(
                black_box(&cs),
                &HeuristicOptions {
                    cost: CostFunction::Cubes,
                    selection_cap: 60,
                    ..Default::default()
                },
            )
            .unwrap()
        });
    });
    group.bench_function("nova", |b| {
        b.iter(|| nova_encode(black_box(&cs), &NovaOptions::default()));
    });
    group.bench_function("anneal-short", |b| {
        b.iter(|| {
            anneal_encode(
                black_box(&cs),
                &AnnealOptions {
                    cost: CostFunction::Violations,
                    moves_per_temp: 4,
                    steps: 20,
                    ..Default::default()
                },
            )
        });
    });
    group.finish();
}

fn bench_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("heuristic/scaling");
    group.sample_size(10);
    for name in ["dk512", "bbsse", "donfile"] {
        let fsm = ioenc_bench::benchmark(name);
        let cs = input_constraints(&fsm);
        group.bench_with_input(BenchmarkId::from_parameter(name), &cs, |b, cs| {
            b.iter(|| {
                heuristic_encode(
                    black_box(cs),
                    &HeuristicOptions {
                        cost: CostFunction::Violations,
                        ..Default::default()
                    },
                )
                .unwrap()
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_encoders, bench_scaling);
criterion_main!(benches);
