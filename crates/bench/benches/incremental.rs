//! Incremental session re-solve vs from-scratch, on single-constraint
//! deltas.
//!
//! The workload is the one the session API exists for: interactive
//! exploration of a prime-rich base set, adding and removing one
//! face/dominance constraint per step and frequently returning to forms
//! already visited. A [`Session`] wins twice on such traffic: the
//! dichotomy lattice patches the raising/prime-generation work the edit
//! survived, and the cover memo replays the covering search outright
//! whenever the edited set's cover inputs recur (every toggle back).
//! Both paths are bit-identical to a from-scratch solve — asserted here
//! on every step.
//!
//! Each step times `session.apply(delta)` against a from-scratch
//! [`Solver::solve`] of the same edited set and reports per-delta and
//! median speedups.
//!
//! Set `BENCH_INCREMENTAL_JSON=<path>` to also write the results as
//! JSON; the committed `BENCH_incremental.json` at the workspace root is
//! produced this way.

use ioenc_bench::harness::{fmt_duration, time_once};
use ioenc_bench::meta::bench_meta;
use ioenc_core::json::Json;
use ioenc_core::{ConstraintSet, Delta, Session, Solver};
use std::time::Duration;

/// A base set plus a single-constraint exploration trace over it. The
/// bases are lightly constrained so the prime family stays large (an
/// unconstrained n-symbol set has 2^n − 2 prime dichotomies), and each
/// trace revisits forms the way an interactive user toggling candidate
/// constraints does.
struct Case {
    name: &'static str,
    symbols: &'static [&'static str],
    base: &'static str,
    trace: &'static [Step],
}

enum Step {
    Add(&'static str),
    Remove(&'static str),
}

const CASES: &[Case] = &[
    Case {
        name: "9sym-2face",
        symbols: &["a", "b", "c", "d", "e", "f", "g", "h", "i"],
        base: "(a,b)\n(c,d)\n",
        trace: &[
            Step::Add("e>f"),
            Step::Remove("e>f"),
            Step::Add("(g,h)"),
            Step::Remove("(g,h)"),
            Step::Add("e>f"),
            Step::Remove("e>f"),
            Step::Add("a>i"),
            Step::Remove("a>i"),
        ],
    },
    Case {
        name: "10sym-3con",
        symbols: &["s0", "s1", "s2", "s3", "s4", "s5", "s6", "s7", "s8", "s9"],
        base: "(s0,s1)\n(s2,s3)\ns4>s5\n",
        trace: &[
            Step::Add("s6>s7"),
            Step::Remove("s6>s7"),
            Step::Add("(s8,s9)"),
            Step::Remove("(s8,s9)"),
            Step::Add("s6>s7"),
            Step::Remove("s6>s7"),
            Step::Add("s0>s9"),
            Step::Remove("s0>s9"),
        ],
    },
];

fn median(mut xs: Vec<f64>) -> f64 {
    xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let n = xs.len();
    if n % 2 == 1 {
        xs[n / 2]
    } else {
        (xs[n / 2 - 1] + xs[n / 2]) / 2.0
    }
}

fn main() {
    const RUNS: usize = 3;
    let solver = Solver::new();
    let mut all_speedups = Vec::new();
    let mut first_visit_speedups = Vec::new();
    let mut case_docs = Vec::new();

    for case in CASES {
        let base = ConstraintSet::parse(case.symbols, case.base).unwrap();
        let base_primes = solver.solve(&base).unwrap().stats.num_primes;

        // Scratch times per step, measured on fresh solves of each edited
        // form (min over RUNS).
        let mut delta_docs = Vec::new();
        let mut speedups = Vec::new();

        // The trace is stateful (each delta applies to the previous form),
        // so time each full replay of the trace and keep the per-step
        // minimum across RUNS.
        let mut inc_best = vec![Duration::MAX; case.trace.len()];
        let mut scr_best = vec![Duration::MAX; case.trace.len()];
        let mut replayed = vec![false; case.trace.len()];
        let mut seeded = vec![false; case.trace.len()];
        let mut primes_at = vec![0usize; case.trace.len()];
        for _ in 0..RUNS {
            let mut session = Session::open(base.clone()).with_solver(solver.clone());
            session.solve().unwrap();
            for (i, step) in case.trace.iter().enumerate() {
                let delta = match step {
                    Step::Add(line) => Delta::new().add(*line),
                    Step::Remove(line) => Delta::new().remove(*line),
                };
                let (out, t) = time_once(|| session.apply(&delta).unwrap());
                assert!(out.reuse.incremental, "step {i}: fell off the fast path");
                inc_best[i] = inc_best[i].min(t);
                replayed[i] = out.reuse.cover_replayed;
                seeded[i] = out.reuse.cover_seeded;

                let edited = session.constraints().clone();
                let (scratch, t) = time_once(|| solver.solve(&edited).unwrap());
                scr_best[i] = scr_best[i].min(t);
                primes_at[i] = scratch.stats.num_primes;
                assert_eq!(
                    out.solution.encoding.codes(),
                    scratch.encoding.codes(),
                    "step {i}: incremental diverged from scratch"
                );
            }
        }

        for (i, step) in case.trace.iter().enumerate() {
            let label = match step {
                Step::Add(line) => format!("+{line}"),
                Step::Remove(line) => format!("-{line}"),
            };
            let speedup = scr_best[i].as_secs_f64() / inc_best[i].as_secs_f64();
            println!(
                "incremental/{}/{label}: scratch {} vs incremental {} — {speedup:.1}x ({} primes{})",
                case.name,
                fmt_duration(scr_best[i]),
                fmt_duration(inc_best[i]),
                primes_at[i],
                if replayed[i] {
                    ", cover replayed"
                } else if seeded[i] {
                    ", cover seeded"
                } else {
                    ""
                },
            );
            speedups.push(speedup);
            first_visit_speedups.extend((!replayed[i]).then_some(speedup));
            delta_docs.push(
                Json::obj()
                    .field("delta", label.as_str())
                    .field("primes", primes_at[i])
                    .field("cover_replayed", replayed[i])
                    .field("cover_seeded", seeded[i])
                    .field("scratch_us", Json::Float(scr_best[i].as_secs_f64() * 1e6))
                    .field(
                        "incremental_us",
                        Json::Float(inc_best[i].as_secs_f64() * 1e6),
                    )
                    .field("speedup", Json::Float((speedup * 10.0).round() / 10.0)),
            );
        }

        let med = median(speedups.clone());
        println!(
            "incremental/{}: {base_primes} base primes, median speedup {med:.1}x",
            case.name
        );
        all_speedups.extend(speedups);
        case_docs.push(
            Json::obj()
                .field("name", case.name)
                .field("base_primes", base_primes)
                .field("median_speedup", Json::Float((med * 10.0).round() / 10.0))
                .field("deltas", Json::Arr(delta_docs)),
        );
    }

    let overall = median(all_speedups);
    println!(
        "incremental/overall: median speedup {overall:.1}x across all single-constraint deltas"
    );
    // First visits can't replay a memoized cover; their speedup comes from
    // lattice patching plus incumbent seeding of the covering search.
    let first_visit = median(first_visit_speedups);
    println!(
        "incremental/first-visit: median speedup {first_visit:.1}x on deltas without a cover replay"
    );

    if let Ok(path) = std::env::var("BENCH_INCREMENTAL_JSON") {
        let doc = Json::obj()
            .field("bench", "incremental")
            .field("runs_per_trace", RUNS)
            .field("meta", bench_meta())
            .field("cases", Json::Arr(case_docs))
            .field(
                "median_speedup",
                Json::Float((overall * 10.0).round() / 10.0),
            )
            .field(
                "first_visit_median_speedup",
                Json::Float((first_visit * 10.0).round() / 10.0),
            );
        std::fs::write(&path, format!("{}\n", doc.render())).expect("write BENCH_INCREMENTAL_JSON");
        println!("wrote {path}");
    }
}
