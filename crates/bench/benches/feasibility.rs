//! The polynomial feasibility check of Theorem 6.1 (problem P-1) on the
//! benchmark suite's mixed constraint sets.

use ioenc_bench::harness::Runner;
use ioenc_bench::{benchmark, table1_constraints};
use ioenc_core::check_feasible;
use std::hint::black_box;

fn main() {
    let mut r = Runner::from_env();
    for name in ["bbsse", "dk512", "master", "s1"] {
        let fsm = benchmark(name);
        let cs = table1_constraints(&fsm);
        r.bench(&format!("feasibility/{name}"), || {
            check_feasible(black_box(&cs))
        });
    }
}
