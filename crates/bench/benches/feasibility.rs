//! The polynomial feasibility check of Theorem 6.1 (problem P-1) on the
//! benchmark suite's mixed constraint sets.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ioenc_bench::{benchmark, table1_constraints};
use ioenc_core::check_feasible;
use std::hint::black_box;

fn bench_feasibility(c: &mut Criterion) {
    let mut group = c.benchmark_group("feasibility");
    group.sample_size(20);
    for name in ["bbsse", "dk512", "master", "s1"] {
        let fsm = benchmark(name);
        let cs = table1_constraints(&fsm);
        group.bench_with_input(BenchmarkId::from_parameter(name), &cs, |b, cs| {
            b.iter(|| check_feasible(black_box(cs)));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_feasibility);
criterion_main!(benches);
