//! The unate and binate covering solvers (the final step of exact
//! encoding, Section 4's abstraction).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ioenc_cover::{BinateProblem, UnateProblem};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;

fn random_unate(cols: usize, rows: usize, density: f64, seed: u64) -> UnateProblem {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut p = UnateProblem::new(cols);
    for _ in 0..rows {
        let mut row: Vec<usize> = (0..cols).filter(|_| rng.gen_bool(density)).collect();
        if row.is_empty() {
            row.push(rng.gen_range(0..cols));
        }
        p.add_row(row);
    }
    p
}

fn bench_unate(c: &mut Criterion) {
    let mut group = c.benchmark_group("cover/unate-exact");
    group.sample_size(10);
    for (cols, rows) in [(20usize, 14usize), (30, 20), (45, 28)] {
        let p = random_unate(cols, rows, 0.2, 7);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{cols}x{rows}")),
            &p,
            |b, p| {
                b.iter(|| black_box(p).solve_exact().unwrap());
            },
        );
    }
    group.finish();
}

fn bench_greedy(c: &mut Criterion) {
    let mut group = c.benchmark_group("cover/unate-greedy");
    for (cols, rows) in [(60usize, 40usize), (240, 120)] {
        let p = random_unate(cols, rows, 0.15, 7);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{cols}x{rows}")),
            &p,
            |b, p| {
                b.iter(|| black_box(p).solve_greedy().unwrap());
            },
        );
    }
    group.finish();
}

fn bench_binate(c: &mut Criterion) {
    let mut group = c.benchmark_group("cover/binate-exact");
    group.sample_size(10);
    let mut rng = StdRng::seed_from_u64(11);
    for cols in [20usize, 40] {
        let mut p = BinateProblem::new(cols);
        for _ in 0..cols {
            let pos: Vec<usize> = (0..cols).filter(|_| rng.gen_bool(0.12)).collect();
            let neg: Vec<usize> = (0..cols).filter(|_| rng.gen_bool(0.04)).collect();
            if !pos.is_empty() || !neg.is_empty() {
                p.add_clause(pos, neg);
            }
        }
        group.bench_with_input(BenchmarkId::from_parameter(cols), &p, |b, p| {
            b.iter(|| {
                let _ = black_box(p).solve_exact();
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_unate, bench_greedy, bench_binate);
criterion_main!(benches);
