//! The unate and binate covering solvers (the final step of exact
//! encoding, Section 4's abstraction).

use ioenc_bench::harness::Runner;
use ioenc_cover::{BinateProblem, UnateProblem};
use ioenc_rng::SplitMix64;
use std::hint::black_box;

fn random_unate(cols: usize, rows: usize, density: f64, seed: u64) -> UnateProblem {
    let mut rng = SplitMix64::new(seed);
    let mut p = UnateProblem::new(cols);
    for _ in 0..rows {
        let mut row: Vec<usize> = (0..cols).filter(|_| rng.gen_bool(density)).collect();
        if row.is_empty() {
            row.push(rng.gen_range(0..cols));
        }
        p.add_row(row);
    }
    p
}

fn main() {
    let mut r = Runner::from_env();

    for (cols, rows) in [(20usize, 14usize), (30, 20), (45, 28)] {
        let p = random_unate(cols, rows, 0.2, 7);
        r.bench(&format!("cover/unate-exact/{cols}x{rows}"), || {
            black_box(&p).solve_exact().unwrap()
        });
    }

    for (cols, rows) in [(60usize, 40usize), (240, 120)] {
        let p = random_unate(cols, rows, 0.15, 7);
        r.bench(&format!("cover/unate-greedy/{cols}x{rows}"), || {
            black_box(&p).solve_greedy().unwrap()
        });
    }

    let mut rng = SplitMix64::new(11);
    for cols in [20usize, 40] {
        let mut p = BinateProblem::new(cols);
        for _ in 0..cols {
            let pos: Vec<usize> = (0..cols).filter(|_| rng.gen_bool(0.12)).collect();
            let neg: Vec<usize> = (0..cols).filter(|_| rng.gen_bool(0.04)).collect();
            if !pos.is_empty() || !neg.is_empty() {
                p.add_clause(pos, neg);
            }
        }
        r.bench(&format!("cover/binate-exact/{cols}"), || {
            let _ = black_box(&p).solve_exact();
        });
    }
}
