//! Regenerates Table 2: two-level heuristic minimum-code-length input
//! encoding, our heuristic (ENC) vs the NOVA-like baseline.
//!
//! Reported per benchmark: the number of face constraints from the
//! ESPRESSO-MV stand-in, the constraints each encoder satisfies at minimum
//! code length, and the product terms of a two-level implementation of the
//! encoded constraints (the paper's headline: ENC needs ~13% fewer cubes on
//! average).

use ioenc_bench::{benchmark, table2_names};
use ioenc_core::{
    cost_of, count_violations, heuristic_encode_report, CostFunction, HeuristicOptions,
};
use ioenc_nova::{nova_encode, NovaOptions};
use ioenc_symbolic::input_constraints;

fn main() {
    println!("Table 2: Two-level heuristic minimum code length input encoding");
    println!(
        "{:<10} {:>7} {:>13} {:>12} {:>12} {:>11} {:>10}",
        "Name", "States", "# Constraints", "Sat NOVA", "Sat ENC", "Cubes NOVA", "Cubes ENC"
    );
    let mut total_nova_cubes = 0u64;
    let mut total_enc_cubes = 0u64;
    for name in table2_names() {
        let fsm = benchmark(name);
        let cs = input_constraints(&fsm);
        let total = cs.faces().len();

        let nova = nova_encode(&cs, &NovaOptions::default());
        let enc = heuristic_encode_report(
            &cs,
            // Bound the espresso-driven polish on the very large machines
            // (the paper's ENC likewise restricts the number of cost
            // evaluations).
            &HeuristicOptions::new()
                .with_cost(CostFunction::Cubes)
                .with_selection_cap(if fsm.num_states() > 40 { 80 } else { 400 }),
        )
        .expect("minimum length is always encodable")
        .encoding;

        let nova_sat = total - count_violations(&cs, &nova);
        let enc_sat = total - count_violations(&cs, &enc);
        let nova_cubes = cost_of(&cs, &nova, CostFunction::Cubes);
        let enc_cubes = cost_of(&cs, &enc, CostFunction::Cubes);
        total_nova_cubes += nova_cubes;
        total_enc_cubes += enc_cubes;
        println!(
            "{:<10} {:>7} {:>13} {:>12} {:>12} {:>11} {:>10}",
            name,
            fsm.num_states(),
            total,
            nova_sat,
            enc_sat,
            nova_cubes,
            enc_cubes
        );
    }
    let gain = 100.0 * (1.0 - total_enc_cubes as f64 / total_nova_cubes.max(1) as f64);
    println!(
        "\nTotal cubes: NOVA {total_nova_cubes}, ENC {total_enc_cubes} ({gain:+.1}% ENC advantage; the paper reports ~13%)"
    );
}
