//! Regenerates Table 3: multi-level heuristic minimum-code-length input
//! encoding with don't cares — our heuristic (ENC) vs simulated annealing
//! (SA), on the literal count of the minimized encoded constraints and run
//! time.
//!
//! Large machines get fewer SA moves per temperature point, mirroring the
//! paper's `†` rows where 10 swaps per step could not complete.

use ioenc_anneal::{anneal_encode, AnnealOptions};
use ioenc_bench::{benchmark, table3_names};
use ioenc_core::{cost_of, heuristic_encode_report, CostFunction, HeuristicOptions};
use ioenc_symbolic::input_constraints_with_dc;
use std::time::Instant;

fn main() {
    println!("Table 3: Multi-level heuristic minimum code length input encoding");
    println!(
        "{:<10} {:>7} {:>9} {:>9} {:>10} {:>10} {:>8}",
        "Name", "States", "Lits SA", "Lits ENC", "SA (s)", "ENC (s)", "SA/ENC"
    );
    for name in table3_names() {
        let fsm = benchmark(name);
        let cs = input_constraints_with_dc(&fsm);
        // The paper's dagger rows: SA cannot afford 10 moves per step on
        // the big machines.
        let big = fsm.num_states() > 25;
        let sa_opts = AnnealOptions {
            cost: CostFunction::Literals,
            moves_per_temp: if big { 4 } else { 10 },
            ..Default::default()
        };

        let start = Instant::now();
        let sa = anneal_encode(&cs, &sa_opts);
        let sa_time = start.elapsed().as_secs_f64();

        let start = Instant::now();
        let enc = heuristic_encode_report(
            &cs,
            // Bound the espresso-driven polish on the very large machines
            // (the paper's ENC likewise restricts the number of cost
            // evaluations).
            &HeuristicOptions::new()
                .with_cost(CostFunction::Literals)
                .with_selection_cap(if fsm.num_states() > 40 { 80 } else { 400 }),
        )
        .expect("minimum length is always encodable")
        .encoding;
        let enc_time = start.elapsed().as_secs_f64();

        let sa_lits = cost_of(&cs, &sa, CostFunction::Literals);
        let enc_lits = cost_of(&cs, &enc, CostFunction::Literals);
        println!(
            "{:<10} {:>7} {:>9} {:>9} {:>10.2} {:>10.2} {:>8.1}{}",
            name,
            fsm.num_states(),
            sa_lits,
            enc_lits,
            sa_time,
            enc_time,
            sa_time / enc_time.max(1e-9),
            if big {
                "  (†: SA limited to 4 moves/step)"
            } else {
                ""
            }
        );
    }
    println!(
        "\n†: as in the paper, SA cannot complete with 10 moves per step on the large examples"
    );
}
