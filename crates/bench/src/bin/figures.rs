//! Regenerates the paper's worked examples: the binate table of Figure 1,
//! the input-encoding pipeline of Figure 3, the infeasible mixed example of
//! Figure 4, the exact mixed example of Figure 8, the cost-function
//! evaluation of Figure 9, and the Section 8 extensions.

use ioenc_core::{
    check_feasible, cost_of, exact_encode_report, generate_primes, initial_dichotomies,
    BinateFormulation, ConstraintSet, CostFunction, Encoding, ExactOptions,
};

fn main() {
    figure_1();
    figure_3();
    figure_4();
    figure_8();
    figure_9();
    section_8_1();
    section_8_2();
    section_8_3();
}

fn header(title: &str) {
    println!("\n=== {title} ===");
}

fn figure_1() {
    header("Figure 1: satisfaction of constraints as binate covering");
    let cs = ConstraintSet::parse(&["a", "b", "c"], "(a,b)\nb>c\nb=a|c").unwrap();
    let f = BinateFormulation::build(&cs);
    println!("columns (bit order a,b,c): {:?}", f.columns);
    print!("{}", f.display());
}

fn figure_3() {
    header("Figure 3: input encoding example");
    let mut cs = ConstraintSet::new(5);
    cs.add_face([0, 2, 4]);
    cs.add_face([0, 1, 4]);
    cs.add_face([1, 2, 3]);
    cs.add_face([1, 3, 4]);
    let initial = initial_dichotomies(&cs, true);
    println!("initial encoding-dichotomies ({}):", initial.len());
    for d in &initial {
        println!("  {}", d.display(&cs));
    }
    let primes = generate_primes(&initial, 10_000).unwrap();
    println!("prime encoding-dichotomies ({}):", primes.len());
    for p in &primes {
        println!("  {}", p.display(&cs));
    }
    let report = exact_encode_report(&cs, &ExactOptions::default()).unwrap();
    println!("minimum cover ({} primes):", report.selected.len());
    for p in &report.selected {
        println!("  {}", p.display(&cs));
    }
    print!("{}", report.encoding.display(&cs));
}

fn figure_4() {
    header("Figure 4: feasibility check with input and output constraints");
    let names = ["s0", "s1", "s2", "s3", "s4", "s5"];
    let cs = ConstraintSet::parse(
        &names,
        "(s1,s5)\n(s2,s5)\n(s4,s5)\n\
         s0>s1\ns0>s2\ns0>s3\ns0>s5\ns1>s3\ns2>s3\ns4>s5\ns5>s2\ns5>s3\n\
         s0=s1|s2",
    )
    .unwrap();
    let r = check_feasible(&cs);
    println!("initial encoding-dichotomies: {}", r.initial.len());
    println!("valid maximally raised dichotomies: {}", r.raised.len());
    for d in &r.raised {
        println!("  {}", d.display(&cs));
    }
    println!("feasible: {}", r.is_feasible());
    println!("uncovered initial encoding-dichotomies:");
    for d in &r.uncovered {
        println!("  {}", d.display(&cs));
    }
    println!("(the check of Devadas–Newton [9] wrongly accepts this instance)");
}

fn figure_8() {
    header("Figure 8: exact encoding with input and output constraints");
    let cs =
        ConstraintSet::parse(&["s0", "s1", "s2", "s3"], "(s0,s1)\ns0>s1\ns1>s2\ns0=s1|s3").unwrap();
    let report = exact_encode_report(&cs, &ExactOptions::default()).unwrap();
    println!("minimum cover:");
    for p in &report.selected {
        println!("  {}", p.display(&cs));
    }
    println!("final encoding:");
    print!("{}", report.encoding.display(&cs));
}

fn figure_9() {
    header("Figure 9: cost function evaluation");
    let names = ["a", "b", "c", "d", "e", "f", "g"];
    let cs = ConstraintSet::parse(&names, "(e,f,c)\n(e,d,g)\n(a,b,d)\n(a,g,f,d)").unwrap();
    // The paper's 4-bit solution satisfies everything:
    let four = Encoding::new(
        4,
        vec![0b1010, 0b0010, 0b0011, 0b1110, 0b0111, 0b1011, 0b1100],
    );
    println!(
        "4-bit encoding: violations = {}, cubes = {}, literals = {}",
        cost_of(&cs, &four, CostFunction::Violations),
        cost_of(&cs, &four, CostFunction::Cubes),
        cost_of(&cs, &four, CostFunction::Literals),
    );
    // A 3-bit encoding must violate constraints and pay in cubes/literals.
    let three = Encoding::new(3, vec![0b010, 0b110, 0b111, 0b000, 0b101, 0b011, 0b001]);
    println!(
        "3-bit encoding: violations = {}, cubes = {}, literals = {}",
        cost_of(&cs, &three, CostFunction::Violations),
        cost_of(&cs, &three, CostFunction::Cubes),
        cost_of(&cs, &three, CostFunction::Literals),
    );
    println!("(the paper's 3-bit example violates 3 constraints, needing 7 cubes / 14 literals)");
}

fn section_8_1() {
    header("Section 8.1: encoding don't cares");
    let names = ["a", "b", "c", "d", "e", "f"];
    for (label, text) in [
        (
            "with don't cares (a,b,[c,d],e)",
            "(a,b)\n(a,c)\n(a,d)\n(a,b,[c,d],e)",
        ),
        ("forced in (a,b,c,d,e)", "(a,b)\n(a,c)\n(a,d)\n(a,b,c,d,e)"),
        ("forced out (a,b,e)", "(a,b)\n(a,c)\n(a,d)\n(a,b,e)"),
    ] {
        let cs = ConstraintSet::parse(&names, text).unwrap();
        let enc = exact_encode_report(&cs, &ExactOptions::default())
            .unwrap()
            .encoding;
        println!("{label}: minimum cover of {} primes", enc.width());
    }
}

fn section_8_2() {
    header("Section 8.2: distance-2 constraints");
    let mut cs = ConstraintSet::new(4);
    cs.add_face([0, 1]);
    cs.add_distance2(0, 1);
    let enc = exact_encode_report(&cs, &ExactOptions::default())
        .unwrap()
        .encoding;
    println!(
        "codes {:0w$b} and {:0w$b} are at Hamming distance {}",
        enc.code(0),
        enc.code(1),
        ioenc_core::hamming(enc.code(0), enc.code(1)),
        w = enc.width()
    );
}

fn section_8_3() {
    header("Section 8.3: non-face constraints");
    let names = ["a", "b", "c", "d", "e", "f"];
    let cs = ConstraintSet::parse(&names, "(a,b)\n(b,c,d)\n(a,e)\n(d,f)\n!(a,b,e)").unwrap();
    let enc = exact_encode_report(&cs, &ExactOptions::default())
        .unwrap()
        .encoding;
    print!("{}", enc.display(&cs));
    println!(
        "face of {{a,b,e}} is shared (non-face satisfied): {}",
        enc.satisfies(&cs)
    );
}
