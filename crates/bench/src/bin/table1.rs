//! Regenerates Table 1: exact input and output encoding.
//!
//! For every benchmark: number of states, number of valid prime
//! encoding-dichotomies, minimum code length, and run time. Machines whose
//! prime generation exceeds 50 000 terms are reported as `> 50000  *  *`,
//! exactly as the paper reports `planet` and `vmecont`.

use ioenc_bench::{benchmark, table1_constraints, table1_names};
use ioenc_core::{exact_encode_report, BudgetPhase, EncodeError, ExactOptions};
use std::time::Instant;

fn main() {
    println!("Table 1: Exact input and output encoding");
    println!(
        "{:<10} {:>8} {:>9} {:>6} {:>10}",
        "Name", "# States", "# Primes", "# Bits", "Time (s)"
    );
    let opts = ExactOptions::default();
    for name in table1_names() {
        let fsm = benchmark(name);
        let cs = table1_constraints(&fsm);
        let start = Instant::now();
        match exact_encode_report(&cs, &opts) {
            Ok(report) => {
                let secs = start.elapsed().as_secs_f64();
                println!(
                    "{:<10} {:>8} {:>9} {:>6} {:>10.2}{}",
                    name,
                    fsm.num_states(),
                    report.num_primes,
                    report.encoding.width(),
                    secs,
                    if report.optimal { "" } else { "  (bound hit)" }
                );
                eprintln!(
                    "# {name}: {} cover nodes, {} prunes, {} tasks on {} threads",
                    report.stats.cover.nodes,
                    report.stats.cover.prunes,
                    report.stats.cover.tasks,
                    report.stats.cover.threads
                );
            }
            Err(EncodeError::Budget {
                phase: BudgetPhase::Primes,
                ..
            }) => {
                println!(
                    "{:<10} {:>8} {:>9} {:>6} {:>10}",
                    name,
                    fsm.num_states(),
                    format!("> {}", opts.prime_cap),
                    "*",
                    "*"
                );
            }
            Err(e) => {
                println!("{:<10} {:>8} error: {e}", name, fsm.num_states());
            }
        }
    }
    println!("\n* indicates results not available (prime cap exceeded, as in the paper)");
}
