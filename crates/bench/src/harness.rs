//! A small, dependency-free micro-benchmark harness.
//!
//! Each file under `benches/` is a `harness = false` bench target whose
//! `main` builds a [`Runner`] and registers closures with
//! [`Runner::bench`]. The runner times each closure adaptively (more
//! iterations for fast bodies, fewer samples for slow ones) and prints
//! min/median/mean wall-clock times.
//!
//! Command-line contract (matching what `cargo bench <filter>` forwards):
//! the first non-flag argument is a substring filter on benchmark names;
//! `--list` prints the names without running anything; all other flags are
//! ignored so `cargo bench`'s own arguments (`--bench`, etc.) pass through
//! harmlessly.
//!
//! Setting `BENCH_QUICK` (to anything but `0`) collapses every
//! measurement to one sample of one iteration — a smoke mode for CI that
//! exercises the benchmark bodies without spending wall-clock time on
//! statistics.

use std::time::{Duration, Instant};

/// Whether `BENCH_QUICK` smoke mode is active.
pub fn quick_mode() -> bool {
    std::env::var_os("BENCH_QUICK").is_some_and(|v| v != "0")
}

/// Target wall-clock time for one timed sample.
const SAMPLE_TARGET: Duration = Duration::from_millis(10);
/// Bodies slower than this run once per sample with fewer samples.
const SLOW_THRESHOLD: Duration = Duration::from_millis(100);
const SAMPLES: usize = 10;
const SLOW_SAMPLES: usize = 3;
const MAX_ITERS: u64 = 100_000;

/// Runs registered benchmarks, honoring a name filter from the command
/// line.
pub struct Runner {
    filter: Option<String>,
    list_only: bool,
    ran: usize,
}

impl Default for Runner {
    fn default() -> Self {
        Self::from_env()
    }
}

impl Runner {
    /// Builds a runner from `std::env::args`.
    pub fn from_env() -> Self {
        let mut filter = None;
        let mut list_only = false;
        for arg in std::env::args().skip(1) {
            if arg == "--list" {
                list_only = true;
            } else if !arg.starts_with('-') && filter.is_none() {
                filter = Some(arg);
            }
        }
        Runner {
            filter,
            list_only,
            ran: 0,
        }
    }

    /// Times `f`, printing one result line, unless filtered out.
    pub fn bench<T>(&mut self, name: &str, mut f: impl FnMut() -> T) {
        if let Some(filter) = &self.filter {
            if !name.contains(filter.as_str()) {
                return;
            }
        }
        if self.list_only {
            println!("{name}: bench");
            return;
        }
        self.ran += 1;

        // Warm-up call doubles as the cost estimate.
        let start = Instant::now();
        std::hint::black_box(f());
        let once = start.elapsed();

        let (iters, samples) = if quick_mode() {
            (1, 1)
        } else if once >= SLOW_THRESHOLD {
            (1, SLOW_SAMPLES)
        } else {
            let per = once.max(Duration::from_nanos(1));
            let iters = (SAMPLE_TARGET.as_nanos() / per.as_nanos()).clamp(1, MAX_ITERS as u128);
            (iters as u64, SAMPLES)
        };

        let mut times: Vec<Duration> = (0..samples)
            .map(|_| {
                let start = Instant::now();
                for _ in 0..iters {
                    std::hint::black_box(f());
                }
                start.elapsed() / iters as u32
            })
            .collect();
        times.sort_unstable();
        let min = times[0];
        let median = times[times.len() / 2];
        let mean = times.iter().sum::<Duration>() / times.len() as u32;
        println!(
            "{name:<44} min {:>9}  median {:>9}  mean {:>9}  ({samples} samples x {iters} iters)",
            fmt_duration(min),
            fmt_duration(median),
            fmt_duration(mean),
        );
    }

    /// Number of benchmarks actually executed (0 when listing/filtered).
    pub fn ran(&self) -> usize {
        self.ran
    }
}

/// Formats a duration with an auto-selected unit.
pub fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1_000.0)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1_000_000.0)
    } else {
        format!("{:.2} s", ns as f64 / 1_000_000_000.0)
    }
}

/// Measures `f` adaptively and returns the best (minimum) time per call
/// in nanoseconds across samples. The minimum is the robust estimator for
/// CPU-bound bodies on shared hosts: interference from the hypervisor or
/// co-tenants only ever adds time, so the fastest sample is the closest
/// observation of the code's intrinsic cost and is far more stable
/// run-to-run than the median (±30% swings were measured on the reference
/// vCPU; see `OPTIMIZATION.md`). Used by benchmarks that record
/// machine-readable ns/op numbers (the `BENCH_core.json` writer). In
/// [`quick_mode`] a single call is timed.
pub fn measure_ns<T>(mut f: impl FnMut() -> T) -> f64 {
    let start = Instant::now();
    std::hint::black_box(f());
    let once = start.elapsed();
    if quick_mode() {
        return once.as_nanos() as f64;
    }
    let per = once.max(Duration::from_nanos(1));
    let iters = (SAMPLE_TARGET.as_nanos() / per.as_nanos()).clamp(1, MAX_ITERS as u128) as u64;
    let samples = if once >= SLOW_THRESHOLD {
        SLOW_SAMPLES
    } else {
        SAMPLES
    };
    (0..samples)
        .map(|_| {
            let start = Instant::now();
            for _ in 0..iters {
                std::hint::black_box(f());
            }
            start.elapsed().as_nanos() as f64 / iters as f64
        })
        .fold(f64::INFINITY, f64::min)
}

/// Times a single call of `f`, returning its result and the elapsed time.
pub fn time_once<T>(f: impl FnOnce() -> T) -> (T, Duration) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed())
}

/// Times `f` over `runs` calls and returns the minimum wall-clock time.
///
/// Used by the parallel speed-up report, where the quantity of interest is
/// a ratio of best-case times rather than a distribution.
pub fn min_time_of<T>(runs: usize, mut f: impl FnMut() -> T) -> Duration {
    (0..runs.max(1))
        .map(|_| {
            let start = Instant::now();
            std::hint::black_box(f());
            start.elapsed()
        })
        .min()
        .unwrap_or_default() // non-empty: runs.max(1) >= 1
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duration_formatting_picks_units() {
        assert_eq!(fmt_duration(Duration::from_nanos(12)), "12 ns");
        assert_eq!(fmt_duration(Duration::from_micros(12)), "12.00 µs");
        assert_eq!(fmt_duration(Duration::from_millis(12)), "12.00 ms");
        assert_eq!(fmt_duration(Duration::from_secs(2)), "2.00 s");
    }

    #[test]
    fn time_once_returns_value() {
        let (v, d) = time_once(|| 41 + 1);
        assert_eq!(v, 42);
        assert!(d >= Duration::ZERO);
    }

    #[test]
    fn min_time_is_positive() {
        let d = min_time_of(3, || std::hint::black_box((0..100).sum::<u64>()));
        assert!(d > Duration::ZERO);
    }
}
