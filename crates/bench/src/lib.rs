#![warn(missing_docs)]
#![forbid(unsafe_code)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

//! Shared harness for regenerating the paper's tables and figures.
//!
//! The binaries in `src/bin` print the rows of the paper's evaluation:
//!
//! * `table1` — exact input + output encoding (Table 1);
//! * `table2` — heuristic vs the NOVA-like baseline on two-level cube
//!   counts (Table 2);
//! * `table3` — heuristic vs simulated annealing on literal counts and run
//!   time (Table 3);
//! * `figures` — the worked examples of Figures 1, 3, 4, 8 and 9 and the
//!   Section 8 extensions.
//!
//! The `benches/` directory contains the corresponding micro-benchmarks,
//! driven by the dependency-free [`harness`] module. Paper-vs-measured
//! results are recorded in `EXPERIMENTS.md` at the workspace root.

pub mod harness;
pub mod meta;

use ioenc_core::ConstraintSet;
use ioenc_kiss::Fsm;
use ioenc_symbolic::{mixed_constraints, OutputProfile};

/// The per-benchmark output-constraint profile used for Table 1, mirroring
/// the paper's narrative: `planet` has "only nine dominance constraints and
/// no disjunctive constraints", `vmecont` has few distinct face constraints
/// — both blow past the 50 000-prime cap; the rest carry richer mixed sets.
pub fn table1_profile(name: &str) -> OutputProfile {
    match name {
        "planet" => OutputProfile {
            max_dominance: 9,
            max_disjunctive: 0,
        },
        "vmecont" => OutputProfile {
            max_dominance: 4,
            max_disjunctive: 0,
        },
        "tbk" => OutputProfile {
            max_dominance: 220,
            max_disjunctive: 16,
        },
        "donfile" | "dk16" | "dk16x" => OutputProfile {
            max_dominance: 150,
            max_disjunctive: 16,
        },
        "sand" => OutputProfile {
            max_dominance: 280,
            max_disjunctive: 20,
        },
        "kirkman" | "keyb" => OutputProfile {
            max_dominance: 50,
            max_disjunctive: 8,
        },
        "s1" | "s1a" | "exlinp" | "cse" => OutputProfile {
            max_dominance: 90,
            max_disjunctive: 10,
        },
        _ => OutputProfile {
            max_dominance: 40,
            max_disjunctive: 6,
        },
    }
}

/// The constraint set a benchmark FSM contributes to Table 1.
pub fn table1_constraints(fsm: &Fsm) -> ConstraintSet {
    mixed_constraints(fsm, &table1_profile(fsm.name()))
}

/// The benchmarks included in each table, as in the paper.
pub fn table1_names() -> Vec<&'static str> {
    vec![
        "bbsse", "cse", "dk16", "dk16x", "dk512", "donfile", "exlinp", "keyb", "kirkman", "master",
        "planet", "s1", "s1a", "sand", "tbk", "vmecont",
    ]
}

/// Table 2's benchmark list.
pub fn table2_names() -> Vec<&'static str> {
    vec![
        "bbsse", "cse", "dk16", "dk512", "donfile", "ex1", "kirkman", "master", "planet", "s1",
        "sand", "styr", "tbk", "viterbi", "vmecont",
    ]
}

/// Table 3's benchmark list.
pub fn table3_names() -> Vec<&'static str> {
    vec![
        "bbsse", "cse", "dk16", "dk512", "donfile", "kirkman", "master", "s1", "sand", "tbk",
        "viterbi", "vmecont",
    ]
}

/// Fetches a named machine from the generated suite.
///
/// # Panics
///
/// Panics if the name is not in the suite.
pub fn benchmark(name: &str) -> Fsm {
    ioenc_kiss::suite()
        .into_iter()
        .find(|f| f.name() == name)
        .unwrap_or_else(|| panic!("unknown benchmark '{name}'"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_table_names_exist_in_suite() {
        let suite = ioenc_kiss::suite();
        let names: Vec<&str> = suite.iter().map(|f| f.name()).collect();
        for n in table1_names()
            .into_iter()
            .chain(table2_names())
            .chain(table3_names())
        {
            assert!(names.contains(&n), "{n} missing from the suite");
        }
    }

    #[test]
    fn table1_constraints_are_feasible() {
        for name in ["bbsse", "dk512", "master"] {
            let fsm = benchmark(name);
            let cs = table1_constraints(&fsm);
            assert!(ioenc_core::check_feasible(&cs).is_feasible(), "{name}");
        }
    }
}
