//! Benchmark provenance metadata.
//!
//! Every `BENCH_*.json` artifact embeds a `meta` object describing the
//! machine, toolchain and date it was produced on, so the performance
//! trajectory stays comparable across PRs. Values can be pinned through
//! the environment (`BENCH_DATE`, `BENCH_RUSTC`) for reproducible
//! regeneration; otherwise they are probed from the host.

use ioenc_core::json::Json;

/// The `meta` object for a benchmark JSON artifact: date, rustc version,
/// OS/architecture, logical CPU count, the SIMD features the benchmark
/// could use, and any `RUSTFLAGS` in effect.
pub fn bench_meta() -> Json {
    Json::obj()
        .field("date", date().as_str())
        .field("rustc", rustc_version().as_str())
        .field("os", std::env::consts::OS)
        .field("arch", std::env::consts::ARCH)
        .field("cpu_threads", cpu_threads())
        .field("cpu_flags", cpu_flags().as_str())
        .field(
            "rustflags",
            std::env::var("RUSTFLAGS").unwrap_or_default().as_str(),
        )
}

/// `BENCH_DATE` when set, else today (UTC) from the system clock.
fn date() -> String {
    if let Ok(d) = std::env::var("BENCH_DATE") {
        return d;
    }
    match std::time::SystemTime::now().duration_since(std::time::UNIX_EPOCH) {
        Ok(d) => {
            let (y, m, day) = civil_from_days((d.as_secs() / 86_400) as i64);
            format!("{y:04}-{m:02}-{day:02}")
        }
        Err(_) => "unknown".to_string(),
    }
}

/// Days-since-epoch to (year, month, day); Howard Hinnant's public-domain
/// civil-from-days algorithm.
fn civil_from_days(z: i64) -> (i64, u32, u32) {
    let z = z + 719_468;
    let era = if z >= 0 { z } else { z - 146_096 } / 146_097;
    let doe = z - era * 146_097;
    let yoe = (doe - doe / 1_460 + doe / 36_524 - doe / 146_096) / 365;
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = (doy - (153 * mp + 2) / 5 + 1) as u32;
    let m = if mp < 10 { mp + 3 } else { mp - 9 } as u32;
    (if m <= 2 { y + 1 } else { y }, m, d)
}

/// `BENCH_RUSTC` when set, else the output of `rustc --version`.
fn rustc_version() -> String {
    if let Ok(v) = std::env::var("BENCH_RUSTC") {
        return v;
    }
    std::process::Command::new("rustc")
        .arg("--version")
        .output()
        .ok()
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .unwrap_or_else(|| "unknown".to_string())
}

fn cpu_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// The SIMD/bit-manipulation features the bitset kernels dispatch on.
fn cpu_flags() -> String {
    #[cfg(target_arch = "x86_64")]
    {
        let mut flags = Vec::new();
        if std::is_x86_feature_detected!("avx2") {
            flags.push("avx2");
        }
        if std::is_x86_feature_detected!("popcnt") {
            flags.push("popcnt");
        }
        if std::is_x86_feature_detected!("avx512f") {
            flags.push("avx512f");
        }
        flags.join(",")
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        String::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn civil_date_conversion() {
        assert_eq!(civil_from_days(0), (1970, 1, 1));
        assert_eq!(civil_from_days(19_723), (2024, 1, 1));
    }

    #[test]
    fn meta_has_all_fields() {
        let m = bench_meta();
        for key in [
            "date",
            "rustc",
            "os",
            "arch",
            "cpu_threads",
            "cpu_flags",
            "rustflags",
        ] {
            assert!(m.get(key).is_some(), "missing {key}");
        }
    }

    #[test]
    fn env_overrides_are_honoured_in_format() {
        // The date is YYYY-MM-DD shaped whether probed or pinned.
        let d = date();
        assert!(d.len() >= 8 && d.contains('-') || d == "unknown", "{d}");
    }
}
