//! Measurement of encoded FSM implementations.

use ioenc_core::Encoding;
use ioenc_espresso::Pla;
use ioenc_kiss::Fsm;

/// Builds the encoded FSM as a multiple-output PLA: inputs are the primary
/// inputs followed by the state bits; outputs are the next-state bits
/// followed by the primary outputs. Unused state codes become global
/// don't-care conditions, as in the standard state-assignment flow.
///
/// # Panics
///
/// Panics if the encoding's symbol count differs from the FSM's state
/// count, or the code width exceeds 24 bits (don't-care enumeration).
pub fn encoded_pla(fsm: &Fsm, enc: &Encoding) -> Pla {
    assert_eq!(
        enc.num_symbols(),
        fsm.num_states(),
        "encoding/state count mismatch"
    );
    let width = enc.width();
    assert!(
        width <= 24,
        "state codes wider than 24 bits are unsupported"
    );
    let ni = fsm.num_inputs();
    let no = fsm.num_outputs();
    let mut pla = Pla::new(ni + width, width + no);
    for t in fsm.transitions() {
        let mut input: Vec<Option<bool>> = t.input.clone();
        let from_code = enc.code(t.from);
        for b in 0..width {
            input.push(Some(from_code >> b & 1 == 1));
        }
        let to_code = enc.code(t.to);
        let mut outputs: Vec<usize> = (0..width).filter(|&b| to_code >> b & 1 == 1).collect();
        for (j, o) in t.output.iter().enumerate() {
            if *o == Some(true) {
                outputs.push(width + j);
            }
        }
        if !outputs.is_empty() {
            pla.add_on(&input, &outputs);
        }
        let dc: Vec<usize> = t
            .output
            .iter()
            .enumerate()
            .filter(|(_, o)| o.is_none())
            .map(|(j, _)| width + j)
            .collect();
        if !dc.is_empty() {
            pla.add_dc(&input, &dc);
        }
    }
    // Unused codes: everything is don't care there.
    if width <= 16 {
        let used: Vec<u64> = enc.codes().to_vec();
        let all: Vec<usize> = (0..width + no).collect();
        for code in 0u64..(1 << width) {
            if used.contains(&code) {
                continue;
            }
            let mut input: Vec<Option<bool>> = vec![None; ni];
            for b in 0..width {
                input.push(Some(code >> b & 1 == 1));
            }
            pla.add_dc(&input, &all);
        }
    }
    pla
}

/// Minimizes the encoded FSM and returns `(product_terms, input_literals)`
/// — the PLA cost the paper's two-level comparisons use.
///
/// # Panics
///
/// As for [`encoded_pla`].
pub fn measure_encoded(fsm: &Fsm, enc: &Encoding) -> (usize, usize) {
    encoded_pla(fsm, enc).minimize_summary()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ioenc_kiss::{generate, BenchmarkSpec, Transition};

    fn two_state_toggle() -> Fsm {
        let mut fsm = Fsm::new("toggle", 1, 1, vec!["a".into(), "b".into()]);
        fsm.add_transition(Transition {
            input: vec![Some(true)],
            from: 0,
            to: 1,
            output: vec![Some(true)],
        });
        fsm.add_transition(Transition {
            input: vec![Some(false)],
            from: 0,
            to: 0,
            output: vec![Some(false)],
        });
        fsm.add_transition(Transition {
            input: vec![None],
            from: 1,
            to: 0,
            output: vec![Some(false)],
        });
        fsm
    }

    #[test]
    fn toggle_measures_small() {
        let fsm = two_state_toggle();
        let enc = Encoding::new(1, vec![0, 1]);
        let (cubes, lits) = measure_encoded(&fsm, &enc);
        // Next-state = input & !state; output likewise: 1 cube suffices
        // after sharing (exact value depends on minimization; sanity-bound
        // it).
        assert!((1..=3).contains(&cubes), "cubes = {cubes}");
        assert!(lits >= 1, "lits = {lits}");
    }

    #[test]
    fn better_encodings_do_not_increase_verified_costs_arbitrarily() {
        // Measurement is deterministic and stable per encoding.
        let fsm = generate(&BenchmarkSpec::sized("m", 8));
        let enc = Encoding::new(3, (0..8u64).collect());
        let a = measure_encoded(&fsm, &enc);
        let b = measure_encoded(&fsm, &enc);
        assert_eq!(a, b);
    }

    #[test]
    fn different_encodings_yield_different_costs() {
        let fsm = generate(&BenchmarkSpec::sized("d", 8));
        let id = Encoding::new(3, (0..8u64).collect());
        let gray: Vec<u64> = (0..8u64).map(|i| i ^ (i >> 1)).collect();
        let a = measure_encoded(&fsm, &id);
        let b = measure_encoded(&fsm, &Encoding::new(3, gray));
        // Not a strict inequality in general, but the costs are meaningful
        // positive numbers.
        assert!(a.0 > 0 && b.0 > 0);
    }

    #[test]
    #[should_panic(expected = "encoding/state count mismatch")]
    fn mismatched_encoding_panics() {
        let fsm = two_state_toggle();
        let enc = Encoding::new(2, vec![0, 1, 2]);
        encoded_pla(&fsm, &enc);
    }
}
