//! Output (dominance and disjunctive) constraint generation.

use crate::input_constraints;
use ioenc_core::{check_feasible, ConstraintSet};
use ioenc_kiss::Fsm;

/// How many output constraints to derive (the paper's Table 1 machines
/// range from nine dominances and no disjunctives for `planet` to rich
/// mixed sets).
#[derive(Debug, Clone)]
pub struct OutputProfile {
    /// Maximum dominance constraints to keep.
    pub max_dominance: usize,
    /// Maximum disjunctive constraints to keep.
    pub max_disjunctive: usize,
}

impl Default for OutputProfile {
    fn default() -> Self {
        OutputProfile {
            max_dominance: 12,
            max_disjunctive: 3,
        }
    }
}

/// Generates a feasible mixed constraint set: the face constraints of
/// [`input_constraints`] plus dominance and disjunctive output constraints
/// derived from the transition structure, standing in for the extended
/// DeMicheli procedure the paper uses for Table 1 (see DESIGN.md).
///
/// Dominance candidates `a > b` are scored by shared predecessors and
/// output agreement — exactly the situations where letting `code(a)` cover
/// `code(b)` enlarges the don't-care set of the next-state logic.
/// Disjunctive candidates `p = a ∨ b` are scored by how completely `p`'s
/// predecessors also reach `a` and `b`. Candidates are admitted greedily in
/// score order, each guarded by the polynomial feasibility check of
/// Theorem 6.1 so the emitted set is always satisfiable (as the paper's
/// encoded benchmarks are).
pub fn mixed_constraints(fsm: &Fsm, profile: &OutputProfile) -> ConstraintSet {
    let mut cs = input_constraints(fsm);
    let ns = fsm.num_states();
    if ns < 3 {
        return cs;
    }

    // Predecessor sets and output signatures.
    let mut preds: Vec<Vec<usize>> = vec![Vec::new(); ns];
    for t in fsm.transitions() {
        if !preds[t.to].contains(&t.from) {
            preds[t.to].push(t.from);
        }
    }
    let out_ones = |s: usize| -> u64 {
        let mut sig = 0u64;
        for t in fsm.transitions_into(s) {
            for (j, o) in t.output.iter().enumerate() {
                if *o == Some(true) && j < 64 {
                    sig |= 1 << j;
                }
            }
        }
        sig
    };

    // Dominance candidates.
    let mut dom: Vec<(usize, usize, usize)> = Vec::new(); // (score, a, b)
    for a in 0..ns {
        for b in 0..ns {
            if a == b {
                continue;
            }
            let shared = preds[a].iter().filter(|p| preds[b].contains(p)).count();
            if shared == 0 {
                continue;
            }
            let sig_a = out_ones(a);
            let sig_b = out_ones(b);
            // a > b pays off when a's asserted outputs cover b's.
            let covers = (sig_a | sig_b) == sig_a;
            let score = shared * 2 + usize::from(covers) * 3 + preds[a].len();
            dom.push((score, a, b));
        }
    }
    dom.sort_by_key(|&(score, a, b)| (std::cmp::Reverse(score), a, b));
    let mut taken = 0;
    for (attempts, &(_, a, b)) in dom.iter().enumerate() {
        if taken >= profile.max_dominance || attempts >= 4 * profile.max_dominance + 16 {
            break;
        }
        // Skip inverses of already-taken pairs (a cycle forces equal codes).
        if cs.dominances().contains(&(b, a)) || cs.dominances().contains(&(a, b)) {
            continue;
        }
        cs.add_dominance(a, b);
        if check_feasible(&cs).is_feasible() {
            taken += 1;
        } else {
            let mut rebuilt = cs.clone();
            let dominances = cs.dominances().to_vec();
            rebuilt = rebuild_without_last_dominance(&rebuilt, &dominances);
            cs = rebuilt;
        }
    }

    // Disjunctive candidates p = a ∨ b.
    let mut disj: Vec<(usize, usize, usize, usize)> = Vec::new();
    for p in 0..ns {
        if preds[p].len() < 2 {
            continue;
        }
        for a in 0..ns {
            for b in (a + 1)..ns {
                if a == p || b == p {
                    continue;
                }
                let joined = preds[p]
                    .iter()
                    .filter(|q| preds[a].contains(q) || preds[b].contains(q))
                    .count();
                if joined < 2 {
                    continue;
                }
                disj.push((joined, p, a, b));
            }
        }
    }
    disj.sort_by_key(|&(score, p, a, b)| (std::cmp::Reverse(score), p, a, b));
    let mut taken = 0;
    let mut used_parents: Vec<usize> = Vec::new();
    for (attempts, &(_, p, a, b)) in disj.iter().enumerate() {
        if taken >= profile.max_disjunctive || attempts >= 6 * profile.max_disjunctive + 10 {
            break;
        }
        if used_parents.contains(&p) {
            continue;
        }
        let mut trial = cs.clone();
        trial.add_disjunctive(p, [a, b]);
        if check_feasible(&trial).is_feasible() {
            cs = trial;
            used_parents.push(p);
            taken += 1;
        }
    }
    debug_assert!(check_feasible(&cs).is_feasible());
    cs
}

/// Rebuilds the constraint set without the most recent dominance (the
/// builder API is append-only; reconstruct instead of exposing removal).
fn rebuild_without_last_dominance(
    cs: &ConstraintSet,
    dominances: &[(usize, usize)],
) -> ConstraintSet {
    let names: Vec<String> = (0..cs.num_symbols())
        .map(|s| cs.name(s).to_string())
        .collect();
    let mut out = ConstraintSet::with_names(names);
    for f in cs.faces() {
        out.add_face_with_dc(f.members.iter(), f.dont_cares.iter());
    }
    for &(a, b) in &dominances[..dominances.len().saturating_sub(1)] {
        out.add_dominance(a, b);
    }
    for (p, children) in cs.disjunctives() {
        out.add_disjunctive(p, children.iter().copied());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ioenc_kiss::{generate, BenchmarkSpec};

    #[test]
    fn mixed_sets_are_feasible() {
        for states in [8, 12, 16] {
            let fsm = generate(&BenchmarkSpec::sized("mix", states));
            let cs = mixed_constraints(&fsm, &OutputProfile::default());
            assert!(
                check_feasible(&cs).is_feasible(),
                "{states}-state machine produced an infeasible set"
            );
        }
    }

    #[test]
    fn profile_caps_are_respected() {
        let fsm = generate(&BenchmarkSpec::sized("cap", 14));
        let profile = OutputProfile {
            max_dominance: 4,
            max_disjunctive: 1,
        };
        let cs = mixed_constraints(&fsm, &profile);
        assert!(cs.dominances().len() <= 4);
        assert!(cs.disjunctives().count() <= 1);
    }

    #[test]
    fn zero_profile_gives_input_only() {
        let fsm = generate(&BenchmarkSpec::sized("io", 10));
        let profile = OutputProfile {
            max_dominance: 0,
            max_disjunctive: 0,
        };
        let cs = mixed_constraints(&fsm, &profile);
        assert!(!cs.has_output_constraints());
        assert_eq!(cs.faces().len(), input_constraints(&fsm).faces().len());
    }

    #[test]
    fn output_constraints_are_generated_when_allowed() {
        let fsm = generate(&BenchmarkSpec {
            cluster_size: 3,
            shared_behaviors: 2,
            ..BenchmarkSpec::sized("rich", 12)
        });
        let cs = mixed_constraints(&fsm, &OutputProfile::default());
        assert!(
            cs.has_output_constraints(),
            "expected some output constraints; got:\n{cs}"
        );
    }

    #[test]
    fn deterministic() {
        let fsm = generate(&BenchmarkSpec::sized("det", 10));
        let a = mixed_constraints(&fsm, &OutputProfile::default()).to_string();
        let b = mixed_constraints(&fsm, &OutputProfile::default()).to_string();
        assert_eq!(a, b);
    }
}
