//! Input (face) constraint generation by multiple-valued minimization.

use ioenc_core::ConstraintSet;
use ioenc_cube::{Cover, Cube, VarSpec};
use ioenc_espresso::minimize;
use ioenc_kiss::Fsm;
use std::collections::BTreeSet;

/// Generates the face-embedding constraints of an FSM by minimizing its
/// symbolic transition table as a multiple-valued function (the ESPRESSO-MV
/// step of the paper's flow).
///
/// The table is modelled with the inputs as binary variables, the present
/// state as one `n`-valued variable and a single output variable whose
/// parts are the one-hot next state followed by the primary outputs. After
/// minimization, every cube whose present-state literal groups two or more
/// (but not all) states yields one face constraint on those states: an
/// encoding placing the group on a private face lets the encoded cover
/// express the cube with a single product term (Section 1).
///
/// Unspecified primary outputs (`-`) become don't-care conditions; the
/// machines produced by [`ioenc_kiss::generate`] are completely specified
/// and deterministic, so the off-set is written down directly instead of
/// being computed by complementation.
///
/// # Panics
///
/// Panics if the FSM has no transitions for some reachable minimization
/// corner case (the `ioenc-kiss` generator never produces such machines).
pub fn input_constraints(fsm: &Fsm) -> ConstraintSet {
    let ns = fsm.num_states();
    let names: Vec<String> = fsm.state_names().to_vec();
    let mut cs = ConstraintSet::with_names(names);
    if ns < 3 {
        // With fewer than 3 states every non-trivial group is "all states".
        return cs;
    }
    let minimized = minimized_cover(fsm);
    let spec = minimized.spec().clone();
    let ps_var = fsm.num_inputs();
    let mut groups: BTreeSet<Vec<usize>> = BTreeSet::new();
    for cube in minimized.cubes() {
        let group: Vec<usize> = (0..ns).filter(|&s| cube.part(&spec, ps_var, s)).collect();
        if group.len() >= 2 && group.len() < ns {
            groups.insert(group);
        }
    }
    for g in groups {
        cs.add_face(g);
    }
    cs
}

/// Like [`input_constraints`] but with *encoding don't cares*
/// (Section 8.1): for each minimized cube, the states whose on-set
/// transitions actually contribute minterms form the *reduced* implicant
/// and become the face members; the remaining states of the cube's
/// (expanded) present-state literal are free to join the face or not, and
/// are emitted as the constraint's don't cares. This mirrors how MIS-MV
/// derives don't cares from the gap between reduced and expanded
/// implicants.
pub fn input_constraints_with_dc(fsm: &Fsm) -> ConstraintSet {
    let ns = fsm.num_states();
    let names: Vec<String> = fsm.state_names().to_vec();
    let mut cs = ConstraintSet::with_names(names);
    if ns < 3 {
        return cs;
    }
    let (spec, on, _, _) = build_covers(fsm);
    let minimized = minimized_cover(fsm);
    let ps_var = fsm.num_inputs();
    let mut groups: BTreeSet<(Vec<usize>, Vec<usize>)> = BTreeSet::new();
    for cube in minimized.cubes() {
        let expanded: Vec<usize> = (0..ns).filter(|&s| cube.part(&spec, ps_var, s)).collect();
        if expanded.len() < 2 || expanded.len() == ns {
            continue;
        }
        // Reduced implicant: the states that contribute on-set minterms.
        let required: Vec<usize> = expanded
            .iter()
            .copied()
            .filter(|&s| {
                on.cubes()
                    .iter()
                    .any(|t| t.part(&spec, ps_var, s) && t.intersection(&spec, cube).is_some())
            })
            .collect();
        if required.len() >= 2 {
            let dcs: Vec<usize> = expanded
                .iter()
                .copied()
                .filter(|s| !required.contains(s))
                .collect();
            groups.insert((required, dcs));
        } else {
            groups.insert((expanded, Vec::new()));
        }
    }
    for (members, dcs) in groups {
        cs.add_face_with_dc(members, dcs);
    }
    cs
}

/// The multiple-valued minimized cover of the FSM's transition table.
pub(crate) fn minimized_cover(fsm: &Fsm) -> Cover {
    let (spec, on, dc, off) = build_covers(fsm);
    let _ = spec;
    minimize(&on, &dc, Some(&off))
}

/// Builds (spec, on, dc, off) for the symbolic table.
pub(crate) fn build_covers(fsm: &Fsm) -> (VarSpec, Cover, Cover, Cover) {
    let ni = fsm.num_inputs();
    let ns = fsm.num_states();
    let no = fsm.num_outputs();
    let mut parts = vec![2; ni];
    parts.push(ns.max(2));
    parts.push((ns + no).max(2));
    let spec = VarSpec::new(parts);
    let ps_var = ni;
    let out_var = ni + 1;

    let mut on = Cover::empty(spec.clone());
    let mut dc = Cover::empty(spec.clone());
    let mut off = Cover::empty(spec.clone());
    for t in fsm.transitions() {
        let mut base = Cube::universe(&spec);
        for (v, lit) in t.input.iter().enumerate() {
            match lit {
                Some(false) => base.clear_part(&spec, v, 1),
                Some(true) => base.clear_part(&spec, v, 0),
                None => {}
            }
        }
        for s in 0..spec.parts(ps_var) {
            if s != t.from {
                base.clear_part(&spec, ps_var, s);
            }
        }
        // ON: next state plus asserted outputs.
        let mut on_cube = base.clone();
        for p in 0..spec.parts(out_var) {
            on_cube.clear_part(&spec, out_var, p);
        }
        on_cube.set_part(&spec, out_var, t.to);
        for (j, o) in t.output.iter().enumerate() {
            if *o == Some(true) {
                on_cube.set_part(&spec, out_var, ns + j);
            }
        }
        on.push(on_cube);
        // DC: unspecified outputs.
        let dc_parts: Vec<usize> = t
            .output
            .iter()
            .enumerate()
            .filter(|(_, o)| o.is_none())
            .map(|(j, _)| ns + j)
            .collect();
        if !dc_parts.is_empty() {
            let mut dc_cube = base.clone();
            for p in 0..spec.parts(out_var) {
                dc_cube.clear_part(&spec, out_var, p);
            }
            for p in dc_parts {
                dc_cube.set_part(&spec, out_var, p);
            }
            dc.push(dc_cube);
        }
        // OFF: the other next states plus outputs at 0 (plus any padding
        // parts of a widened output variable).
        let mut off_cube = base;
        for p in 0..spec.parts(out_var) {
            off_cube.clear_part(&spec, out_var, p);
        }
        let mut any = false;
        for s in 0..ns {
            if s != t.to {
                off_cube.set_part(&spec, out_var, s);
                any = true;
            }
        }
        for (j, o) in t.output.iter().enumerate() {
            if *o == Some(false) {
                off_cube.set_part(&spec, out_var, ns + j);
                any = true;
            }
        }
        if any {
            off.push(off_cube);
        }
    }
    (spec, on, dc, off)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ioenc_kiss::{generate, BenchmarkSpec, Transition};

    /// A machine where states a and b behave identically on input 0 (both
    /// go to c with the same output) and differ on input 1.
    fn shared_behavior_fsm() -> Fsm {
        let mut fsm = Fsm::new(
            "shared",
            1,
            1,
            vec!["a".into(), "b".into(), "c".into(), "d".into()],
        );
        let t = |input: bool, from: usize, to: usize, out: bool| Transition {
            input: vec![Some(input)],
            from,
            to,
            output: vec![Some(out)],
        };
        fsm.add_transition(t(false, 0, 2, true));
        fsm.add_transition(t(false, 1, 2, true));
        fsm.add_transition(t(true, 0, 3, false));
        fsm.add_transition(t(true, 1, 0, false));
        fsm.add_transition(t(false, 2, 2, false));
        fsm.add_transition(t(true, 2, 3, false));
        fsm.add_transition(t(false, 3, 0, false));
        fsm.add_transition(t(true, 3, 1, true));
        fsm
    }

    #[test]
    fn shared_behavior_becomes_a_face_constraint() {
        let fsm = shared_behavior_fsm();
        let cs = input_constraints(&fsm);
        // The minimizer merges the two transitions (0, a → c, 1) and
        // (0, b → c, 1) into one cube with present-state literal {a, b}.
        let has_ab = cs.faces().iter().any(|f| {
            let g: Vec<usize> = f.members.iter().collect();
            g == vec![0, 1]
        });
        assert!(has_ab, "expected face (a, b); got:\n{cs}");
    }

    #[test]
    fn constraints_reference_valid_symbols() {
        let fsm = generate(&BenchmarkSpec::sized("t", 12));
        let cs = input_constraints(&fsm);
        assert_eq!(cs.num_symbols(), 12);
        for f in cs.faces() {
            assert!(f.members.count() >= 2);
            assert!(f.members.count() < 12);
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let fsm = generate(&BenchmarkSpec::sized("t", 10));
        let a = input_constraints(&fsm).to_string();
        let b = input_constraints(&fsm).to_string();
        assert_eq!(a, b);
    }

    #[test]
    fn clustered_machines_produce_faces() {
        let fsm = generate(&BenchmarkSpec {
            cluster_size: 3,
            shared_behaviors: 2,
            ..BenchmarkSpec::sized("clustered", 12)
        });
        let cs = input_constraints(&fsm);
        assert!(
            !cs.faces().is_empty(),
            "clustered machines must yield face constraints"
        );
    }

    #[test]
    fn minimized_cover_is_consistent_with_on_off() {
        // The minimized cover must cover ON and avoid OFF; spot-check by
        // containment (exhaustive enumeration is too big).
        let fsm = shared_behavior_fsm();
        let (spec, on, dc, off) = build_covers(&fsm);
        let m = minimized_cover(&fsm);
        let m_plus_dc = m.union(&dc);
        for c in on.cubes() {
            assert!(
                m_plus_dc.contains_cube(c),
                "lost on-cube {}",
                c.display(&spec)
            );
        }
        for c in m.cubes() {
            for o in off.cubes() {
                assert!(
                    c.distance(&spec, o) > 0,
                    "minimized cube {} intersects off-set",
                    c.display(&spec)
                );
            }
        }
    }

    #[test]
    fn dc_variant_produces_valid_constraints() {
        let fsm = generate(&BenchmarkSpec::sized("dc", 12));
        let cs = input_constraints_with_dc(&fsm);
        for f in cs.faces() {
            assert!(f.members.count() >= 2);
            assert!(f.members.is_disjoint(&f.dont_cares));
        }
        // Deterministic.
        assert_eq!(
            input_constraints_with_dc(&fsm).to_string(),
            input_constraints_with_dc(&fsm).to_string()
        );
    }

    #[test]
    fn tiny_machines_have_no_constraints() {
        let mut fsm = Fsm::new("tiny", 1, 1, vec!["a".into(), "b".into()]);
        fsm.add_transition(Transition {
            input: vec![None],
            from: 0,
            to: 1,
            output: vec![Some(true)],
        });
        fsm.add_transition(Transition {
            input: vec![None],
            from: 1,
            to: 0,
            output: vec![Some(false)],
        });
        let cs = input_constraints(&fsm);
        assert!(cs.is_empty());
    }
}
