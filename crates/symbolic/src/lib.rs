#![warn(missing_docs)]
#![forbid(unsafe_code)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

//! Symbolic minimization front end: turns FSMs into encoding constraint
//! sets and measures encoded implementations.
//!
//! The paper's evaluation pipeline is: symbolic (multiple-valued)
//! minimization of an FSM's transition table → a set of input (face) and
//! output (dominance/disjunctive) constraints → constraint satisfaction by
//! the core framework → an encoded two-level implementation. This crate
//! provides the two ends of that pipeline:
//!
//! * [`input_constraints`] — face constraints read off the multiple-valued
//!   minimized cover, the role played by ESPRESSO-MV in Table 2;
//! * [`mixed_constraints`] — face constraints plus structurally derived
//!   dominance and disjunctive constraints, feasibility-filtered with the
//!   Theorem 6.1 check, standing in for the "extension of [DeMicheli 1986]
//!   that also generates good disjunctive effects" used for Table 1;
//! * [`encoded_pla`] / [`measure_encoded`] — the encoded FSM as a
//!   multiple-output PLA and its minimized size.
//!
//! # Examples
//!
//! ```
//! use ioenc_kiss::{BenchmarkSpec, generate};
//! use ioenc_symbolic::input_constraints;
//!
//! let fsm = generate(&BenchmarkSpec::sized("demo", 9));
//! let cs = input_constraints(&fsm);
//! assert_eq!(cs.num_symbols(), 9);
//! ```

mod assign;
mod input;
mod measure;
mod output;

pub use assign::{assign_states, Assignment, Strategy};
pub use input::{input_constraints, input_constraints_with_dc};
pub use measure::{encoded_pla, measure_encoded};
pub use output::{mixed_constraints, OutputProfile};
