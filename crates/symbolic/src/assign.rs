//! One-call state assignment: the paper's complete flow from FSM to codes.

use crate::{input_constraints, measure_encoded, mixed_constraints, OutputProfile};
use ioenc_core::{
    exact_encode_report, heuristic_encode_report, ConstraintSet, CostFunction, EncodeError,
    Encoding, ExactOptions, HeuristicOptions,
};
use ioenc_kiss::Fsm;

/// How to assign codes.
#[derive(Debug, Clone)]
pub enum Strategy {
    /// Exact minimum-length satisfaction of mixed input + output
    /// constraints (Table 1's algorithm). Falls back with an error when
    /// prime generation explodes.
    ExactMixed(OutputProfile),
    /// Minimum-length heuristic on the input constraints (Table 2's ENC).
    HeuristicInput(CostFunction),
    /// Fixed-length heuristic on the input constraints.
    HeuristicFixed(usize, CostFunction),
}

/// The result of [`assign_states`].
#[derive(Debug, Clone)]
pub struct Assignment {
    /// The codes, indexed by state.
    pub encoding: Encoding,
    /// The constraint set that drove the assignment.
    pub constraints: ConstraintSet,
    /// Face constraints satisfied / total.
    pub satisfied: (usize, usize),
    /// `(product terms, input literals)` of the minimized encoded FSM.
    pub pla_cost: (usize, usize),
}

/// Runs the full state-assignment flow: symbolic minimization → constraint
/// generation → encoding → measurement.
///
/// # Errors
///
/// Propagates encoder errors ([`EncodeError::Budget`],
/// [`EncodeError::Infeasible`], …).
///
/// # Examples
///
/// ```
/// use ioenc_kiss::{generate, BenchmarkSpec};
/// use ioenc_symbolic::{assign_states, Strategy};
/// use ioenc_core::CostFunction;
///
/// let fsm = generate(&BenchmarkSpec::sized("demo", 8));
/// let a = assign_states(&fsm, &Strategy::HeuristicInput(CostFunction::Cubes))?;
/// assert_eq!(a.encoding.num_symbols(), 8);
/// assert!(a.pla_cost.0 > 0);
/// # Ok::<(), ioenc_core::EncodeError>(())
/// ```
pub fn assign_states(fsm: &Fsm, strategy: &Strategy) -> Result<Assignment, EncodeError> {
    let (constraints, encoding) = match strategy {
        Strategy::ExactMixed(profile) => {
            let cs = mixed_constraints(fsm, profile);
            let report = exact_encode_report(&cs, &ExactOptions::default())?;
            (cs, report.encoding)
        }
        Strategy::HeuristicInput(cost) => {
            let cs = input_constraints(fsm);
            let report = heuristic_encode_report(&cs, &HeuristicOptions::new().with_cost(*cost))?;
            (cs, report.encoding)
        }
        Strategy::HeuristicFixed(bits, cost) => {
            let cs = input_constraints(fsm);
            let report = heuristic_encode_report(
                &cs,
                &HeuristicOptions::new()
                    .with_code_length(*bits)
                    .with_cost(*cost),
            )?;
            (cs, report.encoding)
        }
    };
    let total = constraints.faces().len();
    let violated = ioenc_core::count_violations(&constraints, &encoding).min(total);
    let pla_cost = measure_encoded(fsm, &encoding);
    Ok(Assignment {
        satisfied: (total - violated, total),
        pla_cost,
        encoding,
        constraints,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ioenc_kiss::{generate, BenchmarkSpec};

    #[test]
    fn heuristic_input_assignment_flows() {
        let fsm = generate(&BenchmarkSpec::sized("a", 10));
        let a = assign_states(&fsm, &Strategy::HeuristicInput(CostFunction::Violations)).unwrap();
        assert_eq!(a.encoding.num_symbols(), 10);
        assert_eq!(a.encoding.width(), 4);
        assert!(a.satisfied.0 <= a.satisfied.1);
        assert!(a.pla_cost.0 > 0);
    }

    #[test]
    fn exact_mixed_assignment_verifies() {
        let fsm = generate(&BenchmarkSpec::sized("b", 8));
        match assign_states(
            &fsm,
            &Strategy::ExactMixed(OutputProfile {
                max_dominance: 8,
                max_disjunctive: 2,
            }),
        ) {
            Ok(a) => {
                assert!(a.encoding.verify(&a.constraints).is_empty());
                assert_eq!(a.satisfied.0, a.satisfied.1);
            }
            Err(EncodeError::Budget { .. }) => {}
            Err(e) => panic!("unexpected: {e}"),
        }
    }

    #[test]
    fn fixed_length_assignment_uses_requested_width() {
        let fsm = generate(&BenchmarkSpec::sized("c", 6));
        let a =
            assign_states(&fsm, &Strategy::HeuristicFixed(4, CostFunction::Violations)).unwrap();
        assert_eq!(a.encoding.width(), 4);
    }
}
