//! The `irredundant` step: remove cubes covered by the rest of the cover
//! plus the don't-care set.

use ioenc_cube::Cover;

/// Produces an irredundant subset of `f`: no remaining cube is covered by
/// the union of the others and `dc`.
///
/// Cubes are examined largest-first so that big, expensive cubes get the
/// first chance to be declared redundant; the sequential scheme guarantees
/// the final cover is irredundant (removal order may affect *which*
/// irredundant cover is produced, as in ESPRESSO's heuristic).
pub fn irredundant(f: &Cover, dc: &Cover) -> Cover {
    let spec = f.spec().clone();
    let mut cubes = f.cubes().to_vec();
    // Largest (most general) cubes first.
    cubes.sort_by_key(|c| std::cmp::Reverse(c.bits().count()));
    let mut keep = vec![true; cubes.len()];
    for i in 0..cubes.len() {
        // Build the cover of everything else currently kept, plus dc.
        let mut rest = Cover::empty(spec.clone());
        for (j, c) in cubes.iter().enumerate() {
            if j != i && keep[j] {
                rest.push(c.clone());
            }
        }
        let rest = rest.union(dc);
        if rest.contains_cube(&cubes[i]) {
            keep[i] = false;
        }
    }
    let kept: Vec<_> = cubes
        .into_iter()
        .zip(keep)
        .filter_map(|(c, k)| k.then_some(c))
        .collect();
    Cover::from_cubes(spec, kept)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ioenc_cube::VarSpec;

    #[test]
    fn removes_consensus_cube() {
        let spec = VarSpec::binary(2);
        // x0 + x0' covers the middle cube x1.
        let f = Cover::parse(&spec, "1 -\n0 -\n- 1").unwrap();
        let r = irredundant(&f, &Cover::empty(spec.clone()));
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn keeps_needed_cubes() {
        let spec = VarSpec::binary(2);
        let f = Cover::parse(&spec, "1 -\n- 1").unwrap();
        let r = irredundant(&f, &Cover::empty(spec.clone()));
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn dc_set_makes_cube_redundant() {
        let spec = VarSpec::binary(2);
        let f = Cover::parse(&spec, "1 1\n0 0").unwrap();
        let dc = Cover::parse(&spec, "1 -").unwrap();
        let r = irredundant(&f, &dc);
        // 1 1 is inside dc, so only 0 0 remains.
        assert_eq!(r.len(), 1);
        assert_eq!(r.cubes()[0].display(&spec), "10 10");
    }

    #[test]
    fn result_is_irredundant() {
        let spec = VarSpec::binary(3);
        let f = Cover::parse(&spec, "1 1 -\n1 - 1\n- 1 1\n1 1 1").unwrap();
        let dc = Cover::empty(spec.clone());
        let r = irredundant(&f, &dc);
        // Check no cube of the result is covered by the others.
        for i in 0..r.len() {
            let mut rest = Cover::empty(spec.clone());
            for (j, c) in r.cubes().iter().enumerate() {
                if j != i {
                    rest.push(c.clone());
                }
            }
            assert!(!rest.contains_cube(&r.cubes()[i]));
        }
        // And semantics are preserved.
        for mt in Cover::enumerate_minterms(&spec) {
            assert_eq!(f.contains_minterm(&mt), r.contains_minterm(&mt));
        }
    }
}
