//! Berkeley `.pla` text format for multiple-output PLAs (the espresso
//! interchange format): `.i/.o/.p` directives and `inputs outputs` cube
//! lines with `1`/`0`/`-` literals.

use crate::Pla;
use ioenc_cube::{Cover, Cube, VarSpec};

/// Renders a minimized multiple-output cover (PLA shape: binary inputs then
/// one output variable) in `.pla` text.
///
/// Output columns print `1` for an asserted output and `0` otherwise (type
/// `f` semantics, espresso's default).
///
/// # Panics
///
/// Panics if `inputs` exceeds the spec's variable count.
pub fn cover_to_pla_text(cover: &Cover, inputs: usize) -> String {
    let spec = cover.spec();
    assert!(
        inputs < spec.num_vars(),
        "PLA shape needs an output variable"
    );
    let outputs = spec.parts(inputs);
    let mut out = String::new();
    out.push_str(&format!(".i {inputs}\n.o {outputs}\n.p {}\n", cover.len()));
    for cube in cover.cubes() {
        for v in 0..inputs {
            let zero = cube.part(spec, v, 0);
            let one = cube.part(spec, v, 1);
            out.push(match (zero, one) {
                (true, true) => '-',
                (false, true) => '1',
                (true, false) => '0',
                (false, false) => '~', // void literal; never in valid covers
            });
        }
        out.push(' ');
        for p in 0..outputs {
            out.push(if cube.part(spec, inputs, p) { '1' } else { '0' });
        }
        out.push('\n');
    }
    out.push_str(".e\n");
    out
}

/// Parses a `.pla` text into a [`Pla`] (on-set from `1` outputs, don't
/// cares from `-`/`2` outputs; `0` outputs contribute nothing, per type-`f`
/// semantics).
///
/// # Errors
///
/// Returns a message naming the offending line for malformed input.
pub fn parse_pla_text(text: &str) -> Result<Pla, String> {
    let mut num_inputs: Option<usize> = None;
    let mut num_outputs: Option<usize> = None;
    let mut rows: Vec<(String, String)> = Vec::new();
    for (ln, raw) in text.lines().enumerate() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let err = |m: &str| format!("line {}: {m}", ln + 1);
        if let Some(rest) = line.strip_prefix('.') {
            let mut it = rest.split_whitespace();
            match it.next().unwrap_or("") {
                "i" => {
                    num_inputs = Some(
                        it.next()
                            .and_then(|v| v.parse().ok())
                            .ok_or_else(|| err("bad .i"))?,
                    )
                }
                "o" => {
                    num_outputs = Some(
                        it.next()
                            .and_then(|v| v.parse().ok())
                            .ok_or_else(|| err("bad .o"))?,
                    )
                }
                "p" | "e" | "end" | "type" | "ilb" | "ob" => {}
                other => return Err(err(&format!("unknown directive '.{other}'"))),
            }
            continue;
        }
        let fields: Vec<&str> = line.split_whitespace().collect();
        if fields.len() != 2 {
            return Err(err("expected 'inputs outputs'"));
        }
        rows.push((fields[0].to_string(), fields[1].to_string()));
    }
    let ni = num_inputs.ok_or("missing .i directive")?;
    let no = num_outputs.ok_or("missing .o directive")?;
    let mut pla = Pla::new(ni, no);
    for (i, o) in &rows {
        if i.len() != ni {
            return Err(format!(
                "input cube '{i}' has width {} (want {ni})",
                i.len()
            ));
        }
        if o.len() != no {
            return Err(format!(
                "output cube '{o}' has width {} (want {no})",
                o.len()
            ));
        }
        let input: Vec<Option<bool>> = i
            .chars()
            .map(|c| match c {
                '0' => Ok(Some(false)),
                '1' => Ok(Some(true)),
                '-' | '~' | '2' => Ok(None),
                c => Err(format!("bad input character '{c}'")),
            })
            .collect::<Result<_, _>>()?;
        let mut on_outputs = Vec::new();
        let mut dc_outputs = Vec::new();
        for (j, c) in o.chars().enumerate() {
            match c {
                '1' | '4' => on_outputs.push(j),
                '-' | '~' | '2' => dc_outputs.push(j),
                '0' | '3' => {}
                c => return Err(format!("bad output character '{c}'")),
            }
        }
        if !on_outputs.is_empty() {
            pla.add_on(&input, &on_outputs);
        }
        if !dc_outputs.is_empty() {
            pla.add_dc(&input, &dc_outputs);
        }
    }
    Ok(pla)
}

/// Builds a cube in PLA shape from literal strings (test helper and
/// building block for tools).
///
/// # Errors
///
/// Returns a message on malformed literals.
pub fn pla_cube(spec: &VarSpec, inputs: &str, outputs: &str) -> Result<Cube, String> {
    Cube::parse(
        spec,
        &format!(
            "{} {}",
            inputs
                .chars()
                .map(|c| c.to_string())
                .collect::<Vec<_>>()
                .join(" "),
            outputs
        ),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::minimize;
    use ioenc_cube::Cover;

    #[test]
    fn round_trip_through_pla_text() {
        let mut pla = Pla::new(3, 2);
        pla.add_on(&[Some(true), Some(false), None], &[0]);
        pla.add_on(&[None, Some(true), Some(true)], &[0, 1]);
        let m = pla.minimize();
        let text = cover_to_pla_text(&m, 3);
        assert!(text.starts_with(".i 3\n.o 2\n"));
        let again = parse_pla_text(&text).unwrap();
        let m2 = again.minimize();
        // Same function: compare minterm by minterm over the PLA domain.
        let spec = m.spec();
        for mt in Cover::enumerate_minterms(spec) {
            assert_eq!(m.contains_minterm(&mt), m2.contains_minterm(&mt));
        }
    }

    #[test]
    fn parses_dont_care_outputs_as_dc_set() {
        let text = ".i 2\n.o 2\n10 1-\n.e\n";
        let pla = parse_pla_text(text).unwrap();
        assert_eq!(pla.on_set().len(), 1);
        assert_eq!(pla.dc_set().len(), 1);
    }

    #[test]
    fn parse_errors_are_reported() {
        assert!(parse_pla_text(".o 1\n.e\n").is_err());
        assert!(parse_pla_text(".i 2\n.o 1\n1 1\n.e\n").is_err());
        assert!(parse_pla_text(".i 1\n.o 1\n1 x\n.e\n").is_err());
        assert!(parse_pla_text(".i 1\n.o 1\n.q\n.e\n").is_err());
        assert!(parse_pla_text(".i 1\n.o 1\n1 1 1\n.e\n").is_err());
    }

    #[test]
    fn minimization_of_parsed_pla_matches_direct_construction() {
        let text = "\
# or of two variables, one output
.i 2
.o 1
10 1
01 1
11 1
.e
";
        let pla = parse_pla_text(text).unwrap();
        let m = pla.minimize();
        assert_eq!(m.len(), 2);
        let direct = {
            let mut p = Pla::new(2, 1);
            p.add_on(&[Some(true), Some(false)], &[0]);
            p.add_on(&[Some(false), Some(true)], &[0]);
            p.add_on(&[Some(true), Some(true)], &[0]);
            minimize(p.on_set(), p.dc_set(), None)
        };
        assert_eq!(m.len(), direct.len());
    }
}
