//! The `expand` step: grow each cube into a maximal cube disjoint from the
//! off-set, dropping cubes that become covered.

use ioenc_cube::{Cover, Cube};

/// Expands every cube of `f` against `off`.
///
/// Each cube is grown part-by-part: a cleared part bit may be raised when
/// the raised cube still does not intersect any off-set cube. Raising order
/// prefers bits that occur in many of the still-unexpanded cubes, which
/// maximizes the chance that expansion covers (and thus deletes) other
/// cubes. The result contains only maximally-expanded cubes with contained
/// cubes removed.
pub fn expand(f: &Cover, off: &Cover) -> Cover {
    let spec = f.spec().clone();
    let mut cubes: Vec<Cube> = f.cubes().to_vec();
    // Most specific cubes first: they benefit most from expansion and their
    // expansion is most likely to swallow others.
    cubes.sort_by_key(|c| c.bits().count());
    let mut covered = vec![false; cubes.len()];
    let mut result = Cover::empty(spec.clone());

    for i in 0..cubes.len() {
        if covered[i] {
            continue;
        }
        let mut cube = cubes[i].clone();
        // Candidate bits, ordered by how often they appear in the remaining
        // uncovered cubes (descending).
        let mut free: Vec<usize> = (0..spec.total_bits())
            .filter(|&b| !cube.bits().contains(b))
            .collect();
        let mut freq = vec![0usize; spec.total_bits()];
        for (j, c) in cubes.iter().enumerate() {
            if j != i && !covered[j] {
                for b in c.bits().iter() {
                    freq[b] += 1;
                }
            }
        }
        free.sort_by_key(|&b| std::cmp::Reverse(freq[b]));
        // Greedy raising loop: keep sweeping until no bit can be raised.
        loop {
            let mut raised = false;
            free.retain(|&b| {
                if cube.bits().contains(b) {
                    return false;
                }
                let mut trial = cube.clone();
                let (v, p) = locate(&spec, b);
                trial.set_part(&spec, v, p);
                if disjoint_from_cover(&trial, off) {
                    cube = trial;
                    raised = true;
                    false
                } else {
                    true
                }
            });
            if !raised {
                break;
            }
        }
        // Mark every cube the expanded prime now covers.
        for (j, c) in cubes.iter().enumerate() {
            if !covered[j] && cube.contains(c) {
                covered[j] = true;
            }
        }
        result.push(cube);
    }
    result.single_cube_containment();
    result
}

fn locate(spec: &ioenc_cube::VarSpec, bit: usize) -> (usize, usize) {
    for v in spec.vars() {
        let r = spec.var_range(v);
        if r.contains(&bit) {
            return (v, bit - spec.offset(v));
        }
    }
    unreachable!("bit {bit} beyond spec width");
}

fn disjoint_from_cover(cube: &Cube, off: &Cover) -> bool {
    off.cubes().iter().all(|o| cube.distance(off.spec(), o) > 0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ioenc_cube::VarSpec;

    #[test]
    fn expands_to_prime() {
        let spec = VarSpec::binary(2);
        // f = minterm 11, off = nothing → expands to the universe.
        let on = Cover::parse(&spec, "1 1").unwrap();
        let off = Cover::empty(spec.clone());
        let e = expand(&on, &off);
        assert_eq!(e.len(), 1);
        assert!(e.cubes()[0].is_universe(&spec));
    }

    #[test]
    fn expansion_blocked_by_off_set() {
        let spec = VarSpec::binary(2);
        let on = Cover::parse(&spec, "1 1").unwrap();
        let off = Cover::parse(&spec, "0 0").unwrap();
        let e = expand(&on, &off);
        assert_eq!(e.len(), 1);
        let c = &e.cubes()[0];
        // Must not contain minterm 00 but should have grown beyond 11.
        assert!(!c.contains_minterm(&spec, &[0, 0]));
        assert!(c.contains_minterm(&spec, &[1, 1]));
        assert!(c.bits().count() > 2);
    }

    #[test]
    fn expansion_swallows_covered_cubes() {
        let spec = VarSpec::binary(2);
        let on = Cover::parse(&spec, "0 1\n1 1").unwrap();
        let off = Cover::parse(&spec, "0 0\n1 0").unwrap();
        let e = expand(&on, &off);
        // Both minterms expand to the single prime -1.
        assert_eq!(e.len(), 1);
        assert_eq!(e.cubes()[0].display(&spec), "11 01");
    }

    #[test]
    fn result_stays_disjoint_from_off() {
        let spec = VarSpec::binary(3);
        let on = Cover::parse(&spec, "0 0 0\n1 1 1\n0 1 0").unwrap();
        let off = Cover::parse(&spec, "1 0 -\n- 0 1").unwrap();
        let e = expand(&on, &off);
        for c in e.cubes() {
            for o in off.cubes() {
                assert!(c.distance(&spec, o) > 0, "expanded cube hits off-set");
            }
        }
        // Every original on-cube is covered by the expansion.
        for c in on.cubes() {
            assert!(e.cubes().iter().any(|p| p.contains(c)));
        }
    }
}
