#![warn(missing_docs)]
#![forbid(unsafe_code)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

//! A self-contained ESPRESSO-style two-level minimizer over multi-valued
//! inputs and multiple outputs.
//!
//! The encoding framework needs two-level minimization in two places:
//!
//! * **Cost evaluation** (Section 7 of Saldanha et al.): the quality of a
//!   bounded-length encoding is the number of cubes or literals of the
//!   minimized *encoded constraint functions* `F_I`.
//! * **Constraint generation**: input (face) constraints are read off the
//!   multiple-valued minimized cover of an FSM's symbolic transition table
//!   (the role ESPRESSO-MV plays in the paper).
//!
//! The minimizer implements the classic loop — `expand` against the
//! off-set, `irredundant`, `reduce` — on covers in positional cube notation
//! ([`ioenc_cube`]). Multiple-output functions use the standard trick of a
//! final multi-valued *output variable*.
//!
//! # Examples
//!
//! ```
//! use ioenc_cube::{Cover, VarSpec};
//! use ioenc_espresso::minimize;
//!
//! let spec = VarSpec::binary(2);
//! // a'b + ab' + ab  minimizes to  a + b.
//! let on = Cover::parse(&spec, "0 1\n1 0\n1 1").unwrap();
//! let dc = Cover::empty(spec.clone());
//! let m = minimize(&on, &dc, None);
//! assert_eq!(m.len(), 2);
//! ```

mod essentials;
mod exact;
mod expand;
mod irredundant;
mod last_gasp;
mod pla_text;
mod reduce;

use ioenc_cube::{Cover, Cube, VarSpec};

pub use essentials::split_essential;
pub use exact::exact_minimize;
pub use expand::expand;
pub use irredundant::irredundant;
pub use last_gasp::last_gasp;
pub use pla_text::{cover_to_pla_text, parse_pla_text, pla_cube};
pub use reduce::reduce;

/// Minimizes `on` against the don't-care set `dc`.
///
/// `off` may be supplied when the caller already knows the off-set (as the
/// constraint cost evaluation does); otherwise it is computed as the
/// complement of `on ∪ dc`.
///
/// The result `M` satisfies `ON ⊆ M ∪ DC` and `M ∩ OFF = ∅`; every cube of
/// `M` is maximal against the off-set.
///
/// # Panics
///
/// Panics if the covers' specs differ.
pub fn minimize(on: &Cover, dc: &Cover, off: Option<&Cover>) -> Cover {
    minimize_bounded(on, dc, off, None).0
}

/// Counters from one bounded minimization ([`minimize_bounded`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MinimizeStats {
    /// Improvement-loop rounds (one `reduce`/`expand`/`irredundant` pass
    /// each) that ran.
    pub iterations: u64,
    /// `false` when the iteration cap stopped the loop before the cost
    /// converged (the cover returned is still valid, just possibly larger).
    pub converged: bool,
}

/// [`minimize`] with a cap on the improvement-loop iterations.
///
/// ESPRESSO is an anytime algorithm: the cover is valid between rounds, so
/// stopping early trades quality for bounded work rather than failing. With
/// `max_iters = None` the behaviour (and result) is identical to
/// [`minimize`]; with `Some(k)` at most `k` `reduce`/`expand`/`irredundant`
/// rounds run, and the `LAST_GASP` escape is skipped when the cap stopped
/// the loop.
///
/// # Panics
///
/// Panics if the covers' specs differ.
pub fn minimize_bounded(
    on: &Cover,
    dc: &Cover,
    off: Option<&Cover>,
    max_iters: Option<u64>,
) -> (Cover, MinimizeStats) {
    let computed_off;
    let off = match off {
        Some(o) => {
            assert!(o.spec() == on.spec(), "off-set spec mismatch");
            o
        }
        None => {
            computed_off = on.union(dc).complement();
            &computed_off
        }
    };
    assert!(dc.spec() == on.spec(), "dc-set spec mismatch");

    let mut f = on.clone();
    f.single_cube_containment();
    f = expand(&f, off);
    f = irredundant(&f, dc);
    // Essential primes sit out the iteration as don't cares (ESPRESSO's
    // ESSEN_PRIMES step): they can never be discarded, and treating them as
    // don't cares lets the loop reshape the rest around them.
    let (essential, rest) = split_essential(&f, dc);
    let loop_dc = dc.union(&essential);
    let mut f = rest;
    let mut best = cost(&f);
    let mut stats = MinimizeStats {
        iterations: 0,
        converged: true,
    };
    loop {
        if max_iters.is_some_and(|m| stats.iterations >= m) {
            stats.converged = false;
            break;
        }
        stats.iterations += 1;
        f = reduce(&f, &loop_dc);
        f = expand(&f, off);
        f = irredundant(&f, &loop_dc);
        let c = cost(&f);
        if c >= best {
            break;
        }
        best = c;
    }
    // One LAST_GASP attempt to escape the local minimum (skipped when the
    // iteration cap already stopped the loop).
    if stats.converged {
        f = last_gasp::last_gasp(&f, &loop_dc, off);
    }
    let mut result = f.union(&essential);
    result.single_cube_containment();
    (result, stats)
}

/// The (cube count, total-cleared-bit) cost ordering used to detect
/// convergence of the minimization loop.
fn cost(f: &Cover) -> (usize, usize) {
    let bits: usize = f
        .cubes()
        .iter()
        .map(|c| f.spec().total_bits() - c.bits().count())
        .sum();
    (f.len(), bits)
}

/// Summary statistics of a cover: `(cube count, input-literal count)` over
/// the first `input_vars` variables.
///
/// # Examples
///
/// ```
/// use ioenc_cube::{Cover, VarSpec};
/// use ioenc_espresso::{minimize, summary};
///
/// let spec = VarSpec::binary(2);
/// let on = Cover::parse(&spec, "0 1\n1 0\n1 1").unwrap();
/// let m = minimize(&on, &Cover::empty(spec.clone()), None);
/// let s = summary(&m, 2);
/// assert_eq!(s, (2, 2)); // two cubes, one literal each
/// ```
pub fn summary(f: &Cover, input_vars: usize) -> (usize, usize) {
    (f.len(), f.literal_count(input_vars))
}

/// A multiple-output PLA: binary inputs plus one output variable, with
/// explicit on- and don't-care sets.
///
/// # Examples
///
/// ```
/// use ioenc_espresso::Pla;
///
/// let mut pla = Pla::new(2, 1);
/// pla.add_on(&[Some(false), Some(true)], &[0]);
/// pla.add_on(&[Some(true), None], &[0]);
/// let m = pla.minimize();
/// assert_eq!(m.len(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct Pla {
    spec: VarSpec,
    inputs: usize,
    outputs: usize,
    on: Cover,
    dc: Cover,
}

impl Pla {
    /// An empty PLA with `inputs` binary inputs and `outputs` outputs.
    ///
    /// A 1-output PLA is modelled with a 2-part output variable whose part
    /// 0 is unused.
    pub fn new(inputs: usize, outputs: usize) -> Self {
        let parts = outputs.max(2);
        let spec = VarSpec::binary_with_output(inputs, parts);
        Pla {
            spec: spec.clone(),
            inputs,
            outputs,
            on: Cover::empty(spec.clone()),
            dc: Cover::empty(spec),
        }
    }

    /// The underlying spec (inputs then the output variable).
    pub fn spec(&self) -> &VarSpec {
        &self.spec
    }

    /// Number of binary inputs.
    pub fn inputs(&self) -> usize {
        self.inputs
    }

    /// Number of outputs.
    pub fn outputs(&self) -> usize {
        self.outputs
    }

    /// The accumulated on-set.
    pub fn on_set(&self) -> &Cover {
        &self.on
    }

    /// The accumulated don't-care set.
    pub fn dc_set(&self) -> &Cover {
        &self.dc
    }

    fn build_cube(&self, input: &[Option<bool>], outputs: &[usize]) -> Cube {
        assert_eq!(input.len(), self.inputs, "one literal per input");
        let mut c = Cube::universe(&self.spec);
        for (v, lit) in input.iter().enumerate() {
            match lit {
                Some(false) => c.clear_part(&self.spec, v, 1),
                Some(true) => c.clear_part(&self.spec, v, 0),
                None => {}
            }
        }
        let out_var = self.inputs;
        for p in 0..self.spec.parts(out_var) {
            c.clear_part(&self.spec, out_var, p);
        }
        for &o in outputs {
            assert!(o < self.outputs, "output {o} out of range");
            c.set_part(&self.spec, out_var, o);
        }
        c
    }

    /// Adds an on-set cube: `input[v]` is `Some(bit)` or `None` for a
    /// don't-care literal; `outputs` lists the asserted outputs.
    ///
    /// # Panics
    ///
    /// Panics if the literal count or an output index is wrong.
    pub fn add_on(&mut self, input: &[Option<bool>], outputs: &[usize]) {
        let c = self.build_cube(input, outputs);
        self.on.push(c);
    }

    /// Adds a don't-care cube.
    ///
    /// # Panics
    ///
    /// Panics if the literal count or an output index is wrong.
    pub fn add_dc(&mut self, input: &[Option<bool>], outputs: &[usize]) {
        let c = self.build_cube(input, outputs);
        self.dc.push(c);
    }

    /// Minimizes the PLA, returning the minimized multiple-output cover.
    pub fn minimize(&self) -> Cover {
        minimize(&self.on, &self.dc, None)
    }

    /// Minimizes and returns `(cubes, input_literals)`.
    pub fn minimize_summary(&self) -> (usize, usize) {
        summary(&self.minimize(), self.inputs)
    }

    /// [`minimize`](Self::minimize) with an improvement-loop iteration cap
    /// (see [`minimize_bounded`]).
    pub fn minimize_bounded(&self, max_iters: Option<u64>) -> (Cover, MinimizeStats) {
        minimize_bounded(&self.on, &self.dc, None, max_iters)
    }

    /// [`minimize_summary`](Self::minimize_summary) with an iteration cap;
    /// returns the summary plus the loop counters.
    pub fn minimize_summary_bounded(
        &self,
        max_iters: Option<u64>,
    ) -> ((usize, usize), MinimizeStats) {
        let (m, stats) = self.minimize_bounded(max_iters);
        (summary(&m, self.inputs), stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bspec(n: usize) -> VarSpec {
        VarSpec::binary(n)
    }

    fn check_valid(on: &Cover, dc: &Cover, m: &Cover) {
        let spec = on.spec();
        for mt in Cover::enumerate_minterms(spec) {
            let in_on = on.contains_minterm(&mt);
            let in_dc = dc.contains_minterm(&mt);
            let in_m = m.contains_minterm(&mt);
            if in_on && !in_dc {
                assert!(in_m, "on-set minterm {mt:?} lost");
            }
            if !in_on && !in_dc {
                assert!(!in_m, "off-set minterm {mt:?} gained");
            }
        }
    }

    #[test]
    fn or_of_two_vars() {
        let spec = bspec(2);
        let on = Cover::parse(&spec, "0 1\n1 0\n1 1").unwrap();
        let dc = Cover::empty(spec.clone());
        let m = minimize(&on, &dc, None);
        assert_eq!(m.len(), 2);
        check_valid(&on, &dc, &m);
    }

    #[test]
    fn xor_does_not_shrink() {
        let spec = bspec(2);
        let on = Cover::parse(&spec, "0 1\n1 0").unwrap();
        let dc = Cover::empty(spec.clone());
        let m = minimize(&on, &dc, None);
        assert_eq!(m.len(), 2);
        check_valid(&on, &dc, &m);
    }

    #[test]
    fn tautology_collapses_to_one_cube() {
        let spec = bspec(3);
        let mut lines = String::new();
        for i in 0..8 {
            for b in 0..3 {
                lines.push(if i >> b & 1 == 1 { '1' } else { '0' });
                lines.push(' ');
            }
            lines.push('\n');
        }
        let on = Cover::parse(&spec, &lines).unwrap();
        let m = minimize(&on, &Cover::empty(spec.clone()), None);
        assert_eq!(m.len(), 1);
        assert!(m.cubes()[0].is_universe(&spec));
    }

    #[test]
    fn dont_cares_enable_merging() {
        // f = minterm 00; dc = minterm 01 → minimizes to cube 0-.
        let spec = bspec(2);
        let on = Cover::parse(&spec, "0 0").unwrap();
        let dc = Cover::parse(&spec, "0 1").unwrap();
        let m = minimize(&on, &dc, None);
        assert_eq!(m.len(), 1);
        assert_eq!(m.cubes()[0].display(&spec), "10 11");
        check_valid(&on, &dc, &m);
    }

    #[test]
    fn multivalued_input_minimization() {
        // One 3-valued variable, one binary: f = (v∈{0,1}) x + (v=2) x.
        let spec = VarSpec::new(vec![3, 2]);
        let on = Cover::parse(&spec, "110 01\n001 01").unwrap();
        let dc = Cover::empty(spec.clone());
        let m = minimize(&on, &dc, None);
        assert_eq!(m.len(), 1);
        assert_eq!(m.cubes()[0].display(&spec), "111 01");
    }

    #[test]
    fn multi_output_sharing() {
        let mut pla = Pla::new(2, 2);
        pla.add_on(&[Some(true), Some(true)], &[0, 1]);
        pla.add_on(&[Some(true), Some(false)], &[0]);
        pla.add_on(&[Some(true), Some(false)], &[1]);
        let m = pla.minimize();
        // x0 alone drives both outputs: one cube.
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn empty_on_set_minimizes_to_empty() {
        let spec = bspec(2);
        let on = Cover::empty(spec.clone());
        let m = minimize(&on, &Cover::empty(spec.clone()), None);
        assert!(m.is_empty());
    }

    #[test]
    fn explicit_off_set_is_honoured() {
        let spec = bspec(2);
        let on = Cover::parse(&spec, "1 1").unwrap();
        let off = Cover::parse(&spec, "0 0").unwrap();
        let dc = Cover::parse(&spec, "0 1\n1 0").unwrap();
        let m = minimize(&on, &dc, Some(&off));
        assert_eq!(m.len(), 1);
        for mt in Cover::enumerate_minterms(&spec) {
            assert!(!(off.contains_minterm(&mt) && m.contains_minterm(&mt)));
        }
    }

    #[test]
    fn pla_single_output() {
        let mut pla = Pla::new(3, 1);
        // f = x0 x1 + x0 x2.
        pla.add_on(&[Some(true), Some(true), None], &[0]);
        pla.add_on(&[Some(true), None, Some(true)], &[0]);
        let (cubes, lits) = pla.minimize_summary();
        assert_eq!(cubes, 2);
        assert_eq!(lits, 4);
    }

    #[test]
    #[should_panic(expected = "output 2 out of range")]
    fn pla_rejects_bad_output() {
        let mut pla = Pla::new(1, 2);
        pla.add_on(&[None], &[2]);
    }

    #[test]
    fn unbounded_minimize_bounded_matches_minimize() {
        let spec = bspec(4);
        let mut lines = String::new();
        for i in 0..16u32 {
            if i.count_ones() % 2 == 0 && i != 6 {
                for b in 0..4 {
                    lines.push(if i >> b & 1 == 1 { '1' } else { '0' });
                    lines.push(' ');
                }
                lines.push('\n');
            }
        }
        let on = Cover::parse(&spec, &lines).unwrap();
        let dc = Cover::empty(spec.clone());
        let plain = minimize(&on, &dc, None);
        let (bounded, stats) = minimize_bounded(&on, &dc, None, None);
        assert_eq!(plain.len(), bounded.len());
        assert!(stats.converged);
        assert!(stats.iterations >= 1);
    }

    #[test]
    fn iteration_cap_still_yields_a_valid_cover() {
        let spec = bspec(4);
        let mut lines = String::new();
        for i in 0..16u32 {
            if i.count_ones() % 2 == 0 {
                for b in 0..4 {
                    lines.push(if i >> b & 1 == 1 { '1' } else { '0' });
                    lines.push(' ');
                }
                lines.push('\n');
            }
        }
        let on = Cover::parse(&spec, &lines).unwrap();
        let dc = Cover::empty(spec.clone());
        let (m, stats) = minimize_bounded(&on, &dc, None, Some(0));
        assert!(!stats.converged);
        assert_eq!(stats.iterations, 0);
        check_valid(&on, &dc, &m);
    }
}
