//! The `reduce` step: shrink each cube to the smallest cube still covering
//! the minterms no other cube (or don't-care) covers, so a later `expand`
//! can escape local minima.

use ioenc_cube::{Cover, Cube};

/// Reduces every cube of `f` in place against the rest of the cover and
/// `dc`.
///
/// For each cube `c` the maximally reduced replacement is
/// `c ∩ supercube(¬((F \ {c} ∪ D) cofactored by c))`; a cube whose
/// replacement is void (it was entirely covered by the others) is dropped.
/// Reduction preserves the function `F ∪ D`.
pub fn reduce(f: &Cover, dc: &Cover) -> Cover {
    let spec = f.spec().clone();
    let mut cubes = f.cubes().to_vec();
    // Largest cubes first, as in ESPRESSO: they have the most room to
    // shrink, freeing space for the rest.
    cubes.sort_by_key(|c| std::cmp::Reverse(c.bits().count()));
    let mut i = 0;
    while i < cubes.len() {
        let c = cubes[i].clone();
        let mut rest = Cover::empty(spec.clone());
        for (j, other) in cubes.iter().enumerate() {
            if j != i {
                rest.push(other.clone());
            }
        }
        let rest = rest.union(dc);
        let cof = rest.cofactor(&c);
        let comp = cof.complement();
        if comp.is_empty() {
            // c is covered by the others: drop it.
            cubes.remove(i);
            continue;
        }
        let mut sup: Option<Cube> = None;
        for q in comp.cubes() {
            sup = Some(match sup {
                None => q.clone(),
                Some(s) => s.supercube(q),
            });
        }
        // comp was checked non-empty above, so `sup` is always `Some`.
        if let Some(sup) = sup {
            if let Some(reduced) = c.intersection(&spec, &sup) {
                cubes[i] = reduced;
            }
        }
        i += 1;
    }
    Cover::from_cubes(spec, cubes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ioenc_cube::VarSpec;

    #[test]
    fn reduce_preserves_function() {
        let spec = VarSpec::binary(3);
        let f = Cover::parse(&spec, "1 1 -\n- 1 1\n1 - 1").unwrap();
        let dc = Cover::empty(spec.clone());
        let r = reduce(&f, &dc);
        for mt in Cover::enumerate_minterms(&spec) {
            assert_eq!(f.contains_minterm(&mt), r.contains_minterm(&mt));
        }
    }

    #[test]
    fn fully_covered_cube_is_dropped() {
        let spec = VarSpec::binary(2);
        let f = Cover::parse(&spec, "- 1\n1 -\n0 -").unwrap();
        let dc = Cover::empty(spec.clone());
        let r = reduce(&f, &dc);
        // The cover is a tautology made of x0 + x0'; the x1 cube reduces to
        // nothing.
        assert!(r.len() <= 2);
        for mt in Cover::enumerate_minterms(&spec) {
            assert_eq!(f.contains_minterm(&mt), r.contains_minterm(&mt));
        }
    }

    #[test]
    fn overlapping_cubes_shrink() {
        let spec = VarSpec::binary(2);
        // Two overlapping cubes 1- and -1; one of them gives up the shared
        // minterm 11.
        let f = Cover::parse(&spec, "1 -\n- 1").unwrap();
        let dc = Cover::empty(spec.clone());
        let r = reduce(&f, &dc);
        let total_bits: usize = r.cubes().iter().map(|c| c.bits().count()).sum();
        let before: usize = f.cubes().iter().map(|c| c.bits().count()).sum();
        assert!(total_bits < before, "reduction should shrink something");
        for mt in Cover::enumerate_minterms(&spec) {
            assert_eq!(f.contains_minterm(&mt), r.contains_minterm(&mt));
        }
    }

    #[test]
    fn dc_allows_deeper_reduction() {
        let spec = VarSpec::binary(2);
        let f = Cover::parse(&spec, "- 1").unwrap();
        let dc = Cover::parse(&spec, "1 1").unwrap();
        let r = reduce(&f, &dc);
        assert_eq!(r.len(), 1);
        // Cube may shrink to 01 because 11 is don't-care.
        assert!(r.cubes()[0].contains_minterm(&spec, &[0, 1]));
    }
}
