//! Essential prime extraction: cubes no other part of the cover can
//! replace are removed from the iteration and restored at the end, as in
//! ESPRESSO proper.

use ioenc_cube::Cover;

/// Splits `f` into `(essential, rest)`: a cube is (relatively) essential
/// when it is not covered by the remaining cubes together with the
/// don't-care set — no minimization step could ever discard it, so it can
/// sit out the reduce/expand/irredundant loop as a don't-care.
pub fn split_essential(f: &Cover, dc: &Cover) -> (Cover, Cover) {
    let spec = f.spec().clone();
    let mut essential = Cover::empty(spec.clone());
    let mut rest = Cover::empty(spec.clone());
    for (i, cube) in f.cubes().iter().enumerate() {
        let mut others = Cover::empty(spec.clone());
        for (j, c) in f.cubes().iter().enumerate() {
            if j != i {
                others.push(c.clone());
            }
        }
        let others = others.union(dc);
        if others.contains_cube(cube) {
            rest.push(cube.clone());
        } else {
            essential.push(cube.clone());
        }
    }
    (essential, rest)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ioenc_cube::VarSpec;

    #[test]
    fn lone_cube_is_essential() {
        let spec = VarSpec::binary(2);
        let f = Cover::parse(&spec, "1 1").unwrap();
        let (e, rest) = split_essential(&f, &Cover::empty(spec));
        assert_eq!(e.len(), 1);
        assert!(rest.is_empty());
    }

    #[test]
    fn consensus_covered_cube_is_not_essential() {
        let spec = VarSpec::binary(2);
        // x0 + x0' cover everything; the middle cube x1 is redundant.
        let f = Cover::parse(&spec, "1 -\n0 -\n- 1").unwrap();
        let (e, rest) = split_essential(&f, &Cover::empty(spec.clone()));
        assert_eq!(rest.len(), 1);
        assert_eq!(rest.cubes()[0].display(&spec), "11 01");
        assert_eq!(e.len(), 2);
    }

    #[test]
    fn dc_can_make_a_cube_inessential() {
        let spec = VarSpec::binary(2);
        let f = Cover::parse(&spec, "1 1").unwrap();
        let dc = Cover::parse(&spec, "1 -").unwrap();
        let (e, rest) = split_essential(&f, &dc);
        assert!(e.is_empty());
        assert_eq!(rest.len(), 1);
    }

    #[test]
    fn xor_cubes_are_both_essential() {
        let spec = VarSpec::binary(2);
        let f = Cover::parse(&spec, "1 0\n0 1").unwrap();
        let (e, rest) = split_essential(&f, &Cover::empty(spec));
        assert_eq!(e.len(), 2);
        assert!(rest.is_empty());
    }
}
