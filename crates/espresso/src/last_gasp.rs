//! The LAST_GASP step: a final attempt to leave the reduce/expand local
//! minimum. All cubes are reduced *independently* (not sequentially), each
//! maximally reduced cube is re-expanded, and any expansion that covers two
//! or more of the reduced cubes is offered to `irredundant` as a new prime.

use crate::{expand, irredundant};
use ioenc_cube::{Cover, Cube};

/// Runs one LAST_GASP attempt; returns an improved cover or the input.
pub fn last_gasp(f: &Cover, dc: &Cover, off: &Cover) -> Cover {
    let spec = f.spec().clone();
    if f.len() < 2 {
        return f.clone();
    }
    // Order-independent maximal reduction: every cube against all others.
    let mut reduced: Vec<Cube> = Vec::new();
    for (i, c) in f.cubes().iter().enumerate() {
        let mut rest = Cover::empty(spec.clone());
        for (j, other) in f.cubes().iter().enumerate() {
            if j != i {
                rest.push(other.clone());
            }
        }
        let rest = rest.union(dc);
        let comp = rest.cofactor(c).complement();
        if comp.is_empty() {
            continue; // fully covered by the others
        }
        let mut sup: Option<Cube> = None;
        for q in comp.cubes() {
            sup = Some(match sup {
                None => q.clone(),
                Some(s) => s.supercube(q),
            });
        }
        if let Some(r) = sup.and_then(|s| c.intersection(&spec, &s)) {
            reduced.push(r);
        }
    }
    if reduced.len() < 2 {
        return f.clone();
    }
    // Re-expand the reduced cubes; keep expansions covering >= 2 of them.
    let reduced_cover = Cover::from_cubes(spec.clone(), reduced.clone());
    let expanded = expand(&reduced_cover, off);
    let candidates: Vec<Cube> = expanded
        .cubes()
        .iter()
        .filter(|p| reduced.iter().filter(|r| p.contains(r)).count() >= 2)
        .cloned()
        .collect();
    if candidates.is_empty() {
        return f.clone();
    }
    let mut augmented = f.clone();
    for c in candidates {
        augmented.push(c);
    }
    let improved = irredundant(&augmented, dc);
    if improved.len() < f.len() {
        improved
    } else {
        f.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ioenc_cube::VarSpec;

    #[test]
    fn last_gasp_preserves_semantics() {
        let spec = VarSpec::binary(3);
        let f = Cover::parse(&spec, "1 1 -\n- 1 1\n1 - 1\n0 0 0").unwrap();
        let dc = Cover::empty(spec.clone());
        let off = f.union(&dc).complement();
        let g = last_gasp(&f, &dc, &off);
        for mt in Cover::enumerate_minterms(&spec) {
            assert_eq!(f.contains_minterm(&mt), g.contains_minterm(&mt));
        }
        assert!(g.len() <= f.len());
    }

    #[test]
    fn trivial_covers_pass_through() {
        let spec = VarSpec::binary(2);
        let f = Cover::parse(&spec, "1 1").unwrap();
        let dc = Cover::empty(spec.clone());
        let off = f.union(&dc).complement();
        assert_eq!(last_gasp(&f, &dc, &off), f);
    }

    #[test]
    fn never_worse() {
        let spec = VarSpec::new(vec![2, 3]);
        let f = Cover::parse(&spec, "10 110\n01 011\n11 100").unwrap();
        let dc = Cover::parse(&spec, "10 001").unwrap();
        let off = f.union(&dc).complement();
        let g = last_gasp(&f, &dc, &off);
        assert!(g.len() <= f.len());
        for mt in Cover::enumerate_minterms(&spec) {
            let before = f.contains_minterm(&mt) || dc.contains_minterm(&mt);
            let after = g.contains_minterm(&mt) || dc.contains_minterm(&mt);
            assert_eq!(before, after);
        }
    }
}
