//! Exact two-level minimization (Quine–McCluskey generalized to
//! multi-valued covers): all prime implicants by iterated consensus, then a
//! minimum cover of the on-set by exact unate covering.
//!
//! Exponential — used as the reference oracle for the heuristic loop and
//! for small cost evaluations where exactness matters.

use ioenc_cover::UnateProblem;
use ioenc_cube::{Cover, Cube};

/// Exactly minimizes `on` against `dc`: returns a minimum-cardinality cover
/// `M` with `ON ⊆ M ∪ DC` and `M ⊆ ON ∪ DC`.
///
/// # Panics
///
/// Panics if the specs differ, the domain exceeds 2^16 minterms, or prime
/// generation exceeds 100 000 implicants (exactness has limits).
pub fn exact_minimize(on: &Cover, dc: &Cover) -> Cover {
    assert!(on.spec() == dc.spec(), "dc-set spec mismatch");
    let spec = on.spec().clone();
    assert!(
        spec.domain_size() <= 1 << 16,
        "exact minimization limited to 2^16 minterms"
    );
    if on.is_empty() {
        return Cover::empty(spec);
    }
    let care = on.union(dc);

    // All prime implicants of ON ∪ DC by iterated consensus + absorption.
    let mut primes: Vec<Cube> = {
        let mut c = care.clone();
        c.single_cube_containment();
        c.cubes().to_vec()
    };
    loop {
        let mut new_cubes: Vec<Cube> = Vec::new();
        for i in 0..primes.len() {
            for j in (i + 1)..primes.len() {
                if let Some(cons) = primes[i].consensus(&spec, &primes[j]) {
                    if cons.is_void(&spec) {
                        continue;
                    }
                    // Keep only consensus cubes fully inside the care set
                    // and not already absorbed.
                    if care.contains_cube(&cons)
                        && !primes.iter().any(|p| p.contains(&cons))
                        && !new_cubes.iter().any(|p| p.contains(&cons))
                    {
                        new_cubes.push(cons);
                    }
                }
            }
        }
        if new_cubes.is_empty() {
            break;
        }
        primes.extend(new_cubes);
        // Absorption.
        let mut cover = Cover::from_cubes(spec.clone(), primes);
        cover.single_cube_containment();
        primes = cover.cubes().to_vec();
        assert!(primes.len() <= 100_000, "prime implicant explosion");
    }
    // Expand every cube to a prime (consensus alone can leave non-maximal
    // cubes): grow each against the off-set.
    let off = care.complement();
    let mut maximal: Vec<Cube> = Vec::new();
    for p in &primes {
        let mut cube = p.clone();
        loop {
            let mut grown = false;
            for b in 0..spec.total_bits() {
                if cube.bits().contains(b) {
                    continue;
                }
                let mut trial = cube.clone();
                let (v, part) = locate(&spec, b);
                trial.set_part(&spec, v, part);
                if off.cubes().iter().all(|o| trial.distance(&spec, o) > 0) {
                    cube = trial;
                    grown = true;
                }
            }
            if !grown {
                break;
            }
        }
        maximal.push(cube);
    }
    let mut prime_cover = Cover::from_cubes(spec.clone(), maximal);
    prime_cover.single_cube_containment();
    let primes = prime_cover.cubes().to_vec();

    // Covering: rows are the on-set minterms outside DC.
    let minterms: Vec<Vec<usize>> = Cover::enumerate_minterms(&spec)
        .into_iter()
        .filter(|m| on.contains_minterm(m) && !dc.contains_minterm(m))
        .collect();
    let mut problem = UnateProblem::new(primes.len());
    for m in &minterms {
        problem.add_row(
            primes
                .iter()
                .enumerate()
                .filter(|(_, p)| p.contains_minterm(&spec, m))
                .map(|(k, _)| k),
        );
    }
    // Every on-set minterm lies in some prime (primes were generated
    // from the on-set), so every row is non-empty and the unate solver
    // cannot fail; treat the impossible error as an empty selection.
    let sol = problem.solve_exact().unwrap_or_default();
    Cover::from_cubes(
        spec,
        sol.columns.into_iter().map(|k| primes[k].clone()).collect(),
    )
}

fn locate(spec: &ioenc_cube::VarSpec, bit: usize) -> (usize, usize) {
    for v in spec.vars() {
        if spec.var_range(v).contains(&bit) {
            return (v, bit - spec.offset(v));
        }
    }
    unreachable!("bit {bit} beyond spec width");
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::minimize;
    use ioenc_cube::VarSpec;

    fn check_exact(on: &Cover, dc: &Cover) -> Cover {
        let m = exact_minimize(on, dc);
        let spec = on.spec();
        for mt in Cover::enumerate_minterms(spec) {
            let in_on = on.contains_minterm(&mt);
            let in_dc = dc.contains_minterm(&mt);
            let in_m = m.contains_minterm(&mt);
            if in_on && !in_dc {
                assert!(in_m, "lost {mt:?}");
            }
            if !in_on && !in_dc {
                assert!(!in_m, "gained {mt:?}");
            }
        }
        m
    }

    #[test]
    fn or_function_needs_two_cubes() {
        let spec = VarSpec::binary(2);
        let on = Cover::parse(&spec, "0 1\n1 0\n1 1").unwrap();
        let m = check_exact(&on, &Cover::empty(spec));
        assert_eq!(m.len(), 2);
    }

    #[test]
    fn xor3_needs_four_cubes() {
        let spec = VarSpec::binary(3);
        let mut text = String::new();
        for m in 0..8 {
            if (m as u32).count_ones() % 2 == 1 {
                for b in 0..3 {
                    text.push(if m >> b & 1 == 1 { '1' } else { '0' });
                    text.push(' ');
                }
                text.push('\n');
            }
        }
        let on = Cover::parse(&spec, &text).unwrap();
        let m = check_exact(&on, &Cover::empty(spec));
        assert_eq!(m.len(), 4);
    }

    #[test]
    fn dc_reduces_cube_count() {
        let spec = VarSpec::binary(2);
        let on = Cover::parse(&spec, "0 0\n1 1").unwrap();
        let dc = Cover::parse(&spec, "0 1").unwrap();
        // With 01 free, {00,01} merge into 0- and 11 stays: 2 cubes; in
        // fact 0- + 11 is minimal (2) vs 2 without dc as well, so use a
        // stronger case: dc covering everything else gives 1 cube.
        let dc_all = Cover::parse(&spec, "0 1\n1 0").unwrap();
        let m = check_exact(&on, &dc_all);
        assert_eq!(m.len(), 1);
        let m2 = check_exact(&on, &dc);
        assert!(m2.len() <= 2);
    }

    #[test]
    fn heuristic_never_beats_exact() {
        let spec = VarSpec::new(vec![2, 2, 3]);
        let on = Cover::parse(&spec, "10 11 110\n01 10 011\n11 01 101\n10 01 100").unwrap();
        let dc = Cover::parse(&spec, "01 01 010").unwrap();
        let exact = check_exact(&on, &dc);
        let heur = minimize(&on, &dc, None);
        assert!(heur.len() >= exact.len());
    }

    #[test]
    fn multivalued_merging() {
        // One 4-valued variable: parts {0,1} and {2,3} asserted separately
        // merge into the full literal.
        let spec = VarSpec::new(vec![4, 2]);
        let on = Cover::parse(&spec, "1100 01\n0011 01").unwrap();
        let m = check_exact(&on, &Cover::empty(spec));
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn empty_on_set() {
        let spec = VarSpec::binary(2);
        let m = exact_minimize(&Cover::empty(spec.clone()), &Cover::empty(spec));
        assert!(m.is_empty());
    }
}
