//! Randomized tests: minimization preserves semantics on random functions,
//! driven by the workspace's deterministic PRNG.

use ioenc_cube::{Cover, Cube, VarSpec};
use ioenc_espresso::{exact_minimize, expand, irredundant, minimize, reduce};
use ioenc_rng::SplitMix64;

const CASES: usize = 96;

fn random_spec(rng: &mut SplitMix64) -> VarSpec {
    if rng.gen_bool(0.5) {
        VarSpec::binary(rng.gen_range(1..4))
    } else {
        let nvars = rng.gen_range(1..3);
        VarSpec::new((0..nvars).map(|_| rng.gen_range(2..4)).collect())
    }
}

fn random_cube(rng: &mut SplitMix64, spec: &VarSpec) -> Cube {
    let mut c = Cube::universe(spec);
    for v in spec.vars() {
        let mut cleared = 0;
        let parts = spec.parts(v);
        for p in 0..parts {
            if rng.gen_bool(0.35) && cleared + 1 < parts {
                c.clear_part(spec, v, p);
                cleared += 1;
            }
        }
    }
    c
}

fn random_on_dc(rng: &mut SplitMix64) -> (Cover, Cover) {
    let spec = random_spec(rng);
    let n_on = rng.gen_range(0..5);
    let n_dc = rng.gen_range(0..3);
    let on: Vec<Cube> = (0..n_on).map(|_| random_cube(rng, &spec)).collect();
    let dc: Vec<Cube> = (0..n_dc).map(|_| random_cube(rng, &spec)).collect();
    (
        Cover::from_cubes(spec.clone(), on),
        Cover::from_cubes(spec, dc),
    )
}

fn assert_semantics_preserved(on: &Cover, dc: &Cover, m: &Cover) {
    for mt in Cover::enumerate_minterms(on.spec()) {
        let in_on = on.contains_minterm(&mt);
        let in_dc = dc.contains_minterm(&mt);
        let in_m = m.contains_minterm(&mt);
        if in_on && !in_dc {
            assert!(in_m, "lost on-set minterm {mt:?}");
        }
        if !in_on && !in_dc {
            assert!(!in_m, "gained off-set minterm {mt:?}");
        }
    }
}

#[test]
fn minimize_preserves_semantics() {
    let mut rng = SplitMix64::new(0xe0);
    for _ in 0..CASES {
        let (on, dc) = random_on_dc(&mut rng);
        let m = minimize(&on, &dc, None);
        assert_semantics_preserved(&on, &dc, &m);
    }
}

#[test]
fn minimize_never_grows_cube_count() {
    let mut rng = SplitMix64::new(0xe1);
    for _ in 0..CASES {
        let (on, dc) = random_on_dc(&mut rng);
        let mut scc = on.clone();
        scc.single_cube_containment();
        let m = minimize(&on, &dc, None);
        assert!(m.len() <= scc.len(), "{} > {}", m.len(), scc.len());
    }
}

#[test]
fn expand_covers_original_and_avoids_off() {
    let mut rng = SplitMix64::new(0xe2);
    for _ in 0..CASES {
        let (on, dc) = random_on_dc(&mut rng);
        let off = on.union(&dc).complement();
        let e = expand(&on, &off);
        for c in on.cubes() {
            assert!(e.cubes().iter().any(|p| p.contains(c)));
        }
        for c in e.cubes() {
            for o in off.cubes() {
                assert!(c.distance(on.spec(), o) > 0);
            }
        }
    }
}

#[test]
fn irredundant_preserves_function() {
    let mut rng = SplitMix64::new(0xe3);
    for _ in 0..CASES {
        let (on, dc) = random_on_dc(&mut rng);
        let r = irredundant(&on, &dc);
        // F ∪ D unchanged.
        for mt in Cover::enumerate_minterms(on.spec()) {
            let before = on.contains_minterm(&mt) || dc.contains_minterm(&mt);
            let after = r.contains_minterm(&mt) || dc.contains_minterm(&mt);
            assert_eq!(before, after);
        }
    }
}

#[test]
fn reduce_preserves_function() {
    let mut rng = SplitMix64::new(0xe4);
    for _ in 0..CASES {
        let (on, dc) = random_on_dc(&mut rng);
        let r = reduce(&on, &dc);
        for mt in Cover::enumerate_minterms(on.spec()) {
            let before = on.contains_minterm(&mt) || dc.contains_minterm(&mt);
            let after = r.contains_minterm(&mt) || dc.contains_minterm(&mt);
            assert_eq!(before, after);
        }
    }
}

#[test]
fn heuristic_is_valid_and_no_better_than_exact() {
    let mut rng = SplitMix64::new(0xe5);
    for _ in 0..CASES {
        let (on, dc) = random_on_dc(&mut rng);
        let heur = minimize(&on, &dc, None);
        let exact = exact_minimize(&on, &dc);
        assert_semantics_preserved(&on, &dc, &exact);
        assert!(
            heur.len() >= exact.len(),
            "heuristic {} cubes < exact {}",
            heur.len(),
            exact.len()
        );
    }
}

#[test]
fn minimize_idempotent_on_result() {
    let mut rng = SplitMix64::new(0xe6);
    for _ in 0..CASES {
        let (on, dc) = random_on_dc(&mut rng);
        let m = minimize(&on, &dc, None);
        let m2 = minimize(&m, &dc, None);
        assert!(m2.len() <= m.len());
        assert_semantics_preserved(&m, &dc, &m2);
    }
}
