//! Property tests: minimization preserves semantics on random functions.

use ioenc_cube::{Cover, Cube, VarSpec};
use ioenc_espresso::{exact_minimize, expand, irredundant, minimize, reduce};
use proptest::prelude::*;

fn arb_spec() -> impl Strategy<Value = VarSpec> {
    prop_oneof![
        (1usize..4).prop_map(VarSpec::binary),
        prop::collection::vec(2usize..4, 1..3).prop_map(VarSpec::new),
    ]
}

fn arb_cube(spec: VarSpec) -> impl Strategy<Value = Cube> {
    let total = spec.total_bits();
    prop::collection::vec(0.3f64..1.0, total).prop_map(move |probs| {
        let mut c = Cube::universe(&spec);
        for v in spec.vars() {
            let mut cleared = 0;
            let parts = spec.parts(v);
            for p in 0..parts {
                if probs[spec.offset(v) + p] < 0.55 && cleared + 1 < parts {
                    c.clear_part(&spec, v, p);
                    cleared += 1;
                }
            }
        }
        c
    })
}

fn on_dc() -> impl Strategy<Value = (Cover, Cover)> {
    arb_spec().prop_flat_map(|spec| {
        let s1 = spec.clone();
        let s2 = spec.clone();
        (
            prop::collection::vec(arb_cube(spec.clone()), 0..5),
            prop::collection::vec(arb_cube(spec), 0..3),
        )
            .prop_map(move |(on, dc)| {
                (
                    Cover::from_cubes(s1.clone(), on),
                    Cover::from_cubes(s2.clone(), dc),
                )
            })
    })
}

fn semantics_preserved(on: &Cover, dc: &Cover, m: &Cover) -> Result<(), TestCaseError> {
    for mt in Cover::enumerate_minterms(on.spec()) {
        let in_on = on.contains_minterm(&mt);
        let in_dc = dc.contains_minterm(&mt);
        let in_m = m.contains_minterm(&mt);
        if in_on && !in_dc {
            prop_assert!(in_m, "lost on-set minterm {mt:?}");
        }
        if !in_on && !in_dc {
            prop_assert!(!in_m, "gained off-set minterm {mt:?}");
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn minimize_preserves_semantics((on, dc) in on_dc()) {
        let m = minimize(&on, &dc, None);
        semantics_preserved(&on, &dc, &m)?;
    }

    #[test]
    fn minimize_never_grows_cube_count((on, dc) in on_dc()) {
        let mut scc = on.clone();
        scc.single_cube_containment();
        let m = minimize(&on, &dc, None);
        prop_assert!(m.len() <= scc.len(), "{} > {}", m.len(), scc.len());
    }

    #[test]
    fn expand_covers_original_and_avoids_off((on, dc) in on_dc()) {
        let off = on.union(&dc).complement();
        let e = expand(&on, &off);
        for c in on.cubes() {
            prop_assert!(e.cubes().iter().any(|p| p.contains(c)));
        }
        for c in e.cubes() {
            for o in off.cubes() {
                prop_assert!(c.distance(on.spec(), o) > 0);
            }
        }
    }

    #[test]
    fn irredundant_preserves_function((on, dc) in on_dc()) {
        let r = irredundant(&on, &dc);
        // F ∪ D unchanged.
        for mt in Cover::enumerate_minterms(on.spec()) {
            let before = on.contains_minterm(&mt) || dc.contains_minterm(&mt);
            let after = r.contains_minterm(&mt) || dc.contains_minterm(&mt);
            prop_assert_eq!(before, after);
        }
    }

    #[test]
    fn reduce_preserves_function((on, dc) in on_dc()) {
        let r = reduce(&on, &dc);
        for mt in Cover::enumerate_minterms(on.spec()) {
            let before = on.contains_minterm(&mt) || dc.contains_minterm(&mt);
            let after = r.contains_minterm(&mt) || dc.contains_minterm(&mt);
            prop_assert_eq!(before, after);
        }
    }

    #[test]
    fn heuristic_is_valid_and_no_better_than_exact((on, dc) in on_dc()) {
        let heur = minimize(&on, &dc, None);
        let exact = exact_minimize(&on, &dc);
        semantics_preserved(&on, &dc, &exact)?;
        prop_assert!(heur.len() >= exact.len(),
            "heuristic {} cubes < exact {}", heur.len(), exact.len());
    }

    #[test]
    fn minimize_idempotent_on_result((on, dc) in on_dc()) {
        let m = minimize(&on, &dc, None);
        let m2 = minimize(&m, &dc, None);
        prop_assert!(m2.len() <= m.len());
        semantics_preserved(&m, &dc, &m2)?;
    }
}
