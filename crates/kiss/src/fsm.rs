//! FSM model and KISS2 format support.

use std::collections::HashMap;
use std::fmt;

/// One symbolic transition: on `input` (a cube over the primary inputs),
/// state `from` moves to state `to` asserting `output`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Transition {
    /// Input literals; `None` is a don't-care (`-`).
    pub input: Vec<Option<bool>>,
    /// Present-state index.
    pub from: usize,
    /// Next-state index.
    pub to: usize,
    /// Output literals; `None` is an unspecified output (`-`).
    pub output: Vec<Option<bool>>,
}

/// Diagnostics from [`Fsm::validate`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FsmDiagnostics {
    /// Pairs of transition indices that overlap on (input, present state)
    /// but disagree on the next state.
    pub nondeterministic: Vec<(usize, usize)>,
    /// States whose outgoing transitions do not cover the input space
    /// (only populated when completeness checking was requested).
    pub incomplete: Vec<usize>,
}

impl FsmDiagnostics {
    /// `true` when no nondeterminism was found (incompleteness is legal in
    /// KISS2 and does not fail validation).
    pub fn is_deterministic(&self) -> bool {
        self.nondeterministic.is_empty()
    }
}

/// A finite state machine over symbolic states (the KISS2 model).
///
/// States are dense indices with names; transitions carry input cubes and
/// output cubes exactly as in a `.kiss2` file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Fsm {
    name: String,
    num_inputs: usize,
    num_outputs: usize,
    states: Vec<String>,
    reset: Option<usize>,
    transitions: Vec<Transition>,
    input_labels: Option<Vec<String>>,
    output_labels: Option<Vec<String>>,
}

impl Fsm {
    /// An FSM with no transitions.
    ///
    /// # Panics
    ///
    /// Panics if state names repeat.
    pub fn new(
        name: impl Into<String>,
        num_inputs: usize,
        num_outputs: usize,
        states: Vec<String>,
    ) -> Self {
        let mut seen = std::collections::HashSet::new();
        for s in &states {
            assert!(seen.insert(s.clone()), "duplicate state name '{s}'");
        }
        Fsm {
            name: name.into(),
            num_inputs,
            num_outputs,
            states,
            reset: None,
            transitions: Vec::new(),
            input_labels: None,
            output_labels: None,
        }
    }

    /// Input signal names (`.ilb`), when declared.
    pub fn input_labels(&self) -> Option<&[String]> {
        self.input_labels.as_deref()
    }

    /// Output signal names (`.ob`), when declared.
    pub fn output_labels(&self) -> Option<&[String]> {
        self.output_labels.as_deref()
    }

    /// Declares input signal names (`.ilb`).
    ///
    /// # Panics
    ///
    /// Panics if the count differs from the input width.
    pub fn set_input_labels(&mut self, labels: Vec<String>) {
        assert_eq!(labels.len(), self.num_inputs, "one label per input");
        self.input_labels = Some(labels);
    }

    /// Declares output signal names (`.ob`).
    ///
    /// # Panics
    ///
    /// Panics if the count differs from the output width.
    pub fn set_output_labels(&mut self, labels: Vec<String>) {
        assert_eq!(labels.len(), self.num_outputs, "one label per output");
        self.output_labels = Some(labels);
    }

    /// Checks determinism and completeness: for every state, returns the
    /// pairs of overlapping transitions that disagree on the next state
    /// (nondeterminism witnesses), and the states whose transitions leave
    /// part of the input space unspecified (when `check_complete`).
    ///
    /// KISS2 allows incompletely specified machines, so incompleteness is
    /// reported separately from the hard nondeterminism errors.
    pub fn validate(&self, check_complete: bool) -> FsmDiagnostics {
        let mut nondeterministic: Vec<(usize, usize)> = Vec::new();
        for (i, a) in self.transitions.iter().enumerate() {
            for (j, b) in self.transitions.iter().enumerate().skip(i + 1) {
                if a.from != b.from || a.to == b.to {
                    continue;
                }
                let overlap = a.input.iter().zip(&b.input).all(|(x, y)| match (x, y) {
                    (Some(p), Some(q)) => p == q,
                    _ => true,
                });
                if overlap {
                    nondeterministic.push((i, j));
                }
            }
        }
        let mut incomplete: Vec<usize> = Vec::new();
        if check_complete && self.num_inputs <= 20 {
            for s in 0..self.states.len() {
                let cubes: Vec<&Vec<Option<bool>>> =
                    self.transitions_from(s).map(|t| &t.input).collect();
                let covered = (0..(1usize << self.num_inputs)).all(|m| {
                    cubes.iter().any(|c| {
                        c.iter().enumerate().all(|(v, l)| match l {
                            None => true,
                            Some(b) => *b == (m >> v & 1 == 1),
                        })
                    })
                });
                if !covered {
                    incomplete.push(s);
                }
            }
        }
        FsmDiagnostics {
            nondeterministic,
            incomplete,
        }
    }

    /// The machine's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of primary inputs.
    pub fn num_inputs(&self) -> usize {
        self.num_inputs
    }

    /// Number of primary outputs.
    pub fn num_outputs(&self) -> usize {
        self.num_outputs
    }

    /// Number of states.
    pub fn num_states(&self) -> usize {
        self.states.len()
    }

    /// State names, indexed by state.
    pub fn state_names(&self) -> &[String] {
        &self.states
    }

    /// The name of state `s`.
    ///
    /// # Panics
    ///
    /// Panics if `s` is out of range.
    pub fn state_name(&self, s: usize) -> &str {
        &self.states[s]
    }

    /// Looks a state up by name.
    pub fn state(&self, name: &str) -> Option<usize> {
        self.states.iter().position(|s| s == name)
    }

    /// The reset state, when declared (`.r`).
    pub fn reset(&self) -> Option<usize> {
        self.reset
    }

    /// Declares the reset state.
    ///
    /// # Panics
    ///
    /// Panics if `s` is out of range.
    pub fn set_reset(&mut self, s: usize) {
        assert!(s < self.states.len(), "reset state out of range");
        self.reset = Some(s);
    }

    /// The transitions.
    pub fn transitions(&self) -> &[Transition] {
        &self.transitions
    }

    /// Adds a transition.
    ///
    /// # Panics
    ///
    /// Panics if a state index or a cube width is out of range.
    pub fn add_transition(&mut self, t: Transition) {
        assert!(t.from < self.states.len(), "present state out of range");
        assert!(t.to < self.states.len(), "next state out of range");
        assert_eq!(t.input.len(), self.num_inputs, "input width mismatch");
        assert_eq!(t.output.len(), self.num_outputs, "output width mismatch");
        self.transitions.push(t);
    }

    /// Transitions leaving state `s`.
    pub fn transitions_from(&self, s: usize) -> impl Iterator<Item = &Transition> {
        self.transitions.iter().filter(move |t| t.from == s)
    }

    /// Transitions entering state `s`.
    pub fn transitions_into(&self, s: usize) -> impl Iterator<Item = &Transition> {
        self.transitions.iter().filter(move |t| t.to == s)
    }

    /// Parses a KISS2 description (directives `.i .o .p .s .r .e`; state
    /// names are discovered from the transition lines in order of first
    /// appearance when no `.s`-declared names exist — KISS2 has no name
    /// list, so discovery is always used and `.s`/`.p` are checked).
    ///
    /// # Errors
    ///
    /// [`EncodeError::Parse`](ioenc_core::EncodeError::Parse) naming the
    /// offending line and column for malformed input, in the same
    /// `line N, column M: ...` format as
    /// [`ConstraintSet::parse`](ioenc_core::ConstraintSet::parse).
    pub fn parse_kiss2(text: &str) -> Result<Fsm, ioenc_core::EncodeError> {
        Fsm::parse_kiss2_inner(text).map_err(ioenc_core::EncodeError::parse)
    }

    fn parse_kiss2_inner(text: &str) -> Result<Fsm, String> {
        /// A transition-line field with its source location, kept so cube
        /// errors detected after the scan loop can still name line/column.
        struct RawField {
            text: String,
            line: usize,
            col: usize,
        }
        let mut num_inputs: Option<usize> = None;
        let mut num_outputs: Option<usize> = None;
        let mut declared_products: Option<usize> = None;
        let mut declared_states: Option<usize> = None;
        let mut reset_name: Option<String> = None;
        let mut input_labels: Option<Vec<String>> = None;
        let mut output_labels: Option<Vec<String>> = None;
        let mut raw: Vec<(RawField, String, String, RawField)> = Vec::new();

        for (ln, source_line) in text.lines().enumerate() {
            let content = source_line.split('#').next().unwrap_or("");
            let line = content.trim();
            if line.is_empty() {
                continue;
            }
            let line_col = content.len() - content.trim_start().len() + 1;
            let err = |m: &str| format!("line {}, column {line_col}: {m}", ln + 1);
            if let Some(rest) = line.strip_prefix('.') {
                let mut it = rest.split_whitespace();
                let key = it.next().unwrap_or("");
                let value = it.next();
                match key {
                    "i" => {
                        num_inputs = Some(
                            value
                                .and_then(|v| v.parse().ok())
                                .ok_or_else(|| err("bad .i"))?,
                        )
                    }
                    "o" => {
                        num_outputs = Some(
                            value
                                .and_then(|v| v.parse().ok())
                                .ok_or_else(|| err("bad .o"))?,
                        )
                    }
                    "p" => {
                        declared_products = Some(
                            value
                                .and_then(|v| v.parse().ok())
                                .ok_or_else(|| err("bad .p"))?,
                        )
                    }
                    "s" => {
                        declared_states = Some(
                            value
                                .and_then(|v| v.parse().ok())
                                .ok_or_else(|| err("bad .s"))?,
                        )
                    }
                    "r" => reset_name = value.map(|v| v.to_string()),
                    "ilb" => {
                        let mut labels: Vec<String> =
                            value.map(|v| v.to_string()).into_iter().collect();
                        labels.extend(it.map(|v| v.to_string()));
                        input_labels = Some(labels);
                    }
                    "ob" => {
                        let mut labels: Vec<String> =
                            value.map(|v| v.to_string()).into_iter().collect();
                        labels.extend(it.map(|v| v.to_string()));
                        output_labels = Some(labels);
                    }
                    "e" | "end" => break,
                    _ => return Err(err(&format!("unknown directive '.{key}'"))),
                }
                continue;
            }
            // Fields with their 1-based column in the source line, so the
            // cube-parse loop below can point at the offending field.
            let mut fields: Vec<(usize, &str)> = Vec::new();
            let mut rest = content;
            loop {
                let trimmed = rest.trim_start();
                if trimmed.is_empty() {
                    break;
                }
                let col = content.len() - trimmed.len() + 1;
                let end = trimmed.find(char::is_whitespace).unwrap_or(trimmed.len());
                fields.push((col, &trimmed[..end]));
                rest = &trimmed[end..];
            }
            if fields.len() != 4 {
                return Err(err("expected 'input from to output'"));
            }
            let field = |k: usize| RawField {
                text: fields[k].1.to_string(),
                line: ln + 1,
                col: fields[k].0,
            };
            raw.push((
                field(0),
                fields[1].1.to_string(),
                fields[2].1.to_string(),
                field(3),
            ));
        }

        let ni = num_inputs.ok_or("missing .i directive")?;
        let no = num_outputs.ok_or("missing .o directive")?;
        // Discover states in order of first appearance.
        let mut names: Vec<String> = Vec::new();
        let mut index: HashMap<String, usize> = HashMap::new();
        let intern = |name: &str, names: &mut Vec<String>, index: &mut HashMap<String, usize>| {
            *index.entry(name.to_string()).or_insert_with(|| {
                names.push(name.to_string());
                names.len() - 1
            })
        };
        let mut transitions = Vec::new();
        for (i, f, t, o) in &raw {
            let parse_cube = |f: &RawField, width: usize| -> Result<Vec<Option<bool>>, String> {
                let s = &f.text;
                let at = |col: usize| format!("line {}, column {col}", f.line);
                if s.len() != width {
                    return Err(format!(
                        "{}: cube '{s}' has width {} (want {width})",
                        at(f.col),
                        s.len()
                    ));
                }
                s.chars()
                    .enumerate()
                    .map(|(k, c)| match c {
                        '0' => Ok(Some(false)),
                        '1' => Ok(Some(true)),
                        '-' | '~' | '2' => Ok(None),
                        c => Err(format!("{}: bad cube character '{c}'", at(f.col + k))),
                    })
                    .collect()
            };
            let input = parse_cube(i, ni)?;
            let output = parse_cube(o, no)?;
            let from = intern(f, &mut names, &mut index);
            let to = intern(t, &mut names, &mut index);
            transitions.push(Transition {
                input,
                from,
                to,
                output,
            });
        }
        if let Some(s) = declared_states {
            if s != names.len() {
                return Err(format!(".s declares {s} states but {} appear", names.len()));
            }
        }
        if let Some(p) = declared_products {
            if p != transitions.len() {
                return Err(format!(
                    ".p declares {p} products but {} appear",
                    transitions.len()
                ));
            }
        }
        let mut fsm = Fsm::new("kiss2", ni, no, names);
        if let Some(labels) = input_labels {
            if labels.len() != ni {
                return Err(format!(
                    ".ilb declares {} names for {ni} inputs",
                    labels.len()
                ));
            }
            fsm.set_input_labels(labels);
        }
        if let Some(labels) = output_labels {
            if labels.len() != no {
                return Err(format!(
                    ".ob declares {} names for {no} outputs",
                    labels.len()
                ));
            }
            fsm.set_output_labels(labels);
        }
        for t in transitions {
            fsm.add_transition(t);
        }
        if let Some(r) = reset_name {
            let s = fsm
                .state(&r)
                .ok_or_else(|| format!("reset state '{r}' never appears"))?;
            fsm.set_reset(s);
        }
        Ok(fsm)
    }

    /// Prints the machine in KISS2 format (inverse of
    /// [`Fsm::parse_kiss2`]).
    pub fn to_kiss2(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(".i {}\n", self.num_inputs));
        out.push_str(&format!(".o {}\n", self.num_outputs));
        if let Some(labels) = &self.input_labels {
            out.push_str(&format!(".ilb {}\n", labels.join(" ")));
        }
        if let Some(labels) = &self.output_labels {
            out.push_str(&format!(".ob {}\n", labels.join(" ")));
        }
        out.push_str(&format!(".p {}\n", self.transitions.len()));
        out.push_str(&format!(".s {}\n", self.states.len()));
        if let Some(r) = self.reset {
            out.push_str(&format!(".r {}\n", self.states[r]));
        }
        let cube = |lits: &[Option<bool>]| -> String {
            lits.iter()
                .map(|l| match l {
                    Some(false) => '0',
                    Some(true) => '1',
                    None => '-',
                })
                .collect()
        };
        for t in &self.transitions {
            out.push_str(&format!(
                "{} {} {} {}\n",
                cube(&t.input),
                self.states[t.from],
                self.states[t.to],
                cube(&t.output)
            ));
        }
        out.push_str(".e\n");
        out
    }

    /// Renames the machine.
    pub fn set_name(&mut self, name: impl Into<String>) {
        self.name = name.into();
    }
}

impl fmt::Display for Fsm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {} states, {} inputs, {} outputs, {} transitions",
            self.name,
            self.states.len(),
            self.num_inputs,
            self.num_outputs,
            self.transitions.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "\
# a tiny machine
.i 2
.o 1
.p 4
.s 3
.r st0
00 st0 st0 0
01 st0 st1 0
1- st1 st2 1
-- st2 st0 -
.e
";

    #[test]
    fn parse_sample() {
        let fsm = Fsm::parse_kiss2(SAMPLE).unwrap();
        assert_eq!(fsm.num_inputs(), 2);
        assert_eq!(fsm.num_outputs(), 1);
        assert_eq!(fsm.num_states(), 3);
        assert_eq!(fsm.transitions().len(), 4);
        assert_eq!(fsm.reset(), Some(0));
        assert_eq!(fsm.state("st2"), Some(2));
        let t = &fsm.transitions()[2];
        assert_eq!(t.input, vec![Some(true), None]);
        assert_eq!(t.from, 1);
        assert_eq!(t.to, 2);
        assert_eq!(t.output, vec![Some(true)]);
    }

    #[test]
    fn round_trip() {
        let fsm = Fsm::parse_kiss2(SAMPLE).unwrap();
        let text = fsm.to_kiss2();
        let again = Fsm::parse_kiss2(&text).unwrap();
        assert_eq!(fsm.transitions(), again.transitions());
        assert_eq!(fsm.state_names(), again.state_names());
        assert_eq!(fsm.reset(), again.reset());
    }

    #[test]
    fn parse_errors() {
        assert!(Fsm::parse_kiss2(".o 1\n.e\n").is_err()); // missing .i
        assert!(Fsm::parse_kiss2(".i 1\n.o 1\n0 a\n.e\n").is_err()); // short line
        assert!(Fsm::parse_kiss2(".i 1\n.o 1\n00 a b 1\n.e\n").is_err()); // wide cube
        assert!(Fsm::parse_kiss2(".i 1\n.o 1\nx a b 1\n.e\n").is_err()); // bad char
        assert!(Fsm::parse_kiss2(".i 1\n.o 1\n.s 5\n0 a b 1\n.e\n").is_err()); // state count
        assert!(Fsm::parse_kiss2(".i 1\n.o 1\n.r q\n0 a b 1\n.e\n").is_err()); // unknown reset
        assert!(Fsm::parse_kiss2(".i 1\n.o 1\n.z 3\n.e\n").is_err()); // directive
    }

    #[test]
    fn parse_errors_name_line_and_column() {
        // Wide input cube: line 3, field starts at column 1.
        let e = Fsm::parse_kiss2(".i 1\n.o 1\n00 a b 1\n.e\n").unwrap_err();
        assert!(e.to_string().contains("line 3, column 1"), "got: {e}");
        // Bad character in the *output* cube: line 4, cube at column 8,
        // offending character one further in.
        let e = Fsm::parse_kiss2(".i 2\n.o 2\n00 a b 01\n01 a b 0x\n.e\n").unwrap_err();
        assert!(e.to_string().contains("line 4, column 9"), "got: {e}");
        // Short transition line, indented: column points at the content.
        let e = Fsm::parse_kiss2(".i 1\n.o 1\n  0 a\n.e\n").unwrap_err();
        assert!(e.to_string().contains("line 3, column 3"), "got: {e}");
        // Malformed directive keeps the same format.
        let e = Fsm::parse_kiss2(".i x\n").unwrap_err();
        assert!(e.to_string().contains("line 1, column 1"), "got: {e}");
    }

    #[test]
    fn transitions_from_and_into() {
        let fsm = Fsm::parse_kiss2(SAMPLE).unwrap();
        assert_eq!(fsm.transitions_from(0).count(), 2);
        assert_eq!(fsm.transitions_into(0).count(), 2);
        assert_eq!(fsm.transitions_from(2).count(), 1);
    }

    #[test]
    fn builder_validation() {
        let mut fsm = Fsm::new("t", 1, 1, vec!["a".into(), "b".into()]);
        fsm.add_transition(Transition {
            input: vec![None],
            from: 0,
            to: 1,
            output: vec![Some(true)],
        });
        assert_eq!(fsm.transitions().len(), 1);
    }

    #[test]
    #[should_panic(expected = "input width mismatch")]
    fn builder_rejects_bad_width() {
        let mut fsm = Fsm::new("t", 2, 1, vec!["a".into()]);
        fsm.add_transition(Transition {
            input: vec![None],
            from: 0,
            to: 0,
            output: vec![None],
        });
    }

    #[test]
    #[should_panic(expected = "duplicate state name")]
    fn duplicate_states_rejected() {
        Fsm::new("t", 1, 1, vec!["a".into(), "a".into()]);
    }

    const LABELLED: &str = "\
.i 2
.o 2
.ilb clk rst
.ob ready err
0- a a 00
1- a b 01
-- b a 10
.e
";

    #[test]
    fn ilb_ob_labels_round_trip() {
        let fsm = Fsm::parse_kiss2(LABELLED).unwrap();
        assert_eq!(
            fsm.input_labels().unwrap(),
            &["clk".to_string(), "rst".to_string()]
        );
        assert_eq!(
            fsm.output_labels().unwrap(),
            &["ready".to_string(), "err".to_string()]
        );
        let text = fsm.to_kiss2();
        assert!(text.contains(".ilb clk rst"));
        assert!(text.contains(".ob ready err"));
        let again = Fsm::parse_kiss2(&text).unwrap();
        assert_eq!(again.input_labels(), fsm.input_labels());
    }

    #[test]
    fn label_count_mismatch_is_an_error() {
        let bad = ".i 2\n.o 1\n.ilb clk\n0- a a 0\n.e\n";
        assert!(Fsm::parse_kiss2(bad).is_err());
        let bad = ".i 1\n.o 1\n.ob x y\n0 a a 0\n.e\n";
        assert!(Fsm::parse_kiss2(bad).is_err());
    }

    #[test]
    fn validate_flags_nondeterminism() {
        let mut fsm = Fsm::new("nd", 1, 1, vec!["a".into(), "b".into(), "c".into()]);
        fsm.add_transition(Transition {
            input: vec![Some(true)],
            from: 0,
            to: 1,
            output: vec![None],
        });
        fsm.add_transition(Transition {
            input: vec![None],
            from: 0,
            to: 2,
            output: vec![None],
        });
        let d = fsm.validate(false);
        assert!(!d.is_deterministic());
        assert_eq!(d.nondeterministic, vec![(0, 1)]);
    }

    #[test]
    fn validate_flags_incompleteness() {
        let mut fsm = Fsm::new("inc", 1, 1, vec!["a".into(), "b".into()]);
        fsm.add_transition(Transition {
            input: vec![Some(true)],
            from: 0,
            to: 1,
            output: vec![None],
        });
        fsm.add_transition(Transition {
            input: vec![None],
            from: 1,
            to: 0,
            output: vec![None],
        });
        let d = fsm.validate(true);
        assert!(d.is_deterministic());
        assert_eq!(d.incomplete, vec![0]); // input 0 unspecified in state a
    }

    #[test]
    fn generated_suite_validates_clean() {
        for fsm in crate::suite().iter().take(5) {
            let d = fsm.validate(true);
            assert!(
                d.is_deterministic(),
                "{}: {:?}",
                fsm.name(),
                d.nondeterministic
            );
            assert!(
                d.incomplete.is_empty(),
                "{}: {:?}",
                fsm.name(),
                d.incomplete
            );
        }
    }
}
