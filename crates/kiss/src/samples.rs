//! Hand-written sample machines: small, realistic controllers for
//! documentation, examples and tests (the synthetic benchmark suite lives
//! in [`crate::suite`]).

use crate::Fsm;

/// A four-way traffic-light controller: two roads, green/yellow phases,
/// with a sensor input extending the green.
pub const TRAFFIC_LIGHT: &str = "\
.i 2
.o 4
.s 4
.ilb car_ns car_ew
.ob grn_ns yel_ns grn_ew yel_ew
.r green_ns
-0 green_ns  green_ns  1000
-1 green_ns  yellow_ns 1000
-- yellow_ns green_ew  0100
0- green_ew  green_ew  0010
1- green_ew  yellow_ew 0010
-- yellow_ew green_ns  0001
.e
";

/// A two-master bus arbiter with request/grant handshake and a park state.
pub const BUS_ARBITER: &str = "\
.i 2
.o 2
.s 5
.ilb req0 req1
.ob gnt0 gnt1
.r idle
00 idle   idle   00
1- idle   grant0 00
01 idle   grant1 00
1- grant0 hold0  10
0- grant0 idle   10
-1 grant1 hold1  01
-0 grant1 idle   01
1- hold0  hold0  10
0- hold0  idle   10
-1 hold1  hold1  01
-0 hold1  idle   01
.e
";

/// A serial-line receiver: waits for a start bit, shifts four data bits,
/// then checks parity.
pub const SERIAL_RX: &str = "\
.i 1
.o 2
.s 8
.ilb rx
.ob done err
.r wait
1 wait   wait   00
0 wait   bit0   00
- bit0   bit1   00
- bit1   bit2   00
- bit2   bit3   00
- bit3   par    00
0 par    ok     00
1 par    bad    00
- ok     wait   10
- bad    wait   01
.e
";

/// Parses one of the embedded samples.
///
/// # Panics
///
/// Panics only if the embedded text were malformed (checked by tests).
pub fn sample(text: &'static str, name: &str) -> Fsm {
    #[allow(clippy::expect_used)] // compile-time-embedded text, covered by
    // the `samples_parse_and_validate` test; a failure is a build defect
    let mut fsm = Fsm::parse_kiss2(text).expect("embedded samples are well-formed");
    fsm.set_name(name);
    fsm
}

/// All embedded samples as `(name, machine)` pairs.
pub fn samples() -> Vec<Fsm> {
    vec![
        sample(TRAFFIC_LIGHT, "traffic_light"),
        sample(BUS_ARBITER, "bus_arbiter"),
        sample(SERIAL_RX, "serial_rx"),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn samples_parse_and_validate() {
        for fsm in samples() {
            let d = fsm.validate(false);
            assert!(
                d.is_deterministic(),
                "{}: nondeterministic {:?}",
                fsm.name(),
                d.nondeterministic
            );
            assert!(fsm.reset().is_some(), "{} missing reset", fsm.name());
        }
    }

    #[test]
    fn traffic_light_shape() {
        let fsm = sample(TRAFFIC_LIGHT, "traffic_light");
        assert_eq!(fsm.num_states(), 4);
        assert_eq!(fsm.num_inputs(), 2);
        assert_eq!(fsm.num_outputs(), 4);
        assert_eq!(fsm.input_labels().unwrap()[0], "car_ns");
        // The controller is complete.
        assert!(fsm.validate(true).incomplete.is_empty());
    }

    #[test]
    fn bus_arbiter_priorities() {
        let fsm = sample(BUS_ARBITER, "bus_arbiter");
        assert_eq!(fsm.num_states(), 5);
        // Master 0 wins simultaneous requests: 11 from idle goes to grant0.
        let grant0 = fsm.state("grant0").unwrap();
        let idle = fsm.state("idle").unwrap();
        let hit = fsm
            .transitions_from(idle)
            .find(|t| t.input == vec![Some(true), None]);
        assert_eq!(hit.map(|t| t.to), Some(grant0));
    }

    #[test]
    fn serial_rx_counts_bits() {
        let fsm = sample(SERIAL_RX, "serial_rx");
        assert_eq!(fsm.num_states(), 8);
        assert!(fsm.validate(true).incomplete.is_empty());
    }

    #[test]
    fn samples_round_trip() {
        for fsm in samples() {
            let text = fsm.to_kiss2();
            let again = Fsm::parse_kiss2(&text).unwrap();
            assert_eq!(text, again.to_kiss2());
        }
    }
}
