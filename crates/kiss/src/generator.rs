//! Deterministic synthetic FSM benchmarks shaped after the paper's MCNC
//! suite (see DESIGN.md for the substitution rationale).

use crate::{Fsm, Transition};

/// An input cube (one optional literal per input).
type InputCube = Vec<Option<bool>>;
/// One generation pass: the input-subspace base cube and its clusters.
type Pass = (InputCube, Vec<Vec<usize>>);
use ioenc_rng::SplitMix64;

/// Shape parameters for a synthetic benchmark FSM.
///
/// States are grouped into *clusters*. Each cluster's behaviour is a random
/// decision tree over the inputs whose leaves are **disjoint input cubes
/// covering the whole input space**, so every machine is deterministic and
/// completely specified. Some leaves are *shared* (every member of the
/// cluster moves to the same successor with the same output) — multiple-
/// valued minimization merges those transitions and emits the clusters as
/// face constraints, the mechanism that makes the synthetic machines behave
/// like the real benchmarks under symbolic minimization. The remaining
/// leaves get per-state successors.
#[derive(Debug, Clone)]
pub struct BenchmarkSpec {
    /// Benchmark name (mirrors the paper's tables).
    pub name: &'static str,
    /// Number of states.
    pub states: usize,
    /// Primary inputs.
    pub inputs: usize,
    /// Primary outputs.
    pub outputs: usize,
    /// States per behaviour-sharing cluster.
    pub cluster_size: usize,
    /// Shared leaves per cluster (whole-cluster behaviours).
    pub shared_behaviors: usize,
    /// Individual leaves per cluster (per-state behaviours).
    pub individual: usize,
    /// Probability of a `-` in an output position.
    pub output_dc: f64,
    /// When set (and there is at least one input), a second, offset
    /// clustering pass runs on the other half of the input space (split on
    /// input 0), producing *overlapping* state groups, as real controllers
    /// exhibit. Determinism is preserved because the two passes cover
    /// disjoint input subspaces.
    pub overlap: bool,
    /// RNG seed (fully deterministic generation).
    pub seed: u64,
}

impl BenchmarkSpec {
    /// A reasonable default shape for `states` states.
    pub fn sized(name: &'static str, states: usize) -> Self {
        BenchmarkSpec {
            name,
            states,
            inputs: 4,
            outputs: 3,
            cluster_size: 3,
            shared_behaviors: 2,
            individual: 2,
            output_dc: 0.15,
            overlap: true,
            seed: 0x10e2c,
        }
    }
}

/// Splits the full input space into `leaves` disjoint cubes by repeatedly
/// splitting a cube with free positions on a random variable.
fn leaf_cubes(
    rng: &mut SplitMix64,
    inputs: usize,
    leaves: usize,
    base: InputCube,
) -> Vec<InputCube> {
    let free_vars = base.iter().filter(|l| l.is_none()).count();
    let mut cubes: Vec<InputCube> = vec![base];
    let max_leaves = leaves.min(1 << free_vars.min(20));
    while cubes.len() < max_leaves {
        // Pick the splittable cube with the most free variables (ties by
        // position), so leaves stay balanced.
        let Some(idx) = (0..cubes.len())
            .filter(|&i| cubes[i].iter().any(|l| l.is_none()))
            .max_by_key(|&i| cubes[i].iter().filter(|l| l.is_none()).count())
        else {
            break;
        };
        let free: Vec<usize> = (0..inputs).filter(|&v| cubes[idx][v].is_none()).collect();
        let v = free[rng.gen_range(0..free.len())];
        let mut zero = cubes[idx].clone();
        let mut one = cubes[idx].clone();
        zero[v] = Some(false);
        one[v] = Some(true);
        cubes[idx] = zero;
        cubes.push(one);
    }
    cubes
}

fn random_output(rng: &mut SplitMix64, width: usize, dc: f64) -> Vec<Option<bool>> {
    (0..width)
        .map(|_| {
            if rng.gen_bool(dc) {
                None
            } else {
                Some(rng.gen_bool(0.5))
            }
        })
        .collect()
}

/// Generates a deterministic synthetic FSM from a spec. The result is
/// deterministic and completely specified: every state's transitions
/// partition the input space.
///
/// The same spec always produces the same machine.
///
/// # Panics
///
/// Panics if `states == 0`, `cluster_size == 0`, or no leaves are
/// requested.
pub fn generate(spec: &BenchmarkSpec) -> Fsm {
    assert!(spec.states > 0, "need at least one state");
    assert!(spec.cluster_size > 0, "clusters need at least one state");
    assert!(
        spec.shared_behaviors + spec.individual > 0,
        "need at least one leaf per cluster"
    );
    let mut rng = SplitMix64::new(
        spec.seed
            ^ spec
                .name
                .bytes()
                .fold(0u64, |h, b| h.wrapping_mul(131).wrapping_add(b as u64)),
    );
    let names: Vec<String> = (0..spec.states).map(|i| format!("s{i}")).collect();
    let mut fsm = Fsm::new(spec.name, spec.inputs, spec.outputs, names);
    fsm.set_reset(0);

    let chunked: Vec<Vec<usize>> = (0..spec.states)
        .collect::<Vec<_>>()
        .chunks(spec.cluster_size)
        .map(|c| c.to_vec())
        .collect();
    // Passes: (input-subspace base, clusters). With overlap enabled, a
    // second pass clusters the states with an offset of half a cluster,
    // restricted to the other half of the input space.
    let mut passes: Vec<Pass> = Vec::new();
    if spec.overlap && spec.inputs >= 1 && spec.states > spec.cluster_size {
        let mut base0 = vec![None; spec.inputs];
        base0[0] = Some(false);
        passes.push((base0, chunked));
        let offset = (spec.cluster_size / 2).max(1);
        let rotated: Vec<usize> = (0..spec.states)
            .map(|i| (i + offset) % spec.states)
            .collect();
        let offset_clusters: Vec<Vec<usize>> = rotated
            .chunks(spec.cluster_size)
            .map(|c| c.to_vec())
            .collect();
        let mut base1 = vec![None; spec.inputs];
        base1[0] = Some(true);
        passes.push((base1, offset_clusters));
    } else {
        passes.push((vec![None; spec.inputs], chunked));
    }

    for (base, clusters) in &passes {
        for cluster in clusters {
            let leaves = leaf_cubes(
                &mut rng,
                spec.inputs,
                spec.shared_behaviors + spec.individual,
                base.clone(),
            );
            for (li, input) in leaves.iter().enumerate() {
                if li < spec.shared_behaviors.min(leaves.len()) {
                    // Shared behaviour: the whole cluster agrees.
                    let to = rng.gen_range(0..spec.states);
                    let output = random_output(&mut rng, spec.outputs, spec.output_dc);
                    for &from in cluster {
                        fsm.add_transition(Transition {
                            input: input.clone(),
                            from,
                            to,
                            output: output.clone(),
                        });
                    }
                } else {
                    // Individual behaviour: per-state successors with a bias
                    // toward nearby states (chains, as in real controllers).
                    for &from in cluster {
                        let to = if rng.gen_bool(0.7) {
                            (from + rng.gen_range(1..4)) % spec.states
                        } else {
                            rng.gen_range(0..spec.states)
                        };
                        fsm.add_transition(Transition {
                            input: input.clone(),
                            from,
                            to,
                            output: random_output(&mut rng, spec.outputs, spec.output_dc),
                        });
                    }
                }
            }
        }
    }
    fsm
}

/// The benchmark suite shaped after the paper's tables (names and state
/// counts from Tables 1–3; widths and densities chosen to produce
/// constraint sets of the same order as the paper reports).
pub fn suite() -> Vec<Fsm> {
    let specs: Vec<BenchmarkSpec> = vec![
        BenchmarkSpec {
            inputs: 6,
            outputs: 6,
            ..BenchmarkSpec::sized("bbsse", 16)
        },
        BenchmarkSpec {
            inputs: 6,
            outputs: 6,
            cluster_size: 2,
            individual: 3,
            ..BenchmarkSpec::sized("cse", 16)
        },
        BenchmarkSpec {
            inputs: 3,
            outputs: 3,
            cluster_size: 4,
            shared_behaviors: 3,
            individual: 3,
            ..BenchmarkSpec::sized("dk16", 27)
        },
        BenchmarkSpec {
            inputs: 3,
            outputs: 3,
            cluster_size: 3,
            shared_behaviors: 3,
            seed: 0xd16a,
            ..BenchmarkSpec::sized("dk16x", 27)
        },
        BenchmarkSpec {
            inputs: 2,
            outputs: 3,
            cluster_size: 3,
            ..BenchmarkSpec::sized("dk512", 15)
        },
        BenchmarkSpec {
            inputs: 2,
            outputs: 1,
            cluster_size: 4,
            shared_behaviors: 2,
            individual: 2,
            ..BenchmarkSpec::sized("donfile", 24)
        },
        BenchmarkSpec {
            inputs: 6,
            outputs: 8,
            ..BenchmarkSpec::sized("ex1", 20)
        },
        BenchmarkSpec {
            inputs: 6,
            outputs: 8,
            seed: 0xe11,
            ..BenchmarkSpec::sized("exlinp", 20)
        },
        BenchmarkSpec {
            inputs: 6,
            outputs: 2,
            cluster_size: 2,
            individual: 3,
            ..BenchmarkSpec::sized("keyb", 19)
        },
        BenchmarkSpec {
            inputs: 8,
            outputs: 5,
            cluster_size: 2,
            individual: 3,
            ..BenchmarkSpec::sized("kirkman", 16)
        },
        BenchmarkSpec {
            inputs: 5,
            outputs: 5,
            ..BenchmarkSpec::sized("master", 15)
        },
        BenchmarkSpec {
            inputs: 6,
            outputs: 8,
            cluster_size: 2,
            shared_behaviors: 1,
            individual: 3,
            overlap: false,
            ..BenchmarkSpec::sized("planet", 48)
        },
        BenchmarkSpec {
            inputs: 6,
            outputs: 5,
            ..BenchmarkSpec::sized("s1", 20)
        },
        BenchmarkSpec {
            inputs: 6,
            outputs: 5,
            seed: 0x51a,
            ..BenchmarkSpec::sized("s1a", 20)
        },
        BenchmarkSpec {
            inputs: 7,
            outputs: 7,
            cluster_size: 3,
            ..BenchmarkSpec::sized("sand", 32)
        },
        BenchmarkSpec {
            inputs: 7,
            outputs: 8,
            cluster_size: 3,
            ..BenchmarkSpec::sized("styr", 30)
        },
        BenchmarkSpec {
            inputs: 5,
            outputs: 3,
            cluster_size: 4,
            shared_behaviors: 4,
            individual: 4,
            ..BenchmarkSpec::sized("tbk", 32)
        },
        BenchmarkSpec {
            inputs: 4,
            outputs: 4,
            cluster_size: 4,
            shared_behaviors: 1,
            individual: 1,
            ..BenchmarkSpec::sized("viterbi", 68)
        },
        BenchmarkSpec {
            inputs: 5,
            outputs: 6,
            cluster_size: 2,
            shared_behaviors: 1,
            individual: 3,
            overlap: false,
            ..BenchmarkSpec::sized("vmecont", 32)
        },
    ];
    specs.iter().map(generate).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let spec = BenchmarkSpec::sized("det", 10);
        let a = generate(&spec);
        let b = generate(&spec);
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let a = generate(&BenchmarkSpec::sized("x", 10));
        let b = generate(&BenchmarkSpec {
            seed: 99,
            ..BenchmarkSpec::sized("x", 10)
        });
        assert_ne!(a, b);
    }

    #[test]
    fn machines_are_deterministic_and_complete() {
        // Per state, the input cubes must partition the input space.
        for fsm in suite().iter().take(6) {
            for s in 0..fsm.num_states() {
                let cubes: Vec<&Vec<Option<bool>>> =
                    fsm.transitions_from(s).map(|t| &t.input).collect();
                for m in 0..(1usize << fsm.num_inputs()) {
                    let hits = cubes
                        .iter()
                        .filter(|c| {
                            c.iter().enumerate().all(|(v, l)| match l {
                                None => true,
                                Some(b) => *b == (m >> v & 1 == 1),
                            })
                        })
                        .count();
                    assert_eq!(
                        hits,
                        1,
                        "{} state {s}: minterm {m:b} hit {hits} cubes",
                        fsm.name()
                    );
                }
            }
        }
    }

    #[test]
    fn leaf_cubes_partition_the_space() {
        let mut rng = SplitMix64::new(7);
        for leaves in 1..=8 {
            let cubes = leaf_cubes(&mut rng, 3, leaves, vec![None; 3]);
            for m in 0..8usize {
                let hits = cubes
                    .iter()
                    .filter(|c| {
                        c.iter().enumerate().all(|(v, l)| match l {
                            None => true,
                            Some(b) => *b == (m >> v & 1 == 1),
                        })
                    })
                    .count();
                assert_eq!(hits, 1);
            }
        }
    }

    #[test]
    fn suite_matches_paper_state_counts() {
        let suite = suite();
        let counts: std::collections::HashMap<&str, usize> =
            suite.iter().map(|f| (f.name(), f.num_states())).collect();
        assert_eq!(counts["bbsse"], 16);
        assert_eq!(counts["dk16"], 27);
        assert_eq!(counts["planet"], 48);
        assert_eq!(counts["viterbi"], 68);
        assert_eq!(counts["vmecont"], 32);
        assert_eq!(suite.len(), 19);
    }

    #[test]
    fn generated_machines_round_trip_kiss2() {
        // Parsing renumbers states by first appearance, so compare the
        // printed text (state *names* are preserved verbatim).
        for fsm in suite().iter().take(4) {
            let text = fsm.to_kiss2();
            let again = Fsm::parse_kiss2(&text).unwrap();
            assert_eq!(fsm.num_states(), again.num_states());
            assert_eq!(text, again.to_kiss2());
        }
    }

    #[test]
    fn every_state_has_an_outgoing_transition() {
        for fsm in suite() {
            for s in 0..fsm.num_states() {
                assert!(
                    fsm.transitions_from(s).count() > 0,
                    "{}: state {s} is dead",
                    fsm.name()
                );
            }
        }
    }
}
