#![warn(missing_docs)]
#![forbid(unsafe_code)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

//! Finite state machine substrate: the FSM model, KISS2 parsing/printing,
//! and the deterministic benchmark suite used by the evaluation harness.
//!
//! The paper's experiments run on the MCNC FSM benchmarks (`bbsse`, `cse`,
//! `dk16`, …, `planet`, `tbk`, `vmecont`). The original KISS2 files are not
//! distributable here, so this crate provides:
//!
//! * a full [KISS2](Fsm::parse_kiss2) parser and printer, so real benchmark
//!   files drop in unchanged, and
//! * a deterministic synthetic [generator](generate) plus a [`suite`]
//!   reproducing each paper benchmark's *shape* (name, state count, input
//!   and output width, transition density). The paper's claims are relative
//!   (who wins, where prime counts blow up), which depends on the structure
//!   of the constraint sets, not on bit-exact MCNC identity; see DESIGN.md.
//!
//! # Examples
//!
//! ```
//! use ioenc_kiss::Fsm;
//!
//! let text = "\
//! .i 1
//! .o 1
//! .p 2
//! .s 2
//! 0 a a 0
//! 1 a b 1
//! .e
//! ";
//! let fsm = Fsm::parse_kiss2(text)?;
//! assert_eq!(fsm.num_states(), 2);
//! assert_eq!(fsm.transitions().len(), 2);
//! # Ok::<(), ioenc_core::EncodeError>(())
//! ```

mod fsm;
mod generator;
pub mod samples;

pub use fsm::{Fsm, FsmDiagnostics, Transition};
pub use generator::{generate, suite, BenchmarkSpec};
