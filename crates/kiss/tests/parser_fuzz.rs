//! Robustness: the KISS2 parser must never panic, only return errors, on
//! arbitrary input — and must round-trip everything it accepts.

use ioenc_kiss::Fsm;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn parser_never_panics(text in ".{0,400}") {
        let _ = Fsm::parse_kiss2(&text);
    }

    #[test]
    fn parser_never_panics_on_kiss_like_soup(
        lines in prop::collection::vec(
            prop_oneof![
                Just(".i 2".to_string()),
                Just(".o 1".to_string()),
                Just(".p 3".to_string()),
                Just(".s 2".to_string()),
                Just(".r a".to_string()),
                Just(".e".to_string()),
                Just(".ilb x y".to_string()),
                Just(".ob z".to_string()),
                "[01-]{0,4} [a-c] [a-c] [01-]{0,3}",
                "[.a-z0-9 -]{0,20}",
            ],
            0..12,
        )
    ) {
        let text = lines.join("\n");
        let _ = Fsm::parse_kiss2(&text);
    }

    #[test]
    fn accepted_machines_round_trip(
        ni in 1usize..4,
        no in 1usize..3,
        rows in prop::collection::vec(
            (
                prop::collection::vec(0u8..3, 1..4),
                0usize..4,
                0usize..4,
                prop::collection::vec(0u8..3, 1..3),
            ),
            1..8,
        )
    ) {
        // Build syntactically valid text from generated rows.
        let lit = |v: &u8| match v { 0 => '0', 1 => '1', _ => '-' };
        let mut text = format!(".i {ni}\n.o {no}\n");
        for (inp, from, to, out) in &rows {
            let input: String = (0..ni).map(|k| lit(inp.get(k).unwrap_or(&2))).collect();
            let output: String = (0..no).map(|k| lit(out.get(k).unwrap_or(&2))).collect();
            text.push_str(&format!("{input} q{from} q{to} {output}\n"));
        }
        text.push_str(".e\n");
        let fsm = Fsm::parse_kiss2(&text).expect("valid by construction");
        let printed = fsm.to_kiss2();
        let again = Fsm::parse_kiss2(&printed).expect("printer output reparses");
        prop_assert_eq!(printed, again.to_kiss2());
        prop_assert_eq!(fsm.transitions().len(), rows.len());
    }
}
