//! Robustness: the KISS2 parser must never panic, only return errors, on
//! arbitrary input — and must round-trip everything it accepts. Driven by
//! the workspace's deterministic PRNG.

use ioenc_kiss::Fsm;
use ioenc_rng::SplitMix64;

const SOUP: &[char] = &[
    '.', 'i', 'o', 'p', 's', 'r', 'e', 'a', 'b', 'c', 'q', 'x', 'y', 'z', '0', '1', '-', ' ', '\n',
    '\t', '2', '9',
];

fn random_soup(rng: &mut SplitMix64, max_len: usize) -> String {
    let len = rng.gen_range(0..max_len + 1);
    (0..len)
        .map(|_| SOUP[rng.gen_range(0..SOUP.len())])
        .collect()
}

#[test]
fn parser_never_panics() {
    let mut rng = SplitMix64::new(0x70);
    for _ in 0..256 {
        let text = random_soup(&mut rng, 400);
        let _ = Fsm::parse_kiss2(&text);
    }
}

#[test]
fn parser_never_panics_on_kiss_like_soup() {
    let mut rng = SplitMix64::new(0x71);
    let lits = ['0', '1', '-'];
    let states = ["a", "b", "c"];
    for _ in 0..256 {
        let nlines = rng.gen_range(0..12);
        let lines: Vec<String> = (0..nlines)
            .map(|_| match rng.gen_range(0..10) {
                0 => ".i 2".to_string(),
                1 => ".o 1".to_string(),
                2 => ".p 3".to_string(),
                3 => ".s 2".to_string(),
                4 => ".r a".to_string(),
                5 => ".e".to_string(),
                6 => ".ilb x y".to_string(),
                7 => ".ob z".to_string(),
                8 => {
                    let inp: String = (0..rng.gen_range(0..5))
                        .map(|_| lits[rng.gen_range(0..3)])
                        .collect();
                    let out: String = (0..rng.gen_range(0..4))
                        .map(|_| lits[rng.gen_range(0..3)])
                        .collect();
                    format!(
                        "{inp} {} {} {out}",
                        states[rng.gen_range(0..3)],
                        states[rng.gen_range(0..3)]
                    )
                }
                _ => random_soup(&mut rng, 20),
            })
            .collect();
        let text = lines.join("\n");
        let _ = Fsm::parse_kiss2(&text);
    }
}

#[test]
fn accepted_machines_round_trip() {
    let mut rng = SplitMix64::new(0x72);
    let lit = |v: usize| match v {
        0 => '0',
        1 => '1',
        _ => '-',
    };
    for _ in 0..256 {
        let ni = rng.gen_range(1..4);
        let no = rng.gen_range(1..3);
        let nrows = rng.gen_range(1..8);
        // Build syntactically valid text from generated rows.
        let mut text = format!(".i {ni}\n.o {no}\n");
        for _ in 0..nrows {
            let input: String = (0..ni).map(|_| lit(rng.gen_range(0..3))).collect();
            let output: String = (0..no).map(|_| lit(rng.gen_range(0..3))).collect();
            let from = rng.gen_range(0..4);
            let to = rng.gen_range(0..4);
            text.push_str(&format!("{input} q{from} q{to} {output}\n"));
        }
        text.push_str(".e\n");
        let fsm = Fsm::parse_kiss2(&text).expect("valid by construction");
        let printed = fsm.to_kiss2();
        let again = Fsm::parse_kiss2(&printed).expect("printer output reparses");
        assert_eq!(printed, again.to_kiss2());
        assert_eq!(fsm.transitions().len(), nrows);
    }
}
