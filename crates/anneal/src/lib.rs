#![warn(missing_docs)]
#![forbid(unsafe_code)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

//! Simulated-annealing encoding baseline, following the MIS-MV encoder the
//! paper compares against in Table 3.
//!
//! The state is an injective assignment of codes to symbols; moves are
//! pairwise code swaps (plus occasional moves to an unused code), accepted
//! under the Metropolis criterion with a geometric cooling schedule. The
//! cost function is pluggable ([`ioenc_core::CostFunction`]): Table 3 uses
//! the literal count of the minimized encoded constraints, which is why
//! annealing is slow — every move evaluation runs a two-level minimization,
//! exactly as the paper observes.
//!
//! # Examples
//!
//! ```
//! use ioenc_core::{ConstraintSet, CostFunction};
//! use ioenc_anneal::{anneal_encode, AnnealOptions};
//!
//! let mut cs = ConstraintSet::new(4);
//! cs.add_face([0, 1]);
//! let opts = AnnealOptions {
//!     moves_per_temp: 4,
//!     cost: CostFunction::Violations,
//!     ..Default::default()
//! };
//! let enc = anneal_encode(&cs, &opts);
//! assert_eq!(enc.width(), 2);
//! ```

use ioenc_core::{cost_of, ConstraintSet, CostFunction, Encoding};
use ioenc_rng::SplitMix64;

/// Options for [`anneal_encode`].
#[derive(Debug, Clone)]
pub struct AnnealOptions {
    /// Code length; `None` uses the minimum `⌈log₂ n⌉`.
    pub code_length: Option<usize>,
    /// Cost function to minimize.
    pub cost: CostFunction,
    /// Moves attempted per temperature point (the paper runs 1, 4 or 10).
    pub moves_per_temp: usize,
    /// Initial temperature.
    pub initial_temp: f64,
    /// Geometric cooling factor per step.
    pub cooling: f64,
    /// Temperature steps.
    pub steps: usize,
    /// RNG seed (runs are deterministic).
    pub seed: u64,
}

impl Default for AnnealOptions {
    fn default() -> Self {
        AnnealOptions {
            code_length: None,
            cost: CostFunction::Literals,
            moves_per_temp: 10,
            initial_temp: 5.0,
            cooling: 0.9,
            steps: 120,
            seed: 0x5a,
        }
    }
}

/// Anneals an injective encoding minimizing the chosen cost function.
///
/// # Panics
///
/// Panics if the requested length cannot give distinct codes or exceeds
/// 63 bits.
pub fn anneal_encode(cs: &ConstraintSet, opts: &AnnealOptions) -> Encoding {
    let n = cs.num_symbols();
    if n == 0 {
        return Encoding::new(0, Vec::new());
    }
    let min_len = usize::max(1, (usize::BITS - (n - 1).leading_zeros()) as usize);
    let width = opts.code_length.unwrap_or(min_len);
    assert!(width < 64, "codes wider than 63 bits are unsupported");
    assert!(1usize << width >= n, "length cannot give distinct codes");

    let mut rng = SplitMix64::new(opts.seed);
    let total = 1u64 << width;
    // Initial assignment: identity codes.
    let mut codes: Vec<u64> = (0..n as u64).collect();
    let mut cost = cost_of(cs, &Encoding::new(width, codes.clone()), opts.cost) as f64;
    let mut best = (cost, codes.clone());
    let mut temp = opts.initial_temp;

    for _ in 0..opts.steps {
        for _ in 0..opts.moves_per_temp {
            let mut trial = codes.clone();
            if n >= 2 && (total as usize == n || rng.gen_bool(0.7)) {
                // Swap two symbols' codes.
                let a = rng.gen_range(0..n);
                let mut b = rng.gen_range(0..n);
                while b == a {
                    b = rng.gen_range(0..n);
                }
                trial.swap(a, b);
            } else {
                // Move one symbol to an unused code.
                let s = rng.gen_range(0..n);
                let unused: Vec<u64> = (0..total).filter(|c| !trial.contains(c)).collect();
                if unused.is_empty() {
                    continue;
                }
                trial[s] = unused[rng.gen_range(0..unused.len())];
            }
            let trial_cost = cost_of(cs, &Encoding::new(width, trial.clone()), opts.cost) as f64;
            let delta = trial_cost - cost;
            if delta <= 0.0 || rng.gen_bool((-delta / temp.max(1e-9)).exp().min(1.0)) {
                codes = trial;
                cost = trial_cost;
                if cost < best.0 {
                    best = (cost, codes.clone());
                }
            }
        }
        temp *= opts.cooling;
    }
    Encoding::new(width, best.1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ioenc_core::count_violations;

    fn quick_opts() -> AnnealOptions {
        AnnealOptions {
            cost: CostFunction::Violations,
            moves_per_temp: 6,
            steps: 30,
            ..Default::default()
        }
    }

    #[test]
    fn codes_are_distinct() {
        let mut cs = ConstraintSet::new(6);
        cs.add_face([0, 1, 2]);
        let enc = anneal_encode(&cs, &quick_opts());
        let mut codes = enc.codes().to_vec();
        codes.sort_unstable();
        codes.dedup();
        assert_eq!(codes.len(), 6);
    }

    #[test]
    fn simple_instances_reach_zero_violations() {
        let mut cs = ConstraintSet::new(4);
        cs.add_face([0, 1]);
        cs.add_face([2, 3]);
        let enc = anneal_encode(&cs, &quick_opts());
        assert_eq!(count_violations(&cs, &enc), 0);
    }

    #[test]
    fn deterministic_per_seed() {
        let mut cs = ConstraintSet::new(5);
        cs.add_face([0, 4]);
        let a = anneal_encode(&cs, &quick_opts());
        let b = anneal_encode(&cs, &quick_opts());
        assert_eq!(a, b);
        let c = anneal_encode(
            &cs,
            &AnnealOptions {
                seed: 1234,
                ..quick_opts()
            },
        );
        // Different seed may (and usually does) explore differently; both
        // must still be injective.
        let mut codes = c.codes().to_vec();
        codes.sort_unstable();
        codes.dedup();
        assert_eq!(codes.len(), 5);
    }

    #[test]
    fn literal_cost_runs() {
        let mut cs = ConstraintSet::new(4);
        cs.add_face([0, 2]);
        let opts = AnnealOptions {
            cost: CostFunction::Literals,
            moves_per_temp: 2,
            steps: 10,
            ..Default::default()
        };
        let enc = anneal_encode(&cs, &opts);
        assert_eq!(enc.width(), 2);
    }

    #[test]
    fn more_moves_never_hurt_much() {
        // Sanity: the best-seen tracking keeps quality monotone-ish with
        // more search (not guaranteed in theory; holds for this instance).
        let mut cs = ConstraintSet::new(5);
        cs.add_face([0, 2, 4]);
        cs.add_face([1, 3]);
        let small = anneal_encode(
            &cs,
            &AnnealOptions {
                moves_per_temp: 1,
                steps: 5,
                cost: CostFunction::Violations,
                ..Default::default()
            },
        );
        let big = anneal_encode(&cs, &quick_opts());
        assert!(count_violations(&cs, &big) <= count_violations(&cs, &small) + 1);
    }

    #[test]
    fn empty_and_single() {
        assert_eq!(
            anneal_encode(&ConstraintSet::new(0), &quick_opts()).num_symbols(),
            0
        );
        assert_eq!(
            anneal_encode(&ConstraintSet::new(1), &quick_opts()).width(),
            1
        );
    }
}
