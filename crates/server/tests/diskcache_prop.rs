//! Differential property tests for the persistent result cache.
//!
//! A [`DiskCache`] must behave exactly like an in-memory map from
//! `(canonical key, fingerprint)` to the *last* outcome appended for
//! that pair — across random interleavings of put, get, handle reopen
//! (crash-free restart) and offline shard splitting. Every retrieved
//! outcome must round-trip byte-identically (compared via the derived
//! `Debug` rendering, which covers every field of [`CachedOutcome`]).

use ioenc_core::WorkUnits;
use ioenc_rng::SplitMix64;
use ioenc_server::cache::CachedOutcome;
use ioenc_server::exec::ModeOutcome;
use ioenc_server::DiskCache;
use std::collections::HashMap;
use std::path::PathBuf;

/// A unique, self-cleaning temp directory per test run.
struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> TempDir {
        let path =
            std::env::temp_dir().join(format!("ioenc-diskcache-prop-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&path);
        std::fs::create_dir_all(&path).expect("create temp dir");
        TempDir(path)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn random_outcome(rng: &mut SplitMix64) -> CachedOutcome {
    if rng.gen_bool(0.25) {
        return CachedOutcome::Failure {
            raw_hash: rng.next_u64(),
            json: format!(
                "{{\"ok\":false,\"error\":{{\"class\":\"limit\",\"message\":\"case {}\"}}}}",
                rng.next_u64()
            ),
            exit_code: [2u8, 4, 5, 6][rng.gen_range(0..4)],
        };
    }
    let n = rng.gen_range(1..24);
    let width = rng.gen_range(1..16);
    let canon_codes: Vec<u64> = (0..n).map(|_| rng.next_u64() >> (64 - width)).collect();
    let work = WorkUnits {
        num_initial: rng.gen_range(0..100),
        num_primes: rng.gen_range(0..1000),
        raise_attempts: rng.next_u64() >> 40,
        evals: rng.next_u64() >> 40,
        espresso_iters: rng.next_u64() >> 48,
        ps_steps: rng.next_u64() >> 48,
        peak_terms: rng.gen_range(0..10_000),
        cover_nodes: rng.next_u64() >> 40,
        cover_prunes: rng.next_u64() >> 40,
        cover_tasks: rng.gen_range(0..64),
    };
    let mode = match rng.gen_range(0..3) {
        0 => ModeOutcome::Exact {
            optimal: rng.gen_bool(0.5),
        },
        1 => ModeOutcome::Heuristic {
            converged: rng.gen_bool(0.5),
        },
        _ => ModeOutcome::Auto {
            rung: ["exact", "bounded exact", "heuristic"][rng.gen_range(0..3)].to_string(),
            optimal: rng.gen_bool(0.5),
        },
    };
    CachedOutcome::Success {
        width,
        canon_codes,
        work,
        mode,
    }
}

/// Keys drawn across the full u128 range so every shard-count in play
/// (the top bits select the shard) actually receives traffic.
fn random_key(rng: &mut SplitMix64) -> u128 {
    (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())
}

fn assert_agrees(
    disk: &DiskCache,
    model: &HashMap<(u128, String), CachedOutcome>,
    universe: &[(u128, String)],
    when: &str,
) {
    for (key, fp) in universe {
        let got = disk.lookup(*key, fp).map(|o| format!("{o:?}"));
        let want = model.get(&(*key, fp.clone())).map(|o| format!("{o:?}"));
        assert_eq!(got, want, "{when}: divergence at key {key:032x} fp {fp}");
    }
}

#[test]
fn random_interleavings_match_the_model_map() {
    for seed in [0x5eed_0001u64, 0xd15c_0002, 0xcafe_0003] {
        let mut rng = SplitMix64::new(seed);
        let dir = TempDir::new(&format!("interleave-{seed:x}"));
        let mut shards = [1u32, 2, 4][rng.gen_range(0..3)];
        let mut disk = DiskCache::open(&dir.0, shards).expect("open");
        assert_eq!(disk.shard_count(), shards);

        // A bounded universe of keys/fingerprints so puts collide and
        // shadowing (last write wins) is actually exercised.
        let universe: Vec<(u128, String)> = (0..24)
            .map(|i| (random_key(&mut rng), format!("mode=m{};budget=b{i}", i % 3)))
            .collect();
        let mut model: HashMap<(u128, String), CachedOutcome> = HashMap::new();

        for step in 0..400 {
            match rng.gen_range(0..100) {
                // Put: append to disk, overwrite in the model.
                0..=44 => {
                    let (key, fp) = universe[rng.gen_range(0..universe.len())].clone();
                    let outcome = random_outcome(&mut rng);
                    disk.append(key, &fp, &outcome);
                    model.insert((key, fp), outcome);
                }
                // Get: a random probe (present or absent) must agree.
                45..=89 => {
                    let (key, fp) = universe[rng.gen_range(0..universe.len())].clone();
                    let got = disk.lookup(key, &fp).map(|o| format!("{o:?}"));
                    let want = model.get(&(key, fp.clone())).map(|o| format!("{o:?}"));
                    assert_eq!(got, want, "seed {seed:#x} step {step}");
                }
                // Reopen: drop the handle (a clean restart) and rebuild
                // the index from the logs alone.
                90..=95 => {
                    drop(disk);
                    disk = DiskCache::open(&dir.0, shards).expect("reopen");
                    assert_eq!(disk.shard_count(), shards, "meta pins the shard count");
                }
                // Offline shard split: close, rewrite the logs into
                // 2x or 4x as many shards, reopen. Nothing may be lost.
                _ => {
                    let factor = rng.gen_range(1..3) as u32;
                    if shards << factor <= 256 {
                        drop(disk);
                        shards = DiskCache::split_shards(&dir.0, factor).expect("split");
                        disk = DiskCache::open(&dir.0, shards).expect("reopen after split");
                        assert_eq!(disk.shard_count(), shards);
                        assert_agrees(&disk, &model, &universe, "after split");
                    }
                }
            }
        }
        assert_agrees(&disk, &model, &universe, "final sweep");
        assert_eq!(
            disk.indexed_records(),
            model.len(),
            "index holds exactly one live record per (key, fingerprint)"
        );
        assert_eq!(
            disk.stats()
                .rejected
                .load(std::sync::atomic::Ordering::Relaxed),
            0
        );
        assert_eq!(
            disk.stats()
                .torn_bytes
                .load(std::sync::atomic::Ordering::Relaxed),
            0
        );
    }
}

/// Two handles on one directory (the multi-process topology, in one
/// process): every append through either handle must become visible to
/// the other, and both must agree with the model at the end.
#[test]
fn two_handles_share_one_directory() {
    let mut rng = SplitMix64::new(0x2b0b_cafe);
    let dir = TempDir::new("two-handles");
    let a = DiskCache::open(&dir.0, 4).expect("open a");
    let b = DiskCache::open(&dir.0, 4).expect("open b");
    let universe: Vec<(u128, String)> = (0..16)
        .map(|i| (random_key(&mut rng), format!("fp{i}")))
        .collect();
    let mut model: HashMap<(u128, String), CachedOutcome> = HashMap::new();

    for _ in 0..200 {
        let (key, fp) = universe[rng.gen_range(0..universe.len())].clone();
        let (writer, reader) = if rng.gen_bool(0.5) {
            (&a, &b)
        } else {
            (&b, &a)
        };
        if rng.gen_bool(0.6) {
            let outcome = random_outcome(&mut rng);
            writer.append(key, &fp, &outcome);
            model.insert((key, fp.clone()), outcome);
        }
        // The *other* handle must see the latest write (lookups refresh
        // from the shared log under a shared lock).
        let got = reader.lookup(key, &fp).map(|o| format!("{o:?}"));
        let want = model.get(&(key, fp)).map(|o| format!("{o:?}"));
        assert_eq!(got, want);
    }
    assert_agrees(&a, &model, &universe, "handle a");
    assert_agrees(&b, &model, &universe, "handle b");
}
