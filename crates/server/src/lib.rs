#![warn(missing_docs)]
#![forbid(unsafe_code)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

//! `ioenc serve` — a concurrent batch-encoding service (DESIGN.md §6e).
//!
//! The service answers newline-delimited JSON encode requests over stdio
//! or TCP, backed by three layers:
//!
//! * [`exec`] — the shared request pipeline: canonicalize (see
//!   [`ioenc_core::canonical_form`]), solve the canonical set, restore
//!   the codes to the caller's symbol order, and render the outcome as
//!   compact JSON. `ioenc encode --json` runs the *same* pipeline, which
//!   is what makes serve responses byte-identical to one-shot CLI output.
//! * [`cache`] — a sharded, size-bounded result cache addressed by
//!   `(canonical key, solver mode, budget fingerprint)`. Every hit is
//!   re-verified against the original constraint set, so a
//!   canonicalization bug can degrade throughput but never return a
//!   wrong code.
//! * [`server`] — the transport: a `std::thread::scope` worker pool fed
//!   by a bounded [`queue`] that sheds load with an explicit
//!   `overloaded` response, per-request budgets wired to a shared
//!   [`CancelToken`](ioenc_core::CancelToken), inline `stats` and
//!   `shutdown` operations, and graceful drain on shutdown.
//!
//! # Protocol
//!
//! One JSON object per line in, one per line out; responses carry the
//! request's `id` and may arrive out of order:
//!
//! ```text
//! → {"id":1,"op":"encode","text":"symbols: a b c d\n(b,c)\n(c,d)\n"}
//! ← {"id":1,"result":{"ok":true,"key":"…","mode":"exact",…}}
//! → {"id":2,"op":"stats"}
//! ← {"id":2,"result":{"ok":true,"workers":4,"queue":{…},"cache":{…}}}
//! → {"id":3,"op":"shutdown"}
//! ← {"id":3,"result":{"ok":true,"shutting_down":true}}
//! ```
//!
//! The `result` object of an `encode` response is byte-for-byte the
//! stdout of `ioenc encode --json` on the same input, for every worker
//! count and cache state.

pub mod cache;
pub mod exec;
pub mod queue;
pub mod server;

pub use cache::{CachedOutcome, ResultCache};
pub use exec::{
    outcome, parse_constraint_text, solve_fresh, EncodeResult, EncodeSpec, Mode, ModeOutcome,
    Outcome,
};
pub use server::{serve_stdio, serve_tcp, ServeOptions};
