#![warn(missing_docs)]
// `deny` rather than `forbid`: the epoll backend in `poller` opts back in
// with a scoped, documented `#[allow(unsafe_code)]` for its raw-syscall
// module (the same pattern as `ioenc_bitset`'s SIMD kernels). Everything
// else in the crate remains safe code.
#![deny(unsafe_code)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

//! `ioenc serve` — a concurrent batch-encoding service (DESIGN.md §6e).
//!
//! The service answers newline-delimited JSON encode requests over stdio
//! or TCP, backed by three layers:
//!
//! * [`exec`] — the shared request pipeline: canonicalize (see
//!   [`ioenc_core::canonical_form`]), solve the canonical set, restore
//!   the codes to the caller's symbol order, and render the outcome as
//!   compact JSON. `ioenc encode --json` runs the *same* pipeline, which
//!   is what makes serve responses byte-identical to one-shot CLI output.
//! * [`cache`] — a sharded, size-bounded result cache addressed by
//!   `(canonical key, solver mode, budget fingerprint)`. Every hit is
//!   re-verified against the original constraint set, so a
//!   canonicalization bug can degrade throughput but never return a
//!   wrong code.
//! * [`server`] — the transport: a `std::thread::scope` worker pool fed
//!   by a bounded [`queue`] that sheds load with an explicit
//!   `overloaded` response, per-request budgets wired to a shared
//!   [`CancelToken`](ioenc_core::CancelToken), inline `stats` and
//!   `shutdown` operations, and graceful drain on shutdown. TCP
//!   connections are served by a single readiness-driven event loop
//!   ([`poller`], epoll on Linux) rather than a thread per connection,
//!   speaking both the NDJSON protocol and HTTP/1.1 ([`http`]) on the
//!   same port.
//! * [`diskcache`] — an optional persistent tier under [`cache`]: an
//!   append-only, checksummed, crash-recovering record log that any
//!   number of server processes share through `flock`-based
//!   coordination (DESIGN.md §6h).
//!
//! # Protocol (v1)
//!
//! One JSON object per line in, one per line out; responses carry the
//! request's `id`, the protocol version `v`, and may arrive out of
//! order. Requests may pin a `"v"` (absent means 1); an unsupported
//! version gets a typed `protocol` error:
//!
//! ```text
//! → {"id":1,"op":"encode","text":"symbols: a b c d\n(b,c)\n(c,d)\n"}
//! ← {"id":1,"v":1,"result":{"ok":true,"key":"…","mode":"exact",…}}
//! → {"id":2,"op":"stats"}
//! ← {"id":2,"v":1,"result":{"ok":true,"workers":4,"sessions":0,…}}
//! → {"id":3,"op":"shutdown"}
//! ← {"id":3,"v":1,"result":{"ok":true,"shutting_down":true}}
//! ```
//!
//! The `result` object of an `encode` response is byte-for-byte the
//! stdout of `ioenc encode --json` on the same input, for every worker
//! count and cache state.
//!
//! Incremental sessions add three operations (see [`session`]):
//!
//! ```text
//! → {"id":4,"op":"open","text":"symbols: a b c d\n(a,b)\n(c,d)\n"}
//! ← {"id":4,"v":1,"result":{"ok":true,"session":1,…,"reuse":{…}}}
//! → {"id":5,"op":"delta","session":1,"add":["(b,c)"],"remove":["(c,d)"]}
//! ← {"id":5,"v":1,"result":{"ok":true,"session":1,…,"reuse":{"incremental":true,…}}}
//! → {"id":6,"op":"close","session":1}
//! ← {"id":6,"v":1,"result":{"ok":true,"session":1,"closed":true}}
//! ```

pub mod cache;
pub mod diskcache;
pub mod exec;
pub mod http;
pub mod poller;
pub mod queue;
pub mod server;
pub mod session;

pub use cache::{CachedOutcome, ResultCache};
pub use diskcache::DiskCache;
pub use exec::{
    outcome, parse_constraint_text, solve_fresh, EncodeResult, EncodeSpec, Mode, ModeOutcome,
    Outcome, PROTOCOL_VERSION,
};
pub use server::{serve_stdio, serve_tcp, ServeOptions};
pub use session::SessionRegistry;
