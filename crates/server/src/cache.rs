//! The content-addressed result cache (DESIGN.md §6e).
//!
//! Entries are keyed by `(canonical key, fingerprint)` where the
//! fingerprint encodes the solver mode and every deterministic budget
//! knob (deadline-budgeted requests bypass the cache entirely — their
//! outcome is timing-dependent and must never be replayed). Successful
//! entries store the *canonical-order* codes plus the deterministic
//! [`WorkUnits`]; the caller remaps them through the request's own
//! [`CanonicalForm`](ioenc_core::CanonicalForm) and re-verifies against
//! the original constraint set on every hit. Failure entries additionally
//! carry a hash of the raw request text and only replay for byte-identical
//! input, because rendered failures (lint spans, constraint indices)
//! refer to the original spelling.
//!
//! The store is sharded 16 ways; each shard is bounded and evicts in
//! insertion order (a FIFO ring — "LRU by insertion" — which is cheap,
//! deterministic, and good enough for a cache whose hits are dominated by
//! bursts of identical requests).
//!
//! When constructed [`ResultCache::with_disk`], the in-memory store
//! becomes a first tier over a [`DiskCache`] (DESIGN.md §6h): memory
//! misses fall through to the append-only log (promoting disk hits into
//! memory), inserts append to it, and [`ResultCache::begin_solve`] hands
//! out cross-process single-flight locks so a corpus split between
//! several server processes sharing one cache directory still solves
//! each canonical key exactly once.

use crate::diskcache::{DiskCache, SolveGuard};
use crate::exec::ModeOutcome;
use ioenc_core::WorkUnits;
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

const SHARDS: usize = 16;

/// One stored outcome.
#[derive(Debug, Clone)]
pub enum CachedOutcome {
    /// A solved encoding, in canonical symbol order.
    Success {
        /// Code length in bits.
        width: usize,
        /// One code per canonical symbol index.
        canon_codes: Vec<u64>,
        /// The deterministic work counters of the solve.
        work: WorkUnits,
        /// Mode-specific result detail (`optimal`, `converged`, rung).
        mode: ModeOutcome,
    },
    /// A typed failure, replayed only for byte-identical raw input.
    Failure {
        /// Hash of the raw request text that produced the failure.
        raw_hash: u64,
        /// The rendered failure JSON (one line, no trailing newline).
        json: String,
        /// The CLI exit code of the failure class.
        exit_code: u8,
    },
}

#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct Key {
    canonical: u128,
    fingerprint: String,
}

#[derive(Default)]
struct Shard {
    map: HashMap<Key, CachedOutcome>,
    ring: VecDeque<Key>,
}

/// Sharded, size-bounded result cache with hit/miss/eviction counters,
/// optionally backed by a persistent [`DiskCache`] tier.
pub struct ResultCache {
    shards: Vec<Mutex<Shard>>,
    shard_capacity: usize,
    capacity: usize,
    disk: Option<DiskCache>,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    verify_failures: AtomicU64,
}

impl ResultCache {
    /// Creates a cache bounded to roughly `capacity` entries (at least
    /// one per shard; the per-shard bound is `ceil(capacity / 16)`).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        ResultCache {
            shards: (0..SHARDS).map(|_| Mutex::new(Shard::default())).collect(),
            shard_capacity: capacity.div_ceil(SHARDS).max(1),
            capacity,
            disk: None,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            verify_failures: AtomicU64::new(0),
        }
    }

    /// As [`ResultCache::new`], layered over a persistent disk tier.
    pub fn with_disk(capacity: usize, disk: DiskCache) -> Self {
        let mut cache = ResultCache::new(capacity);
        cache.disk = Some(disk);
        cache
    }

    /// The disk tier, when one is attached.
    pub fn disk(&self) -> Option<&DiskCache> {
        self.disk.as_ref()
    }

    /// Takes the cross-process single-flight lock for `(canonical,
    /// fingerprint)`. `None` when there is no disk tier (in-process
    /// callers already de-duplicate well enough through the memory map)
    /// or the lock file cannot be created; the caller then just solves.
    pub fn begin_solve(&self, canonical: u128, fingerprint: &str) -> Option<SolveGuard> {
        self.disk
            .as_ref()
            .and_then(|d| d.solve_guard(canonical, fingerprint))
    }

    fn shard(&self, canonical: u128) -> &Mutex<Shard> {
        &self.shards[(canonical as u64 as usize) % SHARDS]
    }

    /// Looks up `(canonical, fingerprint)`. A stored failure only counts
    /// as a hit when `raw_hash` matches the input that produced it; a
    /// mismatch is a miss (the permuted spelling must re-solve so its
    /// diagnostics point at its own constraints).
    pub fn lookup(
        &self,
        canonical: u128,
        fingerprint: &str,
        raw_hash: u64,
    ) -> Option<CachedOutcome> {
        let key = Key {
            canonical,
            fingerprint: fingerprint.to_string(),
        };
        let shard = self
            .shard(canonical)
            .lock()
            .unwrap_or_else(|p| p.into_inner());
        let mut stored = shard.map.get(&key).cloned();
        drop(shard);
        if stored.is_none() {
            if let Some(disk) = &self.disk {
                if let Some(outcome) = disk.lookup(canonical, fingerprint) {
                    // Promote into the memory tier (without re-appending).
                    self.insert_memory(canonical, fingerprint, outcome.clone());
                    stored = Some(outcome);
                }
            }
        }
        let found = match stored {
            Some(CachedOutcome::Failure { raw_hash: h, .. }) if h != raw_hash => None,
            other => other,
        };
        if found.is_some() {
            self.hits.fetch_add(1, Ordering::Relaxed);
        } else {
            self.misses.fetch_add(1, Ordering::Relaxed);
        }
        found
    }

    /// Inserts (or replaces) an outcome, evicting the shard's oldest
    /// insertions beyond its capacity. With a disk tier attached the
    /// outcome is also appended to the log, where eviction never reaches
    /// (memory bounds the working set; the log is the durable record).
    pub fn insert(&self, canonical: u128, fingerprint: &str, outcome: CachedOutcome) {
        if let Some(disk) = &self.disk {
            disk.append(canonical, fingerprint, &outcome);
        }
        self.insert_memory(canonical, fingerprint, outcome);
    }

    /// The memory-tier half of [`ResultCache::insert`] (also used to
    /// promote disk hits without re-appending them).
    fn insert_memory(&self, canonical: u128, fingerprint: &str, outcome: CachedOutcome) {
        let key = Key {
            canonical,
            fingerprint: fingerprint.to_string(),
        };
        let mut evicted = 0u64;
        {
            let mut shard = self
                .shard(canonical)
                .lock()
                .unwrap_or_else(|p| p.into_inner());
            if shard.map.insert(key.clone(), outcome).is_none() {
                shard.ring.push_back(key);
            }
            while shard.map.len() > self.shard_capacity {
                match shard.ring.pop_front() {
                    Some(old) => {
                        if shard.map.remove(&old).is_some() {
                            evicted += 1;
                        }
                    }
                    None => break,
                }
            }
        }
        if evicted > 0 {
            self.evictions.fetch_add(evicted, Ordering::Relaxed);
        }
    }

    /// Records a hit whose re-verification against the original set
    /// failed (the entry was not used; the caller re-solves).
    pub fn note_verify_failure(&self) {
        self.verify_failures.fetch_add(1, Ordering::Relaxed);
    }

    /// Total hits (including failure replays).
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Total misses (including failure raw-hash mismatches).
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Entries evicted by the per-shard insertion ring.
    pub fn evictions(&self) -> u64 {
        self.evictions.load(Ordering::Relaxed)
    }

    /// Hits discarded because the remapped encoding failed verification.
    pub fn verify_failures(&self) -> u64 {
        self.verify_failures.load(Ordering::Relaxed)
    }

    /// Entries currently stored, summed across shards.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().unwrap_or_else(|p| p.into_inner()).map.len())
            .sum()
    }

    /// `true` when no entries are stored.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The configured (approximate) total capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn success(width: usize) -> CachedOutcome {
        CachedOutcome::Success {
            width,
            canon_codes: vec![0, 1],
            work: WorkUnits::default(),
            mode: ModeOutcome::Exact { optimal: true },
        }
    }

    #[test]
    fn hit_miss_counters() {
        let c = ResultCache::new(8);
        assert!(c.lookup(1, "exact", 0).is_none());
        assert_eq!(c.misses(), 1);
        c.insert(1, "exact", success(2));
        assert!(c.lookup(1, "exact", 0).is_some());
        assert_eq!(c.hits(), 1);
        // Same canonical key, different fingerprint: a distinct entry.
        assert!(c.lookup(1, "heuristic", 0).is_none());
    }

    #[test]
    fn failure_entries_guard_on_raw_hash() {
        let c = ResultCache::new(8);
        c.insert(
            7,
            "exact",
            CachedOutcome::Failure {
                raw_hash: 42,
                json: "{\"ok\":false}".into(),
                exit_code: 6,
            },
        );
        assert!(c.lookup(7, "exact", 41).is_none(), "other spelling: miss");
        assert!(c.lookup(7, "exact", 42).is_some(), "same spelling: hit");
    }

    #[test]
    fn eviction_is_bounded_per_shard() {
        let c = ResultCache::new(16); // one entry per shard
                                      // All keys land in the same shard (same low 64 bits mod 16).
        for i in 0..5u128 {
            c.insert(16 * i, "m", success(1));
        }
        assert_eq!(c.len(), 1);
        assert_eq!(c.evictions(), 4);
        // The newest entry survived.
        assert!(c.lookup(16 * 4, "m", 0).is_some());
    }

    #[test]
    fn replacing_an_entry_does_not_grow_the_ring() {
        let c = ResultCache::new(16);
        for _ in 0..10 {
            c.insert(3, "m", success(1));
        }
        assert_eq!(c.len(), 1);
        assert_eq!(c.evictions(), 0);
    }
}
