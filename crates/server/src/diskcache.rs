//! Disk-backed content-addressed result store (DESIGN.md §6h).
//!
//! An append-only record log per key-range shard plus an in-memory
//! offset index, sharing one cache directory between any number of
//! server processes:
//!
//! ```text
//! <dir>/meta.json        {"version":1,"shards":N}   (pinned at creation)
//! <dir>/meta.lock        flock guard for meta.json
//! <dir>/shard-00.log     header + checksummed records, append-only
//! <dir>/…
//! <dir>/locks/<key>.lock per-key cross-process single-flight locks
//! ```
//!
//! **Sharding** is by key range: a key's shard is its top `log2(N)` bits,
//! so shard files can be split in place (each shard's records rehash into
//! exactly two children when the count doubles; see
//! [`DiskCache::split_shards`]).
//!
//! **Records** are `[u32 len][u64 checksum][payload]`, checksummed with
//! the same splitmix64 lane that derives canonical keys
//! ([`ioenc_rng::hash_bytes`]). The payload carries the full 128-bit
//! canonical key *and* the full fingerprint string, so an index hit is
//! verified against both before anything is returned — an offset-index
//! bug or hash collision degrades to a miss, never a wrong answer.
//!
//! **Crash safety** is recovery-on-open, not write-ordering: appends
//! happen under an exclusive `flock` of the shard file in `O_APPEND`
//! mode, and [`DiskCache::open`] scans each log under the same lock,
//! truncating a torn tail (a record whose bytes never fully made it) and
//! skipping over any record whose checksum fails but whose length field
//! still frames it (a corrupted byte mid-log must not take the records
//! after it down). A process killed with `SIGKILL` mid-append therefore
//! costs at most its half-written tail record.
//!
//! **Multi-process visibility**: readers take a *shared* `flock` before
//! scanning freshly-appended bytes, so they can never observe a record
//! mid-write; lookups past the scanned prefix trigger such a refresh.
//! [`DiskCache::solve_guard`] gives cross-process (and cross-thread)
//! single-flight per `(key, fingerprint)`: the first process to miss
//! takes the key's lock file, re-checks the log, solves, appends, and
//! releases; everyone else blocks on the lock and then finds the record.
//! The kernel drops `flock`s of killed processes, so a crash mid-solve
//! merely lets the next process solve instead of deadlocking.

use crate::exec::ModeOutcome;
use crate::CachedOutcome;
use ioenc_core::WorkUnits;
use ioenc_rng::hash_bytes;
use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// On-disk format version (file headers and `meta.json`).
pub const FORMAT_VERSION: u32 = 1;
/// Shard-file magic.
const MAGIC: &[u8; 8] = b"IOENCDC1";
/// Shard-file header: magic + version + shard index.
const HEADER_LEN: u64 = 16;
/// Record header: payload length + checksum.
const RECORD_HEADER_LEN: u64 = 12;
/// Hard cap on one record's payload; anything larger read from disk is
/// treated as log corruption.
const MAX_PAYLOAD: u32 = 32 * 1024 * 1024;
/// Seed for the record checksum lane (distinct from the canonical-key
/// lanes so a record body never checksums to its own key).
const CHECKSUM_SEED: u64 = 0xd15c_cac4_e5ee_d001;
/// Seed for fingerprint hashes (lock-file names, index keys).
const FINGERPRINT_SEED: u64 = 0xf19e_5261_9f4a_11d7;

/// Success-record tag.
const TAG_SUCCESS: u8 = 1;
/// Failure-record tag.
const TAG_FAILURE: u8 = 2;

/// Counters describing a [`DiskCache`]'s life so far (monotonic, shared
/// across threads; per-process, not persisted).
#[derive(Debug, Default)]
pub struct DiskStats {
    /// Lookups answered from the log.
    pub hits: AtomicU64,
    /// Records appended by this process.
    pub appends: AtomicU64,
    /// Records skipped or refused because their checksum failed.
    pub rejected: AtomicU64,
    /// Bytes of torn tail truncated at open.
    pub torn_bytes: AtomicU64,
    /// Valid records indexed at open (what survived the crash).
    pub recovered: AtomicU64,
    /// Incremental rescans that picked up other processes' appends.
    pub refreshes: AtomicU64,
}

struct Shard {
    file: File,
    /// Byte length of the validated prefix; everything before this offset
    /// is complete, checksummed records (or skipped corrupt ones).
    scanned: u64,
    /// `(key, fingerprint-hash)` → record offset in the log.
    index: HashMap<(u128, u64), u64>,
}

/// The persistent, shareable result store. See the module docs for the
/// format and locking protocol.
pub struct DiskCache {
    dir: PathBuf,
    shards: Vec<Mutex<Shard>>,
    shard_bits: u32,
    stats: DiskStats,
}

/// A held cross-process single-flight lock for one `(key, fingerprint)`;
/// released (by closing the lock file) on drop.
pub struct SolveGuard {
    _file: File,
}

fn io_err(msg: String) -> std::io::Error {
    std::io::Error::other(msg)
}

/// Hashes a fingerprint string with the dedicated lane.
pub fn fingerprint_hash(fingerprint: &str) -> u64 {
    hash_bytes(FINGERPRINT_SEED, fingerprint.as_bytes())
}

// ---------------------------------------------------------------------
// Payload encoding

fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_le_bytes());
}
fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}
fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let end = self.pos.checked_add(n)?;
        if end > self.buf.len() {
            return None;
        }
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Some(s)
    }
    fn u8(&mut self) -> Option<u8> {
        self.take(1).map(|b| b[0])
    }
    fn u16(&mut self) -> Option<u16> {
        self.take(2).map(|b| u16::from_le_bytes([b[0], b[1]]))
    }
    fn u32(&mut self) -> Option<u32> {
        self.take(4)
            .map(|b| u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }
    fn u64(&mut self) -> Option<u64> {
        self.take(8).map(|b| {
            let mut w = [0u8; 8];
            w.copy_from_slice(b);
            u64::from_le_bytes(w)
        })
    }
    fn u128(&mut self) -> Option<u128> {
        self.take(16).map(|b| {
            let mut w = [0u8; 16];
            w.copy_from_slice(b);
            u128::from_le_bytes(w)
        })
    }
}

/// Serializes one record payload: tag, key, fingerprint, outcome body.
fn encode_payload(key: u128, fingerprint: &str, outcome: &CachedOutcome) -> Vec<u8> {
    let mut p = Vec::with_capacity(128);
    match outcome {
        CachedOutcome::Success { .. } => p.push(TAG_SUCCESS),
        CachedOutcome::Failure { .. } => p.push(TAG_FAILURE),
    }
    p.extend_from_slice(&key.to_le_bytes());
    let fp = fingerprint.as_bytes();
    put_u16(&mut p, fp.len() as u16);
    p.extend_from_slice(fp);
    match outcome {
        CachedOutcome::Success {
            width,
            canon_codes,
            work,
            mode,
        } => {
            put_u32(&mut p, *width as u32);
            put_u32(&mut p, canon_codes.len() as u32);
            for &c in canon_codes {
                put_u64(&mut p, c);
            }
            for v in [
                work.num_initial as u64,
                work.num_primes as u64,
                work.raise_attempts,
                work.evals,
                work.espresso_iters,
                work.ps_steps,
                work.peak_terms as u64,
                work.cover_nodes,
                work.cover_prunes,
                work.cover_tasks as u64,
            ] {
                put_u64(&mut p, v);
            }
            match mode {
                ModeOutcome::Exact { optimal } => {
                    p.push(0);
                    p.push(u8::from(*optimal));
                }
                ModeOutcome::Heuristic { converged } => {
                    p.push(1);
                    p.push(u8::from(*converged));
                }
                ModeOutcome::Auto { rung, optimal } => {
                    p.push(2);
                    p.push(u8::from(*optimal));
                    let r = rung.as_bytes();
                    put_u16(&mut p, r.len() as u16);
                    p.extend_from_slice(r);
                }
            }
        }
        CachedOutcome::Failure {
            raw_hash,
            json,
            exit_code,
        } => {
            put_u64(&mut p, *raw_hash);
            p.push(*exit_code);
            let j = json.as_bytes();
            put_u32(&mut p, j.len() as u32);
            p.extend_from_slice(j);
        }
    }
    p
}

/// Decodes a payload back into `(key, fingerprint, outcome)`. `None`
/// means a structurally invalid payload (treated as a rejected record).
fn decode_payload(payload: &[u8]) -> Option<(u128, String, CachedOutcome)> {
    let mut r = Reader {
        buf: payload,
        pos: 0,
    };
    let tag = r.u8()?;
    let key = r.u128()?;
    let fp_len = r.u16()? as usize;
    let fp = String::from_utf8(r.take(fp_len)?.to_vec()).ok()?;
    let outcome = match tag {
        TAG_SUCCESS => {
            let width = r.u32()? as usize;
            let n = r.u32()? as usize;
            if n > 1_000_000 {
                return None;
            }
            let mut codes = Vec::with_capacity(n);
            for _ in 0..n {
                codes.push(r.u64()?);
            }
            let work = WorkUnits {
                num_initial: r.u64()? as usize,
                num_primes: r.u64()? as usize,
                raise_attempts: r.u64()?,
                evals: r.u64()?,
                espresso_iters: r.u64()?,
                ps_steps: r.u64()?,
                peak_terms: r.u64()? as usize,
                cover_nodes: r.u64()?,
                cover_prunes: r.u64()?,
                cover_tasks: r.u64()? as usize,
            };
            let mode = match r.u8()? {
                0 => ModeOutcome::Exact {
                    optimal: r.u8()? != 0,
                },
                1 => ModeOutcome::Heuristic {
                    converged: r.u8()? != 0,
                },
                2 => {
                    let optimal = r.u8()? != 0;
                    let rung_len = r.u16()? as usize;
                    let rung = String::from_utf8(r.take(rung_len)?.to_vec()).ok()?;
                    ModeOutcome::Auto { rung, optimal }
                }
                _ => return None,
            };
            CachedOutcome::Success {
                width,
                canon_codes: codes,
                work,
                mode,
            }
        }
        TAG_FAILURE => {
            let raw_hash = r.u64()?;
            let exit_code = r.u8()?;
            let json_len = r.u32()? as usize;
            let json = String::from_utf8(r.take(json_len)?.to_vec()).ok()?;
            CachedOutcome::Failure {
                raw_hash,
                json,
                exit_code,
            }
        }
        _ => return None,
    };
    if r.pos != payload.len() {
        return None;
    }
    Some((key, fp, outcome))
}

// ---------------------------------------------------------------------
// Log scanning

/// What one record slot in the log turned out to be.
enum Scanned {
    /// A valid record: `(key, fp_hash, next_offset)`.
    Valid(u128, u64, u64),
    /// Checksum failed but the length field frames a complete record:
    /// skip to `next_offset`.
    CorruptSkippable(u64),
    /// The bytes at this offset cannot be (or are not yet) a complete
    /// record; scanning must stop here.
    Torn,
}

/// Examines the record starting at `offset` in `bytes` (the whole file
/// image from `offset` on).
fn scan_record(bytes: &[u8], file_len: u64, offset: u64) -> Scanned {
    let avail = file_len - offset;
    if avail < RECORD_HEADER_LEN {
        return Scanned::Torn;
    }
    let at = |o: u64, n: usize| {
        let s = (o - offset) as usize;
        &bytes[s..s + n]
    };
    let len = u32::from_le_bytes(at(offset, 4).try_into().unwrap_or([0; 4]));
    if len > MAX_PAYLOAD || u64::from(len) + RECORD_HEADER_LEN > avail {
        return Scanned::Torn;
    }
    let stored_sum = u64::from_le_bytes(at(offset + 4, 8).try_into().unwrap_or([0; 8]));
    let payload = at(offset + RECORD_HEADER_LEN, len as usize);
    let next = offset + RECORD_HEADER_LEN + u64::from(len);
    if hash_bytes(CHECKSUM_SEED, payload) != stored_sum {
        return Scanned::CorruptSkippable(next);
    }
    match decode_payload(payload) {
        Some((key, fp, _)) => Scanned::Valid(key, fingerprint_hash(&fp), next),
        None => Scanned::CorruptSkippable(next),
    }
}

// ---------------------------------------------------------------------

impl DiskCache {
    /// Opens (creating if necessary) the cache directory, pinning or
    /// adopting its shard count and recovering every shard log.
    ///
    /// `requested_shards` (rounded up to a power of two, clamped to
    /// `1..=256`) only matters when the directory is fresh; an existing
    /// directory's `meta.json` wins so that every process sharing it
    /// agrees on the key-range partition.
    pub fn open(dir: &Path, requested_shards: u32) -> std::io::Result<DiskCache> {
        std::fs::create_dir_all(dir)?;
        std::fs::create_dir_all(dir.join("locks"))?;
        let shards = Self::pin_shard_count(dir, requested_shards.clamp(1, 256))?;
        let shard_bits = shards.trailing_zeros();
        let stats = DiskStats::default();
        let mut states = Vec::with_capacity(shards as usize);
        for i in 0..shards {
            states.push(Mutex::new(Self::open_shard(dir, i, &stats)?));
        }
        Ok(DiskCache {
            dir: dir.to_path_buf(),
            shards: states,
            shard_bits,
            stats,
        })
    }

    /// The directory this cache lives in.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The pinned shard count.
    pub fn shard_count(&self) -> u32 {
        self.shards.len() as u32
    }

    /// Process-lifetime counters.
    pub fn stats(&self) -> &DiskStats {
        &self.stats
    }

    fn meta_path(dir: &Path) -> PathBuf {
        dir.join("meta.json")
    }

    fn shard_path(dir: &Path, index: u32) -> PathBuf {
        dir.join(format!("shard-{index:02x}.log"))
    }

    /// Reads or writes `meta.json` under the meta lock; returns the
    /// pinned shard count.
    fn pin_shard_count(dir: &Path, requested: u32) -> std::io::Result<u32> {
        let lock = File::create(dir.join("meta.lock"))?;
        lock.lock()?;
        let meta = Self::meta_path(dir);
        let shards = match std::fs::read_to_string(&meta) {
            Ok(text) => {
                let doc = ioenc_core::json::Json::parse(&text)
                    .map_err(|e| io_err(format!("{}: {e}", meta.display())))?;
                let version = doc.get("version").and_then(|v| v.as_u64()).unwrap_or(0);
                if version != u64::from(FORMAT_VERSION) {
                    return Err(io_err(format!(
                        "{}: format version {version} (this build speaks {FORMAT_VERSION})",
                        meta.display()
                    )));
                }
                let n = doc
                    .get("shards")
                    .and_then(|v| v.as_u64())
                    .ok_or_else(|| io_err(format!("{}: missing shard count", meta.display())))?;
                u32::try_from(n)
                    .map_err(|_| io_err(format!("{}: shard count {n}", meta.display())))?
            }
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                let n = requested.next_power_of_two();
                std::fs::write(
                    &meta,
                    format!("{{\"version\":{FORMAT_VERSION},\"shards\":{n}}}\n"),
                )?;
                n
            }
            Err(e) => return Err(e),
        };
        if !shards.is_power_of_two() || shards > 4096 {
            return Err(io_err(format!(
                "{}: shard count {shards} is not a power of two in range",
                meta.display()
            )));
        }
        Ok(shards)
    }

    /// Opens one shard log and replays it: validates the header (writing
    /// a fresh one into an empty file), indexes every valid record,
    /// skips corrupt-but-framed ones, and truncates a torn tail. Runs
    /// under the shard file's exclusive `flock`, so concurrent appenders
    /// and scanners in other processes are excluded.
    fn open_shard(dir: &Path, index: u32, stats: &DiskStats) -> std::io::Result<Shard> {
        let path = Self::shard_path(dir, index);
        let mut file = OpenOptions::new()
            .read(true)
            .append(true)
            .create(true)
            .open(&path)?;
        file.lock()?;
        let result = Self::replay_shard(&mut file, &path, index, stats);
        file.unlock()?;
        let (scanned, index_map) = result?;
        Ok(Shard {
            file,
            scanned,
            index: index_map,
        })
    }

    #[allow(clippy::type_complexity)]
    fn replay_shard(
        file: &mut File,
        path: &Path,
        index: u32,
        stats: &DiskStats,
    ) -> std::io::Result<(u64, HashMap<(u128, u64), u64>)> {
        let len = file.metadata()?.len();
        if len == 0 {
            let mut header = Vec::with_capacity(HEADER_LEN as usize);
            header.extend_from_slice(MAGIC);
            put_u32(&mut header, FORMAT_VERSION);
            put_u32(&mut header, index);
            file.write_all(&header)?;
            return Ok((HEADER_LEN, HashMap::new()));
        }
        if len < HEADER_LEN {
            // Not even a header made it: a torn creation. Start over.
            stats.torn_bytes.fetch_add(len, Ordering::Relaxed);
            file.set_len(0)?;
            return Self::replay_shard(file, path, index, stats);
        }
        let mut bytes = Vec::with_capacity(len as usize);
        (&*file).seek(SeekFrom::Start(0))?;
        (&*file).take(len).read_to_end(&mut bytes)?;
        if &bytes[..8] != MAGIC {
            return Err(io_err(format!("{}: bad magic", path.display())));
        }
        let version = u32::from_le_bytes(bytes[8..12].try_into().unwrap_or([0; 4]));
        if version != FORMAT_VERSION {
            return Err(io_err(format!(
                "{}: format version {version} (this build speaks {FORMAT_VERSION})",
                path.display()
            )));
        }
        let mut map = HashMap::new();
        let mut offset = HEADER_LEN;
        while offset < len {
            match scan_record(&bytes[offset as usize..], len, offset) {
                Scanned::Valid(key, fp_hash, next) => {
                    map.insert((key, fp_hash), offset);
                    stats.recovered.fetch_add(1, Ordering::Relaxed);
                    offset = next;
                }
                Scanned::CorruptSkippable(next) => {
                    stats.rejected.fetch_add(1, Ordering::Relaxed);
                    offset = next;
                }
                Scanned::Torn => {
                    stats.torn_bytes.fetch_add(len - offset, Ordering::Relaxed);
                    file.set_len(offset)?;
                    break;
                }
            }
        }
        Ok((offset.min(len), map))
    }

    fn shard_of(&self, key: u128) -> usize {
        if self.shard_bits == 0 {
            0
        } else {
            (key >> (128 - self.shard_bits)) as usize
        }
    }

    /// Scans records appended (by any process) since the last scan.
    /// Takes a shared `flock` so no appender is mid-record; never
    /// truncates or skips — an invalid record here simply stops the
    /// refresh (reopening recovers it).
    fn refresh(&self, shard: &mut Shard) -> std::io::Result<()> {
        let len = shard.file.metadata()?.len();
        if len <= shard.scanned {
            return Ok(());
        }
        shard.file.lock_shared()?;
        let result = (|| -> std::io::Result<()> {
            let len = shard.file.metadata()?.len();
            let mut bytes = Vec::new();
            (&shard.file).seek(SeekFrom::Start(shard.scanned))?;
            (&shard.file)
                .take(len - shard.scanned)
                .read_to_end(&mut bytes)?;
            let mut offset = shard.scanned;
            while offset < len {
                match scan_record(&bytes[(offset - shard.scanned) as usize..], len, offset) {
                    Scanned::Valid(key, fp_hash, next) => {
                        shard.index.insert((key, fp_hash), offset);
                        offset = next;
                    }
                    Scanned::CorruptSkippable(next) => {
                        self.stats.rejected.fetch_add(1, Ordering::Relaxed);
                        offset = next;
                    }
                    Scanned::Torn => break,
                }
            }
            shard.scanned = offset;
            Ok(())
        })();
        shard.file.unlock()?;
        self.stats.refreshes.fetch_add(1, Ordering::Relaxed);
        result
    }

    /// Reads and fully validates the record at `offset`; returns the
    /// outcome only if key and fingerprint match exactly.
    fn read_record(
        &self,
        shard: &Shard,
        offset: u64,
        key: u128,
        fingerprint: &str,
    ) -> Option<CachedOutcome> {
        let read = |n: u64, at: u64| -> Option<Vec<u8>> {
            let mut buf = vec![0u8; n as usize];
            (&shard.file).seek(SeekFrom::Start(at)).ok()?;
            (&shard.file).read_exact(&mut buf).ok()?;
            Some(buf)
        };
        let header = read(RECORD_HEADER_LEN, offset)?;
        let len = u32::from_le_bytes(header[..4].try_into().ok()?);
        if len > MAX_PAYLOAD {
            return None;
        }
        let stored_sum = u64::from_le_bytes(header[4..12].try_into().ok()?);
        let payload = read(u64::from(len), offset + RECORD_HEADER_LEN)?;
        if hash_bytes(CHECKSUM_SEED, &payload) != stored_sum {
            self.stats.rejected.fetch_add(1, Ordering::Relaxed);
            return None;
        }
        let (rec_key, rec_fp, outcome) = decode_payload(&payload)?;
        if rec_key != key || rec_fp != fingerprint {
            return None;
        }
        Some(outcome)
    }

    /// Looks up `(key, fingerprint)` in the log, refreshing from disk if
    /// other processes have appended since the last scan.
    pub fn lookup(&self, key: u128, fingerprint: &str) -> Option<CachedOutcome> {
        let fp_hash = fingerprint_hash(fingerprint);
        let mut shard = self.shards[self.shard_of(key)]
            .lock()
            .unwrap_or_else(|p| p.into_inner());
        // Unconditional: `refresh` is a no-op unless the file has grown,
        // and catching up even on present keys gives last-write-wins
        // across processes sharing the directory.
        let _ = self.refresh(&mut shard);
        let offset = *shard.index.get(&(key, fp_hash))?;
        let found = self.read_record(&shard, offset, key, fingerprint);
        if found.is_some() {
            self.stats.hits.fetch_add(1, Ordering::Relaxed);
        }
        found
    }

    /// Appends one record under the shard's exclusive `flock`. Newer
    /// records for the same `(key, fingerprint)` shadow older ones (the
    /// index keeps the latest offset).
    pub fn append(&self, key: u128, fingerprint: &str, outcome: &CachedOutcome) {
        let payload = encode_payload(key, fingerprint, outcome);
        if payload.len() as u64 > u64::from(MAX_PAYLOAD) {
            return; // Absurd record; serve it from memory only.
        }
        let mut record = Vec::with_capacity(payload.len() + RECORD_HEADER_LEN as usize);
        put_u32(&mut record, payload.len() as u32);
        put_u64(&mut record, hash_bytes(CHECKSUM_SEED, &payload));
        record.extend_from_slice(&payload);

        let mut shard = self.shards[self.shard_of(key)]
            .lock()
            .unwrap_or_else(|p| p.into_inner());
        if shard.file.lock().is_err() {
            return;
        }
        let appended = (|| -> std::io::Result<()> {
            // Catch up on other processes' appends first: with the
            // exclusive lock held every record on disk is complete, and
            // afterwards the end of file is exactly where our record
            // will land.
            let len = shard.file.metadata()?.len();
            if len > shard.scanned {
                let mut bytes = Vec::new();
                (&shard.file).seek(SeekFrom::Start(shard.scanned))?;
                (&shard.file)
                    .take(len - shard.scanned)
                    .read_to_end(&mut bytes)?;
                let mut offset = shard.scanned;
                while offset < len {
                    match scan_record(&bytes[(offset - shard.scanned) as usize..], len, offset) {
                        Scanned::Valid(k, f, next) => {
                            shard.index.insert((k, f), offset);
                            offset = next;
                        }
                        Scanned::CorruptSkippable(next) => offset = next,
                        Scanned::Torn => break,
                    }
                }
                shard.scanned = len.max(offset);
            }
            let at = shard.file.metadata()?.len();
            shard.file.write_all(&record)?;
            shard.file.flush()?;
            shard.index.insert((key, fingerprint_hash(fingerprint)), at);
            shard.scanned = at + record.len() as u64;
            Ok(())
        })();
        let _ = shard.file.unlock();
        if appended.is_ok() {
            self.stats.appends.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Takes the cross-process single-flight lock for `(key,
    /// fingerprint)`, blocking until any other holder (thread or
    /// process) releases it. `None` when the lock file cannot be taken —
    /// the caller then simply solves redundantly.
    pub fn solve_guard(&self, key: u128, fingerprint: &str) -> Option<SolveGuard> {
        let name = format!("{key:032x}-{:016x}.lock", fingerprint_hash(fingerprint));
        let file = File::create(self.dir.join("locks").join(name)).ok()?;
        file.lock().ok()?;
        Some(SolveGuard { _file: file })
    }

    /// Total records currently indexed (across shards, as of the last
    /// scan; other processes may have appended more).
    pub fn indexed_records(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().unwrap_or_else(|p| p.into_inner()).index.len())
            .sum()
    }

    /// Doubles the shard count `factor_log2` times by rewriting every
    /// log: each record moves to the child shard its next key bit
    /// selects. Requires that **no process has the cache open** (the
    /// meta lock excludes concurrent `open`s, but a live cache holds
    /// stale shard handles); intended for offline maintenance and the
    /// differential test battery.
    pub fn split_shards(dir: &Path, factor_log2: u32) -> std::io::Result<u32> {
        let lock = File::create(dir.join("meta.lock"))?;
        lock.lock()?;
        let meta_text = std::fs::read_to_string(Self::meta_path(dir))?;
        let doc = ioenc_core::json::Json::parse(&meta_text)
            .map_err(|e| io_err(format!("meta.json: {e}")))?;
        let old =
            doc.get("shards")
                .and_then(|v| v.as_u64())
                .ok_or_else(|| io_err("meta.json: missing shard count".into()))? as u32;
        let new = old
            .checked_shl(factor_log2)
            .filter(|&n| n <= 4096)
            .ok_or_else(|| io_err(format!("cannot split {old} shards by 2^{factor_log2}")))?;
        if new == old {
            return Ok(old);
        }
        let stats = DiskStats::default();
        // Read every old shard fully (recovering as open would), bucket
        // records by their new shard, then write temp files and rename.
        let new_bits = new.trailing_zeros();
        let mut buckets: Vec<Vec<(u128, String, CachedOutcome)>> =
            (0..new).map(|_| Vec::new()).collect();
        for i in 0..old {
            let mut file = OpenOptions::new()
                .read(true)
                .append(true)
                .open(Self::shard_path(dir, i))?;
            file.lock()?;
            let (scanned, index) =
                Self::replay_shard(&mut file, &Self::shard_path(dir, i), i, &stats)?;
            let mut offsets: Vec<u64> = index.values().copied().collect();
            offsets.sort_unstable();
            let mut bytes = Vec::new();
            (&file).seek(SeekFrom::Start(0))?;
            (&file).take(scanned).read_to_end(&mut bytes)?;
            for off in offsets {
                let len = u32::from_le_bytes(
                    bytes[off as usize..off as usize + 4]
                        .try_into()
                        .unwrap_or([0; 4]),
                );
                let start = (off + RECORD_HEADER_LEN) as usize;
                let payload = &bytes[start..start + len as usize];
                if let Some((key, fp, outcome)) = decode_payload(payload) {
                    let b = if new_bits == 0 {
                        0
                    } else {
                        (key >> (128 - new_bits)) as usize
                    };
                    buckets[b].push((key, fp, outcome));
                }
            }
            file.unlock()?;
        }
        for (b, records) in buckets.iter().enumerate() {
            let tmp = dir.join(format!("shard-{b:02x}.log.tmp"));
            let mut out = File::create(&tmp)?;
            let mut header = Vec::with_capacity(HEADER_LEN as usize);
            header.extend_from_slice(MAGIC);
            put_u32(&mut header, FORMAT_VERSION);
            put_u32(&mut header, b as u32);
            out.write_all(&header)?;
            for (key, fp, outcome) in records {
                let payload = encode_payload(*key, fp, outcome);
                let mut rec = Vec::with_capacity(payload.len() + RECORD_HEADER_LEN as usize);
                put_u32(&mut rec, payload.len() as u32);
                put_u64(&mut rec, hash_bytes(CHECKSUM_SEED, &payload));
                rec.extend_from_slice(&payload);
                out.write_all(&rec)?;
            }
            out.flush()?;
        }
        for b in 0..new {
            std::fs::rename(
                dir.join(format!("shard-{b:02x}.log.tmp")),
                Self::shard_path(dir, b),
            )?;
        }
        std::fs::write(
            Self::meta_path(dir),
            format!("{{\"version\":{FORMAT_VERSION},\"shards\":{new}}}\n"),
        )?;
        Ok(new)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct TempDir(PathBuf);
    impl TempDir {
        fn new(tag: &str) -> TempDir {
            let path =
                std::env::temp_dir().join(format!("ioenc-diskcache-{tag}-{}", std::process::id()));
            let _ = std::fs::remove_dir_all(&path);
            TempDir(path)
        }
    }
    impl Drop for TempDir {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(&self.0);
        }
    }

    fn success(width: usize, codes: Vec<u64>) -> CachedOutcome {
        CachedOutcome::Success {
            width,
            canon_codes: codes,
            work: WorkUnits {
                num_initial: 3,
                num_primes: 5,
                raise_attempts: 7,
                evals: 11,
                espresso_iters: 13,
                ps_steps: 17,
                peak_terms: 19,
                cover_nodes: 23,
                cover_prunes: 29,
                cover_tasks: 31,
            },
            mode: ModeOutcome::Auto {
                rung: "bounded exact".into(),
                optimal: false,
            },
        }
    }

    fn assert_same(a: &CachedOutcome, b: &CachedOutcome) {
        match (a, b) {
            (
                CachedOutcome::Success {
                    width: w1,
                    canon_codes: c1,
                    work: k1,
                    mode: m1,
                },
                CachedOutcome::Success {
                    width: w2,
                    canon_codes: c2,
                    work: k2,
                    mode: m2,
                },
            ) => {
                assert_eq!(w1, w2);
                assert_eq!(c1, c2);
                assert_eq!(k1, k2);
                assert_eq!(format!("{m1:?}"), format!("{m2:?}"));
            }
            (
                CachedOutcome::Failure {
                    raw_hash: h1,
                    json: j1,
                    exit_code: e1,
                },
                CachedOutcome::Failure {
                    raw_hash: h2,
                    json: j2,
                    exit_code: e2,
                },
            ) => {
                assert_eq!(h1, h2);
                assert_eq!(j1, j2);
                assert_eq!(e1, e2);
            }
            _ => panic!("outcome kinds differ"),
        }
    }

    #[test]
    fn payload_round_trips_both_kinds() {
        for outcome in [
            success(3, vec![1, 2, 4, 7]),
            CachedOutcome::Failure {
                raw_hash: 0xdead,
                json: "{\"ok\":false}".into(),
                exit_code: 6,
            },
        ] {
            let p = encode_payload(42u128 << 90, "v1;exact", &outcome);
            let (key, fp, back) =
                decode_payload(&p).unwrap_or_else(|| panic!("payload did not decode"));
            assert_eq!(key, 42u128 << 90);
            assert_eq!(fp, "v1;exact");
            assert_same(&outcome, &back);
        }
    }

    #[test]
    fn trailing_garbage_fails_decode() {
        let mut p = encode_payload(7, "fp", &success(2, vec![0, 1]));
        p.push(0);
        assert!(decode_payload(&p).is_none());
    }

    #[test]
    fn put_get_survives_reopen() {
        let tmp = TempDir::new("reopen");
        let outcome = success(4, vec![3, 5, 9]);
        {
            let cache = DiskCache::open(&tmp.0, 4).unwrap();
            cache.append(99, "fp-a", &outcome);
            assert!(cache.lookup(99, "fp-a").is_some());
            assert!(cache.lookup(99, "fp-b").is_none(), "fingerprint mismatch");
            assert!(cache.lookup(98, "fp-a").is_none(), "key mismatch");
        }
        let cache = DiskCache::open(&tmp.0, 4).unwrap();
        let back = cache
            .lookup(99, "fp-a")
            .unwrap_or_else(|| panic!("entry lost across reopen"));
        assert_same(&outcome, &back);
        assert_eq!(cache.stats().recovered.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn shard_count_is_pinned_by_meta() {
        let tmp = TempDir::new("pin");
        {
            let cache = DiskCache::open(&tmp.0, 8).unwrap();
            assert_eq!(cache.shard_count(), 8);
        }
        // A different request is overruled by meta.json.
        let cache = DiskCache::open(&tmp.0, 2).unwrap();
        assert_eq!(cache.shard_count(), 8);
    }

    #[test]
    fn torn_tail_is_truncated_on_open() {
        let tmp = TempDir::new("torn");
        let key = 0xabcdu128 << 100;
        {
            let cache = DiskCache::open(&tmp.0, 1).unwrap();
            cache.append(key, "fp", &success(2, vec![0, 1]));
        }
        // Simulate a crash mid-append: write a partial record.
        let path = DiskCache::shard_path(&tmp.0, 0);
        let mut f = OpenOptions::new().append(true).open(&path).unwrap();
        f.write_all(&[200, 0, 0, 0, 1, 2, 3]).unwrap(); // len=200, 3 bytes follow
        drop(f);
        let before = std::fs::metadata(&path).unwrap().len();
        let cache = DiskCache::open(&tmp.0, 1).unwrap();
        assert!(cache.lookup(key, "fp").is_some(), "good record survives");
        assert_eq!(cache.stats().torn_bytes.load(Ordering::Relaxed), 7);
        assert_eq!(std::fs::metadata(&path).unwrap().len(), before - 7);
    }

    #[test]
    fn corrupt_record_is_skipped_but_later_records_survive() {
        let tmp = TempDir::new("corrupt");
        let (k1, k2) = (1u128, 2u128);
        let offset_of_first;
        {
            let cache = DiskCache::open(&tmp.0, 1).unwrap();
            cache.append(k1, "fp", &success(2, vec![0, 1]));
            offset_of_first = HEADER_LEN;
            cache.append(k2, "fp", &success(2, vec![2, 3]));
        }
        // Flip one payload byte of the first record.
        let path = DiskCache::shard_path(&tmp.0, 0);
        let mut bytes = std::fs::read(&path).unwrap();
        let at = (offset_of_first + RECORD_HEADER_LEN) as usize + 1;
        bytes[at] ^= 0xff;
        std::fs::write(&path, &bytes).unwrap();
        let cache = DiskCache::open(&tmp.0, 1).unwrap();
        assert!(cache.lookup(k1, "fp").is_none(), "corrupt entry rejected");
        assert!(cache.lookup(k2, "fp").is_some(), "later entry survives");
        assert_eq!(cache.stats().rejected.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn cross_handle_visibility_via_refresh() {
        let tmp = TempDir::new("visible");
        let a = DiskCache::open(&tmp.0, 2).unwrap();
        let b = DiskCache::open(&tmp.0, 2).unwrap();
        a.append(555, "fp", &success(3, vec![1, 2]));
        assert!(
            b.lookup(555, "fp").is_some(),
            "appends by one handle visible to another"
        );
        assert!(b.stats().refreshes.load(Ordering::Relaxed) >= 1);
    }

    #[test]
    fn newer_record_shadows_older() {
        let tmp = TempDir::new("shadow");
        let cache = DiskCache::open(&tmp.0, 1).unwrap();
        cache.append(9, "fp", &success(2, vec![0, 1]));
        cache.append(9, "fp", &success(3, vec![4, 5]));
        match cache.lookup(9, "fp") {
            Some(CachedOutcome::Success { width, .. }) => assert_eq!(width, 3),
            other => panic!("unexpected outcome {other:?}"),
        }
    }

    #[test]
    fn split_preserves_every_record() {
        let tmp = TempDir::new("split");
        let keys: Vec<u128> = (0..40).map(|i| (i as u128) << 120 | i as u128).collect();
        {
            let cache = DiskCache::open(&tmp.0, 2).unwrap();
            for &k in &keys {
                cache.append(k, "fp", &success(2, vec![k as u64, 1]));
            }
        }
        let new = DiskCache::split_shards(&tmp.0, 2).unwrap();
        assert_eq!(new, 8);
        let cache = DiskCache::open(&tmp.0, 2).unwrap(); // meta pins 8
        assert_eq!(cache.shard_count(), 8);
        for &k in &keys {
            match cache.lookup(k, "fp") {
                Some(CachedOutcome::Success { canon_codes, .. }) => {
                    assert_eq!(canon_codes[0], k as u64)
                }
                other => panic!("key {k:x} lost after split: {other:?}"),
            }
        }
    }

    #[test]
    fn solve_guard_excludes_other_holders() {
        let tmp = TempDir::new("guard");
        let cache = DiskCache::open(&tmp.0, 1).unwrap();
        let guard = cache.solve_guard(77, "fp");
        assert!(guard.is_some());
        // A second handle's guard for the same key blocks until drop.
        let dir = tmp.0.clone();
        let t = std::thread::spawn(move || {
            let other = DiskCache::open(&dir, 1).unwrap();
            let _g = other.solve_guard(77, "fp");
            std::time::Instant::now()
        });
        std::thread::sleep(std::time::Duration::from_millis(100));
        let released = std::time::Instant::now();
        drop(guard);
        let acquired = t.join().unwrap_or_else(|_| panic!("guard thread died"));
        assert!(
            acquired >= released,
            "second guard acquired before first released"
        );
    }
}
