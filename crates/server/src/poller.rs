//! Readiness polling over raw OS primitives (DESIGN.md §6h).
//!
//! A thin, dependency-free slice of mio's shape: a [`Poller`] owns one OS
//! readiness queue, sockets are registered under a caller-chosen `usize`
//! token with a read/write [`Interest`], and [`Poller::wait`] parks until
//! at least one registered source is ready (or a [`Waker`] is poked from
//! another thread — the worker pool uses this to hand finished responses
//! back to the event loop).
//!
//! Two backends share the interface:
//!
//! * **Linux** (`target_os = "linux"`): `epoll` in level-triggered mode
//!   plus an `eventfd` waker, called through a self-declared `extern "C"`
//!   shim against the libc that `std` already links. This is the second
//!   tightly-scoped `unsafe` module in the workspace (after
//!   `ioenc_bitset::simd`); the safety argument for every call is local
//!   and documented on the [`sys`] module.
//! * **Everywhere else**: a degraded portable backend with no readiness
//!   information at all — `wait` reports every registered source as ready
//!   after a short sleep, and correctness falls entirely on the event
//!   loop's `WouldBlock` handling (which level-triggered epoll demands
//!   anyway, so the two backends exercise the same loop logic).
//!
//! The poller never owns the sockets it watches: registration borrows the
//! listener/stream only long enough to extract its descriptor, and the
//! caller keeps the socket alive for as long as it stays registered.

use std::io;
use std::net::{TcpListener, TcpStream};

/// What a registered source wants to be woken for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interest {
    /// Wake when the source becomes readable (or a peer hangs up).
    pub readable: bool,
    /// Wake when the source becomes writable.
    pub writable: bool,
}

impl Interest {
    /// Readable only.
    pub const READ: Interest = Interest {
        readable: true,
        writable: false,
    };
    /// Writable only.
    pub const WRITE: Interest = Interest {
        readable: false,
        writable: true,
    };
    /// Readable and writable.
    pub const BOTH: Interest = Interest {
        readable: true,
        writable: true,
    };
}

/// One readiness notification from [`Poller::wait`].
#[derive(Debug, Clone, Copy)]
pub struct Event {
    /// The token the source was registered under.
    pub token: usize,
    /// The source is readable (data, an incoming connection, or EOF).
    pub readable: bool,
    /// The source is writable.
    pub writable: bool,
    /// The peer closed or the source errored; the connection should be
    /// torn down after draining what remains readable.
    pub closed: bool,
}

/// Reusable buffer of [`Event`]s for [`Poller::wait`].
#[derive(Debug, Default)]
pub struct Events {
    items: Vec<Event>,
}

impl Events {
    /// An empty event buffer.
    pub fn new() -> Events {
        Events::default()
    }

    /// Iterates over the events of the last `wait`.
    pub fn iter(&self) -> impl Iterator<Item = Event> + '_ {
        self.items.iter().copied()
    }

    /// Number of events delivered by the last `wait`.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// `true` when the last `wait` delivered nothing.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }
}

/// The token [`Poller::wait`] never delivers: reserved for the internal
/// waker.
pub const WAKER_TOKEN: usize = usize::MAX;

#[cfg(target_os = "linux")]
pub use linux::{Poller, Waker};

#[cfg(not(target_os = "linux"))]
pub use portable::{Poller, Waker};

#[cfg(target_os = "linux")]
mod linux {
    use super::{Event, Events, Interest, WAKER_TOKEN};
    use std::io;
    use std::net::{TcpListener, TcpStream};
    use std::os::fd::{AsRawFd, RawFd};
    use std::sync::Arc;
    use std::time::Duration;

    /// The raw-syscall shim. Everything `unsafe` in this crate lives in
    /// this module.
    ///
    /// # Safety
    ///
    /// * The `extern "C"` declarations match the Linux x86-64/aarch64
    ///   libc ABI for `epoll_create1(2)`, `epoll_ctl(2)`, `epoll_wait(2)`,
    ///   `eventfd(2)`, `read(2)`, `write(2)` and `close(2)`; all are
    ///   exported by every libc `std` links against.
    /// * `EpollEvent` is `repr(C, packed)` — the kernel ABI layout on
    ///   x86-64 (and compatible with the aligned layout everywhere else,
    ///   because the kernel copies it bytewise at the size we pass).
    /// * Every pointer handed to the kernel (`epoll_ctl` event,
    ///   `epoll_wait` buffer, `read`/`write` buffers) points into a live
    ///   local or owned allocation whose length is passed alongside it.
    /// * File descriptors are owned by the wrapping structs and closed
    ///   exactly once, in `Drop`.
    #[allow(unsafe_code)]
    pub(super) mod sys {
        use std::os::fd::RawFd;

        #[repr(C, packed)]
        #[derive(Clone, Copy)]
        pub struct EpollEvent {
            pub events: u32,
            pub data: u64,
        }

        pub const EPOLLIN: u32 = 0x001;
        pub const EPOLLOUT: u32 = 0x004;
        pub const EPOLLERR: u32 = 0x008;
        pub const EPOLLHUP: u32 = 0x010;
        pub const EPOLLRDHUP: u32 = 0x2000;
        pub const EPOLL_CTL_ADD: i32 = 1;
        pub const EPOLL_CTL_DEL: i32 = 2;
        pub const EPOLL_CTL_MOD: i32 = 3;
        pub const EPOLL_CLOEXEC: i32 = 0o2000000;
        pub const EFD_CLOEXEC: i32 = 0o2000000;
        pub const EFD_NONBLOCK: i32 = 0o4000;

        extern "C" {
            fn epoll_create1(flags: i32) -> i32;
            fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
            fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout: i32) -> i32;
            fn eventfd(initval: u32, flags: i32) -> i32;
            fn read(fd: i32, buf: *mut u8, count: usize) -> isize;
            fn write(fd: i32, buf: *const u8, count: usize) -> isize;
            fn close(fd: i32) -> i32;
        }

        pub fn e_create() -> i32 {
            // SAFETY: no pointers; returns a new fd or -1.
            unsafe { epoll_create1(EPOLL_CLOEXEC) }
        }

        pub fn e_ctl(epfd: RawFd, op: i32, fd: RawFd, mut ev: Option<EpollEvent>) -> i32 {
            let ptr = ev
                .as_mut()
                .map(|e| e as *mut EpollEvent)
                .unwrap_or(std::ptr::null_mut());
            // SAFETY: `ptr` is null (allowed for EPOLL_CTL_DEL) or points
            // at the live stack-owned `ev` for the duration of the call.
            unsafe { epoll_ctl(epfd, op, fd, ptr) }
        }

        pub fn e_wait(epfd: RawFd, buf: &mut [EpollEvent], timeout_ms: i32) -> i32 {
            // SAFETY: the buffer pointer and capacity describe `buf`,
            // which outlives the call; the kernel writes at most
            // `buf.len()` events.
            unsafe { epoll_wait(epfd, buf.as_mut_ptr(), buf.len() as i32, timeout_ms) }
        }

        pub fn e_eventfd() -> i32 {
            // SAFETY: no pointers; returns a new fd or -1.
            unsafe { eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK) }
        }

        pub fn fd_read_u64(fd: RawFd) -> isize {
            let mut buf = [0u8; 8];
            // SAFETY: reads at most 8 bytes into the live local buffer.
            unsafe { read(fd, buf.as_mut_ptr(), 8) }
        }

        pub fn fd_write_u64(fd: RawFd, v: u64) -> isize {
            let buf = v.to_ne_bytes();
            // SAFETY: writes exactly 8 bytes from the live local buffer.
            unsafe { write(fd, buf.as_ptr(), 8) }
        }

        pub fn fd_close(fd: RawFd) {
            // SAFETY: the callers own `fd` and call this exactly once.
            unsafe {
                close(fd);
            }
        }
    }

    fn last_err() -> io::Error {
        io::Error::last_os_error()
    }

    struct OwnedFd(RawFd);

    impl Drop for OwnedFd {
        fn drop(&mut self) {
            sys::fd_close(self.0);
        }
    }

    /// Epoll-backed readiness queue (level-triggered).
    pub struct Poller {
        epfd: OwnedFd,
        waker: Waker,
        buf: std::sync::Mutex<Vec<sys::EpollEvent>>,
    }

    /// Cross-thread wakeup handle for a [`Poller`] (an `eventfd`).
    #[derive(Clone)]
    pub struct Waker {
        fd: Arc<OwnedFdShared>,
    }

    struct OwnedFdShared(RawFd);

    impl Drop for OwnedFdShared {
        fn drop(&mut self) {
            sys::fd_close(self.0);
        }
    }

    impl Waker {
        /// Wakes the poller's current (or next) [`Poller::wait`].
        pub fn wake(&self) {
            // A full eventfd counter (EAGAIN) already guarantees a wakeup.
            let _ = sys::fd_write_u64(self.fd.0, 1);
        }
    }

    impl Poller {
        /// Creates the epoll instance and its waker eventfd.
        pub fn new() -> io::Result<Poller> {
            let epfd = sys::e_create();
            if epfd < 0 {
                return Err(last_err());
            }
            let epfd = OwnedFd(epfd);
            let efd = sys::e_eventfd();
            if efd < 0 {
                return Err(last_err());
            }
            let waker = Waker {
                fd: Arc::new(OwnedFdShared(efd)),
            };
            let ev = sys::EpollEvent {
                events: sys::EPOLLIN,
                data: WAKER_TOKEN as u64,
            };
            if sys::e_ctl(epfd.0, sys::EPOLL_CTL_ADD, efd, Some(ev)) < 0 {
                return Err(last_err());
            }
            Ok(Poller {
                epfd,
                waker,
                buf: std::sync::Mutex::new(vec![sys::EpollEvent { events: 0, data: 0 }; 256]),
            })
        }

        /// A clonable wakeup handle.
        pub fn waker(&self) -> Waker {
            self.waker.clone()
        }

        fn mask(interest: Interest) -> u32 {
            let mut m = sys::EPOLLRDHUP;
            if interest.readable {
                m |= sys::EPOLLIN;
            }
            if interest.writable {
                m |= sys::EPOLLOUT;
            }
            m
        }

        fn ctl(&self, op: i32, fd: RawFd, token: usize, interest: Interest) -> io::Result<()> {
            let ev = sys::EpollEvent {
                events: Self::mask(interest),
                data: token as u64,
            };
            if sys::e_ctl(self.epfd.0, op, fd, Some(ev)) < 0 {
                return Err(last_err());
            }
            Ok(())
        }

        /// Registers a listener for accept readiness.
        pub fn add_listener(&self, l: &TcpListener, token: usize) -> io::Result<()> {
            self.ctl(sys::EPOLL_CTL_ADD, l.as_raw_fd(), token, Interest::READ)
        }

        /// Removes a listener.
        pub fn remove_listener(&self, l: &TcpListener) -> io::Result<()> {
            if sys::e_ctl(self.epfd.0, sys::EPOLL_CTL_DEL, l.as_raw_fd(), None) < 0 {
                return Err(last_err());
            }
            Ok(())
        }

        /// Registers a stream under `token` with `interest`.
        pub fn add_stream(
            &self,
            s: &TcpStream,
            token: usize,
            interest: Interest,
        ) -> io::Result<()> {
            self.ctl(sys::EPOLL_CTL_ADD, s.as_raw_fd(), token, interest)
        }

        /// Changes a registered stream's interest.
        pub fn rearm_stream(
            &self,
            s: &TcpStream,
            token: usize,
            interest: Interest,
        ) -> io::Result<()> {
            self.ctl(sys::EPOLL_CTL_MOD, s.as_raw_fd(), token, interest)
        }

        /// Removes a stream (must be called before the stream is dropped
        /// if it may still be registered — epoll auto-removes on close,
        /// but only once every duplicated descriptor is gone).
        pub fn remove_stream(&self, s: &TcpStream) -> io::Result<()> {
            if sys::e_ctl(self.epfd.0, sys::EPOLL_CTL_DEL, s.as_raw_fd(), None) < 0 {
                return Err(last_err());
            }
            Ok(())
        }

        /// Token-level deregistration hook; a no-op here (epoll removes
        /// by descriptor) but the portable backend needs it, so callers
        /// invoke both unconditionally.
        pub fn forget(&self, _token: usize) {}

        /// Parks until a registered source is ready, the timeout lapses,
        /// or a [`Waker`] fires. Waker wakeups are absorbed here and not
        /// reported as events.
        pub fn wait(&self, events: &mut Events, timeout: Option<Duration>) -> io::Result<()> {
            events.items.clear();
            let timeout_ms = match timeout {
                None => -1i32,
                Some(d) => d.as_millis().min(i32::MAX as u128) as i32,
            };
            let mut buf = self.buf.lock().unwrap_or_else(|p| p.into_inner());
            let n = sys::e_wait(self.epfd.0, &mut buf, timeout_ms);
            if n < 0 {
                let err = last_err();
                if err.kind() == io::ErrorKind::Interrupted {
                    return Ok(());
                }
                return Err(err);
            }
            for ev in buf.iter().take(n as usize) {
                let token = ev.data as usize;
                let bits = ev.events;
                if token == WAKER_TOKEN {
                    // Drain the eventfd counter so level-triggering rests.
                    let _ = sys::fd_read_u64(self.waker.fd.0);
                    continue;
                }
                events.items.push(Event {
                    token,
                    readable: bits & (sys::EPOLLIN | sys::EPOLLRDHUP) != 0,
                    writable: bits & sys::EPOLLOUT != 0,
                    closed: bits & (sys::EPOLLERR | sys::EPOLLHUP) != 0,
                });
            }
            Ok(())
        }
    }
}

#[cfg(not(target_os = "linux"))]
mod portable {
    use super::{Event, Events, Interest};
    use std::collections::HashMap;
    use std::io;
    use std::net::{TcpListener, TcpStream};
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::Duration;

    /// Degraded portable backend: no OS readiness queue, so every
    /// registered source is reported ready after a short sleep and the
    /// event loop's `WouldBlock` handling does the filtering. Throughput
    /// is bounded by the poll cadence; the Linux backend is the
    /// production path.
    pub struct Poller {
        sources: Mutex<HashMap<usize, Interest>>,
        wake: Arc<(Mutex<bool>, Condvar)>,
    }

    /// Cross-thread wakeup handle for the portable [`Poller`].
    #[derive(Clone)]
    pub struct Waker {
        wake: Arc<(Mutex<bool>, Condvar)>,
    }

    impl Waker {
        /// Wakes the poller's current (or next) [`Poller::wait`].
        pub fn wake(&self) {
            let (flag, cv) = &*self.wake;
            *flag.lock().unwrap_or_else(|p| p.into_inner()) = true;
            cv.notify_all();
        }
    }

    const POLL_CADENCE: Duration = Duration::from_millis(5);

    impl Poller {
        /// Creates the poller.
        pub fn new() -> io::Result<Poller> {
            Ok(Poller {
                sources: Mutex::new(HashMap::new()),
                wake: Arc::new((Mutex::new(false), Condvar::new())),
            })
        }

        /// A clonable wakeup handle.
        pub fn waker(&self) -> Waker {
            Waker {
                wake: self.wake.clone(),
            }
        }

        fn lock(&self) -> std::sync::MutexGuard<'_, HashMap<usize, Interest>> {
            self.sources.lock().unwrap_or_else(|p| p.into_inner())
        }

        /// Registers a listener for accept readiness.
        pub fn add_listener(&self, _l: &TcpListener, token: usize) -> io::Result<()> {
            self.lock().insert(token, Interest::READ);
            Ok(())
        }

        /// Removes a listener. The portable backend tracks tokens, not
        /// descriptors, so the listener's token must simply stop being
        /// reported; callers deregister by token via [`Poller::forget`].
        pub fn remove_listener(&self, _l: &TcpListener) -> io::Result<()> {
            Ok(())
        }

        /// Registers a stream under `token` with `interest`.
        pub fn add_stream(
            &self,
            _s: &TcpStream,
            token: usize,
            interest: Interest,
        ) -> io::Result<()> {
            self.lock().insert(token, interest);
            Ok(())
        }

        /// Changes a registered stream's interest.
        pub fn rearm_stream(
            &self,
            _s: &TcpStream,
            token: usize,
            interest: Interest,
        ) -> io::Result<()> {
            self.lock().insert(token, interest);
            Ok(())
        }

        /// Removes a stream.
        pub fn remove_stream(&self, _s: &TcpStream) -> io::Result<()> {
            Ok(())
        }

        /// Drops a token from the ready set (portable backend only; the
        /// Linux backend deregisters by descriptor).
        pub fn forget(&self, token: usize) {
            self.lock().remove(&token);
        }

        /// Sleeps briefly (or until woken), then reports every registered
        /// source as ready for everything it asked for.
        pub fn wait(&self, events: &mut Events, timeout: Option<Duration>) -> io::Result<()> {
            events.items.clear();
            let nap = timeout.unwrap_or(POLL_CADENCE).min(POLL_CADENCE);
            let (flag, cv) = &*self.wake;
            {
                let mut guard = flag.lock().unwrap_or_else(|p| p.into_inner());
                if !*guard {
                    guard = cv
                        .wait_timeout(guard, nap)
                        .unwrap_or_else(|p| p.into_inner())
                        .0;
                }
                *guard = false;
            }
            for (&token, &interest) in self.lock().iter() {
                events.items.push(Event {
                    token,
                    readable: interest.readable,
                    writable: interest.writable,
                    closed: false,
                });
            }
            Ok(())
        }
    }
}

/// Marks a socket non-blocking; shared convenience for the event loop.
pub fn set_nonblocking_listener(l: &TcpListener) -> io::Result<()> {
    l.set_nonblocking(true)
}

/// Marks a stream non-blocking.
pub fn set_nonblocking_stream(s: &TcpStream) -> io::Result<()> {
    s.set_nonblocking(true)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::time::Duration;

    #[test]
    fn waker_interrupts_an_idle_wait() {
        let poller = Poller::new().unwrap();
        let waker = poller.waker();
        let t = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(30));
            waker.wake();
        });
        let mut events = Events::new();
        let start = std::time::Instant::now();
        // Generous timeout: the waker must return us well before it.
        poller
            .wait(&mut events, Some(Duration::from_secs(10)))
            .unwrap();
        assert!(start.elapsed() < Duration::from_secs(5));
        // The waker itself is never surfaced as an event on Linux; the
        // portable backend reports nothing because nothing is registered.
        assert!(events.iter().all(|e| e.token != WAKER_TOKEN));
        t.join().unwrap();
    }

    #[test]
    fn listener_becomes_readable_on_connect() {
        let listener = TcpListener::bind(("127.0.0.1", 0)).unwrap();
        let addr = listener.local_addr().unwrap();
        set_nonblocking_listener(&listener).unwrap();
        let poller = Poller::new().unwrap();
        poller.add_listener(&listener, 7).unwrap();
        let _client = TcpStream::connect(addr).unwrap();
        let mut events = Events::new();
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        loop {
            poller
                .wait(&mut events, Some(Duration::from_millis(100)))
                .unwrap();
            if events.iter().any(|e| e.token == 7 && e.readable) {
                break;
            }
            assert!(
                std::time::Instant::now() < deadline,
                "no accept readiness within 10s"
            );
        }
        let (stream, _) = listener.accept().unwrap();
        drop(stream);
    }

    #[test]
    fn stream_readability_follows_data() {
        let listener = TcpListener::bind(("127.0.0.1", 0)).unwrap();
        let addr = listener.local_addr().unwrap();
        let mut client = TcpStream::connect(addr).unwrap();
        let (server_side, _) = listener.accept().unwrap();
        set_nonblocking_stream(&server_side).unwrap();
        let poller = Poller::new().unwrap();
        poller.add_stream(&server_side, 3, Interest::READ).unwrap();

        client.write_all(b"hello").unwrap();
        client.flush().unwrap();
        let mut events = Events::new();
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        'outer: loop {
            poller
                .wait(&mut events, Some(Duration::from_millis(100)))
                .unwrap();
            for e in events.iter() {
                if e.token == 3 && e.readable {
                    break 'outer;
                }
            }
            assert!(
                std::time::Instant::now() < deadline,
                "no read readiness within 10s"
            );
        }
        let mut buf = [0u8; 16];
        let mut got = 0usize;
        // Non-blocking read; data may straddle wakeups on the portable
        // backend.
        let read_deadline = std::time::Instant::now() + Duration::from_secs(10);
        while got < 5 {
            match (&server_side).read(&mut buf[got..]) {
                Ok(0) => break,
                Ok(n) => got += n,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    assert!(std::time::Instant::now() < read_deadline, "read stalled");
                    std::thread::sleep(Duration::from_millis(1));
                }
                Err(e) => panic!("read: {e}"),
            }
        }
        assert_eq!(&buf[..5], b"hello");
        poller.remove_stream(&server_side).unwrap();
    }
}
