//! A bounded MPMC work queue with explicit load shedding.
//!
//! [`BoundedQueue::try_push`] never blocks: a full (or closed) queue
//! hands the item straight back so the caller can answer `overloaded`
//! instead of buffering without bound. [`BoundedQueue::pop`] blocks until
//! an item arrives or the queue is closed *and* drained — closing is how
//! the server requests a graceful drain: workers finish everything that
//! was accepted, then exit.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

struct Inner<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// A fixed-capacity queue shared by the request readers and the worker
/// pool.
pub struct BoundedQueue<T> {
    inner: Mutex<Inner<T>>,
    available: Condvar,
    capacity: usize,
}

impl<T> BoundedQueue<T> {
    /// Creates a queue holding at most `capacity` items (minimum 1).
    pub fn new(capacity: usize) -> Self {
        BoundedQueue {
            inner: Mutex::new(Inner {
                items: VecDeque::new(),
                closed: false,
            }),
            available: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner<T>> {
        self.inner.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Enqueues `item`, or returns it when the queue is full or closed.
    pub fn try_push(&self, item: T) -> Result<(), T> {
        let mut inner = self.lock();
        if inner.closed || inner.items.len() >= self.capacity {
            return Err(item);
        }
        inner.items.push_back(item);
        drop(inner);
        self.available.notify_one();
        Ok(())
    }

    /// Blocks for the next item. Returns `None` once the queue is closed
    /// and every accepted item has been handed out.
    pub fn pop(&self) -> Option<T> {
        let mut inner = self.lock();
        loop {
            if let Some(item) = inner.items.pop_front() {
                return Some(item);
            }
            if inner.closed {
                return None;
            }
            inner = self
                .available
                .wait(inner)
                .unwrap_or_else(|p| p.into_inner());
        }
    }

    /// Closes the queue: further pushes fail, and blocked poppers drain
    /// the remaining items before seeing `None`.
    pub fn close(&self) {
        self.lock().closed = true;
        self.available.notify_all();
    }

    /// Items currently waiting.
    pub fn depth(&self) -> usize {
        self.lock().items.len()
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sheds_when_full_and_drains_on_close() {
        let q = BoundedQueue::new(2);
        assert!(q.try_push(1).is_ok());
        assert!(q.try_push(2).is_ok());
        assert_eq!(q.try_push(3), Err(3));
        assert_eq!(q.depth(), 2);
        q.close();
        assert_eq!(q.try_push(4), Err(4));
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn pop_blocks_until_push() {
        let q = std::sync::Arc::new(BoundedQueue::new(1));
        let q2 = q.clone();
        let h = std::thread::spawn(move || q2.pop());
        std::thread::sleep(std::time::Duration::from_millis(20));
        assert!(q.try_push(7).is_ok());
        assert_eq!(h.join().unwrap(), Some(7));
    }

    #[test]
    fn capacity_floor_is_one() {
        let q = BoundedQueue::new(0);
        assert_eq!(q.capacity(), 1);
        assert!(q.try_push(1).is_ok());
        assert_eq!(q.try_push(2), Err(2));
    }
}
