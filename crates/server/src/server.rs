//! The `ioenc serve` loop: NDJSON over stdio or TCP, a scoped worker
//! pool, bounded queuing with load shedding, inline `stats`/`shutdown`
//! operations and graceful drain.
//!
//! Concurrency shape: request readers (the stdio main loop, or one
//! thread per TCP connection) parse each line and either answer inline
//! (`stats`, `shutdown`, malformed requests, shed load) or enqueue an
//! encode job. `std::thread::scope` workers pop jobs, run the shared
//! [`outcome`] pipeline with `Parallelism::Off` (the pool itself is the
//! parallelism) and write one response line under the connection's sink
//! lock. Shutdown closes the queue; workers finish every accepted job
//! before exiting, so no request is silently dropped.

use crate::cache::ResultCache;
use crate::exec::{failure_json, outcome, EncodeSpec, Mode, Outcome, PROTOCOL_VERSION};
use crate::queue::BoundedQueue;
use crate::session::SessionRegistry;
use ioenc_core::json::Json;
use ioenc_core::{CancelToken, CostFunction, EncodeError, Parallelism};
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Configuration for [`serve_stdio`] / [`serve_tcp`].
#[derive(Debug, Clone)]
#[non_exhaustive]
pub struct ServeOptions {
    /// Worker threads (minimum 1).
    pub workers: usize,
    /// Bounded queue capacity; excess encode requests are shed with an
    /// `overloaded` response.
    pub queue_capacity: usize,
    /// Result-cache capacity in entries; `0` disables the cache.
    pub cache_entries: usize,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions {
            workers: 4,
            queue_capacity: 64,
            cache_entries: 1024,
        }
    }
}

impl ServeOptions {
    /// Default options: 4 workers, a 64-slot queue, a 1024-entry cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the worker count (floored at 1).
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }

    /// Sets the queue capacity (floored at 1).
    pub fn with_queue_capacity(mut self, capacity: usize) -> Self {
        self.queue_capacity = capacity.max(1);
        self
    }

    /// Sets the cache capacity; `0` disables caching.
    pub fn with_cache_entries(mut self, entries: usize) -> Self {
        self.cache_entries = entries;
        self
    }
}

/// Where a response line goes: shared, line-locked writer.
type Sink = Arc<Mutex<Box<dyn Write + Send>>>;

struct Job {
    /// The request's `id`, re-rendered as JSON and echoed verbatim.
    id: String,
    text: String,
    spec: EncodeSpec,
    sink: Sink,
}

struct Shared {
    cache: Option<ResultCache>,
    queue: BoundedQueue<Job>,
    sessions: SessionRegistry,
    cancel: CancelToken,
    shutdown: AtomicBool,
    shed: AtomicU64,
    processed: AtomicU64,
    workers: usize,
}

impl Shared {
    fn new(opts: &ServeOptions) -> Self {
        Shared {
            cache: (opts.cache_entries > 0).then(|| ResultCache::new(opts.cache_entries)),
            queue: BoundedQueue::new(opts.queue_capacity),
            sessions: SessionRegistry::new(),
            cancel: CancelToken::new(),
            shutdown: AtomicBool::new(false),
            shed: AtomicU64::new(0),
            processed: AtomicU64::new(0),
            workers: opts.workers.max(1),
        }
    }
}

fn write_response(sink: &Sink, id: &str, result: &str) {
    let line = format!("{{\"id\":{id},\"v\":{PROTOCOL_VERSION},\"result\":{result}}}\n");
    let mut w = sink.lock().unwrap_or_else(|p| p.into_inner());
    // A vanished client (broken pipe, closed socket) must not take the
    // server down; its remaining responses are simply dropped.
    let _ = w.write_all(line.as_bytes());
    let _ = w.flush();
}

fn worker(shared: &Shared) {
    while let Some(job) = shared.queue.pop() {
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            outcome(
                &job.text,
                &job.spec,
                shared.cache.as_ref(),
                Some(&shared.cancel),
            )
        }));
        let out = result.unwrap_or_else(|_| Outcome {
            json: Json::obj()
                .field("ok", false)
                .field(
                    "error",
                    Json::obj()
                        .field("class", "internal")
                        .field("message", "worker panicked; request abandoned"),
                )
                .render(),
            exit_code: 1,
        });
        shared.processed.fetch_add(1, Ordering::Relaxed);
        write_response(&job.sink, &job.id, &out.json);
    }
}

fn u64_field(req: &Json, name: &str) -> Result<Option<u64>, EncodeError> {
    match req.get(name) {
        None | Some(Json::Null) => Ok(None),
        Some(v) => v
            .as_u64()
            .map(Some)
            .ok_or_else(|| EncodeError::parse(format!("'{name}' must be a non-negative integer"))),
    }
}

fn usize_field(req: &Json, name: &str) -> Result<Option<usize>, EncodeError> {
    Ok(u64_field(req, name)?.map(|n| n as usize))
}

/// Translates an `encode`/`open` request object into `(text, spec)`.
pub(crate) fn parse_encode_request(req: &Json) -> Result<(String, EncodeSpec), EncodeError> {
    let text = req
        .get("text")
        .and_then(Json::as_str)
        .ok_or_else(|| EncodeError::parse("encode request needs a string 'text' field"))?
        .to_string();
    let mode_name = match req.get("mode") {
        None | Some(Json::Null) => "exact",
        Some(m) => m
            .as_str()
            .ok_or_else(|| EncodeError::parse("'mode' must be a string"))?,
    };
    let bits = usize_field(req, "bits")?;
    let prime_cap = usize_field(req, "prime_cap")?;
    let mode = match mode_name {
        "exact" => Mode::Exact { prime_cap },
        "heuristic" => {
            let cost = match req
                .get("cost")
                .and_then(Json::as_str)
                .unwrap_or("violations")
            {
                "violations" => CostFunction::Violations,
                "cubes" => CostFunction::Cubes,
                "literals" => CostFunction::Literals,
                other => {
                    return Err(EncodeError::parse(format!(
                        "unknown cost function '{other}'"
                    )))
                }
            };
            Mode::Heuristic { bits, cost }
        }
        "auto" => Mode::Auto,
        other => return Err(EncodeError::parse(format!("unknown mode '{other}'"))),
    };
    let deadline_ms = u64_field(req, "deadline_ms")?;
    if deadline_ms == Some(0) {
        return Err(EncodeError::limit("deadline_ms must be positive"));
    }
    Ok((
        text,
        EncodeSpec {
            mode,
            max_primes: usize_field(req, "max_primes")?,
            max_nodes: u64_field(req, "max_nodes")?,
            max_evals: u64_field(req, "max_evals")?,
            max_ps_steps: u64_field(req, "max_ps_steps")?,
            deadline_ms,
            parallelism: Parallelism::Off,
        },
    ))
}

fn stats_json(shared: &Shared) -> Json {
    let cache = match &shared.cache {
        Some(c) => Json::obj()
            .field("enabled", true)
            .field("capacity", c.capacity())
            .field("entries", c.len())
            .field("hits", c.hits())
            .field("misses", c.misses())
            .field("evictions", c.evictions())
            .field("verify_failures", c.verify_failures()),
        None => Json::obj()
            .field("enabled", false)
            .field("capacity", 0u64)
            .field("entries", 0u64)
            .field("hits", 0u64)
            .field("misses", 0u64)
            .field("evictions", 0u64)
            .field("verify_failures", 0u64),
    };
    Json::obj()
        .field("ok", true)
        .field("workers", shared.workers)
        .field("sessions", shared.sessions.len())
        .field(
            "queue",
            Json::obj()
                .field("capacity", shared.queue.capacity())
                .field("depth", shared.queue.depth())
                .field("shed", shared.shed.load(Ordering::Relaxed))
                .field("processed", shared.processed.load(Ordering::Relaxed)),
        )
        .field("cache", cache)
}

fn overloaded_json(shared: &Shared) -> Json {
    Json::obj().field("ok", false).field(
        "error",
        Json::obj().field("class", "overloaded").field(
            "message",
            format!(
                "queue full (capacity {}); retry later",
                shared.queue.capacity()
            ),
        ),
    )
}

/// The typed error for an unsupported request `"v"`, mirroring the
/// [`failure_json`] shape with class `protocol`.
fn protocol_error_json(got: &Json) -> Json {
    Json::obj().field("ok", false).field(
        "error",
        Json::obj()
            .field("class", "protocol")
            .field("exit_code", 2u64)
            .field(
                "message",
                format!(
                    "unsupported protocol version {}; this server speaks v{PROTOCOL_VERSION}",
                    got.render()
                ),
            ),
    )
}

/// Handles one request line. Returns `false` when the connection (and
/// for `shutdown`, the whole server) should stop reading.
fn dispatch_line(shared: &Shared, line: &str, sink: &Sink) -> bool {
    let trimmed = line.trim();
    if trimmed.is_empty() {
        return true;
    }
    let req = match Json::parse(trimmed) {
        Ok(j) => j,
        Err(msg) => {
            let e = EncodeError::parse(format!("invalid request JSON: {msg}"));
            write_response(sink, "null", &failure_json(&e, None).render());
            return true;
        }
    };
    let id = req
        .get("id")
        .map(Json::render)
        .unwrap_or_else(|| "null".to_string());
    // Version gate: absent means v1 (the first versioned protocol is also
    // the first protocol); anything else is a typed `protocol` error so
    // future clients fail loudly instead of misparsing v1 responses.
    match req.get("v") {
        None | Some(Json::Null) => {}
        Some(v) if v.as_u64() == Some(PROTOCOL_VERSION) => {}
        Some(v) => {
            write_response(sink, &id, &protocol_error_json(v).render());
            return true;
        }
    }
    let op = req.get("op").and_then(Json::as_str).unwrap_or("encode");
    match op {
        "stats" => {
            write_response(sink, &id, &stats_json(shared).render());
            true
        }
        "shutdown" => {
            if req.get("abort").and_then(Json::as_bool).unwrap_or(false) {
                shared.cancel.cancel();
            }
            write_response(
                sink,
                &id,
                &Json::obj()
                    .field("ok", true)
                    .field("shutting_down", true)
                    .render(),
            );
            shared.shutdown.store(true, Ordering::SeqCst);
            false
        }
        // Session operations run inline on the connection thread: each
        // mutates its session, so per-session ordering is part of the
        // protocol (see the `session` module docs). They never touch the
        // result cache.
        "open" | "delta" | "close" => {
            if shared.shutdown.load(Ordering::SeqCst) {
                shared.shed.fetch_add(1, Ordering::Relaxed);
                write_response(sink, &id, &overloaded_json(shared).render());
                return true;
            }
            let result = match op {
                "open" => shared.sessions.open(&req),
                "delta" => shared.sessions.delta(&req),
                _ => shared.sessions.close(&req),
            };
            shared.processed.fetch_add(1, Ordering::Relaxed);
            write_response(sink, &id, &result.render());
            true
        }
        "encode" => {
            if shared.shutdown.load(Ordering::SeqCst) {
                shared.shed.fetch_add(1, Ordering::Relaxed);
                write_response(sink, &id, &overloaded_json(shared).render());
                return true;
            }
            match parse_encode_request(&req) {
                Ok((text, spec)) => {
                    let job = Job {
                        id: id.clone(),
                        text,
                        spec,
                        sink: sink.clone(),
                    };
                    if shared.queue.try_push(job).is_err() {
                        shared.shed.fetch_add(1, Ordering::Relaxed);
                        write_response(sink, &id, &overloaded_json(shared).render());
                    }
                }
                Err(e) => write_response(sink, &id, &failure_json(&e, None).render()),
            }
            true
        }
        other => {
            let e = EncodeError::parse(format!("unknown op '{other}'"));
            write_response(sink, &id, &failure_json(&e, None).render());
            true
        }
    }
}

/// Serves NDJSON requests from `input`, writing responses to `sink`.
/// Returns after end-of-input or a `shutdown` request, once every
/// accepted job has been answered.
fn serve_reader<R: BufRead>(opts: &ServeOptions, input: R, sink: Sink) {
    let shared = Shared::new(opts);
    std::thread::scope(|s| {
        for _ in 0..shared.workers {
            s.spawn(|| worker(&shared));
        }
        for line in input.lines() {
            let line = match line {
                Ok(l) => l,
                Err(_) => break,
            };
            if !dispatch_line(&shared, &line, &sink) {
                break;
            }
        }
        shared.queue.close();
    });
}

/// Runs the service over stdin/stdout until EOF or a `shutdown` request.
pub fn serve_stdio(opts: &ServeOptions) -> std::io::Result<()> {
    let stdin = std::io::stdin();
    let sink: Sink = Arc::new(Mutex::new(Box::new(std::io::stdout())));
    serve_reader(opts, stdin.lock(), sink);
    Ok(())
}

fn connection(shared: &Shared, stream: TcpStream) {
    let write_half = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let sink: Sink = Arc::new(Mutex::new(Box::new(write_half)));
    let _ = stream.set_read_timeout(Some(Duration::from_millis(100)));
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    loop {
        if shared.shutdown.load(Ordering::SeqCst) {
            break;
        }
        match reader.read_line(&mut line) {
            Ok(0) => break,
            Ok(_) => {
                let keep_going = dispatch_line(shared, &line, &sink);
                line.clear();
                if !keep_going {
                    break;
                }
            }
            // A read timeout just polls the shutdown flag; `read_line`
            // keeps any partial line in `line` and appends on retry.
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                continue;
            }
            Err(_) => break,
        }
    }
}

/// Runs the service on a loopback TCP port (`0` picks an ephemeral one).
/// Prints `ioenc serve: listening on 127.0.0.1:<port>` to stderr once
/// bound — test harnesses learn the ephemeral port from that line — and
/// returns after a `shutdown` request, once accepted jobs are answered.
pub fn serve_tcp(opts: &ServeOptions, port: u16) -> std::io::Result<()> {
    let listener = TcpListener::bind(("127.0.0.1", port))?;
    let local = listener.local_addr()?;
    eprintln!("ioenc serve: listening on {local}");
    serve_listener(opts, listener)
}

/// [`serve_tcp`] on an already-bound listener (used by tests to avoid
/// port races).
fn serve_listener(opts: &ServeOptions, listener: TcpListener) -> std::io::Result<()> {
    listener.set_nonblocking(true)?;
    let shared = Shared::new(opts);
    std::thread::scope(|s| {
        for _ in 0..shared.workers {
            s.spawn(|| worker(&shared));
        }
        loop {
            if shared.shutdown.load(Ordering::SeqCst) {
                break;
            }
            match listener.accept() {
                Ok((stream, _)) => {
                    let shared = &shared;
                    s.spawn(move || connection(shared, stream));
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(25));
                }
                Err(_) => break,
            }
        }
        shared.queue.close();
    });
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    const SECTION1: &str = "symbols: a b c d\n(b,c)\n(c,d)\n(b,a)\n(a,d)\nb>c\na>c\na=b|d\n";

    fn serve_lines(opts: &ServeOptions, requests: &[String]) -> Vec<String> {
        let input = requests.join("\n") + "\n";
        let buf: Arc<Mutex<Vec<u8>>> = Arc::new(Mutex::new(Vec::new()));

        struct SharedBuf(Arc<Mutex<Vec<u8>>>);
        impl Write for SharedBuf {
            fn write(&mut self, data: &[u8]) -> std::io::Result<usize> {
                self.0.lock().unwrap().extend_from_slice(data);
                Ok(data.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }

        let sink: Sink = Arc::new(Mutex::new(Box::new(SharedBuf(buf.clone()))));
        serve_reader(opts, input.as_bytes(), sink);
        let out = String::from_utf8(buf.lock().unwrap().clone()).unwrap();
        out.lines().map(str::to_string).collect()
    }

    fn encode_request(id: u64, text: &str) -> String {
        Json::obj()
            .field("id", id)
            .field("op", "encode")
            .field("text", text)
            .render()
    }

    #[test]
    fn encode_stats_and_shutdown_round_trip() {
        let reqs = vec![
            encode_request(1, SECTION1),
            encode_request(2, SECTION1),
            Json::obj().field("id", 3u64).field("op", "stats").render(),
            Json::obj()
                .field("id", 4u64)
                .field("op", "shutdown")
                .render(),
        ];
        let lines = serve_lines(&ServeOptions::new().with_workers(2), &reqs);
        assert_eq!(lines.len(), 4);
        let by_id = |want: u64| {
            lines
                .iter()
                .find(|l| Json::parse(l).unwrap().get("id").and_then(Json::as_u64) == Some(want))
                .cloned()
                .unwrap()
        };
        let r1 = Json::parse(&by_id(1)).unwrap();
        let ok = r1
            .get("result")
            .and_then(|r| r.get("ok"))
            .and_then(Json::as_bool);
        assert_eq!(ok, Some(true));
        // Identical requests produce byte-identical result objects.
        assert_eq!(
            by_id(1).replace("\"id\":1", ""),
            by_id(2).replace("\"id\":2", "")
        );
        let shut = Json::parse(&by_id(4)).unwrap();
        assert_eq!(
            shut.get("result")
                .and_then(|r| r.get("shutting_down"))
                .and_then(Json::as_bool),
            Some(true)
        );
    }

    #[test]
    fn responses_carry_the_protocol_version_and_gate_requests_on_it() {
        let reqs = vec![
            encode_request(1, SECTION1),
            // Explicitly pinned current version: accepted.
            Json::obj()
                .field("id", 2u64)
                .field("v", 1u64)
                .field("op", "stats")
                .render(),
            // Unknown version: typed protocol error, request not executed.
            Json::obj()
                .field("id", 3u64)
                .field("v", 99u64)
                .field("op", "stats")
                .render(),
        ];
        let lines = serve_lines(&ServeOptions::new().with_workers(1), &reqs);
        assert_eq!(lines.len(), 3);
        for line in &lines {
            let v = Json::parse(line).unwrap();
            assert_eq!(v.get("v").and_then(Json::as_u64), Some(1), "{line}");
        }
        let bad = lines.iter().find(|l| l.contains("\"id\":3")).unwrap();
        assert!(bad.contains("\"class\":\"protocol\""), "{bad}");
        assert!(bad.contains("speaks v1"), "{bad}");
    }

    #[test]
    fn session_ops_round_trip_through_the_dispatcher() {
        let base = "symbols: a b c d\n(a,b)\n(c,d)\n";
        let reqs = vec![
            Json::obj()
                .field("id", 1u64)
                .field("op", "open")
                .field("text", base)
                .render(),
            Json::obj()
                .field("id", 2u64)
                .field("op", "delta")
                .field("session", 1u64)
                .field("add", vec![Json::from("(b,c)")])
                .render(),
            Json::obj().field("id", 3u64).field("op", "stats").render(),
            Json::obj()
                .field("id", 4u64)
                .field("op", "close")
                .field("session", 1u64)
                .render(),
        ];
        let lines = serve_lines(&ServeOptions::new().with_workers(1), &reqs);
        assert_eq!(lines.len(), 4);
        let result = |want: u64| {
            lines
                .iter()
                .map(|l| Json::parse(l).unwrap())
                .find(|j| j.get("id").and_then(Json::as_u64) == Some(want))
                .and_then(|j| j.get("result").cloned())
                .unwrap()
        };
        let opened = result(1);
        assert_eq!(opened.get("session").and_then(Json::as_u64), Some(1));
        let applied = result(2);
        assert_eq!(
            applied
                .get("reuse")
                .and_then(|r| r.get("incremental"))
                .and_then(Json::as_bool),
            Some(true)
        );
        // Sessions are answered inline and never consult the result cache.
        let stats = result(3);
        assert_eq!(
            stats
                .get("cache")
                .and_then(|c| c.get("hits"))
                .and_then(Json::as_u64),
            Some(0)
        );
        assert_eq!(
            stats
                .get("cache")
                .and_then(|c| c.get("misses"))
                .and_then(Json::as_u64),
            Some(0)
        );
        assert_eq!(stats.get("sessions").and_then(Json::as_u64), Some(1));
        assert_eq!(result(4).get("closed").and_then(Json::as_bool), Some(true));
    }

    #[test]
    fn malformed_lines_get_typed_parse_errors_not_panics() {
        let reqs = vec![
            "this is not json".to_string(),
            "{\"id\":9,\"op\":\"encode\"}".to_string(),
            "{\"id\":10,\"op\":\"frobnicate\"}".to_string(),
            "{\"id\":11,\"op\":\"encode\",\"text\":\"no header\"}".to_string(),
        ];
        let lines = serve_lines(&ServeOptions::new().with_workers(1), &reqs);
        assert_eq!(lines.len(), 4);
        for line in &lines {
            let v = Json::parse(line).unwrap();
            let err = v
                .get("result")
                .and_then(|r| r.get("error"))
                .and_then(|e| e.get("class"))
                .and_then(Json::as_str)
                .unwrap()
                .to_string();
            assert_eq!(err, "parse", "{line}");
        }
    }

    #[test]
    fn overload_sheds_with_an_explicit_response() {
        // One worker, one queue slot, no cache: burst enough requests
        // that at least one is shed (the reader enqueues much faster
        // than a solve completes).
        let mut reqs: Vec<String> = (0..12).map(|i| encode_request(i, SECTION1)).collect();
        reqs.push(Json::obj().field("id", 99u64).field("op", "stats").render());
        let opts = ServeOptions::new()
            .with_workers(1)
            .with_queue_capacity(1)
            .with_cache_entries(0);
        let lines = serve_lines(&opts, &reqs);
        assert_eq!(lines.len(), 13);
        let shed = lines
            .iter()
            .filter(|l| l.contains("\"class\":\"overloaded\""))
            .count();
        assert!(shed > 0, "expected at least one shed response");
        let stats_line = lines.iter().find(|l| l.contains("\"queue\"")).unwrap();
        let v = Json::parse(stats_line).unwrap();
        let reported = v
            .get("result")
            .and_then(|r| r.get("queue"))
            .and_then(|q| q.get("shed"))
            .and_then(Json::as_u64)
            .unwrap();
        assert_eq!(reported as usize, shed);
    }

    #[test]
    fn tcp_round_trip_with_ephemeral_port() {
        use std::net::TcpStream;
        let listener = TcpListener::bind(("127.0.0.1", 0)).unwrap();
        let port = listener.local_addr().unwrap().port();
        let opts = ServeOptions::new().with_workers(2);
        let server = std::thread::spawn(move || serve_listener(&opts, listener));
        // Retry connecting while the server binds.
        let mut stream = None;
        for _ in 0..100 {
            match TcpStream::connect(("127.0.0.1", port)) {
                Ok(s) => {
                    stream = Some(s);
                    break;
                }
                Err(_) => std::thread::sleep(Duration::from_millis(10)),
            }
        }
        let stream = stream.expect("server did not bind");
        let mut writer = stream.try_clone().unwrap();
        writeln!(writer, "{}", encode_request(1, SECTION1)).unwrap();
        writeln!(
            writer,
            "{}",
            Json::obj()
                .field("id", 2u64)
                .field("op", "shutdown")
                .render()
        )
        .unwrap();
        let reader = BufReader::new(stream);
        let lines: Vec<String> = reader.lines().map_while(Result::ok).collect();
        assert_eq!(lines.len(), 2);
        assert!(lines.iter().any(|l| l.contains("\"ok\":true")));
        server.join().unwrap().unwrap();
    }
}
